package revprune

// Benchmark harness: one benchmark (or benchmark group) per reconstructed
// table and figure, measuring the primitive that experiment's wall-clock
// rows derive from. `go test -bench=. -benchmem` regenerates every number;
// the experiment IDs match DESIGN.md and EXPERIMENTS.md.

import (
	"bytes"
	"fmt"
	"os"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/governor"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	benchOnce sync.Once
	benchZoo  *experiments.Zoo
)

func zoo(b *testing.B) *experiments.Zoo { return zooTB(b) }

func zooTB(b testing.TB) *experiments.Zoo {
	b.Helper()
	benchOnce.Do(func() {
		benchZoo = experiments.NewZoo(1)
		benchZoo.SignNet()     // train once, outside timed regions
		benchZoo.ObstacleNet() //
	})
	return benchZoo
}

func benchStack(b *testing.B) (*nn.Sequential, *core.ReversibleModel) {
	b.Helper()
	model, rm, err := zoo(b).ObstacleStack(nil, platform.EmbeddedCPU())
	if err != nil {
		b.Fatal(err)
	}
	return model, rm
}

// --- F1: accuracy vs sparsity — the unit is planning one nested family. ---

func BenchmarkF1_PlanNestedMagnitude(b *testing.B) {
	m := zoo(b).CloneSign()
	sweep := []float64{0.2, 0.4, 0.6, 0.8, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (prune.MagnitudeGlobal{}).PlanNested(m, sweep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1_PlanNestedStructured(b *testing.B) {
	m := zoo(b).CloneSign()
	sweep := []float64{0.2, 0.4, 0.6, 0.8, 0.9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (prune.StructuredChannel{}).PlanNested(m, sweep); err != nil {
			b.Fatal(err)
		}
	}
}

// --- F2: latency vs sparsity — measured single-frame inference. ---

func benchInference(b *testing.B, model *nn.Sequential) {
	b.Helper()
	input := tensor.RandNormal(tensor.NewRNG(2), 0, 1, 1, 1, 16, 16)
	model.Forward(input, false) // warm-up
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Forward(input, false)
	}
}

func BenchmarkF2_InferenceDense(b *testing.B) {
	benchInference(b, zoo(b).CloneSign())
}

func BenchmarkF2_InferenceUnstructured90(b *testing.B) {
	m := zoo(b).CloneSign()
	plan, err := prune.PlanSingle(prune.MagnitudeGlobal{}, m, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	plan.Apply(m)
	benchInference(b, m)
}

func BenchmarkF2_InferenceCompacted90(b *testing.B) {
	m := zoo(b).CloneSign()
	plan, err := prune.PlanSingle(prune.StructuredChannel{}, m, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	plan.Apply(m)
	compacted, err := prune.Compact(m)
	if err != nil {
		b.Fatal(err)
	}
	benchInference(b, compacted)
}

// --- F3: recovery latency — the headline comparison. ---

func BenchmarkF3_ReversibleRestore(b *testing.B) {
	_, rm := benchStack(b)
	deepest := rm.NumLevels() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rm.ApplyLevel(deepest); err != nil {
			b.Fatal(err)
		}
		if err := rm.RestoreFull(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3_CheckpointReloadRAM(b *testing.B) {
	model, _ := benchStack(b)
	checkpoint, err := model.EncodeWeights()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := model.DecodeWeights(checkpoint); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3_CheckpointReloadDisk(b *testing.B) {
	model, _ := benchStack(b)
	checkpoint, err := model.EncodeWeights()
	if err != nil {
		b.Fatal(err)
	}
	f, err := os.CreateTemp(b.TempDir(), "ckpt-*.bin")
	if err != nil {
		b.Fatal(err)
	}
	if _, err := f.Write(checkpoint); err != nil {
		b.Fatal(err)
	}
	path := f.Name()
	f.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := model.DecodeWeights(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF3_FineTuneRecoveryEpoch(b *testing.B) {
	z := zoo(b)
	trainSet := z.ObstacleTrain()
	m := z.CloneObstacle()
	plan, err := prune.PlanSingle(prune.MagnitudeGlobal{}, m, 0.9)
	if err != nil {
		b.Fatal(err)
	}
	plan.Apply(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		train.Fit(m, trainSet.X, trainSet.Labels, train.Config{
			Epochs:    1,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.001, 0),
			Seed:      int64(i),
		})
	}
}

// --- F4: adaptation timeline — one full MAPE-K control tick. ---

func BenchmarkF4_GovernorTick(b *testing.B) {
	_, rm := benchStack(b)
	gov, err := governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract())
	if err != nil {
		b.Fatal(err)
	}
	assessor := safety.DefaultAssessor()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate calm and critical ticks so transitions happen.
		score := 0.1
		if i%100 > 90 {
			score = 0.9
		}
		a := assessor.Assess(5*(1-score), 0.2, 0.2)
		if _, err := gov.Tick(i, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF4_PerceptionDetect(b *testing.B) {
	model, _ := benchStack(b)
	pipe, err := perception.NewPipeline(model, 16, 0)
	if err != nil {
		b.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	frame := tensor.FromSlice(make([]float32, 256), 1, 16, 16)
	for i := range frame.Data() {
		frame.Data()[i] = rng.Float32()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pipe.Detect(frame)
	}
}

// --- F5: policy ablation — a single policy decision. ---

func benchPolicy(b *testing.B, p governor.Policy) {
	b.Helper()
	_, rm := benchStack(b)
	in := governor.Inputs{
		Assessment: safety.DefaultAssessor().Assess(2.0, 0.3, 0.3),
		Levels:     rm.Levels(),
		Contract:   safety.DefaultContract(),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Tick = i
		p.Decide(in)
	}
}

func BenchmarkF5_PolicyThreshold(b *testing.B)  { benchPolicy(b, governor.Threshold{}) }
func BenchmarkF5_PolicyHysteresis(b *testing.B) { benchPolicy(b, &governor.Hysteresis{DwellTicks: 20}) }
func BenchmarkF5_PolicyPredictive(b *testing.B) { benchPolicy(b, &governor.Predictive{}) }

// --- T1: memory overhead — building the recovery store. ---

func BenchmarkT1_BuildRecoveryStore(b *testing.B) {
	z := zoo(b)
	levels := []float64{0.3, 0.43, 0.57, 0.7}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m := z.CloneObstacle()
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := core.Build(m, plans); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T2/T3: safety & energy — one closed-loop scenario tick. ---

func BenchmarkT2_ClosedLoopScenario(b *testing.B) {
	z := zoo(b)
	spec := platform.EmbeddedCPU()
	sc := sim.CutIn()
	sc.Ticks = 200 // one bench iteration = 200 control ticks
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		model, rm, err := z.ObstacleStack(nil, spec)
		if err != nil {
			b.Fatal(err)
		}
		gov, err := governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
			FrameSize: 16, Spec: spec, Governor: gov, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T3 companion: the platform cost model itself. ---

func BenchmarkT3_PlatformEstimate(b *testing.B) {
	model, _ := benchStack(b)
	spec := platform.EmbeddedCPU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Estimate(model)
	}
}

// --- T4: level calibration — one full-test-set evaluation pass. ---

func BenchmarkT4_CalibrationEval(b *testing.B) {
	z := zoo(b)
	model := z.CloneObstacle()
	eval := z.ObstacleEval()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval(model)
	}
}

// --- T5: transition matrix — single-step and full-depth transitions. ---

func BenchmarkT5_TransitionOneStep(b *testing.B) {
	_, rm := benchStack(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rm.ApplyLevel(1); err != nil {
			b.Fatal(err)
		}
		if err := rm.ApplyLevel(0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkT5_TransitionFullDepth(b *testing.B) {
	_, rm := benchStack(b)
	deepest := rm.NumLevels() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rm.ApplyLevel(deepest); err != nil {
			b.Fatal(err)
		}
		if err := rm.ApplyLevel(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A-series ablation benches. ---

func BenchmarkA1_QuantizeApply8bit(b *testing.B) {
	m := zoo(b).CloneObstacle()
	q, err := quant.BuildQuantizer(m, []int{8})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := q.ApplyLevel(1); err != nil {
			b.Fatal(err)
		}
		if err := q.Restore(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSparseMatmul(b *testing.B, sparsity float64) {
	b.Helper()
	rng := tensor.NewRNG(4)
	const n = 256
	a := tensor.RandNormal(rng, 0, 1, n, n)
	perm := rng.Perm(n * n)
	for _, idx := range perm[:int(sparsity*float64(n*n))] {
		a.Data()[idx] = 0
	}
	bb := tensor.RandNormal(rng, 0, 1, n, n)
	out := tensor.New(n, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, a, bb)
	}
}

func BenchmarkA3_MatmulDense(b *testing.B)    { benchSparseMatmul(b, 0) }
func BenchmarkA3_MatmulSparse90(b *testing.B) { benchSparseMatmul(b, 0.9) }

func BenchmarkA5_HalfStoreRestore(b *testing.B) {
	z := zoo(b)
	levels, err := z.DesignedLevels()
	if err != nil {
		b.Fatal(err)
	}
	m := z.CloneObstacle()
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
	if err != nil {
		b.Fatal(err)
	}
	rm, err := core.Build(m, plans, core.WithHalfPrecisionStore())
	if err != nil {
		b.Fatal(err)
	}
	deepest := rm.NumLevels() - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rm.ApplyLevel(deepest); err != nil {
			b.Fatal(err)
		}
		if err := rm.RestoreFull(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Fleet throughput: fused batched dispatch vs the per-instance path. ---

// benchFleet builds a fleet of size clones of the obstacle stack — every
// instance a copy-on-write view over the zoo's one shared checkpoint
// store, so the whole fleet shares a CheckpointID and the batch planner
// can fuse across it without re-fingerprinting.
func benchFleet(b testing.TB, size int) (*fleet.Fleet, []string, []*tensor.Tensor) {
	b.Helper()
	z := zooTB(b)
	f := fleet.New()
	b.Cleanup(func() {
		if err := f.Release(); err != nil {
			b.Error(err)
		}
	})
	names := make([]string, size)
	for i := range names {
		model, rm, err := z.ObstacleStackView(platform.EmbeddedCPU())
		if err != nil {
			b.Fatal(err)
		}
		pipe, err := perception.NewPipeline(model, 16, 0)
		if err != nil {
			b.Fatal(err)
		}
		names[i] = fmt.Sprintf("car%02d", i)
		inst, err := fleet.NewInstance(names[i], pipe, rm)
		if err != nil {
			b.Fatal(err)
		}
		if err := f.Add(inst); err != nil {
			b.Fatal(err)
		}
	}
	rng := tensor.NewRNG(9)
	frames := make([]*tensor.Tensor, size)
	for i := range frames {
		frames[i] = tensor.RandNormal(rng, 0, 1, 1, 16, 16)
	}
	return f, names, frames
}

// benchRounds is how many frames per instance one throughput iteration
// pushes. Throughput is a sustained-rate quantity: several rounds keep the
// batched dispatcher's queue deep enough that goroutine hand-off latency
// amortizes across fused passes instead of being charged to every frame.
const benchRounds = 8

// BenchmarkFleetThroughput is the scripts/bench_fleet.sh workload: one
// iteration classifies benchRounds frames per instance, either through the
// batched dispatcher (fused groups, one matmul per layer) or the plain
// per-instance path. The ns/frame metric is what BENCH_fleet.json records
// and what the verify.sh non-regression gate compares — batched must not
// be slower at fleet sizes ≥ 8.
func BenchmarkFleetThroughput(b *testing.B) {
	for _, size := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sequential-%d", size), func(b *testing.B) {
			f, names, frames := benchFleet(b, size)
			insts := make([]*fleet.Instance, size)
			for i, n := range names {
				insts[i], _ = f.Get(n)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < benchRounds; r++ {
					for j, inst := range insts {
						if _, err := inst.Detect(frames[j]); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size*benchRounds), "ns/frame")
		})
		b.Run(fmt.Sprintf("batched-%d", size), func(b *testing.B) {
			f, names, frames := benchFleet(b, size)
			// Fusion has a cache sweet spot: past ~16 frames the stacked
			// im2col matrix outgrows L2 and the wide pass slows down, so the
			// planner is capped there and large fleets run as several fused
			// groups overlapping across the workers. Below the cap a window
			// may fuse several queued rounds of the same instances (the
			// planner dedupes locks and keeps per-instance frame order), so
			// small fleets still fill 16-wide passes.
			maxBatch := 2 * size
			if maxBatch < 2 {
				maxBatch = 2
			}
			if maxBatch > 16 {
				maxBatch = 16
			}
			d, err := fleet.NewDispatcher(f, 2, benchRounds*size, fleet.WithBatching(maxBatch))
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for r := 0; r < benchRounds; r++ {
					for j, name := range names {
						if _, err := d.Submit(name, frames[j]); err != nil {
							b.Fatal(err)
						}
					}
				}
				for j := 0; j < benchRounds*size; j++ {
					if res := <-d.Results(); res.Err != nil {
						b.Fatal(res.Err)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*size*benchRounds), "ns/frame")
		})
	}
}

// --- Bundle serialization (deployment path). ---

func BenchmarkBundleSaveLoad(b *testing.B) {
	z := zoo(b)
	_, rm := benchStack(b)
	var buf bytes.Buffer
	if err := rm.Save(&buf); err != nil {
		b.Fatal(err)
	}
	bundle := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := experiments.NewObstacleNet(1)
		if _, err := core.Load(m, bytes.NewReader(bundle)); err != nil {
			b.Fatal(err)
		}
	}
	_ = z
}
