module repro

go 1.22

// Deliberately dependency-free. internal/lint would normally pin
// golang.org/x/tools for go/analysis + analysistest; this build
// environment has no module proxy, so the same API shapes are
// implemented on go/ast + go/types instead (DESIGN.md §8). If x/tools
// becomes pinnable, the analyzers port mechanically.
