#!/usr/bin/env bash
# verify.sh — the tier-1.5 verification gate (see ROADMAP.md).
#
# Runs, in order, failing fast on the first nonzero exit:
#   1. go vet            — the standard toolchain checks
#   2. go build          — everything compiles
#   3. rpnlint           — the project's safety-invariant analyzers
#                          (nopanic, floateq, lockcheck, detrand, ctxbound,
#                          goroleak, errdrop, atomicmix; see docs/LINT.md).
#                          One -format=json run doubles as the machine-
#                          readable artifact (rpnlint.json) and, through
#                          -stale, the stale-suppression audit: the step
#                          fails on any unsuppressed finding OR any
#                          lint:allow comment that suppresses nothing.
#   4. rpnlint perf      — the parallel loader must not regress against the
#                          serial one (tolerance 1.5x, best of two attempts,
#                          because CI wall clocks are noisy)
#   5. go test           — the full unit-test suite
#   6. go test -race     — the concurrency-sensitive packages under the
#                          race detector
#   7. go test -fuzz     — a short coverage-guided smoke run of the binary
#                          format fuzzers (the checked-in corpus always runs
#                          as part of step 5)
#   8. docs consistency  — the METRICS.md cross-check: every emitted metric
#                          documented, every documented metric emitted
#   9. fleet throughput  — scripts/bench_fleet.sh: the batched fused
#                          dispatch path must not be slower than the
#                          per-instance path at fleet sizes ≥ 8 (best of
#                          two attempts); writes BENCH_fleet.json
#
# Artifacts land in $VERIFY_ARTIFACT_DIR (default: a fresh temp dir,
# echoed so CI can collect it).
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo "==> $*"
    "$@"
}

ARTIFACT_DIR="${VERIFY_ARTIFACT_DIR:-$(mktemp -d /tmp/rpn-verify.XXXXXX)}"
mkdir -p "$ARTIFACT_DIR"
RPNLINT="$ARTIFACT_DIR/rpnlint"

step go vet ./...
step go build ./...
step go build -o "$RPNLINT" ./cmd/rpnlint

echo "==> rpnlint -stale -format=json ./... (artifact: $ARTIFACT_DIR/rpnlint.json)"
if ! "$RPNLINT" -stale -format=json ./... > "$ARTIFACT_DIR/rpnlint.json"; then
    echo "rpnlint gate failed; findings and stale suppressions:"
    "$RPNLINT" -stale ./... || true
    exit 1
fi

# Parallel-loader wall-clock non-regression: the goroutine-per-package
# type-checker must stay within 1.5x of the serial loader. Wall clocks are
# noisy, so a failing first attempt gets one re-measure before the gate
# trips.
echo "==> rpnlint parallel loader non-regression"
lint_ms() { # lint_ms <extra-flags...> -> milliseconds on stdout
    local t0 t1
    t0=$(date +%s%N)
    "$RPNLINT" "$@" ./... > /dev/null
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}
perf_ok=0
for attempt in 1 2; do
    serial_ms=$(lint_ms -parallel=false)
    parallel_ms=$(lint_ms)
    echo "    attempt $attempt: serial ${serial_ms}ms, parallel ${parallel_ms}ms"
    if (( parallel_ms * 10 <= serial_ms * 15 )); then
        perf_ok=1
        break
    fi
done
if (( ! perf_ok )); then
    echo "parallel loader regressed: ${parallel_ms}ms > 1.5x serial ${serial_ms}ms"
    exit 1
fi

step go test ./...
step go test -race ./internal/perception/ ./internal/tensor/ ./internal/governor/ ./internal/metrics/ ./internal/telemetry/ ./internal/telemetry/otlp/ ./internal/fleet/ ./internal/fault/ ./internal/health/
step go test -run '^$' -fuzz FuzzReadTensor -fuzztime 5s ./internal/tensor/
step go test -run '^$' -fuzz FuzzStackRoundTrip -fuzztime 5s ./internal/tensor/
step go test -run '^$' -fuzz FuzzMaskRoundTrip -fuzztime 5s ./internal/prune/
step go test -run '^$' -fuzz FuzzDecodeRequest -fuzztime 5s ./internal/telemetry/otlp/
step go test -run '^$' -fuzz FuzzSeriesRoundTrip -fuzztime 5s ./internal/telemetry/
step go test -run '^$' -fuzz FuzzParseFaultSpec -fuzztime 5s ./internal/fault/
step go test -run TestMetricsDocCrossCheck -count=1 ./internal/telemetry/
step scripts/bench_fleet.sh

echo "verify: all gates passed (artifacts: $ARTIFACT_DIR)"
