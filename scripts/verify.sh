#!/usr/bin/env bash
# verify.sh — the tier-1.5 verification gate (see ROADMAP.md).
#
# Runs, in order, failing fast on the first nonzero exit:
#   1. go vet            — the standard toolchain checks
#   2. go build          — everything compiles
#   3. rpnlint           — the project's safety-invariant analyzers
#                          (nopanic, floateq, lockcheck, detrand, ctxbound);
#                          exits nonzero on any unsuppressed finding
#   4. go test           — the full unit-test suite
#   5. go test -race     — the concurrency-sensitive packages under the
#                          race detector
#   6. go test -fuzz     — a short coverage-guided smoke run of the binary
#                          format fuzzers (the checked-in corpus always runs
#                          as part of step 4)
#   7. docs consistency  — the METRICS.md cross-check: every emitted metric
#                          documented, every documented metric emitted
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo "==> $*"
    "$@"
}

step go vet ./...
step go build ./...
step go run ./cmd/rpnlint ./...
step go test ./...
step go test -race ./internal/perception/ ./internal/tensor/ ./internal/governor/ ./internal/metrics/ ./internal/telemetry/ ./internal/telemetry/otlp/ ./internal/fleet/ ./internal/fault/ ./internal/health/
step go test -run '^$' -fuzz FuzzReadTensor -fuzztime 5s ./internal/tensor/
step go test -run '^$' -fuzz FuzzMaskRoundTrip -fuzztime 5s ./internal/prune/
step go test -run '^$' -fuzz FuzzDecodeRequest -fuzztime 5s ./internal/telemetry/otlp/
step go test -run '^$' -fuzz FuzzSeriesRoundTrip -fuzztime 5s ./internal/telemetry/
step go test -run '^$' -fuzz FuzzParseFaultSpec -fuzztime 5s ./internal/fault/
step go test -run TestMetricsDocCrossCheck -count=1 ./internal/telemetry/

echo "verify: all gates passed"
