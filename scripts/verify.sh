#!/usr/bin/env bash
# verify.sh — the tier-1.5 verification gate (see ROADMAP.md).
#
# Runs, in order, failing fast on the first nonzero exit:
#   1. go vet            — the standard toolchain checks
#   2. go build          — everything compiles
#   3. rpnlint           — the project's safety-invariant analyzers
#                          (nopanic, floateq, lockcheck, detrand, ctxbound,
#                          goroleak, errdrop, atomicmix; see docs/LINT.md).
#                          One -format=json run doubles as the machine-
#                          readable artifact (rpnlint.json) and, through
#                          -stale, the stale-suppression audit: the step
#                          fails on any unsuppressed finding OR any
#                          lint:allow comment that suppresses nothing.
#   4. rpnlint perf      — the parallel loader must not regress against the
#                          serial one (tolerance 1.5x, best of two attempts,
#                          because CI wall clocks are noisy)
#   5. go test           — the full unit-test suite
#   6. go test -race     — the concurrency-sensitive packages under the
#                          race detector
#   7. go test -fuzz     — a short coverage-guided smoke run of the binary
#                          format fuzzers (the checked-in corpus always runs
#                          as part of step 5)
#   8. docs consistency  — the METRICS.md cross-check (every emitted metric
#                          documented, every documented metric emitted) and
#                          the docs link check (every docs/*.md file that
#                          README.md, DESIGN.md, or a docs page references
#                          must exist — a renamed chapter fails here, not in
#                          a reader's 404)
#   9. fleet throughput  — scripts/bench_fleet.sh: the batched fused
#                          dispatch path must not be slower than the
#                          per-instance path at fleet sizes ≥ 8 (best of
#                          two attempts); writes BENCH_fleet.json
#  10. fleet memory      — scripts/bench_mem.sh: a 64-wide fleet of
#                          copy-on-write store views must keep per-instance
#                          resident bytes ≤ 0.25× the independent-build
#                          baseline; writes BENCH_mem.json
#  11. telemetry hot path — scripts/bench_telemetry.sh: the sharded
#                          registry must beat the seed mutex registry ≥ 4×
#                          under contended Observe/Incr at 8 goroutines
#                          (non-regression on hosts too small to express
#                          contention); writes BENCH_telemetry.json
#  12. ingest front end   — scripts/bench_ingest.sh: the sheds-before-
#                          blocking gate — at a 64-vehicle overload the
#                          criticality queue must actually shed AND p99
#                          enqueue latency must stay bounded (a blocking
#                          front end shows queue-scale waits there);
#                          writes BENCH_ingest.json
#
# Artifacts land in $VERIFY_ARTIFACT_DIR (default: a fresh temp dir,
# echoed so CI can collect it).
set -euo pipefail
cd "$(dirname "$0")/.."

step() {
    echo "==> $*"
    "$@"
}

ARTIFACT_DIR="${VERIFY_ARTIFACT_DIR:-$(mktemp -d /tmp/rpn-verify.XXXXXX)}"
mkdir -p "$ARTIFACT_DIR"
RPNLINT="$ARTIFACT_DIR/rpnlint"

step go vet ./...
step go build ./...
step go build -o "$RPNLINT" ./cmd/rpnlint

echo "==> rpnlint -stale -format=json ./... (artifact: $ARTIFACT_DIR/rpnlint.json)"
if ! "$RPNLINT" -stale -format=json ./... > "$ARTIFACT_DIR/rpnlint.json"; then
    echo "rpnlint gate failed; findings and stale suppressions:"
    "$RPNLINT" -stale ./... || true
    exit 1
fi

# Parallel-loader wall-clock non-regression: the goroutine-per-package
# type-checker must stay within 1.5x of the serial loader. Wall clocks are
# noisy, so a failing first attempt gets one re-measure before the gate
# trips.
echo "==> rpnlint parallel loader non-regression"
lint_ms() { # lint_ms <extra-flags...> -> milliseconds on stdout
    local t0 t1
    t0=$(date +%s%N)
    "$RPNLINT" "$@" ./... > /dev/null
    t1=$(date +%s%N)
    echo $(( (t1 - t0) / 1000000 ))
}
perf_ok=0
for attempt in 1 2; do
    serial_ms=$(lint_ms -parallel=false)
    parallel_ms=$(lint_ms)
    echo "    attempt $attempt: serial ${serial_ms}ms, parallel ${parallel_ms}ms"
    if (( parallel_ms * 10 <= serial_ms * 15 )); then
        perf_ok=1
        break
    fi
done
if (( ! perf_ok )); then
    echo "parallel loader regressed: ${parallel_ms}ms > 1.5x serial ${serial_ms}ms"
    exit 1
fi

step go test ./...
step go test -race ./internal/core/ ./internal/perception/ ./internal/tensor/ ./internal/governor/ ./internal/metrics/ ./internal/telemetry/ ./internal/telemetry/window/ ./internal/telemetry/otlp/ ./internal/fleet/ ./internal/fault/ ./internal/health/ ./internal/ingest/
step go test -run '^$' -fuzz FuzzReadTensor -fuzztime 5s ./internal/tensor/
step go test -run '^$' -fuzz FuzzStackRoundTrip -fuzztime 5s ./internal/tensor/
step go test -run '^$' -fuzz FuzzMaskRoundTrip -fuzztime 5s ./internal/prune/
step go test -run '^$' -fuzz FuzzStoreRoundTrip -fuzztime 5s ./internal/core/
step go test -run '^$' -fuzz FuzzDecodeRequest -fuzztime 5s ./internal/telemetry/otlp/
step go test -run '^$' -fuzz FuzzSeriesRoundTrip -fuzztime 5s ./internal/telemetry/
step go test -run '^$' -fuzz FuzzWindowStoreRoundTrip -fuzztime 5s ./internal/telemetry/window/
step go test -run '^$' -fuzz FuzzParseFaultSpec -fuzztime 5s ./internal/fault/
step go test -run '^$' -fuzz FuzzReadFrame -fuzztime 5s ./internal/ingest/
step go test -run TestMetricsDocCrossCheck -count=1 ./internal/telemetry/

# Docs link check: every docs/*.md page referenced from README.md,
# DESIGN.md, or another docs page must exist on disk.
echo "==> docs link check"
docs_ok=1
while read -r src ref; do
    # Relative links resolve against the source file's directory.
    target="$(dirname "$src")/$ref"
    target="${target#./}"
    if [[ ! -f "$target" ]]; then
        echo "docs link check: $src references $target, which does not exist" >&2
        docs_ok=0
    fi
done < <(grep -oE '\((docs/)?[A-Za-z_]+\.md(#[a-z-]+)?\)' README.md DESIGN.md docs/*.md \
    | sed -E 's/[()]//g; s/#[a-z-]+$//' \
    | awk -F: '$2 ~ /\.md$/ { print $1, $2 }' | sort -u)
(( docs_ok )) || exit 1

step scripts/bench_fleet.sh
step scripts/bench_mem.sh
step scripts/bench_telemetry.sh
step scripts/bench_ingest.sh

echo "verify: all gates passed (artifacts: $ARTIFACT_DIR)"
