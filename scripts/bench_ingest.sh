#!/usr/bin/env bash
# bench_ingest.sh — the ingest front-end benchmark runner and the
# sheds-before-blocking gate. Runs BenchmarkIngest (the full TCP path —
# handshake, framing, criticality queue, stub backend, result routing — at
# 1, 8, and 64 vehicles against a backend pinned at a finite service rate),
# writes frames/sec, shed ratio, and p99 enqueue latency to
# BENCH_ingest.json, and exits nonzero unless:
#
#   - the 64-vehicle run actually overloaded the queue (shed_ratio > 0;
#     otherwise the latency gate would be vacuous), and
#   - p99 enqueue latency stayed bounded (default ≤ 2000 µs) at that
#     overload. Enqueueing is admission + shed decision only — a front end
#     that blocked producers instead of shedding would show queue-scale
#     waits (milliseconds and up) here first.
#
# Wall clocks are noisy: while the gate fails, up to two full re-measures
# run and the per-series best (max frames/sec, min p99) across all
# attempts is what the gate — and the JSON artifact — records.
#
# Environment:
#   INGEST_BENCH_OUT     output path (default BENCH_ingest.json in the repo root)
#   INGEST_BENCH_TIME    -benchtime per benchmark (default 3000x)
#   INGEST_BENCH_P99_US  p99 enqueue bound in µs at 64 vehicles (default 2000)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${INGEST_BENCH_OUT:-BENCH_ingest.json}"
BENCHTIME="${INGEST_BENCH_TIME:-3000x}"
P99_BOUND_US="${INGEST_BENCH_P99_US:-2000}"
SIZES=(1 8 64)

declare -A FPS   # vehicles -> best frames/sec seen
declare -A SHED  # vehicles -> shed_ratio from the best-fps attempt
declare -A P99   # vehicles -> best (minimum) p99_enqueue_us seen

measure() { # one full benchmark run; folds the best values into the maps
    local raw
    raw=$(go test -run '^$' -bench '^BenchmarkIngest$' -benchtime "$BENCHTIME" ./internal/ingest/)
    echo "$raw" | grep 'frames/sec' || true
    while read -r size fps shed p99; do
        [[ -n "$size" ]] || continue
        if [[ -z "${FPS[$size]:-}" ]] || awk -v a="$fps" -v b="${FPS[$size]}" 'BEGIN { exit !(a > b) }'; then
            FPS[$size]="$fps"
            SHED[$size]="$shed"
        fi
        if [[ -z "${P99[$size]:-}" ]] || awk -v a="$p99" -v b="${P99[$size]}" 'BEGIN { exit !(a < b) }'; then
            P99[$size]="$p99"
        fi
    done < <(echo "$raw" | awk '
        /^BenchmarkIngest\// {
            name = $1
            sub(/^BenchmarkIngest\/vehicles=/, "", name)
            sub(/-[0-9]+$/, "", name) # strip the -GOMAXPROCS suffix
            fps = shed = p99 = ""
            for (i = 1; i <= NF; i++) {
                if ($i == "frames/sec")     fps  = $(i-1)
                if ($i == "shed_ratio")     shed = $(i-1)
                if ($i == "p99_enqueue_us") p99  = $(i-1)
            }
            if (fps != "") print name, fps, (shed == "" ? 0 : shed), (p99 == "" ? 0 : p99)
        }')
}

gate_ok() {
    local shed64 p99_64
    for size in "${SIZES[@]}"; do
        if [[ -z "${FPS[$size]:-}" ]]; then
            echo "bench_ingest: missing series for $size vehicles" >&2
            return 1
        fi
    done
    shed64="${SHED[64]}"
    p99_64="${P99[64]}"
    if awk -v s="$shed64" 'BEGIN { exit !(s <= 0) }'; then
        echo "bench_ingest: 64 vehicles shed nothing (ratio $shed64) — queue never overloaded, latency gate vacuous" >&2
        return 1
    fi
    if awk -v p="$p99_64" -v bound="$P99_BOUND_US" 'BEGIN { exit !(p > bound) }'; then
        echo "bench_ingest: p99 enqueue ${p99_64}µs exceeds ${P99_BOUND_US}µs at 64-vehicle overload — the front end is blocking producers instead of shedding" >&2
        return 1
    fi
    return 0
}

echo "==> ingest throughput, attempt 1 (benchtime $BENCHTIME)"
measure
for attempt in 2 3; do
    gate_ok && break
    echo "==> gate failed, re-measuring (attempt $attempt of 3, best-of)"
    measure
done

{
    echo '{'
    echo '  "benchmark": "BenchmarkIngest",'
    echo "  \"benchtime\": \"$BENCHTIME\","
    echo "  \"p99_enqueue_bound_us\": $P99_BOUND_US,"
    echo '  "series": ['
    for i in "${!SIZES[@]}"; do
        size="${SIZES[$i]}"
        comma=','
        [[ $i -eq $(( ${#SIZES[@]} - 1 )) ]] && comma=''
        printf '    {"vehicles": %s, "frames_per_sec": %s, "shed_ratio": %s, "p99_enqueue_us": %s}%s\n' \
            "$size" "${FPS[$size]:-null}" "${SHED[$size]:-null}" "${P99[$size]:-null}" "$comma"
    done
    echo '  ]'
    echo '}'
} > "$OUT"
echo "==> wrote $OUT"

gate_ok || { echo "bench_ingest: sheds-before-blocking gate failed" >&2; exit 1; }
echo "bench_ingest: queue overloaded at 64 vehicles (shed ratio ${SHED[64]}) with p99 enqueue ${P99[64]}µs ≤ ${P99_BOUND_US}µs"
