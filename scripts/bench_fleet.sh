#!/usr/bin/env bash
# bench_fleet.sh — the fleet-throughput benchmark runner and non-regression
# gate. Runs BenchmarkFleetThroughput (batched fused dispatch vs the plain
# per-instance path at fleet sizes 1, 8, 64), writes the per-frame numbers
# to BENCH_fleet.json, and exits nonzero if the batched path is slower than
# the per-instance path at any fleet size ≥ 8.
#
# Wall clocks are noisy: while the gate fails, up to two full re-measures
# run and the per-series best (minimum ns/frame) across all attempts is
# what the gate — and the JSON artifact — records.
#
# Environment:
#   FLEET_BENCH_OUT   output path (default BENCH_fleet.json in the repo root)
#   FLEET_BENCH_TIME  -benchtime per benchmark (default 0.5s)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${FLEET_BENCH_OUT:-BENCH_fleet.json}"
BENCHTIME="${FLEET_BENCH_TIME:-0.5s}"
SIZES=(1 8 64)
GATED=(8 64)

declare -A BEST # "mode-size" -> best ns/frame seen

measure() { # one full benchmark run; folds ns/frame minima into BEST
    local raw
    raw=$(go test -run '^$' -bench '^BenchmarkFleetThroughput$' -benchtime "$BENCHTIME" .)
    echo "$raw" | grep 'ns/frame' || true
    while read -r key val; do
        [[ -n "$key" ]] || continue
        if [[ -z "${BEST[$key]:-}" ]] || (( $(printf '%.0f' "$val") < $(printf '%.0f' "${BEST[$key]}") )); then
            BEST[$key]="$val"
        fi
    done < <(echo "$raw" | awk '
        /^BenchmarkFleetThroughput\// {
            name = $1
            sub(/^BenchmarkFleetThroughput\//, "", name)
            # Go appends -GOMAXPROCS when it is > 1; strip it only when both
            # the fleet size and the procs suffix are present.
            if (name ~ /^(sequential|batched)-[0-9]+-[0-9]+$/) sub(/-[0-9]+$/, "", name)
            for (i = 1; i <= NF; i++) if ($i == "ns/frame") print name, $(i-1)
        }')
}

gate_ok() {
    local size seq bat
    for size in "${GATED[@]}"; do
        seq="${BEST[sequential-$size]:-}"
        bat="${BEST[batched-$size]:-}"
        if [[ -z "$seq" || -z "$bat" ]]; then
            echo "bench_fleet: missing series for fleet size $size" >&2
            return 1
        fi
        if (( $(printf '%.0f' "$bat") > $(printf '%.0f' "$seq") )); then
            echo "bench_fleet: batched ${bat} ns/frame slower than per-instance ${seq} ns/frame at fleet ${size}" >&2
            return 1
        fi
    done
    return 0
}

echo "==> fleet throughput, attempt 1 (benchtime $BENCHTIME)"
measure
for attempt in 2 3; do
    gate_ok && break
    echo "==> gate failed, re-measuring (attempt $attempt of 3, best-of minima)"
    measure
done

{
    echo '{'
    echo '  "benchmark": "BenchmarkFleetThroughput",'
    echo '  "unit": "ns/frame",'
    echo "  \"benchtime\": \"$BENCHTIME\","
    echo '  "fleets": ['
    for i in "${!SIZES[@]}"; do
        size="${SIZES[$i]}"
        seq="${BEST[sequential-$size]:-null}"
        bat="${BEST[batched-$size]:-null}"
        speedup=null
        if [[ "$seq" != null && "$bat" != null ]]; then
            speedup=$(awk -v s="$seq" -v b="$bat" 'BEGIN { printf "%.3f", s / b }')
        fi
        comma=','
        [[ $i -eq $(( ${#SIZES[@]} - 1 )) ]] && comma=''
        printf '    {"size": %s, "sequential_ns_per_frame": %s, "batched_ns_per_frame": %s, "speedup": %s}%s\n' \
            "$size" "$seq" "$bat" "$speedup" "$comma"
    done
    echo '  ]'
    echo '}'
} > "$OUT"
echo "==> wrote $OUT"

gate_ok || { echo "bench_fleet: non-regression gate failed" >&2; exit 1; }
echo "bench_fleet: batched path at least as fast as per-instance at fleet ≥ 8"
