#!/usr/bin/env bash
# bench_telemetry.sh — the contended telemetry hot-path benchmark runner
# and speedup gate. Runs the BenchmarkContended* pairs in
# internal/telemetry at -cpu 8 (8 goroutines), comparing the sharded
# registry hot path against an in-tree replica of the seed's mutex-guarded
# registry, and writes the ns/op numbers to BENCH_telemetry.json.
#
# Gate (checked after best-of-3 minima):
#   - hosts with ≥ 4 hardware threads can express real mutex contention:
#     sharded Observe and Incr must be at least 4× faster than the seed
#     mutex registry (the ISSUE 9 acceptance bar);
#   - below 4 hardware threads the 8 goroutines time-share one or two
#     cores, the seed mutex is never actually contended (the holder always
#     runs to unlock before a waiter spins), and a wall-clock contention
#     gap is physically unobservable; the gate degrades to non-regression —
#     sharded ns/op must stay within 1.15× of the seed — and the JSON
#     records which gate applied.
#
# Environment:
#   TELEMETRY_BENCH_OUT   output path (default BENCH_telemetry.json in repo root)
#   TELEMETRY_BENCH_TIME  -benchtime per benchmark (default 0.5s)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${TELEMETRY_BENCH_OUT:-BENCH_telemetry.json}"
BENCHTIME="${TELEMETRY_BENCH_TIME:-0.5s}"
HW_THREADS=$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)
CONTENDED_BAR=4.0
NONREG_BAR=1.15

declare -A BEST # benchmark name -> best ns/op seen

measure() { # one full benchmark run; folds ns/op minima into BEST
    local raw
    raw=$(go test -run '^$' -bench '^BenchmarkContended' -cpu 8 -benchtime "$BENCHTIME" ./internal/telemetry/)
    echo "$raw" | grep 'ns/op' || true
    while read -r key val; do
        [[ -n "$key" ]] || continue
        better=$(awk -v a="$val" -v b="${BEST[$key]:-}" 'BEGIN { print (b == "" || a+0 < b+0) ? 1 : 0 }')
        [[ "$better" == 1 ]] && BEST[$key]="$val"
    done < <(echo "$raw" | awk '
        /^BenchmarkContended/ {
            name = $1
            sub(/^BenchmarkContended/, "", name)
            sub(/-[0-9]+$/, "", name)  # strip the -GOMAXPROCS suffix
            for (i = 1; i <= NF; i++) if ($i == "ns/op") print name, $(i-1)
        }')
}

speedup() { # seed / sharded, 3 decimals; "null" when either side is missing
    local seed="$1" sharded="$2"
    if [[ -z "$seed" || -z "$sharded" ]]; then echo null; return; fi
    awk -v s="$seed" -v h="$sharded" 'BEGIN { printf "%.3f", s / h }'
}

gate_ok() {
    local pair sharded seed ratio
    for pair in "ObserveSharded ObserveSeedMutex" "IncrSharded IncrSeedMutex"; do
        set -- $pair
        sharded="${BEST[$1]:-}"
        seed="${BEST[$2]:-}"
        if [[ -z "$sharded" || -z "$seed" ]]; then
            echo "bench_telemetry: missing series $1/$2" >&2
            return 1
        fi
        if (( HW_THREADS >= 4 )); then
            ratio=$(speedup "$seed" "$sharded")
            if awk -v r="$ratio" -v bar="$CONTENDED_BAR" 'BEGIN { exit !(r < bar) }'; then
                echo "bench_telemetry: $1 ${sharded} ns/op is only ${ratio}x the seed ${seed} ns/op (need ≥ ${CONTENDED_BAR}x)" >&2
                return 1
            fi
        else
            if awk -v h="$sharded" -v s="$seed" -v tol="$NONREG_BAR" 'BEGIN { exit !(h > s * tol) }'; then
                echo "bench_telemetry: $1 ${sharded} ns/op regressed past ${NONREG_BAR}x the seed ${seed} ns/op" >&2
                return 1
            fi
        fi
    done
    return 0
}

echo "==> contended telemetry hot path, attempt 1 (benchtime $BENCHTIME, $HW_THREADS hardware threads)"
measure
for attempt in 2 3; do
    gate_ok && break
    echo "==> gate failed, re-measuring (attempt $attempt of 3, best-of minima)"
    measure
done

GATE="contended-${CONTENDED_BAR}x"
(( HW_THREADS >= 4 )) || GATE="non-regression"
{
    echo '{'
    echo '  "benchmark": "BenchmarkContended{Observe,Incr}{Sharded,SeedMutex}",'
    echo '  "unit": "ns/op",'
    echo '  "goroutines": 8,'
    echo "  \"hw_threads\": $HW_THREADS,"
    echo "  \"benchtime\": \"$BENCHTIME\","
    echo "  \"gate\": \"$GATE\","
    printf '  "observe": {"sharded_ns_per_op": %s, "seed_mutex_ns_per_op": %s, "speedup": %s},\n' \
        "${BEST[ObserveSharded]:-null}" "${BEST[ObserveSeedMutex]:-null}" \
        "$(speedup "${BEST[ObserveSeedMutex]:-}" "${BEST[ObserveSharded]:-}")"
    printf '  "incr": {"sharded_ns_per_op": %s, "seed_mutex_ns_per_op": %s, "speedup": %s},\n' \
        "${BEST[IncrSharded]:-null}" "${BEST[IncrSeedMutex]:-null}" \
        "$(speedup "${BEST[IncrSeedMutex]:-}" "${BEST[IncrSharded]:-}")"
    printf '  "observe_under_flush_ns_per_op": %s\n' "${BEST[ObserveShardedWithFlush]:-null}"
    echo '}'
} > "$OUT"
echo "==> wrote $OUT"

gate_ok || { echo "bench_telemetry: hot-path gate failed" >&2; exit 1; }
echo "bench_telemetry: sharded hot path passed the $GATE gate"
