#!/usr/bin/env bash
# bench_mem.sh — the fleet memory-footprint runner and non-regression gate.
# Runs TestFleetMemoryFootprint (64 independent stack builds vs one shared
# checkpoint store + 63 copy-on-write views), writes the byte accounting to
# BENCH_mem.json, and exits nonzero unless the shared arm's per-instance
# resident bytes are at most a quarter of the per-clone baseline.
#
# The gate reads the analytic numbers (the store's own deterministic byte
# accounting); the empirical ReadMemStats deltas ride along in the JSON as
# corroboration but are too noisy to gate on — a view's true cost is a few
# KB, below GC measurement noise.
#
# Environment:
#   MEM_BENCH_OUT  output path (default BENCH_mem.json in the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="${MEM_BENCH_OUT:-BENCH_mem.json}"

echo "==> fleet memory footprint (TestFleetMemoryFootprint -> $OUT)"
RPN_MEM_BENCH_OUT="$OUT" go test -run '^TestFleetMemoryFootprint$' -count=1 -v . \
    | grep -E 'fleet 64|memory report|FAIL|ok ' || true

if [[ ! -s "$OUT" ]]; then
    echo "bench_mem: $OUT was not written (test failed before the report?)" >&2
    exit 1
fi

read -r per_clone shared_per < <(awk '
    /"per_clone_bytes"/              { gsub(/[^0-9]/, "", $2); pc = $2 }
    /"shared_per_instance_bytes"/    { gsub(/[^0-9]/, "", $2); sp = $2 }
    END { print pc, sp }' "$OUT")

if [[ -z "$per_clone" || -z "$shared_per" ]]; then
    echo "bench_mem: could not parse per_clone_bytes / shared_per_instance_bytes from $OUT" >&2
    exit 1
fi

# Gate: shared per-instance residency must be <= 0.25x the per-clone
# baseline at fleet 64 (i.e. the copy-on-write store cuts memory >= 4x).
if (( shared_per * 4 > per_clone )); then
    echo "bench_mem: shared per-instance ${shared_per} B exceeds 0.25x per-clone ${per_clone} B" >&2
    exit 1
fi
echo "bench_mem: shared store holds per-instance residency at ${shared_per} B vs ${per_clone} B per clone (>= 4x reduction)"
