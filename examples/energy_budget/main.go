// Energy budget: sweep every static level and the adaptive policies over a
// demanding mixed scenario set, and print the energy/safety frontier a
// deployment engineer would use to pick an operating point.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("training obstacle model and designing level library…")
	zoo := experiments.NewZoo(1)
	spec := revprune.EmbeddedCPU()
	scenarios := []revprune.Scenario{
		revprune.UrbanTraffic(),
		revprune.CutIn(),
		revprune.SensorDegradation(),
	}

	type rowFn func() (*revprune.Sequential, *revprune.ReversibleModel, *revprune.Governor, error)
	mkStatic := func(level int) rowFn {
		return func() (*revprune.Sequential, *revprune.ReversibleModel, *revprune.Governor, error) {
			model, rm, err := zoo.ObstacleStack(nil, spec)
			if err != nil {
				return nil, nil, nil, err
			}
			if err := rm.ApplyLevel(level); err != nil {
				return nil, nil, nil, err
			}
			return model, rm, nil, nil
		}
	}
	mkAdaptive := func(policy func() revprune.Policy) rowFn {
		return func() (*revprune.Sequential, *revprune.ReversibleModel, *revprune.Governor, error) {
			model, rm, err := zoo.ObstacleStack(nil, spec)
			if err != nil {
				return nil, nil, nil, err
			}
			gov, err := revprune.NewGovernor(rm, policy(), revprune.DefaultContract())
			return model, rm, gov, err
		}
	}

	_, probe, err := zoo.ObstacleStack(nil, spec)
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		name string
		mk   rowFn
	}{}
	for i := 0; i < probe.NumLevels(); i++ {
		rows = append(rows, struct {
			name string
			mk   rowFn
		}{fmt.Sprintf("static L%d (%.0f%%)", i, 100*probe.Level(i).Sparsity), mkStatic(i)})
	}
	rows = append(rows,
		struct {
			name string
			mk   rowFn
		}{"adaptive threshold", mkAdaptive(func() revprune.Policy { return revprune.Threshold{} })},
		struct {
			name string
			mk   rowFn
		}{"adaptive hysteresis", mkAdaptive(func() revprune.Policy { return &revprune.Hysteresis{DwellTicks: 20} })},
	)

	fmt.Printf("\n%-22s %12s %8s %10s %12s %10s\n",
		"deployment", "energy (mJ)", "missed", "violations", "false alarms", "collisions")
	for _, r := range rows {
		var energy float64
		var missed, violations, falseAlarms, collisions int
		for _, sc := range scenarios {
			model, rm, gov, err := r.mk()
			if err != nil {
				log.Fatal(err)
			}
			res, err := revprune.RunScenario(sc, model, rm, revprune.LoopConfig{
				FrameSize: 16,
				Spec:      spec,
				Governor:  gov,
				Seed:      9,
			})
			if err != nil {
				log.Fatal(err)
			}
			energy += res.EnergyMJ
			missed += res.Missed
			violations += res.Violations
			falseAlarms += res.FalseAlarms
			if res.Collided {
				collisions++
			}
		}
		fmt.Printf("%-22s %12.1f %8d %10d %12d %10d\n",
			r.name, energy, missed, violations, falseAlarms, collisions)
	}
	fmt.Println("\nreading the frontier: static-deep is cheapest but violates the quality")
	fmt.Println("contract whenever criticality rises; the adaptive rows hold the contract")
	fmt.Println("at nearly the same energy — that is the reversible-pruning win.")
}
