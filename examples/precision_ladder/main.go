// Precision ladder: the reversible quantization knob alongside reversible
// pruning. A quantizer keeps a full-precision shadow master and rounds the
// live weights to 16/8/4-bit grids on demand — the gentler companion to
// pruning's sparsity ladder, and the energy-budget policy rides the prune
// ladder when joules run short.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("training obstacle model…")
	zoo := experiments.NewZoo(1)
	spec := revprune.EmbeddedCPU()

	// The quantization ladder.
	model := zoo.CloneObstacle()
	q, err := revprune.BuildQuantizer(model, []int{16, 8, 4})
	if err != nil {
		log.Fatal(err)
	}
	if err := q.Calibrate(zoo.ObstacleEval()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%-6s %10s %12s\n", "level", "accuracy", "energy (mJ)")
	for i := 0; i < q.NumLevels(); i++ {
		if err := q.ApplyLevel(i); err != nil {
			log.Fatal(err)
		}
		cost := spec.PrecisionScaled(q.Level(i).Bits).Estimate(model)
		fmt.Printf("%-6s %10.4f %12.4f\n", q.Level(i).Name, q.Level(i).Accuracy, cost.EnergyMJ)
	}
	if err := q.Restore(); err != nil {
		log.Fatal(err)
	}
	if err := q.VerifyMaster(); err != nil {
		log.Fatal("quantization not reversible: ", err)
	}
	fmt.Println("\nfull precision restored bit-exactly ✓")

	// An energy-starved mission under the budget policy: the governor digs
	// deep to stay within the joule allowance but still snaps dense on the
	// cut-in.
	pModel, rm, err := zoo.ObstacleStack(nil, spec)
	if err != nil {
		log.Fatal(err)
	}
	budget := &revprune.EnergyBudget{BudgetPerTickMJ: rm.Level(rm.NumLevels()-1).EnergyMJ * 1.1}
	gov, err := revprune.NewGovernor(rm, budget, revprune.DefaultContract())
	if err != nil {
		log.Fatal(err)
	}
	res, err := revprune.RunScenario(revprune.CutIn(), pModel, rm, revprune.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Governor:  gov,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nenergy-budget mission: spent %.1f mJ over %d ticks (allowance %.1f), mean level %.2f, violations %d, collided %v\n",
		res.EnergyMJ, res.Ticks, budget.BudgetPerTickMJ*float64(res.Ticks), res.MeanLevel, res.Violations, res.Collided)
}
