// Adaptive cruise: the full closed loop on a benign highway scenario. The
// governor keeps the perception model deeply pruned for almost the whole
// run, and the energy accounting shows what that buys compared to an
// always-dense deployment.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("training obstacle model and designing level library…")
	zoo := experiments.NewZoo(1)
	spec := revprune.EmbeddedCPU()

	// Always-dense baseline.
	denseModel, denseRM, err := zoo.ObstacleStack(nil, spec)
	if err != nil {
		log.Fatal(err)
	}
	dense, err := revprune.RunScenario(revprune.HighwayCruise(), denseModel, denseRM, revprune.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Adaptive run under a hysteresis governor.
	model, rm, err := zoo.ObstacleStack(nil, spec)
	if err != nil {
		log.Fatal(err)
	}
	gov, err := revprune.NewGovernor(rm, &revprune.Hysteresis{DwellTicks: 20}, revprune.DefaultContract())
	if err != nil {
		log.Fatal(err)
	}
	adaptive, err := revprune.RunScenario(revprune.HighwayCruise(), model, rm, revprune.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Governor:  gov,
		Seed:      7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %12s %10s %10s\n", "deployment", "energy (mJ)", "mean level", "missed", "collided")
	fmt.Printf("%-22s %12.1f %12.2f %10d %10v\n", "always-dense", dense.EnergyMJ, dense.MeanLevel, dense.Missed, dense.Collided)
	fmt.Printf("%-22s %12.1f %12.2f %10d %10v\n", "adaptive (hysteresis)", adaptive.EnergyMJ, adaptive.MeanLevel, adaptive.Missed, adaptive.Collided)
	fmt.Printf("\nenergy saved by runtime pruning: %.1f%%  (%d level switches, %d contract violations)\n",
		100*(1-adaptive.EnergyMJ/dense.EnergyMJ), adaptive.Switches, adaptive.Violations)
}
