// Quickstart: train a small classifier, attach a reversible pruning-level
// library, and demonstrate the core contribution — pruning that can be
// undone at runtime in microseconds, bit-exactly.
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// 1. A synthetic road-sign dataset and a small CNN (pure Go, no deps).
	data := revprune.Signs(revprune.SignConfig{N: 1200, Size: 16, Noise: 0.08, Jitter: true, Seed: 1})
	trainSet, testSet := data.Split(0.8, 2)

	rng := revprune.NewRNG(3)
	model := revprune.NewSequential("quickstart",
		revprune.NewConv2D("conv1", revprune.ConvGeom{
			InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1,
		}, 8, rng),
		revprune.NewReLU("relu1"),
		revprune.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		revprune.NewFlatten("flat"),
		revprune.NewDense("fc1", 8*8*8, 32, rng),
		revprune.NewReLU("relu2"),
		revprune.NewDense("fc2", 32, 6, rng),
	)

	fmt.Println("training…")
	revprune.Fit(model, trainSet.X, trainSet.Labels, revprune.TrainConfig{
		Epochs:    8,
		BatchSize: 32,
		Optimizer: revprune.NewAdam(0.003, 0),
		Seed:      4,
	})
	_, denseAcc := revprune.Evaluate(model, testSet.X, testSet.Labels, 64)
	fmt.Printf("dense test accuracy: %.4f\n\n", denseAcc)

	// 2. Plan a nested family of pruning levels and attach the reversible
	//    wrapper. The recovery store captures every displaced weight.
	plans, err := (revprune.MagnitudeGlobal{}).PlanNested(model, []float64{0.5, 0.8, 0.9})
	if err != nil {
		log.Fatal(err)
	}
	rm, err := revprune.Build(model, plans)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("level library: %d levels, recovery store %d bytes\n\n", rm.NumLevels(), rm.StoreBytes())

	// 3. Walk the levels: accuracy falls as sparsity rises…
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			log.Fatal(err)
		}
		_, acc := revprune.Evaluate(model, testSet.X, testSet.Labels, 64)
		fmt.Printf("  %s  sparsity %5.1f%%  accuracy %.4f\n",
			rm.Level(i).Name, 100*rm.Level(i).Sparsity, acc)
	}

	// 4. …and one call brings the dense model back, bit-exactly.
	start := time.Now()
	if err := rm.RestoreFull(); err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := rm.VerifyDense(); err != nil {
		log.Fatal("reversibility broken: ", err)
	}
	_, restoredAcc := revprune.Evaluate(model, testSet.X, testSet.Labels, 64)
	fmt.Printf("\nrestored to dense in %v — accuracy %.4f (== %.4f), weights verified bit-exact\n",
		elapsed, restoredAcc, denseAcc)
}
