// Safety failover: the "back to the future" moment. During a cut-in the
// criticality monitor spikes to emergency and the governor restores the
// dense model instantly from the recovery store — then hands capacity back
// once the situation clears. The timeline around the event is printed
// tick by tick.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/experiments"
)

func main() {
	fmt.Println("training obstacle model and designing level library…")
	zoo := experiments.NewZoo(1)
	spec := revprune.EmbeddedCPU()
	model, rm, err := zoo.ObstacleStack(nil, spec)
	if err != nil {
		log.Fatal(err)
	}

	gov, err := revprune.NewGovernor(rm, &revprune.Hysteresis{DwellTicks: 20}, revprune.DefaultContract())
	if err != nil {
		log.Fatal(err)
	}
	res, err := revprune.RunScenario(revprune.CutIn(), model, rm, revprune.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Governor:  gov,
		Record:    true,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ncut-in at tick 1000 — timeline around the event:")
	fmt.Printf("%6s %8s %8s %10s %6s\n", "tick", "ttc", "score", "class", "level")
	classNames := []string{"nominal", "elevated", "critical", "emergency"}
	rec := res.Recorder
	for tick := 990; tick <= 1120 && tick < res.Ticks; tick += 5 {
		ttc := rec.Series("ttc")[tick]
		ttcStr := "∞"
		if ttc >= 0 {
			ttcStr = fmt.Sprintf("%.2f", ttc)
		}
		fmt.Printf("%6d %8s %8.3f %10s %6s\n",
			tick, ttcStr,
			rec.Series("score")[tick],
			classNames[int(rec.Series("class")[tick])],
			fmt.Sprintf("L%d", int(rec.Series("level")[tick])),
		)
	}

	// After the run, prove the model can still travel back to its exact
	// dense past.
	if err := rm.RestoreFull(); err != nil {
		log.Fatal(err)
	}
	if err := rm.VerifyDense(); err != nil {
		log.Fatal("reversibility integrity check failed: ", err)
	}
	stats := rm.Stats()
	fmt.Printf("\nrun complete: collided=%v, missedCritical=%d, switches=%d\n",
		res.Collided, res.MissedCritical, res.Switches)
	fmt.Printf("transition stats: %d deepen / %d revert, %d weights zeroed, %d restored\n",
		stats.Deepen, stats.Revert, stats.WeightsZeroed, stats.WeightsRestored)
	fmt.Println("dense weights verified bit-exact after the whole run ✓")
}
