package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestFleetExample smoke-runs the example end to end and checks the three
// acts of its narrative landed: the over-budget start, the rebalanced
// middle, and the reversed squeeze at the end.
func TestFleetExample(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet example smoke test skipped in -short mode")
	}
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"over budget",
		"after rebalance",
		"back to demand",
		"lead",
		"follow",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q", want)
		}
	}
	if strings.Contains(out, "retargeted 0 instance(s)") {
		t.Error("budget squeeze retargeted nothing — the example's premise failed")
	}
}
