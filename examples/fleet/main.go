// Fleet: two model instances sharing one energy budget. Each vehicle
// demands the dense model, but the platform cannot afford two dense
// networks — the fleet budget governor deepens the instance that gives up
// the least accuracy per millijoule saved until the aggregate fits, drives
// both closed loops concurrently at the rebalanced levels, and then shows
// the squeeze reversing the moment the budget relaxes (the instances
// return to their own demands). The per-vehicle safety governor loop on
// top of this is cmd/simdrive -fleet.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"sync"

	"repro"
	"repro/internal/experiments"
)

func run(w io.Writer) error {
	fmt.Fprintln(w, "training obstacle model and cloning two fleet instances…")
	zoo := experiments.NewZoo(1)
	spec := revprune.EmbeddedCPU()

	f := revprune.NewFleet()
	names := []string{"lead", "follow"}
	for _, name := range names {
		// Both vehicles are copy-on-write views over one shared checkpoint
		// store: the dense weights and recovery deltas are resident once,
		// not once per vehicle.
		model, rm, err := zoo.ObstacleStackView(spec)
		if err != nil {
			return err
		}
		pipe, err := revprune.NewPipeline(model, 16, 0)
		if err != nil {
			return err
		}
		inst, err := revprune.NewFleetInstance(name, pipe, rm)
		if err != nil {
			return err
		}
		// Every vehicle wants the dense model (demand = L0).
		if err := inst.RestoreFull(); err != nil {
			return err
		}
		if err := f.Add(inst); err != nil {
			return err
		}
	}
	// Views hold store references; detach them when the demo is done.
	defer func() {
		if err := f.Release(); err != nil {
			fmt.Fprintln(os.Stderr, "fleet teardown:", err)
		}
	}()

	levels := func(w io.Writer, caption string) {
		fmt.Fprintf(w, "\n%s\n%-8s %7s %7s %11s %9s\n", caption,
			"model", "demand", "level", "energy (mJ)", "accuracy")
		for _, name := range f.Names() {
			inst, _ := f.Get(name)
			lvl := inst.Level(inst.Current())
			fmt.Fprintf(w, "%-8s %7s %7s %11.3f %9.4f\n",
				name, fmt.Sprintf("L%d", inst.Demand()), fmt.Sprintf("L%d", inst.Current()),
				lvl.EnergyMJ, lvl.Accuracy)
		}
	}

	dense := 0.0
	for _, name := range f.Names() {
		inst, _ := f.Get(name)
		dense += inst.Level(0).EnergyMJ
	}
	budget := 0.6 * dense
	fmt.Fprintf(w, "dense fleet needs %.3f mJ per inference; platform affords %.3f mJ\n", dense, budget)

	bg, err := revprune.NewFleetBudgetGovernor(f,
		revprune.FleetBudget{EnergyMJ: budget},
		revprune.WithFleetAccuracyFloor(0.5))
	if err != nil {
		return err
	}
	levels(w, "before rebalance (both dense, over budget):")
	retargets, err := bg.Rebalance()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\nrebalance retargeted %d instance(s) to fit the budget\n", retargets)
	levels(w, "after rebalance (cheapest accuracy given up first):")

	// Both vehicles drive concurrently at the rebalanced levels.
	scenarios := map[string]revprune.Scenario{
		"lead":   revprune.HighwayCruise(),
		"follow": revprune.UrbanTraffic(),
	}
	results := map[string]revprune.LoopResult{}
	errs := map[string]error{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range f.Names() {
		inst, _ := f.Get(name)
		wg.Add(1)
		go func(name string, inst *revprune.FleetInstance) {
			defer wg.Done()
			res, err := revprune.RunStack(scenarios[name], inst, revprune.LoopConfig{
				FrameSize: 16,
				Spec:      spec,
				Seed:      7,
			})
			mu.Lock()
			results[name], errs[name] = res, err
			mu.Unlock()
		}(name, inst)
	}
	wg.Wait()
	fmt.Fprintf(w, "\n%-8s %-16s %6s %7s %12s\n", "model", "scenario", "ticks", "missed", "energy (mJ)")
	for _, name := range f.Names() {
		if errs[name] != nil {
			return errs[name]
		}
		r := results[name]
		fmt.Fprintf(w, "%-8s %-16s %6d %7d %12.1f\n", name, r.Scenario, r.Ticks, r.Missed, r.EnergyMJ)
	}

	// The squeeze is reversible: relax the budget and the next pass walks
	// every instance back to its own demand — no retraining, no reload.
	relaxed, err := revprune.NewFleetBudgetGovernor(f, revprune.FleetBudget{EnergyMJ: dense})
	if err != nil {
		return err
	}
	if _, err := relaxed.Rebalance(); err != nil {
		return err
	}
	levels(w, "after the budget relaxes (back to demand):")
	fmt.Fprintln(w, "\nthe budget squeeze never touched demand — reversible pruning makes the")
	fmt.Fprintln(w, "fleet's quality/energy split a runtime decision, not a deployment one.")
	return nil
}

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
