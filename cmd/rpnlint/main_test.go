package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// textOpts is the default CLI configuration (text output, everything
// gates, serial loader — tests that care about the parallel path opt in).
var textOpts = options{format: "text", failOn: "warning"}

// TestRunFlagsFixturePackage drives the real driver over the floateq
// fixture tree: the analyzer must fire on the seeded violations and the
// process-level contract (exit code 1, findings then a count line) must
// hold.
func TestRunFlagsFixturePackage(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	var out strings.Builder
	code, err := run(root, []string{fixture}, textOpts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has seeded findings)\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "(floateq)") {
		t.Fatalf("output missing floateq findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "rpnlint: ") {
		t.Fatalf("output missing summary line:\n%s", out.String())
	}
}

// TestRunVerboseShowsSuppressed checks that -v surfaces suppressed
// findings with the [suppressed] tag while still exiting clean when every
// finding is suppressed or absent.
func TestRunVerboseShowsSuppressed(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	var quiet, verbose strings.Builder
	if _, err := run(root, []string{fixture}, textOpts, &quiet); err != nil {
		t.Fatal(err)
	}
	vOpts := textOpts
	vOpts.verbose = true
	if _, err := run(root, []string{fixture}, vOpts, &verbose); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "[suppressed]") {
		t.Fatalf("non-verbose output leaked suppressed findings:\n%s", quiet.String())
	}
	if !strings.Contains(verbose.String(), "[suppressed]") {
		t.Fatalf("verbose output missing suppressed findings:\n%s", verbose.String())
	}
}

// TestRunCleanTree checks exit 0 and silence on a pattern with no
// findings.
func TestRunCleanTree(t *testing.T) {
	root := moduleRoot(t)
	var out strings.Builder
	code, err := run(root, []string{"internal/lint/linttest"}, textOpts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("exit=%d output=%q, want clean silent pass", code, out.String())
	}
}

// TestRunJSONFormat checks the -format=json document: findings with
// relative paths, suppression directives, and derived summary counts.
func TestRunJSONFormat(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	opts := textOpts
	opts.format = "json"
	var out strings.Builder
	code, err := run(root, []string{fixture}, opts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\noutput:\n%s", code, out.String())
	}
	var doc struct {
		Findings []struct {
			Analyzer   string `json:"analyzer"`
			Severity   string `json:"severity"`
			File       string `json:"file"`
			Line       int    `json:"line"`
			Suppressed bool   `json:"suppressed"`
		} `json:"findings"`
		Directives []struct {
			Analyzer string `json:"analyzer"`
			Used     bool   `json:"used"`
			Known    bool   `json:"known"`
		} `json:"directives"`
		Summary struct {
			Total      int `json:"total"`
			Suppressed int `json:"suppressed"`
			Stale      int `json:"stale"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(doc.Findings) == 0 || doc.Summary.Total != len(doc.Findings) {
		t.Fatalf("summary.total=%d, findings=%d", doc.Summary.Total, len(doc.Findings))
	}
	suppressed := 0
	for _, f := range doc.Findings {
		if f.Analyzer != "floateq" || f.Severity != "warning" {
			t.Errorf("unexpected finding %+v", f)
		}
		if filepath.IsAbs(f.File) {
			t.Errorf("finding path %q is absolute; want relative to module root", f.File)
		}
		if f.Suppressed {
			suppressed++
		}
	}
	if suppressed == 0 || doc.Summary.Suppressed != suppressed {
		t.Errorf("summary.suppressed=%d, counted %d (fixture seeds suppressed findings)", doc.Summary.Suppressed, suppressed)
	}
	if len(doc.Directives) == 0 {
		t.Error("no directives reported; fixture has lint:allow comments")
	}
}

// TestRunSARIFFormat checks -format=sarif structure: version, rule
// metadata for every analyzer, results with locations, and inSource
// suppression objects for suppressed findings.
func TestRunSARIFFormat(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	opts := textOpts
	opts.format = "sarif"
	var out strings.Builder
	code, err := run(root, []string{fixture}, opts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	var doc struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				Suppressions []struct {
					Kind string `json:"kind"`
				} `json:"suppressions"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid SARIF JSON: %v", err)
	}
	if doc.Version != "2.1.0" || len(doc.Runs) != 1 {
		t.Fatalf("version=%q runs=%d, want 2.1.0 with one run", doc.Version, len(doc.Runs))
	}
	run0 := doc.Runs[0]
	if run0.Tool.Driver.Name != "rpnlint" {
		t.Errorf("driver name = %q", run0.Tool.Driver.Name)
	}
	if len(run0.Tool.Driver.Rules) != 8 {
		t.Errorf("rules = %d, want 8 (one per analyzer)", len(run0.Tool.Driver.Rules))
	}
	if len(run0.Results) == 0 {
		t.Fatal("no results in SARIF output")
	}
	sawSuppressed := false
	for _, r := range run0.Results {
		if r.RuleID != "floateq" || r.Level != "warning" {
			t.Errorf("unexpected result %+v", r)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result missing location: %+v", r)
		}
		for _, s := range r.Suppressions {
			if s.Kind == "inSource" {
				sawSuppressed = true
			}
		}
	}
	if !sawSuppressed {
		t.Error("no inSource suppression objects; fixture seeds suppressed findings")
	}
}

// TestRunStaleAudit checks that -stale fails a run whose lint:allow
// directives suppress nothing, including unknown analyzer names.
func TestRunStaleAudit(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "stale")
	opts := textOpts
	opts.stale = true
	var out strings.Builder
	code, err := run(root, []string{fixture}, opts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stale directives)\noutput:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "stale: ") || !strings.Contains(got, "2 stale suppression(s)") {
		t.Errorf("missing stale report:\n%s", got)
	}
	if !strings.Contains(got, "names an unknown analyzer") {
		t.Errorf("unknown-analyzer directive not called out:\n%s", got)
	}
	// Without -stale the same tree is clean.
	var quiet strings.Builder
	code, err = run(root, []string{fixture}, textOpts, &quiet)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 || quiet.Len() != 0 {
		t.Errorf("without -stale: exit=%d output=%q, want clean pass", code, quiet.String())
	}
}

// TestRunFailOnError checks that -fail-on=error exits clean on
// warning-only findings while still printing them.
func TestRunFailOnError(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	opts := textOpts
	opts.failOn = "error"
	var out strings.Builder
	code, err := run(root, []string{fixture}, opts, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (floateq is warning severity)\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "(floateq)") {
		t.Errorf("warnings should still print under -fail-on=error:\n%s", out.String())
	}
}

// TestRunParallelMatchesSerial checks the parallel loader produces
// byte-identical driver output.
func TestRunParallelMatchesSerial(t *testing.T) {
	root := moduleRoot(t)
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	var serial, parallel strings.Builder
	sOpts := textOpts
	if _, err := run(root, []string{fixture}, sOpts, &serial); err != nil {
		t.Fatal(err)
	}
	pOpts := textOpts
	pOpts.parallel = true
	if _, err := run(root, []string{fixture}, pOpts, &parallel); err != nil {
		t.Fatal(err)
	}
	if serial.String() != parallel.String() {
		t.Errorf("parallel output differs from serial:\n--- serial\n%s--- parallel\n%s", serial.String(), parallel.String())
	}
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		t.Fatal(err)
	}
	return root
}
