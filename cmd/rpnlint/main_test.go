package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlagsFixturePackage drives the real driver over the floateq
// fixture tree: the analyzer must fire on the seeded violations and the
// process-level contract (exit code 1, findings then a count line) must
// hold.
func TestRunFlagsFixturePackage(t *testing.T) {
	root, err := findModuleRoot(mustGetwd(t))
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	var out strings.Builder
	code, err := run(root, []string{fixture}, false, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (fixture has seeded findings)\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "(floateq)") {
		t.Fatalf("output missing floateq findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "rpnlint: ") {
		t.Fatalf("output missing summary line:\n%s", out.String())
	}
}

// TestRunVerboseShowsSuppressed checks that -v surfaces suppressed
// findings with the [suppressed] tag while still exiting clean when every
// finding is suppressed or absent.
func TestRunVerboseShowsSuppressed(t *testing.T) {
	root, err := findModuleRoot(mustGetwd(t))
	if err != nil {
		t.Fatal(err)
	}
	fixture := filepath.Join("internal", "lint", "testdata", "src", "floateq")
	var quiet, verbose strings.Builder
	if _, err := run(root, []string{fixture}, false, &quiet); err != nil {
		t.Fatal(err)
	}
	if _, err := run(root, []string{fixture}, true, &verbose); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(quiet.String(), "[suppressed]") {
		t.Fatalf("non-verbose output leaked suppressed findings:\n%s", quiet.String())
	}
	if !strings.Contains(verbose.String(), "[suppressed]") {
		t.Fatalf("verbose output missing suppressed findings:\n%s", verbose.String())
	}
}

// TestRunCleanTree checks exit 0 and silence on a pattern with no
// findings.
func TestRunCleanTree(t *testing.T) {
	root, err := findModuleRoot(mustGetwd(t))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run(root, []string{"internal/lint/linttest"}, false, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if code != 0 || out.Len() != 0 {
		t.Fatalf("exit=%d output=%q, want clean silent pass", code, out.String())
	}
}

func mustGetwd(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return cwd
}
