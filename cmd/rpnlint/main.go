// Command rpnlint is the project's multichecker: it runs the custom
// internal/lint analyzers (nopanic, floateq, lockcheck, detrand, ctxbound,
// goroleak, errdrop, atomicmix) over the module's packages and exits
// nonzero on any unsuppressed finding. It complements — not replaces —
// `go vet`; scripts/verify.sh runs both, alongside the build, the unit
// tests, and the -race suites.
//
// Usage:
//
//	rpnlint [-v] [-analyzers] [-format=text|json|sarif] [-fail-on=error|warning]
//	        [-stale] [-parallel=false] [patterns ...]
//
// Patterns default to ./... and support the ./..., dir/..., and plain
// directory forms, resolved against the enclosing module root. Findings
// print as file:line:col: message (analyzer). A finding is suppressed by a
// `//lint:allow(<analyzer>)` comment on the offending line or on its own
// line directly above; -v prints suppressed findings too, tagged
// [suppressed].
//
// -format=json emits the full result (findings, suppression directives,
// summary) as one JSON document; -format=sarif emits SARIF 2.1.0 for
// code-scanning UIs. -fail-on=error relaxes the gate to error-severity
// findings only (warnings still print). -stale additionally fails the run
// when a lint:allow directive suppressed nothing — only meaningful on
// whole-repo runs, where "suppressed nothing" means the comment is dead.
// Packages load and type-check in parallel by default; -parallel=false
// falls back to the serial loader.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

// options carries the driver's flag state.
type options struct {
	verbose  bool
	format   string // "text", "json", or "sarif"
	failOn   lint.Severity
	stale    bool
	parallel bool
}

func main() {
	var opts options
	flag.BoolVar(&opts.verbose, "v", false, "also print suppressed findings (text format)")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.StringVar(&opts.format, "format", "text", "output format: text, json, or sarif")
	failOn := flag.String("fail-on", "warning", "minimum severity that fails the run: error or warning")
	flag.BoolVar(&opts.stale, "stale", false, "fail when a lint:allow directive suppresses nothing")
	flag.BoolVar(&opts.parallel, "parallel", true, "type-check packages concurrently")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s [%s] %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}
	opts.failOn = lint.Severity(*failOn)
	if opts.failOn != lint.SeverityError && opts.failOn != lint.SeverityWarning {
		fmt.Fprintf(os.Stderr, "rpnlint: -fail-on must be %q or %q\n", lint.SeverityError, lint.SeverityWarning)
		os.Exit(2)
	}
	if opts.format != "text" && opts.format != "json" && opts.format != "sarif" {
		fmt.Fprintln(os.Stderr, `rpnlint: -format must be "text", "json", or "sarif"`)
		os.Exit(2)
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	code, err := run(root, patterns, opts, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run loads the patterns, applies every analyzer, and writes the report in
// the requested format. It returns 0 when clean and 1 when unsuppressed
// findings at or above the -fail-on severity exist (or, with -stale, when
// stale suppressions exist).
func run(root string, patterns []string, opts options, out io.Writer) (int, error) {
	loader, modPath, err := lint.NewModuleLoader(root)
	if err != nil {
		return 2, err
	}
	var pkgs []*lint.Package
	if opts.parallel {
		pkgs, err = loader.LoadPatternsParallel(root, modPath, patterns, 0)
	} else {
		pkgs, err = loader.LoadPatterns(root, modPath, patterns)
	}
	if err != nil {
		return 2, err
	}
	if opts.format == "text" {
		for _, pkg := range pkgs {
			for _, terr := range pkg.TypeErrors {
				fmt.Fprintf(out, "typecheck: %s: %v\n", pkg.Path, terr)
			}
		}
	}
	res, err := lint.Run(pkgs, lint.All())
	if err != nil {
		return 2, err
	}

	bad := 0
	for _, d := range res.Diagnostics {
		if !d.Suppressed && d.Severity.FailsUnder(opts.failOn) {
			bad++
		}
	}
	stale := res.Stale()

	switch opts.format {
	case "json":
		if err := lint.WriteJSON(out, res, root); err != nil {
			return 2, err
		}
	case "sarif":
		if err := lint.WriteSARIF(out, res, lint.All(), root); err != nil {
			return 2, err
		}
	default:
		for _, d := range res.Diagnostics {
			if d.Suppressed {
				if opts.verbose {
					fmt.Fprintf(out, "%s [suppressed]\n", d)
				}
				continue
			}
			fmt.Fprintln(out, d)
		}
		if bad > 0 {
			fmt.Fprintf(out, "rpnlint: %d finding(s)\n", bad)
		}
		if opts.stale {
			for _, d := range stale {
				why := "suppresses nothing"
				if !d.Known {
					why = "names an unknown analyzer"
				}
				fmt.Fprintf(out, "stale: %s %s\n", d, why)
			}
			if len(stale) > 0 {
				fmt.Fprintf(out, "rpnlint: %d stale suppression(s)\n", len(stale))
			}
		}
	}

	if bad > 0 || (opts.stale && len(stale) > 0) {
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
