// Command rpnlint is the project's multichecker: it runs the custom
// internal/lint analyzers (nopanic, floateq, lockcheck, detrand, ctxbound)
// over the module's packages and exits nonzero on any unsuppressed
// finding. It complements — not replaces — `go vet`; scripts/verify.sh
// runs both, alongside the build, the unit tests, and the -race suites.
//
// Usage:
//
//	rpnlint [-v] [-analyzers] [patterns ...]
//
// Patterns default to ./... and support the ./..., dir/..., and plain
// directory forms, resolved against the enclosing module root. Findings
// print as file:line:col: message (analyzer). A finding is suppressed by a
// `//lint:allow(<analyzer>)` comment on the offending line or on its own
// line directly above; -v prints suppressed findings too, tagged
// [suppressed].
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	verbose := flag.Bool("v", false, "also print suppressed findings")
	list := flag.Bool("analyzers", false, "list the analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	code, err := run(root, patterns, *verbose, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run loads the patterns, applies every analyzer, and prints findings.
// It returns 0 when clean and 1 when unsuppressed findings exist.
func run(root string, patterns []string, verbose bool, out io.Writer) (int, error) {
	loader, modPath, err := lint.NewModuleLoader(root)
	if err != nil {
		return 2, err
	}
	pkgs, err := loader.LoadPatterns(root, modPath, patterns)
	if err != nil {
		return 2, err
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			fmt.Fprintf(out, "typecheck: %s: %v\n", pkg.Path, terr)
		}
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		return 2, err
	}
	bad := 0
	for _, d := range diags {
		if d.Suppressed {
			if verbose {
				fmt.Fprintf(out, "%s [suppressed]\n", d)
			}
			continue
		}
		bad++
		fmt.Fprintln(out, d)
	}
	if bad > 0 {
		fmt.Fprintf(out, "rpnlint: %d finding(s)\n", bad)
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
