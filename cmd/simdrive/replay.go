package main

// replay.go is simdrive's load-generator mode: -replay <addr> opens
// -vehicles RFR1 connections against a running ingest front end (its
// own -serve mode, or any other) and streams seeded synthetic frames
// with a realistic criticality mix (~50% nominal, 30% elevated, 15%
// critical, 5% emergency). The generator is a well-behaved client: it
// honors RETRY-AFTER hints, reads its results continuously, reconnects
// after a severed connection, and reports exactly what the server did
// with every frame — the shed/served tallies the overload e2e compares
// against the server's rpn_ingest_* counters.

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ingest"
	"repro/internal/metrics"
	"repro/internal/safety"
	"repro/internal/tensor"
)

// replayStats aggregates every vehicle's accounting. Every frame sent
// lands in exactly one bucket: a RESULT status, Refused (typed
// RETRY-AFTER — the server never accepted it), or Lost (the connection
// died with the frame in flight; only possible under chaos).
type replayStats struct {
	mu          sync.Mutex
	Sent        int
	Refused     int
	Lost        int
	Advisories  int
	Reconnects  int
	ByStatus    map[ingest.Status]int
	ShedByClass map[string]int
	// EmergencySent/EmergencyServed pin the acceptance invariant: under
	// overload every emergency frame must come back StatusOK.
	EmergencySent   int
	EmergencyServed int
}

func newReplayStats() *replayStats {
	return &replayStats{
		ByStatus:    map[ingest.Status]int{},
		ShedByClass: map[string]int{},
	}
}

func (st *replayStats) addResult(class safety.Criticality, status ingest.Status) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.ByStatus[status]++
	if status == ingest.StatusShed {
		st.ShedByClass[class.String()]++
	}
	if class == safety.Emergency && status == ingest.StatusOK {
		st.EmergencyServed++
	}
}

func (st *replayStats) add(field *int, n int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	*field += n
}

// Shed returns the total shed count across classes.
func (st *replayStats) Shed() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.ByStatus[ingest.StatusShed]
}

// Delivered returns how many frames got a RESULT of any status.
func (st *replayStats) Delivered() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for _, v := range st.ByStatus {
		n += v
	}
	return n
}

// replayClasses draws one vehicle's frame classes from a seeded RNG:
// ~50/30/15/5 nominal/elevated/critical/emergency.
func replayClasses(rng *rand.Rand, frames int) []safety.Criticality {
	out := make([]safety.Criticality, frames)
	for i := range out {
		switch p := rng.Float64(); {
		case p < 0.50:
			out[i] = safety.Nominal
		case p < 0.80:
			out[i] = safety.Elevated
		case p < 0.95:
			out[i] = safety.Critical
		default:
			out[i] = safety.Emergency
		}
	}
	return out
}

// runReplay drives the full load: vehicles connections, frames each,
// paced by interval per vehicle (0: as fast as the server admits).
func runReplay(addr string, vehicles, frames int, seed int64, interval time.Duration) (*replayStats, error) {
	if vehicles < 1 || frames < 1 {
		return nil, fmt.Errorf("replay: want ≥ 1 vehicle and ≥ 1 frame, got %d/%d", vehicles, frames)
	}
	frame := tensor.RandNormal(tensor.NewRNG(seed), 0, 1, 1, 16, 16)
	stats := newReplayStats()
	errs := make([]error, vehicles)
	var wg sync.WaitGroup
	for v := 0; v < vehicles; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(v)))
			classes := replayClasses(rng, frames)
			emergencies := 0
			for _, c := range classes {
				if c == safety.Emergency {
					emergencies++
				}
			}
			stats.add(&stats.EmergencySent, emergencies)
			errs[v] = replayVehicle(addr, fmt.Sprintf("car%d", v), classes, frame, interval, stats)
		}(v)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}

// replayVehicle streams one vehicle's frames, reconnecting (with
// backoff) when the connection is severed mid-run — the chaos drill's
// conn-drop windows make that an expected event, not a failure.
func replayVehicle(addr, vehicle string, classes []safety.Criticality, frame *tensor.Tensor, interval time.Duration, stats *replayStats) error {
	remaining := classes
	attempts := 0
	for len(remaining) > 0 {
		cl, err := ingest.Dial(addr, "replay", vehicle, 2*time.Second)
		if err != nil {
			attempts++
			if attempts > 8 {
				return fmt.Errorf("replay %s: dial: %w", vehicle, err)
			}
			time.Sleep(time.Duration(attempts) * 50 * time.Millisecond)
			continue
		}
		attempts = 0
		accounted, lost, err := replayBurst(cl, remaining, frame, interval, stats)
		_ = cl.Close() // burst over; the server saw our FIN or already severed us
		stats.add(&stats.Lost, lost)
		remaining = remaining[accounted+lost:]
		if err == nil && accounted+lost < len(classes) && len(remaining) > 0 {
			// Clean burst but frames left (shouldn't happen) — avoid spin.
			return fmt.Errorf("replay %s: burst stalled with %d frames left", vehicle, len(remaining))
		}
		if err != nil {
			stats.add(&stats.Reconnects, 1)
		}
	}
	return nil
}

// maxInFlight bounds one connection's unacknowledged frames — half the
// server's per-connection write buffer, so the generator can never be
// severed as a slow client by the echoes of its own burst.
const maxInFlight = 128

// replayBurst sends classes over one connection and reads until every
// sent frame is accounted for (RESULT or typed refusal). Returns how
// many frames were accounted, how many were lost in flight when the
// connection broke, and the break error (nil for a complete burst).
func replayBurst(cl *ingest.Client, classes []safety.Criticality, frame *tensor.Tensor, interval time.Duration, stats *replayStats) (accounted, lost int, err error) {
	var (
		sent      atomic.Int64
		senderFin atomic.Bool
		acked     atomic.Int64
		// backoffMs accumulates RETRY-AFTER hints for the sender to sleep.
		backoffMs atomic.Int64
	)
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			if senderFin.Load() && acked.Load() >= sent.Load() {
				return
			}
			m, rerr := cl.Read(500 * time.Millisecond)
			if rerr != nil {
				if ingest.IsTimeout(rerr) {
					continue
				}
				readErr <- rerr
				return
			}
			switch m.Type {
			case ingest.TypeResult:
				idx := int(m.Seq) - 1
				if idx < 0 || idx >= len(classes) {
					continue
				}
				stats.addResult(classes[idx], m.Status)
				acked.Add(1)
			case ingest.TypeRetryAfter:
				if m.Millis > 0 {
					backoffMs.Store(int64(m.Millis))
				}
				if m.Seq == 0 {
					stats.add(&stats.Advisories, 1)
				} else {
					stats.add(&stats.Refused, 1)
					acked.Add(1)
				}
			}
		}
	}()

	var sendErr error
	next := time.Now()
	for i, c := range classes {
		// Flow control: never run more than maxInFlight frames ahead of
		// the results stream — a sender racing far ahead would overflow
		// the server's per-connection write buffer with its own shed
		// echoes and be severed as a slow client.
		for int(sent.Load())-int(acked.Load()) >= maxInFlight {
			time.Sleep(200 * time.Microsecond)
			if len(readErr) > 0 {
				break
			}
		}
		if interval > 0 {
			// Absolute schedule: frame i is due at next, so sleep-granularity
			// overshoot self-corrects and the average rate holds even for
			// sub-millisecond intervals — but the backlog a stall can
			// reclaim is capped, so a pause never turns into a burst big
			// enough to distort the server's per-class arrival mix.
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			next = next.Add(interval)
			if time.Since(next) > 16*interval {
				next = time.Now().Add(-16 * interval)
			}
		}
		if ms := backoffMs.Swap(0); ms > 0 {
			// A RETRY-AFTER hint lowers the offered rate: the sleep shifts
			// the schedule instead of accruing catch-up debt.
			d := time.Duration(ms) * time.Millisecond
			time.Sleep(d)
			next = next.Add(d)
		}
		if sendErr = cl.SendFrame(uint64(i+1), c, frame); sendErr != nil {
			break
		}
		sent.Add(1)
		stats.add(&stats.Sent, 1)
	}
	senderFin.Store(true)
	rerr := <-readErr

	accounted = int(acked.Load())
	lost = int(sent.Load()) - accounted
	if sendErr != nil {
		return accounted, lost, sendErr
	}
	return accounted, lost, rerr
}

// runReplayCmd is the -replay command path: run the load and print the
// accounting table.
func runReplayCmd(addr string, vehicles, frames int, seed int64, interval time.Duration) error {
	t0 := time.Now()
	stats, err := runReplay(addr, vehicles, frames, seed, interval)
	elapsed := time.Since(t0)
	if stats != nil {
		printReplay(stats, vehicles, elapsed)
	}
	return err
}

// printReplay renders the accounting table.
func printReplay(st *replayStats, vehicles int, elapsed time.Duration) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tb := metrics.NewTable(fmt.Sprintf("replay: %d vehicles, %s", vehicles, elapsed.Round(time.Millisecond)), "metric", "value")
	tb.AddRow("frames sent", fmt.Sprintf("%d", st.Sent))
	tb.AddRow("served ok", fmt.Sprintf("%d", st.ByStatus[ingest.StatusOK]))
	tb.AddRow("shed", fmt.Sprintf("%d", st.ByStatus[ingest.StatusShed]))
	for _, class := range []safety.Criticality{safety.Nominal, safety.Elevated, safety.Critical, safety.Emergency} {
		if n := st.ShedByClass[class.String()]; n > 0 {
			tb.AddRow("  shed "+class.String(), fmt.Sprintf("%d", n))
		}
	}
	tb.AddRow("errored", fmt.Sprintf("%d", st.ByStatus[ingest.StatusError]))
	tb.AddRow("quarantined", fmt.Sprintf("%d", st.ByStatus[ingest.StatusQuarantined]))
	tb.AddRow("refused (retry-after)", fmt.Sprintf("%d", st.Refused))
	tb.AddRow("lost in flight", fmt.Sprintf("%d", st.Lost))
	tb.AddRow("advisories seen", fmt.Sprintf("%d", st.Advisories))
	tb.AddRow("reconnects", fmt.Sprintf("%d", st.Reconnects))
	tb.AddRow("emergency sent/served", fmt.Sprintf("%d/%d", st.EmergencySent, st.EmergencyServed))
	if secs := elapsed.Seconds(); secs > 0 {
		tb.AddRow("frames/sec", metrics.F(float64(st.Sent)/secs, 1))
	}
	fmt.Print(tb.String())
}
