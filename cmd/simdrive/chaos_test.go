package main

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// chaosScrape is what the probe reads from the live endpoints at the end
// of a drill (after the vehicles joined, before the server shuts down).
type chaosScrape struct {
	status string            // /healthz status field
	health map[string]string // /healthz instance → state name
	series []chaosSeries     // every numeric /metrics sample
}

type chaosSeries struct {
	name   string
	labels map[string]string
	value  float64
}

// sum adds every series of the family whose labels include want.
func (s *chaosScrape) sum(name string, want map[string]string) float64 {
	total := 0.0
	for _, sv := range s.series {
		if sv.name != name {
			continue
		}
		match := true
		for k, v := range want {
			if sv.labels[k] != v {
				match = false
				break
			}
		}
		if match {
			total += sv.value
		}
	}
	return total
}

// scrapeChaos probes /healthz and /metrics into a chaosScrape.
func scrapeChaos(t *testing.T, baseURL string) *chaosScrape {
	t.Helper()
	out := &chaosScrape{}

	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Status string            `json:"status"`
		Health map[string]string `json:"health"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	out.status = doc.Status
	out.health = doc.Health

	mresp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		if len(fields) != 2 {
			continue
		}
		name, labels, ok := telemetry.ParseSeries(fields[0])
		if !ok {
			name = fields[0]
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
		if err != nil {
			continue
		}
		lm := map[string]string{}
		for _, l := range labels {
			lm[l.Key] = l.Value
		}
		out.series = append(out.series, chaosSeries{name: name, labels: lm, value: v})
	}
	return out
}

// TestRunChaosDrill is the chaos acceptance suite: each subtest arms one
// fault kind against car1 of a three-vehicle fleet and drives the full
// scenario set to completion. Every drill must exit cleanly, leak no
// goroutines, leave every instance healthy by the end of the run, keep
// car0 untouched, and surface the injected faults — and the watchdog's
// response — on /healthz, /metrics, and the final OTLP export.
func TestRunChaosDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive chaos end-to-end skipped in -short mode")
	}

	cases := []struct {
		name string
		spec string
		// budget > 0 runs the fleet budget governor (health-gated) during
		// the drill.
		budget float64
		// minTransitions bounds car1's rpn_health_transitions_total.
		minTransitions float64
		// reason/minReason bound car1's rpn_health_faults_total{reason=…}.
		reason    string
		minReason float64
		// minRestores bounds car1's emergency-restore counter (0 for fault
		// kinds the watchdog attributes to errors — no restore, the store
		// has nothing to heal).
		minRestores float64
		// skipKind skips the rpn_fault_injections_total cross-check for
		// faults that fire after the probe (the otlp-outage final flush).
		skipKind bool
		// finalStates overrides the expected end-of-run /healthz per
		// instance (default: every car healthy). Permanent fault kinds end
		// with the target still fenced.
		finalStates map[string]string
		// status overrides the expected /healthz status (default "ok").
		status string
	}{
		{
			// Poison fires on car1's first level transition; the NaN output
			// trips the watchdog on the next frame, forcing an emergency
			// restore to dense that genuinely heals the model.
			name:           "nan-weights",
			spec:           "nan-weights:car1:for=1",
			minTransitions: 2, // Healthy→Degraded, →Healthy after the clean streak
			reason:         "nan",
			minReason:      1,
			minRestores:    1,
		},
		{
			// Three consecutive lost frames walk car1 through the full
			// trajectory: Degraded on the first, Quarantined on the third,
			// Probation after the dwell, Healthy after the clean streak. The
			// health-gated budget governor keeps rebalancing around it.
			name:           "drop-frames",
			spec:           "drop-frames:car1:after=40:for=3",
			budget:         40,
			minTransitions: 4,
			reason:         "error",
			minReason:      3,
		},
		{
			// A garbled (truncated) frame is rejected by the pipeline's
			// geometry check — same error trajectory as a lost frame.
			name:           "garble-frames",
			spec:           "garble-frames:car1:after=40:for=3",
			minTransitions: 4,
			reason:         "error",
			minReason:      3,
		},
		{
			// A 400ms stall breaches the 150ms frame deadline three times:
			// quarantine trajectory plus an emergency restore per breach.
			name:           "slow-infer",
			spec:           "slow-infer:car1:after=40:for=3:latency=400ms",
			minTransitions: 4,
			reason:         "deadline",
			minReason:      3,
			minRestores:    1,
		},
		{
			// The stall wedges inside the governor tick's level transition;
			// the tick watchdog catches the deadline breach and restores.
			name:           "stuck-transition",
			spec:           "stuck-transition:car1:for=1:latency=400ms",
			minTransitions: 2,
			reason:         "deadline",
			minReason:      1,
			minRestores:    1,
		},
		{
			// Bit flips in car1's recovery store on its first level
			// transition. The damage is silent until the governor next
			// restores toward dense: the per-level checksum refuses the
			// restore, the watchdog classifies it unrecoverable, and car1 is
			// quarantined permanently — no restore can heal a corrupt store,
			// so unlike every other drill this one must NOT end healthy.
			// 64 flips spread over every level's displaced values so any
			// restore path crosses damage. Chaos cars are built over private
			// stores, so car0/car2 share nothing with the blast radius.
			name:           "store-corrupt",
			spec:           "store-corrupt:car1:for=1:n=64",
			minTransitions: 1, // Healthy→Quarantined, one-way
			reason:         "store-corrupt",
			minReason:      1,
			minRestores:    0,
			finalStates:    map[string]string{"car0": "healthy", "car1": "quarantined", "car2": "healthy"},
			status:         "degraded",
		},
		{
			// A collector outage fails the first two POSTs; the exporter's
			// jittered retries must still land the final flush. No instance
			// faults: the whole fleet stays healthy throughout.
			name:     "otlp-outage",
			spec:     "otlp-outage:after=0:for=2",
			skipKind: true,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			collector, decoded := newFakeCollector(t)
			baseline := runtime.NumGoroutine()

			var scrape *chaosScrape
			probe := func(baseURL string) { scrape = scrapeChaos(t, baseURL) }
			if err := run("cut-in", "hysteresis", 42, "", 1000, "127.0.0.1:0",
				collector.URL, 3, tc.budget, tc.spec, "", probe); err != nil {
				t.Fatalf("chaos drill %q: %v", tc.spec, err)
			}
			if scrape == nil {
				t.Fatal("probe never ran")
			}

			// Most drills end recovered — /healthz reports all three
			// instances healthy and the overall status ok. Permanent fault
			// kinds (store-corrupt) instead end with the target fenced and
			// the endpoint degraded.
			wantStatus := tc.status
			if wantStatus == "" {
				wantStatus = "ok"
			}
			if scrape.status != wantStatus {
				t.Errorf("healthz status = %q, want %q (health %v)", scrape.status, wantStatus, scrape.health)
			}
			for _, car := range []string{"car0", "car1", "car2"} {
				want := "healthy"
				if tc.finalStates != nil {
					want = tc.finalStates[car]
				}
				if st := scrape.health[car]; st != want {
					t.Errorf("final %s state = %q, want %q", car, st, want)
				}
			}

			// The injected faults and the watchdog's response are on the
			// target's counters; the untouched neighbor has none.
			car1 := map[string]string{telemetry.LabelModel: "car1"}
			if got := scrape.sum(telemetry.MetricHealthTransitions, car1); got < tc.minTransitions {
				t.Errorf("car1 health transitions = %v, want ≥ %v", got, tc.minTransitions)
			}
			if tc.reason != "" {
				want := map[string]string{telemetry.LabelModel: "car1", telemetry.LabelReason: tc.reason}
				if got := scrape.sum(telemetry.MetricHealthFaults, want); got < tc.minReason {
					t.Errorf("car1 %s faults = %v, want ≥ %v", tc.reason, got, tc.minReason)
				}
			}
			if got := scrape.sum(telemetry.MetricHealthRestores, car1); got < tc.minRestores {
				t.Errorf("car1 emergency restores = %v, want ≥ %v", got, tc.minRestores)
			}
			car0 := map[string]string{telemetry.LabelModel: "car0"}
			if got := scrape.sum(telemetry.MetricHealthFaults, car0); got != 0 {
				t.Errorf("healthy neighbor car0 recorded %v faults", got)
			}
			if !tc.skipKind {
				want := map[string]string{telemetry.LabelFault: tc.name}
				if got := scrape.sum(telemetry.MetricFaultInjections, want); got < 1 {
					t.Errorf("rpn_fault_injections_total{fault=%q} = %v, want ≥ 1", tc.name, got)
				}
			}

			// The final OTLP flush delivered (through the outage, when one
			// was armed) and its health-state gauges agree with /healthz.
			reqs := decoded()
			if len(reqs) == 0 {
				t.Fatal("collector received no exports")
			}
			hs := reqs[len(reqs)-1].Metric(telemetry.MetricHealthState)
			if hs == nil {
				t.Fatal("final export missing " + telemetry.MetricHealthState)
			}
			otlpStates := map[string]string{}
			for _, p := range hs.Points {
				otlpStates[p.Attrs[telemetry.LabelModel]] = telemetry.HealthStateName(int(p.AsDouble))
			}
			for car, want := range scrape.health {
				if got := otlpStates[car]; got != want {
					t.Errorf("%s: /healthz says %q, OTLP export says %q", car, want, got)
				}
			}

			// The drill tore everything down: no goroutine outlives the run
			// (idle HTTP conns are closed explicitly — keep-alives linger far
			// longer than the settle window otherwise).
			deadline := time.Now().Add(5 * time.Second)
			for {
				http.DefaultTransport.(*http.Transport).CloseIdleConnections()
				if n := runtime.NumGoroutine(); n <= baseline {
					break
				}
				if time.Now().After(deadline) {
					t.Errorf("goroutines leaked: %d at start, %d after settle",
						baseline, runtime.NumGoroutine())
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
		})
	}
}
