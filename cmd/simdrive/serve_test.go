package main

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ingest"
	"repro/internal/safety"
	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// ingestCounter reads one class/reason-labeled ingest counter off the
// stack's registry.
func ingestCounter(st *serveStack, family, labelKey, labelValue string) int64 {
	return st.Registry().Counter(telemetry.Series(family, telemetry.Label{Key: labelKey, Value: labelValue}))
}

func shedTotal(st *serveStack) int64 {
	var n int64
	for c := 0; c < safety.NumClasses; c++ {
		n += ingestCounter(st, telemetry.MetricIngestShed, telemetry.LabelClass, safety.Criticality(c).String())
	}
	return n
}

func acceptedTotal(st *serveStack) int64 {
	var n int64
	for c := 0; c < safety.NumClasses; c++ {
		n += ingestCounter(st, telemetry.MetricIngestAccepted, telemetry.LabelClass, safety.Criticality(c).String())
	}
	return n
}

// measureRoundTrip estimates one frame's synchronous ingest round-trip:
// the pacing yardstick the overload phase multiplies into a sustained
// 4x arrival rate. Round-trip ≥ service time, so 4x this rate is at
// most 4x the service rate — overload, with the emergency class's
// arrival share still safely below capacity.
func measureRoundTrip(t *testing.T, addr string) time.Duration {
	t.Helper()
	cl, err := ingest.Dial(addr, "probe", "car0", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := cl.Close(); err != nil {
			t.Error(err)
		}
	}()
	frame := tensor.RandNormal(tensor.NewRNG(7), 0, 1, 1, 16, 16)
	const probes = 20
	t0 := time.Now()
	for i := 0; i < probes; i++ {
		if err := cl.SendFrame(uint64(i+1), safety.Nominal, frame); err != nil {
			t.Fatal(err)
		}
		m, err := cl.Read(5 * time.Second)
		if err != nil || m.Type != ingest.TypeResult || m.Status != ingest.StatusOK {
			t.Fatalf("probe %d: %+v, %v", i, m, err)
		}
	}
	return time.Since(t0) / probes
}

// TestServeReplayOverloadE2E is the acceptance drill: the full stack —
// trained fleet, dispatcher, ingest listener, telemetry — under a
// sustained 4x overload from the replay generator. It pins down:
// sheds happen and hit only the lowest classes (zero emergency drops,
// every emergency served), /healthz stays responsive throughout, the
// server's rpn_ingest_shed_total agrees exactly with the generator's
// count, and a graceful drain loses nothing.
func TestServeReplayOverloadE2E(t *testing.T) {
	st, err := buildServeStack(serveOptions{
		Addr:          "127.0.0.1:0",
		Fleet:         2,
		Seed:          42,
		TelemetryAddr: "127.0.0.1:0",
		QueueCap:      16,
		Workers:       1,
	})
	if err != nil {
		t.Fatal(err)
	}

	rt := measureRoundTrip(t, st.Addr())
	t.Logf("round-trip %v/frame", rt)

	// 4 vehicles each pacing at 1/rt: aggregate arrival = 4/rt ≈ 4x the
	// service rate. ~1.5s of sustained overload.
	const vehicles = 4
	frames := int(1500 * time.Millisecond / rt)
	if frames < 50 {
		frames = 50
	}
	if frames > 4000 {
		frames = 4000
	}

	// /healthz must answer while the server sheds.
	healthURL := "http://" + st.TelemetryAddr() + "/healthz"
	healthOK := atomic.Int64{}
	healthStop := make(chan struct{})
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		for {
			select {
			case <-healthStop:
				return
			case <-time.After(100 * time.Millisecond):
				resp, err := http.Get(healthURL)
				if err != nil {
					t.Errorf("/healthz during overload: %v", err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/healthz status %d during overload", resp.StatusCode)
				}
				if err := resp.Body.Close(); err != nil {
					t.Error(err)
					return
				}
				healthOK.Add(1)
			}
		}
	}()

	preShed := shedTotal(st)
	stats, err := runReplay(st.Addr(), vehicles, frames, 42, rt)
	close(healthStop)
	<-healthDone
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if healthOK.Load() == 0 {
		t.Error("no successful /healthz probe completed during the overload window")
	}

	stats.mu.Lock()
	sent := stats.Sent
	lost := stats.Lost
	refused := stats.Refused
	shedClient := stats.ByStatus[ingest.StatusShed]
	okClient := stats.ByStatus[ingest.StatusOK]
	emSent, emServed := stats.EmergencySent, stats.EmergencyServed
	shedEmergency := stats.ShedByClass[safety.Emergency.String()]
	stats.mu.Unlock()

	if sent != vehicles*frames {
		t.Fatalf("sent %d != %d", sent, vehicles*frames)
	}
	if lost != 0 || refused != 0 {
		t.Fatalf("chaos-free overload lost %d / refused %d frames", lost, refused)
	}
	if shedClient == 0 {
		t.Fatal("4x sustained overload shed nothing")
	}
	// The acceptance invariant: load-shedding never touches the
	// emergency class.
	if shedEmergency != 0 {
		t.Fatalf("shed %d emergency frames under overload", shedEmergency)
	}
	if got := ingestCounter(st, telemetry.MetricIngestShed, telemetry.LabelClass, safety.Emergency.String()); got != 0 {
		t.Fatalf("rpn_ingest_shed_total{class=emergency} = %d", got)
	}
	if emServed != emSent {
		t.Fatalf("emergency served %d/%d", emServed, emSent)
	}
	// Counter agreement: the server's shed counter moved by exactly the
	// generator's shed tally.
	if moved := shedTotal(st) - preShed; moved != int64(shedClient) {
		t.Fatalf("rpn_ingest_shed_total moved %d, generator counted %d", moved, shedClient)
	}
	t.Logf("overload: %d sent, %d ok, %d shed, emergencies %d/%d, %d healthz probes",
		sent, okClient, shedClient, emServed, emSent, healthOK.Load())

	// Graceful drain: every accepted frame got its result (accepted ==
	// delivered across the probe + overload phases), and the drain
	// completes inside its deadline.
	delivered := int64(stats.Delivered()) + 20 // + the probe's synchronous frames
	if acc := acceptedTotal(st); acc != delivered {
		t.Fatalf("accepted %d != results delivered %d — frames lost", acc, delivered)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.Close(ctx); err != nil {
		t.Fatalf("graceful drain: %v", err)
	}
}

// TestServeChaosDrill arms conn-drop and slow-loris on the listener and
// replays through them: the generator must ride out severed connections
// (reconnect, bounded loss) and stalled reads, the stack must stay
// healthy for unaffected vehicles, and the drain must still be clean.
func TestServeChaosDrill(t *testing.T) {
	st, err := buildServeStack(serveOptions{
		Addr:    "127.0.0.1:0",
		Fleet:   2,
		Seed:    43,
		Chaos:   "conn-drop:car0:after=10:for=1,slow-loris:car1:latency=15ms:for=3",
		Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	const vehicles, frames = 2, 40
	stats, err := runReplay(st.Addr(), vehicles, frames, 43, 2*time.Millisecond)
	if err != nil {
		t.Fatalf("replay through chaos: %v", err)
	}

	stats.mu.Lock()
	sent := stats.Sent
	reconnects := stats.Reconnects
	lost := stats.Lost
	delivered := 0
	for _, v := range stats.ByStatus {
		delivered += v
	}
	refused := stats.Refused
	stats.mu.Unlock()

	// conn-drop severed car0 at least once and the generator recovered.
	if reconnects == 0 {
		t.Error("armed conn-drop window never severed the generator")
	}
	// Loss is bounded to frames in flight across drops, never silent:
	// every sent frame is accounted as result, refusal, or counted lost.
	if delivered+refused+lost != sent {
		t.Fatalf("accounting leak: %d delivered + %d refused + %d lost != %d sent",
			delivered, refused, lost, sent)
	}
	if lost > sent/4 {
		t.Fatalf("chaos lost %d of %d frames — drop windows should bound loss to in-flight frames", lost, sent)
	}
	t.Logf("chaos: %d sent, %d delivered, %d lost, %d reconnects", sent, delivered, lost, reconnects)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := st.Close(ctx); err != nil {
		t.Fatalf("drain after chaos: %v", err)
	}
}

// TestFleetModelFor pins the vehicle→instance mapping.
func TestFleetModelFor(t *testing.T) {
	mf := fleetModelFor(3)
	cases := map[string]string{
		"car0":  "car0",
		"car1":  "car1",
		"car4":  "car1",
		"car17": "car2",
		"v9":    "car0",
	}
	for in, want := range cases {
		if got := mf(in); got != want {
			t.Errorf("modelFor(%q) = %q want %q", in, got, want)
		}
	}
	// Non-numeric names hash stably onto the fleet.
	a, b := mf("alpha"), mf("alpha")
	if a != b {
		t.Errorf("hash mapping unstable: %q != %q", a, b)
	}
	found := false
	for i := 0; i < 3; i++ {
		if a == fmt.Sprintf("car%d", i) {
			found = true
		}
	}
	if !found {
		t.Errorf("hash mapping %q outside the fleet", a)
	}
}
