package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFindScenario(t *testing.T) {
	if _, err := findScenario("cut-in"); err != nil {
		t.Error(err)
	}
	if _, err := findScenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "cut-in") {
		t.Error("error does not list valid names")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive end-to-end skipped in -short mode")
	}
	csvPath := filepath.Join(t.TempDir(), "timeline.csv")
	if err := run("cut-in", "hysteresis", 42, csvPath, 500); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "tick,") {
		t.Errorf("timeline CSV malformed: %q", string(data[:40]))
	}
	if err := run("cut-in", "bogus", 1, "", 500); err == nil {
		t.Error("bogus policy accepted")
	}
	// All remaining policies at least construct and run.
	for _, p := range []string{"static-dense", "static-deep", "threshold", "predictive"} {
		if err := run("highway-cruise", p, 1, "", 1000); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}
