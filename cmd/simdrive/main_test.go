package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
)

func TestFindScenario(t *testing.T) {
	if _, err := findScenario("cut-in"); err != nil {
		t.Error(err)
	}
	if _, err := findScenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "cut-in") {
		t.Error("error does not list valid names")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive end-to-end skipped in -short mode")
	}
	csvPath := filepath.Join(t.TempDir(), "timeline.csv")
	if err := run("cut-in", "hysteresis", 42, csvPath, 500, "", "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "tick,") {
		t.Errorf("timeline CSV malformed: %q", string(data[:40]))
	}
	if err := run("cut-in", "bogus", 1, "", 500, "", "", nil); err == nil {
		t.Error("bogus policy accepted")
	}
	// All remaining policies at least construct and run.
	for _, p := range []string{"static-dense", "static-deep", "threshold", "predictive"} {
		if err := run("highway-cruise", p, 1, "", 1000, "", "", nil); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

// TestRunWithTelemetry drives the cut-in scenario with the telemetry server
// live and scrapes both endpoints before shutdown: the snapshot must show
// at least one emergency RestoreFull with a nonzero restore-latency
// histogram, governor tick accounting, and the same counters in the
// Prometheus rendering.
func TestRunWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive telemetry end-to-end skipped in -short mode")
	}
	probed := false
	probe := func(baseURL string) {
		probed = true
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Status     string                                 `json:"status"`
			Switches   int64                                  `json:"switches"`
			Counters   map[string]int64                       `json:"counters"`
			Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "ok" {
			t.Errorf("healthz status = %q", doc.Status)
		}
		if doc.Counters[telemetry.MetricRestores] < 1 {
			t.Errorf("restores = %d, want ≥ 1 (cut-in must trigger an emergency RestoreFull)",
				doc.Counters[telemetry.MetricRestores])
		}
		rl := doc.Histograms[telemetry.MetricRestoreLatency]
		if rl.Count < 1 || rl.Max <= 0 {
			t.Errorf("restore latency histogram = %+v, want count ≥ 1 and max > 0", rl)
		}
		if doc.Counters[telemetry.MetricGovernorTicks] < 1 {
			t.Error("no governor ticks recorded")
		}
		if doc.Switches < 1 {
			t.Error("no level switches recorded")
		}

		mresp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		body, err := io.ReadAll(mresp.Body)
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE rpn_restores_total counter",
			"# TYPE rpn_transition_latency_us summary",
			"rpn_governor_ticks_total",
			"rpn_uptime_seconds",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	if err := run("cut-in", "hysteresis", 42, "", 500, "127.0.0.1:0", "", probe); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("telemetry probe never ran")
	}
}

// TestRunWithOTLP is the collector-side end-to-end: simdrive runs the
// cut-in scenario against an in-process fake OTLP collector, and the
// decoded export must carry the emergency restore and the per-layer
// transition-latency summaries as labeled datapoints — with the same
// layer label set the live /metrics endpoint renders.
func TestRunWithOTLP(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive OTLP end-to-end skipped in -short mode")
	}

	var mu sync.Mutex
	var reqs []*otlp.Request
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			t.Errorf("collector hit on %q, want /v1/metrics", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/x-protobuf" {
			t.Errorf("Content-Type = %q, want application/x-protobuf", ct)
		}
		body, err := io.ReadAll(r.Body)
		if err != nil {
			t.Error(err)
			return
		}
		req, err := otlp.Decode(body)
		if err != nil {
			t.Errorf("collector failed to decode export: %v", err)
			return
		}
		mu.Lock()
		reqs = append(reqs, req)
		mu.Unlock()
	}))
	defer collector.Close()

	// Scrape the layer label set from /metrics during the run so the OTLP
	// attributes can be cross-checked against the Prometheus rendering.
	promLayers := map[string]bool{}
	probe := func(baseURL string) {
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if !strings.HasPrefix(line, telemetry.MetricLayerTransitionLatency+"{") {
				continue
			}
			if _, labels, ok := telemetry.ParseSeries(strings.SplitN(line, " ", 2)[0]); ok {
				for _, l := range labels {
					if l.Key == telemetry.LabelLayer {
						promLayers[l.Value] = true
					}
				}
			}
		}
	}

	if err := run("cut-in", "hysteresis", 42, "", 500, "127.0.0.1:0", collector.URL, probe); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	// run() shuts the exporter down with a final flush, so at least one
	// export must have landed even if the run beat the export interval.
	if len(reqs) == 0 {
		t.Fatal("collector received no exports")
	}
	last := reqs[len(reqs)-1]

	if got := last.ResourceAttrs["service.name"]; got != "simdrive" {
		t.Errorf("service.name = %q, want simdrive", got)
	}
	restores := last.Metric(telemetry.MetricRestores)
	if restores == nil || len(restores.Points) == 0 {
		t.Fatal("export missing " + telemetry.MetricRestores)
	}
	if restores.Points[0].AsInt < 1 {
		t.Errorf("restores = %d, want ≥ 1 (cut-in must trigger an emergency RestoreFull)",
			restores.Points[0].AsInt)
	}

	layerLat := last.Metric(telemetry.MetricLayerTransitionLatency)
	if layerLat == nil {
		t.Fatal("export missing per-layer transition latency summaries")
	}
	if layerLat.Type != "summary" {
		t.Errorf("per-layer latency exported as %q, want summary", layerLat.Type)
	}
	otlpLayers := map[string]bool{}
	for _, p := range layerLat.Points {
		layer := p.Attrs[telemetry.LabelLayer]
		if layer == "" {
			t.Errorf("per-layer datapoint missing %q attribute: %+v", telemetry.LabelLayer, p)
		}
		otlpLayers[layer] = true
		if p.Count < 1 {
			t.Errorf("layer %q datapoint count = %d, want ≥ 1", layer, p.Count)
		}
	}
	if len(otlpLayers) < 2 {
		t.Errorf("exported layers = %v, want ≥ 2 distinct prunable parameters", otlpLayers)
	}
	// The OTLP attribute set must match the labels Prometheus renders.
	if len(promLayers) == 0 {
		t.Fatal("/metrics probe saw no per-layer series")
	}
	for layer := range promLayers {
		if !otlpLayers[layer] {
			t.Errorf("layer %q on /metrics but missing from OTLP export", layer)
		}
	}
	for layer := range otlpLayers {
		if !promLayers[layer] {
			t.Errorf("layer %q in OTLP export but missing from /metrics", layer)
		}
	}
}
