package main

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
)

func TestFindScenario(t *testing.T) {
	if _, err := findScenario("cut-in"); err != nil {
		t.Error(err)
	}
	if _, err := findScenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "cut-in") {
		t.Error("error does not list valid names")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive end-to-end skipped in -short mode")
	}
	csvPath := filepath.Join(t.TempDir(), "timeline.csv")
	if err := run("cut-in", "hysteresis", 42, csvPath, 500, "", "", 1, 0, "", "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "tick,") {
		t.Errorf("timeline CSV malformed: %q", string(data[:40]))
	}
	if err := run("cut-in", "bogus", 1, "", 500, "", "", 1, 0, "", "", nil); err == nil {
		t.Error("bogus policy accepted")
	}
	if err := run("cut-in", "hysteresis", 1, "", 500, "", "", 0, 0, "", "", nil); err == nil {
		t.Error("zero fleet size accepted")
	}
	// All remaining policies at least construct and run.
	for _, p := range []string{"static-dense", "static-deep", "threshold", "predictive"} {
		if err := run("highway-cruise", p, 1, "", 1000, "", "", 1, 0, "", "", nil); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

// TestRunWithTelemetry drives the cut-in scenario with the telemetry server
// live and scrapes both endpoints before shutdown: the snapshot must show
// at least one emergency RestoreFull with a nonzero restore-latency
// histogram, governor tick accounting, and the same counters in the
// Prometheus rendering.
func TestRunWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive telemetry end-to-end skipped in -short mode")
	}
	probed := false
	probe := func(baseURL string) {
		probed = true
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Status     string                                 `json:"status"`
			Switches   int64                                  `json:"switches"`
			Counters   map[string]int64                       `json:"counters"`
			Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "ok" {
			t.Errorf("healthz status = %q", doc.Status)
		}
		if doc.Counters[telemetry.MetricRestores] < 1 {
			t.Errorf("restores = %d, want ≥ 1 (cut-in must trigger an emergency RestoreFull)",
				doc.Counters[telemetry.MetricRestores])
		}
		rl := doc.Histograms[telemetry.MetricRestoreLatency]
		if rl.Count < 1 || rl.Max <= 0 {
			t.Errorf("restore latency histogram = %+v, want count ≥ 1 and max > 0", rl)
		}
		if doc.Counters[telemetry.MetricGovernorTicks] < 1 {
			t.Error("no governor ticks recorded")
		}
		if doc.Switches < 1 {
			t.Error("no level switches recorded")
		}

		mresp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		body, err := io.ReadAll(mresp.Body)
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE rpn_restores_total counter",
			"# TYPE rpn_transition_latency_us summary",
			"rpn_governor_ticks_total",
			"rpn_uptime_seconds",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	if err := run("cut-in", "hysteresis", 42, "", 500, "127.0.0.1:0", "", 1, 0, "", "", probe); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("telemetry probe never ran")
	}
}

// newFakeCollector starts an in-process OTLP/HTTP collector that accepts
// the exporter's default gzip-compressed bodies (and plain ones) and
// decodes every export. The returned func snapshots the decoded requests.
func newFakeCollector(t *testing.T) (*httptest.Server, func() []*otlp.Request) {
	t.Helper()
	var mu sync.Mutex
	var reqs []*otlp.Request
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/metrics" {
			t.Errorf("collector hit on %q, want /v1/metrics", r.URL.Path)
			http.NotFound(w, r)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/x-protobuf" {
			t.Errorf("Content-Type = %q, want application/x-protobuf", ct)
		}
		var body io.Reader = r.Body
		if r.Header.Get("Content-Encoding") == "gzip" {
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				t.Errorf("collector failed to open gzip body: %v", err)
				return
			}
			defer zr.Close()
			body = zr
		}
		raw, err := io.ReadAll(body)
		if err != nil {
			t.Error(err)
			return
		}
		req, err := otlp.Decode(raw)
		if err != nil {
			t.Errorf("collector failed to decode export: %v", err)
			return
		}
		mu.Lock()
		reqs = append(reqs, req)
		mu.Unlock()
	}))
	t.Cleanup(srv.Close)
	return srv, func() []*otlp.Request {
		mu.Lock()
		defer mu.Unlock()
		return append([]*otlp.Request(nil), reqs...)
	}
}

// TestRunWithOTLP is the collector-side end-to-end: simdrive runs the
// cut-in scenario against an in-process fake OTLP collector, and the
// decoded export must carry the emergency restore and the per-layer
// transition-latency summaries as labeled datapoints — with the same
// layer label set the live /metrics endpoint renders.
func TestRunWithOTLP(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive OTLP end-to-end skipped in -short mode")
	}

	collector, decoded := newFakeCollector(t)

	// Scrape the layer label set from /metrics during the run so the OTLP
	// attributes can be cross-checked against the Prometheus rendering.
	promLayers := map[string]bool{}
	probe := func(baseURL string) {
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if !strings.HasPrefix(line, telemetry.MetricLayerTransitionLatency+"{") {
				continue
			}
			if _, labels, ok := telemetry.ParseSeries(strings.SplitN(line, " ", 2)[0]); ok {
				for _, l := range labels {
					if l.Key == telemetry.LabelLayer {
						promLayers[l.Value] = true
					}
				}
			}
		}
	}

	if err := run("cut-in", "hysteresis", 42, "", 500, "127.0.0.1:0", collector.URL, 1, 0, "", "", probe); err != nil {
		t.Fatal(err)
	}

	// run() shuts the exporter down with a final flush, so at least one
	// export must have landed even if the run beat the export interval.
	reqs := decoded()
	if len(reqs) == 0 {
		t.Fatal("collector received no exports")
	}
	last := reqs[len(reqs)-1]

	if got := last.ResourceAttrs["service.name"]; got != "simdrive" {
		t.Errorf("service.name = %q, want simdrive", got)
	}
	restores := last.Metric(telemetry.MetricRestores)
	if restores == nil || len(restores.Points) == 0 {
		t.Fatal("export missing " + telemetry.MetricRestores)
	}
	if restores.Points[0].AsInt < 1 {
		t.Errorf("restores = %d, want ≥ 1 (cut-in must trigger an emergency RestoreFull)",
			restores.Points[0].AsInt)
	}

	layerLat := last.Metric(telemetry.MetricLayerTransitionLatency)
	if layerLat == nil {
		t.Fatal("export missing per-layer transition latency histograms")
	}
	if layerLat.Type != "histogram" {
		t.Errorf("per-layer latency exported as %q, want histogram (_us families carry bucket counts)", layerLat.Type)
	}
	otlpLayers := map[string]bool{}
	for _, p := range layerLat.Points {
		layer := p.Attrs[telemetry.LabelLayer]
		if layer == "" {
			t.Errorf("per-layer datapoint missing %q attribute: %+v", telemetry.LabelLayer, p)
		}
		otlpLayers[layer] = true
		if p.Count < 1 {
			t.Errorf("layer %q datapoint count = %d, want ≥ 1", layer, p.Count)
		}
	}
	if len(otlpLayers) < 2 {
		t.Errorf("exported layers = %v, want ≥ 2 distinct prunable parameters", otlpLayers)
	}
	// The OTLP attribute set must match the labels Prometheus renders.
	if len(promLayers) == 0 {
		t.Fatal("/metrics probe saw no per-layer series")
	}
	for layer := range promLayers {
		if !otlpLayers[layer] {
			t.Errorf("layer %q on /metrics but missing from OTLP export", layer)
		}
	}
	for layer := range otlpLayers {
		if !promLayers[layer] {
			t.Errorf("layer %q in OTLP export but missing from /metrics", layer)
		}
	}
}

// TestRunFleet is the fleet end-to-end acceptance check: simdrive -fleet 4
// with the telemetry server and an OTLP collector live. Every instance
// must surface model-labeled series on /metrics (including the combined
// layer+model label set on per-layer histograms), the fleet budget
// governor must record rebalance passes, and the per-model governor tick
// counters must cross-check exactly between the Prometheus rendering and
// the final OTLP export.
func TestRunFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive fleet end-to-end skipped in -short mode")
	}

	collector, decoded := newFakeCollector(t)

	models := []string{"car0", "car1", "car2", "car3"}
	promTicks := map[string]float64{}
	sawLayerModel := false
	rebalances := 0.0
	probe := func(baseURL string) {
		resp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(body), "\n") {
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			fields := strings.SplitN(line, " ", 2)
			if len(fields) != 2 {
				continue
			}
			name, labels, ok := telemetry.ParseSeries(fields[0])
			if !ok {
				continue
			}
			model, layer := "", ""
			for _, l := range labels {
				switch l.Key {
				case telemetry.LabelModel:
					model = l.Value
				case telemetry.LabelLayer:
					layer = l.Value
				}
			}
			switch name {
			case telemetry.MetricGovernorTicks:
				if model == "" {
					t.Errorf("flat %s series leaked into fleet mode: %s", name, line)
					continue
				}
				v, err := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
				if err != nil {
					t.Errorf("bad counter value in %q: %v", line, err)
					continue
				}
				promTicks[model] = v
			case telemetry.MetricLayerTransitionLatency:
				if model != "" && layer != "" {
					sawLayerModel = true
				}
			case telemetry.MetricFleetRebalances:
				if model != "" {
					t.Errorf("fleet aggregate %s carries a model label: %s", name, line)
				}
				rebalances, _ = strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
			}
		}
	}

	// The windowed query must answer over live HTTP mid-run, and the window
	// file must survive to disk — the simdrive leg of the ISSUE 9 loop.
	windowFile := filepath.Join(t.TempDir(), "windows.db")
	var windowed map[string]telemetry.WindowSeries
	fullProbe := func(baseURL string) {
		probe(baseURL)
		resp, err := http.Get(baseURL + "/healthz?window=5m&lookback=2h")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Windows map[string]telemetry.WindowSeries `json:"windows"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		windowed = doc.Windows
	}

	if err := run("cut-in", "hysteresis", 42, "", 1000, "127.0.0.1:0", collector.URL, len(models), 40, "", windowFile, fullProbe); err != nil {
		t.Fatal(err)
	}

	sawFrameWindow := false
	for series := range windowed {
		if name, _, ok := telemetry.ParseSeries(series); ok && name == telemetry.MetricFrameLatency {
			sawFrameWindow = true
		}
	}
	if !sawFrameWindow {
		t.Errorf("windowed /healthz query returned no %s series: %v", telemetry.MetricFrameLatency, windowed)
	}
	if fi, err := os.Stat(windowFile); err != nil || fi.Size() == 0 {
		t.Errorf("window file not persisted: %v (size %v)", err, fi)
	}

	for _, m := range models {
		if promTicks[m] < 1 {
			t.Errorf("/metrics governor ticks for %s = %v, want ≥ 1", m, promTicks[m])
		}
	}
	if !sawLayerModel {
		t.Error("/metrics has no per-layer series carrying both layer and model labels")
	}
	if rebalances < 1 {
		t.Errorf("%s = %v, want ≥ 1 (budget loop must have run)", telemetry.MetricFleetRebalances, rebalances)
	}

	reqs := decoded()
	if len(reqs) == 0 {
		t.Fatal("collector received no exports")
	}
	last := reqs[len(reqs)-1]
	ticks := last.Metric(telemetry.MetricGovernorTicks)
	if ticks == nil {
		t.Fatal("export missing " + telemetry.MetricGovernorTicks)
	}
	otlpTicks := map[string]float64{}
	for _, p := range ticks.Points {
		model := p.Attrs[telemetry.LabelModel]
		if model == "" {
			t.Errorf("governor tick datapoint without model attribute: %+v", p)
			continue
		}
		otlpTicks[model] = float64(p.AsInt)
	}
	// The registry is static by probe time (vehicles joined, budget loop
	// stopped), so the final OTLP flush must agree exactly with /metrics.
	for m, v := range promTicks {
		if otlpTicks[m] != v {
			t.Errorf("governor ticks for %s: /metrics %v vs OTLP %v", m, v, otlpTicks[m])
		}
	}
	for m := range otlpTicks {
		if _, ok := promTicks[m]; !ok {
			t.Errorf("model %s in OTLP export but missing from /metrics", m)
		}
	}
	if fr := last.Metric(telemetry.MetricFleetRebalances); fr == nil || len(fr.Points) == 0 || fr.Points[0].AsInt < 1 {
		t.Error("OTLP export missing fleet rebalance counter")
	}
}
