package main

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

func TestFindScenario(t *testing.T) {
	if _, err := findScenario("cut-in"); err != nil {
		t.Error(err)
	}
	if _, err := findScenario("nope"); err == nil {
		t.Error("unknown scenario accepted")
	} else if !strings.Contains(err.Error(), "cut-in") {
		t.Error("error does not list valid names")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive end-to-end skipped in -short mode")
	}
	csvPath := filepath.Join(t.TempDir(), "timeline.csv")
	if err := run("cut-in", "hysteresis", 42, csvPath, 500, "", nil); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "tick,") {
		t.Errorf("timeline CSV malformed: %q", string(data[:40]))
	}
	if err := run("cut-in", "bogus", 1, "", 500, "", nil); err == nil {
		t.Error("bogus policy accepted")
	}
	// All remaining policies at least construct and run.
	for _, p := range []string{"static-dense", "static-deep", "threshold", "predictive"} {
		if err := run("highway-cruise", p, 1, "", 1000, "", nil); err != nil {
			t.Errorf("policy %s: %v", p, err)
		}
	}
}

// TestRunWithTelemetry drives the cut-in scenario with the telemetry server
// live and scrapes both endpoints before shutdown: the snapshot must show
// at least one emergency RestoreFull with a nonzero restore-latency
// histogram, governor tick accounting, and the same counters in the
// Prometheus rendering.
func TestRunWithTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("simdrive telemetry end-to-end skipped in -short mode")
	}
	probed := false
	probe := func(baseURL string) {
		probed = true
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var doc struct {
			Status     string                                 `json:"status"`
			Switches   int64                                  `json:"switches"`
			Counters   map[string]int64                       `json:"counters"`
			Histograms map[string]telemetry.HistogramSnapshot `json:"histograms"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		if doc.Status != "ok" {
			t.Errorf("healthz status = %q", doc.Status)
		}
		if doc.Counters[telemetry.MetricRestores] < 1 {
			t.Errorf("restores = %d, want ≥ 1 (cut-in must trigger an emergency RestoreFull)",
				doc.Counters[telemetry.MetricRestores])
		}
		rl := doc.Histograms[telemetry.MetricRestoreLatency]
		if rl.Count < 1 || rl.Max <= 0 {
			t.Errorf("restore latency histogram = %+v, want count ≥ 1 and max > 0", rl)
		}
		if doc.Counters[telemetry.MetricGovernorTicks] < 1 {
			t.Error("no governor ticks recorded")
		}
		if doc.Switches < 1 {
			t.Error("no level switches recorded")
		}

		mresp, err := http.Get(baseURL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer mresp.Body.Close()
		body, err := io.ReadAll(mresp.Body)
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		for _, want := range []string{
			"# TYPE rpn_restores_total counter",
			"# TYPE rpn_transition_latency_us summary",
			"rpn_governor_ticks_total",
			"rpn_uptime_seconds",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("/metrics missing %q", want)
			}
		}
	}
	if err := run("cut-in", "hysteresis", 42, "", 500, "127.0.0.1:0", probe); err != nil {
		t.Fatal(err)
	}
	if !probed {
		t.Fatal("telemetry probe never ran")
	}
}
