package main

// serve.go is simdrive's service mode: instead of driving scenarios
// in-process, -serve stands the trained fleet up behind the ingest front
// end (internal/ingest) so external vehicles — simdrive -replay, or
// anything speaking RFR1 — stream frames over TCP and read detections
// back. -telemetry serves /healthz and /metrics alongside; -chaos arms
// the listener's wire fault point (conn-drop, slow-loris,
// garble-frames) for network chaos drills.

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/ingest"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/telemetry"
)

// serveOptions parameterizes the service stack.
type serveOptions struct {
	// Addr is the ingest listen address (host:port; :0 for ephemeral).
	Addr string
	// Fleet is the number of model instances behind the dispatcher.
	Fleet int
	// Seed trains the shared model deterministically.
	Seed int64
	// TelemetryAddr, when non-empty, serves /healthz and /metrics.
	TelemetryAddr string
	// Chaos, when non-empty, arms wire fault specs on the listener.
	Chaos string
	// QueueCap bounds the criticality queue (0: ingest default).
	QueueCap int
	// FramesPerSec and MaxConns are the default per-tenant limits
	// (0: unlimited).
	FramesPerSec float64
	MaxConns     int
	// Workers sizes the dispatcher pool (0: 4). Tests pin it to 1 so the
	// service rate is a single inference stream and overload is exact.
	Workers int
}

// serveStack is the running service: fleet, dispatcher, ingest server,
// and telemetry. Tests build it directly; runServe wraps it in signal
// handling.
type serveStack struct {
	srv  *ingest.Server
	disp *fleet.Dispatcher
	flt  *fleet.Fleet
	reg  *telemetry.Registry
	tsrv *telemetry.Server
}

// Addr returns the ingest listener's address.
func (st *serveStack) Addr() string { return st.srv.Addr().String() }

// TelemetryAddr returns the /healthz server's address ("" if not serving).
func (st *serveStack) TelemetryAddr() string {
	if st.tsrv == nil {
		return ""
	}
	return st.tsrv.Addr()
}

// Registry exposes the stack's metrics registry (tests read counters).
func (st *serveStack) Registry() *telemetry.Registry { return st.reg }

// Close drains the stack in dependency order: the front end stops
// accepting and flushes every accepted frame through the dispatcher
// (bounded by ctx), then the dispatcher, fleet views, and telemetry
// tear down.
func (st *serveStack) Close(ctx context.Context) error {
	err := st.srv.Shutdown(ctx)
	st.disp.Close()
	if rerr := st.flt.Release(); rerr != nil && err == nil {
		err = rerr
	}
	if st.tsrv != nil {
		if terr := st.tsrv.Close(); terr != nil && err == nil {
			err = terr
		}
	}
	if rerr := st.reg.Close(); rerr != nil && err == nil {
		err = rerr
	}
	return err
}

// fleetModelFor maps vehicle names onto the n fleet instances: a
// trailing integer ("car17" → car(17 mod n)) keeps the replay
// generator's mapping obvious; anything else hashes stably.
func fleetModelFor(n int) func(string) string {
	return func(vehicle string) string {
		i := len(vehicle)
		for i > 0 && vehicle[i-1] >= '0' && vehicle[i-1] <= '9' {
			i--
		}
		if i < len(vehicle) {
			if idx, err := strconv.Atoi(vehicle[i:]); err == nil {
				return fmt.Sprintf("car%d", idx%n)
			}
		}
		h := fnv.New32a()
		_, _ = h.Write([]byte(vehicle))
		return fmt.Sprintf("car%d", int(h.Sum32())%n)
	}
}

// buildServeStack trains the fleet and wires ingest + dispatcher +
// telemetry together. The fleet shares one checkpoint store
// copy-on-write (views), so n instances cost one training run.
func buildServeStack(o serveOptions) (*serveStack, error) {
	if o.Fleet < 1 {
		return nil, fmt.Errorf("serve: fleet size %d (want ≥ 1)", o.Fleet)
	}
	var inj *fault.Injector
	if o.Chaos != "" {
		specs, err := fault.ParseSpecs(o.Chaos)
		if err != nil {
			return nil, err
		}
		inj = fault.NewInjector(o.Seed, specs...)
		fmt.Printf("chaos: armed %s on the wire (seed %d)\n", fault.FormatSpecs(specs), o.Seed)
	}

	reg := telemetry.NewRegistry()
	reg.StartAggregator(250 * time.Millisecond)
	hooks := telemetry.NewHooks(reg)
	if inj != nil {
		inj.SetObserver(hooks)
	}

	fmt.Printf("training perception model and cloning %d fleet instances (deterministic, ~seconds)…\n", o.Fleet)
	z := experiments.NewZoo(1)
	spec := platform.EmbeddedCPU()
	f := fleet.New()
	for i := 0; i < o.Fleet; i++ {
		model, rm, err := z.ObstacleStackView(spec)
		if err != nil {
			return nil, err
		}
		pipe, err := perception.NewPipeline(model, 16, 0)
		if err != nil {
			return nil, err
		}
		inst, err := fleet.NewInstance(fmt.Sprintf("car%d", i), pipe, rm)
		if err != nil {
			return nil, err
		}
		if err := f.Add(inst); err != nil {
			return nil, err
		}
	}
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	disp, err := fleet.NewDispatcher(f, workers, 2*o.Fleet+8)
	if err != nil {
		return nil, err
	}

	var tsrv *telemetry.Server
	if o.TelemetryAddr != "" {
		tsrv, err = telemetry.Serve(reg, o.TelemetryAddr)
		if err != nil {
			disp.Close()
			return nil, err
		}
	}

	srv, err := ingest.Listen(ingest.Config{
		Backend:       disp,
		QueueCap:      o.QueueCap,
		DefaultLimits: ingest.TenantLimits{FramesPerSec: o.FramesPerSec, MaxConns: o.MaxConns},
		ModelFor:      fleetModelFor(o.Fleet),
		Observer:      hooks,
		Injector:      inj,
	}, o.Addr)
	if err != nil {
		if tsrv != nil {
			_ = tsrv.Close()
		}
		disp.Close()
		return nil, err
	}
	return &serveStack{srv: srv, disp: disp, flt: f, reg: reg, tsrv: tsrv}, nil
}

// runServe is the -serve command path: build the stack, print where it
// listens, and drain gracefully on SIGINT/SIGTERM.
func runServe(o serveOptions) error {
	st, err := buildServeStack(o)
	if err != nil {
		return err
	}
	fmt.Printf("ingest: listening on %s (fleet %d)\n", st.Addr(), o.Fleet)
	if a := st.TelemetryAddr(); a != "" {
		fmt.Printf("telemetry: http://%s/healthz and /metrics\n", a)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	<-sigc
	fmt.Println("ingest: draining…")
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := st.Close(ctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	fmt.Println("ingest: drained cleanly")
	return nil
}
