// Command simdrive runs one driving scenario through the closed
// perception/adaptation loop and prints the adaptation timeline: what the
// safety monitor saw, what the governor did, and what it cost.
//
//	simdrive -scenario cut-in -policy hysteresis
//	simdrive -scenario pedestrian-fog -policy threshold -csv timeline.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
)

func main() {
	scenarioName := flag.String("scenario", "cut-in", "scenario: highway-cruise, urban-traffic, cut-in, pedestrian, sensor-degradation, pedestrian-fog")
	policyName := flag.String("policy", "hysteresis", "governor policy: static-dense, static-deep, threshold, hysteresis, predictive")
	seed := flag.Int64("seed", 42, "world seed")
	csvPath := flag.String("csv", "", "optional path to write the per-tick timeline as CSV")
	every := flag.Int("every", 100, "print one timeline row every N ticks")
	telemetryAddr := flag.String("telemetry", "", "serve /healthz and /metrics on this address (e.g. :8080) during the run")
	otlpEndpoint := flag.String("otlp-endpoint", "", "export OTLP/HTTP metrics to this collector (e.g. localhost:4318) during the run")
	flag.Parse()

	if err := run(*scenarioName, *policyName, *seed, *csvPath, *every, *telemetryAddr, *otlpEndpoint, nil); err != nil {
		fmt.Fprintln(os.Stderr, "simdrive:", err)
		os.Exit(1)
	}
}

func findScenario(name string) (sim.Scenario, error) {
	for _, sc := range sim.AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	var names []string
	for _, sc := range sim.AllScenarios() {
		names = append(names, sc.Name)
	}
	return sim.Scenario{}, fmt.Errorf("unknown scenario %q (have %v)", name, names)
}

// run executes one scenario. When telemetryAddr is non-empty, a telemetry
// server exposes /healthz and /metrics for the duration of the run; when
// otlpEndpoint is non-empty, an OTLP exporter pushes the same registry to
// that collector (final flush on shutdown, so runs shorter than the export
// interval still deliver). probe, when non-nil, is invoked with the
// server's base URL after the run completes and before the server shuts
// down (tests hook it to scrape the live endpoints).
func run(scenarioName, policyName string, seed int64, csvPath string, every int, telemetryAddr, otlpEndpoint string, probe func(baseURL string)) error {
	sc, err := findScenario(scenarioName)
	if err != nil {
		return err
	}
	fmt.Println("training perception model (deterministic, ~seconds)…")
	z := experiments.NewZoo(1)
	spec := platform.EmbeddedCPU()
	model, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return err
	}

	govOpts := []governor.Option{governor.WithTrace()}
	var tsrv *telemetry.Server
	if telemetryAddr != "" || otlpEndpoint != "" {
		reg := telemetry.NewRegistry()
		hooks := telemetry.NewHooks(reg)
		sp := make([]float64, rm.NumLevels())
		for i, lvl := range rm.Levels() {
			sp[i] = lvl.Sparsity
		}
		hooks.SetLevels(sp)
		rm.SetObserver(hooks)
		govOpts = append(govOpts, governor.WithObserver(hooks))
		if telemetryAddr != "" {
			tsrv, err = telemetry.Serve(reg, telemetryAddr)
			if err != nil {
				return err
			}
			defer tsrv.Close()
			fmt.Printf("telemetry: http://%s/healthz and /metrics\n", tsrv.Addr())
		}
		if otlpEndpoint != "" {
			exp, err := otlp.NewExporter(reg, otlpEndpoint, otlp.WithServiceName("simdrive"))
			if err != nil {
				return err
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := exp.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "simdrive: otlp shutdown:", err)
				}
			}()
			fmt.Printf("otlp: exporting to %s\n", exp.URL())
		}
	}

	var gov *governor.Governor
	switch policyName {
	case "static-dense":
		// No governor; model stays dense.
	case "static-deep":
		if err := rm.ApplyLevel(rm.NumLevels() - 1); err != nil {
			return err
		}
	case "threshold":
		gov, err = governor.New(rm, governor.Threshold{}, safety.DefaultContract(), govOpts...)
	case "hysteresis":
		gov, err = governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract(), govOpts...)
	case "predictive":
		gov, err = governor.New(rm, &governor.Predictive{}, safety.DefaultContract(), govOpts...)
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if err != nil {
		return err
	}

	res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Governor:  gov,
		Record:    true,
		Seed:      seed,
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		fmt.Sprintf("timeline: %s under %s (every %d ticks)", sc.Name, policyName, every),
		"tick", "ttc s", "score", "class", "level", "truth", "detected",
	)
	rec := res.Recorder
	for tick := 0; tick < res.Ticks; tick += every {
		ttc := rec.Series("ttc")[tick]
		ttcStr := "∞"
		if ttc >= 0 {
			ttcStr = metrics.F(ttc, 2)
		}
		tb.AddRow(
			fmt.Sprintf("%d", tick),
			ttcStr,
			metrics.F(rec.Series("score")[tick], 3),
			safety.Criticality(int(rec.Series("class")[tick])).String(),
			fmt.Sprintf("L%d", int(rec.Series("level")[tick])),
			metrics.F(rec.Series("truth")[tick], 0),
			metrics.F(rec.Series("detected")[tick], 0),
		)
	}
	fmt.Print(tb.String())

	sum := metrics.NewTable("run summary", "metric", "value")
	sum.AddRow("ticks", fmt.Sprintf("%d", res.Ticks))
	sum.AddRow("collided", fmt.Sprintf("%v", res.Collided))
	sum.AddRow("obstacle frames", fmt.Sprintf("%d", res.ObstacleTicks))
	sum.AddRow("missed", fmt.Sprintf("%d", res.Missed))
	sum.AddRow("missed critical", fmt.Sprintf("%d", res.MissedCritical))
	sum.AddRow("false alarms", fmt.Sprintf("%d", res.FalseAlarms))
	sum.AddRow("level switches", fmt.Sprintf("%d", res.Switches))
	sum.AddRow("contract violations", fmt.Sprintf("%d", res.Violations))
	sum.AddRow("mean level", metrics.F(res.MeanLevel, 2))
	sum.AddRow("energy (mJ)", metrics.F(res.EnergyMJ, 2))
	detected := 0
	var gaps []float64
	for _, g := range res.DetectionGaps {
		if g >= 0 {
			detected++
			gaps = append(gaps, g)
		}
	}
	sum.AddRow("obstacle episodes detected", fmt.Sprintf("%d/%d", detected, len(res.DetectionGaps)))
	if len(gaps) > 0 {
		sum.AddRow("median detection distance (m)", metrics.F(metrics.Percentile(gaps, 50), 1))
	}
	fmt.Print(sum.String())

	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(res.Recorder.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("timeline CSV written to %s\n", csvPath)
	}
	if probe != nil && tsrv != nil {
		probe("http://" + tsrv.Addr())
	}
	return nil
}
