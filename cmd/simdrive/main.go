// Command simdrive runs one driving scenario through the closed
// perception/adaptation loop and prints the adaptation timeline: what the
// safety monitor saw, what the governor did, and what it cost.
//
//	simdrive -scenario cut-in -policy hysteresis
//	simdrive -scenario pedestrian-fog -policy threshold -csv timeline.csv
//
// With -fleet N > 1 simdrive runs N independent model instances as a
// sharded fleet: each vehicle gets its own trained model, scenario
// (cycling through the library starting at -scenario), and world seed,
// all driving concurrently. -fleet-budget-mj adds a fleet budget governor
// that rebalances prune levels during the run to hold the aggregate
// per-inference energy envelope. Per-model telemetry series carry a
// model="carN" label on the shared registry.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/governor"
	"repro/internal/health"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
	"repro/internal/tensor"
)

func main() {
	scenarioName := flag.String("scenario", "cut-in", "scenario: highway-cruise, urban-traffic, cut-in, pedestrian, sensor-degradation, pedestrian-fog")
	policyName := flag.String("policy", "hysteresis", "governor policy: static-dense, static-deep, threshold, hysteresis, predictive")
	seed := flag.Int64("seed", 42, "world seed")
	csvPath := flag.String("csv", "", "optional path to write the per-tick timeline as CSV (per-vehicle files in fleet mode)")
	every := flag.Int("every", 100, "print one timeline row every N ticks (single-model mode)")
	telemetryAddr := flag.String("telemetry", "", "serve /healthz and /metrics on this address (e.g. :8080) during the run")
	otlpEndpoint := flag.String("otlp-endpoint", "", "export OTLP/HTTP metrics to this collector (e.g. localhost:4318) during the run")
	fleetSize := flag.Int("fleet", 1, "number of model instances to run as a fleet (1 = single-model mode)")
	fleetBudget := flag.Float64("fleet-budget-mj", 0, "aggregate per-inference energy budget (mJ) a fleet governor holds during the run (0 = no budget; fleet mode only)")
	chaos := flag.String("chaos", "", "arm a chaos drill: comma-separated fault specs, e.g. nan-weights:car1:after=1,drop-frames:car2:after=40:for=3 (fleet mode only; with -serve, wire faults on the listener)")
	windowFile := flag.String("window-file", "", "persist telemetry time windows to this append-only file (replayed on the next run; requires -telemetry or -otlp-endpoint)")
	serveAddr := flag.String("serve", "", "serve the fleet behind the ingest front end on this address (e.g. :9077) instead of driving scenarios")
	replayAddr := flag.String("replay", "", "stream synthetic frames at a running ingest front end on this address instead of driving scenarios")
	vehicles := flag.Int("vehicles", 8, "replay mode: number of concurrent vehicle connections")
	frames := flag.Int("frames", 200, "replay mode: frames per vehicle")
	interval := flag.Duration("interval", 0, "replay mode: pause between one vehicle's frames (0 = as fast as admitted)")
	ingestQueue := flag.Int("ingest-queue", 0, "serve mode: criticality queue capacity (0 = default)")
	ingestFPS := flag.Float64("ingest-fps", 0, "serve mode: per-tenant frames/sec admission limit (0 = unlimited)")
	ingestConns := flag.Int("ingest-conns", 0, "serve mode: per-tenant connection cap (0 = unlimited)")
	flag.Parse()

	var err error
	switch {
	case *replayAddr != "":
		err = runReplayCmd(*replayAddr, *vehicles, *frames, *seed, *interval)
	case *serveAddr != "":
		err = runServe(serveOptions{
			Addr:          *serveAddr,
			Fleet:         *fleetSize,
			Seed:          *seed,
			TelemetryAddr: *telemetryAddr,
			Chaos:         *chaos,
			QueueCap:      *ingestQueue,
			FramesPerSec:  *ingestFPS,
			MaxConns:      *ingestConns,
		})
	default:
		err = run(*scenarioName, *policyName, *seed, *csvPath, *every, *telemetryAddr, *otlpEndpoint, *fleetSize, *fleetBudget, *chaos, *windowFile, nil)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "simdrive:", err)
		os.Exit(1)
	}
}

func findScenario(name string) (sim.Scenario, error) {
	return sim.FindScenario(name)
}

// run executes one scenario (fleetSize == 1) or a fleet of concurrent
// instances (fleetSize > 1). When telemetryAddr is non-empty, a telemetry
// server exposes /healthz and /metrics for the duration of the run; when
// otlpEndpoint is non-empty, an OTLP exporter pushes the same registry to
// that collector (final flush on shutdown, so runs shorter than the export
// interval still deliver). chaos, when non-empty, is a fault-spec list
// (see internal/fault) armed over the run's seed — fleet mode only, so a
// drill always has healthy instances to measure the blast radius against.
// windowFile, when non-empty, persists the registry's flushed time windows
// to that append-only file (replaying whatever a previous run left there).
// probe, when non-nil, is invoked with the server's base URL after the run
// completes and before the server shuts down (tests hook it to scrape the
// live endpoints).
func run(scenarioName, policyName string, seed int64, csvPath string, every int, telemetryAddr, otlpEndpoint string, fleetSize int, fleetBudgetMJ float64, chaos, windowFile string, probe func(baseURL string)) error {
	sc, err := findScenario(scenarioName)
	if err != nil {
		return err
	}
	if fleetSize < 1 {
		return fmt.Errorf("fleet size %d (want ≥ 1)", fleetSize)
	}
	var inj *fault.Injector
	if chaos != "" {
		specs, err := fault.ParseSpecs(chaos)
		if err != nil {
			return err
		}
		if fleetSize < 2 {
			return fmt.Errorf("-chaos drills run against a fleet: want -fleet ≥ 2, got %d", fleetSize)
		}
		inj = fault.NewInjector(seed, specs...)
		fmt.Printf("chaos: armed %s (seed %d)\n", fault.FormatSpecs(specs), seed)
	}

	var reg *telemetry.Registry
	var tsrv *telemetry.Server
	if telemetryAddr != "" || otlpEndpoint != "" {
		reg = telemetry.NewRegistry()
		if windowFile != "" {
			if err := reg.Persist(windowFile); err != nil {
				return err
			}
			fmt.Printf("telemetry: window persistence at %s\n", windowFile)
		}
		// Roll hot-path samples into time windows for the duration of the
		// run; Close takes the final flush (and persists it) on the way out.
		reg.StartAggregator(250 * time.Millisecond)
		defer func() {
			if err := reg.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "simdrive: telemetry close:", err)
			}
		}()
		if inj != nil {
			// Fired faults land on the shared registry unlabeled: the kind
			// label already identifies them, and outage faults have no model.
			inj.SetObserver(telemetry.NewHooks(reg))
		}
		if telemetryAddr != "" {
			tsrv, err = telemetry.Serve(reg, telemetryAddr)
			if err != nil {
				return err
			}
			defer tsrv.Close()
			fmt.Printf("telemetry: http://%s/healthz and /metrics\n", tsrv.Addr())
		}
		if otlpEndpoint != "" {
			eopts := []otlp.ExporterOption{otlp.WithServiceName("simdrive")}
			if inj != nil {
				// Route exports through the injector's transport so armed
				// otlp-outage windows fail POSTs before they reach the wire.
				eopts = append(eopts, otlp.WithHTTPClient(&http.Client{
					Timeout:   5 * time.Second,
					Transport: inj.Transport(nil),
				}))
			}
			exp, err := otlp.NewExporter(reg, otlpEndpoint, eopts...)
			if err != nil {
				return err
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				defer cancel()
				if err := exp.Shutdown(ctx); err != nil {
					fmt.Fprintln(os.Stderr, "simdrive: otlp shutdown:", err)
				}
			}()
			fmt.Printf("otlp: exporting to %s\n", exp.URL())
		}
	} else if windowFile != "" {
		return fmt.Errorf("-window-file needs a telemetry registry: pass -telemetry or -otlp-endpoint")
	}

	if fleetSize == 1 {
		err = runSolo(sc, policyName, seed, csvPath, every, reg)
	} else {
		err = runFleet(sc, policyName, seed, csvPath, fleetSize, fleetBudgetMJ, reg, inj)
	}
	if err != nil {
		return err
	}
	if probe != nil && tsrv != nil {
		probe("http://" + tsrv.Addr())
	}
	return nil
}

// runSolo is the classic single-model closed loop with the per-tick
// timeline print.
func runSolo(sc sim.Scenario, policyName string, seed int64, csvPath string, every int, reg *telemetry.Registry) error {
	fmt.Println("training perception model (deterministic, ~seconds)…")
	z := experiments.NewZoo(1)
	spec := platform.EmbeddedCPU()
	model, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return err
	}

	govOpts := []governor.Option{governor.WithTrace()}
	if reg != nil {
		hooks := telemetry.NewHooks(reg)
		sp := make([]float64, rm.NumLevels())
		for i, lvl := range rm.Levels() {
			sp[i] = lvl.Sparsity
		}
		hooks.SetLevels(sp)
		rm.SetObserver(hooks)
		govOpts = append(govOpts, governor.WithObserver(hooks))
	}

	var gov *governor.Governor
	switch policyName {
	case "static-dense":
		// No governor; model stays dense.
	case "static-deep":
		if err := rm.ApplyLevel(rm.NumLevels() - 1); err != nil {
			return err
		}
	case "threshold":
		gov, err = governor.New(rm, governor.Threshold{}, safety.DefaultContract(), govOpts...)
	case "hysteresis":
		gov, err = governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract(), govOpts...)
	case "predictive":
		gov, err = governor.New(rm, &governor.Predictive{}, safety.DefaultContract(), govOpts...)
	default:
		return fmt.Errorf("unknown policy %q", policyName)
	}
	if err != nil {
		return err
	}

	res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
		FrameSize: 16,
		Spec:      spec,
		Governor:  gov,
		Record:    true,
		Seed:      seed,
	})
	if err != nil {
		return err
	}

	tb := metrics.NewTable(
		fmt.Sprintf("timeline: %s under %s (every %d ticks)", sc.Name, policyName, every),
		"tick", "ttc s", "score", "class", "level", "truth", "detected",
	)
	rec := res.Recorder
	for tick := 0; tick < res.Ticks; tick += every {
		ttc := rec.Series("ttc")[tick]
		ttcStr := "∞"
		if ttc >= 0 {
			ttcStr = metrics.F(ttc, 2)
		}
		tb.AddRow(
			fmt.Sprintf("%d", tick),
			ttcStr,
			metrics.F(rec.Series("score")[tick], 3),
			safety.Criticality(int(rec.Series("class")[tick])).String(),
			fmt.Sprintf("L%d", int(rec.Series("level")[tick])),
			metrics.F(rec.Series("truth")[tick], 0),
			metrics.F(rec.Series("detected")[tick], 0),
		)
	}
	fmt.Print(tb.String())

	sum := metrics.NewTable("run summary", "metric", "value")
	sum.AddRow("ticks", fmt.Sprintf("%d", res.Ticks))
	sum.AddRow("collided", fmt.Sprintf("%v", res.Collided))
	sum.AddRow("obstacle frames", fmt.Sprintf("%d", res.ObstacleTicks))
	sum.AddRow("missed", fmt.Sprintf("%d", res.Missed))
	sum.AddRow("missed critical", fmt.Sprintf("%d", res.MissedCritical))
	sum.AddRow("false alarms", fmt.Sprintf("%d", res.FalseAlarms))
	sum.AddRow("level switches", fmt.Sprintf("%d", res.Switches))
	sum.AddRow("contract violations", fmt.Sprintf("%d", res.Violations))
	sum.AddRow("mean level", metrics.F(res.MeanLevel, 2))
	sum.AddRow("energy (mJ)", metrics.F(res.EnergyMJ, 2))
	detected := 0
	var gaps []float64
	for _, g := range res.DetectionGaps {
		if g >= 0 {
			detected++
			gaps = append(gaps, g)
		}
	}
	sum.AddRow("obstacle episodes detected", fmt.Sprintf("%d/%d", detected, len(res.DetectionGaps)))
	if len(gaps) > 0 {
		sum.AddRow("median detection distance (m)", metrics.F(metrics.Percentile(gaps, 50), 1))
	}
	fmt.Print(sum.String())

	if csvPath != "" {
		if err := os.WriteFile(csvPath, []byte(res.Recorder.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("timeline CSV written to %s\n", csvPath)
	}
	return nil
}

// fleetVehicle pairs one fleet instance with the health guard its closed
// loop actually drives, plus the scenario and seed.
type fleetVehicle struct {
	inst  *fleet.Instance
	guard *health.Guard
	sc    sim.Scenario
	seed  int64
}

// reportBatchedThroughput pushes the same seeded synthetic frames through
// the per-instance path and through a batched dispatcher (fused groups,
// one matmul per layer; see fleet.WithBatching) and prints the per-frame
// wall-clock of both. Run right after the fleet is built, every clone
// shares a checkpoint and level, so every frame is fusable; the printed
// fused fraction below 100% means the planner's windows closed early, not
// that detections changed — the fused path is bit-identical to the
// per-instance one.
func reportBatchedThroughput(f *fleet.Fleet, vehicles []fleetVehicle, reg *telemetry.Registry, seed int64) error {
	const rounds = 4
	n := len(vehicles)
	rng := tensor.NewRNG(seed)
	frames := make([]*tensor.Tensor, n)
	for i := range frames {
		frames[i] = tensor.RandNormal(rng, 0, 1, 1, 16, 16)
	}

	// Twice the fleet width lets a planning window fuse two queued rounds
	// of the same instances; past ~16 frames the stacked pass outgrows
	// cache, so the window is capped there.
	maxBatch := 2 * n
	if maxBatch > 16 {
		maxBatch = 16
	}
	opts := []fleet.DispatchOption{fleet.WithBatching(maxBatch)}
	if reg != nil {
		opts = append(opts, fleet.WithBatchObserver(telemetry.NewHooks(reg)))
	}
	d, err := fleet.NewDispatcher(f, 2, rounds*n, opts...)
	if err != nil {
		return err
	}

	// Untimed warm-up of both paths: first passes pay one-off costs (im2col
	// and batch buffer allocation, dispatcher goroutine start-up) that a
	// steady-state throughput number must not include.
	batchedRounds := func(rounds int) (fused int, err error) {
		for r := 0; r < rounds; r++ {
			for i, v := range vehicles {
				if _, err := d.Submit(v.inst.Name(), frames[i]); err != nil {
					return fused, fmt.Errorf("batch report: submit: %w", err)
				}
			}
		}
		for i := 0; i < rounds*n; i++ {
			res := <-d.Results()
			if res.Err != nil {
				return fused, fmt.Errorf("batch report: %s: %w", res.Model, res.Err)
			}
			if res.Batched {
				fused++
			}
		}
		return fused, nil
	}
	if _, err := batchedRounds(1); err != nil {
		return err
	}
	for i, v := range vehicles {
		if _, err := v.inst.Detect(frames[i]); err != nil {
			return fmt.Errorf("batch report: per-instance path: %w", err)
		}
	}

	t0 := time.Now()
	for r := 0; r < rounds; r++ {
		for i, v := range vehicles {
			if _, err := v.inst.Detect(frames[i]); err != nil {
				return fmt.Errorf("batch report: per-instance path: %w", err)
			}
		}
	}
	seqPer := time.Since(t0) / time.Duration(rounds*n)

	t0 = time.Now()
	fused, err := batchedRounds(rounds)
	if err != nil {
		return err
	}
	batchPer := time.Since(t0) / time.Duration(rounds*n)
	d.Close()

	fmt.Printf("fleet batch: per-instance %s µs/frame, fused %s µs/frame (%s×, %d/%d frames fused)\n",
		metrics.F(float64(seqPer.Microseconds()), 1),
		metrics.F(float64(batchPer.Microseconds()), 1),
		metrics.F(float64(seqPer)/float64(batchPer), 2),
		fused, rounds*n)
	return nil
}

// runFleet builds n instances named car0..car(n-1) — each with its own
// trained model, governor, and (when reg is non-nil) model-labeled
// telemetry hooks — and drives them concurrently, each through its own
// scenario (cycling from base) and world seed. A positive budget starts a
// fleet budget governor that rebalances prune levels throughout the run.
//
// Every vehicle loop runs behind a health.Guard: the per-instance watchdog
// fences a faulting instance off (quarantine + emergency restore to dense)
// while the rest of the fleet keeps driving. inj, when non-nil, arms the
// instances' fault points for a chaos drill.
func runFleet(base sim.Scenario, policyName string, seed int64, csvPath string, n int, budgetMJ float64, reg *telemetry.Registry, inj *fault.Injector) error {
	scens := sim.AllScenarios()
	baseIdx := 0
	for i, s := range scens {
		if s.Name == base.Name {
			baseIdx = i
			break
		}
	}

	fmt.Printf("training perception model and cloning %d fleet instances (deterministic, ~seconds)…\n", n)
	z := experiments.NewZoo(1)
	spec := platform.EmbeddedCPU()

	f := fleet.New()
	monitor := health.NewMonitor(health.Config{})
	vehicles := make([]fleetVehicle, 0, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("car%d", i)
		// Clean fleets share one checkpoint store copy-on-write: every car
		// is a view over the same dense snapshot and recovery deltas. A
		// chaos drill instead builds each car its own stack — store-corrupt
		// flips bits in displaced values, and an unshared store keeps that
		// blast radius to the targeted car.
		var (
			model *nn.Sequential
			rm    *core.ReversibleModel
			err   error
		)
		if inj == nil {
			model, rm, err = z.ObstacleStackView(spec)
		} else {
			model, rm, err = z.ObstacleStack(nil, spec)
		}
		if err != nil {
			return err
		}
		pipe, err := perception.NewPipeline(model, 16, 0)
		if err != nil {
			return err
		}
		inst, err := fleet.NewInstance(name, pipe, rm)
		if err != nil {
			return err
		}
		if inj != nil {
			inst.SetFaultInjector(inj)
		}
		govOpts := []governor.Option{governor.WithTrace()}
		var hobs health.Observer
		if reg != nil {
			hooks := telemetry.NewHooks(reg, telemetry.Label{Key: telemetry.LabelModel, Value: name})
			sp := make([]float64, rm.NumLevels())
			for j, lvl := range rm.Levels() {
				sp[j] = lvl.Sparsity
			}
			hooks.SetLevels(sp)
			inst.SetModelObserver(hooks)
			inst.SetObserver(hooks)
			govOpts = append(govOpts, governor.WithObserver(hooks))
			hobs = hooks
		}
		// The instance is its own emergency restorer: a NaN or deadline
		// fault forces ApplyLevel(0), rewriting every pruned position from
		// the reversible store.
		if err := monitor.Register(name, inst, hobs); err != nil {
			return err
		}
		switch policyName {
		case "static-dense":
			// No governor; the instance stays dense unless the budget
			// governor retargets it.
		case "static-deep":
			err = inst.ApplyLevel(inst.NumLevels() - 1)
		case "threshold":
			err = inst.AttachGovernor(governor.Threshold{}, safety.DefaultContract(), govOpts...)
		case "hysteresis":
			err = inst.AttachGovernor(&governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract(), govOpts...)
		case "predictive":
			err = inst.AttachGovernor(&governor.Predictive{}, safety.DefaultContract(), govOpts...)
		default:
			return fmt.Errorf("unknown policy %q", policyName)
		}
		if err != nil {
			return err
		}
		if err := f.Add(inst); err != nil {
			return err
		}
		vehicles = append(vehicles, fleetVehicle{
			inst:  inst,
			guard: health.NewGuard(name, inst, monitor),
			sc:    scens[(baseIdx+i)%len(scens)],
			seed:  seed + int64(i),
		})
	}

	// Views hold store references; detach them once the run is over so a
	// leaked reference in fleet teardown shows up as an error, not as
	// permanently resident recovery deltas.
	defer func() {
		if err := f.Release(); err != nil {
			fmt.Fprintln(os.Stderr, "simdrive: fleet teardown:", err)
		}
	}()

	// While every clone still shares its checkpoint and prune level — the
	// one moment the whole fleet is guaranteed fusable — measure the fused
	// batched dispatch against the per-instance path and report the
	// wall-clock. Skipped under a chaos drill: an armed injector makes
	// instances unbatchable by design.
	if n >= 2 && inj == nil {
		if err := reportBatchedThroughput(f, vehicles, reg, seed); err != nil {
			return err
		}
	}

	// Watchdog-driven integrity scrubbing: while an instance sits at
	// Degraded, periodically re-enforce its masks so silent pruned-position
	// corruption is repaired before the fault streak reaches quarantine.
	scrubber := health.NewScrubber(monitor, 25*time.Millisecond, func(name string, repaired int64) {
		if repaired > 0 {
			fmt.Printf("health: scrub repaired %d pruned positions on %s\n", repaired, name)
		}
	})
	for _, v := range vehicles {
		scrubber.Track(v.inst.Name(), v.inst)
	}
	scrubber.Start(context.Background())
	defer scrubber.Stop()

	// Optional fleet budget governor: one initial pass so the fleet starts
	// inside the envelope, then a periodic rebalance loop for the duration
	// of the run.
	var bgWG sync.WaitGroup
	bgDone := make(chan struct{})
	if budgetMJ > 0 {
		bopts := []fleet.BudgetOption{fleet.WithHealthGate(monitor)}
		if reg != nil {
			bopts = append(bopts, fleet.WithRebalanceObserver(telemetry.NewHooks(reg)))
			// Close the measurement loop: rebalance passes read each car's
			// observed frame latency from the flushed time windows instead of
			// trusting the calibrated platform numbers alone.
			bopts = append(bopts, fleet.WithMeasuredLatency(
				telemetry.NewLatencyProbe(reg, telemetry.DefaultProbeLookback)))
		}
		bg, err := fleet.NewBudgetGovernor(f, fleet.Budget{EnergyMJ: budgetMJ}, bopts...)
		if err != nil {
			return err
		}
		if _, err := bg.Rebalance(); err != nil {
			return err
		}
		fmt.Printf("fleet: holding %s mJ aggregate per-inference energy budget\n", metrics.F(budgetMJ, 2))
		bgWG.Add(1)
		go func() {
			defer bgWG.Done()
			t := time.NewTicker(25 * time.Millisecond)
			defer t.Stop()
			for {
				select {
				case <-bgDone:
					return
				case <-t.C:
					if _, err := bg.Rebalance(); err != nil {
						fmt.Fprintln(os.Stderr, "simdrive: rebalance:", err)
						return
					}
				}
			}
		}()
	}

	results := make([]perception.LoopResult, len(vehicles))
	errs := make([]error, len(vehicles))
	var wg sync.WaitGroup
	for i := range vehicles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v := vehicles[i]
			results[i], errs[i] = perception.RunStack(v.sc, v.guard, perception.LoopConfig{
				FrameSize: 16,
				Spec:      spec,
				Record:    csvPath != "",
				Seed:      v.seed,
			})
		}(i)
	}
	wg.Wait()
	close(bgDone)
	bgWG.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("%s (%s): %w", vehicles[i].inst.Name(), vehicles[i].sc.Name, err)
		}
	}

	tb := metrics.NewTable(
		fmt.Sprintf("fleet summary: %d vehicles under %s", n, policyName),
		"model", "scenario", "ticks", "collided", "missed", "crit", "false+", "switches", "viol", "mean level", "energy mJ",
	)
	totalEnergy := 0.0
	totalSwitches, totalViolations, collisions := 0, 0, 0
	for i, v := range vehicles {
		r := results[i]
		tb.AddRow(
			v.inst.Name(),
			r.Scenario,
			fmt.Sprintf("%d", r.Ticks),
			fmt.Sprintf("%v", r.Collided),
			fmt.Sprintf("%d", r.Missed),
			fmt.Sprintf("%d", r.MissedCritical),
			fmt.Sprintf("%d", r.FalseAlarms),
			fmt.Sprintf("%d", r.Switches),
			fmt.Sprintf("%d", r.Violations),
			metrics.F(r.MeanLevel, 2),
			metrics.F(r.EnergyMJ, 2),
		)
		totalEnergy += r.EnergyMJ
		totalSwitches += r.Switches
		totalViolations += r.Violations
		if r.Collided {
			collisions++
		}
	}
	fmt.Print(tb.String())

	agg := metrics.NewTable("fleet aggregate", "metric", "value")
	agg.AddRow("vehicles", fmt.Sprintf("%d", n))
	agg.AddRow("collisions", fmt.Sprintf("%d", collisions))
	agg.AddRow("total level switches", fmt.Sprintf("%d", totalSwitches))
	agg.AddRow("total contract violations", fmt.Sprintf("%d", totalViolations))
	agg.AddRow("total energy (mJ)", metrics.F(totalEnergy, 2))
	fmt.Print(agg.String())

	states := monitor.States()
	names := make([]string, 0, len(states))
	for name := range states {
		names = append(names, name)
	}
	sort.Strings(names)
	ht := metrics.NewTable("fleet health (end of run)", "model", "state")
	for _, name := range names {
		ht.AddRow(name, states[name].String())
	}
	fmt.Print(ht.String())

	if reg != nil {
		printWindowedLatency(reg)
	}

	if csvPath != "" {
		ext := filepath.Ext(csvPath)
		stem := strings.TrimSuffix(csvPath, ext)
		for i, v := range vehicles {
			path := fmt.Sprintf("%s.%s%s", stem, v.inst.Name(), ext)
			if err := os.WriteFile(path, []byte(results[i].Recorder.CSV()), 0o644); err != nil {
				return err
			}
			fmt.Printf("timeline CSV written to %s\n", path)
		}
	}
	return nil
}

// printWindowedLatency renders the per-model frame-latency time windows the
// run accumulated — the same aggregates a /healthz?window=&lookback= query
// returns, and the figures the measured-latency rebalance path acted on.
func printWindowedLatency(reg *telemetry.Registry) {
	series := reg.WindowQuery(telemetry.WindowQueryOptions{
		Metric:   telemetry.MetricFrameLatency,
		Lookback: time.Hour,
	})
	if len(series) == 0 {
		return
	}
	keys := make([]string, 0, len(series))
	for k := range series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	wt := metrics.NewTable("fleet latency windows (µs per frame)",
		"series", "windows", "frames", "mean", "min", "p90", "p99", "max")
	for _, k := range keys {
		ws := series[k]
		var count int64
		var sum, min, max, p90, p99 float64
		for i, p := range ws.Points {
			count += p.Count
			sum += p.Sum
			if i == 0 || p.Min < min {
				min = p.Min
			}
			if p.Max > max {
				max = p.Max
			}
			// The newest window's sketch quantiles stand in for the span —
			// per-window sketches don't merge across the query result.
			p90, p99 = p.P90, p.P99
		}
		if count == 0 {
			continue
		}
		wt.AddRow(k,
			fmt.Sprintf("%d", len(ws.Points)),
			fmt.Sprintf("%d", count),
			metrics.F(sum/float64(count), 1),
			metrics.F(min, 1),
			metrics.F(p90, 1),
			metrics.F(p99, 1),
			metrics.F(max, 1),
		)
	}
	fmt.Print(wt.String())
}
