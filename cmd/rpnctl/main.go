// Command rpnctl is the operator CLI of the reversible-pruning stack: it
// trains the perception models, designs and saves deployment bundles
// (weights + calibrated level library), inspects them, and evaluates levels.
//
// Usage:
//
//	rpnctl train    -task obstacle|sign -out model.bin [-epochs N] [-seed S]
//	rpnctl bundle   -task obstacle|sign -model model.bin -out bundle.rrp [-targets 0.95,0.9,0.85,0.77] [-telemetry :8080] [-otlp-endpoint localhost:4318]
//	rpnctl info     -bundle bundle.rrp
//	rpnctl eval     -task obstacle|sign -bundle bundle.rrp -level N [-telemetry :8080] [-otlp-endpoint localhost:4318]
//	rpnctl sensitivity -task obstacle|sign -model model.bin
//	rpnctl health   -addr localhost:8080 [-window 5m] [-lookback 2h] [-metric rpn_frame_latency_us]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/telemetry"
	"repro/internal/telemetry/otlp"
	"repro/internal/train"
)

// attachTelemetry wires a reversible model to observability backends:
// when addr is non-empty every level transition the command performs is
// observable on /healthz and /metrics, and when otlpEndpoint is non-empty
// the same registry is pushed to that OTLP/HTTP collector (with a final
// flush when the closer runs, so short commands still deliver). With both
// empty it is a no-op returning a no-op closer.
func attachTelemetry(rm *core.ReversibleModel, addr, otlpEndpoint string) (func(), error) {
	if addr == "" && otlpEndpoint == "" {
		return func() {}, nil
	}
	reg := telemetry.NewRegistry()
	hooks := telemetry.NewHooks(reg)
	sp := make([]float64, rm.NumLevels())
	for i, lvl := range rm.Levels() {
		sp[i] = lvl.Sparsity
	}
	hooks.SetLevels(sp)
	rm.SetObserver(hooks)
	var srv *telemetry.Server
	if addr != "" {
		var err error
		srv, err = telemetry.Serve(reg, addr)
		if err != nil {
			return nil, err
		}
		fmt.Printf("telemetry: http://%s/healthz and /metrics\n", srv.Addr())
	}
	var exp *otlp.Exporter
	if otlpEndpoint != "" {
		var err error
		exp, err = otlp.NewExporter(reg, otlpEndpoint, otlp.WithServiceName("rpnctl"))
		if err != nil {
			if srv != nil {
				_ = srv.Close()
			}
			return nil, err
		}
		fmt.Printf("otlp: exporting to %s\n", exp.URL())
	}
	return func() {
		rm.SetObserver(nil)
		if srv != nil {
			_ = srv.Close()
		}
		if exp != nil {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := exp.Shutdown(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "rpnctl: otlp shutdown:", err)
			}
		}
	}, nil
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "train":
		err = cmdTrain(os.Args[2:])
	case "bundle":
		err = cmdBundle(os.Args[2:])
	case "info":
		err = cmdInfo(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "sensitivity":
		err = cmdSensitivity(os.Args[2:])
	case "health":
		err = cmdHealth(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "rpnctl: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rpnctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: rpnctl <command> [flags]

commands:
  train        train a perception model and save its weights
  bundle       design a level library and save a deployment bundle
  info         print a bundle's level library
  eval         evaluate a bundle at a given level
  sensitivity  per-layer pruning sensitivity analysis
  health       query a telemetry server's /healthz and print per-instance health
               (-window/-lookback add the sar-style windowed series table)`)
}

// task bundles the per-task model builder, dataset, and evaluator.
type task struct {
	name  string
	build func(seed int64) *nn.Sequential
	data  func(seed int64) *dataset.Dataset
}

func taskByName(name string) (task, error) {
	switch name {
	case "obstacle":
		return task{
			name:  "obstacle",
			build: experiments.NewObstacleNet,
			data: func(seed int64) *dataset.Dataset {
				return dataset.Obstacles(dataset.ObstacleConfig{
					N: 3000, Size: 16,
					NoiseMin: 0.05, NoiseMax: 0.2,
					MinRadius: 1.5, MaxRadius: 4.5,
					ContrastMin: 0.7, ContrastMax: 1.0,
					Seed: seed,
				})
			},
		}, nil
	case "sign":
		return task{
			name:  "sign",
			build: experiments.NewSignNet,
			data: func(seed int64) *dataset.Dataset {
				return dataset.Signs(dataset.DefaultSignConfig(2400, seed))
			},
		}, nil
	default:
		return task{}, fmt.Errorf("unknown task %q (want obstacle or sign)", name)
	}
}

func (t task) split(seed int64) (trainSet, testSet *dataset.Dataset) {
	return t.data(seed+1).Split(0.8, seed+2)
}

func (t task) evaluator(testSet *dataset.Dataset) func(*nn.Sequential) float64 {
	return func(m *nn.Sequential) float64 {
		_, acc := train.Evaluate(m, testSet.X, testSet.Labels, 128)
		return acc
	}
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	taskName := fs.String("task", "obstacle", "perception task: obstacle or sign")
	out := fs.String("out", "model.bin", "output weights file")
	epochs := fs.Int("epochs", 10, "training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	fs.Parse(args)

	t, err := taskByName(*taskName)
	if err != nil {
		return err
	}
	tr, te := t.split(*seed)
	model := t.build(*seed + 3)
	fmt.Printf("training %s model (%d params) on %d samples…\n", t.name, model.ParamCount(), tr.Len())
	res := train.Fit(model, tr.X, tr.Labels, train.Config{
		Epochs:    *epochs,
		BatchSize: 32,
		Optimizer: train.NewAdam(0.003, 0),
		Seed:      *seed + 4,
		Log:       os.Stdout,
	})
	acc := t.evaluator(te)(model)
	fmt.Printf("final train acc %.4f, test acc %.4f\n", res.FinalAccuracy(), acc)

	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := model.SaveModel(f); err != nil {
		return err
	}
	fmt.Printf("model (architecture + weights) saved to %s\n", *out)
	return nil
}

func loadModel(path string) (*nn.Sequential, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return nn.LoadModel("model", f)
}

func cmdBundle(args []string) error {
	fs := flag.NewFlagSet("bundle", flag.ExitOnError)
	taskName := fs.String("task", "obstacle", "perception task: obstacle or sign")
	modelPath := fs.String("model", "model.bin", "trained weights file (from rpnctl train)")
	out := fs.String("out", "bundle.rrp", "output deployment bundle")
	targetsStr := fs.String("targets", "", "comma-separated accuracy targets (default: dense − {0.005,0.03,0.07,0.15})")
	seed := fs.Int64("seed", 1, "random seed (must match training)")
	telemetryAddr := fs.String("telemetry", "", "serve /healthz and /metrics on this address during calibration")
	otlpEndpoint := fs.String("otlp-endpoint", "", "export OTLP/HTTP metrics to this collector during calibration")
	fs.Parse(args)

	t, err := taskByName(*taskName)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	_, te := t.split(*seed)
	eval := t.evaluator(te)

	var targets []float64
	if *targetsStr == "" {
		dense := eval(model)
		for _, d := range experiments.DefaultAccuracyDrops {
			targets = append(targets, dense-d)
		}
	} else {
		for _, s := range strings.Split(*targetsStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("bad target %q: %w", s, err)
			}
			targets = append(targets, v)
		}
	}
	fmt.Printf("designing levels for accuracy targets %v…\n", targets)
	levels, err := core.DesignLevels(model, prune.MagnitudeGlobal{}, eval, targets)
	if err != nil {
		return err
	}
	fmt.Printf("designed sparsities: %v\n", levels)

	plans, err := (prune.MagnitudeGlobal{}).PlanNested(model, levels)
	if err != nil {
		return err
	}
	rm, err := core.Build(model, plans)
	if err != nil {
		return err
	}
	closeTelemetry, err := attachTelemetry(rm, *telemetryAddr, *otlpEndpoint)
	if err != nil {
		return err
	}
	defer closeTelemetry()
	if err := rm.Calibrate(eval); err != nil {
		return err
	}
	spec := platform.EmbeddedCPU()
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			return err
		}
		c := spec.Estimate(model)
		rm.SetCost(i, c.LatencyMS, c.EnergyMJ)
	}
	if err := rm.RestoreFull(); err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rm.SaveSelfContained(f); err != nil {
		return err
	}
	fmt.Printf("bundle saved to %s (store overhead %d bytes)\n", *out, rm.StoreBytes())
	printLevels(rm)
	return nil
}

func loadBundle(path string) (*nn.Sequential, *core.ReversibleModel, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	rm, err := core.LoadSelfContained("model", f)
	if err != nil {
		return nil, nil, err
	}
	return rm.Model(), rm, nil
}

func cmdInfo(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	bundlePath := fs.String("bundle", "bundle.rrp", "deployment bundle")
	fs.Parse(args)

	model, rm, err := loadBundle(*bundlePath)
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d params, %d-byte checkpoint\n", model.Name(), model.ParamCount(), model.WeightsSize())
	fmt.Printf("recovery store: %d bytes (%d displaced weights)\n", rm.StoreBytes(), rm.StoredWeights())
	printLevels(rm)
	return nil
}

func printLevels(rm *core.ReversibleModel) {
	tb := metrics.NewTable("level library", "level", "sparsity", "accuracy", "latency ms", "energy mJ")
	for _, l := range rm.Levels() {
		tb.AddRow(l.Name, metrics.Pct(l.Sparsity), metrics.F(l.Accuracy, 4),
			metrics.F(l.LatencyMS, 3), metrics.F(l.EnergyMJ, 4))
	}
	fmt.Print(tb.String())
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	taskName := fs.String("task", "obstacle", "perception task: obstacle or sign")
	bundlePath := fs.String("bundle", "bundle.rrp", "deployment bundle")
	level := fs.Int("level", 0, "level to evaluate")
	seed := fs.Int64("seed", 1, "random seed (must match training)")
	telemetryAddr := fs.String("telemetry", "", "serve /healthz and /metrics on this address during the evaluation")
	otlpEndpoint := fs.String("otlp-endpoint", "", "export OTLP/HTTP metrics to this collector during the evaluation")
	fs.Parse(args)

	t, err := taskByName(*taskName)
	if err != nil {
		return err
	}
	model, rm, err := loadBundle(*bundlePath)
	if err != nil {
		return err
	}
	closeTelemetry, err := attachTelemetry(rm, *telemetryAddr, *otlpEndpoint)
	if err != nil {
		return err
	}
	defer closeTelemetry()
	if err := rm.ApplyLevel(*level); err != nil {
		return err
	}
	_, te := t.split(*seed)
	acc := t.evaluator(te)(model)
	fmt.Printf("level L%d (sparsity %s): live test accuracy %.4f (calibrated %.4f)\n",
		*level, metrics.Pct(rm.Level(*level).Sparsity), acc, rm.Level(*level).Accuracy)
	return nil
}

// healthDoc is the subset of the telemetry server's /healthz document the
// CLI renders.
type healthDoc struct {
	Status        string                  `json:"status"`
	Level         int                     `json:"level"`
	Sparsity      float64                 `json:"sparsity"`
	Switches      int64                   `json:"switches"`
	Violations    int64                   `json:"violations"`
	Health        map[string]string       `json:"health"`
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Windows       map[string]windowSeries `json:"windows"`
}

// windowSeries mirrors the telemetry server's windowed-series JSON shape;
// rpnctl keeps its own copy so the CLI stays decoupled from the server
// package's Go types.
type windowSeries struct {
	Kind   string        `json:"kind"`
	Points []windowPoint `json:"points"`
}

type windowPoint struct {
	Window string  `json:"window"`
	Count  int64   `json:"count"`
	Sum    float64 `json:"sum"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Mean   float64 `json:"mean"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
	Rate   float64 `json:"rate"`
}

func cmdHealth(args []string) error {
	return cmdHealthTo(args, os.Stdout)
}

// fetchHealth GETs url with each attempt bounded by a context deadline,
// retrying exactly once after backoff when the transport fails. Health
// checks race server restarts by design — a single short retry separates
// "the server was mid-restart" from "the server is down" without hiding
// a real outage behind an open-ended retry loop.
func fetchHealth(url string, timeout, backoff time.Duration) (int, []byte, error) {
	get := func() (int, []byte, error) {
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return 0, nil, err
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return 0, nil, err
		}
		return resp.StatusCode, body, nil
	}
	status, body, err := get()
	if err == nil {
		return status, body, nil
	}
	time.Sleep(backoff)
	status, body, rerr := get()
	if rerr != nil {
		return 0, nil, fmt.Errorf("%v (retry after %s: %w)", err, backoff, rerr)
	}
	return status, body, nil
}

// cmdHealthTo queries a telemetry server's /healthz endpoint and prints
// the deployment summary plus the per-instance watchdog states. It
// returns an error when any instance is quarantined (the server signals
// that with HTTP 503), so scripts can gate on the exit code.
func cmdHealthTo(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("health", flag.ExitOnError)
	addr := fs.String("addr", "localhost:8080", "telemetry server address (host:port, or a full URL)")
	timeout := fs.Duration("timeout", 5*time.Second, "per-attempt request deadline")
	backoff := fs.Duration("retry-backoff", 500*time.Millisecond, "wait before the single retry after a failed attempt")
	window := fs.Duration("window", 0, "sar-style windowed query: bucket width (e.g. 5m); 0 = no windowed series")
	lookback := fs.Duration("lookback", 0, "windowed query history horizon (e.g. 2h); implies -window's default bucket")
	metric := fs.String("metric", "", "restrict the windowed query to one metric family (e.g. rpn_frame_latency_us)")
	fs.Parse(args)

	url := *addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if !strings.HasSuffix(url, "/healthz") {
		url = strings.TrimSuffix(url, "/") + "/healthz"
	}
	if *window > 0 || *lookback > 0 {
		q := neturl.Values{}
		if *window > 0 {
			q.Set("window", window.String())
		}
		if *lookback > 0 {
			q.Set("lookback", lookback.String())
		}
		if *metric != "" {
			q.Set("metric", *metric)
		}
		url += "?" + q.Encode()
	}
	status, body, err := fetchHealth(url, *timeout, *backoff)
	if err != nil {
		return fmt.Errorf("health: %s: %w", url, err)
	}
	if status != http.StatusOK && status != http.StatusServiceUnavailable {
		return fmt.Errorf("health: %s returned %d", url, status)
	}
	var doc healthDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		return fmt.Errorf("health: decoding %s: %w", url, err)
	}

	fmt.Fprintf(out, "status: %s (uptime %.1fs)\n", doc.Status, doc.UptimeSeconds)
	dep := metrics.NewTable("deployment", "metric", "value")
	dep.AddRow("level", fmt.Sprintf("L%d", doc.Level))
	dep.AddRow("sparsity", metrics.Pct(doc.Sparsity))
	dep.AddRow("level switches", fmt.Sprintf("%d", doc.Switches))
	dep.AddRow("contract violations", fmt.Sprintf("%d", doc.Violations))
	fmt.Fprint(out, dep.String())

	if len(doc.Health) == 0 {
		fmt.Fprintln(out, "no health monitor attached (no rpn_health_state gauges)")
	} else {
		names := make([]string, 0, len(doc.Health))
		for name := range doc.Health {
			names = append(names, name)
		}
		sort.Strings(names)
		tb := metrics.NewTable("instance health", "instance", "state")
		for _, name := range names {
			label := name
			if label == "" {
				label = "(solo)"
			}
			tb.AddRow(label, doc.Health[name])
		}
		fmt.Fprint(out, tb.String())
	}
	if *window > 0 || *lookback > 0 {
		writeWindowTable(out, doc.Windows)
	}
	if status == http.StatusServiceUnavailable {
		return fmt.Errorf("health: %s: an instance is quarantined", doc.Status)
	}
	return nil
}

// writeWindowTable renders the windowed series a sar-style /healthz query
// returned: one row per (series, window) in deterministic order.
func writeWindowTable(out io.Writer, windows map[string]windowSeries) {
	if len(windows) == 0 {
		fmt.Fprintln(out, "no windowed series (registry has no flushed windows in the lookback)")
		return
	}
	names := make([]string, 0, len(windows))
	for name := range windows {
		names = append(names, name)
	}
	sort.Strings(names)
	tb := metrics.NewTable("windowed series", "series", "window (UTC)", "count", "mean", "min", "p50", "p90", "p99", "max", "rate/s")
	for _, name := range names {
		ws := windows[name]
		for _, p := range ws.Points {
			if ws.Kind == "counter" {
				tb.AddRow(name, p.Window, fmt.Sprintf("%d", p.Count),
					metrics.F(p.Mean, 2), "", "", "", "", "", metrics.F(p.Rate, 2))
				continue
			}
			tb.AddRow(name, p.Window, fmt.Sprintf("%d", p.Count),
				metrics.F(p.Mean, 1), metrics.F(p.Min, 1), metrics.F(p.P50, 1),
				metrics.F(p.P90, 1), metrics.F(p.P99, 1), metrics.F(p.Max, 1), "")
		}
	}
	fmt.Fprint(out, tb.String())
}

func cmdSensitivity(args []string) error {
	fs := flag.NewFlagSet("sensitivity", flag.ExitOnError)
	taskName := fs.String("task", "obstacle", "perception task: obstacle or sign")
	modelPath := fs.String("model", "model.bin", "trained weights file")
	seed := fs.Int64("seed", 1, "random seed (must match training)")
	fs.Parse(args)

	t, err := taskByName(*taskName)
	if err != nil {
		return err
	}
	model, err := loadModel(*modelPath)
	if err != nil {
		return err
	}
	_, te := t.split(*seed)
	eval := t.evaluator(te)
	results, err := prune.Sensitivity(model, []float64{0.3, 0.6, 0.9}, func() float64 { return eval(model) })
	if err != nil {
		return err
	}
	tb := metrics.NewTable("per-layer pruning sensitivity (most sensitive first)",
		"parameter", "acc @30%", "acc @60%", "acc @90%", "drop")
	for _, r := range results {
		tb.AddRow(r.Param,
			metrics.F(r.Accuracy[0], 4), metrics.F(r.Accuracy[1], 4), metrics.F(r.Accuracy[2], 4),
			metrics.F(r.Drop(), 4))
	}
	fmt.Print(tb.String())
	return nil
}
