package main

import (
	"path/filepath"
	"testing"
)

// TestCLIEndToEnd exercises the full operator workflow: train → bundle →
// info → eval → sensitivity, through the real command entry points and
// real files.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	bundlePath := filepath.Join(dir, "bundle.rrp")

	if err := cmdTrain([]string{"-task", "obstacle", "-out", modelPath, "-epochs", "4", "-seed", "1"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", modelPath, "-out", bundlePath, "-seed", "1"}); err != nil {
		t.Fatalf("bundle: %v", err)
	}
	if err := cmdInfo([]string{"-bundle", bundlePath}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdEval([]string{"-task", "obstacle", "-bundle", bundlePath, "-level", "1", "-seed", "1"}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdSensitivity([]string{"-task", "obstacle", "-model", modelPath, "-seed", "1"}); err != nil {
		t.Fatalf("sensitivity: %v", err)
	}
}

func TestCLIExplicitTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	bundlePath := filepath.Join(dir, "bundle.rrp")
	if err := cmdTrain([]string{"-task", "obstacle", "-out", modelPath, "-epochs", "3", "-seed", "2"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", modelPath, "-out", bundlePath,
		"-seed", "2", "-targets", "0.9,0.8,0.7"}); err != nil {
		t.Fatalf("bundle with targets: %v", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdTrain([]string{"-task", "bogus"}); err == nil {
		t.Error("bogus task accepted")
	}
	if err := cmdInfo([]string{"-bundle", "/nonexistent/bundle.rrp"}); err == nil {
		t.Error("missing bundle accepted")
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", "/nonexistent/model.bin"}); err == nil {
		t.Error("missing model accepted")
	}
}
