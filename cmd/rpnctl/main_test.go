package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestCLIEndToEnd exercises the full operator workflow: train → bundle →
// info → eval → sensitivity, through the real command entry points and
// real files.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	bundlePath := filepath.Join(dir, "bundle.rrp")

	if err := cmdTrain([]string{"-task", "obstacle", "-out", modelPath, "-epochs", "4", "-seed", "1"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", modelPath, "-out", bundlePath, "-seed", "1"}); err != nil {
		t.Fatalf("bundle: %v", err)
	}
	if err := cmdInfo([]string{"-bundle", bundlePath}); err != nil {
		t.Fatalf("info: %v", err)
	}
	if err := cmdEval([]string{"-task", "obstacle", "-bundle", bundlePath, "-level", "1", "-seed", "1"}); err != nil {
		t.Fatalf("eval: %v", err)
	}
	if err := cmdSensitivity([]string{"-task", "obstacle", "-model", modelPath, "-seed", "1"}); err != nil {
		t.Fatalf("sensitivity: %v", err)
	}
}

func TestCLIExplicitTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	modelPath := filepath.Join(dir, "model.bin")
	bundlePath := filepath.Join(dir, "bundle.rrp")
	if err := cmdTrain([]string{"-task", "obstacle", "-out", modelPath, "-epochs", "3", "-seed", "2"}); err != nil {
		t.Fatalf("train: %v", err)
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", modelPath, "-out", bundlePath,
		"-seed", "2", "-targets", "0.9,0.8,0.7"}); err != nil {
		t.Fatalf("bundle with targets: %v", err)
	}
}

// TestCLIHealth drives rpnctl health against a live telemetry server:
// per-instance watchdog states render as a table, and a quarantined
// instance turns the exit into an error (mirroring the server's 503).
func TestCLIHealth(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	car0 := telemetry.NewHooks(reg, telemetry.Label{Key: telemetry.LabelModel, Value: "car0"})
	car0.ObserveHealthState(telemetry.HealthHealthy, telemetry.HealthHealthy)
	car1 := telemetry.NewHooks(reg, telemetry.Label{Key: telemetry.LabelModel, Value: "car1"})
	car1.ObserveHealthState(telemetry.HealthHealthy, telemetry.HealthDegraded)

	var out strings.Builder
	if err := cmdHealthTo([]string{"-addr", srv.Addr()}, &out); err != nil {
		t.Fatalf("health: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"status: ok", "instance health", "car0", "car1", "healthy", "degraded"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}

	// Quarantine an instance: the server flips to 503 and the CLI's exit
	// becomes an error while still printing the table.
	car1.ObserveHealthState(telemetry.HealthDegraded, telemetry.HealthQuarantined)
	out.Reset()
	err = cmdHealthTo([]string{"-addr", srv.Addr()}, &out)
	if err == nil {
		t.Fatalf("health should fail when an instance is quarantined\noutput:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "quarantined") {
		t.Errorf("error %q does not mention quarantine", err)
	}
	if !strings.Contains(out.String(), "quarantined") {
		t.Errorf("table missing quarantined state:\n%s", out.String())
	}
}

// TestCLIHealthWindowed drives rpnctl health -window/-lookback against a
// live server whose registry holds flushed time windows: the CLI must
// render the windowed series table with per-window aggregates, and a
// metric filter must narrow it.
func TestCLIHealthWindowed(t *testing.T) {
	reg := telemetry.NewRegistry(telemetry.WithWindowWidth(time.Second))
	srv, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	series := telemetry.Series(telemetry.MetricFrameLatency,
		telemetry.Label{Key: telemetry.LabelModel, Value: "car0"})
	reg.Observe(series, 1500)
	reg.Observe(series, 2500)
	reg.Inc(telemetry.MetricGovernorTicks)
	reg.Flush()

	var out strings.Builder
	if err := cmdHealthTo([]string{"-addr", srv.Addr(), "-window", "5m", "-lookback", "2h"}, &out); err != nil {
		t.Fatalf("health -window: %v\noutput:\n%s", err, out.String())
	}
	got := out.String()
	for _, want := range []string{"windowed series", telemetry.MetricFrameLatency, "car0", telemetry.MetricGovernorTicks} {
		if !strings.Contains(got, want) {
			t.Errorf("windowed output missing %q:\n%s", want, got)
		}
	}

	// -metric narrows the table to one family.
	out.Reset()
	if err := cmdHealthTo([]string{"-addr", srv.Addr(), "-window", "5m", "-lookback", "2h",
		"-metric", telemetry.MetricFrameLatency}, &out); err != nil {
		t.Fatalf("health -metric: %v", err)
	}
	got = out.String()
	if !strings.Contains(got, telemetry.MetricFrameLatency) {
		t.Errorf("filtered output missing the requested family:\n%s", got)
	}
	if strings.Contains(got, telemetry.MetricGovernorTicks) {
		t.Errorf("-metric filter leaked other families:\n%s", got)
	}

	// A lookback with no flushed windows in range renders the empty notice.
	out.Reset()
	if err := cmdHealthTo([]string{"-addr", srv.Addr(), "-window", "1s", "-lookback", "1ms",
		"-metric", "rpn_nope"}, &out); err != nil {
		t.Fatalf("health empty window: %v", err)
	}
	if !strings.Contains(out.String(), "no windowed series") {
		t.Errorf("missing empty-window notice:\n%s", out.String())
	}
}

// TestCLIHealthNoMonitor checks the no-gauges rendering path.
func TestCLIHealthNoMonitor(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var out strings.Builder
	if err := cmdHealthTo([]string{"-addr", srv.Addr()}, &out); err != nil {
		t.Fatalf("health: %v", err)
	}
	if !strings.Contains(out.String(), "no health monitor attached") {
		t.Errorf("missing no-monitor notice:\n%s", out.String())
	}
}

// TestCLIHealthRetry pins the health command's transient-failure
// behavior: the first attempt hits a dead socket, the server comes up
// during the backoff, and the single retry succeeds — one retry, not an
// open-ended loop, so a genuinely down server still errors promptly.
func TestCLIHealthRetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	// Reserve an address, then close the listener so the first attempt
	// gets connection-refused.
	probe, err := telemetry.Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr()
	if err := probe.Close(); err != nil {
		t.Fatal(err)
	}

	// Bring the real server up mid-backoff.
	type startResult struct {
		srv *telemetry.Server
		err error
	}
	started := make(chan startResult, 1)
	go func() {
		time.Sleep(150 * time.Millisecond)
		srv, err := telemetry.Serve(reg, addr)
		started <- startResult{srv, err}
	}()

	var out strings.Builder
	err = cmdHealthTo([]string{"-addr", addr, "-timeout", "2s", "-retry-backoff", "400ms"}, &out)
	res := <-started
	if res.err != nil {
		t.Fatalf("restarting server: %v", res.err)
	}
	defer func() {
		if err := res.srv.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err != nil {
		t.Fatalf("health should have succeeded on the retry: %v", err)
	}
	if !strings.Contains(out.String(), "status: ok") {
		t.Errorf("retry output missing status line:\n%s", out.String())
	}

	// Both attempts failing surfaces both errors.
	_, _, err = fetchHealth("http://127.0.0.1:1/healthz", 200*time.Millisecond, 10*time.Millisecond)
	if err == nil {
		t.Fatal("fetchHealth against a dead address should fail after its retry")
	}
	if !strings.Contains(err.Error(), "retry after") {
		t.Errorf("error %q does not show the retry attempt", err)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdTrain([]string{"-task", "bogus"}); err == nil {
		t.Error("bogus task accepted")
	}
	if err := cmdInfo([]string{"-bundle", "/nonexistent/bundle.rrp"}); err == nil {
		t.Error("missing bundle accepted")
	}
	if err := cmdBundle([]string{"-task", "obstacle", "-model", "/nonexistent/model.bin"}); err == nil {
		t.Error("missing model accepted")
	}
	var out strings.Builder
	if err := cmdHealthTo([]string{"-addr", "127.0.0.1:1", "-timeout", "500ms"}, &out); err == nil {
		t.Error("unreachable telemetry server accepted")
	}
}
