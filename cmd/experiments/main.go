// Command experiments regenerates the reconstructed evaluation: every
// figure (F1–F5) and table (T1–T5) of DESIGN.md, from freshly trained
// models. Use -run to regenerate a single experiment and -markdown to emit
// the EXPERIMENTS.md body.
//
//	experiments                 # run everything, text tables to stdout
//	experiments -run F3         # just the recovery-latency figure
//	experiments -markdown > out # markdown for EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: it parses args, dispatches to the
// experiments package, and returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	runID := fs.String("run", "", "experiment id to run (F1..F5, T1..T5, A1..A9); empty runs all")
	markdown := fs.Bool("markdown", false, "emit markdown instead of text tables")
	csvDir := fs.String("csvdir", "", "when set, additionally write every table as CSV into this directory")
	seed := fs.Int64("seed", 1, "zoo base seed (controls training and scenarios)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	z := experiments.NewZoo(*seed)
	if *csvDir != "" {
		if err := experiments.WriteCSVs(z, *runID, *csvDir); err != nil {
			fmt.Fprintln(stderr, "experiments:", err)
			return 1
		}
		fmt.Fprintf(stdout, "CSV tables written to %s\n", *csvDir)
		return 0
	}
	var err error
	switch {
	case *runID == "" && !*markdown:
		err = experiments.RunAllAndPrint(z, stdout)
	case *runID == "" && *markdown:
		for _, e := range experiments.All() {
			var md string
			md, err = experiments.Markdown(e, z)
			if err != nil {
				break
			}
			fmt.Fprintln(stdout, md)
		}
	default:
		var e experiments.Experiment
		e, err = experiments.ByID(*runID)
		if err == nil {
			if *markdown {
				var md string
				md, err = experiments.Markdown(e, z)
				if err == nil {
					fmt.Fprintln(stdout, md)
				}
			} else {
				err = experiments.RunAndPrint(e, z, stdout)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "experiments:", err)
		return 1
	}
	return 0
}
