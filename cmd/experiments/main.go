// Command experiments regenerates the reconstructed evaluation: every
// figure (F1–F5) and table (T1–T5) of DESIGN.md, from freshly trained
// models. Use -run to regenerate a single experiment and -markdown to emit
// the EXPERIMENTS.md body.
//
//	experiments                 # run everything, text tables to stdout
//	experiments -run F3         # just the recovery-latency figure
//	experiments -markdown > out # markdown for EXPERIMENTS.md
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	runID := flag.String("run", "", "experiment id to run (F1..F5, T1..T5, A1..A9); empty runs all")
	markdown := flag.Bool("markdown", false, "emit markdown instead of text tables")
	csvDir := flag.String("csvdir", "", "when set, additionally write every table as CSV into this directory")
	seed := flag.Int64("seed", 1, "zoo base seed (controls training and scenarios)")
	flag.Parse()

	z := experiments.NewZoo(*seed)
	if *csvDir != "" {
		if err := experiments.WriteCSVs(z, *runID, *csvDir); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("CSV tables written to %s\n", *csvDir)
		return
	}
	var err error
	switch {
	case *runID == "" && !*markdown:
		err = experiments.RunAllAndPrint(z, os.Stdout)
	case *runID == "" && *markdown:
		for _, e := range experiments.All() {
			var md string
			md, err = experiments.Markdown(e, z)
			if err != nil {
				break
			}
			fmt.Println(md)
		}
	default:
		var e experiments.Experiment
		e, err = experiments.ByID(*runID)
		if err == nil {
			if *markdown {
				var md string
				md, err = experiments.Markdown(e, z)
				if err == nil {
					fmt.Println(md)
				}
			} else {
				err = experiments.RunAndPrint(e, z, os.Stdout)
			}
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
