package main

import (
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestRunRejectsUnknownExperiment covers the error path without training
// any models: an unknown -run id must produce a nonzero exit code and a
// diagnostic on stderr.
func TestRunRejectsUnknownExperiment(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-run", "Z9"}, &out, &errBuf); code == 0 {
		t.Fatalf("run(-run Z9) exit code = 0, want nonzero")
	}
	if !strings.Contains(errBuf.String(), "Z9") {
		t.Fatalf("stderr %q does not mention the unknown id", errBuf.String())
	}
}

// TestRunRejectsBadFlags covers flag-parse failures.
func TestRunRejectsBadFlags(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("run(-no-such-flag) exit code = %d, want 2", code)
	}
}

// TestRunIDsResolve checks that every id printed in the -run usage string
// actually resolves, so the CLI surface and the experiment registry cannot
// drift apart.
func TestRunIDsResolve(t *testing.T) {
	for _, e := range experiments.All() {
		if _, err := experiments.ByID(e.ID); err != nil {
			t.Errorf("ByID(%q): %v", e.ID, err)
		}
	}
}
