package main

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestMarkdownT1IsDeterministic runs `experiments -run T1 -markdown` twice
// with the same zoo seed and requires byte-identical output. T1 (recovery
// store memory overhead) is fully derived from trained weights and plan
// geometry — no wall-clock measurements — so any divergence means hidden
// nondeterminism (map iteration, unseeded randomness) crept into the
// training or reporting path.
func TestMarkdownT1IsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the model zoo; skipped in -short mode")
	}
	render := func() string {
		var out, errBuf strings.Builder
		if code := run([]string{"-run", "T1", "-markdown", "-seed", "1"}, &out, &errBuf); code != 0 {
			t.Fatalf("exit code %d, stderr: %s", code, errBuf.String())
		}
		return out.String()
	}
	first := render()
	second := render()
	if first != second {
		t.Errorf("two -run T1 -markdown renders differ:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.HasPrefix(first, "### T1 — ") {
		t.Errorf("markdown does not open with the T1 header: %q", first[:min(len(first), 40)])
	}
}

// TestExperimentIDsMatchDocs cross-checks the experiment registry against
// the committed EXPERIMENTS.md: every registered experiment must have a
// `### <ID> — <Title>` section, and every such section must correspond to
// a registered experiment — the document and the code cannot drift apart.
func TestExperimentIDsMatchDocs(t *testing.T) {
	data, err := os.ReadFile("../../EXPERIMENTS.md")
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^### ([FTA]\d+) — `)
	documented := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	registered := map[string]bool{}
	for _, e := range experiments.All() {
		registered[e.ID] = true
		if !documented[e.ID] {
			t.Errorf("experiment %s (%s) has no section in EXPERIMENTS.md", e.ID, e.Title)
		}
	}
	for id := range documented {
		if !registered[id] {
			t.Errorf("EXPERIMENTS.md documents %s but the registry does not define it", id)
		}
	}
	if len(documented) == 0 {
		t.Fatal("no experiment sections found in EXPERIMENTS.md")
	}
}
