package revprune

// Fleet memory-footprint harness: the copy-on-write checkpoint store's
// headline number. A fleet of N independent stacks keeps N copies of the
// dense weights, recovery deltas, and mask bitsets resident; a fleet of N
// views over one shared store keeps them resident once plus O(private
// deltas) per view. TestFleetMemoryFootprint measures both arms —
// analytically from the store's own byte accounting and empirically from
// runtime.ReadMemStats — asserts the shared arm wins by at least 4× per
// instance at fleet 64, and (when RPN_MEM_BENCH_OUT is set) writes the
// numbers as JSON for scripts/bench_mem.sh → BENCH_mem.json, which
// scripts/verify.sh gates against regression.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/prune"
)

// memFleetSize is the fleet width the paper-scale claim is made at.
const memFleetSize = 64

// memReport is the BENCH_mem.json schema.
type memReport struct {
	Fleet int `json:"fleet"`

	// Analytic accounting from the store's own byte counters.
	DenseBytes             int64   `json:"dense_bytes"`
	StoreBytes             int64   `json:"store_bytes"`
	SharedBytes            int64   `json:"shared_bytes"`
	PrivateBytesTotal      int64   `json:"private_bytes_total"`
	PerCloneBytes          int64   `json:"per_clone_bytes"`
	SharedPerInstanceBytes int64   `json:"shared_per_instance_bytes"`
	AnalyticReduction      float64 `json:"analytic_reduction"`

	// Empirical heap deltas (runtime.ReadMemStats), per instance.
	MeasuredPerCloneBytes int64   `json:"measured_per_clone_bytes"`
	MeasuredPerViewBytes  int64   `json:"measured_per_view_bytes"`
	MeasuredReduction     float64 `json:"measured_reduction"`
}

// heapAlloc forces a full collection and returns live heap bytes.
func heapAlloc() int64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}

// TestFleetMemoryFootprint builds the same 64-wide fleet twice — once as
// independent stacks, once as copy-on-write views over one shared
// checkpoint store — and proves the per-instance resident footprint drops
// by ≥ 4×. The test is also the measurement harness behind
// scripts/bench_mem.sh: with RPN_MEM_BENCH_OUT set it writes a memReport.
func TestFleetMemoryFootprint(t *testing.T) {
	z := experiments.NewZoo(1)
	levels, err := z.DesignedLevels()
	if err != nil {
		t.Fatal(err)
	}

	// --- Baseline arm: N independent builds, each its own store. ---
	// Measured first so the shared arm's base stack cannot sit in the
	// baseline's heap window.
	before := heapAlloc()
	clones := make([]*core.ReversibleModel, memFleetSize)
	for i := range clones {
		m := z.CloneObstacle()
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
		if err != nil {
			t.Fatal(err)
		}
		clones[i], err = core.Build(m, plans)
		if err != nil {
			t.Fatal(err)
		}
	}
	measuredPerClone := (heapAlloc() - before) / memFleetSize

	// Analytic baseline from one representative: everything an independent
	// stack keeps resident (dense snapshot + recovery deltas + masks +
	// the base view's private buffers).
	perClone := clones[0].Store().SharedBytes() + clones[0].PrivateBytes()
	denseBytes := int64(0)
	for _, p := range clones[0].Model().Params() {
		denseBytes += int64(len(p.Value.Data())) * 4
	}
	storeBytes := clones[0].StoreBytes()
	clones = nil

	// --- Shared arm: one base stack, N-1 additional views. ---
	before = heapAlloc()
	baseArch := z.CloneObstacle()
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(baseArch, levels)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.Build(baseArch, plans)
	if err != nil {
		t.Fatal(err)
	}
	store := base.Store()
	views := make([]*core.ReversibleModel, 0, memFleetSize-1)
	for i := 1; i < memFleetSize; i++ {
		arch := experiments.NewObstacleNet(int64(i))
		view, err := store.NewView(arch)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, view)
	}
	measuredPerView := (heapAlloc() - before) / memFleetSize
	// A view's true cost (~KBs) sits below GC heap-measurement noise, so
	// the empirical delta can come out negative; clamp it. The regression
	// gate reads the deterministic analytic numbers, not these.
	if measuredPerView < 0 {
		measuredPerView = 0
	}

	if got := store.Refs(); got != memFleetSize {
		t.Fatalf("Refs = %d, want %d", got, memFleetSize)
	}
	privateTotal := base.PrivateBytes()
	for _, v := range views {
		privateTotal += v.PrivateBytes()
	}
	sharedPerInstance := (store.SharedBytes() + privateTotal) / memFleetSize
	for _, v := range views {
		if err := v.Release(); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Refs(); got != 1 {
		t.Fatalf("Refs = %d after releasing views, want 1", got)
	}

	rep := memReport{
		Fleet:                  memFleetSize,
		DenseBytes:             denseBytes,
		StoreBytes:             storeBytes,
		SharedBytes:            store.SharedBytes(),
		PrivateBytesTotal:      privateTotal,
		PerCloneBytes:          perClone,
		SharedPerInstanceBytes: sharedPerInstance,
		AnalyticReduction:      float64(perClone) / float64(sharedPerInstance),
		MeasuredPerCloneBytes:  measuredPerClone,
		MeasuredPerViewBytes:   measuredPerView,
	}
	if measuredPerView > 0 {
		rep.MeasuredReduction = float64(measuredPerClone) / float64(measuredPerView)
	}
	t.Logf("fleet %d: per-clone %d B, shared per-instance %d B (%.1f× analytic); measured %d B vs %d B (%.1f×)",
		rep.Fleet, rep.PerCloneBytes, rep.SharedPerInstanceBytes, rep.AnalyticReduction,
		rep.MeasuredPerCloneBytes, rep.MeasuredPerViewBytes, rep.MeasuredReduction)

	// The paper-scale claim, asserted on the deterministic analytic
	// numbers: sharing the store must cut the per-instance footprint by at
	// least 4× at fleet 64.
	if rep.AnalyticReduction < 4 {
		t.Errorf("analytic per-instance reduction %.2f× < 4× (per-clone %d B, shared %d B)",
			rep.AnalyticReduction, rep.PerCloneBytes, rep.SharedPerInstanceBytes)
	}

	if out := os.Getenv("RPN_MEM_BENCH_OUT"); out != "" {
		blob, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("memory report written to %s", out)
	}
}

// TestViewTransitionIndependence pins the copy-on-write semantics the
// memory numbers rely on: a view that transitions materializes private
// buffers (PrivateBytes grows, SharedRatio decays) without disturbing a
// sibling view still reading the sealed snapshot.
func TestViewTransitionIndependence(t *testing.T) {
	z := experiments.NewZoo(1)
	_, rm, err := z.ObstacleStackView(platform.EmbeddedCPU())
	if err != nil {
		t.Fatal(err)
	}
	archB, sib, err := z.ObstacleStackView(platform.EmbeddedCPU())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, v := range []*core.ReversibleModel{rm, sib} {
			if err := v.Release(); err != nil {
				t.Error(err)
			}
		}
	}()
	if rm.Store() != sib.Store() {
		t.Fatal("zoo views do not share one store")
	}
	snapshot := encodeWeights(t, archB)
	priv0, ratio0 := rm.PrivateBytes(), rm.SharedRatio()
	if err := rm.ApplyLevel(rm.NumLevels() - 1); err != nil {
		t.Fatal(err)
	}
	if rm.PrivateBytes() <= priv0 {
		t.Fatalf("PrivateBytes %d did not grow from %d on first transition", rm.PrivateBytes(), priv0)
	}
	if rm.SharedRatio() >= ratio0 {
		t.Fatalf("SharedRatio %.3f did not decay from %.3f", rm.SharedRatio(), ratio0)
	}
	if got := encodeWeights(t, archB); string(got) != string(snapshot) {
		t.Fatal("sibling view's weights changed when another view transitioned")
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
}

func encodeWeights(t *testing.T, m *nn.Sequential) []byte {
	t.Helper()
	blob, err := m.EncodeWeights()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}
