package perception

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Concurrent couples a detection pipeline with its reversible model behind
// one mutex, so a perception thread and a governor thread can share them
// safely in a real deployment. Neither nn.Sequential nor ReversibleModel
// is internally synchronized (layer forward passes cache scratch state, and
// level transitions write weights); Concurrent serializes the two access
// paths — a detection never observes a half-applied level.
//
// The evaluation harness runs single-threaded (measurements must be
// deterministic); Concurrent exists for applications embedding the library
// in a multi-goroutine control stack.
type Concurrent struct {
	mu   sync.Mutex
	pipe *Pipeline
	rm   *core.ReversibleModel
	// obs holds the installed FrameObserver behind an atomic pointer so
	// SetObserver is safe mid-flight (nil load: observation disabled, no
	// clock reads). fleet.Instance uses the same pattern.
	obs atomic.Pointer[FrameObserver]
}

// FrameObserver receives the end-to-end latency of every Detect call,
// including time spent waiting for the model lock (a level transition in
// flight delays frames — that stall is exactly what an operator wants to
// see). internal/telemetry.Hooks satisfies this interface.
type FrameObserver interface {
	ObserveFrame(elapsed time.Duration)
}

// NewConcurrent wraps a pipeline and its reversible model. The pipeline
// must have been built over rm.Model().
func NewConcurrent(pipe *Pipeline, rm *core.ReversibleModel) *Concurrent {
	return &Concurrent{pipe: pipe, rm: rm}
}

// SetObserver installs (or, with nil, removes) a frame observer. The
// observer is stored behind an atomic pointer, so installing it while
// other goroutines are mid-Detect is safe: in-flight frames finish against
// whichever observer they loaded at entry.
func (c *Concurrent) SetObserver(o FrameObserver) {
	if o == nil {
		c.obs.Store(nil)
		return
	}
	c.obs.Store(&o)
}

// Detect classifies one frame under the lock.
func (c *Concurrent) Detect(frame *tensor.Tensor) (Detection, error) {
	var obs FrameObserver
	if p := c.obs.Load(); p != nil {
		obs = *p
	}
	var t0 time.Time
	if obs != nil {
		t0 = now()
	}
	c.mu.Lock()
	d, err := c.pipe.Detect(frame)
	c.mu.Unlock()
	if obs != nil {
		obs.ObserveFrame(now().Sub(t0))
	}
	return d, err
}

// ApplyLevel transitions the model under the lock.
func (c *Concurrent) ApplyLevel(target int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.ApplyLevel(target)
}

// RestoreFull reverts to dense under the lock.
func (c *Concurrent) RestoreFull() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.RestoreFull()
}

// Current returns the active level under the lock.
func (c *Concurrent) Current() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.Current()
}

// Scrub repairs pruned-position corruption under the lock.
func (c *Concurrent) Scrub() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.Scrub()
}
