package perception

import (
	"sync"

	"repro/internal/core"
	"repro/internal/tensor"
)

// Concurrent couples a detection pipeline with its reversible model behind
// one mutex, so a perception thread and a governor thread can share them
// safely in a real deployment. Neither nn.Sequential nor ReversibleModel
// is internally synchronized (layer forward passes cache scratch state, and
// level transitions write weights); Concurrent serializes the two access
// paths — a detection never observes a half-applied level.
//
// The evaluation harness runs single-threaded (measurements must be
// deterministic); Concurrent exists for applications embedding the library
// in a multi-goroutine control stack.
type Concurrent struct {
	mu   sync.Mutex
	pipe *Pipeline
	rm   *core.ReversibleModel
}

// NewConcurrent wraps a pipeline and its reversible model. The pipeline
// must have been built over rm.Model().
func NewConcurrent(pipe *Pipeline, rm *core.ReversibleModel) *Concurrent {
	return &Concurrent{pipe: pipe, rm: rm}
}

// Detect classifies one frame under the lock.
func (c *Concurrent) Detect(frame *tensor.Tensor) Detection {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pipe.Detect(frame)
}

// ApplyLevel transitions the model under the lock.
func (c *Concurrent) ApplyLevel(target int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.ApplyLevel(target)
}

// RestoreFull reverts to dense under the lock.
func (c *Concurrent) RestoreFull() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.RestoreFull()
}

// Current returns the active level under the lock.
func (c *Concurrent) Current() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.Current()
}

// Scrub repairs pruned-position corruption under the lock.
func (c *Concurrent) Scrub() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rm.Scrub()
}
