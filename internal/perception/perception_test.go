package perception

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/governor"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

var (
	setupOnce sync.Once
	obsModel  *nn.Sequential // trained dense obstacle classifier
	obsEval   func(*nn.Sequential) float64
)

func buildObstacleNet(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("obsnet",
		nn.NewConv2D("conv1", g, 8, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 8*8*8, 24, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc2", 24, 2, rng),
	)
}

// setup trains the shared obstacle model once per test binary.
func setup(t *testing.T) {
	t.Helper()
	setupOnce.Do(func() {
		// Harder-than-default patches (smaller blobs, more noise) give the
		// graded accuracy-vs-sparsity curve the level library needs.
		ds := dataset.Obstacles(dataset.ObstacleConfig{
			N: 2400, Size: 16,
			NoiseMin: 0.05, NoiseMax: 0.2,
			MinRadius: 1.5, MaxRadius: 4.5,
			Seed: 1,
		})
		tr, te := ds.Split(0.8, 2)
		obsModel = buildObstacleNet(3)
		train.Fit(obsModel, tr.X, tr.Labels, train.Config{
			Epochs:    10,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.003, 0),
			Seed:      4,
		})
		obsEval = func(m *nn.Sequential) float64 {
			_, acc := train.Evaluate(m, te.X, te.Labels, 64)
			return acc
		}
	})
	if obsEval(obsModel) < 0.9 {
		t.Fatalf("obstacle model undertrained: acc %v", obsEval(obsModel))
	}
}

// freshStack clones the trained model into a calibrated reversible wrapper.
func freshStack(t *testing.T) (*nn.Sequential, *core.ReversibleModel) {
	t.Helper()
	m := buildObstacleNet(99)
	data, err := obsModel.EncodeWeights()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.DecodeWeights(data); err != nil {
		t.Fatal(err)
	}
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5, 0.6, 0.65, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.Calibrate(obsEval); err != nil {
		t.Fatal(err)
	}
	spec := platform.EmbeddedCPU()
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			t.Fatal(err)
		}
		c := spec.Estimate(m)
		rm.SetCost(i, c.LatencyMS, c.EnergyMJ)
	}
	if err := rm.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	return m, rm
}

func TestPipelineValidation(t *testing.T) {
	setup(t)
	if _, err := NewPipeline(nil, 16, 0); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewPipeline(obsModel, 0, 0); err == nil {
		t.Error("zero frame size accepted")
	}
	if _, err := NewPipeline(obsModel, 16, 1.5); err == nil {
		t.Error("threshold >1 accepted")
	}
}

func TestPipelineDetectsObstacles(t *testing.T) {
	setup(t)
	pipe, err := NewPipeline(obsModel, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(5)
	hits, total := 0, 0
	for i := 0; i < 40; i++ {
		truth := i%2 == 0
		pix := dataset.RenderObstaclePatch(truth, 16, 4, 0.05, rng)
		det, err := pipe.Detect(tensor.FromSlice(pix, 1, 16, 16))
		if err != nil {
			t.Fatal(err)
		}
		if det.Obstacle == truth {
			hits++
		}
		total++
		if det.Uncertainty < 0 || det.Uncertainty > 1 {
			t.Fatalf("uncertainty %v out of [0,1]", det.Uncertainty)
		}
		if det.Confidence < 0 || det.Confidence > 1 {
			t.Fatalf("confidence %v out of [0,1]", det.Confidence)
		}
	}
	if float64(hits)/float64(total) < 0.85 {
		t.Errorf("detection accuracy %v too low", float64(hits)/float64(total))
	}
}

func TestRunScenarioDenseBaselineIsSafe(t *testing.T) {
	setup(t)
	m, _ := freshStack(t)
	res, err := RunScenario(sim.CutIn(), m, nil, LoopConfig{
		FrameSize: 16,
		Spec:      platform.EmbeddedCPU(),
		Seed:      6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Collided {
		t.Error("dense model collided in cut-in scenario")
	}
	if res.Ticks != 2000 {
		t.Errorf("ticks = %d", res.Ticks)
	}
	if res.ObstacleTicks == 0 {
		t.Error("cut-in scenario produced no obstacle frames")
	}
	// Misses concentrate at the far edge of sensor range (small blobs);
	// near-range, criticality-weighted misses are the safety-relevant ones.
	if res.MissRate() > 0.45 {
		t.Errorf("dense miss rate %v too high", res.MissRate())
	}
	if res.MissedCritical > 3 {
		t.Errorf("dense model missed %d critical frames", res.MissedCritical)
	}
	if res.EnergyMJ <= 0 {
		t.Error("energy accounting inactive")
	}
	if res.Switches != 0 || res.MeanLevel != 0 {
		t.Error("static run should have no switches")
	}
}

func TestRunScenarioAdaptiveSavesEnergyWithoutCollisions(t *testing.T) {
	setup(t)
	// Dense baseline.
	mDense, _ := freshStack(t)
	dense, err := RunScenario(sim.HighwayCruise(), mDense, nil, LoopConfig{
		FrameSize: 16, Spec: platform.EmbeddedCPU(), Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive run.
	mA, rmA := freshStack(t)
	gov, err := governor.New(rmA, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract())
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := RunScenario(sim.HighwayCruise(), mA, rmA, LoopConfig{
		FrameSize: 16, Spec: platform.EmbeddedCPU(), Governor: gov, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Collided {
		t.Error("adaptive run collided on highway cruise")
	}
	if adaptive.EnergyMJ >= dense.EnergyMJ {
		t.Errorf("adaptive energy %v not below dense %v", adaptive.EnergyMJ, dense.EnergyMJ)
	}
	if adaptive.MeanLevel <= 0.5 {
		t.Errorf("adaptive cruise should spend most time pruned, mean level %v", adaptive.MeanLevel)
	}
	if adaptive.Violations != 0 {
		t.Errorf("adaptive run violated contract %d times", adaptive.Violations)
	}
}

func TestRunScenarioRecordsTimeline(t *testing.T) {
	setup(t)
	m, rm := freshStack(t)
	gov, err := governor.New(rm, governor.Threshold{}, safety.DefaultContract(), governor.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunScenario(sim.CutIn(), m, rm, LoopConfig{
		FrameSize: 16, Governor: gov, Record: true, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recorder == nil {
		t.Fatal("no recorder")
	}
	for _, name := range []string{"score", "class", "level", "truth", "detected", "ttc"} {
		if res.Recorder.Len(name) != res.Ticks {
			t.Errorf("series %q has %d points, want %d", name, res.Recorder.Len(name), res.Ticks)
		}
	}
	// The cut-in at tick 1000 must drive the level to dense at some point
	// after it.
	levels := res.Recorder.Series("level")
	sawDenseAfterCutIn := false
	for i := 1000; i < len(levels); i++ {
		if levels[i] == 0 {
			sawDenseAfterCutIn = true
			break
		}
	}
	if !sawDenseAfterCutIn {
		t.Error("governor never restored dense after the cut-in")
	}
}

func TestRunScenarioDeterminism(t *testing.T) {
	setup(t)
	run := func() LoopResult {
		m, rm := freshStack(t)
		gov, err := governor.New(rm, governor.Threshold{}, safety.DefaultContract())
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunScenario(sim.UrbanTraffic(), m, rm, LoopConfig{
			FrameSize: 16, Spec: platform.EmbeddedCPU(), Governor: gov, Seed: 9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.EnergyMJ != b.EnergyMJ || a.Missed != b.Missed || a.Switches != b.Switches || a.Collided != b.Collided {
		t.Errorf("runs differ: %+v vs %+v", a, b)
	}
}

func TestRunScenarioRejectsBadConfig(t *testing.T) {
	setup(t)
	m, _ := freshStack(t)
	bad := safety.DefaultAssessor()
	bad.WTTC = 0.9 // weights no longer sum to 1
	if _, err := RunScenario(sim.HighwayCruise(), m, nil, LoopConfig{Assessor: bad}); err == nil {
		t.Error("invalid assessor accepted")
	}
}

func TestDetectionGapsRecorded(t *testing.T) {
	setup(t)
	m, _ := freshStack(t)
	res, err := RunScenario(sim.PedestrianCrossing(), m, nil, LoopConfig{
		FrameSize: 16, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DetectionGaps) == 0 {
		t.Fatal("no obstacle episodes recorded")
	}
	sawDetection := false
	for _, g := range res.DetectionGaps {
		if g >= 0 {
			sawDetection = true
			if g > 60.5 {
				t.Errorf("detection gap %v beyond sensor range", g)
			}
		}
	}
	if !sawDetection {
		t.Error("pedestrian never detected by the dense model")
	}
}

func TestDebounceSuppressesSingleFrameFlips(t *testing.T) {
	setup(t)
	pipe, err := NewPipeline(obsModel, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe.SetDebounce(0, 3); err == nil {
		t.Error("k=0 accepted")
	}
	if err := pipe.SetDebounce(4, 3); err == nil {
		t.Error("k>n accepted")
	}
	if err := pipe.SetDebounce(2, 3); err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(21)
	clear := tensor.FromSlice(dataset.RenderObstaclePatch(false, 16, 3, 0.02, rng), 1, 16, 16)
	obstacle := tensor.FromSlice(dataset.RenderObstaclePatch(true, 16, 4.5, 0.02, rng), 1, 16, 16)

	detect := func(frame *tensor.Tensor) Detection {
		t.Helper()
		det, err := pipe.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		return det
	}
	// A lone positive frame between clear frames must not fire with 2-of-3.
	detect(clear)
	detect(clear)
	if det := detect(obstacle); det.Obstacle {
		t.Error("single positive frame fired through 2-of-3 debounce")
	}
	// A second consecutive positive frame fires.
	if det := detect(obstacle); !det.Obstacle {
		t.Error("two consecutive positives did not fire")
	}
	// After the obstacle passes, one clear frame is not enough to release.
	if det := detect(clear); !det.Obstacle {
		t.Error("released after a single clear frame")
	}
	if det := detect(clear); det.Obstacle {
		t.Error("held after two clear frames")
	}
}

// TestConcurrentDetectAndSwitch hammers detection from one goroutine while
// another cycles pruning levels. Run with -race this validates the
// Concurrent wrapper's synchronization; in any mode it validates that
// detections remain well-formed across transitions.
func TestConcurrentDetectAndSwitch(t *testing.T) {
	setup(t)
	m, rm := freshStack(t)
	pipe, err := NewPipeline(m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	c := NewConcurrent(pipe, rm)

	rng := tensor.NewRNG(77)
	frame := tensor.FromSlice(dataset.RenderObstaclePatch(true, 16, 4, 0.05, rng), 1, 16, 16)

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 300; i++ {
			if err := c.ApplyLevel(i % rm.NumLevels()); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 300; i++ {
		det, err := c.Detect(frame)
		if err != nil {
			t.Fatal(err)
		}
		if det.Confidence < 0 || det.Confidence > 1 {
			t.Fatalf("malformed confidence %v", det.Confidence)
		}
	}
	<-done
	if err := c.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	if c.Current() != 0 {
		t.Errorf("current = %d after restore", c.Current())
	}
	if c.Scrub() != 0 {
		t.Error("scrub at L0 repaired something")
	}
	if err := rm.VerifyDense(); err != nil {
		t.Errorf("concurrent use corrupted weights: %v", err)
	}
}
