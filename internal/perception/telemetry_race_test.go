package perception

import (
	"sync"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/tensor"
)

// TestConcurrentStackWithLiveTelemetry races a perception thread
// (Detect), a governor-like thread (ApplyLevel/RestoreFull), a scrubber
// (Scrub), and a telemetry scraper (Snapshot) against one shared stack
// with live hooks installed — the deployment shape from the paper: the
// model adapts under load while an operator scrapes /metrics. Run under
// -race (scripts/verify.sh does); the assertions double-check that every
// path's observations landed.
func TestConcurrentStackWithLiveTelemetry(t *testing.T) {
	const iters = 1000

	c := tinyConcurrent(t)
	reg := telemetry.NewRegistry()
	hooks := telemetry.NewHooks(reg)
	hooks.SetLevels([]float64{0, 0.5})
	c.SetObserver(hooks)
	c.rm.SetObserver(hooks)

	frame := tensor.New(16 * 16)
	var wg sync.WaitGroup
	wg.Add(4)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			c.Detect(frame)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := c.ApplyLevel(i % c.rm.NumLevels()); err != nil {
				t.Error(err)
				return
			}
			if i%97 == 0 {
				if err := c.RestoreFull(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			c.Scrub()
			c.Current()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			s := reg.Snapshot()
			if s.Counters[telemetry.MetricTransitions] < 0 {
				t.Error("negative transition counter")
				return
			}
		}
	}()
	wg.Wait()

	s := reg.Snapshot()
	if s.Counters[telemetry.MetricFrames] != iters {
		t.Errorf("frames = %d, want %d", s.Counters[telemetry.MetricFrames], iters)
	}
	if s.Counters[telemetry.MetricTransitions] == 0 {
		t.Error("no transitions observed")
	}
	if h := s.Histograms[telemetry.MetricFrameLatency]; h.Count != iters {
		t.Errorf("frame latency count = %d, want %d", h.Count, iters)
	}
}
