package perception

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// frameRecorder counts ObserveFrame calls and sums latencies.
type frameRecorder struct {
	n     int
	total time.Duration
}

func (r *frameRecorder) ObserveFrame(elapsed time.Duration) {
	r.n++
	r.total += elapsed
}

// tinyConcurrent builds an untrained obstacle stack — Detect only needs a
// forward pass, not a useful classifier.
func tinyConcurrent(t *testing.T) *Concurrent {
	t.Helper()
	m := buildObstacleNet(7)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline(m, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	return NewConcurrent(pipe, rm)
}

func TestFrameObserverSeesEveryDetect(t *testing.T) {
	// Pin the package clock: each read advances 7µs, and Detect reads it
	// exactly twice, so every frame observes exactly one step.
	base := time.Unix(1_700_000_000, 0)
	now = func() time.Time {
		base = base.Add(7 * time.Microsecond)
		return base
	}
	t.Cleanup(func() { now = time.Now })

	c := tinyConcurrent(t)
	rec := &frameRecorder{}
	c.SetObserver(rec)
	frame := tensor.New(16 * 16)
	for i := 0; i < 5; i++ {
		c.Detect(frame)
	}
	if rec.n != 5 {
		t.Fatalf("observed %d frames, want 5", rec.n)
	}
	if rec.total != 5*7*time.Microsecond {
		t.Errorf("total latency = %v, want 35µs", rec.total)
	}
}

// TestSetObserverMidFlight installs and removes the observer while Detect
// runs on other goroutines; under -race this pins the atomic-pointer fix
// for the former "must be called before sharing" restriction.
func TestSetObserverMidFlight(t *testing.T) {
	c := tinyConcurrent(t)
	frame := tensor.New(16 * 16)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			c.Detect(frame)
		}
	}()
	rec := &frameRecorder{}
	for i := 0; i < 100; i++ {
		c.SetObserver(rec)
		c.SetObserver(nil)
	}
	c.SetObserver(rec)
	<-done
	c.Detect(frame)
	if rec.n == 0 {
		t.Fatal("observer installed mid-flight never saw a frame")
	}
}

func TestDetectWithoutObserverSkipsClock(t *testing.T) {
	reads := 0
	now = func() time.Time {
		reads++
		return time.Unix(1_700_000_000, 0)
	}
	t.Cleanup(func() { now = time.Now })

	c := tinyConcurrent(t)
	c.Detect(tensor.New(16 * 16))
	if reads != 0 {
		t.Errorf("Detect without observer read the clock %d times, want 0", reads)
	}
}
