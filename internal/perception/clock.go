package perception

import "time"

// now is the package clock seam. Frame-latency measurements for the
// FrameObserver hook read through it so tests can pin time to a fake clock.
var now = time.Now
