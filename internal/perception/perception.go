// Package perception implements the camera perception pipeline and the
// closed control loop that couples the scenario simulator, the safety
// monitor, the runtime governor, and the reversible model. It is the
// integration layer every end-to-end experiment runs through.
//
// For multi-goroutine deployments, Concurrent serializes detection and
// level transitions behind one mutex so a frame never observes a
// half-applied level. Per-frame detection latency (including that lock
// wait) is observable through the FrameObserver seam, which
// telemetry.Hooks satisfies; a nil observer is free.
package perception

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Detection is one frame's perception output.
type Detection struct {
	// Obstacle reports whether the pipeline declares an obstacle present.
	Obstacle bool
	// Confidence is p(obstacle) from the softmax head.
	Confidence float64
	// Uncertainty is the normalized softmax entropy in [0,1].
	Uncertainty float64
}

// Pipeline wraps a binary obstacle classifier (input [1, S, S], two output
// logits: clear/obstacle) for frame-by-frame use.
type Pipeline struct {
	model     *nn.Sequential
	size      int
	threshold float64
	batch     *tensor.Tensor // reusable [1,1,S,S] input
	batchBuf  *tensor.Tensor // reusable [N,1,S,S] input for batched passes

	// Debouncing (optional): declare an obstacle only when at least
	// debounceK of the last debounceN raw frame decisions were positive.
	debounceK, debounceN int
	history              []bool
	histPos              int
	histCount            int
}

// SetDebounce enables k-of-n vote debouncing on the obstacle decision:
// Detect reports an obstacle only when at least k of the last n raw frame
// classifications were positive. Debouncing suppresses single-frame false
// alarms (spurious emergency braking) at the cost of (k−1) control ticks
// of detection latency. k must be in [1, n].
func (p *Pipeline) SetDebounce(k, n int) error {
	if n <= 0 || k <= 0 || k > n {
		return fmt.Errorf("perception: debounce k=%d n=%d invalid", k, n)
	}
	p.debounceK, p.debounceN = k, n
	p.history = make([]bool, n)
	p.histPos, p.histCount = 0, 0
	return nil
}

// NewPipeline constructs a pipeline around the classifier. threshold is the
// detection probability cutoff; 0 defaults to 0.5.
func NewPipeline(model *nn.Sequential, frameSize int, threshold float64) (*Pipeline, error) {
	if model == nil {
		return nil, fmt.Errorf("perception: nil model")
	}
	if frameSize <= 0 {
		return nil, fmt.Errorf("perception: frame size %d", frameSize)
	}
	if threshold == 0 { //lint:allow(floateq) zero-value config sentinel selects the default
		threshold = 0.5
	}
	if threshold < 0 || threshold >= 1 {
		return nil, fmt.Errorf("perception: threshold %v out of (0,1)", threshold)
	}
	return &Pipeline{
		model:     model,
		size:      frameSize,
		threshold: threshold,
		batch:     tensor.New(1, 1, frameSize, frameSize),
	}, nil
}

// FrameSize returns the sensor patch side length the pipeline was built
// for; Detect only accepts frames with exactly FrameSize² pixels.
func (p *Pipeline) FrameSize() int { return p.size }

// Detect classifies one [1, S, S] frame. A frame whose pixel count does
// not match FrameSize² is rejected with an error — a truncated or garbled
// sensor read must degrade, not crash the control loop.
func (p *Pipeline) Detect(frame *tensor.Tensor) (Detection, error) {
	if frame == nil {
		return Detection{}, fmt.Errorf("perception: nil frame")
	}
	if frame.Len() != p.size*p.size {
		return Detection{}, fmt.Errorf("perception: frame with %d pixels, want %d", frame.Len(), p.size*p.size)
	}
	copy(p.batch.Data(), frame.Data())
	logits := p.model.Forward(p.batch, false)
	probs := tensor.SoftmaxRows(logits)
	return p.DecideRow(probs, 0), nil
}

// ProbsBatch stacks the frames into one [N,1,S,S] batch, runs a single
// fused forward pass, and returns the [N,2] softmax probability matrix —
// row i belongs to frames[i]. It is the model half of batched detection:
// it advances no debounce state, so probability rows can be handed to
// *other* pipelines' DecideRow (the fleet batch planner runs one
// instance's model for a whole group and lets each member decide its own
// frame). Frames are validated like Detect validates; the stack buffer is
// cached per batch size. Callers serialize ProbsBatch against anything
// else touching this pipeline's model.
func (p *Pipeline) ProbsBatch(frames []*tensor.Tensor) (*tensor.Tensor, error) {
	if len(frames) == 0 {
		return nil, fmt.Errorf("perception: empty batch")
	}
	px := p.size * p.size
	for i, f := range frames {
		if f == nil {
			return nil, fmt.Errorf("perception: batch frame %d is nil", i)
		}
		if f.Len() != px {
			return nil, fmt.Errorf("perception: batch frame %d with %d pixels, want %d", i, f.Len(), px)
		}
	}
	buf := p.batch
	if n := len(frames); n > 1 {
		if p.batchBuf == nil || p.batchBuf.Dim(0) != n {
			p.batchBuf = tensor.New(n, 1, p.size, p.size)
		}
		buf = p.batchBuf
	}
	tensor.StackInto(buf, frames)
	logits := p.model.Forward(buf, false)
	return tensor.SoftmaxRows(logits), nil
}

// DecideRow turns row r of a ProbsBatch probability matrix into this
// pipeline's Detection: threshold, then the k-of-n debounce vote, which
// advances by one frame — rows must therefore be consumed in frame order.
// Callers serialize DecideRow the same way they serialize Detect.
func (p *Pipeline) DecideRow(probs *tensor.Tensor, r int) Detection {
	pObstacle := float64(probs.At2(r, 1))
	raw := pObstacle >= p.threshold
	decided := raw
	if p.debounceN > 0 {
		p.history[p.histPos] = raw
		p.histPos = (p.histPos + 1) % p.debounceN
		if p.histCount < p.debounceN {
			p.histCount++
		}
		votes := 0
		for i := 0; i < p.histCount; i++ {
			if p.history[i] {
				votes++
			}
		}
		decided = votes >= p.debounceK
	}
	return Detection{
		Obstacle:    decided,
		Confidence:  pObstacle,
		Uncertainty: safety.Entropy(probs.Row(r).Data()),
	}
}

// DetectBatch classifies the frames in one fused forward pass and returns
// per-frame Detections in submission order. It is exactly equivalent to
// calling Detect on each frame in sequence — same probabilities
// (bit-identical kernels), same debounce trajectory — just one matmul per
// layer instead of len(frames).
func (p *Pipeline) DetectBatch(frames []*tensor.Tensor) ([]Detection, error) {
	probs, err := p.ProbsBatch(frames)
	if err != nil {
		return nil, err
	}
	dets := make([]Detection, len(frames))
	for i := range frames {
		dets[i] = p.DecideRow(probs, i)
	}
	return dets, nil
}

// LoopConfig parameterizes a closed-loop scenario run.
type LoopConfig struct {
	// FrameSize is the sensor patch side in pixels.
	FrameSize int
	// Assessor fuses the criticality signals.
	Assessor safety.Assessor
	// Governor, when non-nil, adapts the reversible model each tick. When
	// nil the model runs as-is (static baselines).
	Governor *governor.Governor
	// Spec is the platform whose energy model accrues per-tick cost. The
	// zero value disables energy accounting.
	Spec platform.Spec
	// Contract is the quality contract violations are scored against
	// whenever a reversible model is present (with or without a governor).
	// The zero value falls back to safety.DefaultContract. A tick is a
	// violation when the active level's calibrated accuracy is below the
	// floor of the current criticality class *and* a level meeting the
	// floor (or the dense level) was available but not active — running
	// dense against an unsatisfiable floor is not a violation.
	Contract safety.Contract
	// Record, when true, captures per-tick series into the result Recorder.
	Record bool
	// Seed drives the world (traffic and sensor noise).
	Seed int64
}

// LoopResult aggregates a scenario run.
type LoopResult struct {
	// Scenario is the scenario name.
	Scenario string
	// Ticks is the number of control ticks executed.
	Ticks int
	// Collided reports a collision during the run.
	Collided bool
	// Missed counts obstacle-present frames the pipeline missed;
	// MissedCritical restricts to ticks at Critical or Emergency class.
	Missed, MissedCritical int
	// ObstacleTicks counts frames with ground-truth obstacles.
	ObstacleTicks int
	// FalseAlarms counts obstacle-free frames declared obstacles.
	FalseAlarms int
	// EnergyMJ is the summed per-inference energy over the run.
	EnergyMJ float64
	// Switches is the number of level transitions (0 without a governor).
	Switches int
	// Violations counts ticks the active level ran below the contract
	// floor while a better option existed (see LoopConfig.Contract).
	Violations int
	// MeanLevel is the average active level index (0 without a governor).
	MeanLevel float64
	// DetectionGaps holds, per obstacle episode (a maximal run of
	// obstacle-present ticks), the gap in meters at which the pipeline
	// first detected it — the reaction-distance metric. Episodes never
	// detected contribute -1.
	DetectionGaps []float64
	// Recorder holds per-tick series when LoopConfig.Record was set:
	// "score", "class", "level", "truth", "detected", "energy_mj", "ttc".
	Recorder *metrics.Recorder
}

// MissRate returns Missed/ObstacleTicks (0 when no obstacles appeared).
func (r LoopResult) MissRate() float64 {
	if r.ObstacleTicks == 0 {
		return 0
	}
	return float64(r.Missed) / float64(r.ObstacleTicks)
}

// Stack is the adaptation surface the closed loop drives each tick: frame
// classification, a governor tick, and the level-library view the contract
// scoring and energy accounting read. Two implementations exist:
// the package-internal soloStack (what RunScenario wraps around a bare
// pipeline + model) and fleet.Instance, whose methods lock per call so one
// loop goroutine per instance composes safely with a fleet-level budget
// governor retargeting levels concurrently.
type Stack interface {
	// Detect classifies one [1, S, S] frame. A frame the stack cannot
	// serve (geometry mismatch, fenced instance) returns an error; the
	// loop treats it as a failed tick.
	Detect(frame *tensor.Tensor) (Detection, error)
	// Tick runs one governor iteration (a no-op Decision when the stack has
	// no governor attached).
	Tick(tick int, a safety.Assessment) (governor.Decision, error)
	// Current returns the active level index (0 without a reversible model).
	Current() int
	// Levels returns the calibrated level library (nil without a reversible
	// model).
	Levels() []*core.Level
	// Switches returns the number of level changes the stack's governor has
	// executed (0 without a governor).
	Switches() int
}

// soloStack adapts the single-model triple (pipeline, reversible model,
// optional governor) RunScenario has always run to the Stack seam. Any of
// rm and gov may be nil (static baselines).
type soloStack struct {
	pipe *Pipeline
	rm   *core.ReversibleModel
	gov  *governor.Governor
}

func (s soloStack) Detect(frame *tensor.Tensor) (Detection, error) { return s.pipe.Detect(frame) }

func (s soloStack) Tick(tick int, a safety.Assessment) (governor.Decision, error) {
	if s.gov == nil {
		return governor.Decision{}, nil
	}
	return s.gov.Tick(tick, a)
}

func (s soloStack) Current() int {
	if s.rm == nil {
		return 0
	}
	return s.rm.Current()
}

func (s soloStack) Levels() []*core.Level {
	if s.rm == nil {
		return nil
	}
	return s.rm.Levels()
}

func (s soloStack) Switches() int {
	if s.gov == nil {
		return 0
	}
	return s.gov.Switches()
}

// RunScenario executes one closed-loop run of the scenario: each tick the
// world is assessed (using the previous tick's perception uncertainty — the
// monitor acts on observed state), the governor adapts the model, the
// pipeline classifies the current frame, and the ego brakes on detection.
func RunScenario(sc sim.Scenario, model *nn.Sequential, rm *core.ReversibleModel, cfg LoopConfig) (LoopResult, error) {
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = 16
	}
	if cfg.Assessor == (safety.Assessor{}) {
		cfg.Assessor = safety.DefaultAssessor()
	}
	if err := cfg.Assessor.Validate(); err != nil {
		return LoopResult{}, err
	}
	pipe, err := NewPipeline(model, cfg.FrameSize, 0)
	if err != nil {
		return LoopResult{}, err
	}
	st := soloStack{pipe: pipe, rm: rm, gov: cfg.Governor}
	// Live-estimate fallback for uncalibrated levels, preserved from the
	// pre-Stack loop: estimate the platform cost of the model as currently
	// configured.
	estimate := func() float64 { return cfg.Spec.Estimate(model).EnergyMJ }
	return runLoop(sc, st, cfg, estimate)
}

// RunStack executes the same closed loop over any Stack — in particular a
// fleet.Instance, whose per-call locking lets a fleet budget governor
// retarget levels while the loop runs. cfg.Governor is ignored (ticking
// goes through st.Tick); cfg.FrameSize must match the stack's pipeline
// frame size. Energy accounting uses calibrated per-level EnergyMJ only —
// there is no model handle here to live-estimate uncalibrated levels, so
// such levels accrue zero.
func RunStack(sc sim.Scenario, st Stack, cfg LoopConfig) (LoopResult, error) {
	if st == nil {
		return LoopResult{}, fmt.Errorf("perception: nil stack")
	}
	if cfg.FrameSize <= 0 {
		cfg.FrameSize = 16
	}
	if cfg.Assessor == (safety.Assessor{}) {
		cfg.Assessor = safety.DefaultAssessor()
	}
	if err := cfg.Assessor.Validate(); err != nil {
		return LoopResult{}, err
	}
	return runLoop(sc, st, cfg, nil)
}

// runLoop is the shared closed-loop body behind RunScenario and RunStack.
// estimate, when non-nil, lazily prices a level with no calibrated EnergyMJ
// (computed once per level); nil means uncalibrated levels cost zero.
func runLoop(sc sim.Scenario, st Stack, cfg LoopConfig, estimate func() float64) (LoopResult, error) {
	world, err := sim.NewWorld(sc, cfg.Seed)
	if err != nil {
		return LoopResult{}, err
	}

	res := LoopResult{Scenario: sc.Name}
	if cfg.Record {
		res.Recorder = metrics.NewRecorder()
	}
	useEnergy := cfg.Spec.MACsPerSecond > 0

	// Per-level energy: prefer calibrated values, fall back to live
	// estimates (computed lazily once per level).
	levelEnergy := map[int]float64{}
	energyNow := func() float64 {
		if !useEnergy {
			return 0
		}
		lvl := st.Current()
		if lvls := st.Levels(); lvl >= 0 && lvl < len(lvls) {
			if e := lvls[lvl].EnergyMJ; e > 0 {
				return e
			}
		}
		if e, ok := levelEnergy[lvl]; ok {
			return e
		}
		e := 0.0
		if estimate != nil {
			e = estimate()
		}
		levelEnergy[lvl] = e
		return e
	}

	contract := cfg.Contract
	if contract == (safety.Contract{}) {
		contract = safety.DefaultContract()
	}
	if err := contract.Validate(); err != nil {
		return LoopResult{}, err
	}

	lastUncertainty := 0.0
	var levelSum float64
	trackLevel := len(st.Levels()) > 0
	inEpisode := false
	episodeDetected := false
	for !world.Done() {
		tick := world.Tick()
		assessment := cfg.Assessor.Assess(world.TTC(), world.Complexity(), lastUncertainty)

		if _, err := st.Tick(tick, assessment); err != nil {
			return res, err
		}
		if lvls := st.Levels(); len(lvls) > 0 {
			floor := contract.Floor(assessment.Class)
			cur := st.Current()
			active := lvls[cur]
			if active.Accuracy < floor && cur != governor.DeepestMeeting(lvls, floor) {
				res.Violations++
			}
		}

		frame, truth := world.Frame(cfg.FrameSize)
		det, err := st.Detect(frame)
		if err != nil {
			return res, fmt.Errorf("perception: tick %d: %w", tick, err)
		}
		lastUncertainty = det.Uncertainty
		world.SetBraking(det.Obstacle)

		if truth {
			res.ObstacleTicks++
			if !inEpisode {
				inEpisode = true
				episodeDetected = false
			}
			if det.Obstacle {
				if !episodeDetected {
					_, gap := world.LeadActor()
					res.DetectionGaps = append(res.DetectionGaps, gap)
					episodeDetected = true
				}
			} else {
				res.Missed++
				if assessment.Class >= safety.Critical {
					res.MissedCritical++
				}
			}
		} else {
			if inEpisode {
				if !episodeDetected {
					res.DetectionGaps = append(res.DetectionGaps, -1)
				}
				inEpisode = false
			}
			if det.Obstacle {
				res.FalseAlarms++
			}
		}
		e := energyNow()
		res.EnergyMJ += e
		if trackLevel {
			levelSum += float64(st.Current())
		}
		if cfg.Record {
			res.Recorder.Record("score", assessment.Score)
			res.Recorder.Record("class", float64(assessment.Class))
			lvl := 0
			if trackLevel {
				lvl = st.Current()
			}
			res.Recorder.Record("level", float64(lvl))
			res.Recorder.Record("truth", boolTo01(truth))
			res.Recorder.Record("detected", boolTo01(det.Obstacle))
			res.Recorder.Record("energy_mj", e)
			ttc := world.TTC()
			if math.IsInf(ttc, 1) {
				ttc = -1
			}
			res.Recorder.Record("ttc", ttc)
		}

		world.Step()
		res.Ticks++
	}
	if inEpisode && !episodeDetected {
		res.DetectionGaps = append(res.DetectionGaps, -1)
	}
	res.Collided = world.Collided()
	res.Switches = st.Switches()
	if res.Ticks > 0 {
		res.MeanLevel = levelSum / float64(res.Ticks)
	}
	return res, nil
}

func boolTo01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
