// Package quant implements reversible runtime quantization — the companion
// quality/energy knob to pruning, listed as an extension direction of the
// reversible-runtime-adaptation idea. Weights are rounded onto a symmetric
// per-tensor integer grid at a chosen bit width; a full-precision shadow
// master makes any quantization level instantly revertible.
//
// Unlike the pruning recovery store (which holds only displaced weights),
// exact reversal of rounding requires the original values, so the master
// costs one model copy regardless of the level count. The ablation
// experiments quantify that tradeoff against pruning's delta store.
package quant

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// Level is one rung of the precision ladder.
type Level struct {
	// ID is the level index; 0 is the full-precision (float32) level.
	ID int
	// Bits is the integer width weights are rounded to; 32 means identity.
	Bits int
	// Name is "Q32", "Q8", ….
	Name string
	// Accuracy is the calibrated task accuracy, filled by Calibrate.
	Accuracy float64
	// EnergyMJ is the per-inference energy estimate, filled by SetCost.
	EnergyMJ float64
}

// ReversibleQuantizer wraps a model with a precision ladder and the
// full-precision shadow master needed to reverse any rounding. It is not
// safe for concurrent use.
type ReversibleQuantizer struct {
	model   *nn.Sequential
	master  map[string][]float32
	levels  []*Level
	current int
}

// BuildQuantizer captures the model's current (full-precision) prunable
// weights as the master and prepares the given bit-width ladder. bitLevels
// must be strictly decreasing widths in [2, 31], e.g. [16, 8, 4]; level 0
// (32-bit identity) is implicit.
func BuildQuantizer(model *nn.Sequential, bitLevels []int) (*ReversibleQuantizer, error) {
	if model == nil {
		return nil, fmt.Errorf("quant: nil model")
	}
	if len(bitLevels) == 0 {
		return nil, fmt.Errorf("quant: no bit levels")
	}
	prev := 32
	for _, b := range bitLevels {
		if b < 2 || b >= prev {
			return nil, fmt.Errorf("quant: bit levels must be strictly decreasing in [2,31], got %v", bitLevels)
		}
		prev = b
	}
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("quant: model %q has no prunable parameters", model.Name())
	}
	q := &ReversibleQuantizer{
		model:  model,
		master: make(map[string][]float32, len(params)),
	}
	for _, p := range params {
		cp := make([]float32, p.Value.Len())
		copy(cp, p.Value.Data())
		q.master[p.Name] = cp
	}
	q.levels = append(q.levels, &Level{ID: 0, Bits: 32, Name: "Q32"})
	for i, b := range bitLevels {
		q.levels = append(q.levels, &Level{ID: i + 1, Bits: b, Name: fmt.Sprintf("Q%d", b)})
	}
	return q, nil
}

// Model returns the live network.
func (q *ReversibleQuantizer) Model() *nn.Sequential { return q.model }

// NumLevels returns the ladder size including the identity level.
func (q *ReversibleQuantizer) NumLevels() int { return len(q.levels) }

// Current returns the active level index.
func (q *ReversibleQuantizer) Current() int { return q.current }

// Level returns level metadata.
func (q *ReversibleQuantizer) Level(i int) *Level {
	if i < 0 || i >= len(q.levels) {
		failf("quant: level %d out of range [0,%d)", i, len(q.levels))
	}
	return q.levels[i]
}

// Levels returns the ladder (shared slice).
func (q *ReversibleQuantizer) Levels() []*Level { return q.levels }

// MasterBytes returns the shadow master's memory footprint.
func (q *ReversibleQuantizer) MasterBytes() int64 {
	var n int64
	for _, v := range q.master {
		n += int64(len(v)) * 4
	}
	return n
}

// ApplyLevel rounds the live weights (from the master, so transitions are
// path-independent) onto level i's grid. Level 0 restores full precision.
func (q *ReversibleQuantizer) ApplyLevel(i int) error {
	if i < 0 || i >= len(q.levels) {
		return fmt.Errorf("quant: level %d out of range [0,%d)", i, len(q.levels))
	}
	bits := q.levels[i].Bits
	for _, p := range q.model.PrunableParams() {
		src := q.master[p.Name]
		dst := p.Value.Data()
		if bits >= 32 {
			copy(dst, src)
			continue
		}
		QuantizeInto(dst, src, bits)
	}
	q.current = i
	return nil
}

// Restore is the fast path back to full precision.
func (q *ReversibleQuantizer) Restore() error { return q.ApplyLevel(0) }

// VerifyMaster checks, at level 0, that the live weights match the master
// exactly.
func (q *ReversibleQuantizer) VerifyMaster() error {
	if q.current != 0 {
		return fmt.Errorf("quant: VerifyMaster at level %d; restore first", q.current)
	}
	for _, p := range q.model.PrunableParams() {
		src := q.master[p.Name]
		for i, v := range p.Value.Data() {
			if v != src[i] { //lint:allow(floateq) master-weight restore check is deliberately bit-exact
				return fmt.Errorf("quant: %s[%d] = %v, master has %v", p.Name, i, v, src[i])
			}
		}
	}
	return nil
}

// Calibrate fills each level's Accuracy using eval and returns to the
// previously active level.
func (q *ReversibleQuantizer) Calibrate(eval func(*nn.Sequential) float64) error {
	if eval == nil {
		return fmt.Errorf("quant: Calibrate with nil evaluator")
	}
	prev := q.current
	for i := range q.levels {
		if err := q.ApplyLevel(i); err != nil {
			return err
		}
		q.levels[i].Accuracy = eval(q.model)
	}
	return q.ApplyLevel(prev)
}

// SetCost records the platform energy estimate for level i.
func (q *ReversibleQuantizer) SetCost(i int, energyMJ float64) {
	q.Level(i).EnergyMJ = energyMJ
}

// QuantizeInto rounds src onto a symmetric bits-wide integer grid scaled to
// the tensor's max magnitude and writes the dequantized values into dst.
// Exact zeros stay exactly zero, so quantization composes with pruning.
func QuantizeInto(dst, src []float32, bits int) {
	if len(dst) != len(src) {
		failf("quant: QuantizeInto length mismatch %d vs %d", len(dst), len(src))
	}
	if bits < 2 || bits > 31 {
		failf("quant: bits %d out of [2,31]", bits)
	}
	var maxAbs float32
	for _, v := range src {
		a := v
		if a < 0 {
			a = -a
		}
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 { //lint:allow(floateq) all-zero tensor detection is exact by construction
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	qmax := float32(int32(1)<<(bits-1)) - 1
	scale := maxAbs / qmax
	inv := 1 / scale
	for i, v := range src {
		qv := float32(math.RoundToEven(float64(v * inv)))
		if qv > qmax {
			qv = qmax
		} else if qv < -qmax {
			qv = -qmax
		}
		dst[i] = qv * scale
	}
}

// MaxQuantError returns the largest |dequant(w) − w| the grid can incur for
// the given source tensor — half a step.
func MaxQuantError(src []float32, bits int) float64 {
	var maxAbs float64
	for _, v := range src {
		a := math.Abs(float64(v))
		if a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 { //lint:allow(floateq) all-zero tensor detection is exact by construction
		return 0
	}
	qmax := float64(int32(1)<<(bits-1)) - 1
	return maxAbs / qmax / 2
}
