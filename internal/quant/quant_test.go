package quant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func quantModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("m",
		nn.NewDense("fc1", 8, 16, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 16, 4, rng),
	)
}

func TestBuildQuantizerValidation(t *testing.T) {
	m := quantModel(1)
	if _, err := BuildQuantizer(nil, []int{8}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := BuildQuantizer(m, nil); err == nil {
		t.Error("empty ladder accepted")
	}
	if _, err := BuildQuantizer(m, []int{8, 16}); err == nil {
		t.Error("increasing ladder accepted")
	}
	if _, err := BuildQuantizer(m, []int{32}); err == nil {
		t.Error("32-bit rung accepted (identity is implicit)")
	}
	if _, err := BuildQuantizer(m, []int{1}); err == nil {
		t.Error("1-bit rung accepted")
	}
	empty := nn.NewSequential("e", nn.NewReLU("r"))
	if _, err := BuildQuantizer(empty, []int{8}); err == nil {
		t.Error("model without weights accepted")
	}
}

func TestQuantizeRestoreExact(t *testing.T) {
	m := quantModel(2)
	orig := m.Param("fc1/weight").Value.Clone()
	q, err := BuildQuantizer(m, []int{16, 8, 4})
	if err != nil {
		t.Fatal(err)
	}
	if q.NumLevels() != 4 {
		t.Fatalf("NumLevels = %d", q.NumLevels())
	}
	if err := q.ApplyLevel(3); err != nil {
		t.Fatal(err)
	}
	if tensor.Equal(m.Param("fc1/weight").Value, orig) {
		t.Error("4-bit quantization changed nothing")
	}
	if err := q.Restore(); err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(m.Param("fc1/weight").Value, orig) {
		t.Error("restore not bit-exact")
	}
	if err := q.VerifyMaster(); err != nil {
		t.Error(err)
	}
}

func TestVerifyMasterRefusesAwayFromQ32(t *testing.T) {
	m := quantModel(3)
	q, _ := BuildQuantizer(m, []int{8})
	q.ApplyLevel(1)
	if err := q.VerifyMaster(); err == nil {
		t.Error("VerifyMaster at Q8 accepted")
	}
}

func TestTransitionsArePathIndependent(t *testing.T) {
	m1 := quantModel(4)
	m2 := quantModel(4)
	q1, _ := BuildQuantizer(m1, []int{16, 8, 4})
	q2, _ := BuildQuantizer(m2, []int{16, 8, 4})
	// Direct jump vs a wandering path must land on identical weights.
	q1.ApplyLevel(2)
	q2.ApplyLevel(3)
	q2.ApplyLevel(1)
	q2.ApplyLevel(2)
	if !tensor.Equal(m1.Param("fc1/weight").Value, m2.Param("fc1/weight").Value) {
		t.Error("quantization depends on the path taken")
	}
}

func TestQuantErrorBoundedAndShrinksWithBits(t *testing.T) {
	rng := tensor.NewRNG(5)
	src := make([]float32, 500)
	for i := range src {
		src[i] = float32(rng.Normal(0, 1))
	}
	var prevMax float64 = math.Inf(1)
	for _, bits := range []int{4, 8, 16} {
		dst := make([]float32, len(src))
		QuantizeInto(dst, src, bits)
		// 1% slack for float32 rounding in the scale computation itself.
		bound := MaxQuantError(src, bits)*1.01 + 1e-9
		var worst float64
		for i := range src {
			e := math.Abs(float64(dst[i] - src[i]))
			if e > worst {
				worst = e
			}
			if e > bound {
				t.Fatalf("bits=%d: error %v exceeds bound %v", bits, e, bound)
			}
		}
		if worst >= prevMax {
			t.Errorf("bits=%d: error %v did not shrink from %v", bits, worst, prevMax)
		}
		prevMax = worst
	}
}

func TestQuantPreservesZeros(t *testing.T) {
	src := []float32{0, 1, -1, 0, 0.5}
	dst := make([]float32, len(src))
	QuantizeInto(dst, src, 4)
	if dst[0] != 0 || dst[3] != 0 {
		t.Error("exact zeros not preserved — breaks composition with pruning")
	}
	allZero := make([]float32, 4)
	QuantizeInto(dst[:4], allZero, 8)
	for _, v := range dst[:4] {
		if v != 0 {
			t.Error("all-zero tensor not preserved")
		}
	}
}

func TestCalibrateAndCost(t *testing.T) {
	m := quantModel(6)
	q, _ := BuildQuantizer(m, []int{8, 4})
	calls := 0
	if err := q.Calibrate(func(*nn.Sequential) float64 { calls++; return float64(calls) }); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("evaluator ran %d times", calls)
	}
	if q.Level(0).Accuracy != 1 || q.Level(2).Accuracy != 3 {
		t.Error("accuracies not recorded")
	}
	if q.Current() != 0 {
		t.Error("Calibrate did not restore level")
	}
	q.SetCost(1, 5.5)
	if q.Level(1).EnergyMJ != 5.5 {
		t.Error("SetCost not recorded")
	}
	if err := q.Calibrate(nil); err == nil {
		t.Error("nil evaluator accepted")
	}
}

func TestMasterBytes(t *testing.T) {
	m := quantModel(7)
	q, _ := BuildQuantizer(m, []int{8})
	var want int64
	for _, p := range m.PrunableParams() {
		want += int64(p.Value.Len()) * 4
	}
	if q.MasterBytes() != want {
		t.Errorf("MasterBytes = %d, want %d", q.MasterBytes(), want)
	}
}

func TestApplyLevelErrors(t *testing.T) {
	m := quantModel(8)
	q, _ := BuildQuantizer(m, []int{8})
	if err := q.ApplyLevel(-1); err == nil {
		t.Error("negative level accepted")
	}
	if err := q.ApplyLevel(5); err == nil {
		t.Error("out-of-range level accepted")
	}
}

// Property: quantize→restore round trips exactly for arbitrary ladders and
// walks.
func TestQuantReversibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		m := quantModel(seed)
		orig := m.Param("fc1/weight").Value.Clone()
		q, err := BuildQuantizer(m, []int{16, 8, 4, 2})
		if err != nil {
			return false
		}
		for k := 0; k < 10; k++ {
			if err := q.ApplyLevel(rng.Intn(q.NumLevels())); err != nil {
				return false
			}
		}
		if err := q.Restore(); err != nil {
			return false
		}
		return tensor.Equal(m.Param("fc1/weight").Value, orig) && q.VerifyMaster() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: fewer bits never increases the number of distinct weight
// values.
func TestQuantDistinctValuesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		src := make([]float32, 200)
		for i := range src {
			src[i] = float32(rng.Normal(0, 2))
		}
		distinct := func(bits int) int {
			dst := make([]float32, len(src))
			QuantizeInto(dst, src, bits)
			set := map[float32]bool{}
			for _, v := range dst {
				set[v] = true
			}
			return len(set)
		}
		return distinct(4) <= distinct(8) && distinct(8) <= distinct(16)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
