package quant

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: level indices and buffer lengths are fixed when the ladder is built; misuse is a programmer error.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
