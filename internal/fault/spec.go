// Package fault is the deterministic fault-injection harness behind
// `simdrive -chaos` and the chaos-drill tests: a seedable Injector with
// named fault points the fleet stack calls at its seams, armed by parsed
// spec strings.
//
// A spec is colon-separated: the fault kind, an optional bare instance
// name narrowing the target, and `key=value` windowing parameters:
//
//	nan-weights:car2:after=50          poison car2's 51st+ transitions
//	drop-frames:car1:after=40:for=3    drop car1's frames 40..42
//	slow-infer:latency=250ms           stall every instance's frames
//	otlp-outage:after=0:for=2          fail the first two collector POSTs
//
// Multiple specs join with commas. Every fault point counts its trigger
// events per (spec, instance) and fires only inside the window
// [after, after+for) — so a drill is reproducible tick-for-tick given the
// same seed and schedule. The injector never fires outside an armed
// window and an Injector with no specs is inert.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Kind names one fault class an Injector can arm.
type Kind string

const (
	// KindNaNWeights poisons currently-pruned (zero) weights with NaN after
	// a transition to a pruned level — corruption the reversible store can
	// heal, so an emergency restore to L0 genuinely recovers the model.
	KindNaNWeights Kind = "nan-weights"
	// KindDropFrames makes the frame point report the frame lost before it
	// reaches the pipeline.
	KindDropFrames Kind = "drop-frames"
	// KindGarbleFrames replaces the frame with a corrupted copy: a short
	// read of random sensor garbage and NaN pixels, the classic dying-
	// camera burst — the pipeline rejects the truncated geometry.
	KindGarbleFrames Kind = "garble-frames"
	// KindSlowInfer stalls the frame point by the spec latency before the
	// forward pass, simulating accelerator contention.
	KindSlowInfer Kind = "slow-infer"
	// KindStuckTransition stalls the transition point by the spec latency
	// while the instance lock is held, simulating a wedged level change.
	KindStuckTransition Kind = "stuck-transition"
	// KindStoreCorrupt flips bits in the recovery store's displaced values
	// after a completed level change — unlike nan-weights, corruption the
	// store cannot heal (the displaced dense values exist nowhere else).
	// The drill proves the integrity checksums refuse the next restore and
	// the watchdog quarantines the instance permanently.
	KindStoreCorrupt Kind = "store-corrupt"
	// KindOTLPOutage fails OTLP collector POSTs at the transport, so the
	// exporter's retry/backoff path runs against a dead collector.
	KindOTLPOutage Kind = "otlp-outage"
	// KindConnDrop severs an ingest connection at the wire fault point: the
	// listener closes the vehicle's TCP stream mid-conversation, the abrupt
	// disconnect resource-constrained radio links produce. The client must
	// reconnect and re-admit; the server must reap the dead connection's
	// state without leaking a slot.
	KindConnDrop Kind = "conn-drop"
	// KindSlowLoris stalls the listener's per-message read loop by the spec
	// latency while the connection stays open — the slow-loris shape, where
	// a trickling peer occupies a connection slot and read deadlines are
	// the only defense. Uses latency= like slow-infer.
	KindSlowLoris Kind = "slow-loris"
)

// Kinds lists every valid fault kind, in the order error messages and
// docs present them.
func Kinds() []Kind {
	return []Kind{KindNaNWeights, KindDropFrames, KindGarbleFrames,
		KindSlowInfer, KindStuckTransition, KindStoreCorrupt, KindOTLPOutage,
		KindConnDrop, KindSlowLoris}
}

// Spec is one parsed fault directive.
type Spec struct {
	// Kind is the fault class.
	Kind Kind
	// Model narrows the fault to one instance name; empty targets every
	// instance. Ignored by otlp-outage (the collector is shared).
	Model string
	// After is how many trigger events at the fault point pass untouched
	// before the window opens (default 0: fire from the first event).
	After int
	// For is the window length in trigger events; 0 means the window never
	// closes.
	For int
	// Latency is the stall for slow-infer and stuck-transition (default
	// 150ms there, 0 and unused elsewhere).
	Latency time.Duration
	// Count bounds how many weights nan-weights poisons per transition
	// (default 8) or how many displaced-value bits store-corrupt flips per
	// transition (default 4); unused by the other kinds.
	Count int
}

// defaultLatency is the stall applied when a slow-infer/stuck-transition
// spec omits latency=.
const defaultLatency = 150 * time.Millisecond

// defaultPoisonCount is the per-transition NaN budget when a nan-weights
// spec omits n=.
const defaultPoisonCount = 8

// defaultCorruptBits is the per-transition bit-flip budget when a
// store-corrupt spec omits n=.
const defaultCorruptBits = 4

// defaultCount returns the kind's n= default (0 for kinds without one).
func (s Spec) defaultCount() int {
	switch s.Kind {
	case KindNaNWeights:
		return defaultPoisonCount
	case KindStoreCorrupt:
		return defaultCorruptBits
	}
	return 0
}

func (s Spec) usesCount() bool {
	return s.Kind == KindNaNWeights || s.Kind == KindStoreCorrupt
}

// String renders the spec back into the grammar ParseSpec accepts;
// defaulted fields are omitted, so ParseSpec(s.String()) round-trips to an
// equal Spec.
func (s Spec) String() string {
	var b strings.Builder
	b.WriteString(string(s.Kind))
	if s.Model != "" {
		b.WriteByte(':')
		b.WriteString(s.Model)
	}
	if s.After != 0 {
		fmt.Fprintf(&b, ":after=%d", s.After)
	}
	if s.For != 0 {
		fmt.Fprintf(&b, ":for=%d", s.For)
	}
	if s.usesLatency() && s.Latency != defaultLatency {
		fmt.Fprintf(&b, ":latency=%s", s.Latency)
	}
	if s.usesCount() && s.Count != s.defaultCount() {
		fmt.Fprintf(&b, ":n=%d", s.Count)
	}
	return b.String()
}

func (s Spec) usesLatency() bool {
	return s.Kind == KindSlowInfer || s.Kind == KindStuckTransition ||
		s.Kind == KindSlowLoris
}

// matches reports whether the spec targets the named instance.
func (s Spec) matches(model string) bool {
	return s.Model == "" || s.Model == model
}

// active reports whether trigger event number ev (0-based) falls inside
// the spec's window.
func (s Spec) active(ev int) bool {
	if ev < s.After {
		return false
	}
	return s.For == 0 || ev < s.After+s.For
}

// ParseSpec parses one fault directive.
func ParseSpec(raw string) (Spec, error) {
	segs := strings.Split(strings.TrimSpace(raw), ":")
	if segs[0] == "" {
		return Spec{}, fmt.Errorf("fault: empty spec")
	}
	spec := Spec{Kind: Kind(segs[0])}
	known := false
	for _, k := range Kinds() {
		if spec.Kind == k {
			known = true
			break
		}
	}
	if !known {
		return Spec{}, fmt.Errorf("fault: unknown kind %q (have %v)", segs[0], Kinds())
	}
	if spec.usesLatency() {
		spec.Latency = defaultLatency
	}
	if spec.usesCount() {
		spec.Count = spec.defaultCount()
	}
	seen := make(map[string]bool, len(segs)-1)
	for i, seg := range segs[1:] {
		key, val, isParam := strings.Cut(seg, "=")
		if !isParam {
			if i != 0 {
				return Spec{}, fmt.Errorf("fault: %s: target %q must come right after the kind", spec.Kind, seg)
			}
			if seg == "" {
				return Spec{}, fmt.Errorf("fault: %s: empty target segment", spec.Kind)
			}
			if spec.Kind == KindOTLPOutage {
				return Spec{}, fmt.Errorf("fault: otlp-outage hits the shared collector and takes no instance target")
			}
			spec.Model = seg
			continue
		}
		// A repeated key is almost always a mangled drill schedule (two
		// specs merged by a lost comma); taking the last value silently
		// would arm a different window than the operator reviewed.
		if seen[key] {
			return Spec{}, fmt.Errorf("fault: %s: duplicate parameter %q", spec.Kind, key)
		}
		seen[key] = true
		var err error
		switch key {
		case "after":
			spec.After, err = parseCount(key, val, 0)
		case "for":
			spec.For, err = parseCount(key, val, 0)
		case "latency":
			if !spec.usesLatency() {
				return Spec{}, fmt.Errorf("fault: %s does not take latency=", spec.Kind)
			}
			spec.Latency, err = time.ParseDuration(val)
			if err == nil && spec.Latency <= 0 {
				err = fmt.Errorf("fault: latency %s must be positive", spec.Latency)
			}
		case "n":
			if !spec.usesCount() {
				return Spec{}, fmt.Errorf("fault: %s does not take n=", spec.Kind)
			}
			spec.Count, err = parseCount(key, val, 1)
		default:
			return Spec{}, fmt.Errorf("fault: %s: unknown parameter %q", spec.Kind, key)
		}
		if err != nil {
			return Spec{}, err
		}
	}
	return spec, nil
}

// maxCount bounds window and poison parameters, far above any real drill
// but small enough that After+For can never overflow.
const maxCount = 1 << 30

// parseCount parses a bounded non-negative integer parameter with a floor.
func parseCount(key, val string, min int) (int, error) {
	n, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("fault: bad %s=%q: %w", key, val, err)
	}
	if n < min {
		return 0, fmt.Errorf("fault: %s=%d below minimum %d", key, n, min)
	}
	if n > maxCount {
		return 0, fmt.Errorf("fault: %s=%d above maximum %d", key, n, maxCount)
	}
	return n, nil
}

// ParseSpecs parses a comma-separated spec list (the -chaos flag value).
func ParseSpecs(raw string) ([]Spec, error) {
	if strings.TrimSpace(raw) == "" {
		return nil, fmt.Errorf("fault: empty spec list")
	}
	var specs []Spec
	for _, part := range strings.Split(raw, ",") {
		spec, err := ParseSpec(part)
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// FormatSpecs renders a spec list back into the -chaos grammar,
// deterministically (input order preserved).
func FormatSpecs(specs []Spec) string {
	parts := make([]string, len(specs))
	for i, s := range specs {
		parts[i] = s.String()
	}
	return strings.Join(parts, ",")
}

// SpecKinds returns the sorted, deduplicated kinds present in a spec list
// (operator surfaces print what a drill arms).
func SpecKinds(specs []Spec) []Kind {
	seen := map[Kind]bool{}
	var kinds []Kind
	for _, s := range specs {
		if !seen[s.Kind] {
			seen[s.Kind] = true
			kinds = append(kinds, s.Kind)
		}
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}
