package fault

import (
	"bytes"
	"errors"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		raw  string
		want Spec
	}{
		{"nan-weights", Spec{Kind: KindNaNWeights, Count: defaultPoisonCount}},
		{"nan-weights:car2:after=50", Spec{Kind: KindNaNWeights, Model: "car2", After: 50, Count: defaultPoisonCount}},
		{"nan-weights:car1:after=5:for=3:n=2", Spec{Kind: KindNaNWeights, Model: "car1", After: 5, For: 3, Count: 2}},
		{"drop-frames:car0:for=4", Spec{Kind: KindDropFrames, Model: "car0", For: 4}},
		{"garble-frames", Spec{Kind: KindGarbleFrames}},
		{"slow-infer", Spec{Kind: KindSlowInfer, Latency: defaultLatency}},
		{"slow-infer:car3:latency=250ms", Spec{Kind: KindSlowInfer, Model: "car3", Latency: 250 * time.Millisecond}},
		{"stuck-transition:latency=1s", Spec{Kind: KindStuckTransition, Latency: time.Second}},
		{"otlp-outage:after=1:for=2", Spec{Kind: KindOTLPOutage, After: 1, For: 2}},
		{"store-corrupt", Spec{Kind: KindStoreCorrupt, Count: defaultCorruptBits}},
		{"store-corrupt:car1:n=2:for=1", Spec{Kind: KindStoreCorrupt, Model: "car1", For: 1, Count: 2}},
		{"  garble-frames  ", Spec{Kind: KindGarbleFrames}},
		{"conn-drop:car1:after=2", Spec{Kind: KindConnDrop, Model: "car1", After: 2}},
		{"slow-loris", Spec{Kind: KindSlowLoris, Latency: defaultLatency}},
		{"slow-loris:car2:latency=40ms:for=3", Spec{Kind: KindSlowLoris, Model: "car2", For: 3, Latency: 40 * time.Millisecond}},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.raw)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.raw, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.raw, got, c.want)
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	for _, raw := range []string{
		"",
		"   ",
		"meteor-strike",
		"nan-weights:car1:whatever=3",
		"nan-weights:after=1:car1",  // target after params
		"nan-weights:car1:bus2",     // two targets
		"drop-frames:car1:after=-1", // negative window
		"drop-frames:car1:after=x",
		"drop-frames:latency=9ms", // latency on a kind without stalls
		"slow-infer:latency=0s",
		"slow-infer:latency=-5ms",
		"garble-frames:n=4", // n on a kind without poison
		"drop-frames:n=4",   // likewise for the count-less frame kinds
		"nan-weights:car1:n=0",
		"store-corrupt:car1:n=0",
		"store-corrupt:latency=5ms",            // store corruption has no stall
		"otlp-outage:collector1",               // outage takes no target
		"nan-weights::after=1",                 // empty target segment
		"conn-drop:latency=5ms",                // conn-drop severs, it never stalls
		"drop-frames:after=1:after=2",          // duplicate key: silent last-wins is a mangled schedule
		"slow-infer:latency=10ms:latency=20ms", // duplicate key on a defaulted param
		"nan-weights:car1:n=2:for=1:n=3",       // duplicate key separated by another param
	} {
		if spec, err := ParseSpec(raw); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", raw, spec)
		}
	}
}

func TestParseSpecsListAndFormatRoundTrip(t *testing.T) {
	raw := "nan-weights:car1:after=5:for=3,drop-frames:car2,slow-infer:latency=75ms,store-corrupt:car1:n=2:for=1"
	specs, err := ParseSpecs(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs", len(specs))
	}
	again, err := ParseSpecs(FormatSpecs(specs))
	if err != nil {
		t.Fatalf("re-parse of %q: %v", FormatSpecs(specs), err)
	}
	for i := range specs {
		if specs[i] != again[i] {
			t.Errorf("spec %d: %+v != re-parsed %+v", i, specs[i], again[i])
		}
	}
	if _, err := ParseSpecs("drop-frames,,garble-frames"); err == nil {
		t.Error("empty list element accepted")
	}
	if _, err := ParseSpecs(""); err == nil {
		t.Error("empty list accepted")
	}
	kinds := SpecKinds(specs)
	if len(kinds) != 4 || kinds[0] != KindDropFrames {
		t.Errorf("SpecKinds = %v", kinds)
	}
}

// recorder counts fired faults per kind.
type recorder struct{ fired map[string]int }

func (r *recorder) ObserveFaultInjection(kind string) {
	if r.fired == nil {
		r.fired = map[string]int{}
	}
	r.fired[kind]++
}

func TestFrameWindowing(t *testing.T) {
	spec, err := ParseSpec("drop-frames:car1:after=2:for=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1, spec)
	rec := &recorder{}
	in.SetObserver(rec)
	frame := tensor.New(4)

	var drops []bool
	for i := 0; i < 6; i++ {
		_, drop, _ := in.OnFrame("car1", frame)
		drops = append(drops, drop)
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if drops[i] != want[i] {
			t.Errorf("event %d: drop=%v want %v (all %v)", i, drops[i], want[i], drops)
		}
	}
	if rec.fired[string(KindDropFrames)] != 2 {
		t.Errorf("observer saw %d drops, want 2", rec.fired[string(KindDropFrames)])
	}
	// Another instance is untargeted: its window never opens, and its
	// events don't advance car1's counter.
	if _, drop, _ := in.OnFrame("car2", frame); drop {
		t.Error("untargeted instance dropped a frame")
	}
}

func TestFrameGarbleAndSlow(t *testing.T) {
	specs, err := ParseSpecs("garble-frames:car0:for=1,slow-infer:car0:latency=7ms")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(42, specs...)
	frame := tensor.New(10)
	repl, drop, stall := in.OnFrame("car0", frame)
	if drop {
		t.Error("garble+slow dropped the frame")
	}
	if stall != 7*time.Millisecond {
		t.Errorf("stall = %v", stall)
	}
	if repl == nil {
		t.Fatal("no garbled replacement")
	}
	if repl.Len() >= frame.Len() {
		t.Fatalf("garbled frame has %d pixels, want a short read (< %d)", repl.Len(), frame.Len())
	}
	for i, v := range frame.Data() {
		if v != 0 {
			t.Fatalf("original frame mutated at %d: %v", i, v)
		}
	}
	sawNaN := false
	for _, v := range repl.Data() {
		if math.IsNaN(float64(v)) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Error("garbled frame carries no NaN pixels")
	}
	// Window for=1 closed: second frame passes clean.
	repl, _, stall = in.OnFrame("car0", frame)
	if repl != nil {
		t.Error("garble window did not close")
	}
	if stall == 0 {
		t.Error("slow-infer with no for= should stall forever")
	}
}

func TestGarbleDeterministicPerSeed(t *testing.T) {
	spec, err := ParseSpec("garble-frames")
	if err != nil {
		t.Fatal(err)
	}
	frame := tensor.New(16)
	a, _, _ := NewInjector(7, spec).OnFrame("car0", frame)
	b, _, _ := NewInjector(7, spec).OnFrame("car0", frame)
	c, _, _ := NewInjector(8, spec).OnFrame("car0", frame)
	for i := range a.Data() {
		av, bv := a.Data()[i], b.Data()[i]
		if av != bv && !(math.IsNaN(float64(av)) && math.IsNaN(float64(bv))) {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, av, bv)
		}
	}
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical garble")
	}
}

// testNet builds a tiny model held at a pruned level, so transitions have
// zeroed positions for the poison point to target.
func testNet(t *testing.T) *nn.Sequential {
	t.Helper()
	rng := tensor.NewRNG(3)
	m := nn.NewSequential("faultnet",
		nn.NewDense("fc1", 16, 8, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 8, 2, rng),
	)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	if err := rm.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPoisonPruned(t *testing.T) {
	m := testNet(t)
	zeros := 0
	for _, p := range m.PrunableParams() {
		for _, v := range p.Value.Data() {
			if v == 0 {
				zeros++
			}
		}
	}
	if zeros == 0 {
		t.Fatal("test model has no pruned positions")
	}
	n := PoisonPruned(m, 4)
	if n != 4 {
		t.Fatalf("poisoned %d, want 4", n)
	}
	nans := 0
	for _, p := range m.PrunableParams() {
		for _, v := range p.Value.Data() {
			if math.IsNaN(float64(v)) {
				nans++
			}
		}
	}
	if nans != 4 {
		t.Errorf("model carries %d NaNs, want 4", nans)
	}
	// Budget above the zero population: poisons every zero and stops.
	m2 := testNet(t)
	if n := PoisonPruned(m2, 1<<20); n != zeros {
		t.Errorf("unbounded poison wrote %d, want %d (every pruned position)", n, zeros)
	}
}

func TestTransitionPoint(t *testing.T) {
	specs, err := ParseSpecs("nan-weights:car1:n=3,stuck-transition:car1:latency=9ms:for=1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(5, specs...)
	rec := &recorder{}
	in.SetObserver(rec)
	m := testNet(t)

	if stall := in.OnTransition("car1", 1, m); stall != 9*time.Millisecond {
		t.Errorf("stall = %v", stall)
	}
	nans := 0
	for _, p := range m.PrunableParams() {
		for _, v := range p.Value.Data() {
			if math.IsNaN(float64(v)) {
				nans++
			}
		}
	}
	if nans != 3 {
		t.Errorf("transition to L1 poisoned %d weights, want 3", nans)
	}
	// Restores (to == 0) are never poisoned — the point is that L0 heals.
	m2 := testNet(t)
	if in.OnTransition("car1", 0, m2); countNaNs(m2) != 0 {
		t.Error("restore transition was poisoned")
	}
	if rec.fired[string(KindStuckTransition)] != 1 {
		t.Errorf("stuck-transition fired %d times, want 1 (for=1)", rec.fired[string(KindStuckTransition)])
	}
}

// stubCorruptor records CorruptDisplaced calls and pretends every requested
// bit flipped.
type stubCorruptor struct {
	calls int
	ns    []int
	seeds []int64
}

func (s *stubCorruptor) CorruptDisplaced(n int, seed int64) int {
	s.calls++
	s.ns = append(s.ns, n)
	s.seeds = append(s.seeds, seed)
	return n
}

func TestStorePoint(t *testing.T) {
	specs, err := ParseSpecs("store-corrupt:car1:after=1:for=2:n=3")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(11, specs...)
	rec := &recorder{}
	in.SetObserver(rec)
	st := &stubCorruptor{}

	// Event 0 is before the window; events 1 and 2 fire; event 3 is past it.
	var flipped []int
	for i := 0; i < 4; i++ {
		flipped = append(flipped, in.OnStore("car1", st))
	}
	if want := []int{0, 3, 3, 0}; !equalInts(flipped, want) {
		t.Errorf("flipped per event = %v, want %v", flipped, want)
	}
	if st.calls != 2 {
		t.Errorf("corruptor called %d times, want 2", st.calls)
	}
	for _, n := range st.ns {
		if n != 3 {
			t.Errorf("corruptor asked for %d bits, want 3 (n=3)", n)
		}
	}
	if len(st.seeds) == 2 && st.seeds[0] == st.seeds[1] {
		t.Error("both firings drew the same corruption seed")
	}
	if rec.fired[string(KindStoreCorrupt)] != 2 {
		t.Errorf("observer saw %d store corruptions, want 2", rec.fired[string(KindStoreCorrupt)])
	}
	// Untargeted instance: window never opens, counters independent.
	if n := in.OnStore("car2", st); n != 0 {
		t.Error("untargeted instance's store was corrupted")
	}
	// Nil corruptor (an instance without a reversible store) is a no-op.
	if n := in.OnStore("car1", nil); n != 0 {
		t.Error("nil corruptor reported flips")
	}
}

// TestStorePointDeterministicPerSeed drives the store point against a real
// reversible model twice with the same injector seed and asserts the damage
// lands on identical bits — the replayability contract of a chaos drill.
func TestStorePointDeterministicPerSeed(t *testing.T) {
	spec, err := ParseSpec("store-corrupt:n=2")
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(seed int64) []byte {
		rng := tensor.NewRNG(3)
		m := nn.NewSequential("faultnet",
			nn.NewDense("fc1", 16, 8, rng),
			nn.NewReLU("relu"),
			nn.NewDense("fc2", 8, 2, rng),
		)
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5})
		if err != nil {
			t.Fatal(err)
		}
		rm, err := core.Build(m, plans)
		if err != nil {
			t.Fatal(err)
		}
		if err := rm.ApplyLevel(1); err != nil {
			t.Fatal(err)
		}
		in := NewInjector(seed, spec)
		if n := in.OnStore("car0", rm); n != 2 {
			t.Fatalf("flipped %d bits, want 2", n)
		}
		if err := rm.Store().Verify(); err == nil {
			t.Fatal("corruption tripped no level checksum")
		}
		var buf bytes.Buffer
		if err := rm.Store().WriteRecovery(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := corrupt(21), corrupt(21), corrupt(22)
	if !bytes.Equal(a, b) {
		t.Error("same seed flipped different bits")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds flipped identical bits")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func countNaNs(m *nn.Sequential) int {
	n := 0
	for _, p := range m.PrunableParams() {
		for _, v := range p.Value.Data() {
			if math.IsNaN(float64(v)) {
				n++
			}
		}
	}
	return n
}

// errIfCalled fails the test if a request escapes the outage window.
type errIfCalled struct{ t *testing.T }

func (rt errIfCalled) RoundTrip(req *http.Request) (*http.Response, error) {
	rt.t.Error("request reached base transport during outage window")
	return nil, errors.New("unexpected")
}

func TestOutageTransport(t *testing.T) {
	spec, err := ParseSpec("otlp-outage:for=2")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1, spec)
	rec := &recorder{}
	in.SetObserver(rec)
	rt := in.Transport(errIfCalled{t})
	req, err := http.NewRequest(http.MethodPost, "http://collector.invalid/v1/metrics", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := rt.RoundTrip(req); err == nil || !strings.Contains(err.Error(), "outage") {
			t.Fatalf("attempt %d: err = %v, want injected outage", i, err)
		}
	}
	if rec.fired[string(KindOTLPOutage)] != 2 {
		t.Errorf("observer saw %d outages, want 2", rec.fired[string(KindOTLPOutage)])
	}
	// Window closed: the base transport answers (here: a stub error path is
	// fine — use a transport that records the pass-through).
	passed := false
	rt = in.Transport(roundTripFunc(func(*http.Request) (*http.Response, error) {
		passed = true
		return nil, errors.New("base")
	}))
	if _, err := rt.RoundTrip(req); err == nil || err.Error() != "base" {
		t.Errorf("post-window err = %v, want base transport's", err)
	}
	if !passed {
		t.Error("post-window request never reached the base transport")
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(r *http.Request) (*http.Response, error) { return f(r) }

func TestInertInjector(t *testing.T) {
	in := NewInjector(0)
	frame := tensor.New(4)
	if repl, drop, stall := in.OnFrame("car0", frame); repl != nil || drop || stall != 0 {
		t.Error("spec-less injector fired at the frame point")
	}
	if stall := in.OnTransition("car0", 1, testNet(t)); stall != 0 {
		t.Error("spec-less injector fired at the transition point")
	}
	if n := in.OnStore("car0", &stubCorruptor{}); n != 0 {
		t.Error("spec-less injector fired at the store point")
	}
	if in.OnExport() {
		t.Error("spec-less injector fired at the export point")
	}
	if drop, stall := in.OnWire("car0", []byte{1, 2, 3}); drop || stall != 0 {
		t.Error("spec-less injector fired at the wire point")
	}
	if len(in.Specs()) != 0 {
		t.Error("Specs() not empty")
	}
}

func TestWirePoint(t *testing.T) {
	specs, err := ParseSpecs("conn-drop:car1:after=2:for=1,slow-loris:car2:latency=25ms:for=2,garble-frames:car3:for=1")
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(7, specs...)
	rec := &recorder{}
	in.SetObserver(rec)

	// conn-drop: events 0,1 pass, event 2 severs, event 3 is past the window.
	for ev := 0; ev < 4; ev++ {
		drop, stall := in.OnWire("car1", []byte{9})
		if stall != 0 {
			t.Fatalf("car1 event %d: unexpected stall %v", ev, stall)
		}
		if want := ev == 2; drop != want {
			t.Errorf("car1 event %d: drop = %v, want %v", ev, drop, want)
		}
	}
	// slow-loris: first two events stall by the spec latency, then the
	// window closes; the connection is never severed.
	for ev := 0; ev < 3; ev++ {
		drop, stall := in.OnWire("car2", []byte{9})
		if drop {
			t.Fatalf("car2 event %d: slow-loris severed the connection", ev)
		}
		want := time.Duration(0)
		if ev < 2 {
			want = 25 * time.Millisecond
		}
		if stall != want {
			t.Errorf("car2 event %d: stall = %v, want %v", ev, stall, want)
		}
	}
	// garble-frames at the wire point corrupts the payload in place.
	payload := bytes.Repeat([]byte{0xAA}, 64)
	pristine := bytes.Clone(payload)
	if drop, stall := in.OnWire("car3", payload); drop || stall != 0 {
		t.Fatal("garble-frames must neither sever nor stall")
	}
	if bytes.Equal(payload, pristine) {
		t.Error("armed garble window left the payload untouched")
	}
	// Untargeted peers pass clean.
	other := bytes.Clone(pristine)
	if drop, stall := in.OnWire("car9", other); drop || stall != 0 || !bytes.Equal(other, pristine) {
		t.Error("wire point touched an untargeted peer")
	}
	if rec.fired[string(KindConnDrop)] != 1 || rec.fired[string(KindSlowLoris)] != 2 || rec.fired[string(KindGarbleFrames)] != 1 {
		t.Errorf("observer counts = %v", rec.fired)
	}
}

func TestWireGarbleDeterministicPerSeed(t *testing.T) {
	spec, err := ParseSpec("garble-frames")
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(seed int64) []byte {
		p := bytes.Repeat([]byte{0x55}, 128)
		NewInjector(seed, spec).OnWire("car0", p)
		return p
	}
	if !bytes.Equal(mutate(3), mutate(3)) {
		t.Error("same seed produced different wire corruption")
	}
	if bytes.Equal(mutate(3), mutate(4)) {
		t.Error("different seeds produced identical wire corruption")
	}
}
