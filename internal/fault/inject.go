package fault

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Observer is notified every time an armed fault actually fires, with the
// fault kind. telemetry.Hooks satisfies it structurally
// (ObserveFaultInjection → rpn_fault_injections_total{fault="<kind>"}).
type Observer interface {
	ObserveFaultInjection(kind string)
}

// armed is one spec plus its per-instance trigger-event counters.
type armed struct {
	spec Spec
	// events counts trigger events per instance name at this spec's fault
	// point, so windows advance independently per instance even when the
	// spec targets all of them.
	events map[string]int
}

// Injector owns the armed specs and the fault points the stack calls. All
// randomness flows from the construction seed and all windowing from
// per-spec event counters, so a drill replays identically: same seed, same
// schedule of calls, same faults.
//
// All methods are safe for concurrent use (fault points are called from
// vehicle loops, dispatcher workers, budget-governor passes, and the OTLP
// transport at once).
type Injector struct {
	mu    sync.Mutex
	specs []*armed
	rng   *rand.Rand
	obs   Observer
}

// NewInjector arms the specs over a deterministic RNG.
func NewInjector(seed int64, specs ...Spec) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	for _, s := range specs {
		in.specs = append(in.specs, &armed{spec: s, events: map[string]int{}})
	}
	return in
}

// SetObserver installs (or, with nil, removes) the fired-fault observer.
func (in *Injector) SetObserver(o Observer) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.obs = o
}

// Specs returns a copy of the armed specs.
func (in *Injector) Specs() []Spec {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Spec, len(in.specs))
	for i, a := range in.specs {
		out[i] = a.spec
	}
	return out
}

// fire advances the event counter of every armed spec of the given kinds
// matching the instance and returns the specs whose windows are open.
// Caller must hold in.mu.
func (in *Injector) fire(model string, kinds ...Kind) []Spec {
	var hits []Spec
	for _, a := range in.specs {
		match := false
		for _, k := range kinds {
			if a.spec.Kind == k {
				match = true
				break
			}
		}
		if !match || !a.spec.matches(model) {
			continue
		}
		ev := a.events[model]
		a.events[model] = ev + 1
		if a.spec.active(ev) {
			hits = append(hits, a.spec)
			if in.obs != nil {
				in.obs.ObserveFaultInjection(string(a.spec.Kind))
			}
		}
	}
	return hits
}

// OnFrame is the frame fault point, called once per frame before the
// forward pass. It returns a replacement frame (nil: use the original),
// whether the frame should be reported lost, and how long the caller must
// stall before inference. Each armed frame-kind spec counts this call as
// one trigger event for the instance.
func (in *Injector) OnFrame(model string, frame *tensor.Tensor) (replacement *tensor.Tensor, drop bool, stall time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, spec := range in.fire(model, KindDropFrames, KindGarbleFrames, KindSlowInfer) {
		switch spec.Kind {
		case KindDropFrames:
			drop = true
		case KindGarbleFrames:
			if frame != nil {
				replacement = in.garble(frame)
			}
		case KindSlowInfer:
			if spec.Latency > stall {
				stall = spec.Latency
			}
		}
	}
	return replacement, drop, stall
}

// garble returns a corrupted copy of the frame: a short read (three
// quarters of the pixels — a truncated DMA transfer) filled with random
// sensor garbage and NaN pixels. The truncation is the load-bearing part:
// the pipeline rejects the geometry mismatch deterministically, whereas
// in-range garbage (even NaN — ReLU zeroes it) can wash out inside the
// network and pass as noise. Caller holds in.mu.
func (in *Injector) garble(frame *tensor.Tensor) *tensor.Tensor {
	short := frame.Len() * 3 / 4
	if short < 1 {
		short = 1
	}
	g := tensor.New(short)
	data := g.Data()
	for i := range data {
		if i%5 == 0 {
			data[i] = float32(math.NaN())
		} else {
			data[i] = in.rng.Float32()*2000 - 1000
		}
	}
	return g
}

// OnWire is the network fault point, called by the ingest listener once
// per received message with the peer's vehicle name and the raw payload
// bytes (length prefix stripped). It reports whether the connection must
// be severed (conn-drop), how long the read loop must stall first
// (slow-loris), and corrupts the payload in place for armed garble-frames
// specs — flipped bits the decoder downstream must reject, the wire-level
// shape of the dying-camera burst OnFrame produces in-process. Each armed
// wire-kind spec counts this call as one trigger event for the peer.
func (in *Injector) OnWire(peer string, payload []byte) (drop bool, stall time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, spec := range in.fire(peer, KindConnDrop, KindSlowLoris, KindGarbleFrames) {
		switch spec.Kind {
		case KindConnDrop:
			drop = true
		case KindSlowLoris:
			if spec.Latency > stall {
				stall = spec.Latency
			}
		case KindGarbleFrames:
			// Flip one bit in each of up to 16 pseudo-random payload
			// positions. The wire format is checksummed by structure (magic,
			// type, bounded lengths), so scattered flips surface as typed
			// decode errors rather than silently different tensors.
			for i := 0; i < 16 && len(payload) > 0; i++ {
				pos := in.rng.Intn(len(payload))
				payload[pos] ^= 1 << uint(in.rng.Intn(8))
			}
		}
	}
	return drop, stall
}

// OnTransition is the transition fault point, called with the instance
// lock held after every completed level change (to is the new level; m the
// live model). It poisons weights per armed nan-weights specs and returns
// how long the caller must stall before releasing the lock (a stuck
// transition). Each armed transition-kind spec counts this call as one
// trigger event for the instance.
func (in *Injector) OnTransition(model string, to int, m *nn.Sequential) (stall time.Duration) {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, spec := range in.fire(model, KindNaNWeights, KindStuckTransition) {
		switch spec.Kind {
		case KindNaNWeights:
			// Poison only at pruned levels: L0 restores just overwrote every
			// pruned position, and corrupting a dense position would be
			// unrecoverable by design (the store covers pruned positions).
			if to > 0 && m != nil {
				PoisonPruned(m, spec.Count)
			}
		case KindStuckTransition:
			if spec.Latency > stall {
				stall = spec.Latency
			}
		}
	}
	return stall
}

// StoreCorruptor is the seam through which the store fault point reaches a
// recovery store without importing internal/core: CorruptDisplaced flips
// one pseudo-random bit in each of n displaced values, deterministically
// from seed, and returns how many bits it flipped.
// core.ReversibleModel implements it.
type StoreCorruptor interface {
	CorruptDisplaced(n int, seed int64) int
}

// OnStore is the recovery-store fault point, called with the instance lock
// held after every completed level change. Armed store-corrupt specs flip
// bits in the instance's displaced values (the seed flows from the
// injector RNG, so a drill replays bit-for-bit); the return value is the
// total number of bits flipped. The damage is silent here by design — it
// surfaces only when a checksum-verified restore later refuses to run.
//
// Corruption reaches everything that shares the store, so harnesses arm it
// only on instances whose stores are unshared (simdrive builds chaos-armed
// cars over private stores for exactly this reason).
func (in *Injector) OnStore(model string, st StoreCorruptor) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	flipped := 0
	for _, spec := range in.fire(model, KindStoreCorrupt) {
		if st != nil {
			flipped += st.CorruptDisplaced(spec.Count, in.rng.Int63())
		}
	}
	return flipped
}

// PoisonPruned overwrites up to n currently-zero prunable weights with
// NaN, walking parameters in deterministic reverse order — output side
// first — and returns how many it wrote. Reverse order matters: NaN in an
// early layer dies at the next ReLU (max(0, NaN) is implemented as
// v > 0, which is false), while NaN in the head's weights reaches the
// logits (NaN·x is NaN even for x = 0) and trips the NaN watchdog.
// Because only pruned (zeroed) positions are touched, a restore to L0 —
// which writes the displaced dense values back over every pruned position —
// genuinely heals the corruption; this is the same recoverability boundary
// the bit-flip experiment (internal/faults) measures.
func PoisonPruned(m *nn.Sequential, n int) int {
	poisoned := 0
	nan := float32(math.NaN())
	params := m.PrunableParams()
	for k := len(params) - 1; k >= 0; k-- {
		data := params[k].Value.Data()
		for i := range data {
			if poisoned >= n {
				return poisoned
			}
			if data[i] == 0 { //lint:allow(floateq) pruned positions are exactly zero by construction
				data[i] = nan
				poisoned++
			}
		}
	}
	return poisoned
}

// OnExport is the OTLP fault point: it reports whether this collector POST
// should fail. Each armed otlp-outage spec counts one trigger event per
// call (the exporter's retries each count, so a window of 2 fails exactly
// two attempts).
func (in *Injector) OnExport() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.fire("", KindOTLPOutage)) > 0
}

// Transport wraps an http.RoundTripper so armed otlp-outage windows fail
// requests with a transport error before they reach the network — the
// exporter sees a retryable network failure, exactly what a collector
// outage looks like. base nil defaults to http.DefaultTransport.
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return outageTransport{in: in, base: base}
}

// outageTransport is the RoundTripper Transport returns.
type outageTransport struct {
	in   *Injector
	base http.RoundTripper
}

// RoundTrip fails the request during an armed outage window.
func (t outageTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.in.OnExport() {
		return nil, fmt.Errorf("fault: injected collector outage")
	}
	return t.base.RoundTrip(req)
}
