package fault

import (
	"strings"
	"testing"
)

// FuzzParseFaultSpec hammers the -chaos grammar: ParseSpecs must never
// panic, and every accepted spec list must render (FormatSpecs) back into
// a string that re-parses to the identical specs — the canonical-form
// round-trip property that keeps the grammar and its printer honest.
// scripts/verify.sh runs this as a 5 s smoke.
func FuzzParseFaultSpec(f *testing.F) {
	f.Add("nan-weights:car2:after=50")
	f.Add("nan-weights:car1:after=5:for=3:n=2,drop-frames:car2")
	f.Add("garble-frames,slow-infer:latency=250ms,stuck-transition:car0:latency=1s")
	f.Add("otlp-outage:after=1:for=2")
	f.Add("drop-frames:car0:for=4")
	f.Add(":::")
	f.Add("nan-weights:car1:after=999999999999999999999")
	f.Add("slow-infer:latency=-3ms")
	f.Add("a,b,c")
	f.Fuzz(func(t *testing.T, raw string) {
		specs, err := ParseSpecs(raw)
		if err != nil {
			return
		}
		if len(specs) == 0 {
			t.Fatalf("ParseSpecs(%q) accepted with no specs", raw)
		}
		rendered := FormatSpecs(specs)
		again, err := ParseSpecs(rendered)
		if err != nil {
			t.Fatalf("ParseSpecs(%q) ok but re-parse of %q failed: %v", raw, rendered, err)
		}
		if len(again) != len(specs) {
			t.Fatalf("round trip changed spec count: %d → %d", len(specs), len(again))
		}
		for i := range specs {
			if specs[i] != again[i] {
				t.Fatalf("spec %d did not round-trip: %+v vs %+v (rendered %q)", i, specs[i], again[i], rendered)
			}
		}
		// Accepted windows must behave: closed before After, open at After,
		// closed again once a finite For elapses.
		for _, s := range specs {
			if s.After > 0 && s.active(s.After-1) {
				t.Fatalf("spec %+v active before its window", s)
			}
			if !s.active(s.After) {
				t.Fatalf("spec %+v inactive at window start", s)
			}
			if s.For > 0 && s.active(s.After+s.For) {
				t.Fatalf("spec %+v active past its window", s)
			}
		}
		if strings.TrimSpace(rendered) != rendered {
			t.Fatalf("FormatSpecs produced padded output %q", rendered)
		}
	})
}
