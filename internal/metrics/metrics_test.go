package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta", "22")
	if tb.NumRows() != 2 {
		t.Fatalf("NumRows = %d", tb.NumRows())
	}
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "alpha") {
		t.Errorf("text rendering missing content:\n%s", s)
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| name | value |") || !strings.Contains(md, "| beta | 22 |") {
		t.Errorf("markdown rendering wrong:\n%s", md)
	}
}

func TestTableRejectsWrongArity(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Error(F(3.14159, 2))
	}
	if Pct(0.123) != "12.3%" {
		t.Error(Pct(0.123))
	}
	if SI(1500) != "1.5k" || SI(2.5e6) != "2.5M" || SI(3e9) != "3.0G" || SI(12) != "12.0" {
		t.Errorf("SI wrong: %s %s %s %s", SI(1500), SI(2.5e6), SI(3e9), SI(12))
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Percentile(xs, 0) != 1 || Percentile(xs, 100) != 4 {
		t.Error("extremes wrong")
	}
	if got := Percentile(xs, 50); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("median = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Percentile mutated input")
	}
	if Percentile([]float64{7}, 99) != 7 {
		t.Error("singleton wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanSum(t *testing.T) {
	if Mean(nil) != 0 || Sum(nil) != 0 {
		t.Error("empty aggregates wrong")
	}
	if Mean([]float64{1, 2, 3}) != 2 || Sum([]float64{1, 2, 3}) != 6 {
		t.Error("aggregates wrong")
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Record("a", 1)
	r.Record("b", 10)
	r.Record("a", 2)
	if r.Len("a") != 2 || r.Len("b") != 1 {
		t.Error("lengths wrong")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("names = %v", names)
	}
	if r.Series("a")[1] != 2 {
		t.Error("series values wrong")
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "tick,a,b\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	if !strings.Contains(csv, "1,2,") { // b padded empty at tick 1
		t.Errorf("csv padding wrong:\n%s", csv)
	}
}

func TestConfusionMatrix(t *testing.T) {
	cm := NewConfusionMatrix(2)
	cm.Add(0, 0)
	cm.Add(0, 1)
	cm.Add(1, 1)
	cm.Add(1, 1)
	if cm.At(0, 1) != 1 || cm.At(1, 1) != 2 {
		t.Error("counts wrong")
	}
	if math.Abs(cm.Accuracy()-0.75) > 1e-12 {
		t.Errorf("accuracy = %v", cm.Accuracy())
	}
	if math.Abs(cm.Recall(0)-0.5) > 1e-12 || cm.Recall(1) != 1 {
		t.Errorf("recall = %v / %v", cm.Recall(0), cm.Recall(1))
	}
	empty := NewConfusionMatrix(3)
	if empty.Accuracy() != 0 || empty.Recall(0) != 0 {
		t.Error("empty matrix aggregates wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cm.Add(2, 0)
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("x", "name", "value")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `has "quotes"`)
	csv := tb.CSV()
	want := "name,value\nplain,1\n\"with,comma\",\"has \"\"quotes\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}
