package metrics

import "fmt"

// ApproxEqual reports whether a and b differ by at most eps. It is the
// project-wide epsilon comparison the floateq analyzer steers float
// equality toward: accuracy targets, sparsity fractions, and calibration
// values accumulate rounding differently across kernels, so exact ==/!= on
// them is only permitted where bit identity is the point (and then carries
// a //lint:allow(floateq) comment). NaN operands compare unequal to
// everything, matching IEEE semantics.
func ApproxEqual[T ~float32 | ~float64](a, b, eps T) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

// failf panics with the formatted message. It is this package's single
// sanctioned panic site: table shape and confusion-matrix index errors are
// documented programmer-error invariants, not runtime conditions.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
