// Package metrics provides the reporting primitives shared by the
// experiment harness: aligned-text/markdown tables, time series recording,
// percentile statistics, and confusion matrices.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a simple column-aligned results table, rendered either as padded
// text (for terminals) or markdown (for EXPERIMENTS.md).
type Table struct {
	// Title is printed above the table.
	Title string
	// Header names the columns.
	Header []string
	rows   [][]string
}

// NewTable constructs a table with the given title and column names.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; the cell count must match the header.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Header) {
		failf("metrics: row with %d cells for %d columns", len(cells), len(t.Header))
	}
	t.rows = append(t.rows, cells)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns the row data (shared; do not mutate).
func (t *Table) Rows() [][]string { return t.rows }

// String renders the table as padded text.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Header, " | "))
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	fmt.Fprintf(&b, "| %s |\n", strings.Join(seps, " | "))
	for _, row := range t.rows {
		fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted), for plot scripts.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given number of decimals.
func F(v float64, decimals int) string {
	return fmt.Sprintf("%.*f", decimals, v)
}

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// SI formats a value with an SI suffix (k, M, G) at one decimal.
func SI(v float64) string {
	switch {
	case math.Abs(v) >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case math.Abs(v) >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case math.Abs(v) >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation. It panics on an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		failf("metrics: Percentile of empty slice")
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, v := range xs {
		s += v
	}
	return s
}

// Recorder accumulates named time series tick by tick, for adaptation
// timeline figures.
type Recorder struct {
	order []string
	data  map[string][]float64
}

// NewRecorder constructs an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{data: make(map[string][]float64)}
}

// Record appends v to the named series.
func (r *Recorder) Record(name string, v float64) {
	if _, ok := r.data[name]; !ok {
		r.order = append(r.order, name)
	}
	r.data[name] = append(r.data[name], v)
}

// Series returns the named series (shared slice), or nil.
func (r *Recorder) Series(name string) []float64 { return r.data[name] }

// Names returns the series names in first-recorded order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// Len returns the length of the named series.
func (r *Recorder) Len(name string) int { return len(r.data[name]) }

// CSV renders all series column-wise with a tick index, padding shorter
// series with empty cells.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("tick")
	maxLen := 0
	for _, name := range r.order {
		fmt.Fprintf(&b, ",%s", name)
		if len(r.data[name]) > maxLen {
			maxLen = len(r.data[name])
		}
	}
	b.WriteString("\n")
	for i := 0; i < maxLen; i++ {
		fmt.Fprintf(&b, "%d", i)
		for _, name := range r.order {
			s := r.data[name]
			if i < len(s) {
				fmt.Fprintf(&b, ",%g", s[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// ConfusionMatrix counts predictions per (true class, predicted class).
type ConfusionMatrix struct {
	k      int
	counts []int
}

// NewConfusionMatrix constructs a k-class confusion matrix.
func NewConfusionMatrix(k int) *ConfusionMatrix {
	if k <= 0 {
		failf("metrics: NewConfusionMatrix(%d)", k)
	}
	return &ConfusionMatrix{k: k, counts: make([]int, k*k)}
}

// Add records one (true, predicted) observation.
func (c *ConfusionMatrix) Add(trueClass, predClass int) {
	if trueClass < 0 || trueClass >= c.k || predClass < 0 || predClass >= c.k {
		failf("metrics: confusion Add(%d,%d) for k=%d", trueClass, predClass, c.k)
	}
	c.counts[trueClass*c.k+predClass]++
}

// At returns the count for (true, predicted).
func (c *ConfusionMatrix) At(trueClass, predClass int) int {
	return c.counts[trueClass*c.k+predClass]
}

// Accuracy returns the diagonal fraction (0 for an empty matrix).
func (c *ConfusionMatrix) Accuracy() float64 {
	diag, total := 0, 0
	for i := 0; i < c.k; i++ {
		for j := 0; j < c.k; j++ {
			n := c.counts[i*c.k+j]
			total += n
			if i == j {
				diag += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(diag) / float64(total)
}

// Recall returns the recall of the given class (0 when the class is absent).
func (c *ConfusionMatrix) Recall(class int) float64 {
	var hit, total int
	for j := 0; j < c.k; j++ {
		n := c.counts[class*c.k+j]
		total += n
		if j == class {
			hit += n
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}
