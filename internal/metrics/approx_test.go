package metrics

import (
	"math"
	"testing"
)

func TestApproxEqualFloat64(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-12, 1e-9, true},
		{1, 1 + 1e-6, 1e-9, false},
		{-3, -3.0000005, 1e-6, true},
		{0, 1e-9, 1e-9, true}, // boundary: |a-b| == eps counts as equal
		{0, 2e-9, 1e-9, false},
		{5, -5, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestApproxEqualFloat32(t *testing.T) {
	if !ApproxEqual(float32(0.1)+float32(0.2), float32(0.3), 1e-6) {
		t.Error("float32 0.1+0.2 should approximate 0.3 at eps 1e-6")
	}
	if ApproxEqual(float32(1), float32(1.01), 1e-6) {
		t.Error("float32 1 and 1.01 should not approximate at eps 1e-6")
	}
}

func TestApproxEqualNaN(t *testing.T) {
	nan := math.NaN()
	if ApproxEqual(nan, nan, 1) {
		t.Error("NaN must not compare equal to NaN")
	}
	if ApproxEqual(nan, 0, math.Inf(1)) {
		t.Error("NaN must not compare equal to anything, even with infinite eps")
	}
	// Inf-Inf is NaN, so infinities never approximate anything — callers
	// comparing possibly-infinite values must handle them beforehand.
	if ApproxEqual(math.Inf(1), math.Inf(1), 1) {
		t.Error("+Inf vs +Inf should be false: the difference is NaN")
	}
}
