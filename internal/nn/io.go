package nn

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/tensor"
)

// Model weight serialization format (little-endian):
//
//	magic   uint32 0x4D4E5252 ("RRNM")
//	count   uint32 number of named tensors
//	entries count × { nameLen uint16, name bytes, tensor }
//
// Named tensors comprise every trainable parameter plus, for each BatchNorm
// layer, its running mean and variance under "<layer>/running_mean" and
// "<layer>/running_var". Loading matches strictly by name and shape; a
// checkpoint from a different architecture is rejected rather than silently
// misapplied.

const modelMagic uint32 = 0x4D4E5252

type namedTensor struct {
	name string
	t    *tensor.Tensor
}

func (m *Sequential) namedTensors() []namedTensor {
	var nts []namedTensor
	for _, l := range m.layers {
		for _, p := range l.Params() {
			nts = append(nts, namedTensor{p.Name, p.Value})
		}
		if bn, ok := l.(*BatchNorm); ok {
			mean, variance := bn.RunningStats()
			nts = append(nts,
				namedTensor{bn.Name() + "/running_mean", tensor.FromSlice(mean, len(mean))},
				namedTensor{bn.Name() + "/running_var", tensor.FromSlice(variance, len(variance))},
			)
		}
	}
	return nts
}

// SaveWeights serializes the model's weights (and normalization statistics)
// to w.
func (m *Sequential) SaveWeights(w io.Writer) error {
	nts := m.namedTensors()
	hdr := make([]byte, 8)
	binary.LittleEndian.PutUint32(hdr[0:], modelMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(nts)))
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("nn: save %q header: %w", m.name, err)
	}
	for _, nt := range nts {
		if len(nt.name) > 0xFFFF {
			return fmt.Errorf("nn: save %q: name %q too long", m.name, nt.name)
		}
		nb := make([]byte, 2+len(nt.name))
		binary.LittleEndian.PutUint16(nb, uint16(len(nt.name)))
		copy(nb[2:], nt.name)
		if _, err := w.Write(nb); err != nil {
			return fmt.Errorf("nn: save %q entry %q: %w", m.name, nt.name, err)
		}
		if _, err := nt.t.WriteTo(w); err != nil {
			return fmt.Errorf("nn: save %q tensor %q: %w", m.name, nt.name, err)
		}
	}
	return nil
}

// LoadWeights reads weights saved by SaveWeights into the model. Every
// stored tensor must match an existing tensor by name and shape, and every
// model tensor must be present in the stream.
func (m *Sequential) LoadWeights(r io.Reader) error {
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return fmt.Errorf("nn: load %q header: %w", m.name, err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != modelMagic {
		return fmt.Errorf("nn: load %q: bad magic %#x", m.name, got)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))

	want := m.namedTensors()
	index := make(map[string]*tensor.Tensor, len(want))
	for _, nt := range want {
		index[nt.name] = nt.t
	}
	if count != len(want) {
		return fmt.Errorf("nn: load %q: stream has %d tensors, model has %d", m.name, count, len(want))
	}

	loadedBN := make(map[string][]float32)
	for i := 0; i < count; i++ {
		lb := make([]byte, 2)
		if _, err := io.ReadFull(r, lb); err != nil {
			return fmt.Errorf("nn: load %q entry %d: %w", m.name, i, err)
		}
		nameBuf := make([]byte, binary.LittleEndian.Uint16(lb))
		if _, err := io.ReadFull(r, nameBuf); err != nil {
			return fmt.Errorf("nn: load %q entry %d name: %w", m.name, i, err)
		}
		name := string(nameBuf)
		t, err := tensor.ReadTensor(r)
		if err != nil {
			return fmt.Errorf("nn: load %q tensor %q: %w", m.name, name, err)
		}
		dst, ok := index[name]
		if !ok {
			return fmt.Errorf("nn: load %q: unexpected tensor %q", m.name, name)
		}
		if !tensor.SameShape(dst, t) {
			return fmt.Errorf("nn: load %q: tensor %q shape %v, model wants %v", m.name, name, t.Shape(), dst.Shape())
		}
		dst.CopyFrom(t)
		delete(index, name)
		loadedBN[name] = t.Data()
	}
	if len(index) > 0 {
		for name := range index {
			return fmt.Errorf("nn: load %q: stream missing tensor %q", m.name, name)
		}
	}
	// Running stats were copied into the temporary FromSlice views produced
	// by namedTensors, which share backing arrays with the BatchNorm layers
	// only for the save path. Re-apply them explicitly for the load path.
	for _, l := range m.layers {
		if bn, ok := l.(*BatchNorm); ok {
			mean, okM := loadedBN[bn.Name()+"/running_mean"]
			variance, okV := loadedBN[bn.Name()+"/running_var"]
			if okM && okV {
				bn.SetRunningStats(mean, variance)
			}
		}
	}
	return nil
}

// EncodeWeights serializes the model weights to a byte slice.
func (m *Sequential) EncodeWeights() ([]byte, error) {
	var buf bytes.Buffer
	if err := m.SaveWeights(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeWeights loads model weights from a byte slice produced by
// EncodeWeights.
func (m *Sequential) DecodeWeights(b []byte) error {
	return m.LoadWeights(bytes.NewReader(b))
}

// WeightsSize returns the encoded size in bytes of the model's checkpoint.
func (m *Sequential) WeightsSize() int {
	n := 8
	for _, nt := range m.namedTensors() {
		n += 2 + len(nt.name) + nt.t.EncodedSize()
	}
	return n
}
