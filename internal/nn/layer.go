// Package nn implements the neural-network substrate: layers with forward
// and backward passes, parameter handling, sequential models, and model
// serialization. It is the stack the pruning and reversible-runtime layers
// operate on.
//
// Conventions:
//   - Activations flow as batch-major tensors: 2-D [B, F] for dense paths
//     and 4-D [B, C, H, W] for convolutional paths.
//   - Layers are stateful: Forward caches whatever Backward needs, so a
//     model instance must not be shared between concurrent goroutines.
//   - Weights are float32 and exposed via named Params so the pruning layer
//     can edit them in place.
package nn

import "repro/internal/tensor"

// Param is a single trainable parameter tensor with its gradient
// accumulator.
type Param struct {
	// Name identifies the parameter within its model, e.g. "conv1/weight".
	Name string
	// Value is the live parameter tensor. Pruning edits it in place.
	Value *tensor.Tensor
	// Grad accumulates the gradient of the loss w.r.t. Value. It has the
	// same shape as Value and is managed by the optimizer.
	Grad *tensor.Tensor
	// Prunable marks parameters that pruning strategies may act on. Weights
	// are prunable; biases and normalization affine terms are not.
	Prunable bool
}

// newParam allocates a parameter with a zeroed gradient of matching shape.
func newParam(name string, value *tensor.Tensor, prunable bool) *Param {
	return &Param{
		Name:     name,
		Value:    value,
		Grad:     tensor.New(value.Shape()...),
		Prunable: prunable,
	}
}

// Layer is one differentiable stage of a network.
type Layer interface {
	// Name returns the layer's unique name within its model.
	Name() string
	// Forward computes the layer output for input x. When training is true
	// the layer caches intermediates for Backward and applies train-time
	// behaviour (e.g. dropout).
	Forward(x *tensor.Tensor, training bool) *tensor.Tensor
	// Backward consumes the gradient of the loss w.r.t. this layer's output
	// and returns the gradient w.r.t. its input, accumulating parameter
	// gradients along the way. It must be called after a training-mode
	// Forward.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
}

// Info summarizes a layer's static cost profile; the platform model uses it
// to estimate latency and energy per inference.
type Info struct {
	Name string
	Type string
	// ParamCount is the number of trainable scalars.
	ParamCount int64
	// MACsPerSample is the number of multiply-accumulate operations one
	// forward pass performs for a single sample, assuming dense execution.
	MACsPerSample int64
	// ActivationsPerSample is the number of output scalars produced for a
	// single sample (a proxy for memory traffic).
	ActivationsPerSample int64
}

// Described is implemented by layers that can report a static cost profile.
// All compute-bearing layers in this package implement it.
type Described interface {
	Describe() Info
}
