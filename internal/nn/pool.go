package nn

import (
	"repro/internal/tensor"
)

// MaxPool2D performs non-overlapping-or-strided max pooling over
// [B, C, H, W] tensors for a fixed per-sample geometry.
type MaxPool2D struct {
	name             string
	c, h, w          int
	kh, kw           int
	strideH, strideW int

	lastArg   []int // flat input index of each output's max, for Backward
	lastShape []int
}

// NewMaxPool2D constructs a max pooling layer for inputs of shape [B,c,h,w].
func NewMaxPool2D(name string, c, h, w, kh, kw, strideH, strideW int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || kh <= 0 || kw <= 0 || strideH <= 0 || strideW <= 0 {
		failf("nn: MaxPool2D %q non-positive geometry", name)
	}
	if kh > h || kw > w {
		failf("nn: MaxPool2D %q kernel %dx%d exceeds input %dx%d", name, kh, kw, h, w)
	}
	return &MaxPool2D{name: name, c: c, h: h, w: w, kh: kh, kw: kw, strideH: strideH, strideW: strideW}
}

// Name returns the layer name.
func (m *MaxPool2D) Name() string { return m.name }

// Config returns the construction parameters (channels, input size, kernel,
// stride); model-transformation passes use it to rebuild the layer for a
// different channel count.
func (m *MaxPool2D) Config() (c, h, w, kh, kw, strideH, strideW int) {
	return m.c, m.h, m.w, m.kh, m.kw, m.strideH, m.strideW
}

// OutH returns the pooled height.
func (m *MaxPool2D) OutH() int { return (m.h-m.kh)/m.strideH + 1 }

// OutW returns the pooled width.
func (m *MaxPool2D) OutW() int { return (m.w-m.kw)/m.strideW + 1 }

// OutShape returns the per-sample output shape [C, OutH, OutW].
func (m *MaxPool2D) OutShape() []int { return []int{m.c, m.OutH(), m.OutW()} }

// Forward max-pools each channel plane.
func (m *MaxPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != m.c || x.Dim(2) != m.h || x.Dim(3) != m.w {
		failf("nn: MaxPool2D %q input shape %v, want [B %d %d %d]", m.name, x.Shape(), m.c, m.h, m.w)
	}
	batch := x.Dim(0)
	oh, ow := m.OutH(), m.OutW()
	out := tensor.New(batch, m.c, oh, ow)
	if training {
		m.lastArg = make([]int, out.Len())
		m.lastShape = x.Shape()
	}
	xd, od := x.Data(), out.Data()
	planeIn := m.h * m.w
	oi := 0
	for s := 0; s < batch; s++ {
		for c := 0; c < m.c; c++ {
			base := (s*m.c + c) * planeIn
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*m.strideH, ox*m.strideW
					best := xd[base+iy0*m.w+ix0]
					bestIdx := base + iy0*m.w + ix0
					for ky := 0; ky < m.kh; ky++ {
						rowBase := base + (iy0+ky)*m.w
						for kx := 0; kx < m.kw; kx++ {
							idx := rowBase + ix0 + kx
							if xd[idx] > best {
								best = xd[idx]
								bestIdx = idx
							}
						}
					}
					od[oi] = best
					if training {
						m.lastArg[oi] = bestIdx
					}
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes each output gradient to the input position that won the
// max.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.lastArg == nil || len(m.lastArg) != grad.Len() {
		failf("nn: MaxPool2D %q Backward before training Forward", m.name)
	}
	dx := tensor.New(m.lastShape...)
	dd, gd := dx.Data(), grad.Data()
	for i, src := range m.lastArg {
		dd[src] += gd[i]
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (m *MaxPool2D) Params() []*Param { return nil }

// Describe reports the pooling layer's cost profile (comparisons counted as
// MAC-equivalents).
func (m *MaxPool2D) Describe() Info {
	spatial := int64(m.OutH()) * int64(m.OutW())
	return Info{
		Name:                 m.name,
		Type:                 "maxpool2d",
		MACsPerSample:        int64(m.c) * spatial * int64(m.kh) * int64(m.kw),
		ActivationsPerSample: int64(m.c) * spatial,
	}
}

// GlobalAvgPool2D averages each channel plane of a [B, C, H, W] tensor down
// to a single value, producing [B, C].
type GlobalAvgPool2D struct {
	name    string
	c, h, w int
}

// NewGlobalAvgPool2D constructs a global average pooling layer.
func NewGlobalAvgPool2D(name string, c, h, w int) *GlobalAvgPool2D {
	if c <= 0 || h <= 0 || w <= 0 {
		failf("nn: GlobalAvgPool2D %q non-positive geometry", name)
	}
	return &GlobalAvgPool2D{name: name, c: c, h: h, w: w}
}

// Name returns the layer name.
func (g *GlobalAvgPool2D) Name() string { return g.name }

// Config returns the construction parameters.
func (g *GlobalAvgPool2D) Config() (c, h, w int) { return g.c, g.h, g.w }

// Forward averages each plane.
func (g *GlobalAvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != g.c || x.Dim(2) != g.h || x.Dim(3) != g.w {
		failf("nn: GlobalAvgPool2D %q input shape %v, want [B %d %d %d]", g.name, x.Shape(), g.c, g.h, g.w)
	}
	batch := x.Dim(0)
	plane := g.h * g.w
	inv := 1 / float32(plane)
	out := tensor.New(batch, g.c)
	xd, od := x.Data(), out.Data()
	for i := 0; i < batch*g.c; i++ {
		var s float32
		for _, v := range xd[i*plane : (i+1)*plane] {
			s += v
		}
		od[i] = s * inv
	}
	return out
}

// Backward spreads each channel gradient uniformly over its plane.
func (g *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	batch := grad.Dim(0)
	plane := g.h * g.w
	inv := 1 / float32(plane)
	dx := tensor.New(batch, g.c, g.h, g.w)
	gd, dd := grad.Data(), dx.Data()
	for i := 0; i < batch*g.c; i++ {
		v := gd[i] * inv
		row := dd[i*plane : (i+1)*plane]
		for j := range row {
			row[j] = v
		}
	}
	return dx
}

// Params returns nil: pooling has no parameters.
func (g *GlobalAvgPool2D) Params() []*Param { return nil }

// Describe reports the layer's cost profile.
func (g *GlobalAvgPool2D) Describe() Info {
	return Info{
		Name:                 g.name,
		Type:                 "gap2d",
		MACsPerSample:        int64(g.c) * int64(g.h) * int64(g.w),
		ActivationsPerSample: int64(g.c),
	}
}

// Flatten reshapes [B, C, H, W] (or any ≥2-D input) to [B, F].
type Flatten struct {
	name      string
	lastShape []int
}

// NewFlatten constructs a flatten layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Name returns the layer name.
func (f *Flatten) Name() string { return f.name }

// Forward flattens all but the batch dimension.
func (f *Flatten) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() < 2 {
		failf("nn: Flatten %q input shape %v, want ≥2-D", f.name, x.Shape())
	}
	if training {
		f.lastShape = x.Shape()
	}
	batch := x.Dim(0)
	return x.Reshape(batch, x.Len()/batch)
}

// Backward restores the pre-flatten shape.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if f.lastShape == nil {
		failf("nn: Flatten %q Backward before training Forward", f.name)
	}
	return grad.Reshape(f.lastShape...)
}

// Params returns nil: flatten has no parameters.
func (f *Flatten) Params() []*Param { return nil }
