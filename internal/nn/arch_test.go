package nn

import (
	"bytes"
	"testing"

	"repro/internal/tensor"
)

// fullArchModel exercises every serializable layer type.
func fullArchModel(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return NewSequential("full",
		NewConv2D("conv1", g, 4, rng),
		NewBatchNorm("bn1", 4),
		NewReLU("relu1"),
		NewLeakyReLU("lrelu1", 0.05),
		NewMaxPool2D("pool1", 4, 8, 8, 2, 2, 2, 2),
		NewDropout("drop1", 0.25, rng),
		NewFlatten("flat"),
		NewDense("fc1", 4*4*4, 12, rng),
		NewTanh("tanh1"),
		NewDense("fc2", 12, 3, rng),
		NewSoftmax("sm"),
	)
}

func TestArchitectureRoundTrip(t *testing.T) {
	src := fullArchModel(1)
	var buf bytes.Buffer
	if err := src.SaveArchitecture(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArchitecture("rebuilt", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Layers()) != len(src.Layers()) {
		t.Fatalf("layer count %d vs %d", len(got.Layers()), len(src.Layers()))
	}
	for i, l := range src.Layers() {
		g := got.Layers()[i]
		if l.Name() != g.Name() {
			t.Errorf("layer %d name %q vs %q", i, g.Name(), l.Name())
		}
		if gotID, _, _ := describeLayerArch(g); func() uint8 { id, _, _ := describeLayerArch(l); return id }() != gotID {
			t.Errorf("layer %d type mismatch", i)
		}
	}
	if got.ParamCount() != src.ParamCount() {
		t.Errorf("param count %d vs %d", got.ParamCount(), src.ParamCount())
	}
	// Reconstructed leaky alpha and dropout p survive.
	if got.Layer("lrelu1").(*LeakyReLU).Alpha() != 0.05 {
		t.Error("leaky alpha lost")
	}
	if got.Layer("drop1").(*Dropout).P() != 0.25 {
		t.Error("dropout p lost")
	}
}

func TestSaveLoadModelFullyEquivalent(t *testing.T) {
	src := fullArchModel(2)
	// Give BN real running stats.
	rng := tensor.NewRNG(3)
	for i := 0; i < 4; i++ {
		src.Forward(tensor.RandNormal(rng, 0, 1, 8, 1, 8, 8), true)
	}
	var buf bytes.Buffer
	if err := src.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel("clone", &buf)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(4), 0, 1, 3, 1, 8, 8)
	if !tensor.Equal(src.Forward(x, false), got.Forward(x, false)) {
		t.Error("loaded model disagrees with source at inference")
	}
}

func TestLoadArchitectureRejectsGarbage(t *testing.T) {
	if _, err := LoadArchitecture("x", bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("truncated header accepted")
	}
	bad := make([]byte, 8)
	if _, err := LoadArchitecture("x", bytes.NewReader(bad)); err == nil {
		t.Error("bad magic accepted")
	}
}

func TestLoadArchitectureRejectsTruncation(t *testing.T) {
	src := fullArchModel(5)
	var buf bytes.Buffer
	if err := src.SaveArchitecture(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate at a sample of offsets; every one must error, never panic.
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.95} {
		n := int(frac * float64(len(full)))
		if _, err := LoadArchitecture("x", bytes.NewReader(full[:n])); err == nil {
			t.Errorf("truncation at %d bytes accepted", n)
		}
	}
}

func TestLoadArchitectureRejectsUnknownLayerType(t *testing.T) {
	var buf bytes.Buffer
	m := NewSequential("m", NewReLU("r"))
	if err := m.SaveArchitecture(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[8] = 200 // corrupt the layer type id
	if _, err := LoadArchitecture("x", bytes.NewReader(data)); err == nil {
		t.Error("unknown layer type accepted")
	}
}
