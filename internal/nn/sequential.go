package nn

import (
	"repro/internal/tensor"
)

// Sequential is an ordered stack of layers trained and evaluated as one
// model. It is the only model container in this repository; the perception
// networks are all sequential.
type Sequential struct {
	name   string
	layers []Layer
}

// NewSequential constructs a model from the given layers. Layer names must
// be unique within the model.
func NewSequential(name string, layers ...Layer) *Sequential {
	m := &Sequential{name: name}
	for _, l := range layers {
		m.Add(l)
	}
	return m
}

// Name returns the model name.
func (m *Sequential) Name() string { return m.name }

// Add appends a layer, enforcing name uniqueness.
func (m *Sequential) Add(l Layer) {
	for _, existing := range m.layers {
		if existing.Name() == l.Name() {
			failf("nn: model %q already has a layer named %q", m.name, l.Name())
		}
	}
	m.layers = append(m.layers, l)
}

// Layers returns the layer stack (shared slice; do not mutate).
func (m *Sequential) Layers() []Layer { return m.layers }

// Layer returns the layer with the given name, or nil.
func (m *Sequential) Layer(name string) Layer {
	for _, l := range m.layers {
		if l.Name() == name {
			return l
		}
	}
	return nil
}

// Forward runs the input through every layer in order.
func (m *Sequential) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	for _, l := range m.layers {
		x = l.Forward(x, training)
	}
	return x
}

// Backward propagates the output gradient through every layer in reverse
// order and returns the gradient w.r.t. the model input.
func (m *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.layers) - 1; i >= 0; i-- {
		grad = m.layers[i].Backward(grad)
	}
	return grad
}

// Params returns every trainable parameter in layer order.
func (m *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range m.layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Param returns the parameter with the given fully qualified name, or nil.
func (m *Sequential) Param(name string) *Param {
	for _, p := range m.Params() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// PrunableParams returns the parameters pruning strategies may act on.
func (m *Sequential) PrunableParams() []*Param {
	var ps []*Param
	for _, p := range m.Params() {
		if p.Prunable {
			ps = append(ps, p)
		}
	}
	return ps
}

// ZeroGrad clears every parameter gradient.
func (m *Sequential) ZeroGrad() {
	for _, p := range m.Params() {
		p.Grad.Zero()
	}
}

// ParamCount returns the total number of trainable scalars.
func (m *Sequential) ParamCount() int64 {
	var n int64
	for _, p := range m.Params() {
		n += int64(p.Value.Len())
	}
	return n
}

// NonZeroParamCount returns the number of trainable scalars that are exactly
// nonzero — the live parameter count under pruning.
func (m *Sequential) NonZeroParamCount() int64 {
	var n int64
	for _, p := range m.Params() {
		n += int64(p.Value.CountNonZero())
	}
	return n
}

// Describe returns the cost profile of every compute-bearing layer.
func (m *Sequential) Describe() []Info {
	var infos []Info
	for _, l := range m.layers {
		if d, ok := l.(Described); ok {
			infos = append(infos, d.Describe())
		}
	}
	return infos
}

// TotalMACsPerSample sums the dense per-sample MAC counts of all layers.
func (m *Sequential) TotalMACsPerSample() int64 {
	var n int64
	for _, info := range m.Describe() {
		n += info.MACsPerSample
	}
	return n
}
