package nn

import (
	"repro/internal/metrics"
	"repro/internal/tensor"
)

// Dropout randomly zeroes activations during training with probability p,
// scaling survivors by 1/(1-p) (inverted dropout), and is the identity at
// inference time.
type Dropout struct {
	name     string
	p        float32
	rng      *tensor.RNG
	lastKeep []float32
}

// NewDropout constructs a dropout layer with drop probability p in [0, 1).
func NewDropout(name string, p float32, rng *tensor.RNG) *Dropout {
	if p < 0 || p >= 1 {
		failf("nn: Dropout %q p=%v out of [0,1)", name, p)
	}
	return &Dropout{name: name, p: p, rng: rng}
}

// Name returns the layer name.
func (d *Dropout) Name() string { return d.name }

// P returns the drop probability.
func (d *Dropout) P() float32 { return d.p }

// Forward drops activations in training mode and passes through otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if !training || metrics.ApproxEqual(d.p, 0, 1e-9) {
		return x
	}
	out := tensor.New(x.Shape()...)
	if len(d.lastKeep) != x.Len() {
		d.lastKeep = make([]float32, x.Len())
	}
	scale := 1 / (1 - d.p)
	xd, od := x.Data(), out.Data()
	for i, v := range xd {
		if d.rng.Float32() < d.p {
			d.lastKeep[i] = 0
		} else {
			d.lastKeep[i] = scale
			od[i] = v * scale
		}
	}
	return out
}

// Backward applies the same keep mask to the gradient.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if metrics.ApproxEqual(d.p, 0, 1e-9) {
		return grad
	}
	if d.lastKeep == nil || len(d.lastKeep) != grad.Len() {
		failf("nn: Dropout %q Backward before training Forward", d.name)
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, k := range d.lastKeep {
		od[i] = gd[i] * k
	}
	return out
}

// Params returns nil: dropout has no parameters.
func (d *Dropout) Params() []*Param { return nil }
