package nn

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: layer shape and hyper-parameter validation; the Layer API documents Forward/Backward geometry misuse as panicking programmer errors.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
