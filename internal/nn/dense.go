package nn

import (
	"repro/internal/tensor"
)

// Dense is a fully connected layer computing y = x·Wᵀ + b for x of shape
// [B, in]. The weight is stored (out × in), so pruning an output neuron
// zeros a weight row and pruning an input feature zeros a column.
type Dense struct {
	name    string
	in, out int
	weight  *Param
	bias    *Param

	lastInput *tensor.Tensor // cached for Backward
}

// NewDense constructs a dense layer with He-normal initialized weights and
// zero biases.
func NewDense(name string, in, out int, rng *tensor.RNG) *Dense {
	if in <= 0 || out <= 0 {
		failf("nn: Dense %q with non-positive dims in=%d out=%d", name, in, out)
	}
	return &Dense{
		name:   name,
		in:     in,
		out:    out,
		weight: newParam(name+"/weight", tensor.HeNormal(rng, in, out, in), true),
		bias:   newParam(name+"/bias", tensor.New(out), false),
	}
}

// Name returns the layer name.
func (d *Dense) Name() string { return d.name }

// InFeatures returns the input width.
func (d *Dense) InFeatures() int { return d.in }

// OutFeatures returns the output width.
func (d *Dense) OutFeatures() int { return d.out }

// Weight returns the (out × in) weight parameter.
func (d *Dense) Weight() *Param { return d.weight }

// Bias returns the bias parameter.
func (d *Dense) Bias() *Param { return d.bias }

// Forward computes x·Wᵀ + b.
func (d *Dense) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.in {
		failf("nn: Dense %q input shape %v, want [B %d]", d.name, x.Shape(), d.in)
	}
	if training {
		d.lastInput = x
	}
	out := tensor.MatMulTransB(x, d.weight.Value)
	b := d.bias.Value.Data()
	od := out.Data()
	cols := d.out
	for i := 0; i < x.Dim(0); i++ {
		row := od[i*cols : (i+1)*cols]
		for j := range row {
			row[j] += b[j]
		}
	}
	return out
}

// Backward accumulates dW = gradᵀ·x and db = Σ grad rows, and returns
// dx = grad·W.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.lastInput == nil {
		failf("nn: Dense %q Backward before training Forward", d.name)
	}
	// dW (out×in) += gradᵀ (out×B) · x (B×in)
	dW := tensor.MatMulTransA(grad, d.lastInput)
	tensor.AddInPlace(d.weight.Grad, dW)
	// db += column sums of grad.
	tensor.AddInPlace(d.bias.Grad, tensor.SumRows(grad))
	// dx (B×in) = grad (B×out) · W (out×in)
	return tensor.MatMul(grad, d.weight.Value)
}

// Params returns the weight and bias.
func (d *Dense) Params() []*Param { return []*Param{d.weight, d.bias} }

// Describe reports the dense layer's cost profile.
func (d *Dense) Describe() Info {
	return Info{
		Name:                 d.name,
		Type:                 "dense",
		ParamCount:           int64(d.in)*int64(d.out) + int64(d.out),
		MACsPerSample:        int64(d.in) * int64(d.out),
		ActivationsPerSample: int64(d.out),
	}
}
