package nn

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/tensor"
)

// lossFor computes the scalar test loss <f(x), coef> for gradient checking.
func lossFor(l Layer, x, coef *tensor.Tensor) float32 {
	return tensor.Dot(l.Forward(x, true), coef)
}

// checkGradients numerically verifies the backward pass of a layer for the
// loss <f(x), coef>. It checks the input gradient and every parameter
// gradient against central finite differences.
func checkGradients(t *testing.T, l Layer, x *tensor.Tensor, rng *tensor.RNG) {
	t.Helper()
	out := l.Forward(x, true)
	coef := tensor.RandNormal(rng, 0, 1, out.Shape()...)

	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	l.Forward(x, true)
	dx := l.Backward(coef)

	const eps = 1e-2
	const tol = 2e-2

	check := func(name string, values *tensor.Tensor, analytic []float32) {
		data := values.Data()
		for i := range data {
			orig := data[i]
			data[i] = orig + eps
			up := lossFor(l, x, coef)
			data[i] = orig - eps
			down := lossFor(l, x, coef)
			data[i] = orig
			numeric := (up - down) / (2 * eps)
			diff := float64(numeric - analytic[i])
			scale := math.Max(1, math.Abs(float64(numeric)))
			if math.Abs(diff)/scale > tol {
				t.Errorf("%s[%d]: numeric %v vs analytic %v", name, i, numeric, analytic[i])
				return
			}
		}
	}

	check("dx", x, dx.Data())
	// Recompute analytic parameter grads fresh (they were polluted by the
	// numeric passes above only via Forward, which never touches Grad).
	for _, p := range l.Params() {
		p.Grad.Zero()
	}
	l.Forward(x, true)
	l.Backward(coef)
	for _, p := range l.Params() {
		check(p.Name, p.Value, p.Grad.Data())
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 2, 2, rng)
	d.Weight().Value.CopyFrom(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2))
	d.Bias().Value.CopyFrom(tensor.FromSlice([]float32{10, 20}, 2))
	x := tensor.FromSlice([]float32{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.At2(0, 0) != 13 || y.At2(0, 1) != 27 {
		t.Errorf("dense output = %v, want [13 27]", y.Data())
	}
}

func TestDenseGradients(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := NewDense("fc", 4, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	checkGradients(t, d, x, rng)
}

func TestDenseRejectsBadInput(t *testing.T) {
	rng := tensor.NewRNG(1)
	d := NewDense("fc", 4, 3, rng)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong input width")
		}
	}()
	d.Forward(tensor.New(2, 5), false)
}

func TestConv2DGradients(t *testing.T) {
	rng := tensor.NewRNG(3)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	c := NewConv2D("conv", g, 3, rng)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 5, 5)
	checkGradients(t, c, x, rng)
}

func TestConv2DOutShape(t *testing.T) {
	rng := tensor.NewRNG(4)
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 2, StrideW: 2, PadH: 1, PadW: 1}
	c := NewConv2D("conv", g, 5, rng)
	y := c.Forward(tensor.New(2, 3, 8, 8), false)
	want := []int{2, 5, 4, 4}
	got := y.Shape()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("conv output shape %v, want %v", got, want)
		}
	}
}

func TestConv2DBiasApplied(t *testing.T) {
	rng := tensor.NewRNG(5)
	g := tensor.ConvGeom{InC: 1, InH: 3, InW: 3, KH: 3, KW: 3, StrideH: 1, StrideW: 1}
	c := NewConv2D("conv", g, 2, rng)
	c.Weight().Value.Zero()
	c.Bias().Value.CopyFrom(tensor.FromSlice([]float32{1.5, -2.5}, 2))
	y := c.Forward(tensor.New(1, 1, 3, 3), false)
	if y.At(0, 0, 0, 0) != 1.5 || y.At(0, 1, 0, 0) != -2.5 {
		t.Errorf("bias not applied: %v", y.Data())
	}
}

func TestReLU(t *testing.T) {
	r := NewReLU("relu")
	x := tensor.FromSlice([]float32{-1, 0, 2}, 1, 3)
	y := r.Forward(x, true)
	if y.Data()[0] != 0 || y.Data()[1] != 0 || y.Data()[2] != 2 {
		t.Errorf("relu forward = %v", y.Data())
	}
	g := r.Backward(tensor.FromSlice([]float32{5, 5, 5}, 1, 3))
	if g.Data()[0] != 0 || g.Data()[1] != 0 || g.Data()[2] != 5 {
		t.Errorf("relu backward = %v", g.Data())
	}
}

func TestLeakyReLUGradients(t *testing.T) {
	rng := tensor.NewRNG(6)
	l := NewLeakyReLU("lrelu", 0.1)
	x := tensor.RandNormal(rng, 0, 1, 2, 6)
	checkGradients(t, l, x, rng)
}

func TestTanhGradients(t *testing.T) {
	rng := tensor.NewRNG(7)
	l := NewTanh("tanh")
	x := tensor.RandNormal(rng, 0, 0.5, 2, 5)
	checkGradients(t, l, x, rng)
}

func TestSoftmaxForwardRowsSumToOne(t *testing.T) {
	s := NewSoftmax("sm")
	y := s.Forward(tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2), false)
	for i := 0; i < 2; i++ {
		sum := y.At2(i, 0) + y.At2(i, 1)
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
	}
}

func TestSoftmaxBackwardPanics(t *testing.T) {
	s := NewSoftmax("sm")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s.Backward(tensor.New(1, 2))
}

func TestMaxPoolForwardBackward(t *testing.T) {
	m := NewMaxPool2D("pool", 1, 4, 4, 2, 2, 2, 2)
	x := tensor.New(1, 1, 4, 4)
	for i := 0; i < 16; i++ {
		x.Data()[i] = float32(i)
	}
	y := m.Forward(x, true)
	want := []float32{5, 7, 13, 15}
	for i, w := range want {
		if y.Data()[i] != w {
			t.Fatalf("maxpool out[%d] = %v, want %v", i, y.Data()[i], w)
		}
	}
	g := m.Backward(tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 2, 2))
	if g.Data()[5] != 1 || g.Data()[7] != 2 || g.Data()[13] != 3 || g.Data()[15] != 4 {
		t.Errorf("maxpool grad routing wrong: %v", g.Data())
	}
	var sum float32
	for _, v := range g.Data() {
		sum += v
	}
	if sum != 10 {
		t.Errorf("maxpool grad mass = %v, want 10", sum)
	}
}

func TestGlobalAvgPoolGradients(t *testing.T) {
	rng := tensor.NewRNG(8)
	g := NewGlobalAvgPool2D("gap", 3, 4, 4)
	x := tensor.RandNormal(rng, 0, 1, 2, 3, 4, 4)
	checkGradients(t, g, x, rng)
}

func TestFlattenRoundTrip(t *testing.T) {
	f := NewFlatten("flat")
	x := tensor.New(2, 3, 4, 5)
	y := f.Forward(x, true)
	if y.Dims() != 2 || y.Dim(0) != 2 || y.Dim(1) != 60 {
		t.Fatalf("flatten shape %v", y.Shape())
	}
	g := f.Backward(tensor.New(2, 60))
	if g.Dims() != 4 || g.Dim(3) != 5 {
		t.Errorf("unflatten shape %v", g.Shape())
	}
}

func TestDropoutInferenceIsIdentity(t *testing.T) {
	rng := tensor.NewRNG(9)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.RandNormal(rng, 0, 1, 4, 8)
	y := d.Forward(x, false)
	if !tensor.Equal(x, y) {
		t.Error("dropout changed values at inference")
	}
}

func TestDropoutTrainingDropsApproxP(t *testing.T) {
	rng := tensor.NewRNG(10)
	d := NewDropout("drop", 0.3, rng)
	x := tensor.Ones(100, 100)
	y := d.Forward(x, true)
	zeros := 0
	for _, v := range y.Data() {
		if v == 0 {
			zeros++
		}
	}
	frac := float64(zeros) / float64(y.Len())
	if frac < 0.27 || frac > 0.33 {
		t.Errorf("dropout fraction %v, want ≈0.3", frac)
	}
	// Survivors must be scaled by 1/(1-p).
	for _, v := range y.Data() {
		if v != 0 && math.Abs(float64(v)-1/0.7) > 1e-5 {
			t.Errorf("survivor value %v, want %v", v, 1/0.7)
			break
		}
	}
}

func TestDropoutBackwardUsesSameMask(t *testing.T) {
	rng := tensor.NewRNG(11)
	d := NewDropout("drop", 0.5, rng)
	x := tensor.Ones(1, 100)
	y := d.Forward(x, true)
	g := d.Backward(tensor.Ones(1, 100))
	for i := range y.Data() {
		if (y.Data()[i] == 0) != (g.Data()[i] == 0) {
			t.Fatal("backward mask differs from forward mask")
		}
	}
}

func TestBatchNormNormalizes(t *testing.T) {
	bn := NewBatchNorm("bn", 2)
	rng := tensor.NewRNG(12)
	x := tensor.RandNormal(rng, 5, 3, 64, 2)
	y := bn.Forward(x, true)
	// Per-feature mean ≈ 0, var ≈ 1 after normalization (gamma=1, beta=0).
	for f := 0; f < 2; f++ {
		var mean float64
		for i := 0; i < 64; i++ {
			mean += float64(y.At2(i, f))
		}
		mean /= 64
		if math.Abs(mean) > 1e-4 {
			t.Errorf("feature %d mean = %v", f, mean)
		}
		var variance float64
		for i := 0; i < 64; i++ {
			d := float64(y.At2(i, f)) - mean
			variance += d * d
		}
		variance /= 64
		if math.Abs(variance-1) > 1e-2 {
			t.Errorf("feature %d var = %v", f, variance)
		}
	}
}

func TestBatchNormRunningStatsConverge(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	rng := tensor.NewRNG(13)
	for i := 0; i < 200; i++ {
		x := tensor.RandNormal(rng, 10, 2, 32, 1)
		bn.Forward(x, true)
	}
	mean, variance := bn.RunningStats()
	if math.Abs(float64(mean[0])-10) > 0.5 {
		t.Errorf("running mean = %v, want ≈10", mean[0])
	}
	if math.Abs(float64(variance[0])-4) > 1 {
		t.Errorf("running var = %v, want ≈4", variance[0])
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm("bn", 1)
	bn.SetRunningStats([]float32{10}, []float32{4})
	x := tensor.FromSlice([]float32{12}, 1, 1)
	y := bn.Forward(x, false)
	want := float32((12.0 - 10.0) / math.Sqrt(4+1e-5))
	if math.Abs(float64(y.Data()[0]-want)) > 1e-5 {
		t.Errorf("inference output %v, want %v", y.Data()[0], want)
	}
}

func TestBatchNormGradients(t *testing.T) {
	rng := tensor.NewRNG(14)
	bn := NewBatchNorm("bn", 3)
	x := tensor.RandNormal(rng, 1, 2, 8, 3)
	checkGradients(t, bn, x, rng)
}

func TestBatchNorm4D(t *testing.T) {
	rng := tensor.NewRNG(15)
	bn := NewBatchNorm("bn", 2)
	x := tensor.RandNormal(rng, 3, 2, 4, 2, 3, 3)
	y := bn.Forward(x, true)
	if y.Dims() != 4 {
		t.Fatalf("4-D batchnorm output shape %v", y.Shape())
	}
	// Channel mean over batch and spatial dims ≈ 0.
	var mean float64
	n := 0
	for s := 0; s < 4; s++ {
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				mean += float64(y.At(s, 0, i, j))
				n++
			}
		}
	}
	if math.Abs(mean/float64(n)) > 1e-4 {
		t.Errorf("channel mean = %v", mean/float64(n))
	}
}

func TestSequentialUniqueNames(t *testing.T) {
	rng := tensor.NewRNG(16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate layer name")
		}
	}()
	NewSequential("m", NewDense("fc", 2, 2, rng), NewDense("fc", 2, 2, rng))
}

func TestSequentialForwardBackwardAndLookup(t *testing.T) {
	rng := tensor.NewRNG(17)
	m := NewSequential("m",
		NewDense("fc1", 4, 8, rng),
		NewReLU("relu1"),
		NewDense("fc2", 8, 3, rng),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 4)
	y := m.Forward(x, true)
	if y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("model output shape %v", y.Shape())
	}
	dx := m.Backward(tensor.Ones(2, 3))
	if dx.Dim(1) != 4 {
		t.Errorf("input grad shape %v", dx.Shape())
	}
	if m.Layer("relu1") == nil || m.Layer("nope") != nil {
		t.Error("Layer lookup wrong")
	}
	if m.Param("fc1/weight") == nil || m.Param("fc1/nope") != nil {
		t.Error("Param lookup wrong")
	}
	if got, want := m.ParamCount(), int64(4*8+8+8*3+3); got != want {
		t.Errorf("ParamCount = %d, want %d", got, want)
	}
	if len(m.PrunableParams()) != 2 {
		t.Errorf("PrunableParams = %d, want 2 (weights only)", len(m.PrunableParams()))
	}
	m.Param("fc1/weight").Grad.Fill(3)
	m.ZeroGrad()
	if m.Param("fc1/weight").Grad.Sum() != 0 {
		t.Error("ZeroGrad did not clear")
	}
}

func TestSequentialDescribe(t *testing.T) {
	rng := tensor.NewRNG(18)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	m := NewSequential("m",
		NewConv2D("conv", g, 4, rng),
		NewFlatten("flat"),
		NewDense("fc", 4*8*8, 10, rng),
	)
	infos := m.Describe()
	if len(infos) != 2 {
		t.Fatalf("Describe returned %d infos, want 2", len(infos))
	}
	wantConvMACs := int64(1*3*3) * 4 * 64
	if infos[0].MACsPerSample != wantConvMACs {
		t.Errorf("conv MACs = %d, want %d", infos[0].MACsPerSample, wantConvMACs)
	}
	if m.TotalMACsPerSample() != wantConvMACs+int64(4*8*8*10) {
		t.Errorf("TotalMACs = %d", m.TotalMACsPerSample())
	}
}

func buildTestModel(seed int64) *Sequential {
	rng := tensor.NewRNG(seed)
	return NewSequential("m",
		NewDense("fc1", 6, 10, rng),
		NewBatchNorm("bn1", 10),
		NewReLU("relu1"),
		NewDense("fc2", 10, 4, rng),
	)
}

func TestWeightsSerializationRoundTrip(t *testing.T) {
	src := buildTestModel(20)
	// Give the BN layer non-default running stats.
	rng := tensor.NewRNG(21)
	for i := 0; i < 5; i++ {
		src.Forward(tensor.RandNormal(rng, 2, 3, 16, 6), true)
	}
	var buf bytes.Buffer
	if err := src.SaveWeights(&buf); err != nil {
		t.Fatalf("SaveWeights: %v", err)
	}
	if buf.Len() != src.WeightsSize() {
		t.Errorf("encoded %d bytes, WeightsSize says %d", buf.Len(), src.WeightsSize())
	}

	dst := buildTestModel(99) // different init
	if err := dst.LoadWeights(&buf); err != nil {
		t.Fatalf("LoadWeights: %v", err)
	}
	x := tensor.RandNormal(tensor.NewRNG(22), 0, 1, 3, 6)
	ys := src.Forward(x, false)
	yd := dst.Forward(x, false)
	if !tensor.Equal(ys, yd) {
		t.Error("loaded model disagrees with source model")
	}
}

func TestLoadWeightsRejectsWrongArchitecture(t *testing.T) {
	src := buildTestModel(23)
	data, err := src.EncodeWeights()
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(24)
	other := NewSequential("m", NewDense("fc1", 6, 11, rng))
	if err := other.DecodeWeights(data); err == nil {
		t.Error("expected error loading into mismatched architecture")
	}
	if err := other.DecodeWeights([]byte{1, 2, 3}); err == nil {
		t.Error("expected error for garbage input")
	}
}
