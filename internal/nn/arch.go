package nn

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/tensor"
)

// Architecture serialization: a compact binary description of a Sequential
// model's layer stack, sufficient to reconstruct the model without source
// code. Combined with the weight stream this makes deployment bundles
// self-contained.
//
// Format (little-endian):
//
//	magic   uint32 0x41525253 ("SRRA")
//	count   uint32
//	layers  count × { typeID uint8, name string16, params uint32 × nParams }
//
// Dropout layers are reconstructed with a fresh deterministic RNG; dropout
// is inert at inference, so this does not affect deployed behaviour.

const archMagic uint32 = 0x41525253

// Layer type identifiers. Order is part of the wire format; append only.
const (
	archDense uint8 = iota + 1
	archConv2D
	archReLU
	archLeakyReLU
	archTanh
	archSoftmax
	archMaxPool2D
	archGlobalAvgPool2D
	archFlatten
	archBatchNorm
	archDropout
)

// SaveArchitecture writes the model's layer-stack description to w.
func (m *Sequential) SaveArchitecture(w io.Writer) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], archMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(m.layers)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("nn: save arch header: %w", err)
	}
	for _, l := range m.layers {
		id, params, err := describeLayerArch(l)
		if err != nil {
			return fmt.Errorf("nn: save arch: %w", err)
		}
		if err := writeArchLayer(w, id, l.Name(), params); err != nil {
			return err
		}
	}
	return nil
}

// LoadArchitecture reads a layer-stack description and reconstructs an
// untrained model with the given name. Layer weights are freshly
// initialized; load them separately with LoadWeights.
func LoadArchitecture(name string, r io.Reader) (*Sequential, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("nn: load arch header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != archMagic {
		return nil, fmt.Errorf("nn: bad arch magic %#x", got)
	}
	count := int(binary.LittleEndian.Uint32(hdr[4:]))
	if count < 0 || count > 4096 {
		return nil, fmt.Errorf("nn: implausible layer count %d", count)
	}
	model := NewSequential(name)
	rng := tensor.NewRNG(0) // init overwritten by LoadWeights
	for i := 0; i < count; i++ {
		id, layerName, params, err := readArchLayer(r)
		if err != nil {
			return nil, fmt.Errorf("nn: load arch layer %d: %w", i, err)
		}
		l, err := buildLayerArch(id, layerName, params, rng)
		if err != nil {
			return nil, fmt.Errorf("nn: load arch layer %d (%s): %w", i, layerName, err)
		}
		model.Add(l)
	}
	return model, nil
}

// describeLayerArch extracts a layer's type id and integer parameters.
func describeLayerArch(l Layer) (uint8, []uint32, error) {
	switch t := l.(type) {
	case *Dense:
		return archDense, []uint32{uint32(t.in), uint32(t.out)}, nil
	case *Conv2D:
		g := t.geom
		return archConv2D, []uint32{
			uint32(g.InC), uint32(g.InH), uint32(g.InW),
			uint32(g.KH), uint32(g.KW),
			uint32(g.StrideH), uint32(g.StrideW),
			uint32(g.PadH), uint32(g.PadW),
			uint32(t.outC),
		}, nil
	case *ReLU:
		return archReLU, nil, nil
	case *LeakyReLU:
		return archLeakyReLU, []uint32{math.Float32bits(t.alpha)}, nil
	case *Tanh:
		return archTanh, nil, nil
	case *Softmax:
		return archSoftmax, nil, nil
	case *MaxPool2D:
		return archMaxPool2D, []uint32{
			uint32(t.c), uint32(t.h), uint32(t.w),
			uint32(t.kh), uint32(t.kw),
			uint32(t.strideH), uint32(t.strideW),
		}, nil
	case *GlobalAvgPool2D:
		return archGlobalAvgPool2D, []uint32{uint32(t.c), uint32(t.h), uint32(t.w)}, nil
	case *Flatten:
		return archFlatten, nil, nil
	case *BatchNorm:
		return archBatchNorm, []uint32{uint32(t.features)}, nil
	case *Dropout:
		return archDropout, []uint32{math.Float32bits(t.p)}, nil
	default:
		return 0, nil, fmt.Errorf("unsupported layer type %T", l)
	}
}

// buildLayerArch reconstructs a layer from its type id and parameters.
func buildLayerArch(id uint8, name string, params []uint32, rng *tensor.RNG) (Layer, error) {
	need := func(n int) error {
		if len(params) != n {
			return fmt.Errorf("layer type %d wants %d params, got %d", id, n, len(params))
		}
		return nil
	}
	switch id {
	case archDense:
		if err := need(2); err != nil {
			return nil, err
		}
		return NewDense(name, int(params[0]), int(params[1]), rng), nil
	case archConv2D:
		if err := need(10); err != nil {
			return nil, err
		}
		g := tensor.ConvGeom{
			InC: int(params[0]), InH: int(params[1]), InW: int(params[2]),
			KH: int(params[3]), KW: int(params[4]),
			StrideH: int(params[5]), StrideW: int(params[6]),
			PadH: int(params[7]), PadW: int(params[8]),
		}
		if err := g.Validate(); err != nil {
			return nil, err
		}
		return NewConv2D(name, g, int(params[9]), rng), nil
	case archReLU:
		return NewReLU(name), nil
	case archLeakyReLU:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewLeakyReLU(name, math.Float32frombits(params[0])), nil
	case archTanh:
		return NewTanh(name), nil
	case archSoftmax:
		return NewSoftmax(name), nil
	case archMaxPool2D:
		if err := need(7); err != nil {
			return nil, err
		}
		return NewMaxPool2D(name,
			int(params[0]), int(params[1]), int(params[2]),
			int(params[3]), int(params[4]),
			int(params[5]), int(params[6])), nil
	case archGlobalAvgPool2D:
		if err := need(3); err != nil {
			return nil, err
		}
		return NewGlobalAvgPool2D(name, int(params[0]), int(params[1]), int(params[2])), nil
	case archFlatten:
		return NewFlatten(name), nil
	case archBatchNorm:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewBatchNorm(name, int(params[0])), nil
	case archDropout:
		if err := need(1); err != nil {
			return nil, err
		}
		return NewDropout(name, math.Float32frombits(params[0]), rng), nil
	default:
		return nil, fmt.Errorf("unknown layer type id %d", id)
	}
}

func writeArchLayer(w io.Writer, id uint8, name string, params []uint32) error {
	if len(name) > 0xFFFF {
		return fmt.Errorf("nn: layer name too long")
	}
	buf := make([]byte, 1+2+len(name)+1+4*len(params))
	buf[0] = id
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(name)))
	copy(buf[3:], name)
	off := 3 + len(name)
	buf[off] = uint8(len(params))
	off++
	for _, p := range params {
		binary.LittleEndian.PutUint32(buf[off:], p)
		off += 4
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("nn: write arch layer: %w", err)
	}
	return nil
}

func readArchLayer(r io.Reader) (uint8, string, []uint32, error) {
	var head [3]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return 0, "", nil, err
	}
	id := head[0]
	nameBuf := make([]byte, binary.LittleEndian.Uint16(head[1:]))
	if _, err := io.ReadFull(r, nameBuf); err != nil {
		return 0, "", nil, err
	}
	var np [1]byte
	if _, err := io.ReadFull(r, np[:]); err != nil {
		return 0, "", nil, err
	}
	params := make([]uint32, np[0])
	pbuf := make([]byte, 4*len(params))
	if _, err := io.ReadFull(r, pbuf); err != nil {
		return 0, "", nil, err
	}
	for i := range params {
		params[i] = binary.LittleEndian.Uint32(pbuf[4*i:])
	}
	return id, string(nameBuf), params, nil
}

// SaveModel writes architecture followed by weights — a fully
// self-contained model file.
func (m *Sequential) SaveModel(w io.Writer) error {
	if err := m.SaveArchitecture(w); err != nil {
		return err
	}
	return m.SaveWeights(w)
}

// LoadModel reconstructs a model (architecture + weights) written by
// SaveModel.
func LoadModel(name string, r io.Reader) (*Sequential, error) {
	m, err := LoadArchitecture(name, r)
	if err != nil {
		return nil, err
	}
	if err := m.LoadWeights(r); err != nil {
		return nil, err
	}
	return m, nil
}
