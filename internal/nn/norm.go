package nn

import (
	"math"

	"repro/internal/tensor"
)

// BatchNorm normalizes activations per feature (2-D [B, F] inputs) or per
// channel (4-D [B, C, H, W] inputs), with learned affine scale and shift and
// running statistics for inference.
type BatchNorm struct {
	name     string
	features int
	momentum float32
	eps      float32

	gamma *Param
	beta  *Param

	runningMean []float32
	runningVar  []float32

	// Caches from the training forward pass.
	lastXHat  *tensor.Tensor
	lastStd   []float32
	lastShape []int
	lastN     int
}

// NewBatchNorm constructs a batch normalization layer over the given number
// of features (channels for 4-D inputs).
func NewBatchNorm(name string, features int) *BatchNorm {
	if features <= 0 {
		failf("nn: BatchNorm %q non-positive features %d", name, features)
	}
	b := &BatchNorm{
		name:        name,
		features:    features,
		momentum:    0.9,
		eps:         1e-5,
		gamma:       newParam(name+"/gamma", tensor.Ones(features), false),
		beta:        newParam(name+"/beta", tensor.New(features), false),
		runningMean: make([]float32, features),
		runningVar:  make([]float32, features),
	}
	for i := range b.runningVar {
		b.runningVar[i] = 1
	}
	return b
}

// Name returns the layer name.
func (b *BatchNorm) Name() string { return b.name }

// Features returns the normalized feature count.
func (b *BatchNorm) Features() int { return b.features }

// geometry returns the per-feature stride layout: n samples of the feature
// axis, each feature repeated plane times contiguously.
func (b *BatchNorm) geometry(x *tensor.Tensor) (batch, plane int) {
	switch x.Dims() {
	case 2:
		if x.Dim(1) != b.features {
			failf("nn: BatchNorm %q input shape %v, want [B %d]", b.name, x.Shape(), b.features)
		}
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != b.features {
			failf("nn: BatchNorm %q input shape %v, want [B %d H W]", b.name, x.Shape(), b.features)
		}
		return x.Dim(0), x.Dim(2) * x.Dim(3)
	default:
		failf("nn: BatchNorm %q input shape %v, want 2-D or 4-D", b.name, x.Shape())
		return 0, 0 // unreachable: failf always panics
	}
}

// Forward normalizes with batch statistics when training, running statistics
// otherwise.
func (b *BatchNorm) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	batch, plane := b.geometry(x)
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	g, be := b.gamma.Value.Data(), b.beta.Value.Data()
	stride := b.features * plane

	if !training {
		for f := 0; f < b.features; f++ {
			invStd := 1 / float32(math.Sqrt(float64(b.runningVar[f])+float64(b.eps)))
			mean := b.runningMean[f]
			for s := 0; s < batch; s++ {
				base := s*stride + f*plane
				for i := 0; i < plane; i++ {
					od[base+i] = g[f]*(xd[base+i]-mean)*invStd + be[f]
				}
			}
		}
		return out
	}

	n := batch * plane
	if n < 2 {
		failf("nn: BatchNorm %q needs ≥2 samples per feature in training, got %d", b.name, n)
	}
	b.lastXHat = tensor.New(x.Shape()...)
	b.lastStd = make([]float32, b.features)
	b.lastShape = x.Shape()
	b.lastN = n
	xh := b.lastXHat.Data()
	invN := 1 / float32(n)

	for f := 0; f < b.features; f++ {
		var mean float32
		for s := 0; s < batch; s++ {
			base := s*stride + f*plane
			for i := 0; i < plane; i++ {
				mean += xd[base+i]
			}
		}
		mean *= invN
		var variance float32
		for s := 0; s < batch; s++ {
			base := s*stride + f*plane
			for i := 0; i < plane; i++ {
				d := xd[base+i] - mean
				variance += d * d
			}
		}
		variance *= invN
		std := float32(math.Sqrt(float64(variance) + float64(b.eps)))
		b.lastStd[f] = std
		invStd := 1 / std
		for s := 0; s < batch; s++ {
			base := s*stride + f*plane
			for i := 0; i < plane; i++ {
				h := (xd[base+i] - mean) * invStd
				xh[base+i] = h
				od[base+i] = g[f]*h + be[f]
			}
		}
		b.runningMean[f] = b.momentum*b.runningMean[f] + (1-b.momentum)*mean
		b.runningVar[f] = b.momentum*b.runningVar[f] + (1-b.momentum)*variance
	}
	return out
}

// Backward computes the full batch-norm gradient:
//
//	dx̂ = dy·γ
//	dx = (1/σ)·(dx̂ − mean(dx̂) − x̂·mean(dx̂·x̂))
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if b.lastXHat == nil {
		failf("nn: BatchNorm %q Backward before training Forward", b.name)
	}
	batch, plane := b.geometry(grad)
	stride := b.features * plane
	dx := tensor.New(b.lastShape...)
	gd, xh, dd := grad.Data(), b.lastXHat.Data(), dx.Data()
	g := b.gamma.Value.Data()
	gg, bgr := b.gamma.Grad.Data(), b.beta.Grad.Data()
	invN := 1 / float32(b.lastN)

	for f := 0; f < b.features; f++ {
		var sumDy, sumDyXh float32
		for s := 0; s < batch; s++ {
			base := s*stride + f*plane
			for i := 0; i < plane; i++ {
				dy := gd[base+i]
				sumDy += dy
				sumDyXh += dy * xh[base+i]
			}
		}
		gg[f] += sumDyXh
		bgr[f] += sumDy
		invStd := g[f] / b.lastStd[f]
		meanDy := sumDy * invN
		meanDyXh := sumDyXh * invN
		for s := 0; s < batch; s++ {
			base := s*stride + f*plane
			for i := 0; i < plane; i++ {
				dd[base+i] = invStd * (gd[base+i] - meanDy - xh[base+i]*meanDyXh)
			}
		}
	}
	return dx
}

// Params returns the affine scale and shift.
func (b *BatchNorm) Params() []*Param { return []*Param{b.gamma, b.beta} }

// RunningStats returns copies of the running mean and variance, primarily
// for tests and diagnostics.
func (b *BatchNorm) RunningStats() (mean, variance []float32) {
	return append([]float32(nil), b.runningMean...), append([]float32(nil), b.runningVar...)
}

// SetRunningStats overwrites the running statistics; model deserialization
// uses it.
func (b *BatchNorm) SetRunningStats(mean, variance []float32) {
	if len(mean) != b.features || len(variance) != b.features {
		failf("nn: BatchNorm %q SetRunningStats with %d/%d values, want %d", b.name, len(mean), len(variance), b.features)
	}
	copy(b.runningMean, mean)
	copy(b.runningVar, variance)
}
