package nn

import (
	"repro/internal/tensor"
)

// Conv2D is a 2-D convolution over [B, C, H, W] tensors implemented as
// im2col + matmul. The kernel weight is stored as a (outC × inC·KH·KW)
// matrix, which makes filter pruning (removing an output channel) a
// whole-row zeroing and input-channel pruning a block-column zeroing — both
// of which the sparse matmul kernel exploits.
//
// The layer is constructed for a fixed input geometry; autonomous perception
// pipelines run a fixed camera resolution, so this costs no generality and
// lets Describe report exact MAC counts.
type Conv2D struct {
	name   string
	geom   tensor.ConvGeom
	outC   int
	weight *Param
	bias   *Param

	lastInput *tensor.Tensor
	lastCols  []*tensor.Tensor // per-sample im2col caches from training Forward
	colsBuf   *tensor.Tensor   // inference scratch, reused across calls
}

// NewConv2D constructs a convolution layer. geom describes the per-sample
// input; outC is the number of filters.
func NewConv2D(name string, geom tensor.ConvGeom, outC int, rng *tensor.RNG) *Conv2D {
	if err := geom.Validate(); err != nil {
		failf("nn: Conv2D %q: %v", name, err)
	}
	if outC <= 0 {
		failf("nn: Conv2D %q with non-positive outC %d", name, outC)
	}
	k := geom.InC * geom.KH * geom.KW
	return &Conv2D{
		name:   name,
		geom:   geom,
		outC:   outC,
		weight: newParam(name+"/weight", tensor.HeNormal(rng, k, outC, k), true),
		bias:   newParam(name+"/bias", tensor.New(outC), false),
	}
}

// Name returns the layer name.
func (c *Conv2D) Name() string { return c.name }

// Geom returns the convolution geometry.
func (c *Conv2D) Geom() tensor.ConvGeom { return c.geom }

// OutChannels returns the number of filters.
func (c *Conv2D) OutChannels() int { return c.outC }

// Weight returns the (outC × inC·KH·KW) weight parameter.
func (c *Conv2D) Weight() *Param { return c.weight }

// Bias returns the per-filter bias parameter.
func (c *Conv2D) Bias() *Param { return c.bias }

// OutShape returns the per-sample output shape [outC, outH, outW].
func (c *Conv2D) OutShape() []int { return []int{c.outC, c.geom.OutH(), c.geom.OutW()} }

func (c *Conv2D) checkInput(x *tensor.Tensor) int {
	g := c.geom
	if x.Dims() != 4 || x.Dim(1) != g.InC || x.Dim(2) != g.InH || x.Dim(3) != g.InW {
		failf("nn: Conv2D %q input shape %v, want [B %d %d %d]", c.name, x.Shape(), g.InC, g.InH, g.InW)
	}
	return x.Dim(0)
}

// Forward convolves via im2col + matmul. The training path expands and
// multiplies per sample (Backward needs each sample's patch matrix); the
// inference path fuses the whole batch into one (C·KH·KW) × (B·OutH·OutW)
// patch matrix and runs a single blocked matmul for the layer. Per output
// element the contraction order is identical in both paths, so fused
// batched inference is bit-identical to running the samples one at a time.
func (c *Conv2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	batch := c.checkInput(x)
	g := c.geom
	oh, ow := g.OutH(), g.OutW()
	k := g.InC * g.KH * g.KW
	spatial := oh * ow
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.outC * spatial

	out := tensor.New(batch, c.outC, oh, ow)
	xd, od, bias := x.Data(), out.Data(), c.bias.Value.Data()

	if training {
		c.lastInput = x
		c.lastCols = make([]*tensor.Tensor, batch)
		for s := 0; s < batch; s++ {
			cols := tensor.New(k, spatial)
			c.lastCols[s] = cols
			tensor.Im2col(xd[s*sampleIn:(s+1)*sampleIn], g, cols)
			res := tensor.MatMul(c.weight.Value, cols) // (outC × spatial)
			rd := res.Data()
			base := s * sampleOut
			for oc := 0; oc < c.outC; oc++ {
				b := bias[oc]
				src := rd[oc*spatial : (oc+1)*spatial]
				dst := od[base+oc*spatial : base+(oc+1)*spatial]
				for i, v := range src {
					dst[i] = v + b
				}
			}
		}
		return out
	}

	// Inference: one matmul for the whole layer. The scratch patch matrix
	// is cached per batch width, so the steady states (single-frame Detect,
	// a stable fleet batch size) stay allocation-free on this path.
	total := batch * spatial
	if c.colsBuf == nil || c.colsBuf.Dim(1) != total {
		c.colsBuf = tensor.New(k, total)
	}
	for s := 0; s < batch; s++ {
		tensor.Im2colOffset(xd[s*sampleIn:(s+1)*sampleIn], g, c.colsBuf, s*spatial)
	}
	res := tensor.MatMulBlocked(c.weight.Value, c.colsBuf) // (outC × B·spatial)
	rd := res.Data()
	for s := 0; s < batch; s++ {
		base := s * sampleOut
		for oc := 0; oc < c.outC; oc++ {
			b := bias[oc]
			src := rd[oc*total+s*spatial : oc*total+(s+1)*spatial]
			dst := od[base+oc*spatial : base+(oc+1)*spatial]
			for i, v := range src {
				dst[i] = v + b
			}
		}
	}
	return out
}

// Backward accumulates weight/bias gradients and returns the input gradient.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.lastInput == nil || c.lastCols == nil {
		failf("nn: Conv2D %q Backward before training Forward", c.name)
	}
	batch := c.checkInput(c.lastInput)
	g := c.geom
	oh, ow := g.OutH(), g.OutW()
	spatial := oh * ow
	if grad.Dims() != 4 || grad.Dim(0) != batch || grad.Dim(1) != c.outC || grad.Dim(2) != oh || grad.Dim(3) != ow {
		failf("nn: Conv2D %q grad shape %v, want [%d %d %d %d]", c.name, grad.Shape(), batch, c.outC, oh, ow)
	}
	sampleIn := g.InC * g.InH * g.InW
	sampleOut := c.outC * spatial

	dx := tensor.New(batch, g.InC, g.InH, g.InW)
	gd, dxd, bg := grad.Data(), dx.Data(), c.bias.Grad.Data()
	for s := 0; s < batch; s++ {
		gSample := tensor.FromSlice(gd[s*sampleOut:(s+1)*sampleOut], c.outC, spatial)
		// dW += gSample (outC×spatial) · colsᵀ (spatial×k)
		dW := tensor.MatMulTransB(gSample, c.lastCols[s])
		tensor.AddInPlace(c.weight.Grad, dW)
		// db += row sums of gSample.
		for oc := 0; oc < c.outC; oc++ {
			var sum float32
			for _, v := range gd[s*sampleOut+oc*spatial : s*sampleOut+(oc+1)*spatial] {
				sum += v
			}
			bg[oc] += sum
		}
		// dcols = Wᵀ (k×outC) · gSample (outC×spatial), then scatter back.
		dcols := tensor.MatMulTransA(c.weight.Value, gSample)
		tensor.Col2im(dcols, g, dxd[s*sampleIn:(s+1)*sampleIn])
	}
	return dx
}

// Params returns the weight and bias.
func (c *Conv2D) Params() []*Param { return []*Param{c.weight, c.bias} }

// Describe reports the convolution's cost profile.
func (c *Conv2D) Describe() Info {
	g := c.geom
	k := int64(g.InC) * int64(g.KH) * int64(g.KW)
	spatial := int64(g.OutH()) * int64(g.OutW())
	return Info{
		Name:                 c.name,
		Type:                 "conv2d",
		ParamCount:           k*int64(c.outC) + int64(c.outC),
		MACsPerSample:        k * int64(c.outC) * spatial,
		ActivationsPerSample: int64(c.outC) * spatial,
	}
}
