package nn

import (
	"math"

	"repro/internal/tensor"
)

// ReLU is the rectified linear activation, max(0, x).
type ReLU struct {
	name     string
	lastMask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Name returns the layer name.
func (r *ReLU) Name() string { return r.name }

// Forward applies max(0, x) elementwise.
func (r *ReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	if training {
		if len(r.lastMask) != len(xd) {
			r.lastMask = make([]bool, len(xd))
		}
		for i, v := range xd {
			if v > 0 {
				od[i] = v
				r.lastMask[i] = true
			} else {
				r.lastMask[i] = false
			}
		}
		return out
	}
	for i, v := range xd {
		if v > 0 {
			od[i] = v
		}
	}
	return out
}

// Backward gates the incoming gradient by the activation mask.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.lastMask == nil || len(r.lastMask) != grad.Len() {
		failf("nn: ReLU %q Backward before training Forward", r.name)
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, on := range r.lastMask {
		if on {
			od[i] = gd[i]
		}
	}
	return out
}

// Params returns nil: ReLU has no parameters.
func (r *ReLU) Params() []*Param { return nil }

// LeakyReLU is max(x, alpha·x) with a small positive slope alpha for
// negative inputs.
type LeakyReLU struct {
	name     string
	alpha    float32
	lastMask []bool
}

// NewLeakyReLU constructs a LeakyReLU with the given negative slope.
func NewLeakyReLU(name string, alpha float32) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		failf("nn: LeakyReLU %q alpha %v out of [0,1)", name, alpha)
	}
	return &LeakyReLU{name: name, alpha: alpha}
}

// Name returns the layer name.
func (l *LeakyReLU) Name() string { return l.name }

// Alpha returns the negative-side slope.
func (l *LeakyReLU) Alpha() float32 { return l.alpha }

// Forward applies the leaky rectifier elementwise.
func (l *LeakyReLU) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := tensor.New(x.Shape()...)
	xd, od := x.Data(), out.Data()
	if training && len(l.lastMask) != len(xd) {
		l.lastMask = make([]bool, len(xd))
	}
	for i, v := range xd {
		pos := v > 0
		if pos {
			od[i] = v
		} else {
			od[i] = l.alpha * v
		}
		if training {
			l.lastMask[i] = pos
		}
	}
	return out
}

// Backward scales the incoming gradient by 1 or alpha.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.lastMask == nil || len(l.lastMask) != grad.Len() {
		failf("nn: LeakyReLU %q Backward before training Forward", l.name)
	}
	out := tensor.New(grad.Shape()...)
	gd, od := grad.Data(), out.Data()
	for i, on := range l.lastMask {
		if on {
			od[i] = gd[i]
		} else {
			od[i] = l.alpha * gd[i]
		}
	}
	return out
}

// Params returns nil: LeakyReLU has no parameters.
func (l *LeakyReLU) Params() []*Param { return nil }

// Tanh is the hyperbolic tangent activation.
type Tanh struct {
	name    string
	lastOut *tensor.Tensor
}

// NewTanh constructs a Tanh layer.
func NewTanh(name string) *Tanh { return &Tanh{name: name} }

// Name returns the layer name.
func (t *Tanh) Name() string { return t.name }

// Forward applies tanh elementwise.
func (t *Tanh) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	out := x.Map(func(v float32) float32 { return float32(math.Tanh(float64(v))) })
	if training {
		t.lastOut = out
	}
	return out
}

// Backward multiplies the gradient by 1 - tanh²(x).
func (t *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if t.lastOut == nil || t.lastOut.Len() != grad.Len() {
		failf("nn: Tanh %q Backward before training Forward", t.name)
	}
	out := tensor.New(grad.Shape()...)
	gd, od, yd := grad.Data(), out.Data(), t.lastOut.Data()
	for i, g := range gd {
		od[i] = g * (1 - yd[i]*yd[i])
	}
	return out
}

// Params returns nil: Tanh has no parameters.
func (t *Tanh) Params() []*Param { return nil }

// Softmax normalizes the last dimension of a 2-D input into a probability
// distribution. It is intended for inference-time probability readout; the
// training path uses the fused softmax-cross-entropy loss instead, so
// Backward is deliberately unsupported.
type Softmax struct {
	name string
}

// NewSoftmax constructs a Softmax layer.
func NewSoftmax(name string) *Softmax { return &Softmax{name: name} }

// Name returns the layer name.
func (s *Softmax) Name() string { return s.name }

// Forward applies a row-wise softmax.
func (s *Softmax) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	return tensor.SoftmaxRows(x)
}

// Backward panics: use the fused softmax-cross-entropy loss for training.
func (s *Softmax) Backward(grad *tensor.Tensor) *tensor.Tensor {
	failf("nn: Softmax %q does not support Backward; train with the fused cross-entropy loss", s.name)
	return nil // unreachable: failf always panics
}

// Params returns nil: Softmax has no parameters.
func (s *Softmax) Params() []*Param { return nil }
