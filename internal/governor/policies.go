package governor

import "fmt"

// Static always proposes the same level — the irreversible-deployment
// baseline (a conventionally pruned model cannot move at runtime).
type Static struct {
	// Level is the fixed proposal.
	Level int
}

// Name returns "static(L<n>)".
func (s Static) Name() string { return fmt.Sprintf("static(L%d)", s.Level) }

// Decide returns the fixed level.
func (s Static) Decide(Inputs) int { return s.Level }

// Threshold proposes, every tick, the deepest level whose calibrated
// accuracy meets the current criticality class's floor. It reacts instantly
// in both directions, which maximizes energy savings but can oscillate when
// the criticality signal sits near a class boundary.
type Threshold struct {
	// LatencyBudgetMS, when positive, additionally filters out levels whose
	// calibrated latency exceeds the budget.
	LatencyBudgetMS float64
}

// Name returns "threshold".
func (t Threshold) Name() string { return "threshold" }

// Decide picks the deepest contract-satisfying level.
func (t Threshold) Decide(in Inputs) int {
	floor := in.Contract.Floor(in.Assessment.Class)
	best := 0
	for i, lvl := range in.Levels {
		if lvl.Accuracy < floor {
			continue
		}
		if t.LatencyBudgetMS > 0 && lvl.LatencyMS > t.LatencyBudgetMS {
			continue
		}
		best = i
	}
	return best
}

// Hysteresis escalates quality immediately when criticality rises but
// de-escalates (re-prunes) only after the relaxed requirement has held for
// DwellTicks consecutive ticks. This trades a little energy for far fewer
// transitions — the classic anti-oscillation governor.
type Hysteresis struct {
	// DwellTicks is how long a deeper target must persist before it is
	// adopted (default 10).
	DwellTicks int

	pending      int
	pendingSince int
	initialized  bool
}

// Name returns "hysteresis(<dwell>)".
func (h *Hysteresis) Name() string { return fmt.Sprintf("hysteresis(%d)", h.dwell()) }

func (h *Hysteresis) dwell() int {
	if h.DwellTicks <= 0 {
		return 10
	}
	return h.DwellTicks
}

// Decide applies the asymmetric rule over the Threshold proposal.
func (h *Hysteresis) Decide(in Inputs) int {
	want := (Threshold{}).Decide(in)
	if want <= in.Current {
		// Escalation (or hold): immediate, and any pending de-escalation is
		// cancelled.
		h.initialized = false
		return want
	}
	// De-escalation: adopt only after the same-or-deeper target persists.
	if !h.initialized || want < h.pending {
		h.pending = want
		h.pendingSince = in.Tick
		h.initialized = true
	}
	if in.Tick-h.pendingSince+1 >= h.dwell() {
		h.initialized = false
		return h.pending
	}
	return in.Current
}

// EnergyBudget tracks a rolling per-tick energy allowance: while actual
// consumption runs ahead of budget it proposes deeper levels (never past
// the contract — the governor clamps), and when under budget it affords
// denser ones. It models a battery-constrained mission profile where
// "spend quality only when you have the joules" is an explicit objective.
type EnergyBudget struct {
	// BudgetPerTickMJ is the sustainable per-tick energy allowance.
	BudgetPerTickMJ float64
	// Slack widens the dead zone around the budget before the policy
	// reacts, as a fraction (default 0.1).
	Slack float64

	spentMJ float64
	ticks   int
}

// Name returns "energy-budget".
func (e *EnergyBudget) Name() string { return fmt.Sprintf("energy-budget(%.3f)", e.BudgetPerTickMJ) }

// Decide charges the active level's energy, then proposes the deepest
// contract-feasible level when over budget and the Threshold choice when
// under.
func (e *EnergyBudget) Decide(in Inputs) int {
	if in.Current >= 0 && in.Current < len(in.Levels) {
		e.spentMJ += in.Levels[in.Current].EnergyMJ
	}
	e.ticks++
	slack := e.Slack
	if slack <= 0 {
		slack = 0.1
	}
	budget := e.BudgetPerTickMJ * float64(e.ticks)
	base := (Threshold{}).Decide(in)
	switch {
	case e.BudgetPerTickMJ <= 0:
		return base
	case e.spentMJ > budget*(1+slack):
		// Over budget: go as deep as the library allows; the governor's
		// contract clamp keeps it honest.
		return len(in.Levels) - 1
	case e.spentMJ < budget*(1-slack):
		// Under budget: afford one level denser than the quality-first
		// choice.
		if base > 0 {
			return base - 1
		}
		return base
	default:
		return base
	}
}

// SpentMJ returns the energy charged so far.
func (e *EnergyBudget) SpentMJ() float64 { return e.spentMJ }

// Predictive extrapolates the criticality score with an exponential moving
// average and a smoothed trend, escalating *before* the class boundary is
// crossed. It trades a few extra denser ticks for earlier full-quality
// perception in rising-threat situations. The trend estimator is smoothed
// three times harder than the level and gated by a deadband so frame-to-
// frame uncertainty jitter does not amplify into level thrash.
type Predictive struct {
	// Alpha is the EMA coefficient for the score (default 0.3).
	Alpha float64
	// LeadTicks is how far ahead the trend is extrapolated (default 20).
	LeadTicks float64
	// TrendDeadband suppresses extrapolation for |trend| below this value
	// (default 0.003/tick).
	TrendDeadband float64
	// Thresholds are the score boundaries per criticality class; use the
	// assessor's. Zero value falls back to the default assessor boundaries.
	Thresholds [3]float64

	ema, trend float64
	prev       float64
	started    bool
}

// Name returns "predictive".
func (p *Predictive) Name() string { return "predictive" }

func (p *Predictive) params() (alpha, lead, deadband float64, th [3]float64) {
	alpha = p.Alpha
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	lead = p.LeadTicks
	if lead <= 0 {
		lead = 20
	}
	deadband = p.TrendDeadband
	if deadband <= 0 {
		deadband = 0.015
	}
	th = p.Thresholds
	if th == ([3]float64{}) {
		th = [3]float64{0.2, 0.4, 0.6} // the default assessor's boundaries
	}
	return alpha, lead, deadband, th
}

// Decide extrapolates the score and selects against the predicted class.
func (p *Predictive) Decide(in Inputs) int {
	alpha, lead, deadband, th := p.params()
	score := in.Assessment.Score
	if !p.started {
		p.ema, p.prev, p.started = score, score, true
	}
	p.ema = alpha*score + (1-alpha)*p.ema
	p.trend = alpha/3*(score-p.prev) + (1-alpha/3)*p.trend
	p.prev = score

	predicted := p.ema
	if p.trend > deadband {
		predicted += lead * p.trend
	}
	if predicted < score {
		predicted = score // never predict *less* danger than observed now
	}
	class := 0
	switch {
	case predicted >= th[2]:
		class = 3
	case predicted >= th[1]:
		class = 2
	case predicted >= th[0]:
		class = 1
	}
	floor := in.Contract.MinAccuracy[class]
	return DeepestMeeting(in.Levels, floor)
}
