package governor

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/safety"
	"repro/internal/tensor"
)

// fixture builds a 4-level reversible model with synthetic calibrated
// accuracies: L0 0.99, L1 0.95, L2 0.90, L3 0.80.
func fixture(t testing.TB) *core.ReversibleModel {
	t.Helper()
	rng := tensor.NewRNG(1)
	m := nn.NewSequential("m",
		nn.NewDense("fc1", 8, 16, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 16, 4, rng),
	)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.3, 0.6, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	acc := []float64{0.99, 0.95, 0.90, 0.80}
	i := 0
	if err := rm.Calibrate(func(*nn.Sequential) float64 { a := acc[i]; i++; return a }); err != nil {
		t.Fatal(err)
	}
	return rm
}

func assess(score float64) safety.Assessment {
	a := safety.DefaultAssessor()
	cls := safety.Nominal
	switch {
	case score >= a.Thresholds[2]:
		cls = safety.Emergency
	case score >= a.Thresholds[1]:
		cls = safety.Critical
	case score >= a.Thresholds[0]:
		cls = safety.Elevated
	}
	return safety.Assessment{Score: score, Class: cls}
}

func TestNewValidation(t *testing.T) {
	rm := fixture(t)
	if _, err := New(nil, Threshold{}, safety.DefaultContract()); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := New(rm, nil, safety.DefaultContract()); err == nil {
		t.Error("nil policy accepted")
	}
	bad := safety.Contract{MinAccuracy: [safety.NumClasses]float64{0.9, 0.5, 0.9, 0.9}}
	if _, err := New(rm, Threshold{}, bad); err == nil {
		t.Error("invalid contract accepted")
	}
}

func TestThresholdPolicyPicksDeepestMeetingFloor(t *testing.T) {
	rm := fixture(t)
	// Contract: nominal 0.75 → L3 (0.80 ≥ 0.75); critical 0.93 → L1;
	// emergency 0.97 → L0.
	g, err := New(rm, Threshold{}, safety.DefaultContract())
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Tick(0, assess(0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied != 3 {
		t.Errorf("nominal applied L%d, want L3", d.Applied)
	}
	d, _ = g.Tick(1, assess(0.45))
	if d.Applied != 1 {
		t.Errorf("critical applied L%d, want L1", d.Applied)
	}
	d, _ = g.Tick(2, assess(0.9))
	if d.Applied != 0 {
		t.Errorf("emergency applied L%d, want L0", d.Applied)
	}
	if g.Switches() != 3 {
		t.Errorf("switches = %d, want 3", g.Switches())
	}
	if g.Violations().Count() != 0 {
		t.Error("unexpected violations")
	}
}

func TestGovernorClampsAggressivePolicy(t *testing.T) {
	rm := fixture(t)
	g, err := New(rm, Static{Level: 3}, safety.DefaultContract())
	if err != nil {
		t.Fatal(err)
	}
	d, err := g.Tick(0, assess(0.9)) // emergency floor 0.97: only L0 qualifies
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied != 0 || !d.Clamped {
		t.Errorf("decision = %+v, want clamped to L0", d)
	}
}

func TestGovernorLogsViolationWhenDenseMissesFloor(t *testing.T) {
	rm := fixture(t)
	contract := safety.Contract{MinAccuracy: [safety.NumClasses]float64{0.5, 0.6, 0.995, 0.999}}
	g, err := New(rm, Threshold{}, contract)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(0, assess(0.9)); err != nil {
		t.Fatal(err)
	}
	if g.Violations().Count() != 1 {
		t.Errorf("violations = %d, want 1", g.Violations().Count())
	}
	if rm.Current() != 0 {
		t.Error("governor should still run dense when even L0 misses the floor")
	}
}

func TestGovernorClampsOutOfRangeProposal(t *testing.T) {
	rm := fixture(t)
	g, _ := New(rm, Static{Level: 99}, safety.DefaultContract())
	d, err := g.Tick(0, assess(0))
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied >= rm.NumLevels() {
		t.Errorf("applied out-of-range level %d", d.Applied)
	}
}

func TestHysteresisEscalatesImmediately(t *testing.T) {
	rm := fixture(t)
	h := &Hysteresis{DwellTicks: 10}
	g, _ := New(rm, h, safety.DefaultContract())
	g.Tick(0, assess(0)) // settle at L3
	d, _ := g.Tick(1, assess(0.9))
	if d.Applied != 0 {
		t.Errorf("escalation delayed: applied L%d", d.Applied)
	}
}

func TestHysteresisDelaysDeescalation(t *testing.T) {
	rm := fixture(t)
	h := &Hysteresis{DwellTicks: 5}
	g, _ := New(rm, h, safety.DefaultContract())
	g.Tick(0, assess(0.9)) // L0
	for i := 1; i <= 3; i++ {
		d, _ := g.Tick(i, assess(0))
		if d.Applied != 0 {
			t.Fatalf("tick %d de-escalated to L%d before dwell", i, d.Applied)
		}
	}
	d, _ := g.Tick(4, assess(0)) // 5th consecutive calm tick (0-based ticks 0..4 pending 1..4)
	_ = d
	d5, _ := g.Tick(5, assess(0))
	if d5.Applied != 3 {
		t.Errorf("after dwell still at L%d", d5.Applied)
	}
}

func TestHysteresisCancelsPendingOnSpike(t *testing.T) {
	rm := fixture(t)
	h := &Hysteresis{DwellTicks: 4}
	g, _ := New(rm, h, safety.DefaultContract())
	g.Tick(0, assess(0.9)) // L0
	g.Tick(1, assess(0))   // pending de-escalation
	g.Tick(2, assess(0))
	g.Tick(3, assess(0.9)) // spike cancels pending
	for i := 4; i <= 6; i++ {
		d, _ := g.Tick(i, assess(0))
		if d.Applied != 0 {
			if i < 7 {
				t.Fatalf("tick %d: pending survived the spike (L%d)", i, d.Applied)
			}
		}
	}
}

func TestHysteresisFewerSwitchesThanThreshold(t *testing.T) {
	// Oscillating criticality right at a class boundary.
	// Oscillate across the Elevated/Critical boundary at 0.4.
	trace := make([]safety.Assessment, 200)
	for i := range trace {
		if i%2 == 0 {
			trace[i] = assess(0.45)
		} else {
			trace[i] = assess(0.35)
		}
	}
	run := func(p Policy) int {
		rm := fixture(t)
		g, err := New(rm, p, safety.DefaultContract())
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range trace {
			if _, err := g.Tick(i, a); err != nil {
				t.Fatal(err)
			}
		}
		return g.Switches()
	}
	th := run(Threshold{})
	hy := run(&Hysteresis{DwellTicks: 20})
	if hy >= th {
		t.Errorf("hysteresis switches (%d) not below threshold (%d)", hy, th)
	}
	if th < 100 {
		t.Errorf("oscillating trace should thrash threshold policy, got %d switches", th)
	}
}

func TestPredictiveEscalatesEarly(t *testing.T) {
	// A steadily rising score (steeper than the trend deadband): predictive
	// should reach L0 before the score actually crosses the emergency
	// boundary.
	rmP := fixture(t)
	p := &Predictive{Alpha: 0.5, LeadTicks: 30}
	gP, _ := New(rmP, p, safety.DefaultContract())
	rmT := fixture(t)
	gT, _ := New(rmT, Threshold{}, safety.DefaultContract())

	firstDenseP, firstDenseT := -1, -1
	for i := 0; i < 100; i++ {
		score := float64(i) * 0.02 // reaches the 0.6 emergency boundary at tick 30
		if score > 1 {
			score = 1
		}
		dp, err := gP.Tick(i, assess(score))
		if err != nil {
			t.Fatal(err)
		}
		dt, err := gT.Tick(i, assess(score))
		if err != nil {
			t.Fatal(err)
		}
		if dp.Applied == 0 && firstDenseP < 0 {
			firstDenseP = i
		}
		if dt.Applied == 0 && firstDenseT < 0 {
			firstDenseT = i
		}
	}
	if firstDenseP < 0 || firstDenseT < 0 {
		t.Fatal("policies never reached dense")
	}
	if firstDenseP >= firstDenseT {
		t.Errorf("predictive reached dense at %d, threshold at %d — no anticipation", firstDenseP, firstDenseT)
	}
}

func TestPredictiveNeverBelowObservedScore(t *testing.T) {
	rm := fixture(t)
	p := &Predictive{}
	g, _ := New(rm, p, safety.DefaultContract())
	// Falling scores: prediction must not undercut the live requirement.
	for i := 0; i < 50; i++ {
		score := math.Max(0, 0.9-float64(i)*0.05)
		d, err := g.Tick(i, assess(score))
		if err != nil {
			t.Fatal(err)
		}
		floor := safety.DefaultContract().Floor(assess(score).Class)
		if rm.Level(d.Applied).Accuracy < floor {
			t.Fatalf("tick %d below contract", i)
		}
	}
}

func TestEnergyBudgetPolicy(t *testing.T) {
	rm := fixture(t)
	// Attach per-level energies: dense 4× the deepest.
	for i := 0; i < rm.NumLevels(); i++ {
		rm.SetCost(i, 1, 4-float64(i))
	}
	// Generous budget: policy should track (or densify from) the quality
	// choice, never force the deepest in calm conditions.
	rich := &EnergyBudget{BudgetPerTickMJ: 10}
	gRich, _ := New(rm, rich, safety.DefaultContract())
	for i := 0; i < 50; i++ {
		if _, err := gRich.Tick(i, assess(0)); err != nil {
			t.Fatal(err)
		}
	}
	richLevel := rm.Current()

	// Starvation budget: the policy must drive to the deepest feasible
	// level.
	rm2 := fixture(t)
	for i := 0; i < rm2.NumLevels(); i++ {
		rm2.SetCost(i, 1, 4-float64(i))
	}
	poor := &EnergyBudget{BudgetPerTickMJ: 0.1}
	gPoor, _ := New(rm2, poor, safety.DefaultContract())
	for i := 0; i < 50; i++ {
		if _, err := gPoor.Tick(i, assess(0)); err != nil {
			t.Fatal(err)
		}
	}
	if rm2.Current() < richLevel {
		t.Errorf("starved policy at L%d, rich at L%d — budget has no effect", rm2.Current(), richLevel)
	}
	if poor.SpentMJ() <= 0 {
		t.Error("energy accounting inactive")
	}

	// Contract still dominates: an emergency forces dense even when broke.
	if _, err := gPoor.Tick(51, assess(0.9)); err != nil {
		t.Fatal(err)
	}
	if rm2.Current() != 0 {
		t.Errorf("emergency at L%d under energy starvation", rm2.Current())
	}
}

func TestStaticPolicyNeverSwitchesWhenSafe(t *testing.T) {
	rm := fixture(t)
	g, _ := New(rm, Static{Level: 1}, safety.DefaultContract())
	for i := 0; i < 20; i++ {
		if _, err := g.Tick(i, assess(0.3)); err != nil { // elevated floor 0.85 ≤ L1's 0.95
			t.Fatal(err)
		}
	}
	if g.Switches() != 1 { // only the initial move from L0 to L1
		t.Errorf("switches = %d, want 1", g.Switches())
	}
}

func TestTraceRecording(t *testing.T) {
	rm := fixture(t)
	g, _ := New(rm, Threshold{}, safety.DefaultContract(), WithTrace())
	g.Tick(0, assess(0))
	g.Tick(1, assess(0.9))
	ds := g.Decisions()
	if len(ds) != 2 {
		t.Fatalf("trace length %d", len(ds))
	}
	if ds[1].Tick != 1 || ds[1].Applied != 0 || !ds[1].Switched {
		t.Errorf("trace entry = %+v", ds[1])
	}
	// Without WithTrace, no decisions are kept.
	g2, _ := New(rm, Threshold{}, safety.DefaultContract())
	g2.Tick(0, assess(0))
	if len(g2.Decisions()) != 0 {
		t.Error("untraced governor recorded decisions")
	}
}

func TestThresholdLatencyBudget(t *testing.T) {
	rm := fixture(t)
	// Give deep levels *higher* latency than allowed (artificial, to test
	// the filter).
	rm.SetCost(3, 9.0, 1)
	rm.SetCost(2, 2.0, 1)
	in := Inputs{Assessment: assess(0), Levels: rm.Levels(), Contract: safety.DefaultContract()}
	if got := (Threshold{LatencyBudgetMS: 5}).Decide(in); got != 2 {
		t.Errorf("latency-budgeted choice L%d, want L2", got)
	}
}

func TestDeepestMeeting(t *testing.T) {
	rm := fixture(t)
	if DeepestMeeting(rm.Levels(), 0.97) != 0 {
		t.Error("0.97 floor should force L0")
	}
	if DeepestMeeting(rm.Levels(), 0.85) != 2 {
		t.Error("0.85 floor should give L2")
	}
	if DeepestMeeting(rm.Levels(), 0.1) != 3 {
		t.Error("loose floor should give deepest")
	}
}
