// Package governor implements the runtime self-adaptation loop (the MAPE-K
// pattern: Monitor→Analyze→Plan→Execute over shared Knowledge) that drives
// reversible pruning-level transitions. Each control tick it takes the
// safety monitor's criticality assessment, asks a pluggable Policy for a
// target level, enforces the hard accuracy contract, and executes the
// transition on the ReversibleModel.
//
// The contract enforcement is deliberately outside the policies: whatever a
// policy proposes, the governor only ever *raises* quality to meet the
// current criticality class's accuracy floor, so a buggy or aggressive
// policy cannot take the system below contract.
//
// Every tick is observable through the TickObserver seam (applied level,
// switch/clamp/violation flags, decide+execute latency); telemetry.Hooks
// plugs in via WithObserver to expose the loop's behavior on /metrics and
// over OTLP. A nil observer costs nothing — the disabled path is
// allocation-free (BenchmarkTickNoObserver).
package governor

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/safety"
)

// Inputs is what a policy sees each tick.
type Inputs struct {
	// Tick is the control tick index.
	Tick int
	// Assessment is the fused criticality estimate for this tick.
	Assessment safety.Assessment
	// Current is the active level index.
	Current int
	// Levels is the calibrated level library (index 0 = dense).
	Levels []*core.Level
	// Contract is the accuracy contract in force.
	Contract safety.Contract
}

// Policy proposes a pruning level for the current tick. Implementations
// may keep internal state (hysteresis, trend estimators) but must be
// deterministic given their input sequence.
type Policy interface {
	// Name identifies the policy in tables.
	Name() string
	// Decide returns the desired level index; the governor clamps and
	// contract-checks it.
	Decide(in Inputs) int
}

// Decision records one governor tick.
type Decision struct {
	// Tick is the control tick index.
	Tick int
	// Class is the criticality class at decision time.
	Class safety.Criticality
	// Target is the policy's proposal, Applied the level actually set.
	Target, Applied int
	// Switched reports whether the level changed this tick.
	Switched bool
	// Clamped reports whether contract enforcement overrode the policy.
	Clamped bool
}

// Target is the knob surface a Governor drives: the level-library view it
// reads (Current/NumLevels/Level/Levels) and the transition it executes
// (ApplyLevel). *core.ReversibleModel satisfies it directly; a fleet
// instance satisfies it with per-call locking so a governor built over the
// instance serializes correctly against concurrent detection without the
// governor knowing about locks.
type Target interface {
	// Current returns the active level index.
	Current() int
	// NumLevels returns the size of the level library.
	NumLevels() int
	// Level returns level i's calibrated metadata.
	Level(i int) *core.Level
	// Levels returns the calibrated level library (index 0 = dense).
	Levels() []*core.Level
	// ApplyLevel transitions the model to the target level.
	ApplyLevel(target int) error
}

// TickObserver receives a notification after every completed governor
// tick: the applied level, the decision outcome flags, and the wall-clock
// time the tick took (policy decision + contract enforcement + transition
// execution). Implementations must be cheap and must not call back into
// the governor; internal/telemetry.Hooks satisfies this interface.
type TickObserver interface {
	ObserveTick(tick, level int, switched, clamped, violated bool, elapsed time.Duration)
}

// Governor executes the adaptation loop over one adaptation target
// (typically a *core.ReversibleModel, or a fleet.Instance in multi-model
// deployments).
type Governor struct {
	rm        Target
	policy    Policy
	contract  safety.Contract
	log       safety.ViolationLog
	decisions []Decision
	switches  int
	keepTrace bool
	observer  TickObserver // nil: observation disabled (zero cost)
}

// Option configures a Governor.
type Option func(*Governor)

// WithTrace records every Decision (for timeline figures); without it only
// aggregate counters are kept.
func WithTrace() Option { return func(g *Governor) { g.keepTrace = true } }

// WithObserver installs a tick observer (runtime telemetry). The hook is
// nil-safe: constructing without it leaves Tick's hot path free of clock
// reads and allocations (see BenchmarkTickNoObserver).
func WithObserver(o TickObserver) Option { return func(g *Governor) { g.observer = o } }

// New constructs a governor over an adaptation target. The target's levels
// should be calibrated (Accuracy filled) — an uncalibrated library would
// make every contract check fail to the dense level.
func New(rm Target, policy Policy, contract safety.Contract, opts ...Option) (*Governor, error) {
	if rm == nil {
		return nil, fmt.Errorf("governor: nil model")
	}
	if policy == nil {
		return nil, fmt.Errorf("governor: nil policy")
	}
	if err := contract.Validate(); err != nil {
		return nil, err
	}
	g := &Governor{rm: rm, policy: policy, contract: contract}
	for _, o := range opts {
		o(g)
	}
	return g, nil
}

// Model returns the governed adaptation target.
func (g *Governor) Model() Target { return g.rm }

// Policy returns the active policy.
func (g *Governor) Policy() Policy { return g.policy }

// Tick runs one MAPE-K iteration and returns the decision taken.
func (g *Governor) Tick(tick int, a safety.Assessment) (Decision, error) {
	var t0 time.Time
	if g.observer != nil {
		t0 = now()
	}
	in := Inputs{
		Tick:       tick,
		Assessment: a,
		Current:    g.rm.Current(),
		Levels:     g.rm.Levels(),
		Contract:   g.contract,
	}
	target := g.policy.Decide(in)
	if target < 0 {
		target = 0
	}
	if target >= g.rm.NumLevels() {
		target = g.rm.NumLevels() - 1
	}

	// Hard contract enforcement: only ever raise quality. Emergency
	// additionally bypasses the calibration table entirely — the system
	// restores full capability regardless of what any level claims.
	floor := g.contract.Floor(a.Class)
	applied := target
	clamped := false
	if a.Class >= safety.Emergency {
		if applied != 0 {
			clamped = true
		}
		applied = 0
	}
	for applied > 0 && g.rm.Level(applied).Accuracy < floor {
		applied--
		clamped = true
	}
	violated := false
	if g.rm.Level(applied).Accuracy < floor {
		// Even the dense model misses the floor; record the violation and
		// run dense anyway — there is nothing better to execute.
		g.log.Add(tick, a.Class, floor, g.rm.Level(applied).Accuracy)
		violated = true
	}

	prev := g.rm.Current()
	if err := g.rm.ApplyLevel(applied); err != nil {
		return Decision{}, fmt.Errorf("governor: tick %d: %w", tick, err)
	}
	d := Decision{
		Tick:     tick,
		Class:    a.Class,
		Target:   target,
		Applied:  applied,
		Switched: applied != prev,
		Clamped:  clamped,
	}
	if d.Switched {
		g.switches++
	}
	if g.keepTrace {
		g.decisions = append(g.decisions, d)
	}
	if g.observer != nil {
		g.observer.ObserveTick(tick, applied, d.Switched, d.Clamped, violated, now().Sub(t0))
	}
	return d, nil
}

// Switches returns the number of level changes executed so far.
func (g *Governor) Switches() int { return g.switches }

// Violations returns the contract-violation log.
func (g *Governor) Violations() *safety.ViolationLog { return &g.log }

// Decisions returns the recorded decision trace (empty unless WithTrace).
func (g *Governor) Decisions() []Decision { return g.decisions }

// DeepestMeeting returns the deepest (sparsest) level index whose
// calibrated accuracy meets floor, falling back to 0. It is the shared
// quality-first selection rule the policies build on.
func DeepestMeeting(levels []*core.Level, floor float64) int {
	best := 0
	for i, lvl := range levels {
		if lvl.Accuracy >= floor {
			best = i
		}
	}
	return best
}
