package governor

import "time"

// now is the package clock seam. Tick-latency measurements for the
// TickObserver hook read through it so tests can pin time to a fake clock.
var now = time.Now
