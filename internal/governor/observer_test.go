package governor

import (
	"testing"
	"time"

	"repro/internal/safety"
	"repro/internal/telemetry"
)

// recordingObserver captures every ObserveTick call.
type recordingObserver struct {
	ticks    []int
	levels   []int
	switched []bool
	clamped  []bool
	violated []bool
	elapsed  []time.Duration
}

func (o *recordingObserver) ObserveTick(tick, level int, switched, clamped, violated bool, elapsed time.Duration) {
	o.ticks = append(o.ticks, tick)
	o.levels = append(o.levels, level)
	o.switched = append(o.switched, switched)
	o.clamped = append(o.clamped, clamped)
	o.violated = append(o.violated, violated)
	o.elapsed = append(o.elapsed, elapsed)
}

// pinClock swaps the package clock seam for a deterministic one advancing
// step per read, restoring the real clock on cleanup.
func pinClock(t *testing.T, step time.Duration) {
	t.Helper()
	base := time.Unix(1_700_000_000, 0)
	now = func() time.Time {
		base = base.Add(step)
		return base
	}
	t.Cleanup(func() { now = time.Now })
}

func TestTickObserverReceivesDecisions(t *testing.T) {
	pinClock(t, 3*time.Microsecond)
	rm := fixture(t)
	obs := &recordingObserver{}
	g, err := New(rm, Threshold{}, safety.DefaultContract(), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	// Nominal → deepest level (switch from 0), then steady state, then
	// emergency → restore to dense.
	if _, err := g.Tick(0, assess(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(1, assess(0)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(2, assess(0.99)); err != nil {
		t.Fatal(err)
	}
	if len(obs.ticks) != 3 {
		t.Fatalf("observed %d ticks, want 3", len(obs.ticks))
	}
	if obs.ticks[0] != 0 || obs.ticks[1] != 1 || obs.ticks[2] != 2 {
		t.Errorf("tick indices = %v", obs.ticks)
	}
	if obs.levels[0] != 3 || obs.levels[1] != 3 || obs.levels[2] != 0 {
		t.Errorf("observed levels = %v, want [3 3 0]", obs.levels)
	}
	if !obs.switched[0] || obs.switched[1] || !obs.switched[2] {
		t.Errorf("switched = %v, want [true false true]", obs.switched)
	}
	if obs.violated[0] || obs.violated[1] || obs.violated[2] {
		t.Errorf("violated = %v, want all false", obs.violated)
	}
	// The pinned clock advances 3µs per read and Tick reads it exactly
	// twice (entry/exit), so every observed elapsed time is one step.
	for i, e := range obs.elapsed {
		if e != 3*time.Microsecond {
			t.Errorf("elapsed[%d] = %v, want 3µs", i, e)
		}
	}
}

// fixedPolicy always proposes the same level, whatever the assessment —
// the governor's contract enforcement must override it.
type fixedPolicy int

func (fixedPolicy) Name() string        { return "fixed" }
func (p fixedPolicy) Decide(Inputs) int { return int(p) }

func TestTickObserverSeesEmergencyClamp(t *testing.T) {
	rm := fixture(t)
	obs := &recordingObserver{}
	g, err := New(rm, fixedPolicy(3), safety.DefaultContract(), WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(0, assess(0.99)); err != nil {
		t.Fatal(err)
	}
	if len(obs.clamped) != 1 || !obs.clamped[0] {
		t.Fatalf("clamped = %v, want [true]", obs.clamped)
	}
	if obs.levels[0] != 0 {
		t.Errorf("applied level = %d, want 0 (emergency restore)", obs.levels[0])
	}
}

func TestTickObserverReportsViolation(t *testing.T) {
	rm := fixture(t)
	// A contract whose emergency floor exceeds even the dense accuracy
	// (0.99) forces a logged violation on an emergency tick.
	c := safety.DefaultContract()
	c.MinAccuracy[safety.Emergency] = 0.999
	obs := &recordingObserver{}
	g, err := New(rm, Threshold{}, c, WithObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Tick(0, assess(0.99)); err != nil {
		t.Fatal(err)
	}
	if len(obs.violated) != 1 || !obs.violated[0] {
		t.Fatalf("violated = %v, want [true]", obs.violated)
	}
	if g.Violations().Count() != 1 {
		t.Errorf("violation log count = %d, want 1", g.Violations().Count())
	}
}

// TestTickNoObserverZeroAllocs proves the disabled-telemetry hot path is
// allocation-free: a steady-state tick (no level switch, no trace) must
// not allocate at all when no observer is installed.
func TestTickNoObserverZeroAllocs(t *testing.T) {
	rm := fixture(t)
	g, err := New(rm, Threshold{}, safety.DefaultContract())
	if err != nil {
		t.Fatal(err)
	}
	a := assess(0)
	if _, err := g.Tick(0, a); err != nil { // settle into steady state
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := g.Tick(1, a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Tick without observer allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkTickNoObserver(b *testing.B) {
	rm := fixture(b)
	g, err := New(rm, Threshold{}, safety.DefaultContract())
	if err != nil {
		b.Fatal(err)
	}
	a := assess(0)
	if _, err := g.Tick(0, a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Tick(i+1, a); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTickWithTelemetry(b *testing.B) {
	rm := fixture(b)
	reg := telemetry.NewRegistry()
	hooks := telemetry.NewHooks(reg)
	sp := make([]float64, rm.NumLevels())
	for i, lvl := range rm.Levels() {
		sp[i] = lvl.Sparsity
	}
	hooks.SetLevels(sp)
	rm.SetObserver(hooks)
	g, err := New(rm, Threshold{}, safety.DefaultContract(), WithObserver(hooks))
	if err != nil {
		b.Fatal(err)
	}
	a := assess(0)
	if _, err := g.Tick(0, a); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Tick(i+1, a); err != nil {
			b.Fatal(err)
		}
	}
}
