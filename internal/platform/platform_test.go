package platform

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/prune"
	"repro/internal/tensor"
)

func platModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("m",
		nn.NewConv2D("conv1", g, 8, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 8*8*8, 32, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc2", 32, 6, rng),
	)
}

func TestSpecsValidate(t *testing.T) {
	for _, s := range []Spec{EmbeddedGPU(), EmbeddedCPU()} {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
	bad := EmbeddedCPU()
	bad.MACsPerSecond = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero throughput accepted")
	}
	bad = EmbeddedCPU()
	bad.SparseEfficiency = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("sparse efficiency >1 accepted")
	}
}

func TestEstimatePositiveAndDeterministic(t *testing.T) {
	m := platModel(1)
	s := EmbeddedCPU()
	c1 := s.Estimate(m)
	c2 := s.Estimate(m)
	if c1 != c2 {
		t.Error("Estimate not deterministic")
	}
	if c1.LatencyMS <= 0 || c1.EnergyMJ <= 0 || c1.MACs <= 0 || c1.Bytes <= 0 {
		t.Errorf("non-positive cost: %+v", c1)
	}
}

func TestEstimateDiscountsUnstructuredSparsity(t *testing.T) {
	m := platModel(2)
	s := EmbeddedCPU()
	dense := s.Estimate(m)
	plan, err := prune.PlanSingle(prune.MagnitudeGlobal{}, m, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	sparse := s.Estimate(m)
	if sparse.MACs >= dense.MACs {
		t.Errorf("sparse MACs %d not below dense %d", sparse.MACs, dense.MACs)
	}
	if sparse.EnergyMJ >= dense.EnergyMJ {
		t.Errorf("sparse energy %v not below dense %v", sparse.EnergyMJ, dense.EnergyMJ)
	}
	// Sparse efficiency caps the saving: at 80% sparsity and 0.6 efficiency
	// effective MACs must be ≥ (1-0.48)·dense.
	lower := float64(dense.MACs) * (1 - 0.8*s.SparseEfficiency) * 0.98
	if float64(sparse.MACs) < lower {
		t.Errorf("sparse MACs %d below efficiency-capped floor %v", sparse.MACs, lower)
	}
}

func TestCompactedBeatsUnstructuredAtEqualSparsity(t *testing.T) {
	s := EmbeddedCPU()
	mu := platModel(3)
	planU, err := prune.PlanSingle(prune.MagnitudeGlobal{}, mu, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	planU.Apply(mu)
	costU := s.Estimate(mu)

	ms := platModel(3)
	planS, err := prune.PlanSingle(prune.StructuredChannel{}, ms, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	planS.Apply(ms)
	compacted, err := prune.Compact(ms)
	if err != nil {
		t.Fatal(err)
	}
	costS := s.Estimate(compacted)
	if costS.LatencyMS >= costU.LatencyMS {
		t.Errorf("compacted latency %v not below unstructured %v", costS.LatencyMS, costU.LatencyMS)
	}
	// Compaction also removes weight/activation bytes, which unstructured
	// sparsity cannot.
	if costS.Bytes >= costU.Bytes {
		t.Errorf("compacted bytes %d not below unstructured %d", costS.Bytes, costU.Bytes)
	}
}

func TestScaleDVFS(t *testing.T) {
	s := EmbeddedCPU()
	half := s.Scale(0.5)
	if half.MACsPerSecond != s.MACsPerSecond*0.5 {
		t.Error("throughput scaling wrong")
	}
	if half.EnergyPerMACJ != s.EnergyPerMACJ*0.25 {
		t.Error("energy scaling should be quadratic")
	}
	m := platModel(4)
	cFull := s.Estimate(m)
	cHalf := half.Estimate(m)
	if cHalf.LatencyMS <= cFull.LatencyMS {
		t.Error("downscaled platform should be slower")
	}
	defer func() {
		if recover() == nil {
			t.Error("Scale(0) accepted")
		}
	}()
	s.Scale(0)
}

func TestPrecisionScaled(t *testing.T) {
	s := EmbeddedCPU()
	if s.PrecisionScaled(32) != s {
		t.Error("32-bit scaling should be identity")
	}
	q8 := s.PrecisionScaled(8)
	if q8.MACsPerSecond != s.MACsPerSecond*4 {
		t.Errorf("int8 throughput = %v, want 4×", q8.MACsPerSecond/s.MACsPerSecond)
	}
	if q8.EnergyPerMACJ != s.EnergyPerMACJ/16 {
		t.Errorf("int8 MAC energy = %v, want 1/16", q8.EnergyPerMACJ/s.EnergyPerMACJ)
	}
	m := platModel(9)
	if q8.Estimate(m).EnergyMJ >= s.Estimate(m).EnergyMJ {
		t.Error("int8 estimate not cheaper than fp32")
	}
	defer func() {
		if recover() == nil {
			t.Error("PrecisionScaled(0) accepted")
		}
	}()
	s.PrecisionScaled(0)
}

func TestMeasureLatencyOrdersBySize(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	rng := tensor.NewRNG(5)
	small := nn.NewSequential("small", nn.NewDense("fc", 64, 64, rng))
	big := nn.NewSequential("big", nn.NewDense("fc", 512, 512, rng))
	x64 := tensor.RandNormal(rng, 0, 1, 4, 64)
	x512 := tensor.RandNormal(rng, 0, 1, 4, 512)
	lSmall := MeasureLatency(small, x64, 50)
	lBig := MeasureLatency(big, x512, 50)
	if lBig <= lSmall {
		t.Errorf("big model (%vms) not slower than small (%vms)", lBig, lSmall)
	}
}
