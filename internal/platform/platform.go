// Package platform models the embedded compute platform the paper's system
// would deploy on. The authors' testbed hardware is unavailable, so latency
// and energy are estimated with a roofline-style analytical model driven by
// per-layer MAC and byte counts, calibrated with embedded-class constants;
// wall-clock measurement helpers complement the model so that benchmark
// orderings can be cross-checked against real execution of this Go
// implementation.
//
// The model's purpose is to preserve the *functional dependence* of cost on
// pruning: unstructured sparsity removes a platform-dependent fraction of
// MAC work (SparseEfficiency), while structured compaction shrinks the
// dense kernels themselves and realizes its full saving.
package platform

import (
	"fmt"
	"time"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Spec describes a compute platform's performance and energy constants.
type Spec struct {
	// Name identifies the platform in tables.
	Name string
	// MACsPerSecond is the effective dense multiply-accumulate throughput.
	MACsPerSecond float64
	// BytesPerSecond is the effective memory bandwidth.
	BytesPerSecond float64
	// EnergyPerMACJ is the switching energy per MAC, in joules.
	EnergyPerMACJ float64
	// EnergyPerByteJ is the energy per byte moved, in joules.
	EnergyPerByteJ float64
	// StaticPowerW is the idle power drawn while an inference runs.
	StaticPowerW float64
	// SparseEfficiency is the fraction of skipped-MAC savings an
	// unstructured-sparse kernel actually realizes on this platform, in
	// [0,1]. Structured (compacted) savings always realize fully.
	SparseEfficiency float64
}

// EmbeddedGPU returns constants of a Jetson-class embedded GPU module.
func EmbeddedGPU() Spec {
	return Spec{
		Name:             "embedded-gpu",
		MACsPerSecond:    200e9,
		BytesPerSecond:   25.6e9,
		EnergyPerMACJ:    2e-12,
		EnergyPerByteJ:   20e-12,
		StaticPowerW:     2.0,
		SparseEfficiency: 0.45,
	}
}

// EmbeddedCPU returns constants of a microcontroller-class platform, the
// default for the evaluation (its millisecond-scale latencies match the
// perception deadlines the scenarios use).
func EmbeddedCPU() Spec {
	return Spec{
		Name:             "embedded-cpu",
		MACsPerSecond:    0.5e9,
		BytesPerSecond:   0.5e9,
		EnergyPerMACJ:    20e-12,
		EnergyPerByteJ:   80e-12,
		StaticPowerW:     0.15,
		SparseEfficiency: 0.6,
	}
}

// Validate checks the spec for physically meaningful constants.
func (s Spec) Validate() error {
	switch {
	case s.MACsPerSecond <= 0 || s.BytesPerSecond <= 0:
		return fmt.Errorf("platform %q: non-positive throughput", s.Name)
	case s.EnergyPerMACJ < 0 || s.EnergyPerByteJ < 0 || s.StaticPowerW < 0:
		return fmt.Errorf("platform %q: negative energy constant", s.Name)
	case s.SparseEfficiency < 0 || s.SparseEfficiency > 1:
		return fmt.Errorf("platform %q: sparse efficiency %v out of [0,1]", s.Name, s.SparseEfficiency)
	}
	return nil
}

// Scale returns the spec under voltage-frequency scaling to the fraction f
// of nominal frequency: throughput scales with f, switching energy with f²
// (voltage tracks frequency), static power with f.
func (s Spec) Scale(f float64) Spec {
	if f <= 0 {
		failf("platform: Scale(%v)", f)
	}
	out := s
	out.Name = fmt.Sprintf("%s@%.2fx", s.Name, f)
	out.MACsPerSecond *= f
	out.BytesPerSecond *= f
	out.EnergyPerMACJ *= f * f
	out.StaticPowerW *= f
	return out
}

// PrecisionScaled returns the spec adjusted for integer execution at the
// given weight bit width: SIMD throughput scales with 32/bits and
// switching energy roughly with (bits/32)² (multiplier area/energy is
// superlinear in operand width; quadratic is the standard first-order
// model). bits=32 returns the spec unchanged.
func (s Spec) PrecisionScaled(bits int) Spec {
	if bits <= 0 || bits > 32 {
		failf("platform: PrecisionScaled(%d)", bits)
	}
	if bits == 32 {
		return s
	}
	out := s
	out.Name = fmt.Sprintf("%s@int%d", s.Name, bits)
	f := float64(bits) / 32
	out.MACsPerSecond /= f
	out.EnergyPerMACJ *= f * f
	return out
}

// Cost is the estimated per-inference cost of a model on a platform.
type Cost struct {
	// LatencyMS is the roofline latency estimate in milliseconds.
	LatencyMS float64
	// EnergyMJ is the energy estimate in millijoules.
	EnergyMJ float64
	// MACs is the effective multiply-accumulate count after sparsity
	// discounting.
	MACs int64
	// Bytes is the estimated memory traffic (weights + activations).
	Bytes int64
}

// Estimate computes the per-inference cost of the model in its *current*
// weight state: each compute layer's MACs are discounted by its live weight
// sparsity times the platform's sparse efficiency, and sparse weight
// tensors are accounted as compressed (CSR-style, 8 bytes per surviving
// weight, capped at the dense 4 bytes per weight). A compacted model simply
// reports smaller dense MAC counts and is not discounted further.
func (s Spec) Estimate(model *nn.Sequential) Cost {
	if err := s.Validate(); err != nil {
		panic(err) //lint:allow(nopanic) specs are static fixtures validated at definition time
	}
	var effMACs float64
	var bytes int64
	for _, l := range model.Layers() {
		d, ok := l.(nn.Described)
		if !ok {
			continue
		}
		info := d.Describe()
		macs := float64(info.MACsPerSample)
		layerBytes := info.ParamCount*4 + info.ActivationsPerSample*4
		var weight *nn.Param
		switch t := l.(type) {
		case *nn.Conv2D:
			weight = t.Weight()
		case *nn.Dense:
			weight = t.Weight()
		}
		if weight != nil {
			sp := weight.Value.Sparsity()
			macs *= 1 - sp*s.SparseEfficiency
			denseWeightBytes := int64(weight.Value.Len()) * 4
			csrBytes := int64(weight.Value.CountNonZero()) * 8
			if csrBytes < denseWeightBytes {
				layerBytes += csrBytes - denseWeightBytes
			}
		}
		effMACs += macs
		bytes += layerBytes
	}
	computeS := effMACs / s.MACsPerSecond
	memoryS := float64(bytes) / s.BytesPerSecond
	latencyS := computeS
	if memoryS > latencyS {
		latencyS = memoryS
	}
	energyJ := effMACs*s.EnergyPerMACJ + float64(bytes)*s.EnergyPerByteJ + s.StaticPowerW*latencyS
	return Cost{
		LatencyMS: latencyS * 1e3,
		EnergyMJ:  energyJ * 1e3,
		MACs:      int64(effMACs),
		Bytes:     bytes,
	}
}

// MeasureLatency runs iters inference passes of the model over input and
// returns the mean wall-clock latency per pass in milliseconds. It
// complements Estimate with a ground-truth ordering check on the host
// executing this reproduction.
func MeasureLatency(model *nn.Sequential, input *tensor.Tensor, iters int) float64 {
	if iters <= 0 {
		iters = 1
	}
	model.Forward(input, false) // warm up caches and scratch buffers
	start := time.Now()
	for i := 0; i < iters; i++ {
		model.Forward(input, false)
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters) / 1e6
}
