package platform

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: spec scaling arguments are compile-time constants in practice; misuse is a programmer error.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
