package tensor

// Batch stacking: the fleet batch planner groups per-instance frames into
// one [N, ...] tensor so a whole group runs as a single fused forward
// pass, then splits per-frame views back out. Stack/Unstack round-trip
// exactly (copy in, view out).

// Stack copies n equally shaped tensors into a fresh [n, shape...] tensor.
// It panics on an empty input or a shape mismatch — batch formation is a
// programmer-controlled path, not a data-dependent one.
func Stack(ts []*Tensor) *Tensor {
	if len(ts) == 0 {
		failf("tensor: Stack of no tensors")
	}
	first := ts[0]
	for i, t := range ts {
		if t == nil {
			failf("tensor: Stack item %d is nil", i)
		}
		if !SameShape(first, t) {
			failf("tensor: Stack shape mismatch: item %d has %v, item 0 has %v", i, t.shape, first.shape)
		}
	}
	shape := make([]int, 0, len(first.shape)+1)
	shape = append(shape, len(ts))
	shape = append(shape, first.shape...)
	out := New(shape...)
	StackInto(out, ts)
	return out
}

// StackInto copies the tensors into consecutive slots of dst's leading
// axis. dst must have leading dimension len(ts), and every item must hold
// exactly dst.Len()/len(ts) elements; item shapes beyond their length are
// not constrained, so a flat [S·S] frame stacks directly into a
// [N,1,S,S] model input batch.
func StackInto(dst *Tensor, ts []*Tensor) {
	if len(ts) == 0 {
		failf("tensor: StackInto of no tensors")
	}
	if len(dst.shape) == 0 || dst.shape[0] != len(ts) {
		failf("tensor: StackInto dst shape %v, want leading dimension %d", dst.shape, len(ts))
	}
	stride := len(dst.data) / len(ts)
	for i, t := range ts {
		if t == nil {
			failf("tensor: StackInto item %d is nil", i)
		}
		if len(t.data) != stride {
			failf("tensor: StackInto item %d has %d elements, want %d", i, len(t.data), stride)
		}
		copy(dst.data[i*stride:(i+1)*stride], t.data)
	}
}

// Unstack splits t's leading axis into views sharing t's storage: a
// [n, shape...] tensor yields n tensors of shape [shape...]. Mutating a
// view mutates t. It panics on a 0-D tensor.
func Unstack(t *Tensor) []*Tensor {
	if len(t.shape) == 0 {
		failf("tensor: Unstack of 0-D tensor")
	}
	n := t.shape[0]
	rest := append([]int(nil), t.shape[1:]...)
	if len(rest) == 0 {
		rest = []int{1}
	}
	stride := 0
	if n > 0 {
		stride = len(t.data) / n
	}
	out := make([]*Tensor, n)
	for i := 0; i < n; i++ {
		out[i] = &Tensor{shape: append([]int(nil), rest...), data: t.data[i*stride : (i+1)*stride]}
	}
	return out
}
