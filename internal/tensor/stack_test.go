package tensor

import "testing"

func TestStackUnstackRoundTrip(t *testing.T) {
	r := NewRNG(5)
	items := []*Tensor{
		RandNormal(r, 0, 1, 2, 3),
		RandNormal(r, 0, 1, 2, 3),
		RandNormal(r, 0, 1, 2, 3),
	}
	s := Stack(items)
	if s.Dim(0) != 3 || s.Dim(1) != 2 || s.Dim(2) != 3 {
		t.Fatalf("Stack shape %v, want [3 2 3]", s.Shape())
	}
	views := Unstack(s)
	if len(views) != 3 {
		t.Fatalf("Unstack returned %d views", len(views))
	}
	for i, v := range views {
		if !Equal(items[i], v) {
			t.Errorf("item %d did not round-trip", i)
		}
	}
	// Unstack views share the stacked storage.
	views[1].Data()[0] = 99
	if s.At(1, 0, 0) != 99 {
		t.Error("Unstack view does not alias the stacked tensor")
	}
	// Stack copied, so the originals are untouched.
	if items[1].At2(0, 0) == 99 {
		t.Error("Stack aliased its input instead of copying")
	}
}

func TestStackIntoFlatFramesIntoBatch(t *testing.T) {
	// The fleet path stacks flat [S·S] frames straight into a [N,1,S,S]
	// model input: StackInto constrains element counts, not trailing shape.
	const s = 4
	frames := []*Tensor{New(s * s), New(s * s)}
	frames[0].Fill(1)
	frames[1].Fill(2)
	dst := New(2, 1, s, s)
	StackInto(dst, frames)
	if dst.At(0, 0, 0, 0) != 1 || dst.At(1, 0, s-1, s-1) != 2 {
		t.Errorf("StackInto placed frames wrongly: %v", dst.Data()[:4])
	}
}

func TestUnstackOneDim(t *testing.T) {
	v := FromSlice([]float32{7, 8, 9}, 3)
	parts := Unstack(v)
	if len(parts) != 3 {
		t.Fatalf("got %d parts", len(parts))
	}
	for i, p := range parts {
		if p.Len() != 1 || p.Dim(0) != 1 {
			t.Fatalf("part %d shape %v, want [1]", i, p.Shape())
		}
		if p.Data()[0] != v.Data()[i] {
			t.Errorf("part %d = %v", i, p.Data()[0])
		}
	}
}

func TestStackPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("Stack empty", func() { Stack(nil) })
	expectPanic("Stack nil item", func() { Stack([]*Tensor{New(2), nil}) })
	expectPanic("Stack shape mismatch", func() { Stack([]*Tensor{New(2, 3), New(3, 2)}) })
	expectPanic("StackInto empty", func() { StackInto(New(1, 2), nil) })
	expectPanic("StackInto wrong leading dim", func() { StackInto(New(3, 2), []*Tensor{New(2), New(2)}) })
	expectPanic("StackInto wrong element count", func() { StackInto(New(2, 2), []*Tensor{New(2), New(3)}) })
	expectPanic("Unstack 0-D", func() { Unstack(New()) })
}
