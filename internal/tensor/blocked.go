package tensor

import "sync"

// Blocked (tiled) matmul geometry. The output is processed in tiles of
// blockRows × blockCols: row blocks are the unit of goroutine parallelism
// and column tiles keep the streamed b rows and the output row segment
// resident in cache while the contraction sweeps p. The contraction loop
// itself is never tiled — each output element accumulates over p in
// exactly the serial kernel's order, so MatMulBlocked is bit-identical to
// MatMul for every input, not merely approximately equal. That guarantee
// is what lets the fleet batch planner prove fused execution equivalent
// to the per-instance path with exact comparisons.
const (
	blockRows = 64
	blockCols = 256
)

// MatMulBlocked returns a·b computed by the blocked/tiled kernel,
// (m×k)·(k×n) → (m×n). Results are bit-identical to MatMul; the blocked
// traversal only changes the order in which *independent* output elements
// are produced, never the per-element float32 summation order. Row blocks
// fan out across the SetMatMulWorkers goroutine budget above the same
// FLOP-volume threshold as MatMul.
func MatMulBlocked(a, b *Tensor) *Tensor {
	m, n := checkMatMulShapes("MatMulBlocked", a, b, nil, false, false)
	out := New(m, n)
	matMulBlockedInto(out, a, b)
	return out
}

// MatMulBlockedInto computes out = a·b with the blocked kernel, reusing
// out's storage. out must already have shape (m×n).
func MatMulBlockedInto(out, a, b *Tensor) {
	checkMatMulShapes("MatMulBlockedInto", a, b, out, false, false)
	matMulBlockedInto(out, a, b)
}

func matMulBlockedInto(out, a, b *Tensor) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	workers := resolveWorkers()
	if workers > 1 && int64(m)*int64(k)*int64(n) >= parallelThreshold && m > blockRows {
		blocks := (m + blockRows - 1) / blockRows
		if workers > blocks {
			workers = blocks
		}
		var wg sync.WaitGroup
		chunk := (blocks + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk * blockRows
			hi := lo + chunk*blockRows
			if hi > m {
				hi = m
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulBlockedRows(out, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulBlockedRows(out, a, b, 0, m)
}

// matMulBlockedRows computes output rows [lo, hi) of out = a·b, column
// tile by column tile. Within a tile each output row segment is zeroed and
// then accumulated over the full contraction axis in ascending p order
// with the sparse zero-skip — the exact element-wise computation the
// serial kernel performs.
func matMulBlockedRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.shape[1], b.shape[1]
	ad, bd, od := a.data, b.data, out.data
	for jb := 0; jb < n; jb += blockCols {
		je := jb + blockCols
		if je > n {
			je = n
		}
		for ib := lo; ib < hi; ib += blockRows {
			ie := ib + blockRows
			if ie > hi {
				ie = hi
			}
			for i := ib; i < ie; i++ {
				arow := ad[i*k : (i+1)*k]
				orow := od[i*n+jb : i*n+je]
				for x := range orow {
					orow[x] = 0
				}
				for p, av := range arow {
					if av == 0 { //lint:allow(floateq) sparse skip: pruned weights are exact zeros
						continue
					}
					brow := bd[p*n+jb : p*n+je]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}
