package tensor

import (
	"math"
	"math/rand"
)

// RNG wraps math/rand with the handful of distributions the stack needs.
// Every stochastic component in this repository draws from an explicitly
// seeded RNG so that training runs, datasets, and simulations are
// bit-reproducible.
type RNG struct {
	src *rand.Rand
}

// NewRNG returns a deterministic generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{src: rand.New(rand.NewSource(seed))}
}

// Float32 returns a uniform sample in [0,1).
func (r *RNG) Float32() float32 { return r.src.Float32() }

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform sample in [0,n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Normal returns a Gaussian sample with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return r.src.NormFloat64()*std + mean
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.src.Float64()
}

// Perm returns a random permutation of [0,n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Fork derives a new independent generator from r's stream, so subsystems
// can be given their own deterministic streams without sharing state.
func (r *RNG) Fork() *RNG { return NewRNG(r.src.Int63()) }

// RandUniform fills a new tensor of the given shape with uniform samples in
// [lo, hi).
func RandUniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	span := hi - lo
	for i := range t.data {
		t.data[i] = lo + span*r.Float32()
	}
	return t
}

// RandNormal fills a new tensor of the given shape with Gaussian samples.
func RandNormal(r *RNG, mean, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = float32(r.Normal(float64(mean), float64(std)))
	}
	return t
}

// XavierUniform initializes a tensor with the Glorot/Xavier uniform scheme
// for a layer with the given fan-in and fan-out.
func XavierUniform(r *RNG, fanIn, fanOut int, shape ...int) *Tensor {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return RandUniform(r, -limit, limit, shape...)
}

// HeNormal initializes a tensor with the He/Kaiming normal scheme for a
// layer with the given fan-in, appropriate for ReLU networks.
func HeNormal(r *RNG, fanIn int, shape ...int) *Tensor {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return RandNormal(r, 0, std, shape...)
}
