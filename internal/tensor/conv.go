package tensor

import "fmt"

// ConvGeom describes the geometry of a 2-D convolution over NCHW tensors.
type ConvGeom struct {
	InC, InH, InW    int // input channels and spatial size
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int
}

// OutH returns the output height for the geometry.
func (g ConvGeom) OutH() int { return (g.InH+2*g.PadH-g.KH)/g.StrideH + 1 }

// OutW returns the output width for the geometry.
func (g ConvGeom) OutW() int { return (g.InW+2*g.PadW-g.KW)/g.StrideW + 1 }

// Validate checks that the geometry is internally consistent and produces a
// positive output size.
func (g ConvGeom) Validate() error {
	switch {
	case g.InC <= 0 || g.InH <= 0 || g.InW <= 0:
		return fmt.Errorf("conv geometry: non-positive input dims %+v", g)
	case g.KH <= 0 || g.KW <= 0:
		return fmt.Errorf("conv geometry: non-positive kernel %+v", g)
	case g.StrideH <= 0 || g.StrideW <= 0:
		return fmt.Errorf("conv geometry: non-positive stride %+v", g)
	case g.PadH < 0 || g.PadW < 0:
		return fmt.Errorf("conv geometry: negative padding %+v", g)
	case g.OutH() <= 0 || g.OutW() <= 0:
		return fmt.Errorf("conv geometry: empty output %+v", g)
	}
	return nil
}

// Im2col expands a single image (C×H×W, flattened into src) into a patch
// matrix of shape (C*KH*KW) × (OutH*OutW) written into the provided dst
// tensor. Out-of-bounds (padding) samples contribute zeros. The dst tensor
// must have shape [C*KH*KW, OutH*OutW].
//
// This layout makes convolution a single MatMul with the (OutC × C*KH*KW)
// weight matrix, which is both fast and — critically for this project —
// means *channel-structured pruning zeros whole rows of the weight matrix*,
// so the sparse matmul kernel skips them entirely.
func Im2col(src []float32, g ConvGeom, dst *Tensor) {
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	cols := oh * ow
	if len(dst.shape) != 2 || dst.shape[0] != rows || dst.shape[1] != cols {
		failf("tensor: Im2col dst shape %v, want [%d %d]", dst.shape, rows, cols)
	}
	if len(src) != g.InC*g.InH*g.InW {
		failf("tensor: Im2col src length %d, want %d", len(src), g.InC*g.InH*g.InW)
	}
	im2colCols(src, g, dst.data, cols, 0)
}

// Im2colOffset expands one image into a column block of a wider patch
// matrix: dst must have shape [C*KH*KW, total] with total ≥
// colOff+OutH*OutW, and the sample's patches land in columns
// [colOff, colOff+OutH*OutW). Stacking B samples at offsets s·OutH·OutW
// builds the (C·KH·KW) × (B·OutH·OutW) matrix that turns a whole batch's
// convolution into one matmul with the weight matrix — the fused
// one-matmul-per-layer kernel the fleet batch planner runs.
func Im2colOffset(src []float32, g ConvGeom, dst *Tensor, colOff int) {
	spatial := g.OutH() * g.OutW()
	rows := g.InC * g.KH * g.KW
	if len(dst.shape) != 2 || dst.shape[0] != rows {
		failf("tensor: Im2colOffset dst shape %v, want [%d total]", dst.shape, rows)
	}
	if colOff < 0 || colOff+spatial > dst.shape[1] {
		failf("tensor: Im2colOffset columns [%d,%d) out of dst width %d", colOff, colOff+spatial, dst.shape[1])
	}
	if len(src) != g.InC*g.InH*g.InW {
		failf("tensor: Im2colOffset src length %d, want %d", len(src), g.InC*g.InH*g.InW)
	}
	im2colCols(src, g, dst.data, dst.shape[1], colOff)
}

// im2colCols is the shared patch-expansion core: it writes the sample's
// (C*KH*KW) × (OutH*OutW) patch matrix into d with the given row stride,
// starting at column colOff.
func im2colCols(src []float32, g ConvGeom, d []float32, rowStride, colOff int) {
	oh, ow := g.OutH(), g.OutW()
	cols := oh * ow
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := d[r*rowStride+colOff : r*rowStride+colOff+cols]
				r++
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= g.InH {
						for ox := 0; ox < ow; ox++ {
							drow[i] = 0
							i++
						}
						continue
					}
					rowBase := chanBase + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix < 0 || ix >= g.InW {
							drow[i] = 0
						} else {
							drow[i] = src[rowBase+ix]
						}
						i++
					}
				}
			}
		}
	}
}

// Col2im scatter-adds a patch matrix (the gradient counterpart of Im2col)
// back into an image buffer dst of length C*H*W. dst is not cleared; callers
// zero it first when accumulating a fresh gradient.
func Col2im(cols *Tensor, g ConvGeom, dst []float32) {
	oh, ow := g.OutH(), g.OutW()
	rows := g.InC * g.KH * g.KW
	ncols := oh * ow
	if len(cols.shape) != 2 || cols.shape[0] != rows || cols.shape[1] != ncols {
		failf("tensor: Col2im cols shape %v, want [%d %d]", cols.shape, rows, ncols)
	}
	if len(dst) != g.InC*g.InH*g.InW {
		failf("tensor: Col2im dst length %d, want %d", len(dst), g.InC*g.InH*g.InW)
	}
	d := cols.data
	r := 0
	for c := 0; c < g.InC; c++ {
		chanBase := c * g.InH * g.InW
		for kh := 0; kh < g.KH; kh++ {
			for kw := 0; kw < g.KW; kw++ {
				drow := d[r*ncols : (r+1)*ncols]
				r++
				i := 0
				for oy := 0; oy < oh; oy++ {
					iy := oy*g.StrideH - g.PadH + kh
					if iy < 0 || iy >= g.InH {
						i += ow
						continue
					}
					rowBase := chanBase + iy*g.InW
					for ox := 0; ox < ow; ox++ {
						ix := ox*g.StrideW - g.PadW + kw
						if ix >= 0 && ix < g.InW {
							dst[rowBase+ix] += drow[i]
						}
						i++
					}
				}
			}
		}
	}
}
