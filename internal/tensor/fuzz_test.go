package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzReadTensor feeds arbitrary bytes to the binary tensor reader.
// Malformed input must yield an error — never a panic, and never an
// allocation sized by the header's claim rather than the delivered bytes.
// Well-formed input must round-trip bit-exactly (including NaN payloads,
// which is why the check compares serialized bytes, not float values).
func FuzzReadTensor(f *testing.F) {
	// A valid 2×3 tensor, including a NaN and an inf.
	valid := New(2, 3)
	copy(valid.Data(), []float32{0, 1.5, -2.25, float32(math.NaN()), float32(math.Inf(1)), 3e-39})
	var buf bytes.Buffer
	if _, err := valid.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RSNT"))
	// Header claiming maxElements with no payload: must fail proportionally.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge[0:], tensorMagic)
	binary.LittleEndian.PutUint32(huge[4:], 1)
	binary.LittleEndian.PutUint32(huge[8:], maxElements)
	f.Add(huge)
	// Dims whose product overflows int32/int64 if multiplied naively.
	wrap := make([]byte, 8+4*4)
	binary.LittleEndian.PutUint32(wrap[0:], tensorMagic)
	binary.LittleEndian.PutUint32(wrap[4:], 4)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(wrap[8+4*i:], 0xFFFF_FFFF)
	}
	f.Add(wrap)

	f.Fuzz(func(t *testing.T, in []byte) {
		var parsed Tensor
		n, err := parsed.ReadFrom(bytes.NewReader(in))
		if err != nil {
			return
		}
		if n > int64(len(in)) {
			t.Fatalf("ReadFrom consumed %d of %d bytes", n, len(in))
		}
		want := 1
		for _, d := range parsed.Shape() {
			want *= d
		}
		if want != parsed.Len() {
			t.Fatalf("shape %v claims %d elements, data has %d", parsed.Shape(), want, parsed.Len())
		}
		// Canonical format: re-encoding must reproduce exactly the bytes
		// consumed, and survive a second round trip.
		var out bytes.Buffer
		if _, err := parsed.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), in[:n]) {
			t.Fatalf("re-encode differs from consumed input")
		}
		back, err := ReadTensor(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := back.WriteTo(&out2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("round trip is not a fixed point")
		}
	})
}
