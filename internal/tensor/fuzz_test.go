package tensor

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzStackRoundTrip drives the batch stacking used by the fleet's fused
// inference path with arbitrary geometry and payload bytes: n frames of
// stride elements each, stacked into a batch and unstacked again, must
// reproduce every frame bit-exactly (NaN payloads included — the compare
// is on raw bits). The fuzzer also probes the panic guards: any geometry
// the builder below can produce is valid by construction, so a panic here
// is always a bug.
func FuzzStackRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint8(1), []byte{0, 0, 0x80, 0x3f})
	f.Add(uint8(3), uint8(4), make([]byte, 48))
	f.Add(uint8(16), uint8(9), []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Fuzz(func(t *testing.T, nRaw, strideRaw uint8, payload []byte) {
		n := int(nRaw)%16 + 1           // 1..16 frames
		stride := int(strideRaw)%32 + 1 // 1..32 elements each
		frames := make([]*Tensor, n)
		for i := range frames {
			frames[i] = New(stride)
			d := frames[i].Data()
			for j := range d {
				off := (i*stride + j) * 4
				var bits uint32
				for b := 0; b < 4; b++ {
					bits <<= 8
					if off+b < len(payload) {
						bits |= uint32(payload[off+b])
					}
				}
				d[j] = math.Float32frombits(bits)
			}
		}
		batch := Stack(frames)
		if batch.Dim(0) != n || batch.Len() != n*stride {
			t.Fatalf("Stack shape %v for %d frames of %d", batch.Shape(), n, stride)
		}
		views := Unstack(batch)
		if len(views) != n {
			t.Fatalf("Unstack returned %d views for %d frames", len(views), n)
		}
		for i, v := range views {
			vd, fd := v.Data(), frames[i].Data()
			if len(vd) != len(fd) {
				t.Fatalf("frame %d: view has %d elements, want %d", i, len(vd), len(fd))
			}
			for j := range vd {
				if math.Float32bits(vd[j]) != math.Float32bits(fd[j]) {
					t.Fatalf("frame %d element %d: %x != %x",
						i, j, math.Float32bits(vd[j]), math.Float32bits(fd[j]))
				}
			}
		}
		// The fleet stacks flat frames into a [n,1,stride] batch through
		// StackInto: same payload, different dst shape, same round trip.
		wide := New(n, 1, stride)
		StackInto(wide, frames)
		for i := range frames {
			row := wide.Data()[i*stride : (i+1)*stride]
			for j, want := range frames[i].Data() {
				if math.Float32bits(row[j]) != math.Float32bits(want) {
					t.Fatalf("StackInto frame %d element %d mismatch", i, j)
				}
			}
		}
	})
}

// FuzzReadTensor feeds arbitrary bytes to the binary tensor reader.
// Malformed input must yield an error — never a panic, and never an
// allocation sized by the header's claim rather than the delivered bytes.
// Well-formed input must round-trip bit-exactly (including NaN payloads,
// which is why the check compares serialized bytes, not float values).
func FuzzReadTensor(f *testing.F) {
	// A valid 2×3 tensor, including a NaN and an inf.
	valid := New(2, 3)
	copy(valid.Data(), []float32{0, 1.5, -2.25, float32(math.NaN()), float32(math.Inf(1)), 3e-39})
	var buf bytes.Buffer
	if _, err := valid.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("RSNT"))
	// Header claiming maxElements with no payload: must fail proportionally.
	huge := make([]byte, 12)
	binary.LittleEndian.PutUint32(huge[0:], tensorMagic)
	binary.LittleEndian.PutUint32(huge[4:], 1)
	binary.LittleEndian.PutUint32(huge[8:], maxElements)
	f.Add(huge)
	// Dims whose product overflows int32/int64 if multiplied naively.
	wrap := make([]byte, 8+4*4)
	binary.LittleEndian.PutUint32(wrap[0:], tensorMagic)
	binary.LittleEndian.PutUint32(wrap[4:], 4)
	for i := 0; i < 4; i++ {
		binary.LittleEndian.PutUint32(wrap[8+4*i:], 0xFFFF_FFFF)
	}
	f.Add(wrap)

	f.Fuzz(func(t *testing.T, in []byte) {
		var parsed Tensor
		n, err := parsed.ReadFrom(bytes.NewReader(in))
		if err != nil {
			return
		}
		if n > int64(len(in)) {
			t.Fatalf("ReadFrom consumed %d of %d bytes", n, len(in))
		}
		want := 1
		for _, d := range parsed.Shape() {
			want *= d
		}
		if want != parsed.Len() {
			t.Fatalf("shape %v claims %d elements, data has %d", parsed.Shape(), want, parsed.Len())
		}
		// Canonical format: re-encoding must reproduce exactly the bytes
		// consumed, and survive a second round trip.
		var out bytes.Buffer
		if _, err := parsed.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), in[:n]) {
			t.Fatalf("re-encode differs from consumed input")
		}
		back, err := ReadTensor(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		var out2 bytes.Buffer
		if _, err := back.WriteTo(&out2); err != nil {
			t.Fatalf("second re-encode: %v", err)
		}
		if !bytes.Equal(out.Bytes(), out2.Bytes()) {
			t.Fatalf("round trip is not a fixed point")
		}
	})
}
