package tensor

import (
	"testing"
)

// setWorkers pins the matmul worker budget for a test and restores the
// default on cleanup, so parallel-path tests cannot leak configuration
// into the rest of the package run.
func setWorkers(t *testing.T, n int) {
	t.Helper()
	SetMatMulWorkers(n)
	t.Cleanup(func() { SetMatMulWorkers(0) })
}

// TestMatMulBlockedMatchesSerial holds the blocked kernel to its contract:
// bit-identical output to the serial MatMul, across shapes that exercise
// partial row blocks, partial column tiles, and both the serial and the
// goroutine-parallel dispatch.
func TestMatMulBlockedMatchesSerial(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},                      // everything smaller than one tile
		{blockRows, 4, blockCols},      // exactly one tile
		{blockRows + 1, 3, blockCols},  // partial trailing row block
		{blockRows, 3, blockCols + 17}, // partial trailing column tile
		{2*blockRows + 5, 9, 2*blockCols + 33},
	}
	for _, workers := range []int{1, 4} {
		setWorkers(t, workers)
		for _, s := range shapes {
			r := NewRNG(int64(s.m*1000 + s.n))
			a := RandNormal(r, 0, 1, s.m, s.k)
			b := RandNormal(r, 0, 1, s.k, s.n)
			want := MatMul(a, b)
			got := MatMulBlocked(a, b)
			if !Equal(want, got) {
				t.Errorf("workers=%d %dx%d·%dx%d: MatMulBlocked differs from MatMul",
					workers, s.m, s.k, s.k, s.n)
			}
			out := New(s.m, s.n)
			out.Fill(42) // stale contents must be overwritten, not accumulated
			MatMulBlockedInto(out, a, b)
			if !Equal(want, out) {
				t.Errorf("workers=%d %dx%d·%dx%d: MatMulBlockedInto differs from MatMul",
					workers, s.m, s.k, s.k, s.n)
			}
		}
	}
}

// TestMatMulBlockedParallelAboveThreshold forces the FLOP volume over
// parallelThreshold with m spanning several row blocks, so the row-block
// fan-out path actually runs, and requires bit-identity with the serial
// kernel — the property the fused fleet path depends on.
func TestMatMulBlockedParallelAboveThreshold(t *testing.T) {
	m, k, n := 3*blockRows+7, 128, 160 // 199·128·160 ≈ 4.1M FLOP > 1<<21
	r := NewRNG(11)
	a := RandNormal(r, 0, 1, m, k)
	b := RandNormal(r, 0, 1, k, n)
	setWorkers(t, 1)
	want := MatMulBlocked(a, b)
	serial := MatMul(a, b)
	SetMatMulWorkers(4)
	got := MatMulBlocked(a, b)
	if !Equal(want, got) {
		t.Error("parallel blocked kernel differs from serial blocked kernel")
	}
	if !Equal(serial, got) {
		t.Error("parallel blocked kernel differs from serial MatMul")
	}
}

// TestMatMulBlockedSkipsZeros extends TestMatMulSkipsZeros to the blocked
// kernel: pruned (exact-zero) rows and scattered zeros must take the sparse
// skip in every tile and still produce bit-identical output, serial and
// parallel. The shape is large enough that zero rows cross block
// boundaries.
func TestMatMulBlockedSkipsZeros(t *testing.T) {
	m, k, n := 2*blockRows+3, 96, blockCols+19
	r := NewRNG(23)
	a := RandNormal(r, 0, 1, m, k)
	b := RandNormal(r, 0, 1, k, n)
	// Zero out full rows (as structured pruning would) and a scattered 50%
	// of the rest (as magnitude pruning does).
	ad := a.Data()
	for j := 0; j < k; j++ {
		ad[0*k+j] = 0
		ad[(blockRows+1)*k+j] = 0
		ad[(m-1)*k+j] = 0
	}
	for i := 0; i < len(ad); i += 2 {
		ad[i] = 0
	}
	for _, workers := range []int{1, 4} {
		setWorkers(t, workers)
		want := MatMul(a, b)
		got := MatMulBlocked(a, b)
		if !Equal(want, got) {
			t.Errorf("workers=%d: sparse blocked result differs from serial MatMul", workers)
		}
		for _, row := range []int{0, blockRows + 1, m - 1} {
			for j := 0; j < n; j++ {
				if got.At2(row, j) != 0 {
					t.Fatalf("workers=%d: zeroed row %d leaked %v at col %d",
						workers, row, got.At2(row, j), j)
				}
			}
		}
	}
}

// TestMatMulBlockedShapeErrors checks the blocked entry points panic with
// *ShapeError on the same malformed inputs the serial family rejects.
func TestMatMulBlockedShapeErrors(t *testing.T) {
	expectShapeError := func(name string, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Errorf("%s: no panic on shape mismatch", name)
				return
			}
			if _, ok := r.(*ShapeError); !ok {
				t.Errorf("%s: panic value %T, want *ShapeError", name, r)
			}
		}()
		fn()
	}
	a := New(2, 3)
	b := New(4, 5) // inner mismatch: 3 vs 4
	expectShapeError("MatMulBlocked inner mismatch", func() { MatMulBlocked(a, b) })
	expectShapeError("MatMulBlocked non-2D", func() { MatMulBlocked(New(6), New(6, 1)) })
	good := New(3, 5)
	expectShapeError("MatMulBlockedInto bad out", func() { MatMulBlockedInto(New(2, 2), a, good) })
}

// TestMatMulTransParityParallel covers the transpose-variant kernels under
// a multi-worker budget: each must be bit-identical to its own serial run,
// and agree with plain MatMul through an explicit transpose. Shapes exceed
// parallelThreshold so MatMulTransB actually takes its row fan-out path.
func TestMatMulTransParityParallel(t *testing.T) {
	m, k, n := 96, 160, 144 // 96·160·144 ≈ 2.2M FLOP > 1<<21
	r := NewRNG(31)
	a := RandNormal(r, 0, 1, m, k)
	bT := RandNormal(r, 0, 1, n, k) // b stored transposed, as dense layers do
	aT := Transpose2D(a)
	b := Transpose2D(bT)

	setWorkers(t, 1)
	wantTB := MatMulTransB(a, bT)
	wantTA := MatMulTransA(aT, b)
	ref := MatMul(a, b)

	SetMatMulWorkers(4)
	gotTB := MatMulTransB(a, bT)
	if !Equal(wantTB, gotTB) {
		t.Error("MatMulTransB parallel differs from serial")
	}
	gotTA := MatMulTransA(aT, b)
	if !Equal(wantTA, gotTA) {
		t.Error("MatMulTransA under workers=4 differs from workers=1")
	}
	if !AllClose(ref, gotTB, 1e-4) {
		t.Error("MatMulTransB disagrees with MatMul beyond tolerance")
	}
	if !AllClose(ref, gotTA, 1e-4) {
		t.Error("MatMulTransA disagrees with MatMul beyond tolerance")
	}
}

// TestMatMulTransBSkipsZeros pins the transpose-B kernel's sparse behavior
// under both worker budgets: zeroed a-rows yield exactly zero output rows.
func TestMatMulTransBSkipsZeros(t *testing.T) {
	r := NewRNG(37)
	a := RandNormal(r, 0, 1, 4, 8)
	bT := RandNormal(r, 0, 1, 6, 8)
	for j := 0; j < 8; j++ {
		a.Data()[2*8+j] = 0
	}
	for _, workers := range []int{1, 4} {
		setWorkers(t, workers)
		got := MatMulTransB(a, bT)
		for j := 0; j < 6; j++ {
			if got.At2(2, j) != 0 {
				t.Fatalf("workers=%d: zero row leaked %v at col %d", workers, got.At2(2, j), j)
			}
		}
	}
}
