// Package tensor implements the dense float32 tensor engine that underpins
// the neural-network, pruning, and runtime-adaptation layers of this
// repository. Tensors are contiguous, row-major, and deliberately simple:
// every operation either allocates a fresh result or writes into an
// explicitly provided destination, so callers can reason about aliasing.
//
// Shape errors are programming errors, not runtime conditions, so the
// package panics with a descriptive message rather than returning errors;
// this mirrors the convention of established numeric libraries.
package tensor

import (
	"fmt"
	"math"
	"strings"
)

// Tensor is a dense, contiguous, row-major float32 array with a shape.
// The zero value is not usable; construct tensors with New, Zeros, etc.
type Tensor struct {
	shape []int
	data  []float32
}

// New constructs a tensor with the given shape backed by freshly allocated,
// zeroed storage. A zero-dimensional tensor (no shape arguments) holds a
// single scalar element.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{shape: append([]int(nil), shape...), data: make([]float32, n)}
}

// FromSlice constructs a tensor with the given shape that takes ownership of
// data. The length of data must equal the product of the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		failf("tensor: FromSlice data length %d does not match shape %v (want %d)", len(data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: data}
}

// Zeros returns a tensor of the given shape filled with zeros.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Ones returns a tensor of the given shape filled with ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// Full returns a tensor of the given shape with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.data {
		t.data[i] = v
	}
	return t
}

// Scalar returns a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor {
	t := New()
	t.data[0] = v
	return t
}

func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			failf("tensor: negative dimension in shape %v", shape)
		}
		n *= d
	}
	return n
}

// Shape returns a copy of the tensor's shape.
func (t *Tensor) Shape() []int { return append([]int(nil), t.shape...) }

// Dims returns the number of dimensions.
func (t *Tensor) Dims() int { return len(t.shape) }

// Dim returns the size of dimension i.
func (t *Tensor) Dim(i int) int { return t.shape[i] }

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.data) }

// Data returns the backing slice. Mutating it mutates the tensor; this is
// intentional and heavily used by the pruning layer, which edits weights in
// place.
func (t *Tensor) Data() []float32 { return t.data }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{shape: append([]int(nil), t.shape...), data: make([]float32, len(t.data))}
	copy(c.data, t.data)
	return c
}

// CopyFrom copies src's data into t. Shapes must match exactly.
func (t *Tensor) CopyFrom(src *Tensor) {
	if !SameShape(t, src) {
		failf("tensor: CopyFrom shape mismatch %v vs %v", t.shape, src.shape)
	}
	copy(t.data, src.data)
}

// Reshape returns a tensor sharing t's storage with a new shape. The element
// count must be preserved.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != len(t.data) {
		failf("tensor: cannot reshape %v (%d elems) to %v (%d elems)", t.shape, len(t.data), shape, n)
	}
	return &Tensor{shape: append([]int(nil), shape...), data: t.data}
}

// offset computes the flat offset of the multi-index idx.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.shape) {
		failf("tensor: index %v has wrong arity for shape %v", idx, t.shape)
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.shape[i] {
			failf("tensor: index %v out of range for shape %v", idx, t.shape)
		}
		off = off*t.shape[i] + x
	}
	return off
}

// At returns the element at the multi-index idx.
func (t *Tensor) At(idx ...int) float32 { return t.data[t.offset(idx)] }

// Set assigns v to the element at the multi-index idx.
func (t *Tensor) Set(v float32, idx ...int) { t.data[t.offset(idx)] = v }

// At2 returns element (i,j) of a 2-D tensor without building an index slice.
func (t *Tensor) At2(i, j int) float32 {
	if len(t.shape) != 2 {
		failf("tensor: At2 on %d-D tensor", len(t.shape))
	}
	return t.data[i*t.shape[1]+j]
}

// Set2 assigns element (i,j) of a 2-D tensor.
func (t *Tensor) Set2(v float32, i, j int) {
	if len(t.shape) != 2 {
		failf("tensor: Set2 on %d-D tensor", len(t.shape))
	}
	t.data[i*t.shape[1]+j] = v
}

// Fill sets every element of t to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.data {
		t.data[i] = v
	}
}

// Zero sets every element of t to zero.
func (t *Tensor) Zero() {
	for i := range t.data {
		t.data[i] = 0
	}
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.shape) != len(b.shape) {
		return false
	}
	for i := range a.shape {
		if a.shape[i] != b.shape[i] {
			return false
		}
	}
	return true
}

// Equal reports whether a and b have the same shape and bit-identical
// elements (NaNs compare unequal, matching float semantics).
func Equal(a, b *Tensor) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		if a.data[i] != b.data[i] { //lint:allow(floateq) Equal is documented bit-exact equality
			return false
		}
	}
	return true
}

// AllClose reports whether a and b have the same shape and every pair of
// elements differs by at most tol in absolute value.
func AllClose(a, b *Tensor, tol float32) bool {
	if !SameShape(a, b) {
		return false
	}
	for i := range a.data {
		d := a.data[i] - b.data[i]
		if d < 0 {
			d = -d
		}
		if d > tol || math.IsNaN(float64(a.data[i])) != math.IsNaN(float64(b.data[i])) {
			return false
		}
	}
	return true
}

// String renders a compact, shape-prefixed representation for debugging.
func (t *Tensor) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Tensor%v[", t.shape)
	limit := len(t.data)
	const maxShown = 16
	truncated := false
	if limit > maxShown {
		limit = maxShown
		truncated = true
	}
	for i := 0; i < limit; i++ {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%.4g", t.data[i])
	}
	if truncated {
		fmt.Fprintf(&b, " … (%d elems)", len(t.data))
	}
	b.WriteString("]")
	return b.String()
}
