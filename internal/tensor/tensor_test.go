package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapeAndLen(t *testing.T) {
	cases := []struct {
		shape []int
		want  int
	}{
		{nil, 1},
		{[]int{3}, 3},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{0, 5}, 0},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Len() != c.want {
			t.Errorf("New(%v).Len() = %d, want %d", c.shape, tt.Len(), c.want)
		}
		if tt.Dims() != len(c.shape) {
			t.Errorf("New(%v).Dims() = %d, want %d", c.shape, tt.Dims(), len(c.shape))
		}
	}
}

func TestNewPanicsOnNegativeDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestFromSliceLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for length mismatch")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(2, 3, 4)
	v := float32(0)
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				tt.Set(v, i, j, k)
				v++
			}
		}
	}
	// Row-major: last index varies fastest.
	for i, want := range tt.Data() {
		if tt.Data()[i] != want {
			t.Fatalf("data[%d] = %v, want %v", i, tt.Data()[i], want)
		}
	}
	if got := tt.At(1, 2, 3); got != 23 {
		t.Errorf("At(1,2,3) = %v, want 23", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	tt.At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set2(99, 0, 0)
	if a.At2(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
	if !SameShape(a, b) {
		t.Error("Clone changed shape")
	}
}

func TestReshapeSharesStorage(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Set2(42, 0, 1)
	if a.At2(0, 1) != 42 {
		t.Error("Reshape should share storage")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad reshape")
		}
	}()
	a.Reshape(4, 2)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data(); got[0] != 6 || got[3] != 12 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data(); got[0] != 4 || got[3] != 4 {
		t.Errorf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data(); got[0] != 5 || got[3] != 32 {
		t.Errorf("Mul wrong: %v", got)
	}
	if got := Div(b, a).Data(); got[0] != 5 || got[3] != 2 {
		t.Errorf("Div wrong: %v", got)
	}
}

func TestInPlaceOpsReturnReceiver(t *testing.T) {
	a := FromSlice([]float32{1, 2}, 2)
	b := FromSlice([]float32{10, 20}, 2)
	if got := AddInPlace(a, b); got != a {
		t.Error("AddInPlace did not return receiver")
	}
	if a.Data()[1] != 22 {
		t.Errorf("AddInPlace wrong: %v", a.Data())
	}
	SubInPlace(a, b)
	if a.Data()[1] != 2 {
		t.Errorf("SubInPlace wrong: %v", a.Data())
	}
	MulInPlace(a, b)
	if a.Data()[1] != 40 {
		t.Errorf("MulInPlace wrong: %v", a.Data())
	}
}

func TestAXPY(t *testing.T) {
	a := FromSlice([]float32{1, 1}, 2)
	b := FromSlice([]float32{2, 3}, 2)
	AXPY(0.5, b, a)
	if a.Data()[0] != 2 || a.Data()[1] != 2.5 {
		t.Errorf("AXPY wrong: %v", a.Data())
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for shape mismatch")
		}
	}()
	Add(a, b)
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{-1, 2, -3, 4}, 4)
	if a.Sum() != 2 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.Mean() != 0.5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Max() != 4 || a.Min() != -3 {
		t.Errorf("Max/Min = %v/%v", a.Max(), a.Min())
	}
	if a.Argmax() != 3 {
		t.Errorf("Argmax = %d", a.Argmax())
	}
	if a.L1Norm() != 10 {
		t.Errorf("L1Norm = %v", a.L1Norm())
	}
	want := float32(math.Sqrt(1 + 4 + 9 + 16))
	if d := a.L2Norm() - want; d > 1e-6 || d < -1e-6 {
		t.Errorf("L2Norm = %v, want %v", a.L2Norm(), want)
	}
}

func TestSparsityAccounting(t *testing.T) {
	a := FromSlice([]float32{0, 1, 0, 2, 0, 0}, 6)
	if a.CountNonZero() != 2 {
		t.Errorf("CountNonZero = %d", a.CountNonZero())
	}
	if got := a.Sparsity(); math.Abs(got-4.0/6.0) > 1e-12 {
		t.Errorf("Sparsity = %v", got)
	}
}

func TestClamp(t *testing.T) {
	a := FromSlice([]float32{-5, 0, 5}, 3)
	a.Clamp(-1, 1)
	if a.Data()[0] != -1 || a.Data()[1] != 0 || a.Data()[2] != 1 {
		t.Errorf("Clamp wrong: %v", a.Data())
	}
}

func TestTranspose2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Transpose2D(a)
	if b.Dim(0) != 3 || b.Dim(1) != 2 {
		t.Fatalf("transpose shape %v", b.Shape())
	}
	if b.At2(0, 1) != 4 || b.At2(2, 0) != 3 {
		t.Errorf("transpose values wrong: %v", b.Data())
	}
}

func TestMatMulKnownValues(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data()[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data()[i], w)
		}
	}
}

func TestMatMulVariantsAgree(t *testing.T) {
	r := NewRNG(7)
	a := RandNormal(r, 0, 1, 5, 4)
	b := RandNormal(r, 0, 1, 4, 6)
	want := MatMul(a, b)

	gotTB := MatMulTransB(a, Transpose2D(b))
	if !AllClose(want, gotTB, 1e-4) {
		t.Error("MatMulTransB disagrees with MatMul")
	}
	gotTA := MatMulTransA(Transpose2D(a), b)
	if !AllClose(want, gotTA, 1e-4) {
		t.Error("MatMulTransA disagrees with MatMul")
	}
	out := New(5, 6)
	MatMulInto(out, a, b)
	if !Equal(want, out) {
		t.Error("MatMulInto disagrees with MatMul")
	}
	MatMulAccumulate(out, a, b)
	doubled := want.Clone().Scale(2)
	if !AllClose(doubled, out, 1e-4) {
		t.Error("MatMulAccumulate did not accumulate")
	}
}

func TestMatMulSkipsZeros(t *testing.T) {
	// A row of zeros in a must produce a row of zeros, exercising the
	// sparse skip path.
	a := FromSlice([]float32{0, 0, 1, 2}, 2, 2)
	b := FromSlice([]float32{3, 4, 5, 6}, 2, 2)
	c := MatMul(a, b)
	if c.At2(0, 0) != 0 || c.At2(0, 1) != 0 {
		t.Errorf("zero row not preserved: %v", c.Data())
	}
	if c.At2(1, 0) != 13 || c.At2(1, 1) != 16 {
		t.Errorf("second row wrong: %v", c.Data())
	}
}

func TestMatVecAndOuterAndDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	x := FromSlice([]float32{1, -1}, 2)
	mv := MatVec(a, x)
	if mv.Data()[0] != -1 || mv.Data()[1] != -1 {
		t.Errorf("MatVec wrong: %v", mv.Data())
	}
	o := Outer(x, x)
	if o.At2(0, 1) != -1 || o.At2(1, 1) != 1 {
		t.Errorf("Outer wrong: %v", o.Data())
	}
	if Dot(x, x) != 2 {
		t.Errorf("Dot = %v", Dot(x, x))
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{0, 0, 1000, 1000}, 2, 2)
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		sum := s.At2(i, 0) + s.At2(i, 1)
		if d := sum - 1; d > 1e-5 || d < -1e-5 {
			t.Errorf("row %d softmax sum = %v", i, sum)
		}
		if s.At2(i, 0) != s.At2(i, 1) {
			t.Errorf("row %d equal logits should give equal probs", i)
		}
	}
	if math.IsNaN(float64(s.At2(1, 0))) {
		t.Error("softmax overflowed on large logits")
	}
}

func TestArgmaxRowsAndSumRows(t *testing.T) {
	a := FromSlice([]float32{1, 5, 2, 9, 0, 3}, 2, 3)
	am := ArgmaxRows(a)
	if am[0] != 1 || am[1] != 0 {
		t.Errorf("ArgmaxRows = %v", am)
	}
	sr := SumRows(a)
	if sr.Data()[0] != 10 || sr.Data()[1] != 5 || sr.Data()[2] != 5 {
		t.Errorf("SumRows = %v", sr.Data())
	}
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r.Data()[0] = 77
	if a.At2(1, 0) != 77 {
		t.Error("Row should be a view")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := RandNormal(NewRNG(42), 0, 1, 10)
	b := RandNormal(NewRNG(42), 0, 1, 10)
	if !Equal(a, b) {
		t.Error("same seed should give identical tensors")
	}
	c := RandNormal(NewRNG(43), 0, 1, 10)
	if Equal(a, c) {
		t.Error("different seed gave identical tensors")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(1)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Float32() == f2.Float32() && f1.Float32() == f2.Float32() && f1.Float32() == f2.Float32() {
		t.Error("forked streams appear identical")
	}
}

func TestInitializerStatistics(t *testing.T) {
	r := NewRNG(3)
	h := HeNormal(r, 100, 100, 100)
	mean := h.Mean()
	if mean > 0.01 || mean < -0.01 {
		t.Errorf("HeNormal mean = %v, want ~0", mean)
	}
	x := XavierUniform(r, 50, 50, 1000)
	limit := float32(math.Sqrt(6.0 / 100.0))
	if x.Max() > limit || x.Min() < -limit {
		t.Errorf("XavierUniform out of bounds [%v, %v] vs limit %v", x.Min(), x.Max(), limit)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	r := NewRNG(11)
	orig := RandNormal(r, 0, 2, 3, 4, 5)
	var buf bytes.Buffer
	n, err := orig.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if int(n) != orig.EncodedSize() {
		t.Errorf("wrote %d bytes, EncodedSize says %d", n, orig.EncodedSize())
	}
	got, err := ReadTensor(&buf)
	if err != nil {
		t.Fatalf("ReadTensor: %v", err)
	}
	if !Equal(orig, got) {
		t.Error("round trip not identical")
	}
}

func TestSerializationRejectsGarbage(t *testing.T) {
	if _, err := ReadTensor(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("expected error for truncated input")
	}
	bad := make([]byte, 16)
	if _, err := ReadTensor(bytes.NewReader(bad)); err == nil {
		t.Error("expected error for bad magic")
	}
}

func TestConvGeomValidate(t *testing.T) {
	good := ConvGeom{InC: 3, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
	if good.OutH() != 8 || good.OutW() != 8 {
		t.Errorf("same-padding output = %dx%d, want 8x8", good.OutH(), good.OutW())
	}
	bad := good
	bad.StrideH = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero stride accepted")
	}
	bad = good
	bad.KH = 20
	if err := bad.Validate(); err == nil {
		t.Error("kernel larger than padded input accepted")
	}
}

// TestIm2colMatchesDirectConv checks the im2col+matmul convolution against a
// direct quadruple-loop reference implementation.
func TestIm2colMatchesDirectConv(t *testing.T) {
	r := NewRNG(5)
	g := ConvGeom{InC: 2, InH: 6, InW: 5, KH: 3, KW: 3, StrideH: 2, StrideW: 1, PadH: 1, PadW: 1}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	outC := 3
	img := RandNormal(r, 0, 1, g.InC, g.InH, g.InW)
	w := RandNormal(r, 0, 1, outC, g.InC*g.KH*g.KW)

	cols := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2col(img.Data(), g, cols)
	got := MatMul(w, cols) // (outC) x (oh*ow)

	// Direct reference.
	oh, ow := g.OutH(), g.OutW()
	for oc := 0; oc < outC; oc++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				var s float32
				for c := 0; c < g.InC; c++ {
					for kh := 0; kh < g.KH; kh++ {
						for kw := 0; kw < g.KW; kw++ {
							iy := oy*g.StrideH - g.PadH + kh
							ix := ox*g.StrideW - g.PadW + kw
							if iy < 0 || iy >= g.InH || ix < 0 || ix >= g.InW {
								continue
							}
							s += img.At(c, iy, ix) * w.At2(oc, (c*g.KH+kh)*g.KW+kw)
						}
					}
				}
				if d := s - got.At2(oc, oy*ow+ox); d > 1e-4 || d < -1e-4 {
					t.Fatalf("conv mismatch at oc=%d oy=%d ox=%d: direct %v vs im2col %v", oc, oy, ox, s, got.At2(oc, oy*ow+ox))
				}
			}
		}
	}
}

// TestCol2imIsIm2colAdjoint verifies <Im2col(x), y> == <x, Col2im(y)> — the
// defining property of an adjoint pair, which is exactly what backprop
// through convolution requires.
func TestCol2imIsIm2colAdjoint(t *testing.T) {
	r := NewRNG(9)
	g := ConvGeom{InC: 2, InH: 5, InW: 5, KH: 3, KW: 3, StrideH: 1, StrideW: 2, PadH: 1, PadW: 0}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	x := RandNormal(r, 0, 1, g.InC*g.InH*g.InW)
	y := RandNormal(r, 0, 1, g.InC*g.KH*g.KW, g.OutH()*g.OutW())

	cols := New(g.InC*g.KH*g.KW, g.OutH()*g.OutW())
	Im2col(x.Data(), g, cols)
	lhs := Dot(cols, y)

	back := make([]float32, g.InC*g.InH*g.InW)
	Col2im(y, g, back)
	rhs := Dot(x, FromSlice(back, len(back)))

	if d := lhs - rhs; d > 1e-3 || d < -1e-3 {
		t.Errorf("adjoint property violated: %v vs %v", lhs, rhs)
	}
}

// Property: MatMul distributes over addition — A(B+C) = AB + AC.
func TestMatMulDistributesProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := RandNormal(r, 0, 1, m, k)
		b := RandNormal(r, 0, 1, k, n)
		c := RandNormal(r, 0, 1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(lhs, rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: serialization round-trips arbitrary shaped tensors.
func TestSerializationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		dims := make([]int, 1+r.Intn(4))
		for i := range dims {
			dims[i] = 1 + r.Intn(5)
		}
		orig := RandNormal(r, 0, 3, dims...)
		var buf bytes.Buffer
		if _, err := orig.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTensor(&buf)
		if err != nil {
			return false
		}
		return Equal(orig, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		a := RandNormal(r, 0, 1, 1+r.Intn(8), 1+r.Intn(8))
		return Equal(a, Transpose2D(Transpose2D(a)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	r := NewRNG(31)
	// Big enough to cross the parallel threshold.
	a := RandNormal(r, 0, 1, 200, 200)
	b := RandNormal(r, 0, 1, 200, 200)
	SetMatMulWorkers(1)
	serial := MatMul(a, b)
	SetMatMulWorkers(4)
	parallel := MatMul(a, b)
	SetMatMulWorkers(0) // restore default
	if !Equal(serial, parallel) {
		t.Error("parallel matmul not bit-identical to serial")
	}
}

func TestMatMulParallelAccumulate(t *testing.T) {
	r := NewRNG(32)
	a := RandNormal(r, 0, 1, 150, 150)
	b := RandNormal(r, 0, 1, 150, 150)
	// Same operation sequence serial vs parallel, so float summation order
	// per output element is identical and results must be bit-equal.
	SetMatMulWorkers(1)
	want := New(150, 150)
	MatMulInto(want, a, b)
	MatMulAccumulate(want, a, b)
	SetMatMulWorkers(4)
	got := New(150, 150)
	MatMulInto(got, a, b)
	MatMulAccumulate(got, a, b)
	SetMatMulWorkers(0)
	if !Equal(want, got) {
		t.Error("parallel accumulate differs from serial")
	}
}

func TestSetMatMulWorkersNegativeRestoresDefault(t *testing.T) {
	SetMatMulWorkers(-5)
	r := NewRNG(33)
	a := RandNormal(r, 0, 1, 4, 4)
	b := RandNormal(r, 0, 1, 4, 4)
	if MatMul(a, b) == nil {
		t.Fatal("matmul failed after negative worker count")
	}
	SetMatMulWorkers(0)
}
