package tensor

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary serialization format (little-endian):
//
//	magic   uint32  0x544E5352 ("RSNT")
//	ndims   uint32
//	dims    uint32 × ndims
//	data    float32 × product(dims)
//
// The format is intentionally trivial: model reload cost is one of the
// baselines the evaluation measures (experiment F3), so the reader must not
// be artificially slow or artificially clever.

const tensorMagic uint32 = 0x544E5352

const (
	// maxRank and maxElements bound what ReadFrom will accept; real models
	// here are far below both.
	maxRank     = 8
	maxElements = 1 << 30
	// readChunk caps how much ReadFrom requests per io.ReadFull, so a
	// header that *claims* a huge payload cannot force a huge allocation:
	// memory grows with bytes actually delivered, not with the claim.
	readChunk = 64 * 1024
)

// WriteTo serializes t to w in the package binary format. It implements
// io.WriterTo.
func (t *Tensor) WriteTo(w io.Writer) (int64, error) {
	var n int64
	hdr := make([]byte, 8+4*len(t.shape))
	binary.LittleEndian.PutUint32(hdr[0:], tensorMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(t.shape)))
	for i, d := range t.shape {
		binary.LittleEndian.PutUint32(hdr[8+4*i:], uint32(d))
	}
	wn, err := w.Write(hdr)
	n += int64(wn)
	if err != nil {
		return n, fmt.Errorf("tensor: write header: %w", err)
	}
	buf := make([]byte, 4*len(t.data))
	for i, v := range t.data {
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
	}
	wn, err = w.Write(buf)
	n += int64(wn)
	if err != nil {
		return n, fmt.Errorf("tensor: write data: %w", err)
	}
	return n, nil
}

// ReadFrom deserializes a tensor from r, replacing t's shape and data. It
// implements io.ReaderFrom.
func (t *Tensor) ReadFrom(r io.Reader) (int64, error) {
	var n int64
	hdr := make([]byte, 8)
	rn, err := io.ReadFull(r, hdr)
	n += int64(rn)
	if err != nil {
		return n, fmt.Errorf("tensor: read header: %w", err)
	}
	if m := binary.LittleEndian.Uint32(hdr[0:]); m != tensorMagic {
		return n, fmt.Errorf("tensor: bad magic %#x", m)
	}
	ndims := int(binary.LittleEndian.Uint32(hdr[4:]))
	if ndims < 0 || ndims > maxRank {
		return n, fmt.Errorf("tensor: implausible rank %d", ndims)
	}
	dimBuf := make([]byte, 4*ndims)
	rn, err = io.ReadFull(r, dimBuf)
	n += int64(rn)
	if err != nil {
		return n, fmt.Errorf("tensor: read dims: %w", err)
	}
	shape := make([]int, ndims)
	total := 1
	for i := range shape {
		d := int(binary.LittleEndian.Uint32(dimBuf[4*i:]))
		shape[i] = d
		// Overflow-safe product: reject before multiplying past the cap,
		// so adversarial dims cannot wrap around to a small total.
		if d != 0 && total > maxElements/d {
			return n, fmt.Errorf("tensor: implausible element count (dims overflow)")
		}
		total *= d
	}
	if total > maxElements {
		return n, fmt.Errorf("tensor: implausible element count %d", total)
	}
	// Read the payload in bounded chunks and grow data as bytes actually
	// arrive: a truncated stream with an inflated header fails with a
	// proportional allocation, not a 4 GiB one.
	data := make([]float32, 0, min(total, readChunk/4))
	var chunk [readChunk]byte
	for remaining := total; remaining > 0; {
		elems := min(remaining, readChunk/4)
		rn, err = io.ReadFull(r, chunk[:4*elems])
		n += int64(rn)
		if err != nil {
			return n, fmt.Errorf("tensor: read data: %w", err)
		}
		for i := 0; i < 4*elems; i += 4 {
			data = append(data, math.Float32frombits(binary.LittleEndian.Uint32(chunk[i:])))
		}
		remaining -= elems
	}
	t.shape = shape
	t.data = data
	return n, nil
}

// ReadTensor reads a tensor from r in the package binary format.
func ReadTensor(r io.Reader) (*Tensor, error) {
	t := &Tensor{}
	if _, err := t.ReadFrom(r); err != nil {
		return nil, err
	}
	return t, nil
}

// EncodedSize returns the number of bytes WriteTo will produce for t.
func (t *Tensor) EncodedSize() int {
	return 8 + 4*len(t.shape) + 4*len(t.data)
}
