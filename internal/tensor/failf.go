package tensor

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: shape and arity validation outside the matmul family (which uses checkMatMulShapes); the Tensor API documents geometry misuse as panicking.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
