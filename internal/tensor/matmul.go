package tensor

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// matmulWorkers is the goroutine budget for large products; 0 resolves to
// GOMAXPROCS (capped at 8). Output rows are disjoint and each row is
// computed wholly within one goroutine, so results are bit-identical to
// the serial kernel regardless of the worker count.
var matmulWorkers int32

// SetMatMulWorkers sets the goroutine budget for large matrix products.
// n ≤ 0 restores the default (GOMAXPROCS, capped at 8); n == 1 forces the
// serial kernel. Safe to call concurrently.
func SetMatMulWorkers(n int) {
	if n < 0 {
		n = 0
	}
	atomic.StoreInt32(&matmulWorkers, int32(n))
}

func resolveWorkers() int {
	n := int(atomic.LoadInt32(&matmulWorkers))
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 8 {
			n = 8
		}
	}
	if n < 1 {
		n = 1
	}
	return n
}

// parallelThreshold is the m·k·n FLOP volume above which MatMul fans out.
const parallelThreshold = 1 << 21

// ShapeError is the panic value raised by the matmul-family shape
// validation. It implements error, so a recover() site can unwrap the
// operation and the offending geometry instead of string-matching.
type ShapeError struct {
	// Op names the kernel whose operands were malformed, e.g. "MatMulInto".
	Op string
	// Detail describes the mismatch in terms of the operand shapes.
	Detail string
}

func (e *ShapeError) Error() string { return "tensor: " + e.Op + ": " + e.Detail }

// checkMatMulShapes validates the operand geometry shared by the
// matmul-family kernels (MatMul, MatMulInto, MatMulAccumulate,
// MatMulTransA, MatMulTransB) and returns the output dimensions (m, n).
// aTrans/bTrans select which operand axes contract; a non-nil out must
// already have shape (m×n). On mismatch it panics with a *ShapeError.
//
// This is the package's allowlisted nopanic validation helper: malformed
// shapes are programmer errors on construction paths, never data-dependent
// runtime conditions, so the documented API contract is to panic — from
// exactly this one site.
func checkMatMulShapes(op string, a, b, out *Tensor, aTrans, bTrans bool) (m, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(&ShapeError{Op: op, Detail: fmt.Sprintf("needs 2-D operands, got %v and %v", a.shape, b.shape)})
	}
	aInner, bInner := a.shape[1], b.shape[0]
	m, n = a.shape[0], b.shape[1]
	if aTrans {
		aInner, m = a.shape[0], a.shape[1]
	}
	if bTrans {
		bInner, n = b.shape[1], b.shape[0]
	}
	if aInner != bInner {
		panic(&ShapeError{Op: op, Detail: fmt.Sprintf("inner dimension mismatch %v · %v (contracting %d vs %d)",
			a.shape, b.shape, aInner, bInner)})
	}
	if out != nil && (len(out.shape) != 2 || out.shape[0] != m || out.shape[1] != n) {
		panic(&ShapeError{Op: op, Detail: fmt.Sprintf("out shape %v, want [%d %d]", out.shape, m, n)})
	}
	return m, n
}

// MatMul returns the matrix product a·b of two 2-D tensors, (m×k)·(k×n) →
// (m×n). The kernel iterates in ikj order so the innermost loop streams both
// the b row and the output row, which is the cache-friendly layout for
// row-major storage.
func MatMul(a, b *Tensor) *Tensor {
	m, n := checkMatMulShapes("MatMul", a, b, nil, false, false)
	out := New(m, n)
	matMulInto(out, a, b, false)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage. out must already
// have shape (m×n).
func MatMulInto(out, a, b *Tensor) {
	checkMatMulShapes("MatMulInto", a, b, out, false, false)
	matMulInto(out, a, b, false)
}

// MatMulAccumulate computes out += a·b.
func MatMulAccumulate(out, a, b *Tensor) {
	checkMatMulShapes("MatMulAccumulate", a, b, out, false, false)
	matMulInto(out, a, b, true)
}

func matMulInto(out, a, b *Tensor, accumulate bool) {
	m, k, n := a.shape[0], a.shape[1], b.shape[1]
	workers := resolveWorkers()
	if workers > 1 && int64(m)*int64(k)*int64(n) >= parallelThreshold && m > 1 {
		if workers > m {
			workers = m
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulRows(out, a, b, accumulate, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	matMulRows(out, a, b, accumulate, 0, m)
}

// matMulRows computes output rows [lo, hi) of out = (out +) a·b.
func matMulRows(out, a, b *Tensor, accumulate bool, lo, hi int) {
	k, n := a.shape[1], b.shape[1]
	ad, bd, od := a.data, b.data, out.data
	if !accumulate {
		for i := lo * n; i < hi*n; i++ {
			od[i] = 0
		}
	}
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for p, av := range arow {
			if av == 0 { //lint:allow(floateq) sparse skip: pruned weights are exact zeros
				// Sparse-friendly skip: pruned weights are exact zeros, so
				// unstructured sparsity translates into skipped work here.
				continue
			}
			brow := bd[p*n : (p+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

// MatMulTransB returns a·bᵀ for 2-D a (m×k) and b (n×k) → (m×n). This is the
// natural kernel for dense-layer forward passes where weights are stored as
// (out×in). Large products fan rows out across the SetMatMulWorkers budget;
// each output row is computed wholly within one goroutine, so results stay
// bit-identical to the serial kernel — the property the batched fleet path
// relies on when a fused dense layer runs many frames as one product.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, n := checkMatMulShapes("MatMulTransB", a, b, nil, false, true)
	k := a.shape[1]
	out := New(m, n)
	workers := resolveWorkers()
	if workers > 1 && int64(m)*int64(k)*int64(n) >= parallelThreshold && m > 1 {
		if workers > m {
			workers = m
		}
		var wg sync.WaitGroup
		chunk := (m + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > m {
				hi = m
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				matMulTransBRows(out, a, b, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
		return out
	}
	matMulTransBRows(out, a, b, 0, m)
	return out
}

// matMulTransBRows computes output rows [lo, hi) of out = a·bᵀ.
func matMulTransBRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.shape[1], out.shape[1]
	ad, bd, od := a.data, b.data, out.data
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			brow := bd[j*k : (j+1)*k]
			var s float32
			for p, av := range arow {
				s += av * brow[p]
			}
			orow[j] = s
		}
	}
}

// MatMulTransA returns aᵀ·b for 2-D a (k×m) and b (k×n) → (m×n). This is the
// natural kernel for dense-layer weight gradients.
func MatMulTransA(a, b *Tensor) *Tensor {
	m, n := checkMatMulShapes("MatMulTransA", a, b, nil, true, false)
	k := a.shape[0]
	out := New(m, n)
	ad, bd, od := a.data, b.data, out.data
	for p := 0; p < k; p++ {
		arow := ad[p*m : (p+1)*m]
		brow := bd[p*n : (p+1)*n]
		for i, av := range arow {
			if av == 0 { //lint:allow(floateq) sparse skip: pruned weights are exact zeros
				continue
			}
			orow := od[i*n : (i+1)*n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns the matrix-vector product a·x of a 2-D tensor (m×k) and a
// 1-D tensor (k) → (m).
func MatVec(a, x *Tensor) *Tensor {
	if len(a.shape) != 2 || len(x.shape) != 1 {
		failf("tensor: MatVec needs 2-D and 1-D operands, got %v and %v", a.shape, x.shape)
	}
	if a.shape[1] != x.shape[0] {
		failf("tensor: MatVec dimension mismatch %v · %v", a.shape, x.shape)
	}
	m, k := a.shape[0], a.shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.data[i*k : (i+1)*k]
		var s float32
		for p, v := range row {
			s += v * x.data[p]
		}
		out.data[i] = s
	}
	return out
}

// Outer returns the outer product x⊗y of two 1-D tensors (m)·(n) → (m×n).
func Outer(x, y *Tensor) *Tensor {
	if len(x.shape) != 1 || len(y.shape) != 1 {
		failf("tensor: Outer needs 1-D operands, got %v and %v", x.shape, y.shape)
	}
	m, n := x.shape[0], y.shape[0]
	out := New(m, n)
	for i := 0; i < m; i++ {
		xv := x.data[i]
		if xv == 0 { //lint:allow(floateq) sparse skip: pruned weights are exact zeros
			continue
		}
		row := out.data[i*n : (i+1)*n]
		for j, yv := range y.data {
			row[j] = xv * yv
		}
	}
	return out
}

// Dot returns the inner product of two equally sized tensors, flattening
// their shapes.
func Dot(a, b *Tensor) float32 {
	if len(a.data) != len(b.data) {
		failf("tensor: Dot length mismatch %d vs %d", len(a.data), len(b.data))
	}
	var s float32
	for i, v := range a.data {
		s += v * b.data[i]
	}
	return s
}
