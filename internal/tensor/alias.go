package tensor

// SetData re-points t at data, which must hold exactly t.Len() elements.
// The previous backing slice is released to the garbage collector (unless
// aliased elsewhere). This is the primitive behind copy-on-write weight
// sharing: a checkpoint-store view aliases the shared dense snapshot and
// swaps in a private copy the first time a transition writes the parameter.
func (t *Tensor) SetData(data []float32) {
	if len(data) != len(t.data) {
		failf("tensor: SetData length %d does not match shape %v (want %d)", len(data), t.shape, len(t.data))
	}
	t.data = data
}

// SharesData reports whether a and b read the same backing storage, i.e.
// whether a write through one is visible through the other. Two empty
// tensors never share.
func SharesData(a, b *Tensor) bool {
	return len(a.data) > 0 && len(b.data) > 0 && &a.data[0] == &b.data[0]
}

// Alias returns a read-view of t: a tensor with the same shape backed by
// the same storage. No data is copied; mutating either tensor's elements
// mutates both. Callers that need isolation use Clone instead.
func Alias(t *Tensor) *Tensor {
	return &Tensor{shape: append([]int(nil), t.shape...), data: t.data}
}
