package tensor

import "math"

// binaryCheck panics unless a and b share a shape.
func binaryCheck(op string, a, b *Tensor) {
	if !SameShape(a, b) {
		failf("tensor: %s shape mismatch %v vs %v", op, a.shape, b.shape)
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	binaryCheck("Add", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	binaryCheck("Sub", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	binaryCheck("Mul", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out
}

// Div returns a / b elementwise.
func Div(a, b *Tensor) *Tensor {
	binaryCheck("Div", a, b)
	out := New(a.shape...)
	for i := range a.data {
		out.data[i] = a.data[i] / b.data[i]
	}
	return out
}

// AddInPlace accumulates b into a and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	binaryCheck("AddInPlace", a, b)
	for i := range a.data {
		a.data[i] += b.data[i]
	}
	return a
}

// SubInPlace subtracts b from a in place and returns a.
func SubInPlace(a, b *Tensor) *Tensor {
	binaryCheck("SubInPlace", a, b)
	for i := range a.data {
		a.data[i] -= b.data[i]
	}
	return a
}

// MulInPlace multiplies a by b elementwise in place and returns a.
func MulInPlace(a, b *Tensor) *Tensor {
	binaryCheck("MulInPlace", a, b)
	for i := range a.data {
		a.data[i] *= b.data[i]
	}
	return a
}

// AXPY computes a += alpha*b in place, the classic saxpy kernel.
func AXPY(alpha float32, b, a *Tensor) *Tensor {
	binaryCheck("AXPY", a, b)
	for i := range a.data {
		a.data[i] += alpha * b.data[i]
	}
	return a
}

// Scale multiplies every element of t by s in place and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.data {
		t.data[i] *= s
	}
	return t
}

// AddScalar adds s to every element of t in place and returns t.
func (t *Tensor) AddScalar(s float32) *Tensor {
	for i := range t.data {
		t.data[i] += s
	}
	return t
}

// Apply replaces each element x of t with f(x) in place and returns t.
func (t *Tensor) Apply(f func(float32) float32) *Tensor {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
	return t
}

// Map returns a new tensor whose elements are f applied to t's elements.
func (t *Tensor) Map(f func(float32) float32) *Tensor {
	out := New(t.shape...)
	for i := range t.data {
		out.data[i] = f(t.data[i])
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	var s float32
	for _, v := range t.data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float32 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float32(len(t.data))
}

// Max returns the maximum element. It panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		failf("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. It panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		failf("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the first maximum element.
func (t *Tensor) Argmax() int {
	if len(t.data) == 0 {
		failf("tensor: Argmax of empty tensor")
	}
	best, bi := t.data[0], 0
	for i, v := range t.data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// L1Norm returns the sum of absolute values of the elements.
func (t *Tensor) L1Norm() float32 {
	var s float32
	for _, v := range t.data {
		if v < 0 {
			s -= v
		} else {
			s += v
		}
	}
	return s
}

// L2Norm returns the Euclidean norm of the elements.
func (t *Tensor) L2Norm() float32 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// CountNonZero returns the number of elements that are exactly nonzero.
func (t *Tensor) CountNonZero() int {
	n := 0
	for _, v := range t.data {
		if v != 0 { //lint:allow(floateq) CountNonZero is defined over bit-exact zeros
			n++
		}
	}
	return n
}

// Sparsity returns the fraction of elements that are exactly zero, in [0,1].
func (t *Tensor) Sparsity() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return 1 - float64(t.CountNonZero())/float64(len(t.data))
}

// Clamp limits every element of t to [lo, hi] in place and returns t.
func (t *Tensor) Clamp(lo, hi float32) *Tensor {
	for i, v := range t.data {
		if v < lo {
			t.data[i] = lo
		} else if v > hi {
			t.data[i] = hi
		}
	}
	return t
}

// Transpose2D returns the transpose of a 2-D tensor.
func Transpose2D(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		failf("tensor: Transpose2D on %d-D tensor", len(a.shape))
	}
	r, c := a.shape[0], a.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j*r+i] = v
		}
	}
	return out
}

// Row returns a view (shared storage) of row i of a 2-D tensor as a 1-D
// tensor of length cols.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.shape) != 2 {
		failf("tensor: Row on %d-D tensor", len(t.shape))
	}
	c := t.shape[1]
	return &Tensor{shape: []int{c}, data: t.data[i*c : (i+1)*c]}
}

// SumRows returns a 1-D tensor of length cols holding the column sums of a
// 2-D tensor (i.e. the reduction over rows).
func SumRows(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		failf("tensor: SumRows on %d-D tensor", len(a.shape))
	}
	r, c := a.shape[0], a.shape[1]
	out := New(c)
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		for j, v := range row {
			out.data[j] += v
		}
	}
	return out
}

// ArgmaxRows returns, for each row of a 2-D tensor, the column index of its
// maximum element.
func ArgmaxRows(a *Tensor) []int {
	if len(a.shape) != 2 {
		failf("tensor: ArgmaxRows on %d-D tensor", len(a.shape))
	}
	r, c := a.shape[0], a.shape[1]
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}

// SoftmaxRows returns a new 2-D tensor whose rows are the softmax of a's
// rows, computed with the max-subtraction trick for numerical stability.
func SoftmaxRows(a *Tensor) *Tensor {
	if len(a.shape) != 2 {
		failf("tensor: SoftmaxRows on %d-D tensor", len(a.shape))
	}
	r, c := a.shape[0], a.shape[1]
	out := New(r, c)
	for i := 0; i < r; i++ {
		row := a.data[i*c : (i+1)*c]
		orow := out.data[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float32
		for j, v := range row {
			e := float32(math.Exp(float64(v - m)))
			orow[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}
