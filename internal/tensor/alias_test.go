package tensor

import "testing"

func TestSetData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	fresh := []float32{5, 6, 7, 8}
	a.SetData(fresh)
	if a.At2(1, 1) != 8 {
		t.Fatalf("At2(1,1) = %v after SetData, want 8", a.At2(1, 1))
	}
	fresh[0] = 42
	if a.At2(0, 0) != 42 {
		t.Fatalf("SetData must alias, not copy: At2(0,0) = %v, want 42", a.At2(0, 0))
	}
}

func TestSetDataLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetData with wrong length must panic")
		}
	}()
	New(2, 2).SetData(make([]float32, 3))
}

func TestSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 4)
	b := Alias(a)
	c := a.Clone()
	if !SharesData(a, b) {
		t.Fatal("Alias must share storage")
	}
	if SharesData(a, c) {
		t.Fatal("Clone must not share storage")
	}
	if SharesData(New(), New()) {
		t.Fatal("empty tensors never share")
	}
	b.SetData(make([]float32, 4))
	if SharesData(a, b) {
		t.Fatal("SetData must detach the alias")
	}
}

func TestAliasWritesVisibleBothWays(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := Alias(a)
	b.Set2(-1, 1, 2)
	if a.At2(1, 2) != -1 {
		t.Fatalf("write through alias invisible: got %v", a.At2(1, 2))
	}
	// Shape metadata stays independent.
	r := b.Reshape(3, 2)
	if a.Dims() != 2 || a.Dim(0) != 2 {
		t.Fatalf("alias reshape mutated original shape: %v", a.Shape())
	}
	if !SharesData(a, r) {
		t.Fatal("reshaped alias must still share storage")
	}
}
