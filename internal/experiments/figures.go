package experiments

import (
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// f1Sweep is the sparsity axis shared by F1 and F2.
var f1Sweep = []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95}

// RunF1 reproduces Figure 1: accuracy vs sparsity for magnitude-global,
// magnitude-layer, random, and structured-channel pruning on the road-sign
// task. Expected shape: magnitude ≫ random at matched sparsity; structured
// tracks unstructured at low sparsity and falls off earlier.
func RunF1(z *Zoo) ([]*metrics.Table, error) {
	eval := z.SignEval()
	methods := []prune.Method{
		prune.MagnitudeGlobal{},
		prune.MagnitudeLayer{},
		prune.Random{Seed: 7},
		prune.StructuredChannel{},
	}
	accs := make(map[string][]float64)
	achieved := make(map[string][]float64)
	for _, method := range methods {
		m := z.CloneSign()
		plans, err := method.PlanNested(m, f1Sweep)
		if err != nil {
			return nil, err
		}
		rm, err := core.Build(m, plans)
		if err != nil {
			return nil, err
		}
		if err := rm.Calibrate(func(mm *nn.Sequential) float64 { return eval(mm) }); err != nil {
			return nil, err
		}
		for _, lvl := range rm.Levels()[1:] { // skip implicit dense L0
			accs[method.Name()] = append(accs[method.Name()], lvl.Accuracy)
			achieved[method.Name()] = append(achieved[method.Name()], lvl.Sparsity)
		}
	}
	t := metrics.NewTable(
		"F1: road-sign accuracy vs weight sparsity (test set, no fine-tuning)",
		"target", "magnitude-global", "magnitude-layer", "random", "structured (achieved)",
	)
	for i, s := range f1Sweep {
		t.AddRow(
			metrics.Pct(s),
			metrics.F(accs["magnitude-global"][i], 4),
			metrics.F(accs["magnitude-layer"][i], 4),
			metrics.F(accs["random"][i], 4),
			fmt.Sprintf("%s (%s)", metrics.F(accs["structured-channel"][i], 4), metrics.Pct(achieved["structured-channel"][i])),
		)
	}
	return []*metrics.Table{t}, nil
}

// RunF2 reproduces Figure 2: per-inference latency and energy vs sparsity,
// from the platform model for unstructured pruning and for physically
// compacted structured pruning, cross-checked with measured wall-clock of
// the compacted models on the reproduction host.
func RunF2(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	input := tensor.RandNormal(tensor.NewRNG(2), 0, 1, 1, 1, 16, 16)

	t := metrics.NewTable(
		fmt.Sprintf("F2: per-inference cost vs sparsity (%s model + host wall-clock)", spec.Name),
		"target", "unstr latency ms", "unstr energy mJ", "compact latency ms", "compact energy mJ", "host measured ms (compact)",
	)
	// Dense reference row measured once.
	dense := z.CloneSign()
	denseCost := spec.Estimate(dense)
	denseMs := platform.MeasureLatency(dense, input, 200)
	t.AddRow("0.0% (dense)",
		metrics.F(denseCost.LatencyMS, 3), metrics.F(denseCost.EnergyMJ, 3),
		metrics.F(denseCost.LatencyMS, 3), metrics.F(denseCost.EnergyMJ, 3),
		metrics.F(denseMs, 4))

	for _, s := range f1Sweep[1:] {
		// Unstructured branch.
		mu := z.CloneSign()
		planU, err := prune.PlanSingle(prune.MagnitudeGlobal{}, mu, s)
		if err != nil {
			return nil, err
		}
		planU.Apply(mu)
		costU := spec.Estimate(mu)

		// Structured + compacted branch.
		ms := z.CloneSign()
		planS, err := prune.PlanSingle(prune.StructuredChannel{}, ms, s)
		if err != nil {
			return nil, err
		}
		planS.Apply(ms)
		compacted, err := prune.Compact(ms)
		if err != nil {
			return nil, err
		}
		costS := spec.Estimate(compacted)
		measured := platform.MeasureLatency(compacted, input, 200)

		t.AddRow(metrics.Pct(s),
			metrics.F(costU.LatencyMS, 3), metrics.F(costU.EnergyMJ, 3),
			metrics.F(costS.LatencyMS, 3), metrics.F(costS.EnergyMJ, 3),
			metrics.F(measured, 4))
	}
	return []*metrics.Table{t}, nil
}

// RunF3 reproduces Figure 3, the headline result: time to recover full
// accuracy from the deepest pruning level via (a) the reversible recovery
// store, (b) a full dense-checkpoint reload, (c) fine-tuning the pruned
// model back to accuracy. Expected shape: (a) ≪ (b) ≪ (c) by orders of
// magnitude.
func RunF3(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	model, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return nil, err
	}
	eval := z.ObstacleEval()
	denseAcc := eval(model)
	deepest := rm.NumLevels() - 1

	// (a) Reversible restore, averaged over repeated deep↔dense toggles.
	const reps = 200
	if err := rm.ApplyLevel(deepest); err != nil {
		return nil, err
	}
	start := now()
	for i := 0; i < reps; i++ {
		if err := rm.RestoreFull(); err != nil {
			return nil, err
		}
		if err := rm.ApplyLevel(deepest); err != nil {
			return nil, err
		}
	}
	// Each rep performs one restore and one re-prune; charge half the loop
	// to the restore direction.
	restoreMS := float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e6
	if err := rm.RestoreFull(); err != nil {
		return nil, err
	}
	accRestore := eval(model)

	// (b) Full checkpoint reload from an in-memory dense checkpoint (no
	// disk, which favors the baseline).
	checkpoint, err := model.EncodeWeights()
	if err != nil {
		return nil, err
	}
	if err := rm.ApplyLevel(deepest); err != nil {
		return nil, err
	}
	start = now()
	const reloadReps = 50
	for i := 0; i < reloadReps; i++ {
		if err := model.DecodeWeights(checkpoint); err != nil {
			return nil, err
		}
	}
	reloadMS := float64(now().Sub(start).Nanoseconds()) / reloadReps / 1e6
	accReload := eval(model)
	// The wrapper's bookkeeping no longer matches the reloaded weights;
	// this stack is discarded after the measurement.

	// (b') Checkpoint reload from disk — the realistic deployment baseline
	// (model weights live in flash/storage, not RAM).
	diskMS, err := measureDiskReload(model, checkpoint, reloadReps)
	if err != nil {
		return nil, err
	}

	// (c) Fine-tune recovery: prune irreversibly (store discarded), then
	// retrain until within 1% of dense accuracy.
	ft := z.CloneObstacle()
	designed, err := z.DesignedLevels()
	if err != nil {
		return nil, err
	}
	plan, err := prune.PlanSingle(prune.MagnitudeGlobal{}, ft, designed[len(designed)-1])
	if err != nil {
		return nil, err
	}
	plan.Apply(ft)
	trainSet := z.ObstacleTrain()
	start = now()
	epochs := 0
	accFT := eval(ft)
	for accFT < denseAcc-0.01 && epochs < 40 {
		train.Fit(ft, trainSet.X, trainSet.Labels, train.Config{
			Epochs:    1,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.001, 0),
			Seed:      int64(100 + epochs),
		})
		epochs++
		accFT = eval(ft)
	}
	ftMS := float64(now().Sub(start).Nanoseconds()) / 1e6

	t := metrics.NewTable(
		"F3: recovery to full accuracy from the deepest level (host wall-clock)",
		"mechanism", "time ms", "recovered acc", "vs reversible", "notes",
	)
	t.AddRow("reversible restore (RRP)", metrics.F(restoreMS, 4), metrics.F(accRestore, 4), "1×",
		fmt.Sprintf("%d weights copied", rm.WeightsChanged(0, deepest)))
	t.AddRow("checkpoint reload (RAM)", metrics.F(reloadMS, 4), metrics.F(accReload, 4),
		metrics.F(reloadMS/restoreMS, 1)+"×", fmt.Sprintf("%d-byte checkpoint (in-memory)", len(checkpoint)))
	t.AddRow("checkpoint reload (disk)", metrics.F(diskMS, 4), metrics.F(accReload, 4),
		metrics.F(diskMS/restoreMS, 1)+"×", "same checkpoint via the filesystem")
	t.AddRow("fine-tune recovery", metrics.F(ftMS, 1), metrics.F(accFT, 4),
		metrics.F(ftMS/restoreMS, 0)+"×", fmt.Sprintf("%d epoch(s) retraining", epochs))
	return []*metrics.Table{t}, nil
}

// measureDiskReload times loading the checkpoint through the filesystem.
func measureDiskReload(model *nn.Sequential, checkpoint []byte, reps int) (float64, error) {
	f, err := os.CreateTemp("", "rrp-checkpoint-*.bin")
	if err != nil {
		return 0, err
	}
	path := f.Name()
	defer os.Remove(path)
	if _, err := f.Write(checkpoint); err != nil {
		f.Close()
		return 0, err
	}
	if err := f.Close(); err != nil {
		return 0, err
	}
	start := now()
	for i := 0; i < reps; i++ {
		data, err := os.ReadFile(path)
		if err != nil {
			return 0, err
		}
		if err := model.DecodeWeights(data); err != nil {
			return 0, err
		}
	}
	return float64(now().Sub(start).Nanoseconds()) / float64(reps) / 1e6, nil
}

// RunF4 reproduces Figure 4: the adaptation timeline of the cut-in
// scenario — criticality score, class, active level, and detection events,
// sampled around the spike.
func RunF4(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	model, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return nil, err
	}
	gov, err := governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract(), governor.WithTrace())
	if err != nil {
		return nil, err
	}
	res, err := perception.RunScenario(sim.CutIn(), model, rm, perception.LoopConfig{
		FrameSize: 16, Spec: spec, Governor: gov, Record: true, Seed: 42,
	})
	if err != nil {
		return nil, err
	}

	t := metrics.NewTable(
		"F4: cut-in adaptation timeline (cut-in event at tick 1000)",
		"tick", "ttc s", "score", "class", "level", "truth", "detected",
	)
	rec := res.Recorder
	sample := func(tick int) {
		if tick >= res.Ticks {
			return
		}
		ttc := rec.Series("ttc")[tick]
		ttcStr := "∞"
		if ttc >= 0 {
			ttcStr = metrics.F(ttc, 2)
		}
		t.AddRow(
			fmt.Sprintf("%d", tick),
			ttcStr,
			metrics.F(rec.Series("score")[tick], 3),
			safety.Criticality(int(rec.Series("class")[tick])).String(),
			fmt.Sprintf("L%d", int(rec.Series("level")[tick])),
			metrics.F(rec.Series("truth")[tick], 0),
			metrics.F(rec.Series("detected")[tick], 0),
		)
	}
	for tick := 0; tick < 1000; tick += 250 {
		sample(tick)
	}
	for tick := 995; tick <= 1080; tick += 5 {
		sample(tick)
	}
	for tick := 1100; tick < res.Ticks; tick += 300 {
		sample(tick)
	}

	summary := metrics.NewTable(
		"F4 summary",
		"metric", "value",
	)
	summary.AddRow("level switches", fmt.Sprintf("%d", res.Switches))
	summary.AddRow("contract violations", fmt.Sprintf("%d", res.Violations))
	summary.AddRow("collided", fmt.Sprintf("%v", res.Collided))
	summary.AddRow("missed critical frames", fmt.Sprintf("%d", res.MissedCritical))
	summary.AddRow("mean level", metrics.F(res.MeanLevel, 2))
	summary.AddRow("energy mJ", metrics.F(res.EnergyMJ, 1))
	return []*metrics.Table{t, summary}, nil
}

// RunF5 reproduces Figure 5: the governor-policy ablation over all five
// scenarios. Expected shape: hysteresis cuts switch count dramatically at
// equal safety; predictive escalates earlier (more dense ticks, fewer
// critical misses); static-deep is cheap but unsafe.
func RunF5(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	type policyCase struct {
		name string
		make func() governor.Policy
	}
	cases := []policyCase{
		{"threshold", func() governor.Policy { return governor.Threshold{} }},
		{"hysteresis(20)", func() governor.Policy { return &governor.Hysteresis{DwellTicks: 20} }},
		{"predictive", func() governor.Policy { return &governor.Predictive{} }},
	}
	scenarios := sim.AllScenarios()
	t := metrics.NewTable(
		fmt.Sprintf("F5: policy ablation over all %d scenarios (sums across scenarios)", len(scenarios)),
		"policy", "switches", "collisions", "missed critical", "false alarms", "violations", "energy mJ", "mean level",
	)
	for _, pc := range cases {
		var switches, collisions, missedCrit, falseAlarms, violations int
		var energy, meanLevel float64
		for _, sc := range scenarios {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return nil, err
			}
			gov, err := governor.New(rm, pc.make(), safety.DefaultContract())
			if err != nil {
				return nil, err
			}
			res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
				FrameSize: 16, Spec: spec, Governor: gov, Seed: 42,
			})
			if err != nil {
				return nil, err
			}
			switches += res.Switches
			if res.Collided {
				collisions++
			}
			missedCrit += res.MissedCritical
			falseAlarms += res.FalseAlarms
			violations += res.Violations
			energy += res.EnergyMJ
			meanLevel += res.MeanLevel
		}
		t.AddRow(pc.name,
			fmt.Sprintf("%d", switches),
			fmt.Sprintf("%d", collisions),
			fmt.Sprintf("%d", missedCrit),
			fmt.Sprintf("%d", falseAlarms),
			fmt.Sprintf("%d", violations),
			metrics.F(energy, 1),
			metrics.F(meanLevel/float64(len(scenarios)), 2),
		)
	}
	return []*metrics.Table{t}, nil
}
