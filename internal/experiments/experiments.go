package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/metrics"
)

// Experiment is one reconstructed table or figure of the evaluation.
type Experiment struct {
	// ID is the DESIGN.md identifier ("F1" … "T5").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Run regenerates the experiment's tables. Runners share the zoo so
	// model training happens once per process.
	Run func(z *Zoo) ([]*metrics.Table, error)
}

// All returns every experiment in report order (figures first, then
// tables).
func All() []Experiment {
	return []Experiment{
		{ID: "F1", Title: "Accuracy vs sparsity per pruning method", Run: RunF1},
		{ID: "F2", Title: "Latency and energy vs sparsity (model + measured)", Run: RunF2},
		{ID: "F3", Title: "Recovery latency: reversible restore vs reload vs fine-tune", Run: RunF3},
		{ID: "F4", Title: "Runtime adaptation timeline (cut-in scenario)", Run: RunF4},
		{ID: "F5", Title: "Governor policy ablation", Run: RunF5},
		{ID: "T1", Title: "Recovery-store memory overhead vs per-level checkpoints", Run: RunT1},
		{ID: "T2", Title: "Safety outcomes per deployment strategy", Run: RunT2},
		{ID: "T3", Title: "Energy at equal safety", Run: RunT3},
		{ID: "T4", Title: "Level library calibration", Run: RunT4},
		{ID: "T5", Title: "Transition cost matrix", Run: RunT5},
		{ID: "A1", Title: "Ablation: pruning vs quantization ladders", Run: RunA1},
		{ID: "A2", Title: "Ablation: hysteresis dwell sweep", Run: RunA2},
		{ID: "A3", Title: "Ablation: sparse-skip matmul kernel", Run: RunA3},
		{ID: "A4", Title: "Ablation: uncertainty signal in criticality fusion", Run: RunA4},
		{ID: "A5", Title: "Ablation: recovery-store encoding (fp32 vs bf16)", Run: RunA5},
		{ID: "A6", Title: "Baseline: RRP vs multi-model switching", Run: RunA6},
		{ID: "A7", Title: "Monte-Carlo robustness over random traffic", Run: RunA7},
		{ID: "A8", Title: "Ablation: one-shot vs gradual masked fine-tuning", Run: RunA8},
		{ID: "A9", Title: "Fault injection: SEU detection and scrub repair", Run: RunA9},
	}
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %v)", id, ids)
}

// RunAndPrint executes one experiment and writes its tables (text format)
// to w.
func RunAndPrint(e Experiment, z *Zoo, w io.Writer) error {
	tables, err := e.Run(z)
	if err != nil {
		return fmt.Errorf("experiments: %s: %w", e.ID, err)
	}
	fmt.Fprintf(w, "=== %s: %s ===\n\n", e.ID, e.Title)
	for _, t := range tables {
		fmt.Fprintln(w, t.String())
	}
	return nil
}

// RunAllAndPrint executes every experiment against one shared zoo.
func RunAllAndPrint(z *Zoo, w io.Writer) error {
	for _, e := range All() {
		if err := RunAndPrint(e, z, w); err != nil {
			return err
		}
	}
	return nil
}

// Markdown renders an experiment's tables as markdown for EXPERIMENTS.md.
func Markdown(e Experiment, z *Zoo) (string, error) {
	tables, err := e.Run(z)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("### %s — %s\n\n", e.ID, e.Title)
	for _, t := range tables {
		out += t.Markdown() + "\n"
	}
	return out, nil
}

// WriteCSVs runs the selected experiment (or all when id is empty) and
// writes every produced table as a CSV file named <ID>_<n>.csv in dir.
func WriteCSVs(z *Zoo, id, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	list := All()
	if id != "" {
		e, err := ByID(id)
		if err != nil {
			return err
		}
		list = []Experiment{e}
	}
	for _, e := range list {
		tables, err := e.Run(z)
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		for i, t := range tables {
			path := filepath.Join(dir, fmt.Sprintf("%s_%d.csv", e.ID, i))
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
