package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"repro/internal/nn"
	"repro/internal/platform"
)

// sharedZoo is trained once per test binary; experiment runners are
// read-mostly over it.
var sharedZoo = NewZoo(1)

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 19 {
		t.Fatalf("registry has %d experiments, want 19", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("F3"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestZooModelsAreTrained(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	if acc := sharedZoo.SignEval()(mustSign(t)); acc < 0.9 {
		t.Errorf("sign model accuracy %v", acc)
	}
	if acc := sharedZoo.ObstacleEval()(mustObstacle(t)); acc < 0.9 {
		t.Errorf("obstacle model accuracy %v", acc)
	}
}

func mustSign(t *testing.T) *nn.Sequential {
	t.Helper()
	m, _ := sharedZoo.SignNet()
	return m
}

func mustObstacle(t *testing.T) *nn.Sequential {
	t.Helper()
	m, _ := sharedZoo.ObstacleNet()
	return m
}

func TestCloneIsIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	a := sharedZoo.CloneObstacle()
	b := sharedZoo.CloneObstacle()
	a.Param("fc2/weight").Value.Fill(0)
	if b.Param("fc2/weight").Value.CountNonZero() == 0 {
		t.Error("clones share weight storage")
	}
	orig, _ := sharedZoo.ObstacleNet()
	if orig.Param("fc2/weight").Value.CountNonZero() == 0 {
		t.Error("clone mutation reached the zoo original")
	}
}

func TestDesignedLevelsAreUsable(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	levels, err := sharedZoo.DesignedLevels()
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != len(DefaultAccuracyDrops) {
		t.Fatalf("designed %d levels for %d drops", len(levels), len(DefaultAccuracyDrops))
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] <= levels[i-1] {
			t.Fatalf("levels not increasing: %v", levels)
		}
	}
	_, rm, err := sharedZoo.ObstacleStack(nil, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Accuracies must be roughly monotone decreasing with depth (small
	// calibration noise tolerated).
	for i := 1; i < rm.NumLevels(); i++ {
		if rm.Level(i).Accuracy > rm.Level(i-1).Accuracy+0.03 {
			t.Errorf("level %d accuracy %v above level %d accuracy %v", i, rm.Level(i).Accuracy, i-1, rm.Level(i-1).Accuracy)
		}
	}
	// Energy must fall with depth.
	if rm.Level(rm.NumLevels()-1).EnergyMJ >= rm.Level(0).EnergyMJ {
		t.Error("deepest level not cheaper than dense")
	}
}

func TestObstacleStackDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	_, rm1, err := sharedZoo.ObstacleStack(nil, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	_, rm2, err := sharedZoo.ObstacleStack(nil, testSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rm1.NumLevels(); i++ {
		if rm1.Level(i).Accuracy != rm2.Level(i).Accuracy {
			t.Errorf("level %d accuracy differs between identical stacks", i)
		}
	}
}

// TestAllExperimentsProduceTables is the end-to-end harness smoke test: it
// regenerates every table and figure once.
func TestAllExperimentsProduceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	for _, e := range All() {
		tables, err := e.Run(sharedZoo)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(tables) == 0 {
			t.Fatalf("%s: no tables", e.ID)
		}
		for _, tb := range tables {
			if tb.NumRows() == 0 {
				t.Errorf("%s: empty table %q", e.ID, tb.Title)
			}
		}
	}
}

// TestF3Shape parses the F3 table and asserts the headline ordering:
// reversible ≪ reload ≪ fine-tune.
func TestF3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	tables, err := RunF3(sharedZoo)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	if len(rows) != 4 {
		t.Fatalf("F3 has %d rows", len(rows))
	}
	times := make([]float64, len(rows))
	for i, r := range rows {
		v, err := strconv.ParseFloat(r[1], 64)
		if err != nil {
			t.Fatalf("row %d time %q: %v", i, r[1], err)
		}
		times[i] = v
	}
	// The headline ordering is restore ≪ reload ≪ fine-tune. The two reload
	// variants (RAM vs disk) are not mutually ordered: with the checkpoint
	// in the page cache they time within noise of each other.
	if !(times[0] < times[1] && times[0] < times[2] && times[1] < times[3] && times[2] < times[3]) {
		t.Errorf("recovery times not ordered: %v", times)
	}
	if times[3]/times[0] < 100 {
		t.Errorf("fine-tune only %.0f× slower than restore; expected orders of magnitude", times[3]/times[0])
	}
}

// TestF1Shape asserts magnitude pruning beats random at every sparsity.
func TestF1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	tables, err := RunF1(sharedZoo)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tables[0].Rows() {
		mag, err1 := strconv.ParseFloat(row[1], 64)
		rnd, err2 := strconv.ParseFloat(row[3], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("unparseable row %v", row)
		}
		if mag < rnd-0.05 {
			t.Errorf("at %s magnitude %v below random %v", row[0], mag, rnd)
		}
	}
}

// TestT1Shape asserts the store is flat in level count while checkpoints
// grow linearly.
func TestT1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	tables, err := RunT1(sharedZoo)
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows()
	firstStore := rows[0][2]
	for _, r := range rows[1:] {
		if r[2] != firstStore {
			t.Errorf("store bytes changed with level count: %s vs %s", r[2], firstStore)
		}
	}
	ck0, _ := strconv.ParseFloat(rows[0][4], 64)
	ckLast, _ := strconv.ParseFloat(rows[len(rows)-1][4], 64)
	if ckLast <= ck0 {
		t.Error("checkpoint bytes did not grow with level count")
	}
}

func TestRunAndPrintFormats(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness skipped in -short mode")
	}
	e, err := ByID("T5")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RunAndPrint(e, sharedZoo, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "=== T5") {
		t.Error("header missing")
	}
	md, err := Markdown(e, sharedZoo)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(md, "### T5") || !strings.Contains(md, "| from\\to |") {
		t.Errorf("markdown rendering wrong:\n%s", md[:200])
	}
}

func testSpec() platform.Spec { return platform.EmbeddedCPU() }
