package experiments

import "time"

// now is the package clock seam. All wall-clock reads in the experiment
// harness go through it so that tests (and deterministic replays) can pin
// time to a fake clock; the detrand analyzer rejects bare time.Now() in
// this package to keep it that way. Benchmark timings read the real clock
// by default, which is fine: they are reported as measurements, never used
// as inputs to the experiment logic itself.
var now = time.Now
