package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/safety"
	"repro/internal/sim"
)

// RunT1 reproduces Table 1: memory overhead of reversibility. The nested
// recovery store holds every displaced weight exactly once, so its size is
// flat in the level count, while per-level full checkpoints grow linearly.
func RunT1(z *Zoo) ([]*metrics.Table, error) {
	t := metrics.NewTable(
		"T1: reversibility memory overhead vs level-library size (obstacle net)",
		"levels", "deepest sparsity", "recovery store B", "values+bitmask B", "per-level checkpoints B", "store/checkpoints", "store/model",
	)
	for _, n := range []int{2, 4, 6, 8} {
		// Ladder from 30% to 70% sparsity in n steps.
		levels := make([]float64, n)
		for i := range levels {
			levels[i] = 0.3 + 0.4*float64(i)/float64(n-1)
		}
		model := z.CloneObstacle()
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(model, levels)
		if err != nil {
			return nil, err
		}
		rm, err := core.Build(model, plans)
		if err != nil {
			return nil, err
		}
		checkpointBytes := int64(model.WeightsSize()) * int64(n)
		modelBytes := int64(model.WeightsSize())
		// The speed-optimized store keeps explicit int32 indices (8 B per
		// displaced weight); a space-optimized variant would keep only the
		// values plus one bitmask per level (4 B per weight + n/8 B per
		// prunable weight per level).
		var prunableWeights int64
		for _, p := range model.PrunableParams() {
			prunableWeights += int64(p.Value.Len())
		}
		bitmaskBytes := rm.StoredWeights()*4 + prunableWeights/8*int64(n)
		t.AddRow(
			fmt.Sprintf("%d", n),
			metrics.Pct(levels[n-1]),
			fmt.Sprintf("%d", rm.StoreBytes()),
			fmt.Sprintf("%d", bitmaskBytes),
			fmt.Sprintf("%d", checkpointBytes),
			metrics.Pct(float64(rm.StoreBytes())/float64(checkpointBytes)),
			metrics.Pct(float64(rm.StoreBytes())/float64(modelBytes)),
		)
	}
	return []*metrics.Table{t}, nil
}

// strategyResult is one row of T2, aggregated over all scenarios.
type strategyResult struct {
	name                                      string
	collisions, missed, missedCrit, violation int
	falseAlarms                               int
	obstacleTicks                             int
	energy                                    float64
	meanLevel                                 float64
}

// runStrategies executes the four deployment strategies over every
// scenario; T2 and T3 both consume the (memoized) result.
func runStrategies(z *Zoo) ([]strategyResult, error) {
	z.stratMu.Lock()
	defer z.stratMu.Unlock()
	if z.stratCache != nil {
		return z.stratCache, nil
	}
	res, err := runStrategiesUncached(z)
	if err != nil {
		return nil, err
	}
	z.stratCache = res
	return res, nil
}

func runStrategiesUncached(z *Zoo) ([]strategyResult, error) {
	spec := platform.EmbeddedCPU()
	scenarios := sim.AllScenarios()

	type strategy struct {
		name  string
		setup func() (runModel, error)
	}
	results := make([]strategyResult, 0, 4)

	strategies := []strategy{
		{"always-dense", func() (runModel, error) {
			// Keeps the reversible wrapper (at L0, ungoverned) so violation
			// and energy accounting are uniform across strategies.
			model, rm, err := z.ObstacleStack(nil, spec)
			return runModel{model: model, rm: rm}, err
		}},
		{"static-pruned (deepest)", func() (runModel, error) {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return runModel{}, err
			}
			if err := rm.ApplyLevel(rm.NumLevels() - 1); err != nil {
				return runModel{}, err
			}
			return runModel{model: model, rm: rm}, nil
		}},
		{"adaptive threshold", func() (runModel, error) {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return runModel{}, err
			}
			gov, err := governor.New(rm, governor.Threshold{}, safety.DefaultContract())
			return runModel{model: model, rm: rm, gov: gov}, err
		}},
		{"adaptive hysteresis(20)", func() (runModel, error) {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return runModel{}, err
			}
			gov, err := governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract())
			return runModel{model: model, rm: rm, gov: gov}, err
		}},
	}

	for _, st := range strategies {
		agg := strategyResult{name: st.name}
		for _, sc := range scenarios {
			rmod, err := st.setup()
			if err != nil {
				return nil, err
			}
			res, err := perception.RunScenario(sc, rmod.model, rmod.rm, perception.LoopConfig{
				FrameSize: 16, Spec: spec, Governor: rmod.gov, Seed: 42,
			})
			if err != nil {
				return nil, err
			}
			if res.Collided {
				agg.collisions++
			}
			agg.missed += res.Missed
			agg.missedCrit += res.MissedCritical
			agg.violation += res.Violations
			agg.falseAlarms += res.FalseAlarms
			agg.obstacleTicks += res.ObstacleTicks
			agg.energy += res.EnergyMJ
			agg.meanLevel += res.MeanLevel / float64(len(scenarios))
		}
		results = append(results, agg)
	}
	return results, nil
}

type runModel struct {
	model *nn.Sequential
	rm    *core.ReversibleModel
	gov   *governor.Governor
}

// RunT2 reproduces Table 2: safety outcomes per deployment strategy over
// all scenarios. Expected shape: static-pruned misses critical frames (and
// may collide); adaptive matches always-dense safety.
func RunT2(z *Zoo) ([]*metrics.Table, error) {
	results, err := runStrategies(z)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"T2: safety outcomes over all 6 scenarios (sums)",
		"strategy", "collisions", "missed", "missed critical", "false alarms", "violations", "mean level", "energy mJ",
	)
	for _, r := range results {
		t.AddRow(r.name,
			fmt.Sprintf("%d", r.collisions),
			fmt.Sprintf("%d/%d", r.missed, r.obstacleTicks),
			fmt.Sprintf("%d", r.missedCrit),
			fmt.Sprintf("%d", r.falseAlarms),
			fmt.Sprintf("%d", r.violation),
			metrics.F(r.meanLevel, 2),
			metrics.F(r.energy, 1),
		)
	}
	return []*metrics.Table{t}, nil
}

// RunT3 reproduces Table 3: energy at equal safety — among strategies that
// match the dense baseline's collision count and critical-miss budget, how
// much energy does adaptation save?
func RunT3(z *Zoo) ([]*metrics.Table, error) {
	results, err := runStrategies(z)
	if err != nil {
		return nil, err
	}
	dense := results[0]
	t := metrics.NewTable(
		"T3: energy at equal safety (vs always-dense baseline)",
		"strategy", "energy mJ", "saving", "collisions", "missed critical", "violations", "safety-equal",
	)
	for _, r := range results {
		equal := r.collisions <= dense.collisions &&
			r.missedCrit <= dense.missedCrit+2 &&
			r.violation <= dense.violation
		t.AddRow(r.name,
			metrics.F(r.energy, 1),
			metrics.Pct(1-r.energy/dense.energy),
			fmt.Sprintf("%d", r.collisions),
			fmt.Sprintf("%d", r.missedCrit),
			fmt.Sprintf("%d", r.violation),
			fmt.Sprintf("%v", equal),
		)
	}
	return []*metrics.Table{t}, nil
}

// RunT4 reproduces Table 4: the calibrated level library as deployed —
// sparsity, accuracy, platform costs, and the measured cost of restoring
// from each level to dense.
func RunT4(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	_, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("T4: level library calibration (obstacle net, %s)", spec.Name),
		"level", "sparsity", "accuracy", "latency ms", "energy mJ", "restore weights", "restore µs (measured)",
	)
	for i := 0; i < rm.NumLevels(); i++ {
		restoreUS := 0.0
		if i > 0 {
			const reps = 100
			start := now()
			for r := 0; r < reps; r++ {
				if err := rm.ApplyLevel(i); err != nil {
					return nil, err
				}
				if err := rm.RestoreFull(); err != nil {
					return nil, err
				}
			}
			// Half the loop is the deepen direction; charge half to restore.
			restoreUS = float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
		}
		lvl := rm.Level(i)
		t.AddRow(lvl.Name,
			metrics.Pct(lvl.Sparsity),
			metrics.F(lvl.Accuracy, 4),
			metrics.F(lvl.LatencyMS, 3),
			metrics.F(lvl.EnergyMJ, 3),
			fmt.Sprintf("%d", rm.WeightsChanged(0, i)),
			metrics.F(restoreUS, 1),
		)
	}
	return []*metrics.Table{t}, nil
}

// RunT5 reproduces Table 5: the any-to-any transition cost matrix, in
// weights written, plus measured round-trip times for the extreme
// transitions.
func RunT5(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	_, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return nil, err
	}
	n := rm.NumLevels()
	header := []string{"from\\to"}
	for j := 0; j < n; j++ {
		header = append(header, fmt.Sprintf("L%d", j))
	}
	t := metrics.NewTable("T5: transition cost matrix (weights written)", header...)
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("L%d", i)}
		for j := 0; j < n; j++ {
			row = append(row, fmt.Sprintf("%d", rm.WeightsChanged(i, j)))
		}
		t.AddRow(row...)
	}

	timing := metrics.NewTable("T5b: measured transition round trips", "transition", "µs per direction")
	for _, pair := range [][2]int{{0, 1}, {0, n - 1}, {n - 2, n - 1}} {
		const reps = 200
		if err := rm.ApplyLevel(pair[0]); err != nil {
			return nil, err
		}
		start := now()
		for r := 0; r < reps; r++ {
			if err := rm.ApplyLevel(pair[1]); err != nil {
				return nil, err
			}
			if err := rm.ApplyLevel(pair[0]); err != nil {
				return nil, err
			}
		}
		us := float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
		timing.AddRow(fmt.Sprintf("L%d↔L%d", pair[0], pair[1]), metrics.F(us, 2))
	}
	if err := rm.RestoreFull(); err != nil {
		return nil, err
	}
	return []*metrics.Table{t, timing}, nil
}
