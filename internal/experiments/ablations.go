package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/governor"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/quant"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
	"repro/internal/train"
)

// The A-series are ablations of the design choices DESIGN.md calls out,
// beyond the paper's reconstructed tables: they justify nested masks, the
// hysteresis dwell, the sparse kernel, the uncertainty signal, and the
// recovery-store encoding, and position pruning against the quantization
// knob.

// RunA1 compares the two reversible quality knobs: the pruning-level
// ladder (delta store) versus the quantization ladder (shadow master) on
// the accuracy/energy plane, plus their restore costs.
func RunA1(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	eval := z.ObstacleEval()

	t := metrics.NewTable(
		"A1: pruning vs quantization ladders (obstacle net)",
		"knob", "level", "accuracy", "energy mJ", "store B", "restore µs (measured)",
	)

	// Pruning ladder (designed levels).
	_, rm, err := z.ObstacleStack(nil, spec)
	if err != nil {
		return nil, err
	}
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			return nil, err
		}
		us := 0.0
		if i > 0 {
			const reps = 100
			start := now()
			for r := 0; r < reps; r++ {
				if err := rm.RestoreFull(); err != nil {
					return nil, err
				}
				if err := rm.ApplyLevel(i); err != nil {
					return nil, err
				}
			}
			us = float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
		}
		lvl := rm.Level(i)
		t.AddRow("prune", fmt.Sprintf("%s (%.0f%%)", lvl.Name, 100*lvl.Sparsity),
			metrics.F(lvl.Accuracy, 4), metrics.F(lvl.EnergyMJ, 4),
			fmt.Sprintf("%d", rm.StoreBytes()), metrics.F(us, 1))
	}
	if err := rm.RestoreFull(); err != nil {
		return nil, err
	}

	// Quantization ladder on a fresh clone.
	qm := z.CloneObstacle()
	qz, err := quant.BuildQuantizer(qm, []int{16, 8, 4})
	if err != nil {
		return nil, err
	}
	if err := qz.Calibrate(eval); err != nil {
		return nil, err
	}
	for i := 0; i < qz.NumLevels(); i++ {
		if err := qz.ApplyLevel(i); err != nil {
			return nil, err
		}
		bits := qz.Level(i).Bits
		cost := spec.PrecisionScaled(bits).Estimate(qm)
		qz.SetCost(i, cost.EnergyMJ)
		us := 0.0
		if i > 0 {
			const reps = 100
			start := now()
			for r := 0; r < reps; r++ {
				if err := qz.Restore(); err != nil {
					return nil, err
				}
				if err := qz.ApplyLevel(i); err != nil {
					return nil, err
				}
			}
			us = float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
		}
		t.AddRow("quantize", qz.Level(i).Name,
			metrics.F(qz.Level(i).Accuracy, 4), metrics.F(qz.Level(i).EnergyMJ, 4),
			fmt.Sprintf("%d", qz.MasterBytes()), metrics.F(us, 1))
	}
	if err := qz.Restore(); err != nil {
		return nil, err
	}
	return []*metrics.Table{t}, nil
}

// RunA2 sweeps the hysteresis dwell time over the oscillation-heavy fog
// scenarios: switches collapse with dwell while energy rises only
// marginally — the knob the F5 default (20) was chosen from.
func RunA2(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	scenarios := []sim.Scenario{sim.SensorDegradation(), sim.PedestrianInFog(), sim.CutIn()}
	t := metrics.NewTable(
		"A2: hysteresis dwell sweep (fog + cut-in scenarios, sums)",
		"dwell ticks", "switches", "violations", "missed critical", "energy mJ", "mean level",
	)
	for _, dwell := range []int{1, 5, 10, 20, 40, 80} {
		var switches, violations, missedCrit int
		var energy, meanLevel float64
		for _, sc := range scenarios {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return nil, err
			}
			gov, err := governor.New(rm, &governor.Hysteresis{DwellTicks: dwell}, safety.DefaultContract())
			if err != nil {
				return nil, err
			}
			res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
				FrameSize: 16, Spec: spec, Governor: gov, Seed: 42,
			})
			if err != nil {
				return nil, err
			}
			switches += res.Switches
			violations += res.Violations
			missedCrit += res.MissedCritical
			energy += res.EnergyMJ
			meanLevel += res.MeanLevel / float64(len(scenarios))
		}
		t.AddRow(fmt.Sprintf("%d", dwell),
			fmt.Sprintf("%d", switches),
			fmt.Sprintf("%d", violations),
			fmt.Sprintf("%d", missedCrit),
			metrics.F(energy, 1),
			metrics.F(meanLevel, 2))
	}
	return []*metrics.Table{t}, nil
}

// RunA3 measures the sparse-skip matmul kernel directly: wall-clock of a
// 256×256 × 256×256 product as the left operand's sparsity rises. This is
// the mechanism behind the platform model's SparseEfficiency constant.
func RunA3(z *Zoo) ([]*metrics.Table, error) {
	rng := tensor.NewRNG(3)
	const n = 256
	b := tensor.RandNormal(rng, 0, 1, n, n)
	out := tensor.New(n, n)
	t := metrics.NewTable(
		fmt.Sprintf("A3: sparse-skip matmul kernel, %d×%d (host wall-clock)", n, n),
		"sparsity", "ms/op", "speedup vs dense",
	)
	var denseMS float64
	for _, s := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99} {
		a := tensor.RandNormal(rng, 0, 1, n, n)
		// Zero a prefix of a random permutation — unstructured sparsity.
		perm := rng.Perm(n * n)
		k := int(s * float64(n*n))
		for _, idx := range perm[:k] {
			a.Data()[idx] = 0
		}
		const reps = 20
		tensor.MatMulInto(out, a, b) // warm up
		start := now()
		for r := 0; r < reps; r++ {
			tensor.MatMulInto(out, a, b)
		}
		ms := float64(now().Sub(start).Nanoseconds()) / reps / 1e6
		if metrics.ApproxEqual(s, 0, 1e-9) {
			denseMS = ms
		}
		t.AddRow(metrics.Pct(s), metrics.F(ms, 3), metrics.F(denseMS/ms, 2)+"×")
	}
	return []*metrics.Table{t}, nil
}

// RunA4 ablates the uncertainty signal: the same governor with and without
// the perception-uncertainty term in the criticality fusion, on the
// degraded-sensor scenarios. Without it the governor cannot react to fog
// and stays deep exactly when perception is least trustworthy.
func RunA4(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	scenarios := []sim.Scenario{sim.SensorDegradation(), sim.PedestrianInFog()}

	withUnc := safety.DefaultAssessor()
	noUnc := withUnc
	// Remove the uncertainty term and renormalize onto TTC and complexity.
	total := noUnc.WTTC + noUnc.WComplexity
	noUnc.WTTC /= total
	noUnc.WComplexity /= total
	noUnc.WUncertainty = 0

	t := metrics.NewTable(
		"A4: uncertainty-signal ablation (degraded-sensor scenarios, sums)",
		"assessor", "mean level (fog)", "missed", "missed critical", "violations", "energy mJ",
	)
	for _, cse := range []struct {
		name     string
		assessor safety.Assessor
	}{
		{"TTC+complexity+uncertainty", withUnc},
		{"TTC+complexity only", noUnc},
	} {
		var missed, missedCrit, violations int
		var energy, fogLevel float64
		var fogTicks int
		for _, sc := range scenarios {
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return nil, err
			}
			gov, err := governor.New(rm, governor.Threshold{}, safety.DefaultContract())
			if err != nil {
				return nil, err
			}
			res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
				FrameSize: 16, Spec: spec, Governor: gov, Assessor: cse.assessor,
				Record: true, Seed: 42,
			})
			if err != nil {
				return nil, err
			}
			missed += res.Missed
			missedCrit += res.MissedCritical
			violations += res.Violations
			energy += res.EnergyMJ
			// Fog window: ticks 600–1400 in both scenarios.
			levels := res.Recorder.Series("level")
			for i := 600; i < 1400 && i < len(levels); i++ {
				fogLevel += levels[i]
				fogTicks++
			}
		}
		t.AddRow(cse.name,
			metrics.F(fogLevel/float64(fogTicks), 2),
			fmt.Sprintf("%d", missed),
			fmt.Sprintf("%d", missedCrit),
			fmt.Sprintf("%d", violations),
			metrics.F(energy, 1))
	}
	return []*metrics.Table{t}, nil
}

// RunA6 compares reversible pruning against the classic alternative: a
// multi-model switcher that stores one physically compacted
// (structured-pruned) network per quality level and swaps pointers at
// runtime. Switching is near-free but memory grows with every level and
// no weights are shared; RRP stores one model plus a delta store.
func RunA6(z *Zoo) ([]*metrics.Table, error) {
	eval := z.ObstacleEval()
	sparsities := []float64{0.3, 0.5, 0.7}

	t := metrics.NewTable(
		"A6: RRP vs multi-model switching (3 pruned levels + dense)",
		"approach", "total memory B", "switch µs (deepest↔dense)", "acc dense", "acc deepest", "notes",
	)

	// RRP: one dense model + delta store (unstructured magnitude levels).
	m := z.CloneObstacle()
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, sparsities)
	if err != nil {
		return nil, err
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		return nil, err
	}
	if err := rm.Calibrate(eval); err != nil {
		return nil, err
	}
	deepest := rm.NumLevels() - 1
	const reps = 200
	start := now()
	for r := 0; r < reps; r++ {
		if err := rm.ApplyLevel(deepest); err != nil {
			return nil, err
		}
		if err := rm.RestoreFull(); err != nil {
			return nil, err
		}
	}
	rrpSwitchUS := float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
	rrpMem := int64(m.WeightsSize()) + rm.StoreBytes()
	t.AddRow("reversible pruning (RRP)",
		fmt.Sprintf("%d", rrpMem),
		metrics.F(rrpSwitchUS, 2),
		metrics.F(rm.Level(0).Accuracy, 4),
		metrics.F(rm.Level(deepest).Accuracy, 4),
		"1 model + delta store; any-to-any")

	// Multi-model: one compacted structured model per level plus the dense
	// one; "switching" swaps a pointer.
	type variant struct {
		model *nn.Sequential
		acc   float64
	}
	variants := []variant{{model: z.CloneObstacle()}}
	variants[0].acc = eval(variants[0].model)
	splans, err := (prune.StructuredChannel{}).PlanNested(z.CloneObstacle(), sparsities)
	if err != nil {
		return nil, err
	}
	for _, p := range splans {
		vm := z.CloneObstacle()
		p.Apply(vm)
		compacted, err := prune.Compact(vm)
		if err != nil {
			return nil, err
		}
		variants = append(variants, variant{model: compacted, acc: eval(compacted)})
	}
	var mmMem int64
	for _, v := range variants {
		mmMem += int64(v.model.WeightsSize())
	}
	// Pointer-swap cost: measured for honesty, effectively noise-level.
	active := variants[0].model
	start = now()
	for r := 0; r < reps; r++ {
		active = variants[len(variants)-1].model
		active = variants[0].model
	}
	mmSwitchUS := float64(now().Sub(start).Nanoseconds()) / reps / 2 / 1e3
	_ = active
	t.AddRow("multi-model switching",
		fmt.Sprintf("%d", mmMem),
		metrics.F(mmSwitchUS, 3),
		metrics.F(variants[0].acc, 4),
		metrics.F(variants[len(variants)-1].acc, 4),
		fmt.Sprintf("%d separate models; no weight sharing", len(variants)))
	return []*metrics.Table{t}, nil
}

// RunA9 probes memory-fault resilience (single-event upsets in weight
// memory): at the deepest pruning level, random bit flips are injected and
// the RRP integrity machinery responds — Scrub repairs every flip landing
// on a store-covered (pruned) position, and the build-time hash
// (VerifyDense) detects any surviving corruption after a restore attempt.
func RunA9(z *Zoo) ([]*metrics.Table, error) {
	eval := z.ObstacleEval()
	t := metrics.NewTable(
		"A9: single-event-upset injection at the deepest level",
		"bit flips", "acc after faults", "scrub-repaired", "acc after scrub", "residual detected by hash",
	)
	for _, flips := range []int{1, 8, 32, 128} {
		_, rm, err := z.ObstacleStack(nil, platform.EmbeddedCPU())
		if err != nil {
			return nil, err
		}
		deepest := rm.NumLevels() - 1
		if err := rm.ApplyLevel(deepest); err != nil {
			return nil, err
		}
		injector := faults.NewInjector(int64(900 + flips))
		injections, err := injector.Inject(rm.Model(), flips)
		if err != nil {
			return nil, err
		}
		accFaulty := eval(rm.Model())
		repaired := rm.Scrub()
		accScrubbed := eval(rm.Model())

		// Any kept-weight corruption survives the scrub; restoring to L0
		// and hashing must flag it (or pass when the scrub fixed all).
		if err := rm.RestoreFull(); err != nil {
			return nil, err
		}
		detected := rm.VerifyDense() != nil
		residual := int64(len(injections)) - repaired
		if residual < 0 {
			residual = 0
		}
		t.AddRow(fmt.Sprintf("%d", flips),
			metrics.F(accFaulty, 4),
			fmt.Sprintf("%d/%d", repaired, len(injections)),
			metrics.F(accScrubbed, 4),
			fmt.Sprintf("%v (%d kept-weight hits)", detected, residual))
	}
	return []*metrics.Table{t}, nil
}

// RunA8 evaluates gradual pruning with masked fine-tuning (the Zhu–Gupta
// cubic schedule interleaved with one retraining epoch per step) against
// one-shot pruning at the same final sparsities. This is the offline
// companion of the runtime system: a production level library would be
// prepared with the gradual recipe, pushing each accuracy target to deeper
// sparsity.
func RunA8(z *Zoo) ([]*metrics.Table, error) {
	eval := z.ObstacleEval()
	trainSet := z.ObstacleTrain()

	t := metrics.NewTable(
		"A8: one-shot vs gradual (cubic, masked fine-tuning) pruning",
		"final sparsity", "one-shot acc", "one-shot + fine-tune acc", "gradual acc",
	)
	for _, final := range []float64{0.9, 0.95, 0.98} {
		// One-shot, no recovery training.
		oneShot := z.CloneObstacle()
		planOS, err := prune.PlanSingle(prune.MagnitudeGlobal{}, oneShot, final)
		if err != nil {
			return nil, err
		}
		planOS.Apply(oneShot)
		accOneShot := eval(oneShot)

		// One-shot plus the same total fine-tuning budget (6 epochs) used by
		// the gradual recipe, masks held fixed.
		osft := z.CloneObstacle()
		planFT, err := prune.PlanSingle(prune.MagnitudeGlobal{}, osft, final)
		if err != nil {
			return nil, err
		}
		planFT.Apply(osft)
		train.Fit(osft, trainSet.X, trainSet.Labels, train.Config{
			Epochs:    6,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.001, 0),
			Seed:      301,
			PostStep: func(m *nn.Sequential) {
				planFT.MaskGradients(m)
				planFT.Apply(m)
			},
		})
		accOSFT := eval(osft)

		// Gradual: 6 cubic steps from 30% to the final sparsity, re-ranking
		// the surviving weights each step, one masked epoch per step.
		grad := z.CloneObstacle()
		levels, err := prune.ScheduleLevels(prune.Cubic{Initial: 0.3, Final: final}, 6)
		if err != nil {
			return nil, err
		}
		for step, s := range levels {
			plan, err := prune.PlanSingle(prune.MagnitudeGlobal{}, grad, s)
			if err != nil {
				return nil, err
			}
			plan.Apply(grad)
			train.Fit(grad, trainSet.X, trainSet.Labels, train.Config{
				Epochs:    1,
				BatchSize: 32,
				Optimizer: train.NewAdam(0.001, 0),
				Seed:      int64(400 + step),
				PostStep: func(m *nn.Sequential) {
					plan.MaskGradients(m)
					plan.Apply(m)
				},
			})
		}
		accGradual := eval(grad)

		t.AddRow(metrics.Pct(final),
			metrics.F(accOneShot, 4),
			metrics.F(accOSFT, 4),
			metrics.F(accGradual, 4))
	}
	return []*metrics.Table{t}, nil
}

// RunA7 is the Monte-Carlo robustness check: the dense baseline and the
// adaptive governor over ten randomized traffic worlds (random spawns,
// random fog window). The qualitative T2/T3 conclusions must not be an
// artifact of the scripted scenarios.
func RunA7(z *Zoo) ([]*metrics.Table, error) {
	spec := platform.EmbeddedCPU()
	const worlds = 10
	const ticks = 1200

	t := metrics.NewTable(
		fmt.Sprintf("A7: Monte-Carlo robustness over %d random-traffic worlds", worlds),
		"deployment", "collisions", "violations", "missed critical", "energy mJ (mean)", "energy mJ (p95)", "mean level",
	)
	for _, cse := range []struct {
		name     string
		adaptive bool
	}{
		{"always-dense", false},
		{"adaptive hysteresis(20)", true},
	} {
		var collisions, violations, missedCrit int
		var energies []float64
		var meanLevel float64
		for w := 0; w < worlds; w++ {
			sc := sim.RandomTraffic(ticks, 0.004, int64(1000+w))
			model, rm, err := z.ObstacleStack(nil, spec)
			if err != nil {
				return nil, err
			}
			var gov *governor.Governor
			if cse.adaptive {
				gov, err = governor.New(rm, &governor.Hysteresis{DwellTicks: 20}, safety.DefaultContract())
				if err != nil {
					return nil, err
				}
			}
			res, err := perception.RunScenario(sc, model, rm, perception.LoopConfig{
				FrameSize: 16, Spec: spec, Governor: gov, Seed: int64(2000 + w),
			})
			if err != nil {
				return nil, err
			}
			if res.Collided {
				collisions++
			}
			violations += res.Violations
			missedCrit += res.MissedCritical
			energies = append(energies, res.EnergyMJ)
			meanLevel += res.MeanLevel / worlds
		}
		t.AddRow(cse.name,
			fmt.Sprintf("%d", collisions),
			fmt.Sprintf("%d", violations),
			fmt.Sprintf("%d", missedCrit),
			metrics.F(metrics.Mean(energies), 1),
			metrics.F(metrics.Percentile(energies, 95), 1),
			metrics.F(meanLevel, 2))
	}
	return []*metrics.Table{t}, nil
}

// RunA5 compares recovery-store encodings: exact float32 versus the
// half-precision (bfloat16) option — memory saved versus the accuracy left
// after an approximate restore.
func RunA5(z *Zoo) ([]*metrics.Table, error) {
	eval := z.ObstacleEval()
	levels, err := z.DesignedLevels()
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"A5: recovery-store encoding (restore from deepest level)",
		"encoding", "store B", "restored accuracy", "bit-exact",
	)
	for _, cse := range []struct {
		name string
		opts []core.BuildOption
	}{
		{"float32 (exact)", nil},
		{"bfloat16 (half store)", []core.BuildOption{core.WithHalfPrecisionStore()}},
	} {
		m := z.CloneObstacle()
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
		if err != nil {
			return nil, err
		}
		rm, err := core.Build(m, plans, cse.opts...)
		if err != nil {
			return nil, err
		}
		if err := rm.ApplyLevel(rm.NumLevels() - 1); err != nil {
			return nil, err
		}
		if err := rm.RestoreFull(); err != nil {
			return nil, err
		}
		acc := eval(m)
		exact := rm.VerifyDense() == nil
		t.AddRow(cse.name,
			fmt.Sprintf("%d", rm.StoreBytes()),
			metrics.F(acc, 4),
			fmt.Sprintf("%v", exact))
	}
	return []*metrics.Table{t}, nil
}
