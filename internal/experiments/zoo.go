// Package experiments implements the evaluation harness: a model zoo that
// trains the perception networks deterministically, and one runner per
// reconstructed table and figure (F1–F5, T1–T5 in DESIGN.md). Each runner
// regenerates its table from scratch so EXPERIMENTS.md can be reproduced
// with a single command.
package experiments

import (
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/platform"
	"repro/internal/prune"
	"repro/internal/tensor"
	"repro/internal/train"
)

// DefaultAccuracyDrops are the per-level accuracy drops (relative to the
// measured dense accuracy) the library designer resolves into sparsities:
// one level per contract regime, from near-dense down to the
// nominal-cruise floor. Relative targets keep the library meaningful across
// training seeds.
var DefaultAccuracyDrops = []float64{0.005, 0.03, 0.07, 0.15}

// Zoo trains and caches the evaluation models. All training is
// deterministic; a Zoo with the same seed always produces identical
// weights.
type Zoo struct {
	seed int64

	signOnce  sync.Once
	signModel *nn.Sequential
	signTest  *dataset.Dataset

	obsOnce  sync.Once
	obsModel *nn.Sequential
	obsTest  *dataset.Dataset
	obsTrain *dataset.Dataset

	levelsOnce  sync.Once
	levelsCache []float64
	levelsErr   error

	stackOnce sync.Once
	stackRM   *core.ReversibleModel
	stackErr  error

	stratMu    sync.Mutex
	stratCache []strategyResult
}

// NewZoo constructs a zoo with the given base seed.
func NewZoo(seed int64) *Zoo { return &Zoo{seed: seed} }

// NewSignNet builds the (untrained) 6-class road-sign CNN.
func NewSignNet(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g1 := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g2 := tensor.ConvGeom{InC: 8, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("signnet",
		nn.NewConv2D("conv1", g1, 8, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewConv2D("conv2", g2, 12, rng),
		nn.NewReLU("relu2"),
		nn.NewMaxPool2D("pool2", 12, 8, 8, 2, 2, 2, 2),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 12*4*4, 48, rng),
		nn.NewReLU("relu3"),
		nn.NewDense("fc2", 48, 6, rng),
	)
}

// NewObstacleNet builds the (untrained) binary obstacle CNN used by the
// driving scenarios.
func NewObstacleNet(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("obsnet",
		nn.NewConv2D("conv1", g, 8, rng),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 8*8*8, 24, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc2", 24, 2, rng),
	)
}

// SignNet returns the trained road-sign classifier and its held-out test
// set. The first call trains; later calls return the cached model.
func (z *Zoo) SignNet() (*nn.Sequential, *dataset.Dataset) {
	z.signOnce.Do(func() {
		ds := dataset.Signs(dataset.DefaultSignConfig(2400, z.seed+1))
		tr, te := ds.Split(0.8, z.seed+2)
		z.signModel = NewSignNet(z.seed + 3)
		train.Fit(z.signModel, tr.X, tr.Labels, train.Config{
			Epochs:    12,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.003, 0),
			Seed:      z.seed + 4,
		})
		z.signTest = te
	})
	return z.signModel, z.signTest
}

// ObstacleNet returns the trained obstacle detector and its held-out test
// set, using the hardened distribution (small blobs, jittered noise) that
// produces the graded sparsity-accuracy curve the level library needs.
func (z *Zoo) ObstacleNet() (*nn.Sequential, *dataset.Dataset) {
	z.obsOnce.Do(func() {
		ds := dataset.Obstacles(dataset.ObstacleConfig{
			N: 3000, Size: 16,
			NoiseMin: 0.05, NoiseMax: 0.2,
			MinRadius: 1.5, MaxRadius: 4.5,
			ContrastMin: 0.7, ContrastMax: 1.0,
			Seed: z.seed + 11,
		})
		tr, te := ds.Split(0.8, z.seed+12)
		z.obsModel = NewObstacleNet(z.seed + 13)
		train.Fit(z.obsModel, tr.X, tr.Labels, train.Config{
			Epochs:    10,
			BatchSize: 32,
			Optimizer: train.NewAdam(0.003, 0),
			Seed:      z.seed + 14,
		})
		z.obsTest = te
		z.obsTrain = tr
	})
	return z.obsModel, z.obsTest
}

// ObstacleTrain returns the obstacle training split (used by the
// fine-tune-recovery baseline).
func (z *Zoo) ObstacleTrain() *dataset.Dataset {
	z.ObstacleNet()
	return z.obsTrain
}

// SignEval returns an accuracy evaluator over the sign test set.
func (z *Zoo) SignEval() func(*nn.Sequential) float64 {
	_, te := z.SignNet()
	return func(m *nn.Sequential) float64 {
		_, acc := train.Evaluate(m, te.X, te.Labels, 128)
		return acc
	}
}

// ObstacleEval returns an accuracy evaluator over the obstacle test set.
func (z *Zoo) ObstacleEval() func(*nn.Sequential) float64 {
	_, te := z.ObstacleNet()
	return func(m *nn.Sequential) float64 {
		_, acc := train.Evaluate(m, te.X, te.Labels, 128)
		return acc
	}
}

// CloneSign returns a fresh sign model carrying the trained weights.
func (z *Zoo) CloneSign() *nn.Sequential {
	src, _ := z.SignNet()
	return cloneInto(src, NewSignNet(z.seed+999))
}

// CloneObstacle returns a fresh obstacle model carrying the trained
// weights.
func (z *Zoo) CloneObstacle() *nn.Sequential {
	src, _ := z.ObstacleNet()
	return cloneInto(src, NewObstacleNet(z.seed+998))
}

func cloneInto(src, dst *nn.Sequential) *nn.Sequential {
	data, err := src.EncodeWeights()
	if err != nil {
		panic(err) //lint:allow(nopanic) in-memory encode of a well-formed model cannot fail
	}
	if err := dst.DecodeWeights(data); err != nil {
		panic(err) //lint:allow(nopanic) decode of bytes we just encoded cannot fail
	}
	return dst
}

// DesignedLevels returns the sparsity ladder resolved from
// DefaultAccuracyDrops for the trained obstacle model, memoized per zoo.
func (z *Zoo) DesignedLevels() ([]float64, error) {
	z.levelsOnce.Do(func() {
		m := z.CloneObstacle()
		eval := z.ObstacleEval()
		denseAcc := eval(m)
		targets := make([]float64, len(DefaultAccuracyDrops))
		for i, d := range DefaultAccuracyDrops {
			targets[i] = denseAcc - d
		}
		z.levelsCache, z.levelsErr = core.DesignLevels(m, prune.MagnitudeGlobal{}, eval, targets)
	})
	return z.levelsCache, z.levelsErr
}

// ObstacleStack builds the standard deployment stack: a cloned trained
// obstacle model wrapped in a calibrated reversible level library with
// platform costs attached. A nil levels slice uses the designed default
// ladder.
func (z *Zoo) ObstacleStack(levels []float64, spec platform.Spec) (*nn.Sequential, *core.ReversibleModel, error) {
	if levels == nil {
		var err error
		levels, err = z.DesignedLevels()
		if err != nil {
			return nil, nil, err
		}
	}
	m := z.CloneObstacle()
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, levels)
	if err != nil {
		return nil, nil, err
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		return nil, nil, err
	}
	if err := rm.Calibrate(z.ObstacleEval()); err != nil {
		return nil, nil, err
	}
	for i := 0; i < rm.NumLevels(); i++ {
		if err := rm.ApplyLevel(i); err != nil {
			return nil, nil, err
		}
		c := spec.Estimate(m)
		rm.SetCost(i, c.LatencyMS, c.EnergyMJ)
	}
	if err := rm.RestoreFull(); err != nil {
		return nil, nil, err
	}
	return m, rm, nil
}

// ObstacleStackView returns a fresh fleet clone of the standard obstacle
// deployment stack: a new architecture skeleton re-pointed copy-on-write at
// one memoized, calibrated checkpoint store. The first call builds and
// calibrates the base stack (designed ladder, the given spec's costs);
// every call — including the first — returns an independent view holding
// one store reference, so a fleet of N clones keeps the dense weights,
// recovery deltas, and level metadata resident once instead of N times.
// Release each view when its instance is torn down; the zoo retains the
// base reference, so the store outlives all views.
//
// Because costs and calibration are level metadata shared through the
// store, every caller must pass the same spec. Instances that will take
// weight-corrupting fault injection should use ObstacleStack instead — an
// unshared store bounds the blast radius.
func (z *Zoo) ObstacleStackView(spec platform.Spec) (*nn.Sequential, *core.ReversibleModel, error) {
	z.stackOnce.Do(func() {
		_, rm, err := z.ObstacleStack(nil, spec)
		if err != nil {
			z.stackErr = err
			return
		}
		z.stackRM = rm
	})
	if z.stackErr != nil {
		return nil, nil, z.stackErr
	}
	arch := NewObstacleNet(z.seed + 997)
	view, err := z.stackRM.Store().NewView(arch)
	if err != nil {
		return nil, nil, err
	}
	return arch, view, nil
}

// ObstacleStore exposes the memoized shared checkpoint store behind
// ObstacleStackView (building it on first use), so harnesses can assert
// refcount hygiene after tearing a fleet down.
func (z *Zoo) ObstacleStore() (*core.CheckpointStore, error) {
	if _, _, err := z.ObstacleStackView(platform.EmbeddedCPU()); err != nil {
		return nil, err
	}
	return z.stackRM.Store(), nil
}
