package prune

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzMaskRoundTrip feeds arbitrary bytes to the mask reader. Malformed
// input must yield an error — never a panic, never an allocation sized by
// the header's claim, and never a mask whose popcount exceeds its length
// (set tail bits beyond n are a format violation). Accepted input must
// round-trip bit-exactly.
func FuzzMaskRoundTrip(f *testing.F) {
	// A valid 100-bit mask with a few pruned positions.
	m := NewMask(100)
	for _, i := range []int{0, 13, 63, 64, 99} {
		m.SetPruned(i)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	// Header claiming a 2^32-bit mask with no payload.
	huge := make([]byte, 8)
	binary.LittleEndian.PutUint64(huge, 1<<32)
	f.Add(huge)
	// Length 1 but all 64 word bits set: tail-bit violation.
	bad := make([]byte, 16)
	binary.LittleEndian.PutUint64(bad, 1)
	binary.LittleEndian.PutUint64(bad[8:], ^uint64(0))
	f.Add(bad)

	f.Fuzz(func(t *testing.T, in []byte) {
		parsed, err := ReadMask(bytes.NewReader(in))
		if err != nil {
			return
		}
		if kept := parsed.KeptCount(); kept > parsed.Len() {
			t.Fatalf("mask of length %d claims %d kept bits", parsed.Len(), kept)
		}
		if parsed.PrunedCount() < 0 || parsed.PrunedCount() > parsed.Len() {
			t.Fatalf("pruned count %d out of range for length %d", parsed.PrunedCount(), parsed.Len())
		}
		var out bytes.Buffer
		if _, err := parsed.WriteTo(&out); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		// Canonical format: the re-encoding is exactly the consumed prefix.
		if len(in) < out.Len() || !bytes.Equal(out.Bytes(), in[:out.Len()]) {
			t.Fatalf("re-encode differs from consumed input")
		}
		back, err := ReadMask(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-read: %v", err)
		}
		if !parsed.Equal(back) {
			t.Fatalf("round trip changed the mask")
		}
	})
}
