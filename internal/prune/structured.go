package prune

import (
	"fmt"
	"math"

	"repro/internal/nn"
)

// StructuredChannel prunes whole output channels (convolution filters /
// dense neurons), ranked globally by normalized row L2 norm. Unlike
// unstructured pruning, the resulting model can be physically compacted
// into a smaller dense network (see Compact), so structured levels deliver
// real latency reductions rather than just multiplication skips.
//
// For exact compaction the method zeroes, per pruned channel: the weight
// row, the bias entry, and — when the layer is immediately followed by a
// BatchNorm — that channel's gamma and beta. A pruned channel therefore
// produces exactly zero activations.
//
// The final prunable layer (the classifier head) is never channel-pruned:
// removing an output class is not a capacity/accuracy tradeoff, it is a
// different task.
type StructuredChannel struct {
	// MinKeepPerLayer is the minimum number of channels every prunable
	// layer retains (default 1).
	MinKeepPerLayer int
}

// Name returns "structured-channel".
func (StructuredChannel) Name() string { return "structured-channel" }

// structTarget is one channel-prunable layer plus its attached parameters.
type structTarget struct {
	weightName string
	biasName   string
	bnGamma    string // empty when no following BatchNorm
	bnBeta     string
	rows       int
	rowLen     int
	weight     *nn.Param
	bias       *nn.Param
}

// structTargets collects the channel-prunable layers of model in order,
// excluding the final one (the classifier head).
func structTargets(model *nn.Sequential) []structTarget {
	layers := model.Layers()
	var targets []structTarget
	for i, l := range layers {
		var weight, bias *nn.Param
		var rows, rowLen int
		switch t := l.(type) {
		case *nn.Conv2D:
			weight, bias = t.Weight(), t.Bias()
			rows = t.OutChannels()
			rowLen = weight.Value.Len() / rows
		case *nn.Dense:
			weight, bias = t.Weight(), t.Bias()
			rows = t.OutFeatures()
			rowLen = t.InFeatures()
		default:
			continue
		}
		tg := structTarget{
			weightName: weight.Name,
			biasName:   bias.Name,
			rows:       rows,
			rowLen:     rowLen,
			weight:     weight,
			bias:       bias,
		}
		if i+1 < len(layers) {
			if bn, ok := layers[i+1].(*nn.BatchNorm); ok && bn.Features() == rows {
				ps := bn.Params()
				tg.bnGamma, tg.bnBeta = ps[0].Name, ps[1].Name
			}
		}
		targets = append(targets, tg)
	}
	if len(targets) > 0 {
		targets = targets[:len(targets)-1] // never prune the classifier head
	}
	return targets
}

// PlanNested ranks channels once and prunes nested prefixes, converting
// each requested weight sparsity into a channel budget.
func (sc StructuredChannel) PlanNested(model *nn.Sequential, sparsities []float64) ([]*Plan, error) {
	if err := checkSparsities(sparsities); err != nil {
		return nil, err
	}
	minKeep := sc.MinKeepPerLayer
	if minKeep <= 0 {
		minKeep = 1
	}
	targets := structTargets(model)
	if len(targets) == 0 {
		return nil, fmt.Errorf("prune: model %q has no channel-prunable layers (besides the head)", model.Name())
	}

	// Rank all channels by length-normalized L2 norm so layers with
	// different fan-in compete fairly.
	var entries []rankedEntry
	targetByName := make(map[string]*structTarget, len(targets))
	for ti := range targets {
		t := &targets[ti]
		targetByName[t.weightName] = t
		d := t.weight.Value.Data()
		for r := 0; r < t.rows; r++ {
			var sum float64
			for _, v := range d[r*t.rowLen : (r+1)*t.rowLen] {
				sum += float64(v) * float64(v)
			}
			entries = append(entries, rankedEntry{
				param: t.weightName,
				index: r,
				score: math.Sqrt(sum / float64(t.rowLen)),
			})
		}
	}
	sortRanked(entries)

	// Weight-sparsity accounting runs over all prunable parameters, to stay
	// comparable with the unstructured methods.
	var totalPrunable int
	for _, p := range model.PrunableParams() {
		totalPrunable += p.Value.Len()
	}

	// Build masks incrementally across levels (prefix of the same ranking →
	// nested by construction).
	masks := make(map[string]*Mask)
	for _, p := range model.Params() {
		masks[p.Name] = nil // lazily created
	}
	getMask := func(name string, n int) *Mask {
		if masks[name] == nil {
			masks[name] = NewMask(n)
		}
		return masks[name]
	}
	kept := make(map[string]int, len(targets))
	for _, t := range targets {
		kept[t.weightName] = t.rows
	}

	plans := make([]*Plan, len(sparsities))
	cursor := 0
	prunedWeights := 0
	for li, s := range sparsities {
		budget := int(s * float64(totalPrunable))
		for cursor < len(entries) && prunedWeights < budget {
			e := entries[cursor]
			cursor++
			t := targetByName[e.param]
			if kept[t.weightName] <= minKeep {
				continue
			}
			kept[t.weightName]--
			wm := getMask(t.weightName, t.weight.Value.Len())
			for i := e.index * t.rowLen; i < (e.index+1)*t.rowLen; i++ {
				wm.SetPruned(i)
			}
			getMask(t.biasName, t.bias.Value.Len()).SetPruned(e.index)
			if t.bnGamma != "" {
				getMask(t.bnGamma, t.rows).SetPruned(e.index)
				getMask(t.bnBeta, t.rows).SetPruned(e.index)
			}
			prunedWeights += t.rowLen
		}
		snapshot := make(map[string]*Mask)
		for name, m := range masks {
			if m != nil {
				snapshot[name] = m.Clone()
			}
		}
		plans[li] = &Plan{Method: "structured-channel", Sparsity: s, Masks: snapshot}
	}
	return plans, nil
}

// PrunedChannels reports, for each channel-prunable layer, which output
// channels the live model has fully zeroed (weight row, bias, and any
// attached normalization). Compact uses this to decide what to remove.
func PrunedChannels(model *nn.Sequential) map[string][]int {
	out := make(map[string][]int)
	for _, t := range structTargets(model) {
		d := t.weight.Value.Data()
		bd := t.bias.Value.Data()
		var dead []int
		for r := 0; r < t.rows; r++ {
			if bd[r] != 0 { //lint:allow(floateq) dead channels are bit-exact zeros left by pruning
				continue
			}
			allZero := true
			for _, v := range d[r*t.rowLen : (r+1)*t.rowLen] {
				if v != 0 { //lint:allow(floateq) dead channels are bit-exact zeros left by pruning
					allZero = false
					break
				}
			}
			if !allZero {
				continue
			}
			if t.bnGamma != "" {
				g := model.Param(t.bnGamma).Value.Data()
				b := model.Param(t.bnBeta).Value.Data()
				if g[r] != 0 || b[r] != 0 { //lint:allow(floateq) dead channels are bit-exact zeros left by pruning
					continue
				}
			}
			dead = append(dead, r)
		}
		if len(dead) > 0 {
			out[t.weightName] = dead
		}
	}
	return out
}
