package prune

import "fmt"

// failf panics with the formatted message. It is this package's single
// sanctioned panic site under the nopanic analyzer: mask lengths and plan parameter names are fixed at design time; a mismatch at runtime is a caller bug.
func failf(format string, args ...any) {
	panic(fmt.Sprintf(format, args...)) //lint:allow(nopanic) documented programmer-error invariant
}
