package prune

import (
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestCompactIdentityWhenNothingPruned(t *testing.T) {
	m := testCNN(20)
	c, err := Compact(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.ParamCount() != m.ParamCount() {
		t.Errorf("compact changed param count with nothing pruned: %d vs %d", c.ParamCount(), m.ParamCount())
	}
	x := tensor.RandNormal(tensor.NewRNG(21), 0, 1, 3, 1, 16, 16)
	if !tensor.Equal(m.Forward(x, false), c.Forward(x, false)) {
		t.Error("outputs differ")
	}
}

func TestCompactEquivalenceCNN(t *testing.T) {
	for _, sparsity := range []float64{0.2, 0.5, 0.7} {
		m := testCNN(22)
		plan, err := PlanSingle(StructuredChannel{}, m, sparsity)
		if err != nil {
			t.Fatal(err)
		}
		plan.Apply(m)
		c, err := Compact(m)
		if err != nil {
			t.Fatalf("sparsity %v: %v", sparsity, err)
		}
		if c.ParamCount() >= m.ParamCount() {
			t.Errorf("sparsity %v: compaction did not shrink model (%d vs %d)", sparsity, c.ParamCount(), m.ParamCount())
		}
		x := tensor.RandNormal(tensor.NewRNG(23), 0, 1, 4, 1, 16, 16)
		ym := m.Forward(x, false)
		yc := c.Forward(x, false)
		if !tensor.Equal(ym, yc) {
			t.Errorf("sparsity %v: compacted model output differs", sparsity)
		}
	}
}

func TestCompactEquivalenceMLP(t *testing.T) {
	m := testMLP(24)
	plan, err := PlanSingle(StructuredChannel{}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	c, err := Compact(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(25), 0, 1, 5, 10)
	if !tensor.Equal(m.Forward(x, false), c.Forward(x, false)) {
		t.Error("compacted MLP output differs")
	}
	if c.ParamCount() >= m.ParamCount() {
		t.Error("MLP compaction did not shrink model")
	}
	// The head must keep all 4 outputs.
	head := c.Layer("fc3").(*nn.Dense)
	if head.OutFeatures() != 4 {
		t.Errorf("head outputs %d, want 4", head.OutFeatures())
	}
}

func TestCompactWithGlobalAvgPool(t *testing.T) {
	rng := tensor.NewRNG(26)
	g := tensor.ConvGeom{InC: 1, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	m := nn.NewSequential("gapnet",
		nn.NewConv2D("conv1", g, 6, rng),
		nn.NewReLU("relu1"),
		nn.NewGlobalAvgPool2D("gap", 6, 8, 8),
		nn.NewDense("fc", 6, 3, rng),
	)
	plan, err := PlanSingle(StructuredChannel{}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	c, err := Compact(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(27), 0, 1, 2, 1, 8, 8)
	if !tensor.Equal(m.Forward(x, false), c.Forward(x, false)) {
		t.Error("GAP model compaction changed outputs")
	}
}

func TestCompactPreservesBatchNormStats(t *testing.T) {
	m := testCNN(28)
	// Populate running stats with a few training passes.
	rng := tensor.NewRNG(29)
	for i := 0; i < 3; i++ {
		m.Forward(tensor.RandNormal(rng, 0.5, 1, 4, 1, 16, 16), true)
	}
	plan, err := PlanSingle(StructuredChannel{}, m, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	c, err := Compact(m)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.RandNormal(tensor.NewRNG(30), 0, 1, 2, 1, 16, 16)
	if !tensor.Equal(m.Forward(x, false), c.Forward(x, false)) {
		t.Error("compaction with BN running stats changed inference outputs")
	}
}

func TestCompactSpeedupIsReal(t *testing.T) {
	// Not a timing assertion (flaky); assert the MAC count shrinks, which
	// is what the platform model and the wall-clock benches key on.
	m := testCNN(31)
	plan, err := PlanSingle(StructuredChannel{}, m, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	c, err := Compact(m)
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalMACsPerSample() >= m.TotalMACsPerSample() {
		t.Errorf("compacted MACs %d not below dense %d", c.TotalMACsPerSample(), m.TotalMACsPerSample())
	}
}

func TestCompactRejectsEmptyModel(t *testing.T) {
	if _, err := Compact(nn.NewSequential("empty")); err == nil {
		t.Error("expected error")
	}
}
