package prune

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/nn"
)

// SensitivityResult records how much a single layer's accuracy degrades when
// only that layer is pruned to each probe sparsity.
type SensitivityResult struct {
	// Param is the prunable parameter probed.
	Param string
	// Sparsities are the probe levels.
	Sparsities []float64
	// Accuracy[i] is the model accuracy with only Param pruned to
	// Sparsities[i].
	Accuracy []float64
}

// Drop returns the accuracy lost at the highest probe sparsity relative to
// the lowest.
func (r SensitivityResult) Drop() float64 {
	if len(r.Accuracy) < 2 {
		return 0
	}
	return r.Accuracy[0] - r.Accuracy[len(r.Accuracy)-1]
}

// Sensitivity performs per-layer sensitivity analysis: for each prunable
// parameter it applies magnitude pruning at each probe sparsity to that
// parameter alone, measures accuracy with the supplied evaluator, and
// restores the original weights before moving on. The evaluator must run the
// model in inference mode.
//
// Results are sorted most-sensitive first; a runtime level designer assigns
// gentler sparsities to layers at the top of this list.
func Sensitivity(model *nn.Sequential, sparsities []float64, eval func() float64) ([]SensitivityResult, error) {
	if err := checkSparsities(sparsities); err != nil {
		return nil, err
	}
	if eval == nil {
		return nil, fmt.Errorf("prune: Sensitivity requires an evaluator")
	}
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("prune: model %q has no prunable parameters", model.Name())
	}
	var results []SensitivityResult
	for _, p := range params {
		backup := p.Value.Clone()
		res := SensitivityResult{Param: p.Name, Sparsities: append([]float64(nil), sparsities...)}

		// Rank this parameter's weights once; nested prefixes per level.
		d := p.Value.Data()
		entries := make([]rankedEntry, len(d))
		for i, v := range d {
			entries[i] = rankedEntry{param: p.Name, index: i, score: math.Abs(float64(v))}
		}
		sortRanked(entries)
		for _, s := range sparsities {
			k := int(s * float64(len(d)))
			for _, e := range entries[:k] {
				d[e.index] = 0
			}
			res.Accuracy = append(res.Accuracy, eval())
			p.Value.CopyFrom(backup)
		}
		results = append(results, res)
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Drop() != results[j].Drop() { //lint:allow(floateq) deterministic sort tie-break on identical drops
			return results[i].Drop() > results[j].Drop()
		}
		return results[i].Param < results[j].Param
	})
	return results, nil
}
