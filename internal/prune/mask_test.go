package prune

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func TestNewMaskAllKept(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130} {
		m := NewMask(n)
		if m.Len() != n || m.KeptCount() != n || m.PrunedCount() != 0 {
			t.Errorf("NewMask(%d): len %d kept %d pruned %d", n, m.Len(), m.KeptCount(), m.PrunedCount())
		}
		if m.Sparsity() != 0 {
			t.Errorf("NewMask(%d) sparsity %v", n, m.Sparsity())
		}
	}
}

func TestMaskSetAndCount(t *testing.T) {
	m := NewMask(100)
	for i := 0; i < 100; i += 3 {
		m.SetPruned(i)
	}
	want := 34 // indices 0,3,...,99
	if m.PrunedCount() != want {
		t.Errorf("PrunedCount = %d, want %d", m.PrunedCount(), want)
	}
	if m.Keep(3) || !m.Keep(4) {
		t.Error("Keep wrong")
	}
	m.SetKept(3)
	if !m.Keep(3) || m.PrunedCount() != want-1 {
		t.Error("SetKept did not restore")
	}
}

func TestMaskBoundsPanics(t *testing.T) {
	m := NewMask(10)
	for _, f := range []func(){
		func() { m.Keep(10) },
		func() { m.SetPruned(-1) },
		func() { m.Apply(tensor.New(11)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestMaskCloneEqualSubset(t *testing.T) {
	a := NewMask(70)
	a.SetPruned(5)
	a.SetPruned(69)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.SetPruned(10)
	if a.Equal(b) {
		t.Error("mutated clone still equal")
	}
	if !a.IsSubsetOf(b) {
		t.Error("a should nest into b")
	}
	if b.IsSubsetOf(a) {
		t.Error("b should not nest into a")
	}
	if a.IsSubsetOf(NewMask(71)) {
		t.Error("different lengths should not nest")
	}
}

func TestMaskApplyExtractRestore(t *testing.T) {
	rng := tensor.NewRNG(1)
	orig := tensor.RandNormal(rng, 0, 1, 40)
	work := orig.Clone()
	m := NewMask(40)
	for i := 0; i < 40; i += 2 {
		m.SetPruned(i)
	}
	displaced := m.ExtractPruned(work)
	if len(displaced) != 20 {
		t.Fatalf("displaced %d values", len(displaced))
	}
	m.Apply(work)
	if work.Sparsity() < 0.49 {
		t.Errorf("apply left sparsity %v", work.Sparsity())
	}
	for i := 1; i < 40; i += 2 {
		if work.Data()[i] != orig.Data()[i] {
			t.Fatal("apply touched kept weight")
		}
	}
	m.RestorePruned(work, displaced)
	if !tensor.Equal(work, orig) {
		t.Error("restore did not reproduce original bit-exactly")
	}
}

func TestMaskRestoreRejectsWrongLength(t *testing.T) {
	m := NewMask(10)
	m.SetPruned(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.RestorePruned(tensor.New(10), []float32{1, 2})
}

func TestMaskDiff(t *testing.T) {
	a := NewMask(10)
	a.SetPruned(1)
	b := a.Clone()
	b.SetPruned(4)
	b.SetPruned(7)
	d := a.Diff(b)
	if len(d) != 2 || d[0] != 4 || d[1] != 7 {
		t.Errorf("Diff = %v", d)
	}
	if len(b.Diff(a)) != 0 {
		t.Errorf("reverse Diff should be empty, got %v", b.Diff(a))
	}
}

func TestMaskSerializationRoundTrip(t *testing.T) {
	m := NewMask(133)
	for i := 0; i < 133; i += 5 {
		m.SetPruned(i)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMask(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(got) {
		t.Error("round trip mismatch")
	}
}

func TestReadMaskRejectsGarbage(t *testing.T) {
	if _, err := ReadMask(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Error("expected error")
	}
}

// Property: Apply → RestorePruned is the identity for arbitrary masks.
func TestMaskReversibilityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := 1 + rng.Intn(200)
		orig := tensor.RandNormal(rng, 0, 2, n)
		work := orig.Clone()
		m := NewMask(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.4 {
				m.SetPruned(i)
			}
		}
		displaced := m.ExtractPruned(work)
		m.Apply(work)
		m.RestorePruned(work, displaced)
		return tensor.Equal(work, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: KeptCount + PrunedCount == Len for random masks.
func TestMaskCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := tensor.NewRNG(seed)
		n := rng.Intn(300)
		m := NewMask(n)
		for i := 0; i < n; i++ {
			if rng.Float64() < 0.5 {
				m.SetPruned(i)
			}
		}
		return m.KeptCount()+m.PrunedCount() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
