package prune

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// MagnitudeGlobal prunes the globally smallest-magnitude weights across all
// prunable parameters. It is the strongest of the classic one-shot
// unstructured criteria and the method the reconstructed paper's level
// library defaults to.
type MagnitudeGlobal struct{}

// Name returns "magnitude-global".
func (MagnitudeGlobal) Name() string { return "magnitude-global" }

// PlanNested ranks every prunable weight once by |w| and cuts nested
// prefixes, one per requested sparsity.
func (MagnitudeGlobal) PlanNested(model *nn.Sequential, sparsities []float64) ([]*Plan, error) {
	if err := checkSparsities(sparsities); err != nil {
		return nil, err
	}
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("prune: model %q has no prunable parameters", model.Name())
	}
	var entries []rankedEntry
	total := 0
	for _, p := range params {
		d := p.Value.Data()
		total += len(d)
		for i, v := range d {
			entries = append(entries, rankedEntry{param: p.Name, index: i, score: math.Abs(float64(v))})
		}
	}
	sortRanked(entries)
	return plansFromPrefixes(model, "magnitude-global", sparsities, entries, total), nil
}

// MagnitudeLayer prunes the smallest-magnitude weights within each layer
// independently, every layer at the same target sparsity. It is the common
// baseline that avoids starving small layers but cannot reallocate budget
// between layers.
type MagnitudeLayer struct{}

// Name returns "magnitude-layer".
func (MagnitudeLayer) Name() string { return "magnitude-layer" }

// PlanNested ranks weights within each parameter and cuts per-layer nested
// prefixes.
func (MagnitudeLayer) PlanNested(model *nn.Sequential, sparsities []float64) ([]*Plan, error) {
	if err := checkSparsities(sparsities); err != nil {
		return nil, err
	}
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("prune: model %q has no prunable parameters", model.Name())
	}
	plans := make([]*Plan, len(sparsities))
	for i, s := range sparsities {
		plans[i] = &Plan{Method: "magnitude-layer", Sparsity: s, Masks: make(map[string]*Mask)}
	}
	for _, p := range params {
		d := p.Value.Data()
		entries := make([]rankedEntry, len(d))
		for i, v := range d {
			entries[i] = rankedEntry{param: p.Name, index: i, score: math.Abs(float64(v))}
		}
		sortRanked(entries)
		for li, s := range sparsities {
			mask := NewMask(len(d))
			k := int(s * float64(len(d)))
			for _, e := range entries[:k] {
				mask.SetPruned(e.index)
			}
			plans[li].Masks[p.Name] = mask
		}
	}
	return plans, nil
}

// Random prunes uniformly random weights; it is the control baseline that
// separates "pruning criterion quality" from "the network tolerates missing
// weights".
type Random struct {
	// Seed drives the permutation; identical seeds give identical plans.
	Seed int64
}

// Name returns "random".
func (Random) Name() string { return "random" }

// PlanNested prunes nested prefixes of one global random permutation.
func (r Random) PlanNested(model *nn.Sequential, sparsities []float64) ([]*Plan, error) {
	if err := checkSparsities(sparsities); err != nil {
		return nil, err
	}
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("prune: model %q has no prunable parameters", model.Name())
	}
	rng := tensor.NewRNG(r.Seed)
	var entries []rankedEntry
	total := 0
	for _, p := range params {
		n := p.Value.Len()
		total += n
		for i := 0; i < n; i++ {
			entries = append(entries, rankedEntry{param: p.Name, index: i, score: rng.Float64()})
		}
	}
	sortRanked(entries)
	return plansFromPrefixes(model, "random", sparsities, entries, total), nil
}

// plansFromPrefixes converts a global ranking into nested prefix plans.
func plansFromPrefixes(model *nn.Sequential, method string, sparsities []float64, entries []rankedEntry, total int) []*Plan {
	plans := make([]*Plan, len(sparsities))
	// Build each plan incrementally from the previous one so the whole
	// family costs one pass over the ranking.
	masks := make(map[string]*Mask)
	for _, p := range model.PrunableParams() {
		masks[p.Name] = NewMask(p.Value.Len())
	}
	cursor := 0
	for li, s := range sparsities {
		k := int(s * float64(total))
		for ; cursor < k; cursor++ {
			e := entries[cursor]
			masks[e.param].SetPruned(e.index)
		}
		snapshot := make(map[string]*Mask, len(masks))
		for name, m := range masks {
			snapshot[name] = m.Clone()
		}
		plans[li] = &Plan{Method: method, Sparsity: s, Masks: snapshot}
	}
	return plans
}
