package prune

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// testCNN builds the small sign-recognition CNN used throughout the prune
// tests: conv → bn → relu → pool → conv → relu → flatten → dense → relu →
// dense head.
func testCNN(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g1 := tensor.ConvGeom{InC: 1, InH: 16, InW: 16, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	g2 := tensor.ConvGeom{InC: 8, InH: 8, InW: 8, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("cnn",
		nn.NewConv2D("conv1", g1, 8, rng),
		nn.NewBatchNorm("bn1", 8),
		nn.NewReLU("relu1"),
		nn.NewMaxPool2D("pool1", 8, 16, 16, 2, 2, 2, 2),
		nn.NewConv2D("conv2", g2, 12, rng),
		nn.NewReLU("relu2"),
		nn.NewFlatten("flat"),
		nn.NewDense("fc1", 12*8*8, 32, rng),
		nn.NewReLU("relu3"),
		nn.NewDense("fc2", 32, 6, rng),
	)
}

func testMLP(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("mlp",
		nn.NewDense("fc1", 10, 32, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 32, 16, rng),
		nn.NewReLU("relu2"),
		nn.NewDense("fc3", 16, 4, rng),
	)
}

func TestMagnitudeGlobalPrunesSmallest(t *testing.T) {
	rng := tensor.NewRNG(1)
	m := nn.NewSequential("m", nn.NewDense("fc", 4, 2, rng))
	w := m.Param("fc/weight").Value
	w.CopyFrom(tensor.FromSlice([]float32{0.1, -5, 3, -0.2, 0.05, 2, -1, 4}, 2, 4))
	plan, err := PlanSingle(MagnitudeGlobal{}, m, 0.375) // prune 3 of 8
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	want := []float32{0, -5, 3, 0, 0, 2, -1, 4} // 0.05, 0.1, 0.2 pruned
	for i, v := range want {
		if w.Data()[i] != v {
			t.Errorf("w[%d] = %v, want %v", i, w.Data()[i], v)
		}
	}
	if got := plan.AchievedSparsity(m); math.Abs(got-0.375) > 1e-9 {
		t.Errorf("achieved sparsity %v", got)
	}
}

func TestMagnitudeGlobalReallocatesAcrossLayers(t *testing.T) {
	rng := tensor.NewRNG(2)
	m := nn.NewSequential("m",
		nn.NewDense("small", 2, 2, rng),
		nn.NewDense("big", 2, 2, rng),
	)
	m.Param("small/weight").Value.CopyFrom(tensor.FromSlice([]float32{10, 20, 30, 40}, 2, 2))
	m.Param("big/weight").Value.CopyFrom(tensor.FromSlice([]float32{0.1, 0.2, 0.3, 0.4}, 2, 2))
	plan, err := PlanSingle(MagnitudeGlobal{}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	if m.Param("small/weight").Value.CountNonZero() != 4 {
		t.Error("global pruning should spare the large-magnitude layer entirely")
	}
	if m.Param("big/weight").Value.CountNonZero() != 0 {
		t.Error("global pruning should fully prune the small-magnitude layer")
	}
}

func TestMagnitudeLayerPrunesPerLayer(t *testing.T) {
	rng := tensor.NewRNG(3)
	m := nn.NewSequential("m",
		nn.NewDense("a", 2, 2, rng),
		nn.NewDense("b", 2, 2, rng),
	)
	m.Param("a/weight").Value.CopyFrom(tensor.FromSlice([]float32{10, 20, 30, 40}, 2, 2))
	m.Param("b/weight").Value.CopyFrom(tensor.FromSlice([]float32{0.1, 0.2, 0.3, 0.4}, 2, 2))
	plan, err := PlanSingle(MagnitudeLayer{}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	if m.Param("a/weight").Value.CountNonZero() != 2 || m.Param("b/weight").Value.CountNonZero() != 2 {
		t.Error("per-layer pruning should prune half of each layer")
	}
}

func TestRandomDeterministicBySeed(t *testing.T) {
	m := testMLP(4)
	p1, err := PlanSingle(Random{Seed: 7}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := PlanSingle(Random{Seed: 7}, m, 0.5)
	p3, _ := PlanSingle(Random{Seed: 8}, m, 0.5)
	for name, mask := range p1.Masks {
		if !mask.Equal(p2.Masks[name]) {
			t.Error("same seed produced different plans")
		}
	}
	same := true
	for name, mask := range p1.Masks {
		if !mask.Equal(p3.Masks[name]) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical plans")
	}
}

func TestPlanNestedNesting(t *testing.T) {
	levels := []float64{0, 0.2, 0.5, 0.8, 0.95}
	for _, method := range []Method{MagnitudeGlobal{}, MagnitudeLayer{}, Random{Seed: 1}, StructuredChannel{}} {
		m := testCNN(5)
		plans, err := method.PlanNested(m, levels)
		if err != nil {
			t.Fatalf("%s: %v", method.Name(), err)
		}
		if len(plans) != len(levels) {
			t.Fatalf("%s: %d plans", method.Name(), len(plans))
		}
		for i := 0; i < len(plans)-1; i++ {
			if !plans[i].Nests(plans[i+1]) {
				t.Errorf("%s: level %d does not nest into %d", method.Name(), i, i+1)
			}
		}
		// Sparsity should be monotone and roughly track the request.
		for i, p := range plans {
			got := p.AchievedSparsity(m)
			if method.Name() == "structured-channel" {
				// Channel granularity and head exclusion make exact targets
				// unreachable; just require monotonicity (checked below).
				continue
			}
			if math.Abs(got-levels[i]) > 0.02 {
				t.Errorf("%s level %d achieved %v, want %v", method.Name(), i, got, levels[i])
			}
		}
		for i := 0; i < len(plans)-1; i++ {
			if plans[i].AchievedSparsity(m) > plans[i+1].AchievedSparsity(m)+1e-12 {
				t.Errorf("%s: sparsity not monotone", method.Name())
			}
		}
	}
}

func TestPlanNestedRejectsBadInput(t *testing.T) {
	m := testMLP(6)
	if _, err := (MagnitudeGlobal{}).PlanNested(m, nil); err == nil {
		t.Error("empty sparsities accepted")
	}
	if _, err := (MagnitudeGlobal{}).PlanNested(m, []float64{0.5, 0.2}); err == nil {
		t.Error("decreasing sparsities accepted")
	}
	if _, err := (MagnitudeGlobal{}).PlanNested(m, []float64{1.0}); err == nil {
		t.Error("sparsity 1.0 accepted")
	}
	empty := nn.NewSequential("empty", nn.NewReLU("r"))
	if _, err := (MagnitudeGlobal{}).PlanNested(empty, []float64{0.5}); err == nil {
		t.Error("model without prunable params accepted")
	}
}

func TestMaskGradients(t *testing.T) {
	m := testMLP(7)
	plan, err := PlanSingle(MagnitudeGlobal{}, m, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	for _, p := range m.PrunableParams() {
		p.Grad.Fill(1)
	}
	plan.MaskGradients(m)
	for _, p := range m.PrunableParams() {
		mask := plan.Masks[p.Name]
		for i, g := range p.Grad.Data() {
			if mask.Keep(i) && g != 1 {
				t.Fatal("kept gradient was zeroed")
			}
			if !mask.Keep(i) && g != 0 {
				t.Fatal("pruned gradient survived")
			}
		}
	}
}

func TestStructuredZeroesWholeChannels(t *testing.T) {
	m := testCNN(8)
	plan, err := PlanSingle(StructuredChannel{}, m, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	dead := PrunedChannels(m)
	if len(dead) == 0 {
		t.Fatal("no channels pruned at 40% target")
	}
	// Every pruned conv1 channel must have zero bias and zero BN affine.
	if rows, ok := dead["conv1/weight"]; ok {
		bias := m.Param("conv1/bias").Value.Data()
		gamma := m.Param("bn1/gamma").Value.Data()
		beta := m.Param("bn1/beta").Value.Data()
		for _, r := range rows {
			if bias[r] != 0 || gamma[r] != 0 || beta[r] != 0 {
				t.Errorf("channel %d not fully silenced: bias=%v gamma=%v beta=%v", r, bias[r], gamma[r], beta[r])
			}
		}
	}
	// The classifier head must be untouched.
	if _, ok := plan.Masks["fc2/weight"]; ok {
		if plan.Masks["fc2/weight"].PrunedCount() > 0 {
			t.Error("classifier head was pruned")
		}
	}
	if m.Param("fc2/weight").Value.CountNonZero() != m.Param("fc2/weight").Value.Len() {
		t.Error("classifier head weights were zeroed")
	}
}

func TestStructuredRespectsMinKeep(t *testing.T) {
	m := testCNN(9)
	plan, err := PlanSingle(StructuredChannel{MinKeepPerLayer: 2}, m, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	plan.Apply(m)
	// conv1 has 8 channels; at most 6 may die.
	dead := PrunedChannels(m)
	if len(dead["conv1/weight"]) > 6 {
		t.Errorf("conv1 lost %d channels, min-keep 2 violated", len(dead["conv1/weight"]))
	}
	if len(dead["fc1/weight"]) > 30 {
		t.Errorf("fc1 lost %d neurons, min-keep 2 violated", len(dead["fc1/weight"]))
	}
}

func TestSchedules(t *testing.T) {
	os := OneShot{Final: 0.8}
	if os.At(0, 10) != 0.8 || os.At(9, 10) != 0.8 {
		t.Error("OneShot wrong")
	}
	lin := Linear{Initial: 0, Final: 0.8}
	if lin.At(0, 5) != 0 || math.Abs(lin.At(4, 5)-0.8) > 1e-12 {
		t.Errorf("Linear endpoints wrong: %v %v", lin.At(0, 5), lin.At(4, 5))
	}
	cub := Cubic{Initial: 0, Final: 0.9}
	if cub.At(0, 10) != 0 || math.Abs(cub.At(9, 10)-0.9) > 1e-12 {
		t.Errorf("Cubic endpoints wrong: %v %v", cub.At(0, 10), cub.At(9, 10))
	}
	// Cubic front-loads: halfway it should exceed linear's halfway point.
	linHalf := Linear{Initial: 0, Final: 0.9}.At(5, 11)
	cubHalf := cub.At(5, 11)
	if cubHalf <= linHalf {
		t.Errorf("cubic %v should exceed linear %v at midpoint", cubHalf, linHalf)
	}
	levels, err := ScheduleLevels(cub, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 10 {
		t.Fatal("wrong level count")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i] < levels[i-1] {
			t.Error("schedule not monotone")
		}
	}
	if _, err := ScheduleLevels(cub, 0); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestSensitivityRanksAndRestores(t *testing.T) {
	m := testMLP(10)
	backup := make(map[string]*tensor.Tensor)
	for _, p := range m.Params() {
		backup[p.Name] = p.Value.Clone()
	}
	x := tensor.RandNormal(tensor.NewRNG(11), 0, 1, 8, 10)
	// Evaluator: negative output distortion vs the dense model, so "higher
	// is better" like accuracy.
	ref := m.Forward(x, false).Clone()
	eval := func() float64 {
		out := m.Forward(x, false)
		var d float64
		for i, v := range out.Data() {
			dd := float64(v - ref.Data()[i])
			d += dd * dd
		}
		return -d
	}
	results, err := Sensitivity(m, []float64{0.3, 0.9}, eval)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i-1].Drop() < results[i].Drop() {
			t.Error("results not sorted by sensitivity")
		}
	}
	for _, p := range m.Params() {
		if !tensor.Equal(p.Value, backup[p.Name]) {
			t.Errorf("Sensitivity left %s modified", p.Name)
		}
	}
}

func TestSensitivityErrors(t *testing.T) {
	m := testMLP(12)
	if _, err := Sensitivity(m, []float64{0.5}, nil); err == nil {
		t.Error("nil evaluator accepted")
	}
	if _, err := Sensitivity(m, nil, func() float64 { return 0 }); err == nil {
		t.Error("empty sparsities accepted")
	}
}
