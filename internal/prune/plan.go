package prune

import (
	"fmt"
	"sort"

	"repro/internal/nn"
)

// Plan is the outcome of a pruning method: one mask per affected parameter,
// keyed by fully qualified parameter name.
type Plan struct {
	// Method names the strategy that produced the plan.
	Method string
	// Sparsity is the requested weight sparsity over prunable parameters.
	Sparsity float64
	// Masks maps parameter name to its keep-mask. Parameters not present
	// are untouched.
	Masks map[string]*Mask
}

// Apply zeroes every pruned weight of model in place. It panics if the plan
// references a parameter the model does not have.
func (p *Plan) Apply(model *nn.Sequential) {
	for name, mask := range p.Masks {
		param := model.Param(name)
		if param == nil {
			failf("prune: plan references unknown parameter %q", name)
		}
		mask.Apply(param.Value)
	}
}

// MaskGradients zeroes the gradient entries of pruned weights, so that an
// optimizer step cannot resurrect them. Use together with Apply as a
// train.Config.PostStep during masked fine-tuning.
func (p *Plan) MaskGradients(model *nn.Sequential) {
	for name, mask := range p.Masks {
		param := model.Param(name)
		if param == nil {
			failf("prune: plan references unknown parameter %q", name)
		}
		d := param.Grad.Data()
		for i := range d {
			if !mask.Keep(i) {
				d[i] = 0
			}
		}
	}
}

// AchievedSparsity returns the pruned fraction over the model's *prunable*
// parameters implied by the plan (auxiliary masks over biases and
// normalization terms are excluded, matching how the literature reports
// weight sparsity).
func (p *Plan) AchievedSparsity(model *nn.Sequential) float64 {
	var total, pruned int
	for _, param := range model.PrunableParams() {
		total += param.Value.Len()
		if mask, ok := p.Masks[param.Name]; ok {
			pruned += mask.PrunedCount()
		}
	}
	if total == 0 {
		return 0
	}
	return float64(pruned) / float64(total)
}

// Nests reports whether p's pruned set is contained in q's for every
// parameter — the invariant the reversibility layer relies on for its
// delta-encoded recovery store.
func (p *Plan) Nests(q *Plan) bool {
	for name, pm := range p.Masks {
		qm, ok := q.Masks[name]
		if !ok {
			if pm.PrunedCount() > 0 {
				return false
			}
			continue
		}
		if !pm.IsSubsetOf(qm) {
			return false
		}
	}
	return true
}

// Method is a pruning strategy that can plan a family of nested sparsity
// levels in one shot. Nesting (each level's pruned set contains the
// previous level's) is what makes reversible level transitions cheap, so it
// is part of the contract rather than an accident of implementation.
type Method interface {
	// Name identifies the method in tables.
	Name() string
	// PlanNested returns one plan per sparsity. Sparsities must be
	// non-decreasing in [0,1); returned plans are nested in order.
	PlanNested(model *nn.Sequential, sparsities []float64) ([]*Plan, error)
}

// PlanSingle is a convenience wrapper planning exactly one sparsity level.
func PlanSingle(m Method, model *nn.Sequential, sparsity float64) (*Plan, error) {
	plans, err := m.PlanNested(model, []float64{sparsity})
	if err != nil {
		return nil, err
	}
	return plans[0], nil
}

func checkSparsities(sparsities []float64) error {
	if len(sparsities) == 0 {
		return fmt.Errorf("prune: no sparsities requested")
	}
	prev := -1.0
	for _, s := range sparsities {
		if s < 0 || s >= 1 {
			return fmt.Errorf("prune: sparsity %v out of [0,1)", s)
		}
		if s < prev {
			return fmt.Errorf("prune: sparsities must be non-decreasing, got %v after %v", s, prev)
		}
		prev = s
	}
	return nil
}

// rankedEntry is one weight (or channel) in a global pruning order.
type rankedEntry struct {
	param string
	index int
	score float64
}

func sortRanked(entries []rankedEntry) {
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].score != entries[j].score { //lint:allow(floateq) deterministic sort tie-break on identical scores
			return entries[i].score < entries[j].score
		}
		// Deterministic tie-break on (param, index).
		if entries[i].param != entries[j].param {
			return entries[i].param < entries[j].param
		}
		return entries[i].index < entries[j].index
	})
}
