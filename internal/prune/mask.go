// Package prune implements the pruning substrate: bitset masks over
// parameter tensors, unstructured and structured pruning methods, nested
// multi-level plans, gradual sparsity schedules, layer sensitivity analysis,
// and physical compaction of channel-pruned models.
//
// Masks use *keep* semantics: a set bit means the weight survives; a cleared
// bit means the weight is pruned to exactly zero. Exact zeros matter — the
// tensor matmul kernels skip them, the platform model discounts them, and
// the reversibility layer restores them bit-exactly.
package prune

import (
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"repro/internal/tensor"
)

// Mask is a fixed-length bitset over the elements of one parameter tensor.
type Mask struct {
	n    int
	bits []uint64
}

// NewMask returns a mask of length n with every element kept.
func NewMask(n int) *Mask {
	if n < 0 {
		failf("prune: NewMask(%d)", n)
	}
	m := &Mask{n: n, bits: make([]uint64, (n+63)/64)}
	for i := range m.bits {
		m.bits[i] = ^uint64(0)
	}
	// Clear the tail bits beyond n so popcounts are exact.
	if rem := n % 64; rem != 0 && len(m.bits) > 0 {
		m.bits[len(m.bits)-1] = (uint64(1) << rem) - 1
	}
	if n == 0 {
		m.bits = m.bits[:0]
	}
	return m
}

// Len returns the mask length.
func (m *Mask) Len() int { return m.n }

// StorageBytes returns the memory footprint of the bitset itself — what a
// checkpoint store pays to hold this mask once for all attached views.
func (m *Mask) StorageBytes() int64 { return int64(len(m.bits)) * 8 }

// Keep reports whether element i survives.
func (m *Mask) Keep(i int) bool {
	m.check(i)
	return m.bits[i/64]&(1<<(i%64)) != 0
}

// SetPruned marks element i as pruned.
func (m *Mask) SetPruned(i int) {
	m.check(i)
	m.bits[i/64] &^= 1 << (i % 64)
}

// SetKept marks element i as kept.
func (m *Mask) SetKept(i int) {
	m.check(i)
	m.bits[i/64] |= 1 << (i % 64)
}

func (m *Mask) check(i int) {
	if i < 0 || i >= m.n {
		failf("prune: mask index %d out of range [0,%d)", i, m.n)
	}
}

// PrunedCount returns the number of pruned elements.
func (m *Mask) PrunedCount() int { return m.n - m.KeptCount() }

// KeptCount returns the number of kept elements.
func (m *Mask) KeptCount() int {
	n := 0
	for _, w := range m.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// Sparsity returns the pruned fraction in [0,1].
func (m *Mask) Sparsity() float64 {
	if m.n == 0 {
		return 0
	}
	return float64(m.PrunedCount()) / float64(m.n)
}

// Clone returns a deep copy.
func (m *Mask) Clone() *Mask {
	c := &Mask{n: m.n, bits: make([]uint64, len(m.bits))}
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two masks are identical.
func (m *Mask) Equal(o *Mask) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// IsSubsetOf reports whether every element pruned by m is also pruned by o —
// i.e. o is at least as sparse as m and nests it. (Formally: kept(o) ⊆
// kept(m).)
func (m *Mask) IsSubsetOf(o *Mask) bool {
	if m.n != o.n {
		return false
	}
	for i := range m.bits {
		// Bits kept by o must all be kept by m: o.bits ⊆ m.bits.
		if o.bits[i]&^m.bits[i] != 0 {
			return false
		}
	}
	return true
}

// Apply zeroes the pruned elements of t in place. t must have exactly
// Len() elements.
func (m *Mask) Apply(t *tensor.Tensor) {
	d := m.checkedData(t)
	for i := range d {
		if !m.Keep(i) {
			d[i] = 0
		}
	}
}

// ExtractPruned returns the current values of t at pruned positions, in
// ascending index order. Together with the mask itself this is exactly the
// information needed to reverse the pruning later.
func (m *Mask) ExtractPruned(t *tensor.Tensor) []float32 {
	d := m.checkedData(t)
	out := make([]float32, 0, m.PrunedCount())
	for i := range d {
		if !m.Keep(i) {
			out = append(out, d[i])
		}
	}
	return out
}

// RestorePruned writes values (as produced by ExtractPruned) back into the
// pruned positions of t.
func (m *Mask) RestorePruned(t *tensor.Tensor, values []float32) {
	d := m.checkedData(t)
	if len(values) != m.PrunedCount() {
		failf("prune: RestorePruned with %d values for %d pruned slots", len(values), m.PrunedCount())
	}
	vi := 0
	for i := range d {
		if !m.Keep(i) {
			d[i] = values[vi]
			vi++
		}
	}
}

func (m *Mask) checkedData(t *tensor.Tensor) []float32 {
	if t.Len() != m.n {
		failf("prune: mask of length %d applied to tensor of %d elements", m.n, t.Len())
	}
	return t.Data()
}

// Diff returns the indices pruned by o but not by m — the extra weights that
// must be displaced when deepening from level m to level o.
func (m *Mask) Diff(o *Mask) []int {
	if m.n != o.n {
		failf("prune: Diff of masks with lengths %d and %d", m.n, o.n)
	}
	var idx []int
	for i := 0; i < m.n; i++ {
		if m.Keep(i) && !o.Keep(i) {
			idx = append(idx, i)
		}
	}
	return idx
}

// WriteTo serializes the mask (length + words), implementing io.WriterTo.
func (m *Mask) WriteTo(w io.Writer) (int64, error) {
	buf := make([]byte, 8+8*len(m.bits))
	binary.LittleEndian.PutUint64(buf, uint64(m.n))
	for i, word := range m.bits {
		binary.LittleEndian.PutUint64(buf[8+8*i:], word)
	}
	n, err := w.Write(buf)
	if err != nil {
		return int64(n), fmt.Errorf("prune: write mask: %w", err)
	}
	return int64(n), nil
}

// maskReadChunk caps how many bytes ReadMask requests per io.ReadFull, so
// a length header claiming a huge mask cannot force a huge allocation —
// memory grows with bytes actually delivered, not with the claim.
const maskReadChunk = 64 * 1024

// ReadMask deserializes a mask written by WriteTo. The stream must be
// well-formed: bits beyond the declared length must be zero (WriteTo never
// produces them set, and accepting them would break popcount-based
// sparsity accounting).
func ReadMask(r io.Reader) (*Mask, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("prune: read mask length: %w", err)
	}
	n64 := binary.LittleEndian.Uint64(hdr[:])
	if n64 > 1<<32 {
		return nil, fmt.Errorf("prune: implausible mask length %d", n64)
	}
	n := int(n64)
	words := (n + 63) / 64
	bits := make([]uint64, 0, min(words, maskReadChunk/8))
	var chunk [maskReadChunk]byte
	for remaining := words; remaining > 0; {
		w := min(remaining, maskReadChunk/8)
		if _, err := io.ReadFull(r, chunk[:8*w]); err != nil {
			return nil, fmt.Errorf("prune: read mask words: %w", err)
		}
		for i := 0; i < 8*w; i += 8 {
			bits = append(bits, binary.LittleEndian.Uint64(chunk[i:]))
		}
		remaining -= w
	}
	if rem := n % 64; rem != 0 {
		if tail := bits[words-1] >> rem; tail != 0 {
			return nil, fmt.Errorf("prune: mask has set bits beyond length %d", n)
		}
	}
	return &Mask{n: n, bits: bits}, nil
}
