package prune

import (
	"fmt"
	"math"
)

// SparsitySchedule maps a step in [0, Steps] to a target sparsity. Gradual
// pruning interleaves mask deepening with fine-tuning and is the standard
// way to reach high sparsity with less accuracy loss than one-shot pruning.
type SparsitySchedule interface {
	// At returns the target sparsity after `step` of `total` pruning steps.
	At(step, total int) float64
	// Name identifies the schedule.
	Name() string
}

// OneShot jumps straight to the final sparsity at the first step.
type OneShot struct{ Final float64 }

// Name returns "one-shot".
func (OneShot) Name() string { return "one-shot" }

// At returns the final sparsity for every step.
func (o OneShot) At(step, total int) float64 { return o.Final }

// Linear ramps sparsity linearly from Initial to Final.
type Linear struct{ Initial, Final float64 }

// Name returns "linear".
func (Linear) Name() string { return "linear" }

// At returns the interpolated sparsity.
func (l Linear) At(step, total int) float64 {
	if total <= 1 {
		return l.Final
	}
	f := float64(step) / float64(total-1)
	if f > 1 {
		f = 1
	}
	return l.Initial + (l.Final-l.Initial)*f
}

// Cubic is the Zhu–Gupta gradual schedule: sparsity approaches Final with a
// cubically decaying rate, pruning aggressively early (while the network is
// plastic) and gently near the end.
type Cubic struct{ Initial, Final float64 }

// Name returns "cubic".
func (Cubic) Name() string { return "cubic" }

// At returns Final + (Initial−Final)·(1 − step/total)³.
func (c Cubic) At(step, total int) float64 {
	if total <= 1 {
		return c.Final
	}
	f := float64(step) / float64(total-1)
	if f > 1 {
		f = 1
	}
	return c.Final + (c.Initial-c.Final)*math.Pow(1-f, 3)
}

// ScheduleLevels materializes a schedule into the non-decreasing sparsity
// sequence handed to Method.PlanNested.
func ScheduleLevels(s SparsitySchedule, steps int) ([]float64, error) {
	if steps <= 0 {
		return nil, fmt.Errorf("prune: schedule with %d steps", steps)
	}
	out := make([]float64, steps)
	prev := -1.0
	for i := range out {
		v := s.At(i, steps)
		if v < 0 || v >= 1 {
			return nil, fmt.Errorf("prune: schedule %q produced sparsity %v at step %d", s.Name(), v, i)
		}
		if v < prev {
			return nil, fmt.Errorf("prune: schedule %q is not monotone at step %d (%v after %v)", s.Name(), i, v, prev)
		}
		out[i] = v
		prev = v
	}
	return out, nil
}
