package prune

import (
	"fmt"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Compact builds a physically smaller model from a channel-pruned one by
// removing fully zeroed output channels and the downstream weights that
// consume them. The compacted model computes bit-identical outputs (a
// removed channel's activations are exactly zero everywhere, so dropping
// its terms removes only exact +0 additions), but with genuinely smaller
// dense kernels — this is where structured pruning's measured latency wins
// come from.
//
// Supported layer sequence: Conv2D, Dense, BatchNorm, ReLU, LeakyReLU,
// Tanh, Softmax, Dropout, MaxPool2D, GlobalAvgPool2D, Flatten. The final
// Dense layer's outputs are always preserved (they are the class logits).
func Compact(model *nn.Sequential) (*nn.Sequential, error) {
	layers := model.Layers()
	if len(layers) == 0 {
		return nil, fmt.Errorf("prune: compact of empty model %q", model.Name())
	}

	// lastDense identifies the classifier head, whose rows are never removed.
	lastDense := -1
	for i, l := range layers {
		if _, ok := l.(*nn.Dense); ok {
			lastDense = i
		}
	}

	out := nn.NewSequential(model.Name() + "-compact")
	rng := tensor.NewRNG(0) // init values are overwritten below

	// keep[i] reports whether input channel/feature i of the *next* layer
	// survives. spatialPlane is H*W of the current feature map when the
	// representation is [B,C,H,W], or 0 once flattened.
	var keep []bool
	spatialPlane := 0
	initialized := false

	ensureInit := func(n int, plane int) {
		if !initialized {
			keep = allTrue(n)
			spatialPlane = plane
			initialized = true
		}
	}

	for li, l := range layers {
		switch t := l.(type) {
		case *nn.Conv2D:
			g := t.Geom()
			ensureInit(g.InC, g.OutH()*g.OutW())
			if spatialPlane == 0 {
				return nil, fmt.Errorf("prune: compact: Conv2D %q after flatten", t.Name())
			}
			if len(keep) != g.InC {
				return nil, fmt.Errorf("prune: compact: Conv2D %q expects %d input channels, tracker has %d", t.Name(), g.InC, len(keep))
			}
			keepOut := liveRows(t.Weight().Value.Data(), t.Bias().Value.Data(), t.OutChannels())
			if li == lastDenseEquivalent(layers) { // defensive: conv head unsupported
				keepOut = allTrue(t.OutChannels())
			}
			if countTrue(keepOut) == 0 {
				return nil, fmt.Errorf("prune: compact: Conv2D %q has no live channels", t.Name())
			}
			ng := g
			ng.InC = countTrue(keep)
			nc := nn.NewConv2D(t.Name(), ng, countTrue(keepOut), rng)
			copyConvWeights(nc, t, keep, keepOut, g)
			out.Add(nc)
			keep = keepOut
			spatialPlane = g.OutH() * g.OutW()

		case *nn.Dense:
			ensureInit(t.InFeatures(), 0)
			var colKeep []bool
			if spatialPlane > 0 {
				// Input came from a flattened [C,H,W] map: expand channel
				// survival over each channel's spatial block.
				colKeep = make([]bool, len(keep)*spatialPlane)
				for c, k := range keep {
					for p := 0; p < spatialPlane; p++ {
						colKeep[c*spatialPlane+p] = k
					}
				}
			} else {
				colKeep = keep
			}
			if len(colKeep) != t.InFeatures() {
				return nil, fmt.Errorf("prune: compact: Dense %q expects %d inputs, tracker has %d", t.Name(), t.InFeatures(), len(colKeep))
			}
			var keepOut []bool
			if li == lastDense {
				keepOut = allTrue(t.OutFeatures())
			} else {
				keepOut = liveRows(t.Weight().Value.Data(), t.Bias().Value.Data(), t.OutFeatures())
				if countTrue(keepOut) == 0 {
					return nil, fmt.Errorf("prune: compact: Dense %q has no live neurons", t.Name())
				}
			}
			nd := nn.NewDense(t.Name(), countTrue(colKeep), countTrue(keepOut), rng)
			copyDenseWeights(nd, t, colKeep, keepOut)
			out.Add(nd)
			keep = keepOut
			spatialPlane = 0

		case *nn.BatchNorm:
			ensureInit(t.Features(), 0)
			if len(keep) != t.Features() {
				return nil, fmt.Errorf("prune: compact: BatchNorm %q expects %d features, tracker has %d", t.Name(), t.Features(), len(keep))
			}
			nb := nn.NewBatchNorm(t.Name(), countTrue(keep))
			ps, nps := t.Params(), nb.Params()
			filterInto(nps[0].Value.Data(), ps[0].Value.Data(), keep)
			filterInto(nps[1].Value.Data(), ps[1].Value.Data(), keep)
			mean, variance := t.RunningStats()
			nMean := make([]float32, countTrue(keep))
			nVar := make([]float32, countTrue(keep))
			filterInto(nMean, mean, keep)
			filterInto(nVar, variance, keep)
			nb.SetRunningStats(nMean, nVar)
			out.Add(nb)

		case *nn.MaxPool2D:
			c, h, w, kh, kw, sh, sw := t.Config()
			ensureInit(c, h*w)
			out.Add(nn.NewMaxPool2D(t.Name(), countTrue(keep), h, w, kh, kw, sh, sw))
			spatialPlane = t.OutH() * t.OutW()

		case *nn.GlobalAvgPool2D:
			c, h, w := t.Config()
			ensureInit(c, h*w)
			out.Add(nn.NewGlobalAvgPool2D(t.Name(), countTrue(keep), h, w))
			spatialPlane = 0

		case *nn.Flatten:
			out.Add(nn.NewFlatten(t.Name()))
			// keep/spatialPlane unchanged: Dense handles the expansion.

		case *nn.ReLU:
			out.Add(nn.NewReLU(t.Name()))
		case *nn.LeakyReLU:
			out.Add(nn.NewLeakyReLU(t.Name(), t.Alpha()))
		case *nn.Tanh:
			out.Add(nn.NewTanh(t.Name()))
		case *nn.Softmax:
			out.Add(nn.NewSoftmax(t.Name()))
		case *nn.Dropout:
			out.Add(nn.NewDropout(t.Name(), t.P(), tensor.NewRNG(0)))

		default:
			return nil, fmt.Errorf("prune: compact: unsupported layer type %T (%s)", l, l.Name())
		}
	}
	return out, nil
}

// lastDenseEquivalent returns -1; it exists to keep the conv-head guard
// explicit. Conv classification heads are not used in this repository.
func lastDenseEquivalent([]nn.Layer) int { return -1 }

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

// liveRows marks rows that have any nonzero weight or bias.
func liveRows(w []float32, bias []float32, rows int) []bool {
	rowLen := len(w) / rows
	live := make([]bool, rows)
	for r := 0; r < rows; r++ {
		if bias[r] != 0 { //lint:allow(floateq) dead rows are bit-exact zeros left by pruning
			live[r] = true
			continue
		}
		for _, v := range w[r*rowLen : (r+1)*rowLen] {
			if v != 0 { //lint:allow(floateq) dead rows are bit-exact zeros left by pruning
				live[r] = true
				break
			}
		}
	}
	return live
}

// filterInto copies src[i] for kept i into dst, which must have exactly
// countTrue(keep) capacity.
func filterInto(dst, src []float32, keep []bool) {
	j := 0
	for i, k := range keep {
		if k {
			dst[j] = src[i]
			j++
		}
	}
}

// copyConvWeights fills the compacted conv layer from the original,
// filtering output rows by keepOut and, within each row, input-channel
// blocks of KH·KW columns by keepIn.
func copyConvWeights(dst, src *nn.Conv2D, keepIn, keepOut []bool, g tensor.ConvGeom) {
	block := g.KH * g.KW
	sw, dw := src.Weight().Value.Data(), dst.Weight().Value.Data()
	sb, db := src.Bias().Value.Data(), dst.Bias().Value.Data()
	rowLen := g.InC * block
	newRowLen := countTrue(keepIn) * block
	dr := 0
	for r := 0; r < src.OutChannels(); r++ {
		if !keepOut[r] {
			continue
		}
		srow := sw[r*rowLen : (r+1)*rowLen]
		drow := dw[dr*newRowLen : (dr+1)*newRowLen]
		dc := 0
		for c := 0; c < g.InC; c++ {
			if !keepIn[c] {
				continue
			}
			copy(drow[dc*block:(dc+1)*block], srow[c*block:(c+1)*block])
			dc++
		}
		db[dr] = sb[r]
		dr++
	}
}

// copyDenseWeights fills the compacted dense layer from the original,
// filtering rows by keepOut and columns by keepIn.
func copyDenseWeights(dst, src *nn.Dense, keepIn, keepOut []bool) {
	sw, dw := src.Weight().Value.Data(), dst.Weight().Value.Data()
	sb, db := src.Bias().Value.Data(), dst.Bias().Value.Data()
	in := src.InFeatures()
	newIn := countTrue(keepIn)
	dr := 0
	for r := 0; r < src.OutFeatures(); r++ {
		if !keepOut[r] {
			continue
		}
		srow := sw[r*in : (r+1)*in]
		drow := dw[dr*newIn : (dr+1)*newIn]
		filterInto(drow, srow, keepIn)
		db[dr] = sb[r]
		dr++
	}
}
