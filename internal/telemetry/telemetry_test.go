package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a clock seam that advances `step` per read.
func fakeClock(start time.Time, step time.Duration) func() time.Time {
	t := start
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	r.Inc("a")
	r.Inc("a")
	r.Add("a", 3)
	if got := r.Counter("a"); got != 5 {
		t.Errorf("counter a = %d, want 5", got)
	}
	r.Add("a", -7) // negative deltas ignored: counters are monotonic
	if got := r.Counter("a"); got != 5 {
		t.Errorf("counter a after negative add = %d, want 5", got)
	}
	if got := r.Counter("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	r.SetGauge("g", 2.5)
	r.SetGauge("g", -1.25)
	if got := r.Gauge("g"); got != -1.25 {
		t.Errorf("gauge g = %v, want -1.25", got)
	}
	// Empty names are dropped, not stored.
	r.Inc("")
	r.SetGauge("", 1)
	r.Observe("", 1)
	s := r.Snapshot()
	if _, ok := s.Counters[""]; ok {
		t.Error("empty counter name stored")
	}
	if _, ok := s.Gauges[""]; ok {
		t.Error("empty gauge name stored")
	}
	if _, ok := s.Histograms[""]; ok {
		t.Error("empty histogram name stored")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry(WithWindow(1000))
	// 1..100 µs: p50 ≈ 50.5, p90 ≈ 90.1, min 1, max 100.
	for i := 1; i <= 100; i++ {
		r.Observe("h", float64(i))
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 100 || h.Window != 100 {
		t.Fatalf("count/window = %d/%d, want 100/100", h.Count, h.Window)
	}
	if h.Min != 1 || h.Max != 100 {
		t.Errorf("min/max = %v/%v, want 1/100", h.Min, h.Max)
	}
	if math.Abs(h.P50-50.5) > 1e-9 {
		t.Errorf("p50 = %v, want 50.5", h.P50)
	}
	if math.Abs(h.P90-90.1) > 1e-9 {
		t.Errorf("p90 = %v, want 90.1", h.P90)
	}
	if math.Abs(h.Sum-5050) > 1e-9 {
		t.Errorf("sum = %v, want 5050", h.Sum)
	}
	if math.Abs(h.Mean()-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", h.Mean())
	}
}

func TestHistogramRollingWindowEvictsOldSamples(t *testing.T) {
	r := NewRegistry(WithWindow(4))
	for _, v := range []float64{1000, 1000, 1000, 1000, 1, 2, 3, 4} {
		r.Observe("h", v)
	}
	h := r.Snapshot().Histograms["h"]
	if h.Count != 8 {
		t.Errorf("lifetime count = %d, want 8", h.Count)
	}
	if h.Window != 4 {
		t.Errorf("window = %d, want 4", h.Window)
	}
	// The window holds only the last 4 samples; the early 1000s are gone.
	if h.Max != 4 || h.Min != 1 {
		t.Errorf("window min/max = %v/%v, want 1/4", h.Min, h.Max)
	}
	// Lifetime sum still includes the evicted samples.
	if h.Sum != 4010 {
		t.Errorf("lifetime sum = %v, want 4010", h.Sum)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	r := NewRegistry()
	r.ObserveDuration("d", 1500*time.Nanosecond) // 1.5 µs
	h := r.Snapshot().Histograms["d"]
	if h.Count != 1 || h.P50 != 1.5 || h.P99 != 1.5 || h.Min != 1.5 || h.Max != 1.5 {
		t.Errorf("single-sample snapshot = %+v", h)
	}
}

func TestUptimeUsesInjectedClock(t *testing.T) {
	base := time.Unix(1_700_000_000, 0)
	r := NewRegistry(WithClock(fakeClock(base, time.Second)))
	// Construction read the clock once; each Uptime advances it one more
	// second.
	if up := r.Uptime(); up != time.Second {
		t.Errorf("uptime = %v, want 1s", up)
	}
	if up := r.Uptime(); up != 2*time.Second {
		t.Errorf("uptime = %v, want 2s", up)
	}
	s := r.Snapshot()
	if s.UptimeSeconds != 3 {
		t.Errorf("snapshot uptime = %v, want 3", s.UptimeSeconds)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	r := NewRegistry()
	r.Inc("c")
	r.SetGauge("g", 1)
	r.Observe("h", 1)
	s := r.Snapshot()
	s.Counters["c"] = 99
	s.Gauges["g"] = 99
	if r.Counter("c") != 1 || r.Gauge("g") != 1 {
		t.Error("mutating a snapshot leaked into the registry")
	}
	r.Observe("h", 2)
	if s.Histograms["h"].Count != 1 {
		t.Error("snapshot histogram tracked later observations")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry(WithClock(fakeClock(time.Unix(0, 0), time.Second)))
	r.Add("rpn_transitions_total", 7)
	r.SetGauge("rpn_level", 3)
	r.Observe("rpn_restore_latency_us", 9.5)
	r.Observe("rpn_restore_latency_us", 10.5)
	var b strings.Builder
	writePrometheus(&b, r.Snapshot())
	out := b.String()

	for _, want := range []string{
		"# TYPE rpn_transitions_total counter\nrpn_transitions_total 7\n",
		"# TYPE rpn_level gauge\nrpn_level 3\n",
		"# TYPE rpn_restore_latency_us summary\n",
		"rpn_restore_latency_us{quantile=\"0.5\"} 10\n",
		"rpn_restore_latency_us_sum 20\n",
		"rpn_restore_latency_us_count 2\n",
		"rpn_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q in:\n%s", want, out)
		}
	}
	// Deterministic: two renders of the same snapshot are identical.
	var b2 strings.Builder
	writePrometheus(&b2, r.Snapshot())
	// (the clock advanced, so zero the uptime lines before comparing)
	strip := func(s string) string {
		lines := strings.Split(s, "\n")
		var kept []string
		for _, l := range lines {
			if !strings.HasPrefix(l, "rpn_uptime_seconds ") {
				kept = append(kept, l)
			}
		}
		return strings.Join(kept, "\n")
	}
	if strip(b.String()) != strip(b2.String()) {
		t.Error("prometheus rendering is not deterministic")
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"rpn_level":        "rpn_level",
		"bad name/µs":      "bad_name__s",
		"0starts_with_num": "_starts_with_num",
		"":                 "_",
		"a:b_c9":           "a:b_c9",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHooksTransitionAndTick(t *testing.T) {
	r := NewRegistry()
	h := NewHooks(r)
	h.SetLevels([]float64{0, 0.8, 0.9, 0.95})

	h.ObserveTransition(0, 3, 11787, 12*time.Microsecond)
	h.ObserveTransition(3, 0, 11787, 9*time.Microsecond) // emergency restore
	s := r.Snapshot()
	if s.Counters[MetricTransitions] != 2 {
		t.Errorf("transitions = %d, want 2", s.Counters[MetricTransitions])
	}
	if s.Counters[MetricRestores] != 1 {
		t.Errorf("restores = %d, want 1", s.Counters[MetricRestores])
	}
	if s.Counters[MetricWeightsMoved] != 2*11787 {
		t.Errorf("weights moved = %d", s.Counters[MetricWeightsMoved])
	}
	if got := s.Histograms[MetricRestoreLatency]; got.Count != 1 || got.Max != 9 {
		t.Errorf("restore latency histogram = %+v", got)
	}
	if got := s.Histograms[MetricTransitionLatency]; got.Count != 2 {
		t.Errorf("transition latency count = %d, want 2", got.Count)
	}
	if s.Gauges[MetricLevel] != 0 || s.Gauges[MetricSparsity] != 0 {
		t.Errorf("level/sparsity gauges = %v/%v, want 0/0 after restore",
			s.Gauges[MetricLevel], s.Gauges[MetricSparsity])
	}

	h.ObserveTick(0, 3, true, false, false, 5*time.Microsecond)
	h.ObserveTick(1, 3, false, true, true, 4*time.Microsecond)
	s = r.Snapshot()
	if s.Counters[MetricGovernorTicks] != 2 {
		t.Errorf("ticks = %d, want 2", s.Counters[MetricGovernorTicks])
	}
	if s.Counters[MetricLevelSwitches] != 1 || s.Counters[MetricContractClamps] != 1 ||
		s.Counters[MetricContractViolations] != 1 {
		t.Errorf("switch/clamp/violation = %d/%d/%d, want 1/1/1",
			s.Counters[MetricLevelSwitches], s.Counters[MetricContractClamps],
			s.Counters[MetricContractViolations])
	}
	if s.Counters[ResidencyMetric(3)] != 2 {
		t.Errorf("L3 residency = %d, want 2", s.Counters[ResidencyMetric(3)])
	}
	// Out-of-library levels still count (defensively).
	h.ObserveTick(2, 9, false, false, false, time.Microsecond)
	if r.Counter(ResidencyMetric(9)) != 1 {
		t.Error("out-of-range level residency not counted")
	}

	h.ObserveFrame(100 * time.Microsecond)
	if r.Counter(MetricFrames) != 1 {
		t.Error("frame counter not incremented")
	}
}
