package telemetry

import (
	"fmt"
	"sync"
	"time"
)

// Well-known metric names written by Hooks. The /healthz summary and the
// operator dashboards key on these.
const (
	// MetricLevel is a gauge holding the active pruning level index.
	MetricLevel = "rpn_level"
	// MetricSparsity is a gauge holding the active level's weight sparsity.
	MetricSparsity = "rpn_sparsity"
	// MetricTransitions counts completed level transitions (any pair).
	MetricTransitions = "rpn_transitions_total"
	// MetricRestores counts transitions that landed on the dense level L0 —
	// the safety-critical RestoreFull path.
	MetricRestores = "rpn_restores_total"
	// MetricWeightsMoved counts individual weights written by transitions.
	MetricWeightsMoved = "rpn_weights_moved_total"
	// MetricTransitionLatency is the per-transition latency histogram (µs).
	MetricTransitionLatency = "rpn_transition_latency_us"
	// MetricLayerTransitionLatency is the base name of the per-parameter
	// transition-latency histograms (µs). Each series carries a
	// layer="<parameter>" label (see LabelLayer); together they decompose
	// MetricTransitionLatency and localize a slow delta application to the
	// parameter whose weights it was writing.
	MetricLayerTransitionLatency = "rpn_layer_transition_latency_us"
	// LabelLayer is the label key of the per-layer latency series: the
	// parameter name the delta application wrote (e.g. "conv1.w").
	LabelLayer = "layer"
	// LabelModel is the label key identifying a model instance in a fleet
	// deployment. Hooks constructed with NewHooks(reg, Label{LabelModel,
	// name}) stamp it onto every series they write.
	LabelModel = "model"
	// MetricRestoreLatency is the latency histogram (µs) of transitions to
	// L0 only — the paper's headline restore-latency quantity (F3), live.
	MetricRestoreLatency = "rpn_restore_latency_us"
	// MetricGovernorTicks counts governor control ticks.
	MetricGovernorTicks = "rpn_governor_ticks_total"
	// MetricGovernorTickLatency is the per-tick decision+execute latency
	// histogram (µs).
	MetricGovernorTickLatency = "rpn_governor_tick_us"
	// MetricLevelSwitches counts ticks on which the governor changed level.
	MetricLevelSwitches = "rpn_level_switches_total"
	// MetricContractClamps counts ticks on which contract enforcement
	// overrode the policy's proposal.
	MetricContractClamps = "rpn_contract_clamps_total"
	// MetricContractViolations counts ticks the governor logged a contract
	// violation (even the dense level missed the active floor).
	MetricContractViolations = "rpn_contract_violations_total"
	// MetricFrames counts perception frames classified.
	MetricFrames = "rpn_frames_total"
	// MetricFrameLatency is the per-frame detection latency histogram (µs),
	// including lock wait in the concurrent pipeline.
	MetricFrameLatency = "rpn_frame_latency_us"
	// MetricFleetRebalances counts fleet budget-governor rebalance passes.
	MetricFleetRebalances = "rpn_fleet_rebalances_total"
	// MetricFleetRetargets counts per-instance level retargets issued by
	// rebalance passes (0 on a pass that left every instance in place).
	MetricFleetRetargets = "rpn_fleet_retargets_total"
	// MetricFleetEnergy is a gauge holding the fleet's aggregate calibrated
	// per-inference energy (mJ) after the last rebalance.
	MetricFleetEnergy = "rpn_fleet_energy_mj"
	// MetricFleetLatency is a gauge holding the fleet's aggregate calibrated
	// per-inference latency (ms) after the last rebalance.
	MetricFleetLatency = "rpn_fleet_latency_ms"
	// MetricFleetOverBudget is a gauge that is 1 while the fleet cannot meet
	// its budget even at every instance's deepest admissible level, else 0.
	MetricFleetOverBudget = "rpn_fleet_over_budget"
	// MetricFleetRebalanceLatency is the rebalance-pass latency histogram (µs).
	MetricFleetRebalanceLatency = "rpn_fleet_rebalance_latency_us"
	// MetricFleetBatches counts fused batched forward passes the dispatcher's
	// batch planner executed (groups of ≥ 2 frames sharing a checkpoint and
	// level that ran as one matmul per layer).
	MetricFleetBatches = "rpn_fleet_batches_total"
	// MetricFleetBatchFrames counts frames served by fused batched passes;
	// MetricFrames minus this is the per-instance traffic.
	MetricFleetBatchFrames = "rpn_fleet_batch_frames_total"
	// MetricFleetBatchFallbacks counts frames the planner grouped but then
	// kicked back to the per-instance path at execution time — a level
	// transition or armed fault injector invalidated the group snapshot, or
	// the fused pass itself failed.
	MetricFleetBatchFallbacks = "rpn_fleet_batch_fallbacks_total"
	// MetricFleetBatchSize is the histogram of fused group sizes (frames per
	// batched pass).
	MetricFleetBatchSize = "rpn_fleet_batch_size"
	// MetricFleetBatchLatency is the fused-pass latency histogram (µs),
	// covering lock acquisition, the batched forward, and per-frame decides.
	MetricFleetBatchLatency = "rpn_fleet_batch_latency_us"
	// MetricFaultInjections counts fault events an injection harness
	// (internal/fault) actually fired, one series per fault kind (see
	// LabelFault). Zero outside chaos drills.
	MetricFaultInjections = "rpn_fault_injections_total"
	// LabelFault is the label key of the fault-injection counter: the fault
	// spec kind that fired (e.g. "nan-weights").
	LabelFault = "fault"
	// MetricHealthState is a gauge holding the instance's health state as an
	// integer: 0 Healthy, 1 Degraded, 2 Probation, 3 Quarantined (see
	// HealthStateName).
	MetricHealthState = "rpn_health_state"
	// MetricHealthTransitions counts health state-machine transitions
	// (excluding the initial registration at Healthy).
	MetricHealthTransitions = "rpn_health_transitions_total"
	// MetricHealthFaults counts fault observations the health monitor
	// attributed to the instance, one series per reason (see LabelReason).
	MetricHealthFaults = "rpn_health_faults_total"
	// LabelReason is the label key of the health-fault counter: what the
	// watchdog saw ("nan", "deadline", "error", "panic").
	LabelReason = "reason"
	// MetricHealthRestores counts emergency restores to the dense level L0
	// the health monitor forced in response to a NaN output or a deadline
	// breach, before degrading the instance.
	MetricHealthRestores = "rpn_health_emergency_restores_total"
	// MetricStoreResidentBytes is a gauge holding the instance's private
	// (unshared) weight bytes: non-prunable copies plus any prunable buffers
	// materialized by copy-on-write. A fleet clone starts near zero and
	// grows only as transitions touch parameters.
	MetricStoreResidentBytes = "rpn_store_resident_bytes"
	// MetricStoreSharedRatio is a gauge in [0, 1]: the fraction of the
	// instance's total weight+store bytes served by the shared checkpoint
	// store. 1 means fully aliased; it decays as copy-on-write privatizes
	// buffers (Privatize drops it to the non-prunable share).
	MetricStoreSharedRatio = "rpn_store_shared_ratio"
	// MetricStoreChecksumVerifications counts per-level integrity-checksum
	// verifications run on the restore path (one per level crossed toward
	// dense), passes and failures alike.
	MetricStoreChecksumVerifications = "rpn_store_checksum_verifications_total"
	// MetricStoreChecksumFailures counts checksum verifications that failed —
	// the restore was refused and the recovery store is corrupt. Any movement
	// is an incident: the corruption is unrecoverable by design and the
	// watchdog quarantines the instance permanently.
	MetricStoreChecksumFailures = "rpn_store_checksum_failures_total"
	// MetricIngestAccepted counts frames the ingestion front end accepted
	// into a criticality queue, one series per safety class (see
	// LabelClass). Every accepted frame is owed a result — served, shed, or
	// flushed at drain — so accepted = served + shed always balances.
	MetricIngestAccepted = "rpn_ingest_accepted_total"
	// MetricIngestRejected counts frames and connections the front end
	// refused at admission, one series per typed reason (see LabelReason:
	// "rate-limited", "conn-limit", "draining", "bad-frame", "too-large",
	// "protocol"). Rejected work never entered a queue and is not owed a
	// result beyond the reject itself.
	MetricIngestRejected = "rpn_ingest_rejected_total"
	// MetricIngestShed counts accepted frames the load-shedder dropped to
	// make room under overload, one series per safety class. The shedder
	// evicts lowest class first, so movement in a high class means the
	// queue is saturated with even higher classes — an incident signal.
	MetricIngestShed = "rpn_ingest_shed_total"
	// MetricIngestBackpressure counts advisory RETRY-AFTER frames sent to
	// clients because queue depth crossed the high watermark.
	MetricIngestBackpressure = "rpn_ingest_backpressure_total"
	// MetricIngestConnections is a gauge holding currently admitted
	// connections across all tenants.
	MetricIngestConnections = "rpn_ingest_connections"
	// MetricIngestQueueDepth is a gauge holding the criticality queue's
	// depth, one series per safety class (see LabelClass).
	MetricIngestQueueDepth = "rpn_ingest_queue_depth"
	// MetricIngestEnqueueLatency is the histogram (µs) of the time an
	// accepted frame spends between arrival and landing in its criticality
	// queue — admission, rate-limit, and shed decisions included. Staying
	// bounded under overload is the sheds-before-blocking property the
	// bench gate enforces.
	MetricIngestEnqueueLatency = "rpn_ingest_enqueue_latency_us"
	// MetricIngestFrameLatency is the histogram (µs) of accepted frames'
	// full ingest round-trip: arrival to result written back (queue wait
	// and inference included). Shed frames are excluded — their turnaround
	// is the shedder's, not the pipeline's.
	MetricIngestFrameLatency = "rpn_ingest_frame_latency_us"
	// LabelClass is the label key of the per-criticality ingest series: the
	// frame's safety class name ("nominal", "elevated", "critical",
	// "emergency").
	LabelClass = "class"
	// metricResidencyPrefix prefixes the per-level residency-tick counters:
	// rpn_level_residency_ticks_L0, _L1, …
	metricResidencyPrefix = "rpn_level_residency_ticks_L"
)

// Health state codes written to the MetricHealthState gauge. They mirror
// internal/health's state machine without telemetry importing it (telemetry
// stays a stdlib-only leaf); internal/health asserts the two stay aligned.
const (
	// HealthHealthy: the instance serves frames normally.
	HealthHealthy = 0
	// HealthDegraded: recent faults; still serving, under scrutiny.
	HealthDegraded = 1
	// HealthProbation: re-admitted after quarantine, must stay clean.
	HealthProbation = 2
	// HealthQuarantined: fenced off — no frames, no governor ticks.
	HealthQuarantined = 3
)

// HealthStateName renders a MetricHealthState gauge value for human
// surfaces (the /healthz document, log lines, operator tables).
func HealthStateName(state int) string {
	switch state {
	case HealthHealthy:
		return "healthy"
	case HealthDegraded:
		return "degraded"
	case HealthProbation:
		return "probation"
	case HealthQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("unknown(%d)", state)
}

// hookFamilies lists every fixed metric family Hooks writes, so NewHooks
// can pre-render the labeled series identifiers once. Per-level residency
// counters and per-layer histograms are rendered separately (SetLevels and
// the layer cache).
var hookFamilies = []string{
	MetricLevel,
	MetricSparsity,
	MetricTransitions,
	MetricRestores,
	MetricWeightsMoved,
	MetricTransitionLatency,
	MetricRestoreLatency,
	MetricGovernorTicks,
	MetricGovernorTickLatency,
	MetricLevelSwitches,
	MetricContractClamps,
	MetricContractViolations,
	MetricFrames,
	MetricFrameLatency,
	MetricFleetRebalances,
	MetricFleetRetargets,
	MetricFleetEnergy,
	MetricFleetLatency,
	MetricFleetOverBudget,
	MetricFleetRebalanceLatency,
	MetricFleetBatches,
	MetricFleetBatchFrames,
	MetricFleetBatchFallbacks,
	MetricFleetBatchSize,
	MetricFleetBatchLatency,
	MetricHealthState,
	MetricHealthTransitions,
	MetricHealthRestores,
	MetricStoreResidentBytes,
	MetricStoreSharedRatio,
	MetricStoreChecksumVerifications,
	MetricStoreChecksumFailures,
	MetricIngestBackpressure,
	MetricIngestConnections,
	MetricIngestEnqueueLatency,
	MetricIngestFrameLatency,
}

// Hooks adapts a Registry to the observer seams of the stack. Its method
// set structurally satisfies core.TransitionObserver (including the
// optional core.ParamTransitionObserver and core.StoreObserver
// extensions), governor.TickObserver,
// perception.FrameObserver, fleet.RebalanceObserver and
// fleet.BatchObserver without this package importing any of them, keeping
// telemetry a stdlib-only leaf.
//
// A Hooks may carry constant base labels (NewHooks(reg, Label{LabelModel,
// "car0"})): every series it writes is then rendered with those labels, so
// N instances sharing one Registry stay distinguishable per series. Series
// identifiers are pre-rendered at construction; the observation hot paths
// never build label strings.
//
// Configure (SetLevels) before sharing a Hooks across goroutines; after
// that every method is safe for concurrent use (the registry serializes).
type Hooks struct {
	reg *Registry
	// base is the constant label set stamped onto every series. Immutable
	// after NewHooks.
	base []Label
	// names maps each fixed metric family to its pre-rendered series
	// identifier under base. Immutable after NewHooks.
	names map[string]string
	// sparsities[i] is level i's weight sparsity, for the MetricSparsity
	// gauge. Immutable after SetLevels.
	sparsities []float64
	// residency[i] is the precomputed per-level residency series, so the
	// per-tick path does not format strings.
	residency []string
	// dynMu guards dynSeries, the lazily built cache of dynamically labeled
	// series identifiers (per-layer histograms, per-kind fault counters,
	// per-reason health-fault counters), so steady-state observations don't
	// re-render labels.
	dynMu     sync.Mutex
	dynSeries map[string]string
}

// NewHooks wires a Hooks to the registry. Optional base labels (typically
// one Label{LabelModel, "<instance>"}) are stamped onto every series the
// Hooks writes; with no labels the series are the flat metric names.
func NewHooks(reg *Registry, base ...Label) *Hooks {
	h := &Hooks{reg: reg}
	for _, l := range base {
		if l.Key != "" {
			h.base = append(h.base, l)
		}
	}
	h.names = make(map[string]string, len(hookFamilies))
	for _, f := range hookFamilies {
		h.names[f] = Series(f, h.base...)
	}
	return h
}

// name returns the pre-rendered series identifier for a fixed family,
// falling back to rendering for names outside the precomputed set.
func (h *Hooks) name(family string) string {
	if s, ok := h.names[family]; ok {
		return s
	}
	return Series(family, h.base...)
}

// SetLevels records the level library's sparsities (index = level id) and
// precomputes the residency counter names. Call once, at wiring time,
// before the stack starts ticking.
func (h *Hooks) SetLevels(sparsities []float64) {
	h.sparsities = append([]float64(nil), sparsities...)
	h.residency = make([]string, len(sparsities))
	for i := range h.residency {
		h.residency[i] = Series(residencyMetric(i), h.base...)
	}
	if len(sparsities) > 0 {
		h.reg.SetGauge(h.name(MetricLevel), 0)
		h.reg.SetGauge(h.name(MetricSparsity), sparsities[0])
	}
}

// residencyMetric returns the residency counter name for a level index.
func residencyMetric(level int) string {
	return fmt.Sprintf("%s%d", metricResidencyPrefix, level)
}

// ResidencyMetric returns the residency-tick counter name for a level, for
// tests and dashboards.
func ResidencyMetric(level int) string { return residencyMetric(level) }

// ObserveTransition implements the core.TransitionObserver seam: called by
// ReversibleModel.ApplyLevel after every completed level change with the
// number of weights written and the wall-clock latency.
func (h *Hooks) ObserveTransition(from, to int, weights int64, elapsed time.Duration) {
	h.reg.Inc(h.name(MetricTransitions))
	h.reg.Add(h.name(MetricWeightsMoved), weights)
	h.reg.ObserveDuration(h.name(MetricTransitionLatency), elapsed)
	if to == 0 {
		h.reg.Inc(h.name(MetricRestores))
		h.reg.ObserveDuration(h.name(MetricRestoreLatency), elapsed)
	}
	h.reg.SetGauge(h.name(MetricLevel), float64(to))
	if to >= 0 && to < len(h.sparsities) {
		h.reg.SetGauge(h.name(MetricSparsity), h.sparsities[to])
	}
}

// ObserveParamTransition implements the core.ParamTransitionObserver
// extension seam: called by ReversibleModel.ApplyLevel once per delta
// application (one parameter at one level step) with the weights written
// and the wall-clock latency of just that parameter's writes. The sample
// lands in the layer-labeled series
// rpn_layer_transition_latency_us{layer="<param>"} (plus any base labels).
func (h *Hooks) ObserveParamTransition(from, to int, param string, weights int64, elapsed time.Duration) {
	h.reg.ObserveDuration(h.dynamicSeries(MetricLayerTransitionLatency, LabelLayer, param), elapsed)
}

// dynamicSeries returns (rendering and caching on first sight) the labeled
// series identifier for a family carrying one runtime-valued label on top
// of the base labels.
func (h *Hooks) dynamicSeries(family, labelKey, labelValue string) string {
	cacheKey := family + "\x00" + labelValue
	h.dynMu.Lock()
	defer h.dynMu.Unlock()
	s, ok := h.dynSeries[cacheKey]
	if !ok {
		if h.dynSeries == nil {
			h.dynSeries = make(map[string]string)
		}
		ls := make([]Label, 0, len(h.base)+1)
		ls = append(ls, h.base...)
		ls = append(ls, Label{Key: labelKey, Value: labelValue})
		s = Series(family, ls...)
		h.dynSeries[cacheKey] = s
	}
	return s
}

// LayerSeries returns the rendered per-layer latency series identifier for
// a parameter name, for tests and dashboards:
// rpn_layer_transition_latency_us{layer="<param>"}.
func LayerSeries(param string) string {
	return Series(MetricLayerTransitionLatency, Label{Key: LabelLayer, Value: param})
}

// ObserveTick implements the governor.TickObserver seam: called once per
// control tick with the applied level and the decision outcome flags.
func (h *Hooks) ObserveTick(tick, level int, switched, clamped, violated bool, elapsed time.Duration) {
	h.reg.Inc(h.name(MetricGovernorTicks))
	h.reg.ObserveDuration(h.name(MetricGovernorTickLatency), elapsed)
	if switched {
		h.reg.Inc(h.name(MetricLevelSwitches))
	}
	if clamped {
		h.reg.Inc(h.name(MetricContractClamps))
	}
	if violated {
		h.reg.Inc(h.name(MetricContractViolations))
	}
	if level >= 0 && level < len(h.residency) {
		h.reg.Inc(h.residency[level])
	} else {
		h.reg.Inc(Series(residencyMetric(level), h.base...))
	}
}

// ObserveFrame implements the perception.FrameObserver seam: called per
// classified frame with the end-to-end detection latency.
func (h *Hooks) ObserveFrame(elapsed time.Duration) {
	h.reg.Inc(h.name(MetricFrames))
	h.reg.ObserveDuration(h.name(MetricFrameLatency), elapsed)
}

// ObserveRebalance implements the fleet.RebalanceObserver seam: called
// after every fleet budget-governor rebalance pass with the number of
// instance retargets issued, the resulting aggregate energy/latency, the
// over-budget flag, and the pass's wall-clock latency. Fleet-level series
// are typically written through a flat (unlabeled) Hooks while the
// per-instance series go through model-labeled ones.
func (h *Hooks) ObserveRebalance(retargets int, energyMJ, latencyMS float64, overBudget bool, elapsed time.Duration) {
	h.reg.Inc(h.name(MetricFleetRebalances))
	h.reg.Add(h.name(MetricFleetRetargets), int64(retargets))
	h.reg.SetGauge(h.name(MetricFleetEnergy), energyMJ)
	h.reg.SetGauge(h.name(MetricFleetLatency), latencyMS)
	over := 0.0
	if overBudget {
		over = 1
	}
	h.reg.SetGauge(h.name(MetricFleetOverBudget), over)
	h.reg.ObserveDuration(h.name(MetricFleetRebalanceLatency), elapsed)
}

// ObserveBatch implements half of the fleet.BatchObserver seam: called by
// the dispatcher's batch planner after every fused batched pass with the
// number of frames it served and the pass's wall-clock latency (lock wait
// included).
func (h *Hooks) ObserveBatch(size int, elapsed time.Duration) {
	h.reg.Inc(h.name(MetricFleetBatches))
	h.reg.Add(h.name(MetricFleetBatchFrames), int64(size))
	h.reg.Observe(h.name(MetricFleetBatchSize), float64(size))
	h.reg.ObserveDuration(h.name(MetricFleetBatchLatency), elapsed)
}

// ObserveBatchFallback implements the other half of the fleet.BatchObserver
// seam: called with the number of frames a planning window sent down the
// per-instance path after they had been grouped — stragglers whose
// instance transitioned mid-flight, armed-injector members, or a whole
// group whose fused pass failed.
func (h *Hooks) ObserveBatchFallback(frames int) {
	h.reg.Add(h.name(MetricFleetBatchFallbacks), int64(frames))
}

// ObserveStoreCheck implements half of the core.StoreObserver seam: called
// by ReversibleModel.ApplyLevel for every per-level integrity-checksum
// verification on the restore path, with whether the level's displaced
// values matched their sealed checksum. A failure means the restore was
// refused — rpn_store_checksum_failures_total moving is an incident signal.
func (h *Hooks) ObserveStoreCheck(ok bool) {
	h.reg.Inc(h.name(MetricStoreChecksumVerifications))
	if !ok {
		h.reg.Inc(h.name(MetricStoreChecksumFailures))
	}
}

// ObserveStoreResidency implements the other half of the core.StoreObserver
// seam: called whenever the instance's copy-on-write residency changes (a
// buffer materialized, Privatize ran, the observer was installed) with the
// private byte count and the shared fraction of its total footprint.
func (h *Hooks) ObserveStoreResidency(privateBytes int64, sharedRatio float64) {
	h.reg.SetGauge(h.name(MetricStoreResidentBytes), float64(privateBytes))
	h.reg.SetGauge(h.name(MetricStoreSharedRatio), sharedRatio)
}

// ObserveFaultInjection implements the fault.Observer seam: called by an
// injection harness every time a fault actually fired, with the fault spec
// kind. The counter stays at zero outside chaos drills — any movement in
// production is itself an incident signal.
func (h *Hooks) ObserveFaultInjection(kind string) {
	h.reg.Inc(h.dynamicSeries(MetricFaultInjections, LabelFault, kind))
}

// ObserveHealthFault implements half of the health.Observer seam: called by
// the health monitor for every fault it attributes to the instance, with
// the watchdog's reason ("nan", "deadline", "error", "panic") and whether
// the monitor forced an emergency restore to L0 in response.
func (h *Hooks) ObserveHealthFault(reason string, restored bool) {
	h.reg.Inc(h.dynamicSeries(MetricHealthFaults, LabelReason, reason))
	if restored {
		h.reg.Inc(h.name(MetricHealthRestores))
	}
}

// ObserveIngestAccepted implements part of the ingest.Observer seam:
// called by the front end when a frame is accepted into its criticality
// queue, with the frame's safety class name.
func (h *Hooks) ObserveIngestAccepted(class string) {
	h.reg.Inc(h.dynamicSeries(MetricIngestAccepted, LabelClass, class))
}

// ObserveIngestRejected implements part of the ingest.Observer seam:
// called when admission refuses a frame or connection, with the typed
// reject reason.
func (h *Hooks) ObserveIngestRejected(reason string) {
	h.reg.Inc(h.dynamicSeries(MetricIngestRejected, LabelReason, reason))
}

// ObserveIngestShed implements part of the ingest.Observer seam: called
// when the load-shedder drops an accepted frame under overload, with the
// victim's safety class name.
func (h *Hooks) ObserveIngestShed(class string) {
	h.reg.Inc(h.dynamicSeries(MetricIngestShed, LabelClass, class))
}

// ObserveIngestBackpressure implements part of the ingest.Observer seam:
// called for every advisory RETRY-AFTER the server pushes to a client.
func (h *Hooks) ObserveIngestBackpressure() {
	h.reg.Inc(h.name(MetricIngestBackpressure))
}

// SetIngestConnections implements part of the ingest.Observer seam: the
// currently admitted connection count across tenants.
func (h *Hooks) SetIngestConnections(n int) {
	h.reg.SetGauge(h.name(MetricIngestConnections), float64(n))
}

// SetIngestQueueDepth implements part of the ingest.Observer seam: one
// criticality class's current queue depth.
func (h *Hooks) SetIngestQueueDepth(class string, depth int) {
	h.reg.SetGauge(h.dynamicSeries(MetricIngestQueueDepth, LabelClass, class), float64(depth))
}

// ObserveIngestEnqueue implements part of the ingest.Observer seam: the
// arrival-to-queued latency of one accepted frame.
func (h *Hooks) ObserveIngestEnqueue(elapsed time.Duration) {
	h.reg.ObserveDuration(h.name(MetricIngestEnqueueLatency), elapsed)
}

// ObserveIngestFrameLatency implements part of the ingest.Observer seam:
// one accepted frame's full ingest round-trip, arrival to result written.
func (h *Hooks) ObserveIngestFrameLatency(elapsed time.Duration) {
	h.reg.ObserveDuration(h.name(MetricIngestFrameLatency), elapsed)
}

// ObserveHealthState implements the other half of the health.Observer seam:
// called on registration (from == to == Healthy) and after every state
// change with the integer state codes (see HealthStateName). The gauge
// always tracks the latest state; the transition counter ignores the
// registration no-op.
func (h *Hooks) ObserveHealthState(from, to int) {
	h.reg.SetGauge(h.name(MetricHealthState), float64(to))
	if from != to {
		h.reg.Inc(h.name(MetricHealthTransitions))
	}
}
