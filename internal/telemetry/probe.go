package telemetry

import "time"

// LatencyProbe answers "what frame latency did this model instance
// actually measure lately?" from the registry's time windows. It
// structurally satisfies fleet.LatencySource, closing the loop between the
// telemetry the perception seams record and the budget governor's
// retargeting decisions (fleet.WithMeasuredLatency): the governor plans
// with observed per-instance latency instead of calibrated platform
// numbers.
type LatencyProbe struct {
	reg      *Registry
	lookback time.Duration
}

// DefaultProbeLookback bounds how far back the probe averages when the
// caller passes a non-positive lookback.
const DefaultProbeLookback = 30 * time.Second

// NewLatencyProbe builds a probe over reg's rpn_frame_latency_us windows,
// averaging across the trailing lookback.
func NewLatencyProbe(reg *Registry, lookback time.Duration) *LatencyProbe {
	if lookback <= 0 {
		lookback = DefaultProbeLookback
	}
	return &LatencyProbe{reg: reg, lookback: lookback}
}

// MeasuredLatencyMS returns the mean measured frame latency of the named
// model instance over the probe's lookback, in milliseconds. ok is false
// when no window holds a sample for that instance (a fresh registry, an
// idle instance, or a lookback past retention) — callers fall back to
// calibrated numbers.
func (p *LatencyProbe) MeasuredLatencyMS(model string) (float64, bool) {
	series := Series(MetricFrameLatency, Label{Key: LabelModel, Value: model})
	res := p.reg.WindowQuery(WindowQueryOptions{Lookback: p.lookback, Series: series})
	ws, ok := res[series]
	if !ok {
		return 0, false
	}
	var count int64
	var sum float64
	for _, pt := range ws.Points {
		count += pt.Count
		sum += pt.Sum
	}
	if count == 0 {
		return 0, false
	}
	return sum / float64(count) / 1e3, true // µs → ms
}
