package otlp

import "time"

// now is the package clock seam. Export timestamps flow through it so
// tests can pin datapoint times to a fake clock; the detrand analyzer
// rejects bare time.Now() in this package to keep it that way.
var now = time.Now
