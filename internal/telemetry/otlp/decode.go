package otlp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Request is the decoded form of an ExportMetricsServiceRequest — the
// subset of the OTLP metrics schema this package emits, flattened across
// resource/scope boundaries. It exists for the in-process fake collectors
// the end-to-end tests run simdrive against; a production deployment
// points the Exporter at a real collector and never decodes.
type Request struct {
	// ResourceAttrs holds every resource attribute with a string value
	// (e.g. "service.name"), merged across resources.
	ResourceAttrs map[string]string
	// Metrics lists every metric in request order.
	Metrics []Metric
}

// Metric is one decoded metric family.
type Metric struct {
	// Name is the metric name (e.g. "rpn_restores_total").
	Name string
	// Unit is the OTLP unit string ("1", "us", "s").
	Unit string
	// Type is the decoded oneof arm: "sum", "gauge", "histogram", or
	// "summary".
	Type string
	// Points holds the datapoints, one per label set.
	Points []Point
}

// Point is one decoded datapoint of any supported type; only the fields
// of the owning metric's type are meaningful.
type Point struct {
	// Attrs holds the datapoint attributes with string values — the
	// registry labels (e.g. layer="conv1.w").
	Attrs map[string]string
	// StartUnixNano and TimeUnixNano are the datapoint timestamps.
	StartUnixNano, TimeUnixNano uint64
	// AsInt is a Sum point's cumulative value.
	AsInt int64
	// AsDouble is a Gauge point's value.
	AsDouble float64
	// Count and Sum are a Summary or Histogram point's lifetime
	// aggregates.
	Count uint64
	Sum   float64
	// Quantiles are a Summary point's quantile values in wire order.
	Quantiles []Quantile
	// BucketCounts and Bounds are a Histogram point's packed bucket
	// counts and explicit bounds (len(BucketCounts) == len(Bounds)+1 when
	// present).
	BucketCounts []uint64
	Bounds       []float64
	// Min and Max are a Histogram point's population extremes; HasMinMax
	// reports whether the point carried them.
	Min, Max  float64
	HasMinMax bool
}

// Quantile is one ValueAtQuantile pair.
type Quantile struct {
	Q, V float64
}

// Metric returns the first metric with the given name (nil if absent).
func (r *Request) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// reader is a bounds-checked protobuf wire reader over one message's
// bytes. Every length is validated against the remaining input before
// any slice or allocation, so malformed input fails with an error rather
// than a panic or an attacker-sized allocation — FuzzDecodeRequest
// hammers exactly this property.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) done() bool { return r.pos >= len(r.b) }

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("otlp: bad varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// field reads one field tag.
func (r *reader) field() (field, wire int, err error) {
	tag, err := r.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if tag>>3 == 0 || tag>>3 > math.MaxInt32 {
		return 0, 0, fmt.Errorf("otlp: bad field number %d", tag>>3)
	}
	return int(tag >> 3), int(tag & 7), nil
}

// bytes reads one length-delimited payload.
func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.pos) {
		return nil, fmt.Errorf("otlp: length %d exceeds remaining %d bytes", n, len(r.b)-r.pos)
	}
	out := r.b[r.pos : r.pos+int(n)]
	r.pos += int(n)
	return out, nil
}

func (r *reader) fixed64() (uint64, error) {
	if len(r.b)-r.pos < 8 {
		return 0, fmt.Errorf("otlp: truncated fixed64 at offset %d", r.pos)
	}
	v := binary.LittleEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

// skip consumes one field of the given wire type.
func (r *reader) skip(wire int) error {
	switch wire {
	case wireVarint:
		_, err := r.uvarint()
		return err
	case wireFixed64:
		_, err := r.fixed64()
		return err
	case wireBytes:
		_, err := r.bytes()
		return err
	case wireFixed32:
		if len(r.b)-r.pos < 4 {
			return fmt.Errorf("otlp: truncated fixed32 at offset %d", r.pos)
		}
		r.pos += 4
		return nil
	default:
		return fmt.Errorf("otlp: unsupported wire type %d", wire)
	}
}

// Decode parses an ExportMetricsServiceRequest. Unknown fields are
// skipped, so a request from a richer encoder still decodes its known
// subset; structurally invalid input returns an error.
func Decode(data []byte) (*Request, error) {
	req := &Request{ResourceAttrs: map[string]string{}}
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return nil, err
		}
		if field == fieldResourceMetrics && wire == wireBytes {
			msg, err := r.bytes()
			if err != nil {
				return nil, err
			}
			if err := decodeResourceMetrics(msg, req); err != nil {
				return nil, err
			}
			continue
		}
		if err := r.skip(wire); err != nil {
			return nil, err
		}
	}
	return req, nil
}

func decodeResourceMetrics(data []byte, req *Request) error {
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return err
		}
		if wire != wireBytes {
			if err := r.skip(wire); err != nil {
				return err
			}
			continue
		}
		msg, err := r.bytes()
		if err != nil {
			return err
		}
		switch field {
		case fieldResource:
			if err := decodeResource(msg, req); err != nil {
				return err
			}
		case fieldScopeMetrics:
			if err := decodeScopeMetrics(msg, req); err != nil {
				return err
			}
		}
	}
	return nil
}

func decodeResource(data []byte, req *Request) error {
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return err
		}
		if field == fieldResourceAttributes && wire == wireBytes {
			msg, err := r.bytes()
			if err != nil {
				return err
			}
			k, v, err := decodeKeyValue(msg)
			if err != nil {
				return err
			}
			req.ResourceAttrs[k] = v
			continue
		}
		if err := r.skip(wire); err != nil {
			return err
		}
	}
	return nil
}

// decodeKeyValue returns a KeyValue's key and its AnyValue's string arm
// (empty for non-string values, which this encoder never emits).
func decodeKeyValue(data []byte) (key, value string, err error) {
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return "", "", err
		}
		if wire != wireBytes {
			if err := r.skip(wire); err != nil {
				return "", "", err
			}
			continue
		}
		msg, err := r.bytes()
		if err != nil {
			return "", "", err
		}
		switch field {
		case fieldKVKey:
			key = string(msg)
		case fieldKVValue:
			av := &reader{b: msg}
			for !av.done() {
				f, w, err := av.field()
				if err != nil {
					return "", "", err
				}
				if f == fieldAnyString && w == wireBytes {
					s, err := av.bytes()
					if err != nil {
						return "", "", err
					}
					value = string(s)
					continue
				}
				if err := av.skip(w); err != nil {
					return "", "", err
				}
			}
		}
	}
	return key, value, nil
}

func decodeScopeMetrics(data []byte, req *Request) error {
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return err
		}
		if field == fieldScopeMetric && wire == wireBytes {
			msg, err := r.bytes()
			if err != nil {
				return err
			}
			m, err := decodeMetric(msg)
			if err != nil {
				return err
			}
			req.Metrics = append(req.Metrics, m)
			continue
		}
		if err := r.skip(wire); err != nil {
			return err
		}
	}
	return nil
}

func decodeMetric(data []byte) (Metric, error) {
	var m Metric
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return m, err
		}
		if wire != wireBytes {
			if err := r.skip(wire); err != nil {
				return m, err
			}
			continue
		}
		msg, err := r.bytes()
		if err != nil {
			return m, err
		}
		switch field {
		case fieldMetricName:
			m.Name = string(msg)
		case fieldMetricUnit:
			m.Unit = string(msg)
		case fieldMetricSum:
			m.Type = "sum"
			if err := decodePoints(msg, &m, decodeNumberPoint); err != nil {
				return m, err
			}
		case fieldMetricGauge:
			m.Type = "gauge"
			if err := decodePoints(msg, &m, decodeNumberPoint); err != nil {
				return m, err
			}
		case fieldMetricHistogram:
			m.Type = "histogram"
			if err := decodePoints(msg, &m, decodeHistogramPoint); err != nil {
				return m, err
			}
		case fieldMetricSummary:
			m.Type = "summary"
			if err := decodePoints(msg, &m, decodeSummaryPoint); err != nil {
				return m, err
			}
		}
	}
	return m, nil
}

// decodePoints walks a Gauge/Sum/Summary message and decodes each
// repeated data_points entry with the given point decoder.
func decodePoints(data []byte, m *Metric, decodePoint func([]byte) (Point, error)) error {
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return err
		}
		if field == fieldDataPoints && wire == wireBytes {
			msg, err := r.bytes()
			if err != nil {
				return err
			}
			p, err := decodePoint(msg)
			if err != nil {
				return err
			}
			m.Points = append(m.Points, p)
			continue
		}
		if err := r.skip(wire); err != nil {
			return err
		}
	}
	return nil
}

func decodeNumberPoint(data []byte) (Point, error) {
	p := Point{Attrs: map[string]string{}}
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return p, err
		}
		switch {
		case field == fieldNDPStartTime && wire == wireFixed64:
			if p.StartUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldNDPTime && wire == wireFixed64:
			if p.TimeUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldNDPAsDouble && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.AsDouble = math.Float64frombits(v)
		case field == fieldNDPAsInt && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.AsInt = int64(v)
		case field == fieldNDPAttrs && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			k, v, err := decodeKeyValue(msg)
			if err != nil {
				return p, err
			}
			p.Attrs[k] = v
		default:
			if err := r.skip(wire); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

func decodeSummaryPoint(data []byte) (Point, error) {
	p := Point{Attrs: map[string]string{}}
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return p, err
		}
		switch {
		case field == fieldSDPStartTime && wire == wireFixed64:
			if p.StartUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldSDPTime && wire == wireFixed64:
			if p.TimeUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldSDPCount && wire == wireFixed64:
			if p.Count, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldSDPSum && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.Sum = math.Float64frombits(v)
		case field == fieldSDPQuantiles && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			q, err := decodeQuantile(msg)
			if err != nil {
				return p, err
			}
			p.Quantiles = append(p.Quantiles, q)
		case field == fieldSDPAttrs && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			k, v, err := decodeKeyValue(msg)
			if err != nil {
				return p, err
			}
			p.Attrs[k] = v
		default:
			if err := r.skip(wire); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

func decodeHistogramPoint(data []byte) (Point, error) {
	p := Point{Attrs: map[string]string{}}
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return p, err
		}
		switch {
		case field == fieldHDPStartTime && wire == wireFixed64:
			if p.StartUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldHDPTime && wire == wireFixed64:
			if p.TimeUnixNano, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldHDPCount && wire == wireFixed64:
			if p.Count, err = r.fixed64(); err != nil {
				return p, err
			}
		case field == fieldHDPSum && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.Sum = math.Float64frombits(v)
		case field == fieldHDPBucketCounts && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			counts, err := decodePackedFixed64(msg)
			if err != nil {
				return p, err
			}
			p.BucketCounts = counts
		case field == fieldHDPBounds && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			bits, err := decodePackedFixed64(msg)
			if err != nil {
				return p, err
			}
			p.Bounds = make([]float64, len(bits))
			for i, b := range bits {
				p.Bounds[i] = math.Float64frombits(b)
			}
		case field == fieldHDPMin && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.Min = math.Float64frombits(v)
			p.HasMinMax = true
		case field == fieldHDPMax && wire == wireFixed64:
			v, err := r.fixed64()
			if err != nil {
				return p, err
			}
			p.Max = math.Float64frombits(v)
			p.HasMinMax = true
		case field == fieldHDPAttrs && wire == wireBytes:
			msg, err := r.bytes()
			if err != nil {
				return p, err
			}
			k, v, err := decodeKeyValue(msg)
			if err != nil {
				return p, err
			}
			p.Attrs[k] = v
		default:
			if err := r.skip(wire); err != nil {
				return p, err
			}
		}
	}
	return p, nil
}

// decodePackedFixed64 splits a packed repeated fixed64 payload into its
// little-endian 8-byte lanes. The payload length must be a multiple of 8.
func decodePackedFixed64(data []byte) ([]uint64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("otlp: packed fixed64 payload length %d not a multiple of 8", len(data))
	}
	out := make([]uint64, len(data)/8)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(data[i*8:])
	}
	return out, nil
}

func decodeQuantile(data []byte) (Quantile, error) {
	var q Quantile
	r := &reader{b: data}
	for !r.done() {
		field, wire, err := r.field()
		if err != nil {
			return q, err
		}
		if wire == wireFixed64 && (field == fieldVAQQuantile || field == fieldVAQValue) {
			v, err := r.fixed64()
			if err != nil {
				return q, err
			}
			if field == fieldVAQQuantile {
				q.Q = math.Float64frombits(v)
			} else {
				q.V = math.Float64frombits(v)
			}
			continue
		}
		if err := r.skip(wire); err != nil {
			return q, err
		}
	}
	return q, nil
}
