package otlp

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Exporter periodically snapshots a telemetry.Registry, encodes the
// snapshot as an OTLP ExportMetricsServiceRequest, and POSTs it to a
// collector endpoint over HTTP. Bodies are gzip-compressed by default
// (Content-Encoding: gzip), with an automatic one-shot plain re-send and a
// permanent fallback for collectors that reject compressed payloads (see
// WithCompression). Failed exports retry with exponential
// backoff up to a bounded attempt count; the loop goroutine is joined
// through Shutdown, which also performs one final flush so metrics from
// runs shorter than the export interval still arrive.
//
// All methods are safe for concurrent use. Construct with NewExporter;
// the zero value is not usable.
type Exporter struct {
	reg      *telemetry.Registry
	url      string
	service  string
	interval time.Duration
	client   *http.Client
	attempts int
	backoff  time.Duration
	compress bool
	// jitter picks the actual wait before a retry given the exponential
	// ceiling for this attempt. The default is full jitter — uniform in
	// [0, ceiling) — so a fleet of exporters knocked over by the same
	// collector outage does not retry in lockstep.
	jitter func(max time.Duration) time.Duration

	// gzOff latches on once a collector proves it cannot take gzip (it
	// rejected a compressed body but accepted the same bytes plain), so
	// every later export skips compression without re-probing.
	gzOff atomic.Bool

	done chan struct{}
	stop sync.Once
	wg   sync.WaitGroup

	mu    sync.Mutex
	stats Stats
}

// Stats counts the exporter's delivery outcomes.
type Stats struct {
	// Exports is the number of requests a collector acknowledged (2xx).
	Exports int64
	// Failures is the number of export rounds abandoned after exhausting
	// retries or hitting a non-retryable response.
	Failures int64
	// Retries is the number of individual failed attempts that were
	// retried.
	Retries int64
	// PlainFallbacks is the number of rounds in which a collector rejected
	// a gzip-compressed body and the exporter re-sent it uncompressed.
	PlainFallbacks int64
}

// ExporterOption configures NewExporter.
type ExporterOption func(*Exporter)

// WithInterval sets the export period (default 10s). Values below 1ms
// are ignored.
func WithInterval(d time.Duration) ExporterOption {
	return func(e *Exporter) {
		if d >= time.Millisecond {
			e.interval = d
		}
	}
}

// WithServiceName sets the resource service.name attribute (default
// "revprune").
func WithServiceName(s string) ExporterOption {
	return func(e *Exporter) {
		if s != "" {
			e.service = s
		}
	}
}

// WithHTTPClient replaces the HTTP client (default: 5s total timeout).
func WithHTTPClient(c *http.Client) ExporterOption {
	return func(e *Exporter) {
		if c != nil {
			e.client = c
		}
	}
}

// WithRetry sets the per-export attempt budget (≥1) and the initial
// backoff, which doubles per retry (default: 3 attempts, 250ms).
func WithRetry(attempts int, backoff time.Duration) ExporterOption {
	return func(e *Exporter) {
		if attempts >= 1 {
			e.attempts = attempts
		}
		if backoff > 0 {
			e.backoff = backoff
		}
	}
}

// WithJitter replaces the retry-backoff jitter: f receives the
// exponential ceiling for the attempt (initial backoff << attempt) and
// returns the wait to use. The default is full jitter over a source
// seeded at construction; tests inject a deterministic picker. nil is
// ignored.
func WithJitter(f func(max time.Duration) time.Duration) ExporterOption {
	return func(e *Exporter) {
		if f != nil {
			e.jitter = f
		}
	}
}

// WithCompression enables or disables gzip request bodies (default: on).
// With compression on, a collector that rejects a compressed body with a
// non-retryable 4xx gets the same payload re-sent uncompressed in the same
// round; once the plain send succeeds, compression stays off for the rest
// of the exporter's lifetime.
func WithCompression(enabled bool) ExporterOption {
	return func(e *Exporter) { e.compress = enabled }
}

// NewExporter validates and normalizes the endpoint, then starts the
// export loop. Accepted endpoint forms: "host:port", "http://host:port",
// or a full URL; a missing scheme defaults to http and a missing path to
// the OTLP/HTTP metrics path /v1/metrics.
func NewExporter(reg *telemetry.Registry, endpoint string, opts ...ExporterOption) (*Exporter, error) {
	if reg == nil {
		return nil, fmt.Errorf("otlp: NewExporter with nil registry")
	}
	u, err := normalizeEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	e := &Exporter{
		reg:      reg,
		url:      u,
		service:  "revprune",
		interval: 10 * time.Second,
		client:   &http.Client{Timeout: 5 * time.Second},
		attempts: 3,
		backoff:  250 * time.Millisecond,
		compress: true,
		jitter:   defaultJitter(),
		done:     make(chan struct{}),
	}
	for _, o := range opts {
		o(e)
	}
	e.wg.Add(1)
	go e.loop()
	return e, nil
}

// normalizeEndpoint turns the accepted endpoint forms into the full
// collector URL.
func normalizeEndpoint(endpoint string) (string, error) {
	if endpoint == "" {
		return "", fmt.Errorf("otlp: empty endpoint")
	}
	if !strings.Contains(endpoint, "://") {
		endpoint = "http://" + endpoint
	}
	u, err := url.Parse(endpoint)
	if err != nil {
		return "", fmt.Errorf("otlp: bad endpoint %q: %w", endpoint, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("otlp: endpoint scheme %q not supported (want http or https)", u.Scheme)
	}
	if u.Host == "" {
		return "", fmt.Errorf("otlp: endpoint %q has no host", endpoint)
	}
	if u.Path == "" || u.Path == "/" {
		u.Path = "/v1/metrics"
	}
	return u.String(), nil
}

// URL returns the full collector URL exports POST to.
func (e *Exporter) URL() string { return e.url }

// Stats returns a copy of the delivery counters.
func (e *Exporter) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// loop is the periodic export goroutine, joined by Shutdown via the done
// channel and the WaitGroup.
func (e *Exporter) loop() {
	defer e.wg.Done()
	t := time.NewTicker(e.interval)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			// Periodic exports abort their backoff waits on shutdown; the
			// final flush in Shutdown re-delivers anything they missed.
			_ = e.export(context.Background(), e.done) //lint:allow(errdrop) periodic export failures surface through the dropped-batch counter and Shutdown's final flush
		}
	}
}

// Shutdown stops the export loop, waits for it to exit, and performs one
// final context-bound flush of the registry. It returns the context's
// error if the deadline expires first (the loop may then still be
// draining an in-flight POST, bounded by the HTTP client timeout), or
// the final flush's delivery error.
func (e *Exporter) Shutdown(ctx context.Context) error {
	e.stop.Do(func() { close(e.done) })
	joined := make(chan struct{})
	go func() {
		e.wg.Wait()
		close(joined)
	}()
	select {
	case <-joined:
	case <-ctx.Done():
		return fmt.Errorf("otlp: shutdown: %w", ctx.Err())
	}
	return e.export(ctx, nil)
}

// export performs one snapshot→encode→POST round with retries. abort,
// when non-nil, cancels backoff waits early (the loop passes the done
// channel); ctx bounds the HTTP requests and backoff waits.
func (e *Exporter) export(ctx context.Context, abort <-chan struct{}) error {
	snap := e.reg.Snapshot()
	ts := now()
	start := ts.Add(-time.Duration(snap.UptimeSeconds * float64(time.Second)))
	body := Encode(snap, e.service, start, ts)
	useGzip := e.compress && !e.gzOff.Load()
	var gz []byte
	if useGzip {
		gz = gzipBytes(body)
	}
	for attempt := 0; ; attempt++ {
		send, gzipped := body, false
		if useGzip {
			send, gzipped = gz, true
		}
		retryable, status, err := e.post(ctx, send, gzipped)
		if err == nil {
			e.count(func(s *Stats) { s.Exports++ })
			return nil
		}
		if gzipped && !retryable && status >= 400 && status < 500 {
			// The collector rejected the compressed body outright (e.g. 415
			// Unsupported Media Type on a gzip-blind endpoint): re-send the
			// same payload plain in this round. A plain success latches
			// compression off for the exporter's lifetime.
			e.count(func(s *Stats) { s.PlainFallbacks++ })
			useGzip = false
			retryable, _, err = e.post(ctx, body, false)
			if err == nil {
				e.gzOff.Store(true)
				e.count(func(s *Stats) { s.Exports++ })
				return nil
			}
		}
		if !retryable || attempt+1 >= e.attempts {
			e.count(func(s *Stats) { s.Failures++ })
			return err
		}
		e.count(func(s *Stats) { s.Retries++ })
		wait := e.jitter(e.backoff << attempt)
		select {
		case <-abort:
			e.count(func(s *Stats) { s.Failures++ })
			return err
		case <-ctx.Done():
			e.count(func(s *Stats) { s.Failures++ })
			return fmt.Errorf("otlp: export canceled: %w", ctx.Err())
		case <-time.After(wait):
		}
	}
}

// post delivers one encoded request, gzip-compressed when gzipped is set.
// retryable reports whether a failure is worth retrying: network errors,
// 429, and 5xx are; other non-2xx statuses (a misconfigured endpoint) are
// not. status is the HTTP status code (0 on network errors).
func (e *Exporter) post(ctx context.Context, body []byte, gzipped bool) (retryable bool, status int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, e.url, bytes.NewReader(body))
	if err != nil {
		return false, 0, fmt.Errorf("otlp: build request: %w", err)
	}
	req.Header.Set("Content-Type", "application/x-protobuf")
	if gzipped {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := e.client.Do(req)
	if err != nil {
		return true, 0, fmt.Errorf("otlp: post %s: %w", e.url, err)
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16)) //lint:allow(errdrop) body drain exists only to enable connection reuse; a short read changes nothing
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return false, resp.StatusCode, nil
	}
	retryable = resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500
	return retryable, resp.StatusCode, fmt.Errorf("otlp: collector %s returned %s", e.url, resp.Status)
}

// defaultJitter builds the full-jitter backoff picker over its own
// mutex-guarded source, seeded once at construction (the seam keeps the
// package's determinism discipline: no unseeded global randomness).
func defaultJitter() func(max time.Duration) time.Duration {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(now().UnixNano()))
	return func(max time.Duration) time.Duration {
		if max <= 0 {
			return 0
		}
		mu.Lock()
		defer mu.Unlock()
		return time.Duration(rng.Int63n(int64(max)))
	}
}

// gzipBytes compresses one request body. Writes to the in-memory buffer
// cannot fail.
func gzipBytes(b []byte) []byte {
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	_, _ = zw.Write(b) //lint:allow(errdrop) gzip over an in-memory buffer cannot fail; Close below is covered by the same reasoning
	_ = zw.Close()     //lint:allow(errdrop) flush to an in-memory buffer cannot fail
	return buf.Bytes()
}

// count applies one mutation to the stats under the lock.
func (e *Exporter) count(f func(*Stats)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f(&e.stats)
}
