// Package otlp exports the telemetry registry to OpenTelemetry
// collectors over OTLP/HTTP, using a vendored, dependency-free protobuf
// encoder — the wire format of ExportMetricsServiceRequest
// (opentelemetry.proto.collector.metrics.v1) is hand-rolled here so the
// stack keeps its no-external-deps rule while still speaking the fleet
// standard.
//
// Encode maps one telemetry.Snapshot onto OTLP metrics: monotonic
// counters become cumulative Sums, gauges become Gauges, latency
// histogram families (*_us) become cumulative Histogram datapoints
// carrying the registry's lifetime exponential-bucket distribution
// (bucket_counts/explicit_bounds from the window-tier sketch, plus
// min/max), and the remaining histogram families become Summaries
// carrying the window quantiles plus lifetime sum/count — the same shape
// the Prometheus endpoint exposes. Labeled registry series
// (telemetry.Series keys, e.g. the per-layer
// rpn_layer_transition_latency_us{layer=...} histograms) become multiple
// datapoints of one metric, the labels carried as datapoint attributes.
//
// Exporter wraps Encode in a periodic push loop: snapshot → encode →
// POST to <endpoint>/v1/metrics (Content-Type application/x-protobuf)
// with bounded retry and exponential backoff, and a context-bound
// Shutdown that stops the loop and performs one final flush so short
// runs still deliver their metrics. Decode is the matching minimal
// decoder, used by the in-process fake collectors in the end-to-end
// tests and hardened by fuzzing (FuzzDecodeRequest) against arbitrary
// input.
package otlp

import (
	"encoding/binary"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/window"
)

// Proto field numbers of the OTLP metrics schema (opentelemetry-proto
// v1). Only the subset this encoder emits is listed; names follow the
// .proto definitions.
const (
	// ExportMetricsServiceRequest
	fieldResourceMetrics = 1
	// ResourceMetrics
	fieldResource     = 1
	fieldScopeMetrics = 2
	// Resource
	fieldResourceAttributes = 1
	// KeyValue
	fieldKVKey   = 1
	fieldKVValue = 2
	// AnyValue (oneof)
	fieldAnyString = 1
	// ScopeMetrics
	fieldScope        = 1
	fieldScopeMetric  = 2
	fieldScopeNameKey = 1 // InstrumentationScope.name
	fieldScopeVersion = 2 // InstrumentationScope.version
	// Metric
	fieldMetricName      = 1
	fieldMetricUnit      = 3
	fieldMetricGauge     = 5
	fieldMetricSum       = 7
	fieldMetricHistogram = 9
	fieldMetricSummary   = 11
	// Gauge / Sum / Summary / Histogram
	fieldDataPoints     = 1
	fieldSumTemporality = 2
	fieldSumMonotonic   = 3
	// HistogramDataPoint
	fieldHDPStartTime    = 2
	fieldHDPTime         = 3
	fieldHDPCount        = 4
	fieldHDPSum          = 5
	fieldHDPBucketCounts = 6 // repeated fixed64, packed
	fieldHDPBounds       = 7 // repeated double, packed
	fieldHDPAttrs        = 9
	fieldHDPMin          = 11
	fieldHDPMax          = 12
	// NumberDataPoint
	fieldNDPStartTime = 2
	fieldNDPTime      = 3
	fieldNDPAsDouble  = 4
	fieldNDPAsInt     = 6
	fieldNDPAttrs     = 7
	// SummaryDataPoint
	fieldSDPStartTime = 2
	fieldSDPTime      = 3
	fieldSDPCount     = 4
	fieldSDPSum       = 5
	fieldSDPQuantiles = 6
	fieldSDPAttrs     = 7
	// SummaryDataPoint.ValueAtQuantile
	fieldVAQQuantile = 1
	fieldVAQValue    = 2

	// temporalityCumulative is AGGREGATION_TEMPORALITY_CUMULATIVE: the
	// registry's counters never reset.
	temporalityCumulative = 2
)

// Protobuf wire types.
const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
	wireFixed32 = 5
)

// enc is a minimal protobuf writer. Nested messages are built in child
// buffers and embedded length-prefixed; the export path runs off the hot
// path (one encode per export interval), so the extra copies are fine.
type enc struct {
	buf []byte
}

func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *enc) tag(field, wire int) {
	e.uvarint(uint64(field)<<3 | uint64(wire))
}

func (e *enc) bytesField(field int, b []byte) {
	e.tag(field, wireBytes)
	e.uvarint(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

func (e *enc) stringField(field int, s string) {
	e.tag(field, wireBytes)
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *enc) doubleField(field int, v float64) {
	e.tag(field, wireFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

func (e *enc) fixed64Field(field int, v uint64) {
	e.tag(field, wireFixed64)
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *enc) varintField(field int, v uint64) {
	e.tag(field, wireVarint)
	e.uvarint(v)
}

func (e *enc) boolField(field int, v bool) {
	var b uint64
	if v {
		b = 1
	}
	e.varintField(field, b)
}

// keyValue encodes a KeyValue{key, AnyValue{string_value}} message.
func keyValue(key, value string) []byte {
	var av enc
	av.stringField(fieldAnyString, value)
	var kv enc
	kv.stringField(fieldKVKey, key)
	kv.bytesField(fieldKVValue, av.buf)
	return kv.buf
}

// attrs encodes one label set as repeated KeyValue attribute fields into
// the datapoint buffer.
func attrs(e *enc, field int, labels []telemetry.Label) {
	for _, l := range labels {
		e.bytesField(field, keyValue(l.Key, l.Value))
	}
}

// family is one metric family: every registry series sharing a base name,
// in deterministic (raw-key) order.
type family struct {
	name   string
	series []oneSeries
}

type oneSeries struct {
	key    string
	labels []telemetry.Label
}

// groupFamilies decomposes the keys of a metric map into label-aware
// families sorted by base name. A key that does not parse as a series is
// one flat metric named by the whole key.
func groupFamilies[V any](m map[string]V) []family {
	byName := map[string]*family{}
	for key := range m {
		name, labels, ok := telemetry.ParseSeries(key)
		if !ok {
			name, labels = key, nil
		}
		f := byName[name]
		if f == nil {
			f = &family{name: name}
			byName[name] = f
		}
		f.series = append(f.series, oneSeries{key: key, labels: labels})
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]family, 0, len(names))
	for _, n := range names {
		f := byName[n]
		sort.Slice(f.series, func(i, j int) bool { return f.series[i].key < f.series[j].key })
		out = append(out, *f)
	}
	return out
}

// unitFor derives the OTLP unit string from the repo's metric naming
// convention: *_us histograms are microseconds, *_seconds gauges are
// seconds, everything else is a dimensionless count.
func unitFor(name string) string {
	switch {
	case strings.HasSuffix(name, "_us"):
		return "us"
	case strings.HasSuffix(name, "_seconds"):
		return "s"
	default:
		return "1"
	}
}

// ScopeName identifies this encoder as the instrumentation scope of every
// exported metric.
const ScopeName = "repro/internal/telemetry"

// Encode serializes one registry snapshot as an OTLP
// ExportMetricsServiceRequest protobuf message. service becomes the
// resource's service.name attribute; start is the cumulative-counter
// start timestamp (the registry's birth) and ts the observation
// timestamp. The output is deterministic for a given snapshot: families
// sort by base name, datapoints by series key.
func Encode(snap telemetry.Snapshot, service string, start, ts time.Time) []byte {
	startNano := uint64(start.UnixNano())
	tsNano := uint64(ts.UnixNano())

	var metrics [][]byte

	// Synthesized uptime gauge, mirroring the Prometheus endpoint.
	{
		var dp enc
		dp.fixed64Field(fieldNDPStartTime, startNano)
		dp.fixed64Field(fieldNDPTime, tsNano)
		dp.doubleField(fieldNDPAsDouble, snap.UptimeSeconds)
		var g enc
		g.bytesField(fieldDataPoints, dp.buf)
		metrics = append(metrics, metricMsg("rpn_uptime_seconds", "s", fieldMetricGauge, g.buf))
	}

	for _, f := range groupFamilies(snap.Counters) {
		var sum enc
		for _, s := range f.series {
			var dp enc
			dp.fixed64Field(fieldNDPStartTime, startNano)
			dp.fixed64Field(fieldNDPTime, tsNano)
			dp.fixed64Field(fieldNDPAsInt, uint64(snap.Counters[s.key]))
			attrs(&dp, fieldNDPAttrs, s.labels)
			sum.bytesField(fieldDataPoints, dp.buf)
		}
		sum.varintField(fieldSumTemporality, temporalityCumulative)
		sum.boolField(fieldSumMonotonic, true)
		metrics = append(metrics, metricMsg(f.name, unitFor(f.name), fieldMetricSum, sum.buf))
	}

	for _, f := range groupFamilies(snap.Gauges) {
		var g enc
		for _, s := range f.series {
			var dp enc
			dp.fixed64Field(fieldNDPStartTime, startNano)
			dp.fixed64Field(fieldNDPTime, tsNano)
			dp.doubleField(fieldNDPAsDouble, snap.Gauges[s.key])
			attrs(&dp, fieldNDPAttrs, s.labels)
			g.bytesField(fieldDataPoints, dp.buf)
		}
		metrics = append(metrics, metricMsg(f.name, unitFor(f.name), fieldMetricGauge, g.buf))
	}

	for _, f := range groupFamilies(snap.Histograms) {
		// Latency families (*_us) carry their lifetime exponential-bucket
		// distribution, so they export as real OTLP Histogram datapoints;
		// other histogram families keep the Summary shape (window
		// quantiles plus lifetime sum/count), mirroring Prometheus.
		if unitFor(f.name) == "us" {
			var hg enc
			for _, s := range f.series {
				h := snap.Histograms[s.key]
				var dp enc
				dp.fixed64Field(fieldHDPStartTime, startNano)
				dp.fixed64Field(fieldHDPTime, tsNano)
				dp.fixed64Field(fieldHDPCount, uint64(h.Count))
				dp.doubleField(fieldHDPSum, h.Sum)
				if len(h.Buckets) > 0 {
					var counts enc
					for _, c := range h.Buckets {
						counts.buf = binary.LittleEndian.AppendUint64(counts.buf, c)
					}
					dp.bytesField(fieldHDPBucketCounts, counts.buf)
					var bounds enc
					for _, b := range window.Bounds() {
						bounds.buf = binary.LittleEndian.AppendUint64(bounds.buf, math.Float64bits(b))
					}
					dp.bytesField(fieldHDPBounds, bounds.buf)
				}
				attrs(&dp, fieldHDPAttrs, s.labels)
				if h.Count > 0 {
					dp.doubleField(fieldHDPMin, h.LifetimeMin)
					dp.doubleField(fieldHDPMax, h.LifetimeMax)
				}
				hg.bytesField(fieldDataPoints, dp.buf)
			}
			hg.varintField(fieldSumTemporality, temporalityCumulative)
			metrics = append(metrics, metricMsg(f.name, "us", fieldMetricHistogram, hg.buf))
			continue
		}
		var sm enc
		for _, s := range f.series {
			h := snap.Histograms[s.key]
			var dp enc
			dp.fixed64Field(fieldSDPStartTime, startNano)
			dp.fixed64Field(fieldSDPTime, tsNano)
			dp.fixed64Field(fieldSDPCount, uint64(h.Count))
			dp.doubleField(fieldSDPSum, h.Sum)
			for _, q := range [...]struct{ q, v float64 }{
				{0, h.Min}, {0.5, h.P50}, {0.9, h.P90}, {0.99, h.P99}, {1, h.Max},
			} {
				var vq enc
				vq.doubleField(fieldVAQQuantile, q.q)
				vq.doubleField(fieldVAQValue, q.v)
				dp.bytesField(fieldSDPQuantiles, vq.buf)
			}
			attrs(&dp, fieldSDPAttrs, s.labels)
			sm.bytesField(fieldDataPoints, dp.buf)
		}
		metrics = append(metrics, metricMsg(f.name, unitFor(f.name), fieldMetricSummary, sm.buf))
	}

	var scope enc
	scope.stringField(fieldScopeNameKey, ScopeName)
	var sm enc
	sm.bytesField(fieldScope, scope.buf)
	for _, m := range metrics {
		sm.bytesField(fieldScopeMetric, m)
	}

	var res enc
	res.bytesField(fieldResourceAttributes, keyValue("service.name", service))

	var rm enc
	rm.bytesField(fieldResource, res.buf)
	rm.bytesField(fieldScopeMetrics, sm.buf)

	var req enc
	req.bytesField(fieldResourceMetrics, rm.buf)
	return req.buf
}

// metricMsg encodes one Metric message with its oneof data field.
func metricMsg(name, unit string, dataField int, data []byte) []byte {
	var m enc
	m.stringField(fieldMetricName, name)
	m.stringField(fieldMetricUnit, unit)
	m.bytesField(dataField, data)
	return m.buf
}
