package otlp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// FuzzDecodeRequest hardens the vendored protobuf decoder against
// arbitrary input: whatever the bytes, Decode must return quickly with a
// request or an error — no panics, no attacker-controlled allocations
// (every declared length is validated against the remaining input).
// scripts/verify.sh runs this as a 5s coverage-guided smoke; the seed
// corpus covers the encoder's own output plus structural edge cases.
func FuzzDecodeRequest(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x0a, 0x00})       // empty ResourceMetrics
	f.Add([]byte{0x0a, 0xff, 0x01}) // length past end of input
	f.Add([]byte{0x78, 0x01})       // unknown field, varint
	reg := telemetry.NewRegistry()
	reg.Add("rpn_restores_total", 3)
	reg.SetGauge("rpn_level", 2)
	reg.Observe(telemetry.LayerSeries("conv1.w"), 17)
	full := Encode(reg.Snapshot(), "fuzz", time.Unix(0, 0), time.Unix(1, 0))
	f.Add(full)
	f.Add(full[:len(full)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := Decode(data)
		if err == nil && req == nil {
			t.Fatal("Decode returned nil request and nil error")
		}
		if req != nil {
			// Decoded metrics must be traversable without surprises.
			for _, m := range req.Metrics {
				_ = req.Metric(m.Name)
			}
		}
	})
}

// FuzzEncodeDecodeSnapshot drives the encoder with fuzzer-chosen metric
// names, label values, and sample values, and requires the decoder to
// recover the same families — the round-trip property that keeps the
// vendored writer and reader honest against each other.
func FuzzEncodeDecodeSnapshot(f *testing.F) {
	f.Add("rpn_x_total", "conv1.w", int64(5), 12.5)
	f.Add("m", "", int64(0), -1.0)
	f.Fuzz(func(t *testing.T, name, layer string, cv int64, hv float64) {
		if strings.Contains(name, "{") {
			// A brace inside a base name collides with the series grammar;
			// such keys degrade to flat metrics under a different name, so
			// the name-preserving property below does not apply.
			t.Skip()
		}
		reg := telemetry.NewRegistry()
		reg.Add(name, cv)
		reg.Observe(telemetry.Series(name+"_us", telemetry.Label{Key: "layer", Value: layer}), hv)
		data := Encode(reg.Snapshot(), "fuzz", time.Unix(0, 0), time.Unix(1, 0))
		req, err := Decode(data)
		if err != nil {
			t.Fatalf("decode of encoder output failed: %v", err)
		}
		if name != "" && cv >= 0 {
			m := req.Metric(name)
			if m == nil || len(m.Points) != 1 || m.Points[0].AsInt != cv {
				t.Fatalf("counter %q round trip = %+v, want %d", name, m, cv)
			}
		}
		s := req.Metric(name + "_us")
		if s == nil || len(s.Points) != 1 {
			t.Fatalf("latency family %q missing after round trip", name+"_us")
		}
		if s.Type != "histogram" {
			t.Fatalf("latency family %q decoded as %q, want histogram", name+"_us", s.Type)
		}
		if got := s.Points[0].Attrs["layer"]; got != layer {
			t.Fatalf("layer attr = %q, want %q", got, layer)
		}
	})
}
