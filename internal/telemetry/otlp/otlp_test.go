package otlp

import (
	"compress/gzip"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// sampleRegistry builds a registry with every metric shape the encoder
// handles: flat and labeled counters, a gauge, and flat and labeled
// histograms.
func sampleRegistry() *telemetry.Registry {
	reg := telemetry.NewRegistry()
	reg.Add("rpn_restores_total", 3)
	reg.Inc(telemetry.Series("rpn_labeled_total", telemetry.Label{Key: "layer", Value: "conv1.w"}))
	reg.Inc(telemetry.Series("rpn_labeled_total", telemetry.Label{Key: "layer", Value: "fc.w"}))
	reg.SetGauge("rpn_level", 3)
	for _, v := range []float64{10, 20, 30} {
		reg.Observe("rpn_transition_latency_us", v)
		reg.Observe(telemetry.LayerSeries("conv1.w"), v*2)
	}
	return reg
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	reg := sampleRegistry()
	start := time.Unix(1_700_000_000, 0)
	ts := start.Add(42 * time.Second)
	data := Encode(reg.Snapshot(), "test-svc", start, ts)
	req, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got := req.ResourceAttrs["service.name"]; got != "test-svc" {
		t.Errorf("service.name = %q, want test-svc", got)
	}

	up := req.Metric("rpn_uptime_seconds")
	if up == nil || up.Type != "gauge" || len(up.Points) != 1 {
		t.Fatalf("uptime metric = %+v, want one gauge point", up)
	}
	if up.Unit != "s" {
		t.Errorf("uptime unit = %q, want s", up.Unit)
	}

	c := req.Metric("rpn_restores_total")
	if c == nil || c.Type != "sum" || len(c.Points) != 1 {
		t.Fatalf("counter metric = %+v, want one sum point", c)
	}
	p := c.Points[0]
	if p.AsInt != 3 {
		t.Errorf("counter value = %d, want 3", p.AsInt)
	}
	if p.StartUnixNano != uint64(start.UnixNano()) || p.TimeUnixNano != uint64(ts.UnixNano()) {
		t.Errorf("timestamps = %d/%d, want %d/%d",
			p.StartUnixNano, p.TimeUnixNano, start.UnixNano(), ts.UnixNano())
	}

	// The labeled counter family must arrive as one metric with one
	// attribute-carrying datapoint per series.
	lc := req.Metric("rpn_labeled_total")
	if lc == nil || lc.Type != "sum" || len(lc.Points) != 2 {
		t.Fatalf("labeled counter = %+v, want two sum points", lc)
	}
	layers := map[string]bool{}
	for _, p := range lc.Points {
		if p.AsInt != 1 {
			t.Errorf("labeled counter point = %d, want 1", p.AsInt)
		}
		layers[p.Attrs["layer"]] = true
	}
	if !layers["conv1.w"] || !layers["fc.w"] {
		t.Errorf("labeled counter layers = %v, want conv1.w and fc.w", layers)
	}

	g := req.Metric("rpn_level")
	if g == nil || g.Type != "gauge" || len(g.Points) != 1 || g.Points[0].AsDouble != 3 {
		t.Fatalf("gauge metric = %+v, want one point of 3", g)
	}

	// *_latency_us families ride as Histogram datapoints: bucket counts
	// over the sketch's explicit bounds, plus exact count/sum/min/max.
	s := req.Metric("rpn_transition_latency_us")
	if s == nil || s.Type != "histogram" || len(s.Points) != 1 {
		t.Fatalf("latency metric = %+v, want one histogram point", s)
	}
	if s.Unit != "us" {
		t.Errorf("latency unit = %q, want us", s.Unit)
	}
	sp := s.Points[0]
	if sp.Count != 3 || sp.Sum != 60 {
		t.Errorf("histogram count/sum = %d/%v, want 3/60", sp.Count, sp.Sum)
	}
	if len(sp.BucketCounts) != len(sp.Bounds)+1 {
		t.Fatalf("bucket layout = %d counts / %d bounds, want counts = bounds+1",
			len(sp.BucketCounts), len(sp.Bounds))
	}
	var inBuckets uint64
	for _, c := range sp.BucketCounts {
		inBuckets += c
	}
	if inBuckets != sp.Count {
		t.Errorf("bucket counts total %d, want %d", inBuckets, sp.Count)
	}
	if !sp.HasMinMax || sp.Min != 10 || sp.Max != 30 {
		t.Errorf("histogram min/max = %v/%v (has=%v), want 10/30", sp.Min, sp.Max, sp.HasMinMax)
	}

	ls := req.Metric("rpn_layer_transition_latency_us")
	if ls == nil || ls.Type != "histogram" || len(ls.Points) != 1 {
		t.Fatalf("layer histogram = %+v, want one point", ls)
	}
	if got := ls.Points[0].Attrs["layer"]; got != "conv1.w" {
		t.Errorf("layer histogram attr = %q, want conv1.w", got)
	}
	if ls.Points[0].Sum != 120 {
		t.Errorf("layer histogram sum = %v, want 120", ls.Points[0].Sum)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	reg := sampleRegistry()
	snap := reg.Snapshot()
	start := time.Unix(1_700_000_000, 0)
	ts := start.Add(time.Second)
	a := Encode(snap, "svc", start, ts)
	b := Encode(snap, "svc", start, ts)
	if string(a) != string(b) {
		t.Error("Encode is not deterministic for the same snapshot")
	}
}

func TestNormalizeEndpoint(t *testing.T) {
	cases := []struct {
		in, want string
		wantErr  bool
	}{
		{in: "localhost:4318", want: "http://localhost:4318/v1/metrics"},
		{in: "http://collector:4318", want: "http://collector:4318/v1/metrics"},
		{in: "https://collector:4318/", want: "https://collector:4318/v1/metrics"},
		{in: "http://collector:4318/custom/path", want: "http://collector:4318/custom/path"},
		{in: "", wantErr: true},
		{in: "ftp://collector", wantErr: true},
		{in: "http://", wantErr: true},
	}
	for _, c := range cases {
		got, err := normalizeEndpoint(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("normalizeEndpoint(%q) = %q, want error", c.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("normalizeEndpoint(%q): %v", c.in, err)
		} else if got != c.want {
			t.Errorf("normalizeEndpoint(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// collector is an in-process fake OTLP collector: it decodes every POST
// (transparently gunzipping Content-Encoding: gzip bodies) and retains the
// requests.
type collector struct {
	mu       sync.Mutex
	requests []*Request
	// encodings records each decoded request's Content-Encoding header.
	encodings []string
	// status, when nonzero, is returned (with no decode) for the first
	// failN requests.
	status int
	failN  int
	seen   int
	// rejectGzip simulates a gzip-blind collector: compressed bodies get
	// 415 Unsupported Media Type.
	rejectGzip bool
}

func (c *collector) handler() http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.seen++
		if c.status != 0 && c.seen <= c.failN {
			http.Error(w, "unavailable", c.status)
			return
		}
		if ct := r.Header.Get("Content-Type"); ct != "application/x-protobuf" {
			http.Error(w, "bad content type "+ct, http.StatusBadRequest)
			return
		}
		enc := r.Header.Get("Content-Encoding")
		if c.rejectGzip && enc == "gzip" {
			http.Error(w, "gzip not supported", http.StatusUnsupportedMediaType)
			return
		}
		var src io.Reader = r.Body
		if enc == "gzip" {
			zr, err := gzip.NewReader(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			defer zr.Close()
			src = zr
		}
		body := make([]byte, 0, 1<<16)
		buf := make([]byte, 4096)
		for {
			n, err := src.Read(buf)
			body = append(body, buf[:n]...)
			if err != nil {
				break
			}
		}
		req, err := Decode(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.requests = append(c.requests, req)
		c.encodings = append(c.encodings, enc)
		w.WriteHeader(http.StatusOK)
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.requests)
}

func (c *collector) last() *Request {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.requests) == 0 {
		return nil
	}
	return c.requests[len(c.requests)-1]
}

func TestExporterPeriodicDelivery(t *testing.T) {
	col := &collector{}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := telemetry.NewRegistry()
	reg.Add("rpn_restores_total", 7)
	exp, err := NewExporter(reg, srv.URL, WithInterval(5*time.Millisecond), WithServiceName("periodic-test"))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for col.count() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if col.count() == 0 {
		t.Fatal("collector received no periodic exports")
	}
	req := col.last()
	if got := req.ResourceAttrs["service.name"]; got != "periodic-test" {
		t.Errorf("service.name = %q", got)
	}
	m := req.Metric("rpn_restores_total")
	if m == nil || len(m.Points) != 1 || m.Points[0].AsInt != 7 {
		t.Errorf("restores metric = %+v, want one point of 7", m)
	}
	if st := exp.Stats(); st.Exports < 1 {
		t.Errorf("stats = %+v, want ≥ 1 export", st)
	}
	// A second Shutdown is a no-op flush, not a panic.
	if err := exp.Shutdown(ctx); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
}

func TestExporterRetriesThenSucceeds(t *testing.T) {
	col := &collector{status: http.StatusServiceUnavailable, failN: 2}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := telemetry.NewRegistry()
	reg.Inc("rpn_transitions_total")
	exp, err := NewExporter(reg, srv.URL, WithInterval(time.Hour), WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after retries: %v", err)
	}
	if col.count() != 1 {
		t.Errorf("collector received %d requests, want 1", col.count())
	}
	st := exp.Stats()
	if st.Exports != 1 || st.Retries != 2 || st.Failures != 0 {
		t.Errorf("stats = %+v, want 1 export / 2 retries / 0 failures", st)
	}
}

func TestExporterNonRetryableStatus(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusForbidden)
	}))
	defer srv.Close()

	exp, err := NewExporter(telemetry.NewRegistry(), srv.URL, WithInterval(time.Hour), WithRetry(5, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = exp.Shutdown(ctx)
	if err == nil || !strings.Contains(err.Error(), "403") {
		t.Fatalf("Shutdown = %v, want 403 error", err)
	}
	st := exp.Stats()
	if st.Retries != 0 || st.Failures != 1 {
		t.Errorf("stats = %+v, want 0 retries / 1 failure (403 must not retry)", st)
	}
}

func TestExporterUnreachableCollector(t *testing.T) {
	// A port nothing listens on: connection refused is retryable, so the
	// flush exhausts its attempt budget and reports the failure.
	exp, err := NewExporter(telemetry.NewRegistry(), "127.0.0.1:1",
		WithInterval(time.Hour), WithRetry(2, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err == nil {
		t.Fatal("Shutdown against unreachable collector succeeded")
	}
	st := exp.Stats()
	if st.Retries != 1 || st.Failures != 1 {
		t.Errorf("stats = %+v, want 1 retry / 1 failure", st)
	}
}

// TestExporterGzipRoundTrip: compression is on by default, the collector
// transparently gunzips, and the decoded values survive the trip.
func TestExporterGzipRoundTrip(t *testing.T) {
	col := &collector{}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := telemetry.NewRegistry()
	reg.Add("rpn_restores_total", 7)
	exp, err := NewExporter(reg, srv.URL, WithInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if col.count() != 1 {
		t.Fatalf("collector received %d requests, want 1", col.count())
	}
	col.mu.Lock()
	enc := col.encodings[0]
	col.mu.Unlock()
	if enc != "gzip" {
		t.Fatalf("Content-Encoding = %q, want gzip", enc)
	}
	m := col.last().Metric("rpn_restores_total")
	if m == nil || len(m.Points) != 1 || m.Points[0].AsInt != 7 {
		t.Errorf("restores metric = %+v, want one point of 7", m)
	}
	if st := exp.Stats(); st.PlainFallbacks != 0 {
		t.Errorf("stats = %+v, want no plain fallbacks", st)
	}
}

// TestExporterHistogramRoundTrip drives a latency family through the full
// exporter → fake-collector pipeline and checks the Histogram datapoint
// arrives intact: bucket layout, totals, extremes, and the model label.
func TestExporterHistogramRoundTrip(t *testing.T) {
	col := &collector{}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := telemetry.NewRegistry()
	series := telemetry.Series(telemetry.MetricRestoreLatency,
		telemetry.Label{Key: telemetry.LabelModel, Value: "car0"})
	for _, v := range []float64{150, 450, 900, 1800} {
		reg.Observe(series, v)
	}
	exp, err := NewExporter(reg, srv.URL, WithInterval(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	m := col.last().Metric(telemetry.MetricRestoreLatency)
	if m == nil || m.Type != "histogram" || len(m.Points) != 1 {
		t.Fatalf("restore latency = %+v, want one histogram point", m)
	}
	p := m.Points[0]
	if p.Attrs[telemetry.LabelModel] != "car0" {
		t.Errorf("model attr = %q, want car0", p.Attrs[telemetry.LabelModel])
	}
	if p.Count != 4 || p.Sum != 3300 {
		t.Errorf("count/sum = %d/%v, want 4/3300", p.Count, p.Sum)
	}
	if !p.HasMinMax || p.Min != 150 || p.Max != 1800 {
		t.Errorf("min/max = %v/%v (has=%v), want 150/1800", p.Min, p.Max, p.HasMinMax)
	}
	if len(p.BucketCounts) != len(p.Bounds)+1 {
		t.Fatalf("bucket layout = %d counts / %d bounds", len(p.BucketCounts), len(p.Bounds))
	}
	// Bounds must ascend, and every sample must land in a bucket whose
	// (lower, upper] range actually contains it.
	var total uint64
	for i, c := range p.BucketCounts {
		total += c
		if i > 0 && i < len(p.Bounds) && p.Bounds[i] <= p.Bounds[i-1] {
			t.Fatalf("bounds not ascending at %d: %v <= %v", i, p.Bounds[i], p.Bounds[i-1])
		}
	}
	if total != p.Count {
		t.Errorf("bucket counts total %d, want %d", total, p.Count)
	}
	for _, v := range []float64{150, 450, 900, 1800} {
		idx := 0
		for idx < len(p.Bounds) && v > p.Bounds[idx] {
			idx++
		}
		if p.BucketCounts[idx] == 0 {
			t.Errorf("sample %v maps to empty bucket %d", v, idx)
		}
	}
}

// TestExporterCompressionDisabled: WithCompression(false) sends plain.
func TestExporterCompressionDisabled(t *testing.T) {
	col := &collector{}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	exp, err := NewExporter(telemetry.NewRegistry(), srv.URL,
		WithInterval(time.Hour), WithCompression(false))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	col.mu.Lock()
	enc := col.encodings[0]
	col.mu.Unlock()
	if enc != "" {
		t.Fatalf("Content-Encoding = %q, want empty", enc)
	}
}

// TestExporterGzipFallback: a gzip-blind collector (415 on compressed
// bodies) gets the payload re-sent plain in the same round, and the
// exporter latches compression off for all later rounds.
func TestExporterGzipFallback(t *testing.T) {
	col := &collector{rejectGzip: true}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	reg := telemetry.NewRegistry()
	reg.Add("rpn_transitions_total", 5)
	exp, err := NewExporter(reg, srv.URL, WithInterval(time.Hour), WithRetry(3, time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown (fallback round): %v", err)
	}
	st := exp.Stats()
	if st.Exports != 1 || st.PlainFallbacks != 1 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 1 export / 1 plain fallback / 0 failures", st)
	}
	if col.count() != 1 {
		t.Fatalf("collector decoded %d requests, want 1", col.count())
	}
	m := col.last().Metric("rpn_transitions_total")
	if m == nil || len(m.Points) != 1 || m.Points[0].AsInt != 5 {
		t.Errorf("transitions metric = %+v, want one point of 5", m)
	}

	// Second round: compression stays off — no 415 probe, one plain POST.
	seenBefore := func() int {
		col.mu.Lock()
		defer col.mu.Unlock()
		return col.seen
	}()
	if err := exp.export(ctx, nil); err != nil {
		t.Fatalf("second export: %v", err)
	}
	col.mu.Lock()
	seenAfter, encodings := col.seen, append([]string(nil), col.encodings...)
	col.mu.Unlock()
	if seenAfter != seenBefore+1 {
		t.Errorf("second round hit the collector %d times, want 1 (gzip latch)", seenAfter-seenBefore)
	}
	for _, enc := range encodings {
		if enc != "" {
			t.Errorf("decoded request had Content-Encoding %q, want plain", enc)
		}
	}
	if st := exp.Stats(); st.PlainFallbacks != 1 {
		t.Errorf("stats after latch = %+v, want still 1 plain fallback", st)
	}
}

func TestExporterNilRegistry(t *testing.T) {
	if _, err := NewExporter(nil, "localhost:4318"); err == nil {
		t.Error("nil registry accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	reg := sampleRegistry()
	data := Encode(reg.Snapshot(), "svc", time.Unix(0, 0), time.Unix(1, 0))
	bad := 0
	for i := 1; i < len(data); i++ {
		if _, err := Decode(data[:i]); err != nil {
			bad++
		}
	}
	// Truncations may not all fail (a prefix of length-delimited fields
	// can be self-consistent), but most must, and none may panic.
	if bad == 0 {
		t.Error("no truncated input was rejected")
	}
}

// TestExporterBackoffJitter pins the retry waits to the jitter seam: the
// picker must be called once per retried attempt with the exponential
// ceiling for that attempt, and the wait actually slept is whatever it
// returns (here: ~0, keeping the test fast).
func TestExporterBackoffJitter(t *testing.T) {
	col := &collector{status: http.StatusServiceUnavailable, failN: 3}
	srv := httptest.NewServer(col.handler())
	defer srv.Close()

	var mu sync.Mutex
	var ceilings []time.Duration
	picker := func(max time.Duration) time.Duration {
		mu.Lock()
		defer mu.Unlock()
		ceilings = append(ceilings, max)
		return time.Microsecond
	}
	reg := telemetry.NewRegistry()
	reg.Inc("rpn_transitions_total")
	exp, err := NewExporter(reg, srv.URL,
		WithInterval(time.Hour), WithRetry(5, 16*time.Millisecond), WithJitter(picker))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := exp.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown after retries: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{16 * time.Millisecond, 32 * time.Millisecond, 64 * time.Millisecond}
	if len(ceilings) != len(want) {
		t.Fatalf("jitter called with %v, want %v", ceilings, want)
	}
	for i := range want {
		if ceilings[i] != want[i] {
			t.Fatalf("jitter ceiling %d = %v, want %v", i, ceilings[i], want[i])
		}
	}
}

// TestDefaultJitterBounds sanity-checks the built-in full-jitter picker:
// waits stay inside [0, ceiling) and degenerate ceilings return zero.
func TestDefaultJitterBounds(t *testing.T) {
	j := defaultJitter()
	for i := 0; i < 200; i++ {
		if w := j(250 * time.Millisecond); w < 0 || w >= 250*time.Millisecond {
			t.Fatalf("jitter %v outside [0, 250ms)", w)
		}
	}
	if j(0) != 0 || j(-time.Second) != 0 {
		t.Fatal("degenerate ceiling not clamped to 0")
	}
}
