package telemetry

import (
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"
)

// settableClock returns a clock whose instant the test moves explicitly.
func settableClock(start time.Time) (func() time.Time, func(time.Time)) {
	cur := start
	return func() time.Time { return cur }, func(t time.Time) { cur = t }
}

var windowTestStart = time.Date(2025, 8, 10, 10, 33, 40, 0, time.UTC)

func TestFlushRollsSamplesIntoWindows(t *testing.T) {
	clock, setClock := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second))

	r.Observe("lat_us", 100)
	r.Observe("lat_us", 300)
	r.Inc("ticks")
	r.Flush()

	setClock(windowTestStart.Add(10 * time.Second))
	r.Observe("lat_us", 500)
	r.Inc("ticks")
	r.Inc("ticks")
	r.Flush()

	res := r.WindowQuery(WindowQueryOptions{Lookback: time.Hour})
	lat, ok := res["lat_us"]
	if !ok || lat.Kind != "histogram" {
		t.Fatalf("lat_us series missing or wrong kind: %+v", res)
	}
	if len(lat.Points) != 2 {
		t.Fatalf("lat_us points = %d, want 2: %+v", len(lat.Points), lat.Points)
	}
	p0, p1 := lat.Points[0], lat.Points[1]
	if p0.Window != "20250810103340" || p0.Count != 2 || p0.Sum != 400 || p0.Min != 100 || p0.Max != 300 {
		t.Fatalf("first window = %+v", p0)
	}
	if p1.Window != "20250810103350" || p1.Count != 1 || p1.Sum != 500 {
		t.Fatalf("second window = %+v", p1)
	}
	if p0.P50 <= 0 || p0.P90 < p0.P50 {
		t.Fatalf("quantile estimates missing: %+v", p0)
	}

	ticks, ok := res["ticks"]
	if !ok || ticks.Kind != "counter" {
		t.Fatalf("ticks series missing or wrong kind: %+v", res)
	}
	if len(ticks.Points) != 2 || ticks.Points[0].Count != 1 || ticks.Points[1].Count != 2 {
		t.Fatalf("counter deltas = %+v", ticks.Points)
	}
	if want := 2.0 / 10.0; ticks.Points[1].Rate != want {
		t.Fatalf("counter rate = %v, want %v", ticks.Points[1].Rate, want)
	}
}

func TestWindowQueryRebucketsAndBoundsLookback(t *testing.T) {
	clock, setClock := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second))

	// Twelve 10s windows over two minutes.
	for i := 0; i < 12; i++ {
		setClock(windowTestStart.Add(time.Duration(i) * 10 * time.Second))
		r.Observe("lat_us", float64(100*(i+1)))
		r.Flush()
	}

	// Re-bucket into one-minute buckets: 12 windows collapse into 3
	// calendar minutes (10:33:40 starts mid-minute).
	res := r.WindowQuery(WindowQueryOptions{Bucket: time.Minute, Lookback: time.Hour})
	pts := res["lat_us"].Points
	if len(pts) != 3 {
		t.Fatalf("minute buckets = %d, want 3: %+v", len(pts), pts)
	}
	var total int64
	for _, p := range pts {
		total += p.Count
	}
	if total != 12 {
		t.Fatalf("rebucketed total = %d, want 12", total)
	}
	if pts[0].Window != "20250810103300" || pts[0].Count != 2 {
		t.Fatalf("first minute bucket = %+v", pts[0])
	}

	// A 30s lookback from the final instant keeps only the recent windows.
	res = r.WindowQuery(WindowQueryOptions{Lookback: 30 * time.Second})
	var kept int64
	for _, p := range res["lat_us"].Points {
		kept += p.Count
	}
	if kept >= 12 || kept == 0 {
		t.Fatalf("lookback kept %d samples, want a strict recent subset", kept)
	}

	// Metric and series filters.
	r.Observe(`lat_us{model="car0"}`, 1)
	res = r.WindowQuery(WindowQueryOptions{Lookback: time.Hour, Metric: "lat_us"})
	if len(res) != 2 {
		t.Fatalf("metric filter matched %d series, want 2", len(res))
	}
	res = r.WindowQuery(WindowQueryOptions{Lookback: time.Hour, Series: `lat_us{model="car0"}`})
	if len(res) != 1 {
		t.Fatalf("series filter matched %d series, want 1", len(res))
	}
}

func TestWindowRetentionBoundsMemory(t *testing.T) {
	clock, setClock := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock), WithWindowWidth(time.Second), WithRetention(5))
	for i := 0; i < 20; i++ {
		setClock(windowTestStart.Add(time.Duration(i) * time.Second))
		r.Observe("lat_us", 1)
		r.Flush()
	}
	cfg := r.WindowInfo()
	if cfg.Retention != 5 || cfg.Series != 1 || cfg.Windows != 5 {
		t.Fatalf("WindowInfo after churn = %+v, want 5 retained windows", cfg)
	}
	// The survivors are the newest five.
	res := r.WindowQuery(WindowQueryOptions{Lookback: time.Hour})
	pts := res["lat_us"].Points
	if len(pts) != 5 || pts[0].Window != "20250810103355" {
		t.Fatalf("retention kept %+v", pts)
	}
}

func TestSnapshotFlushesImplicitly(t *testing.T) {
	clock, _ := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock))
	r.Observe("lat_us", 42)
	// No explicit Flush: Snapshot must drain the shards itself.
	snap := r.Snapshot()
	if h := snap.Histograms["lat_us"]; h.Count != 1 || h.Min != 42 {
		t.Fatalf("snapshot did not flush: %+v", h)
	}
	if res := r.WindowQuery(WindowQueryOptions{Lookback: time.Hour}); len(res["lat_us"].Points) == 0 {
		t.Fatal("snapshot flush did not populate windows")
	}
}

func TestPersistSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.db")
	clock, setClock := settableClock(windowTestStart)

	// First process lifetime: persist two windows, then Close (final
	// flush included).
	r := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second))
	if err := r.Persist(path); err != nil {
		t.Fatal(err)
	}
	r.Observe("lat_us", 100)
	r.Inc("ticks")
	r.Flush()
	setClock(windowTestStart.Add(10 * time.Second))
	r.Observe("lat_us", 900)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh registry over the same file sees the history.
	clock2, setClock2 := settableClock(windowTestStart.Add(20 * time.Second))
	r2 := NewRegistry(WithClock(clock2), WithWindowWidth(10*time.Second))
	if err := r2.Persist(path); err != nil {
		t.Fatal(err)
	}
	res := r2.WindowQuery(WindowQueryOptions{Lookback: time.Hour})
	lat := res["lat_us"]
	if len(lat.Points) != 2 {
		t.Fatalf("replayed windows = %+v, want 2 points", lat.Points)
	}
	if lat.Points[0].Sum != 100 || lat.Points[1].Sum != 900 {
		t.Fatalf("replayed sums = %+v", lat.Points)
	}
	if res["ticks"].Points[0].Count != 1 {
		t.Fatalf("replayed counter = %+v", res["ticks"])
	}

	// New samples append on top of the replayed history.
	setClock2(windowTestStart.Add(30 * time.Second))
	r2.Observe("lat_us", 500)
	if err := r2.Close(); err != nil {
		t.Fatal(err)
	}
	r3 := NewRegistry(WithClock(clock2), WithWindowWidth(10*time.Second))
	if err := r3.Persist(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r3.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	res = r3.WindowQuery(WindowQueryOptions{Lookback: time.Hour})
	if len(res["lat_us"].Points) != 3 {
		t.Fatalf("post-restart append lost: %+v", res["lat_us"].Points)
	}

	st, ok := r3.PersistStatus()
	if !ok || st.Path != path || st.Bytes == 0 {
		t.Fatalf("PersistStatus = %+v, %v", st, ok)
	}
}

func TestPersistTwiceFails(t *testing.T) {
	dir := t.TempDir()
	r := NewRegistry()
	if err := r.Persist(filepath.Join(dir, "a.db")); err != nil {
		t.Fatal(err)
	}
	if err := r.Persist(filepath.Join(dir, "b.db")); err == nil {
		t.Fatal("second Persist succeeded")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

func TestAggregatorFlushesInBackground(t *testing.T) {
	r := NewRegistry() // real clock: the aggregator ticks wall time
	r.StartAggregator(100 * time.Millisecond)
	r.StartAggregator(100 * time.Millisecond) // idempotent
	r.Observe("lat_us", 7)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if res := r.WindowQuery(WindowQueryOptions{Lookback: time.Hour}); len(res["lat_us"].Points) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregator never flushed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	// Registry stays usable after Close; StartAggregator after Close is a
	// no-op rather than a leak.
	r.Observe("lat_us", 8)
	r.StartAggregator(100 * time.Millisecond)
}

// TestAggregatorStopJoinsGoroutine proves Close actually joins the
// aggregator goroutine rather than abandoning it: repeated
// start-flush-close cycles must return the process to its goroutine
// baseline. Run under -race this is the registry's shutdown-leak proof
// (the aggregator is the longest-lived goroutine a serve stack owns).
func TestAggregatorStopJoinsGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		r := NewRegistry()
		r.StartAggregator(10 * time.Millisecond)
		r.Observe("lat_us", float64(i))
		time.Sleep(25 * time.Millisecond) // let at least one tick fire
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		buf := make([]byte, 1<<16)
		t.Fatalf("aggregator goroutines leaked: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

func TestLatencyProbeReadsFrameWindows(t *testing.T) {
	clock, _ := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock))
	probe := NewLatencyProbe(r, time.Minute)
	if _, ok := probe.MeasuredLatencyMS("car0"); ok {
		t.Fatal("probe reported a measurement with no samples")
	}
	series := Series(MetricFrameLatency, Label{Key: LabelModel, Value: "car0"})
	r.Observe(series, 2000) // µs
	r.Observe(series, 4000)
	got, ok := probe.MeasuredLatencyMS("car0")
	if !ok || got != 3.0 {
		t.Fatalf("MeasuredLatencyMS = %v, %v, want 3ms", got, ok)
	}
	if _, ok := probe.MeasuredLatencyMS("car1"); ok {
		t.Fatal("probe crossed model labels")
	}
}

// TestShardedHotPathUnderConcurrentFlush is the ISSUE 9 hammer: writers on
// the sharded hot path race a dedicated flusher and snapshot readers for
// 1000 iterations; totals must come out exact. Run under -race in
// verify.sh.
func TestShardedHotPathUnderConcurrentFlush(t *testing.T) {
	const (
		iters   = 1000
		writers = 4
	)
	r := NewRegistry(WithWindowWidth(time.Second))
	stop := make(chan struct{})
	var loops sync.WaitGroup
	// Flusher: races drains against the writers.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Flush()
			}
		}
	}()
	// Snapshot/query reader: races flush-on-read against the flusher.
	loops.Add(1)
	go func() {
		defer loops.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = r.Snapshot()
				_ = r.WindowQuery(WindowQueryOptions{Lookback: time.Minute})
			}
		}
	}()
	var writersWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func() {
			defer writersWG.Done()
			for i := 0; i < iters; i++ {
				r.Observe("lat_us", float64(i%97+1))
				r.Inc("ticks")
				r.SetGauge("level", float64(i))
			}
		}()
	}
	writersWG.Wait()
	close(stop)
	loops.Wait()

	snap := r.Snapshot()
	if got := snap.Counters["ticks"]; got != int64(writers*iters) {
		t.Fatalf("ticks = %d, want %d", got, writers*iters)
	}
	h := snap.Histograms["lat_us"]
	if h.Count != int64(writers*iters) {
		t.Fatalf("histogram count = %d, want %d", h.Count, writers*iters)
	}
	// Window totals agree with the hot-path totals.
	res := r.WindowQuery(WindowQueryOptions{Lookback: time.Hour})
	var winTotal int64
	for _, p := range res["lat_us"].Points {
		winTotal += p.Count
	}
	if winTotal != h.Count {
		t.Fatalf("window total %d != histogram count %d", winTotal, h.Count)
	}
}
