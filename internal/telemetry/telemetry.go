// Package telemetry is the runtime observability subsystem of the
// reversible-pruning stack: a dependency-free, mutex-guarded metrics
// registry (monotonic counters, gauges, and fixed-window rolling histograms
// with microsecond-resolution quantiles) plus an HTTP server exposing the
// registry as a JSON health snapshot (/healthz) and Prometheus text
// (/metrics). Metrics may carry labels: Series renders a name plus
// key="value" pairs into one opaque registry key, so labeled families like
// rpn_layer_transition_latency_us{layer="conv1.w"} coexist with flat names
// without changing the Registry API, and the Prometheus renderer groups
// them back into families. The otlp subpackage pushes the same registry to
// OpenTelemetry collectors over OTLP/HTTP.
//
// The offline experiment harness (cmd/experiments) measures transitions in
// tables; telemetry makes the same quantities — restore latency (whole
// transition and per layer), level residency, contract violations —
// observable from a *live* deployment, the way containerized services
// expose rolling counters. The package imports only the standard library
// so every layer of the stack can depend on it without cycles; the
// stack-specific wiring lives in Hooks, whose methods structurally satisfy
// the observer seams of internal/core, internal/governor, and
// internal/perception.
//
// All registry methods are safe for concurrent use. The hot-path contract
// is one mutex acquisition and no allocations for existing metrics; the
// disabled path (a nil observer upstream) costs nothing at all — see the
// benchmarks in internal/governor.
//
// docs/METRICS.md is the authoritative reference of every emitted metric
// (enforced by TestMetricsDocCrossCheck); docs/OPERATIONS.md is the
// operator guide.
package telemetry

import (
	"sort"
	"sync"
	"time"
)

// DefaultWindow is the rolling-histogram window size (samples) used when
// WithWindow is not given.
const DefaultWindow = 256

// Registry is a mutex-guarded metric store. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	clock    func() time.Time
	start    time.Time
	window   int
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*histogram
}

// Option configures NewRegistry.
type Option func(*Registry)

// WithWindow sets the rolling-histogram window (number of retained
// samples). Values below 1 fall back to DefaultWindow.
func WithWindow(n int) Option {
	return func(r *Registry) {
		if n >= 1 {
			r.window = n
		}
	}
}

// WithClock injects the wall clock (for deterministic tests). The default
// is the package clock seam.
func WithClock(clock func() time.Time) Option {
	return func(r *Registry) {
		if clock != nil {
			r.clock = clock
		}
	}
}

// NewRegistry constructs an empty registry; its uptime starts now.
func NewRegistry(opts ...Option) *Registry {
	r := &Registry{
		clock:    now,
		window:   DefaultWindow,
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*histogram),
	}
	for _, o := range opts {
		o(r)
	}
	r.start = r.clock()
	return r
}

// Inc increments the named monotonic counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add increments the named monotonic counter by delta. Negative deltas are
// ignored: counters only ever go up.
func (r *Registry) Add(name string, delta int64) {
	if name == "" || delta < 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Counter returns the current value of the named counter (0 if absent).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	if name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = v
}

// Gauge returns the current value of the named gauge (0 if absent).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Observe records one sample into the named rolling histogram. The unit is
// whatever the caller chooses; the duration helpers record microseconds.
func (r *Registry) Observe(name string, v float64) {
	if name == "" {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram(r.window)
		r.hists[name] = h
	}
	h.observe(v)
}

// ObserveDuration records d into the named histogram in microseconds
// (fractional, so nanosecond information is preserved).
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d.Nanoseconds())/1e3)
}

// Uptime returns the time elapsed since the registry was constructed.
func (r *Registry) Uptime() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.clock().Sub(r.start)
}

// HistogramSnapshot is the exported state of one rolling histogram:
// lifetime count/sum plus quantiles over the current window.
type HistogramSnapshot struct {
	// Count and Sum accumulate over the registry's lifetime (monotonic).
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Window is the number of samples the quantiles are computed over
	// (min(lifetime count, configured window)).
	Window int `json:"window"`
	// Min, P50, P90, P99 and Max summarize the rolling window.
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// Mean returns the lifetime mean sample (0 with no samples).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a deep, consistent copy of the registry at one instant.
type Snapshot struct {
	// UptimeSeconds is the registry age at snapshot time.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Counters, Gauges and Histograms copy every registered metric.
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric under one lock acquisition, so the result
// is internally consistent (no torn counter/histogram pairs).
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		UptimeSeconds: r.clock().Sub(r.start).Seconds(),
		Counters:      make(map[string]int64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// sortedKeys returns the map's keys in ascending order (for deterministic
// rendering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
