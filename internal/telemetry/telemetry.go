// Package telemetry is the runtime observability subsystem of the
// reversible-pruning stack: a dependency-free two-tier metrics registry
// plus an HTTP server exposing it as a JSON health snapshot (/healthz,
// including sar-style windowed queries) and Prometheus text (/metrics).
//
// The first tier is the lock-minimal hot path: counters and gauges are
// single atomics, and histograms append into per-shard sample buffers
// behind per-shard mutexes (shard chosen round-robin, so writers spread
// instead of queueing). Metric registration uses a copy-on-write map
// behind an atomic pointer, so recording into an existing metric takes no
// registry-wide lock and allocates nothing.
//
// The second tier rolls those raw samples into YYYYMMDDHHMMSS-keyed time
// windows (count/sum/min/max plus a quantile sketch per window, bounded
// retention — see internal/telemetry/window) on every flush. Flushes
// happen on read (Snapshot, the HTTP handlers, WindowQuery) and, when
// StartAggregator is running, periodically in the background; with
// Persist enabled each flush also appends its window deltas to an
// append-only file store, so window history survives restarts.
//
// Metrics may carry labels: Series renders a name plus key="value" pairs
// into one opaque registry key, so labeled families like
// rpn_layer_transition_latency_us{layer="conv1.w"} coexist with flat names
// without changing the Registry API, and the Prometheus renderer groups
// them back into families. The otlp subpackage pushes the same registry to
// OpenTelemetry collectors over OTLP/HTTP.
//
// The package imports only the standard library so every layer of the
// stack can depend on it without cycles; the stack-specific wiring lives
// in Hooks, whose methods structurally satisfy the observer seams of
// internal/core, internal/governor, and internal/perception, and in
// LatencyProbe, which feeds the fleet budget governor measured windowed
// latency.
//
// All registry methods are safe for concurrent use. The hot-path contract
// is at most one *sharded* mutex acquisition and no allocations for
// existing metrics; the disabled path (a nil observer upstream) costs
// nothing at all — see the benchmarks in internal/governor and the
// contended benchmarks in this package (scripts/bench_telemetry.sh).
//
// docs/METRICS.md is the authoritative reference of every emitted metric
// (enforced by TestMetricsDocCrossCheck); docs/OPERATIONS.md is the
// operator guide, including persistence and retention sizing.
package telemetry

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWindow is the rolling-histogram window size (samples) used when
// WithWindow is not given.
const DefaultWindow = 256

// Registry is the two-tier metric store. The zero value is not usable;
// construct with NewRegistry.
type Registry struct {
	clock  func() time.Time
	start  time.Time
	window int // rolling-histogram sample window
	shards int // histogram shard count (power of two)

	// live is the copy-on-write metric set: reads go straight through the
	// atomic pointer into plain maps; registration of a new metric clones
	// the set under regMu and swaps the pointer.
	live  atomic.Pointer[metricSet]
	regMu sync.Mutex

	// win is the time-window tier (aggregation state, retention,
	// persistence, background aggregator).
	win windowState
}

// metricSet is an immutable registration snapshot. The maps are never
// mutated after publication; the values they point at carry their own
// synchronization (atomics, shard mutexes).
type metricSet struct {
	counters map[string]*counter
	gauges   map[string]*gauge
	hists    map[string]*histogram
}

func (m *metricSet) clone() *metricSet {
	n := &metricSet{
		counters: make(map[string]*counter, len(m.counters)+1),
		gauges:   make(map[string]*gauge, len(m.gauges)+1),
		hists:    make(map[string]*histogram, len(m.hists)+1),
	}
	for k, v := range m.counters {
		n.counters[k] = v
	}
	for k, v := range m.gauges {
		n.gauges[k] = v
	}
	for k, v := range m.hists {
		n.hists[k] = v
	}
	return n
}

// counter is a monotonic counter: the hot path adds to v; flushed is the
// value already rolled into time windows, guarded by the windowState
// mutex.
type counter struct {
	v       atomic.Int64
	flushed int64
}

// gauge stores its float64 value as atomic bits.
type gauge struct {
	bits atomic.Uint64
}

// Option configures NewRegistry.
type Option func(*Registry)

// WithWindow sets the rolling-histogram window (number of retained
// samples). Values below 1 fall back to DefaultWindow.
func WithWindow(n int) Option {
	return func(r *Registry) {
		if n >= 1 {
			r.window = n
		}
	}
}

// WithClock injects the wall clock (for deterministic tests). The default
// is the package clock seam.
func WithClock(clock func() time.Time) Option {
	return func(r *Registry) {
		if clock != nil {
			r.clock = clock
		}
	}
}

// NewRegistry constructs an empty registry; its uptime starts now.
func NewRegistry(opts ...Option) *Registry {
	r := &Registry{
		clock:  now,
		window: DefaultWindow,
		shards: shardCount(),
	}
	r.win.width = DefaultWindowWidth
	r.win.retention = DefaultRetention
	for _, o := range opts {
		o(r)
	}
	r.live.Store(&metricSet{
		counters: map[string]*counter{},
		gauges:   map[string]*gauge{},
		hists:    map[string]*histogram{},
	})
	r.win.series = map[string]*seriesWindows{}
	r.start = r.clock()
	return r
}

// shardCount sizes histogram sharding to the machine: the next power of
// two at or above GOMAXPROCS, capped at 16 (beyond that the buffers cost
// more cache than the contention they remove).
func shardCount() int {
	n := runtime.GOMAXPROCS(0)
	s := 1
	for s < n && s < 16 {
		s <<= 1
	}
	return s
}

// Inc increments the named monotonic counter by one.
func (r *Registry) Inc(name string) { r.Add(name, 1) }

// Add increments the named monotonic counter by delta. Negative deltas are
// ignored: counters only ever go up.
func (r *Registry) Add(name string, delta int64) {
	if name == "" || delta < 0 {
		return
	}
	if c := r.live.Load().counters[name]; c != nil {
		c.v.Add(delta)
		return
	}
	r.registerCounter(name).v.Add(delta)
}

func (r *Registry) registerCounter(name string) *counter {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	cur := r.live.Load()
	if c := cur.counters[name]; c != nil {
		return c
	}
	next := cur.clone()
	c := &counter{}
	next.counters[name] = c
	r.live.Store(next)
	return c
}

// Counter returns the current value of the named counter (0 if absent).
func (r *Registry) Counter(name string) int64 {
	if c := r.live.Load().counters[name]; c != nil {
		return c.v.Load()
	}
	return 0
}

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) {
	if name == "" {
		return
	}
	if g := r.live.Load().gauges[name]; g != nil {
		g.bits.Store(math.Float64bits(v))
		return
	}
	r.registerGauge(name).bits.Store(math.Float64bits(v))
}

func (r *Registry) registerGauge(name string) *gauge {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	cur := r.live.Load()
	if g := cur.gauges[name]; g != nil {
		return g
	}
	next := cur.clone()
	g := &gauge{}
	next.gauges[name] = g
	r.live.Store(next)
	return g
}

// Gauge returns the current value of the named gauge (0 if absent).
func (r *Registry) Gauge(name string) float64 {
	if g := r.live.Load().gauges[name]; g != nil {
		return math.Float64frombits(g.bits.Load())
	}
	return 0
}

// Observe records one sample into the named rolling histogram. The unit is
// whatever the caller chooses; the duration helpers record microseconds.
func (r *Registry) Observe(name string, v float64) {
	if name == "" {
		return
	}
	if h := r.live.Load().hists[name]; h != nil {
		h.observe(v)
		return
	}
	r.registerHistogram(name).observe(v)
}

func (r *Registry) registerHistogram(name string) *histogram {
	r.regMu.Lock()
	defer r.regMu.Unlock()
	cur := r.live.Load()
	if h := cur.hists[name]; h != nil {
		return h
	}
	next := cur.clone()
	h := newHistogram(r.window, r.shards)
	next.hists[name] = h
	r.live.Store(next)
	return h
}

// ObserveDuration records d into the named histogram in microseconds
// (fractional, so nanosecond information is preserved).
func (r *Registry) ObserveDuration(name string, d time.Duration) {
	r.Observe(name, float64(d.Nanoseconds())/1e3)
}

// Uptime returns the time elapsed since the registry was constructed.
func (r *Registry) Uptime() time.Duration {
	return r.clock().Sub(r.start)
}

// HistogramSnapshot is the exported state of one rolling histogram:
// lifetime count/sum plus quantiles over the current window.
type HistogramSnapshot struct {
	// Count and Sum accumulate over the registry's lifetime (monotonic).
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	// Window is the number of samples the quantiles are computed over
	// (min(lifetime count, configured window)).
	Window int `json:"window"`
	// Min, P50, P90, P99 and Max summarize the rolling window.
	Min float64 `json:"min"`
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
	// Buckets is the lifetime exponential-bucket distribution
	// (window.Bounds() gives the matching upper bounds) and LifetimeMin /
	// LifetimeMax the lifetime extremes; they feed the OTLP Histogram
	// encoding and are not part of the JSON schema.
	Buckets     []uint64 `json:"-"`
	LifetimeMin float64  `json:"-"`
	LifetimeMax float64  `json:"-"`
}

// Mean returns the lifetime mean sample (0 with no samples).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Snapshot is a deep, consistent copy of the registry at one instant.
type Snapshot struct {
	// UptimeSeconds is the registry age at snapshot time.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Counters, Gauges and Histograms copy every registered metric.
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric at one instant. It first flushes the hot
// path (draining histogram shards into their rolling windows and rolling
// counter deltas into time windows), so a sample recorded before Snapshot
// is visible in it.
func (r *Registry) Snapshot() Snapshot {
	t := r.clock()
	r.flushAt(t)
	set := r.live.Load()
	s := Snapshot{
		UptimeSeconds: t.Sub(r.start).Seconds(),
		Counters:      make(map[string]int64, len(set.counters)),
		Gauges:        make(map[string]float64, len(set.gauges)),
		Histograms:    make(map[string]HistogramSnapshot, len(set.hists)),
	}
	for k, c := range set.counters {
		s.Counters[k] = c.v.Load()
	}
	for k, g := range set.gauges {
		s.Gauges[k] = math.Float64frombits(g.bits.Load())
	}
	for k, h := range set.hists {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// sortedKeys returns the map's keys in ascending order (for deterministic
// rendering).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
