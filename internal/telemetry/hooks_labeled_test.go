package telemetry

import (
	"testing"
	"time"
)

// TestHooksBaseLabels verifies that a Hooks constructed with a model base
// label stamps it onto every series family it writes, and that two labeled
// Hooks sharing one registry stay fully disjoint.
func TestHooksBaseLabels(t *testing.T) {
	reg := NewRegistry()
	a := NewHooks(reg, Label{Key: LabelModel, Value: "car0"})
	b := NewHooks(reg, Label{Key: LabelModel, Value: "car1"})
	a.SetLevels([]float64{0, 0.5})
	b.SetLevels([]float64{0, 0.5})

	a.ObserveTransition(0, 1, 64, 10*time.Microsecond)
	a.ObserveParamTransition(0, 1, "conv1.w", 32, 5*time.Microsecond)
	a.ObserveTick(0, 1, true, false, false, 3*time.Microsecond)
	a.ObserveFrame(2 * time.Millisecond)
	b.ObserveFrame(1 * time.Millisecond)

	snap := reg.Snapshot()
	series := func(name, model string) string {
		return Series(name, Label{Key: LabelModel, Value: model})
	}
	if got := snap.Counters[series(MetricFrames, "car0")]; got != 1 {
		t.Fatalf("car0 frames = %d, want 1", got)
	}
	if got := snap.Counters[series(MetricFrames, "car1")]; got != 1 {
		t.Fatalf("car1 frames = %d, want 1", got)
	}
	if _, ok := snap.Counters[MetricFrames]; ok {
		t.Fatalf("flat %s series written by labeled hooks", MetricFrames)
	}
	if got := snap.Gauges[series(MetricLevel, "car0")]; got != 1 {
		t.Fatalf("car0 level gauge = %v, want 1", got)
	}
	if got := snap.Gauges[series(MetricLevel, "car1")]; got != 0 {
		t.Fatalf("car1 level gauge = %v, want 0", got)
	}
	if got := snap.Counters[series(MetricTransitions, "car0")]; got != 1 {
		t.Fatalf("car0 transitions = %d, want 1", got)
	}
	layer := Series(MetricLayerTransitionLatency,
		Label{Key: LabelLayer, Value: "conv1.w"},
		Label{Key: LabelModel, Value: "car0"})
	if h, ok := snap.Histograms[layer]; !ok || h.Count != 1 {
		t.Fatalf("layer series %q missing or wrong count (%+v)", layer, h)
	}
	residency := Series(ResidencyMetric(1), Label{Key: LabelModel, Value: "car0"})
	if got := snap.Counters[residency]; got != 1 {
		t.Fatalf("residency series %q = %d, want 1", residency, got)
	}
}

// TestHooksObserveRebalance verifies the fleet rebalance seam's counter,
// gauge, and histogram writes.
func TestHooksObserveRebalance(t *testing.T) {
	reg := NewRegistry()
	h := NewHooks(reg)
	h.ObserveRebalance(3, 2.5, 7.0, true, 12*time.Microsecond)
	h.ObserveRebalance(0, 2.0, 6.0, false, 9*time.Microsecond)

	snap := reg.Snapshot()
	if got := snap.Counters[MetricFleetRebalances]; got != 2 {
		t.Fatalf("rebalances = %d, want 2", got)
	}
	if got := snap.Counters[MetricFleetRetargets]; got != 3 {
		t.Fatalf("retargets = %d, want 3", got)
	}
	if got := snap.Gauges[MetricFleetEnergy]; got != 2.0 {
		t.Fatalf("energy gauge = %v, want 2.0", got)
	}
	if got := snap.Gauges[MetricFleetLatency]; got != 6.0 {
		t.Fatalf("latency gauge = %v, want 6.0", got)
	}
	if got := snap.Gauges[MetricFleetOverBudget]; got != 0 {
		t.Fatalf("over-budget gauge = %v, want 0 after in-budget pass", got)
	}
	if h, ok := snap.Histograms[MetricFleetRebalanceLatency]; !ok || h.Count != 2 {
		t.Fatalf("rebalance latency histogram missing or wrong count (%+v)", h)
	}
}
