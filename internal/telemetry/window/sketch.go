package window

import "math"

// The sketch is a fixed-size exponential-bucket histogram: bucket i covers
// (2^(minExp+i-1), 2^(minExp+i)], with an underflow bucket for values at or
// below 2^minExp (including zero, negatives, and NaN) and an overflow
// bucket past 2^maxExp. The bounds span 0.0625 µs to ~1.76e13 µs (≈ 204
// days), which covers every duration family the registry records with a
// worst-case relative quantile error of one octave. A sketch is a plain
// value (a fixed array of counts), so it can be merged, copied, and
// persisted without pointer chasing, and two sketches built from the same
// samples are bit-identical regardless of arrival order.
const (
	sketchMinExp = -4
	sketchMaxExp = 44

	// NumBuckets is the sketch size: one underflow bucket, one bucket per
	// octave in (minExp, maxExp], and one overflow bucket.
	NumBuckets = sketchMaxExp - sketchMinExp + 2
)

// Sketch is a mergeable exponential-bucket quantile sketch.
type Sketch struct {
	Counts [NumBuckets]uint64
}

// lowestBound and highestBound are the smallest and largest finite bucket
// upper bounds.
var (
	lowestBound  = math.Ldexp(1, sketchMinExp)
	highestBound = math.Ldexp(1, sketchMaxExp)
)

// bucketIndex maps a sample to its bucket.
func bucketIndex(v float64) int {
	if !(v > lowestBound) { // NaN and v ≤ 2^minExp both land here
		return 0
	}
	if v > highestBound {
		return NumBuckets - 1
	}
	e := int(math.Ceil(math.Log2(v)))
	switch {
	case e <= sketchMinExp: // float fuzz right at the lowest bound
		return 1
	case e > sketchMaxExp:
		return NumBuckets - 1
	}
	return e - sketchMinExp
}

// Add records one sample.
func (s *Sketch) Add(v float64) { s.Counts[bucketIndex(v)]++ }

// Merge adds o's counts into s.
func (s *Sketch) Merge(o *Sketch) {
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
}

// Total returns the number of recorded samples.
func (s *Sketch) Total() uint64 {
	var t uint64
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// Quantile estimates the q-th quantile (clamped to 0..1) of the recorded
// samples: the bucket holding the target rank is located by a cumulative
// walk and represented by the geometric midpoint of its bounds (its lower
// bound for the underflow bucket, its upper bound for overflow). Returns 0
// with no samples.
func (s *Sketch) Quantile(q float64) float64 {
	total := s.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total-1))
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum > rank {
			return bucketValue(i)
		}
	}
	return highestBound
}

// bucketValue is the representative sample value for bucket i.
func bucketValue(i int) float64 {
	switch {
	case i <= 0:
		return lowestBound
	case i >= NumBuckets-1:
		return highestBound
	}
	hi := math.Ldexp(1, sketchMinExp+i)
	lo := math.Ldexp(1, sketchMinExp+i-1)
	return math.Sqrt(lo * hi)
}

// Bounds returns the NumBuckets-1 ascending bucket upper bounds, matching
// the OpenTelemetry HistogramDataPoint explicit_bounds convention: bucket i
// counts samples in (Bounds[i-1], Bounds[i]], the final bucket everything
// above Bounds[len-1].
func Bounds() []float64 {
	b := make([]float64, NumBuckets-1)
	for i := range b {
		b[i] = math.Ldexp(1, sketchMinExp+i)
	}
	return b
}
