package window

import (
	"math"
	"testing"
	"time"
)

func TestKeyTruncatesToWindow(t *testing.T) {
	at := time.Date(2025, 8, 10, 10, 33, 47, 123456789, time.UTC)
	cases := []struct {
		width time.Duration
		want  string
	}{
		{time.Second, "20250810103347"},
		{10 * time.Second, "20250810103340"},
		{time.Minute, "20250810103300"},
		{5 * time.Minute, "20250810103000"},
		{time.Hour, "20250810100000"},
		{0, "20250810103347"}, // sub-second widths clamp to one second
	}
	for _, c := range cases {
		if got := Key(at, c.width); got != c.want {
			t.Errorf("Key(%v) = %q, want %q", c.width, got, c.want)
		}
	}
}

func TestKeyUsesUTC(t *testing.T) {
	east := time.FixedZone("E5", 5*3600)
	at := time.Date(2025, 8, 10, 15, 0, 0, 0, east) // 10:00 UTC
	if got := Key(at, time.Minute); got != "20250810100000" {
		t.Fatalf("Key in non-UTC zone = %q, want 20250810100000", got)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	at := time.Date(2025, 8, 10, 10, 33, 40, 0, time.UTC)
	key := Key(at, 10*time.Second)
	parsed, err := ParseKey(key)
	if err != nil {
		t.Fatalf("ParseKey(%q): %v", key, err)
	}
	if !parsed.Equal(at) {
		t.Fatalf("ParseKey(%q) = %v, want %v", key, parsed, at)
	}
	if _, err := ParseKey("not-a-key"); err == nil {
		t.Fatal("ParseKey accepted garbage")
	}
}

func TestKeysSortChronologically(t *testing.T) {
	base := time.Date(2025, 12, 31, 23, 59, 50, 0, time.UTC)
	prev := Key(base, 10*time.Second)
	for i := 1; i <= 12; i++ {
		next := Key(base.Add(time.Duration(i)*10*time.Second), 10*time.Second)
		if !(prev < next) {
			t.Fatalf("keys not ascending across year boundary: %q then %q", prev, next)
		}
		prev = next
	}
}

func TestAggMerge(t *testing.T) {
	var a Agg
	a.Merge(Agg{}) // merging empty is a no-op
	if a.Count != 0 {
		t.Fatalf("empty merge produced count %d", a.Count)
	}
	a.Merge(Agg{Count: 2, Sum: 30, Min: 10, Max: 20})
	a.Merge(Agg{Count: 1, Sum: 5, Min: 5, Max: 5})
	if a.Count != 3 || a.Sum != 35 || a.Min != 5 || a.Max != 20 {
		t.Fatalf("merge result = %+v", a)
	}
	if got := a.Mean(); math.Abs(got-35.0/3) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}

	sk := &Sketch{}
	sk.Add(100)
	a.Merge(Agg{Count: 1, Sum: 100, Min: 100, Max: 100, Sketch: sk})
	if a.Sketch == nil || a.Sketch.Total() != 1 {
		t.Fatalf("sketch not carried through merge: %+v", a.Sketch)
	}
}

func TestSketchQuantiles(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty sketch quantile = %v", got)
	}
	// 1000 samples spread 1..1000 µs: quantile estimates must land within
	// one octave of the exact value.
	for i := 1; i <= 1000; i++ {
		s.Add(float64(i))
	}
	if s.Total() != 1000 {
		t.Fatalf("Total = %d", s.Total())
	}
	for _, c := range []struct{ q, exact float64 }{
		{0.50, 500}, {0.90, 900}, {0.99, 990},
	} {
		got := s.Quantile(c.q)
		if got < c.exact/2 || got > c.exact*2 {
			t.Errorf("Quantile(%v) = %v, want within one octave of %v", c.q, got, c.exact)
		}
	}
}

func TestSketchBucketEdges(t *testing.T) {
	var s Sketch
	s.Add(0)
	s.Add(-5)
	s.Add(math.NaN())
	if s.Counts[0] != 3 {
		t.Fatalf("underflow bucket = %d, want 3", s.Counts[0])
	}
	s.Add(math.Inf(1))
	s.Add(1e300)
	if s.Counts[NumBuckets-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", s.Counts[NumBuckets-1])
	}
	if got := s.Total(); got != 5 {
		t.Fatalf("Total = %d", got)
	}
}

func TestSketchBoundsMatchBuckets(t *testing.T) {
	bounds := Bounds()
	if len(bounds) != NumBuckets-1 {
		t.Fatalf("len(Bounds) = %d, want %d", len(bounds), NumBuckets-1)
	}
	for i := 1; i < len(bounds); i++ {
		if !(bounds[i-1] < bounds[i]) {
			t.Fatalf("bounds not ascending at %d: %v, %v", i, bounds[i-1], bounds[i])
		}
	}
	// A sample exactly on a bound belongs to the bucket it upper-bounds
	// (OTLP's (lo, hi] convention).
	var s Sketch
	s.Add(bounds[3])
	if s.Counts[3] != 1 {
		t.Fatalf("sample on bounds[3] landed in bucket %v", s.Counts)
	}
	// Sketch counts line up with bounds: cumulative count below bounds[i]
	// is the sum of buckets 0..i.
	s.Add(bounds[3] * 1.01)
	if s.Counts[4] != 1 {
		t.Fatalf("sample just above bounds[3] landed elsewhere: %v", s.Counts)
	}
}

func TestSketchMergeMatchesCombinedAdd(t *testing.T) {
	var a, b, both Sketch
	for i := 1; i < 200; i++ {
		v := float64(i) * 3.7
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
		both.Add(v)
	}
	a.Merge(&b)
	if a != both {
		t.Fatal("merged sketch differs from combined-add sketch")
	}
}
