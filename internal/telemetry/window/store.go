package window

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// Store is the append-only window file. Each flush appends one Record per
// (series, window) carrying the *delta* aggregate of that flush, so the
// file is a log: replaying it from the start and merging records with equal
// (series, window) reconstructs the window state at the last flush. The
// file is never rewritten in place — crash recovery is "truncate the torn
// tail", not a repair pass.
//
// On-disk layout:
//
//	magic "RPNWIN1\n"                                  (8 bytes)
//	repeated records:
//	    payload length  uint32 LE                      (4 bytes)
//	    payload CRC32   uint32 LE, IEEE polynomial     (4 bytes)
//	    payload         MarshalRecord bytes
//
// A record whose length field, checksum, or payload fails validation ends
// the readable prefix: Open returns every record before it and truncates
// the file there, so a crash mid-append loses at most the windows of the
// final flush (they are still present in memory if the process survived).
type Store struct {
	mu    sync.Mutex
	f     *os.File
	path  string
	size  int64
	wrbuf []byte // reused append buffer
}

// storeMagic identifies a window store file (and its format version).
const storeMagic = "RPNWIN1\n"

// Marshal limits: a record larger than these is corrupt by definition.
const (
	maxPayload   = 1 << 20
	maxSeriesLen = 1 << 12
	maxKeyLen    = 64
)

// ErrCorrupt reports a window store whose header is not a window store
// header. (Torn record tails are not errors — Open truncates them.)
var ErrCorrupt = errors.New("window: not a window store")

// Record is one persisted flush delta.
type Record struct {
	Kind   Kind
	Window string
	Series string
	Agg    Agg
}

// AppendRecord marshals r onto dst (payload only, no framing) and returns
// the extended slice. The encoding is canonical: sparse sketch entries are
// emitted in ascending bucket order, so equal records marshal to equal
// bytes.
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst, byte(r.Kind))
	dst = append(dst, byte(len(r.Window)))
	dst = append(dst, r.Window...)
	dst = binary.AppendUvarint(dst, uint64(len(r.Series)))
	dst = append(dst, r.Series...)
	dst = binary.AppendUvarint(dst, uint64(r.Agg.Count))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Agg.Sum))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Agg.Min))
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(r.Agg.Max))
	if r.Agg.Sketch == nil {
		return binary.AppendUvarint(dst, 0)
	}
	var sparse int
	for _, c := range r.Agg.Sketch.Counts {
		if c != 0 {
			sparse++
		}
	}
	dst = binary.AppendUvarint(dst, uint64(sparse))
	for i, c := range r.Agg.Sketch.Counts {
		if c == 0 {
			continue
		}
		dst = binary.AppendUvarint(dst, uint64(i))
		dst = binary.AppendUvarint(dst, c)
	}
	return dst
}

// MarshalRecord returns r's canonical payload encoding.
func MarshalRecord(r Record) []byte { return AppendRecord(nil, r) }

// UnmarshalRecord is the inverse of MarshalRecord. Every length, index, and
// range is validated, so arbitrary (fuzzed) input yields an error rather
// than a panic or an out-of-range record.
func UnmarshalRecord(payload []byte) (Record, error) {
	var r Record
	b := payload
	if len(b) < 2 {
		return r, errors.New("window: record truncated")
	}
	r.Kind = Kind(b[0])
	if !r.Kind.Valid() {
		return r, fmt.Errorf("window: record kind %d unknown", b[0])
	}
	keyLen := int(b[1])
	b = b[2:]
	if keyLen > maxKeyLen || len(b) < keyLen {
		return r, errors.New("window: record key truncated")
	}
	r.Window = string(b[:keyLen])
	b = b[keyLen:]
	seriesLen, n := binary.Uvarint(b)
	if n <= 0 || seriesLen > maxSeriesLen || uint64(len(b[n:])) < seriesLen {
		return r, errors.New("window: record series truncated")
	}
	b = b[n:]
	r.Series = string(b[:seriesLen])
	b = b[seriesLen:]
	count, n := binary.Uvarint(b)
	if n <= 0 || count > math.MaxInt64 {
		return r, errors.New("window: record count invalid")
	}
	b = b[n:]
	r.Agg.Count = int64(count)
	if len(b) < 24 {
		return r, errors.New("window: record aggregates truncated")
	}
	r.Agg.Sum = math.Float64frombits(binary.LittleEndian.Uint64(b[0:8]))
	r.Agg.Min = math.Float64frombits(binary.LittleEndian.Uint64(b[8:16]))
	r.Agg.Max = math.Float64frombits(binary.LittleEndian.Uint64(b[16:24]))
	b = b[24:]
	sparse, n := binary.Uvarint(b)
	if n <= 0 || sparse > NumBuckets {
		return r, errors.New("window: record sketch invalid")
	}
	b = b[n:]
	if sparse > 0 {
		sk := &Sketch{}
		prev := -1
		for j := uint64(0); j < sparse; j++ {
			idx, n := binary.Uvarint(b)
			if n <= 0 || idx >= NumBuckets {
				return r, errors.New("window: sketch bucket index invalid")
			}
			b = b[n:]
			if int(idx) <= prev {
				return r, errors.New("window: sketch buckets out of order")
			}
			prev = int(idx)
			c, n := binary.Uvarint(b)
			if n <= 0 || c == 0 {
				return r, errors.New("window: sketch bucket count invalid")
			}
			b = b[n:]
			sk.Counts[idx] = c
		}
		r.Agg.Sketch = sk
	}
	if len(b) != 0 {
		return r, errors.New("window: trailing bytes after record")
	}
	return r, nil
}

// scanRecords walks framed records in data (which excludes the magic
// header) and returns the decoded records plus the byte length of the valid
// prefix. The first torn or corrupt record stops the scan.
func scanRecords(data []byte) (recs []Record, good int) {
	off := 0
	for {
		if len(data)-off < 8 {
			return recs, off
		}
		plen := binary.LittleEndian.Uint32(data[off : off+4])
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if plen == 0 || plen > maxPayload || uint32(len(data)-off-8) < plen {
			return recs, off
		}
		payload := data[off+8 : off+8+int(plen)]
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, off
		}
		rec, err := UnmarshalRecord(payload)
		if err != nil {
			return recs, off
		}
		recs = append(recs, rec)
		off += 8 + int(plen)
	}
}

// Open opens (creating if absent) the window store at path, replays its
// readable record prefix, truncates any torn tail, and returns the store
// positioned for appends along with the replayed records.
func Open(path string) (*Store, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("window: open store: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, nil, closeJoin(f, fmt.Errorf("window: read store: %w", err))
	}
	s := &Store{f: f, path: path}
	if len(data) == 0 {
		if _, err := f.Write([]byte(storeMagic)); err != nil {
			return nil, nil, closeJoin(f, fmt.Errorf("window: write store header: %w", err))
		}
		s.size = int64(len(storeMagic))
		return s, nil, nil
	}
	if len(data) < len(storeMagic) || string(data[:len(storeMagic)]) != storeMagic {
		return nil, nil, closeJoin(f, fmt.Errorf("%w: %s", ErrCorrupt, path))
	}
	recs, good := scanRecords(data[len(storeMagic):])
	s.size = int64(len(storeMagic) + good)
	if s.size < int64(len(data)) {
		if err := f.Truncate(s.size); err != nil {
			return nil, nil, closeJoin(f, fmt.Errorf("window: truncate torn tail: %w", err))
		}
	}
	if _, err := f.Seek(s.size, io.SeekStart); err != nil {
		return nil, nil, closeJoin(f, fmt.Errorf("window: seek store: %w", err))
	}
	return s, recs, nil
}

// closeJoin closes f on an error path, folding a close failure into err.
func closeJoin(f *os.File, err error) error {
	if cerr := f.Close(); cerr != nil {
		return errors.Join(err, cerr)
	}
	return err
}

// Append frames and writes recs to the store in one write call.
func (s *Store) Append(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return errors.New("window: store closed")
	}
	buf := s.wrbuf[:0]
	for _, r := range recs {
		start := len(buf)
		buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // length + crc placeholder
		buf = AppendRecord(buf, r)
		payload := buf[start+8:]
		binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
		binary.LittleEndian.PutUint32(buf[start+4:], crc32.ChecksumIEEE(payload))
	}
	s.wrbuf = buf[:0]
	n, err := s.f.Write(buf)
	s.size += int64(n)
	if err != nil {
		return fmt.Errorf("window: append store: %w", err)
	}
	return nil
}

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Size returns the store's current byte length (header + valid records).
func (s *Store) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Close closes the underlying file; further appends fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f == nil {
		return nil
	}
	err := s.f.Close()
	s.f = nil
	if err != nil {
		return fmt.Errorf("window: close store: %w", err)
	}
	return nil
}
