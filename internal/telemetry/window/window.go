// Package window implements the time-window layer of the telemetry
// subsystem: YYYYMMDDHHMMSS window keys, mergeable per-window aggregates
// (count/sum/min/max plus a fixed-size quantile sketch), and an append-only
// file store so window history survives process restarts.
//
// The design follows the move-and-flush architecture described in
// SNIPPETS.md §2: the hot path collects raw samples elsewhere (see
// internal/telemetry), and a flush step periodically rolls them into the
// window keyed by the flush instant. A window key is the flush time
// truncated to the window width and rendered as a fixed-width, zero-padded
// UTC timestamp, so lexicographic order on keys equals chronological order
// and retention pruning is a string sort.
//
// The package never reads the wall clock itself — callers pass the instant
// in — so its behavior is fully deterministic (and it stays registered with
// the rpnlint detrand analyzer without a clock seam).
package window

import (
	"fmt"
	"time"
)

// keyLayout is the YYYYMMDDHHMMSS rendering of a window start instant.
const keyLayout = "20060102150405"

// Key returns the window key containing t for window width w: t in UTC,
// truncated down to a multiple of w, rendered YYYYMMDDHHMMSS. Widths below
// one second are treated as one second (the key has second resolution).
func Key(t time.Time, w time.Duration) string {
	if w < time.Second {
		w = time.Second
	}
	return t.UTC().Truncate(w).Format(keyLayout)
}

// ParseKey is the inverse of Key: it parses a YYYYMMDDHHMMSS key into the
// window's start instant (UTC).
func ParseKey(key string) (time.Time, error) {
	t, err := time.ParseInLocation(keyLayout, key, time.UTC)
	if err != nil {
		return time.Time{}, fmt.Errorf("window: bad key %q: %w", key, err)
	}
	return t, nil
}

// Kind discriminates what a window aggregate summarizes.
type Kind byte

const (
	// KindCounter windows hold the counter's per-window delta: Count and
	// Sum are the delta, Min/Max the smallest/largest single-flush delta.
	KindCounter Kind = 1
	// KindHistogram windows hold sample aggregates: Count samples, their
	// Sum, the window's Min/Max, and a quantile Sketch.
	KindHistogram Kind = 2
)

// Valid reports whether k is a known kind.
func (k Kind) Valid() bool { return k == KindCounter || k == KindHistogram }

// String names the kind for JSON/CLI rendering.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Agg is one window's aggregate. The zero value is empty (Count 0); Min and
// Max are only meaningful when Count > 0. Sketch is nil for counter
// windows.
type Agg struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
	// Sketch approximates the sample distribution for quantile queries
	// (histogram windows only).
	Sketch *Sketch
}

// Merge folds b into a. Merging an empty aggregate is a no-op; merging into
// an empty aggregate copies b's extremes.
func (a *Agg) Merge(b Agg) {
	if b.Count == 0 {
		return
	}
	if a.Count == 0 {
		a.Min, a.Max = b.Min, b.Max
	} else {
		if b.Min < a.Min {
			a.Min = b.Min
		}
		if b.Max > a.Max {
			a.Max = b.Max
		}
	}
	a.Count += b.Count
	a.Sum += b.Sum
	if b.Sketch != nil {
		if a.Sketch == nil {
			a.Sketch = &Sketch{}
		}
		a.Sketch.Merge(b.Sketch)
	}
}

// Mean returns the aggregate's mean sample (0 when empty).
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return 0
	}
	return a.Sum / float64(a.Count)
}
