package window

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func testRecords() []Record {
	sk := &Sketch{}
	for i := 1; i <= 10; i++ {
		sk.Add(float64(i * 100))
	}
	return []Record{
		{Kind: KindHistogram, Window: "20250810103340", Series: `rpn_frame_latency_us{model="car0"}`,
			Agg: Agg{Count: 10, Sum: 5500, Min: 100, Max: 1000, Sketch: sk}},
		{Kind: KindCounter, Window: "20250810103340", Series: "rpn_governor_ticks_total",
			Agg: Agg{Count: 42, Sum: 42, Min: 42, Max: 42}},
		{Kind: KindHistogram, Window: "20250810103350", Series: `rpn_frame_latency_us{model="car0"}`,
			Agg: Agg{Count: 1, Sum: 250, Min: 250, Max: 250, Sketch: func() *Sketch { s := &Sketch{}; s.Add(250); return s }()}},
	}
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	for i, rec := range testRecords() {
		payload := MarshalRecord(rec)
		got, err := UnmarshalRecord(payload)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d round-trip mismatch:\n got %+v\nwant %+v", i, got, rec)
		}
		// Canonical encoding: re-marshal is byte-identical.
		if !bytes.Equal(MarshalRecord(got), payload) {
			t.Fatalf("record %d re-marshal differs", i)
		}
	}
}

func TestUnmarshalRejectsCorruptPayloads(t *testing.T) {
	good := MarshalRecord(testRecords()[0])
	cases := map[string][]byte{
		"empty":        nil,
		"bad kind":     append([]byte{99}, good[1:]...),
		"short":        good[:len(good)/2],
		"trailing":     append(append([]byte{}, good...), 0xFF),
		"huge series":  {byte(KindCounter), 0, 0xFF, 0xFF, 0x7F},
		"key too long": {byte(KindCounter), 200},
	}
	for name, payload := range cases {
		if _, err := UnmarshalRecord(payload); err == nil {
			t.Errorf("%s: UnmarshalRecord accepted corrupt payload", name)
		}
	}
}

func TestStoreAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.db")
	st, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh store replayed %d records", len(recs))
	}
	want := testRecords()
	if err := st.Append(want[:2]); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(want[2:]); err != nil {
		t.Fatal(err)
	}
	size := st.Size()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("replay mismatch:\n got %+v\nwant %+v", recs, want)
	}
	if st2.Size() != size {
		t.Fatalf("reopened size %d, want %d", st2.Size(), size)
	}
	if st2.Path() != path {
		t.Fatalf("Path = %q", st2.Path())
	}
}

func TestStoreTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.db")
	st, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	if err := st.Append(want); err != nil {
		t.Fatal(err)
	}
	goodSize := st.Size()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xAB}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	st2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(recs, want) {
		t.Fatalf("torn-tail replay lost records: got %d, want %d", len(recs), len(want))
	}
	if st2.Size() != goodSize {
		t.Fatalf("torn tail not truncated: size %d, want %d", st2.Size(), goodSize)
	}
	// The store stays usable: appends after recovery land after the good
	// prefix.
	if err := st2.Append(want[:1]); err != nil {
		t.Fatal(err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(want)+1 {
		t.Fatalf("post-recovery append lost: %d records", len(recs))
	}
}

func TestStoreTruncatesCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.db")
	st, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	if err := st.Append(want[:1]); err != nil {
		t.Fatal(err)
	}
	goodSize := st.Size()
	if err := st.Append(want[1:]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one payload byte of the second record: its CRC no longer
	// matches, so replay must stop after the first record.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[goodSize+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	if !reflect.DeepEqual(recs, want[:1]) {
		t.Fatalf("corrupt-record replay = %d records, want 1", len(recs))
	}
	if st2.Size() != goodSize {
		t.Fatalf("corrupt tail not truncated: size %d, want %d", st2.Size(), goodSize)
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-store")
	if err := os.WriteFile(path, []byte("definitely not a window store"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); err == nil {
		t.Fatal("Open accepted a non-store file")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st, _, err := Open(filepath.Join(t.TempDir(), "w.db"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := st.Append(testRecords()); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := st.Close(); err != nil {
		t.Fatal("second Close must be a no-op, got", err)
	}
}

// frame builds one framed record the way Append does — for fuzz seeds and
// scan tests.
func frame(payload []byte) []byte {
	out := make([]byte, 8, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:], crc32.ChecksumIEEE(payload))
	return append(out, payload...)
}

func TestScanRecordsStopsAtBadCRC(t *testing.T) {
	p1 := MarshalRecord(testRecords()[0])
	p2 := MarshalRecord(testRecords()[1])
	data := append(frame(p1), frame(p2)...)
	data[len(data)-1] ^= 0x01
	recs, good := scanRecords(data)
	if len(recs) != 1 || good != len(frame(p1)) {
		t.Fatalf("scan = %d records, %d good bytes", len(recs), good)
	}
}

func FuzzWindowStoreRoundTrip(f *testing.F) {
	for _, rec := range testRecords() {
		f.Add(frame(MarshalRecord(rec)))
	}
	// Torn and corrupt seeds.
	torn := frame(MarshalRecord(testRecords()[0]))
	f.Add(torn[:len(torn)-3])
	flipped := append([]byte{}, torn...)
	flipped[10] ^= 0xFF
	f.Add(flipped)
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Scanning arbitrary bytes must neither panic nor claim bytes past
		// the valid prefix.
		recs, good := scanRecords(data)
		if good > len(data) {
			t.Fatalf("good prefix %d exceeds input %d", good, len(data))
		}
		// Every recovered record must survive a canonical round-trip.
		var refr []byte
		for _, rec := range recs {
			payload := MarshalRecord(rec)
			back, err := UnmarshalRecord(payload)
			if err != nil {
				t.Fatalf("re-unmarshal of recovered record failed: %v", err)
			}
			if !reflect.DeepEqual(back, rec) {
				t.Fatalf("canonical round-trip mismatch: %+v vs %+v", back, rec)
			}
			refr = append(refr, frame(payload)...)
		}
		// Re-framing the recovered records scans back to the same records.
		recs2, good2 := scanRecords(refr)
		if good2 != len(refr) || !reflect.DeepEqual(recs2, recs) {
			t.Fatalf("re-scan mismatch: %d/%d records, %d/%d bytes", len(recs2), len(recs), good2, len(refr))
		}
		// And the same bytes written behind a store header replay through
		// Open with truncation recovery, byte-for-byte.
		path := filepath.Join(t.TempDir(), "fuzz.db")
		if err := os.WriteFile(path, append([]byte(storeMagic), data...), 0o644); err != nil {
			t.Fatal(err)
		}
		st, replayed, err := Open(path)
		if err != nil {
			t.Fatalf("Open on fuzzed store: %v", err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(replayed, recs) {
			t.Fatalf("Open replay differs from scan: %d vs %d records", len(replayed), len(recs))
		}
	})
}
