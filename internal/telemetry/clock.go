package telemetry

import "time"

// now is the package clock seam. Uptime and histogram timestamps flow
// through it so tests (and deterministic replays) can pin time to a fake
// clock; the detrand analyzer rejects bare time.Now() in this package to
// keep it that way.
var now = time.Now
