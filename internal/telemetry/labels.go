package telemetry

import "strings"

// Label is one key/value pair attached to a metric series. Labels turn a
// flat metric name into a family of series — the per-layer transition
// histograms rpn_layer_transition_latency_us{layer="conv1.w"} are the
// canonical use. Keys should match the Prometheus label charset
// ([a-zA-Z_][a-zA-Z0-9_]*); values are arbitrary strings (escaped on
// rendering).
type Label struct {
	Key, Value string
}

// Series renders a metric name plus labels into the canonical series
// identifier the Registry keys on: name{k1="v1",k2="v2"} with labels
// sorted by key and values escaped (backslash, double quote, newline).
// With no labels (or only empty-keyed ones, which are dropped) it returns
// the bare name, so flat metrics are the zero-label case of the same
// scheme. The rendered form is exactly one Prometheus sample line's name
// part, which keeps /healthz JSON keys and /metrics lines greppable for
// the same string.
//
// Hot paths should call Series once at wiring time and reuse the result
// (see Hooks' per-layer cache); the registry itself treats the identifier
// as an opaque key.
func Series(name string, labels ...Label) string {
	n := 0
	for _, l := range labels {
		if l.Key != "" {
			n++
		}
	}
	if n == 0 {
		return name
	}
	ls := make([]Label, 0, n)
	for _, l := range labels {
		if l.Key != "" {
			ls = append(ls, l)
		}
	}
	// Insertion sort: label sets are tiny (typically one pair).
	for i := 1; i < len(ls); i++ {
		for j := i; j > 0 && ls[j].Key < ls[j-1].Key; j-- {
			ls[j], ls[j-1] = ls[j-1], ls[j]
		}
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// ParseSeries splits a series identifier produced by Series back into its
// base name and labels. A bare name parses as (name, nil, true). It
// returns ok=false when the identifier is malformed (an unmatched brace,
// a missing quote, trailing bytes after '}'), in which case callers should
// treat the whole string as a flat metric name. Exported for render-side
// consumers — the Prometheus writer and the OTLP encoder both decompose
// registry keys with it.
func ParseSeries(series string) (name string, labels []Label, ok bool) {
	i := strings.IndexByte(series, '{')
	if i < 0 {
		return series, nil, true
	}
	name = series[:i]
	rest := series[i+1:]
	for {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || eq+1 >= len(rest) || rest[eq+1] != '"' {
			return "", nil, false
		}
		key := rest[:eq]
		if key == "" || strings.ContainsAny(key, `{}",`) {
			return "", nil, false
		}
		value, remain, valueOK := scanQuoted(rest[eq+2:])
		if !valueOK {
			return "", nil, false
		}
		labels = append(labels, Label{Key: key, Value: value})
		if strings.HasPrefix(remain, ",") {
			rest = remain[1:]
			continue
		}
		if remain == "}" {
			return name, labels, true
		}
		return "", nil, false
	}
}

// scanQuoted consumes an escaped label value up to its closing quote and
// returns the unescaped value plus the unconsumed remainder.
func scanQuoted(s string) (value, remain string, ok bool) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			return b.String(), s[i+1:], true
		case '\\':
			if i+1 >= len(s) {
				return "", "", false
			}
			i++
			switch s[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", false
			}
		case '\n':
			return "", "", false
		default:
			b.WriteByte(c)
		}
	}
	return "", "", false
}

// escapeLabelValue applies the Prometheus label-value escaping rules.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}
