package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrentAccess hammers the registry from writer and
// snapshot-reader goroutines; run under `go test -race` (scripts/verify.sh
// includes this package in the race suite). 1000 iterations per goroutine.
func TestRegistryConcurrentAccess(t *testing.T) {
	const iters = 1000
	r := NewRegistry(WithWindow(64))
	h := NewHooks(r)
	h.SetLevels([]float64{0, 0.5, 0.9})

	var wg sync.WaitGroup
	writer := func(f func(i int)) {
		wg.Add(1)
		go func(f func(i int)) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				f(i)
			}
		}(f)
	}
	writer(func(i int) { r.Inc("counter") })
	writer(func(i int) { r.SetGauge("gauge", float64(i)) })
	writer(func(i int) { r.Observe("hist", float64(i%17)) })
	writer(func(i int) { h.ObserveTransition(i%3, (i+1)%3, int64(i), time.Microsecond) })
	writer(func(i int) { h.ObserveTick(i, i%3, i%2 == 0, false, i%5 == 0, time.Microsecond) })
	writer(func(i int) { h.ObserveFrame(time.Duration(i) * time.Nanosecond) })
	// Labeled paths: two goroutines hammer the same labeled series (the
	// Hooks layer cache is shared state), one alternates layers, and one
	// writes the flat metric the labeled family collides with.
	writer(func(i int) { h.ObserveParamTransition(1, 0, "conv1.w", int64(i), time.Microsecond) })
	writer(func(i int) { h.ObserveParamTransition(2, 0, "conv1.w", int64(i), time.Microsecond) })
	writer(func(i int) { h.ObserveParamTransition(1, 0, []string{"fc.w", "fc.b"}[i%2], int64(i), time.Microsecond) })
	writer(func(i int) { r.Observe(MetricLayerTransitionLatency, float64(i%13)) })

	// Readers: snapshots and Prometheus renders interleaved with writes.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				s := r.Snapshot()
				if s.Counters["counter"] < 0 {
					t.Error("negative counter in snapshot")
					return
				}
				var b strings.Builder
				writePrometheus(&b, s)
				_ = r.Uptime()
			}
		}()
	}
	wg.Wait()

	s := r.Snapshot()
	if s.Counters["counter"] != iters {
		t.Errorf("counter = %d, want %d", s.Counters["counter"], iters)
	}
	if s.Counters[MetricTransitions] != iters {
		t.Errorf("transitions = %d, want %d", s.Counters[MetricTransitions], iters)
	}
	if s.Histograms["hist"].Count != iters {
		t.Errorf("hist count = %d, want %d", s.Histograms["hist"].Count, iters)
	}
	// Labeled writes must land in their own series: 2 goroutines × iters
	// into conv1.w, iters/2 each into the alternating layers, and the
	// flat collision metric stays separate.
	if got := s.Histograms[LayerSeries("conv1.w")].Count; got != 2*iters {
		t.Errorf("conv1.w labeled count = %d, want %d", got, 2*iters)
	}
	if got := s.Histograms[LayerSeries("fc.w")].Count + s.Histograms[LayerSeries("fc.b")].Count; got != iters {
		t.Errorf("alternating labeled counts sum = %d, want %d", got, iters)
	}
	if got := s.Histograms[MetricLayerTransitionLatency].Count; got != iters {
		t.Errorf("flat collision histogram count = %d, want %d", got, iters)
	}
}

func BenchmarkObserve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Observe("hist", float64(i&1023))
	}
}

func BenchmarkSnapshot(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.Inc("c")
		r.SetGauge("g", 1)
		for j := 0; j < 256; j++ {
			r.Observe("h", float64(j))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
