package telemetry

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with a fixed clock, a persistence store,
// and a deterministic set of observations, so the /healthz document is
// byte-stable.
func goldenRegistry(t *testing.T, dir string, quarantined bool) *Registry {
	t.Helper()
	clock, setClock := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second), WithRetention(360))
	if err := r.Persist(filepath.Join(dir, "windows.db")); err != nil {
		t.Fatal(err)
	}
	r.SetGauge(MetricLevel, 2)
	r.SetGauge(MetricSparsity, 0.75)
	r.Add(MetricLevelSwitches, 3)
	r.Observe(MetricRestoreLatency, 120)
	r.Observe(MetricRestoreLatency, 480)
	if quarantined {
		r.SetGauge(Series(MetricHealthState, Label{Key: LabelModel, Value: "car1"}), float64(HealthQuarantined))
	}
	r.Flush()
	setClock(windowTestStart.Add(15 * time.Second))
	return r
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run go test -run %s -update): %v", t.Name(), err)
	}
	if string(got) != string(want) {
		t.Errorf("%s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// TestHealthzGolden pins the schema-2 /healthz document — including the
// telemetry window/persistence section — against golden files, in both the
// 200 "ok" and the 503 "degraded" shape.
func TestHealthzGolden(t *testing.T) {
	for _, tc := range []struct {
		name        string
		golden      string
		quarantined bool
		wantCode    int
	}{
		{"ok", "healthz_ok.golden", false, http.StatusOK},
		{"degraded", "healthz_degraded.golden", true, http.StatusServiceUnavailable},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r := goldenRegistry(t, dir, tc.quarantined)
			defer func() {
				if err := r.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			rec := httptest.NewRecorder()
			writeHealthz(rec, r, nil)
			if rec.Code != tc.wantCode {
				t.Fatalf("status = %d, want %d", rec.Code, tc.wantCode)
			}
			// The persistence path is a temp dir; normalize it for the
			// golden compare.
			body := strings.ReplaceAll(rec.Body.String(), dir, "$DIR")
			checkGolden(t, tc.golden, []byte(body))
		})
	}
}

// TestHealthzWindowQuery exercises the sar-style query over live HTTP,
// including parameter validation and the 503-preserving contract.
func TestHealthzWindowQuery(t *testing.T) {
	clock, setClock := settableClock(windowTestStart)
	r := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second))
	r.Observe("rpn_frame_latency_us", 1500)
	r.Flush()
	setClock(windowTestStart.Add(20 * time.Second))
	r.Observe("rpn_frame_latency_us", 2500)

	srv, err := Serve(r, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if err := resp.Body.Close(); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	code, body := get("/healthz?window=5m&lookback=2h")
	if code != http.StatusOK {
		t.Fatalf("status = %d: %s", code, body)
	}
	var doc struct {
		Schema    int `json:"schema"`
		Telemetry struct {
			Width     string `json:"width"`
			Retention int    `json:"retention"`
		} `json:"telemetry"`
		Query struct {
			Window   string `json:"window"`
			Lookback string `json:"lookback"`
		} `json:"query"`
		Windows map[string]WindowSeries `json:"windows"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != healthzSchema || doc.Telemetry.Width != "10s" || doc.Telemetry.Retention != DefaultRetention {
		t.Fatalf("telemetry section = %+v", doc)
	}
	if doc.Query.Window != "5m0s" || doc.Query.Lookback != "2h0m0s" {
		t.Fatalf("query echo = %+v", doc.Query)
	}
	ws, ok := doc.Windows["rpn_frame_latency_us"]
	if !ok || len(ws.Points) != 1 || ws.Points[0].Count != 2 {
		t.Fatalf("windowed series = %+v", doc.Windows)
	}
	// Both samples merged into one 5m bucket despite different 10s
	// windows.
	if ws.Points[0].Sum != 4000 {
		t.Fatalf("bucket sum = %v, want 4000", ws.Points[0].Sum)
	}

	if code, _ := get("/healthz?window=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad window param: status = %d, want 400", code)
	}
	if code, _ := get("/healthz?lookback=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bad lookback param: status = %d, want 400", code)
	}

	// The windowed query preserves the degraded → 503 contract.
	r.SetGauge(Series(MetricHealthState, Label{Key: LabelModel, Value: "car0"}), float64(HealthQuarantined))
	if code, _ := get("/healthz?window=5m&lookback=2h"); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded windowed query: status = %d, want 503", code)
	}
}

// TestHealthzWindowsSurviveRestart is the ISSUE 9 acceptance e2e: windows
// written by one server process answer ?window=&lookback= queries from the
// next process over the same store file.
func TestHealthzWindowsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "windows.db")
	clock, setClock := settableClock(windowTestStart)

	r1 := NewRegistry(WithClock(clock), WithWindowWidth(10*time.Second))
	if err := r1.Persist(path); err != nil {
		t.Fatal(err)
	}
	r1.Observe("rpn_frame_latency_us", 1000)
	r1.Flush()
	setClock(windowTestStart.Add(10 * time.Second))
	r1.Observe("rpn_frame_latency_us", 3000)
	if err := r1.Close(); err != nil { // final flush persists the second window
		t.Fatal(err)
	}

	// Process restart: fresh registry + fresh server over the same file.
	clock2, _ := settableClock(windowTestStart.Add(30 * time.Second))
	r2 := NewRegistry(WithClock(clock2), WithWindowWidth(10*time.Second))
	if err := r2.Persist(path); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := r2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	srv, err := Serve(r2, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}()

	resp, err := http.Get("http://" + srv.Addr() + "/healthz?window=5m&lookback=2h")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Telemetry struct {
			Persistence *PersistenceStatus `json:"persistence"`
		} `json:"telemetry"`
		Windows map[string]WindowSeries `json:"windows"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	ws := doc.Windows["rpn_frame_latency_us"]
	if len(ws.Points) != 1 || ws.Points[0].Count != 2 || ws.Points[0].Sum != 4000 {
		t.Fatalf("restarted windowed query = %+v", ws)
	}
	if doc.Telemetry.Persistence == nil || doc.Telemetry.Persistence.Path != path || doc.Telemetry.Persistence.Bytes == 0 {
		t.Fatalf("persistence status = %+v", doc.Telemetry.Persistence)
	}
}
