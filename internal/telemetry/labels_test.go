package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestSeriesRendering(t *testing.T) {
	cases := []struct {
		name   string
		labels []Label
		want   string
	}{
		{"rpn_x", nil, "rpn_x"},
		{"rpn_x", []Label{{Key: "layer", Value: "conv1.w"}}, `rpn_x{layer="conv1.w"}`},
		// Labels sort by key regardless of argument order.
		{"rpn_x", []Label{{Key: "b", Value: "2"}, {Key: "a", Value: "1"}}, `rpn_x{a="1",b="2"}`},
		// Empty label VALUES are kept: a labeled series with an empty value
		// is distinct from the flat metric.
		{"rpn_x", []Label{{Key: "layer", Value: ""}}, `rpn_x{layer=""}`},
		// Empty label KEYS are dropped; all-empty degrades to the flat name.
		{"rpn_x", []Label{{Key: "", Value: "v"}}, "rpn_x"},
		// Values are escaped.
		{"rpn_x", []Label{{Key: "l", Value: `a"b\c` + "\n"}}, `rpn_x{l="a\"b\\c\n"}`},
	}
	for _, c := range cases {
		if got := Series(c.name, c.labels...); got != c.want {
			t.Errorf("Series(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
	}
}

func TestParseSeriesRoundTrip(t *testing.T) {
	cases := [][]Label{
		nil,
		{{Key: "layer", Value: "conv1.w"}},
		{{Key: "layer", Value: ""}},
		{{Key: "a", Value: "1"}, {Key: "b", Value: `x"y\z` + "\n"}},
	}
	for _, labels := range cases {
		s := Series("rpn_m", labels...)
		name, got, ok := ParseSeries(s)
		if !ok || name != "rpn_m" {
			t.Fatalf("ParseSeries(%q) = %q, %v, %v", s, name, got, ok)
		}
		if len(got) != len(labels) {
			t.Fatalf("ParseSeries(%q) labels = %v, want %v", s, got, labels)
		}
		for i := range labels {
			if got[i] != labels[i] {
				t.Errorf("ParseSeries(%q) label %d = %+v, want %+v", s, i, got[i], labels[i])
			}
		}
	}
}

func TestParseSeriesMalformed(t *testing.T) {
	for _, s := range []string{
		`rpn_x{`, `rpn_x{layer}`, `rpn_x{layer=}`, `rpn_x{layer="a}`,
		`rpn_x{layer="a"`, `rpn_x{layer="a"}trailing`, `rpn_x{layer="a",}`,
		`rpn_x{="a"}`, `rpn_x{l="a"extra"}`, "rpn_x{l=\"a\nb\"}", `rpn_x{l="a\q"}`,
	} {
		if _, _, ok := ParseSeries(s); ok {
			t.Errorf("ParseSeries(%q) accepted malformed input", s)
		}
	}
}

// TestLabeledFlatCollision pins the collision semantics: a flat metric, a
// labeled series with an empty value, and a labeled series with a value
// are three distinct registry entries, and the Prometheus rendering emits
// all three under one # TYPE header.
func TestLabeledFlatCollision(t *testing.T) {
	r := NewRegistry()
	r.Add("rpn_coll_total", 1)
	r.Add(Series("rpn_coll_total", Label{Key: "layer", Value: ""}), 10)
	r.Add(Series("rpn_coll_total", Label{Key: "layer", Value: "w"}), 100)
	// A flat metric that sorts lexically between the base name and its
	// labeled keys must not split the family's TYPE header.
	r.Add("rpn_coll_totalz", 5)

	snap := r.Snapshot()
	if len(snap.Counters) != 4 {
		t.Fatalf("registered %d counters, want 4 distinct: %v", len(snap.Counters), snap.Counters)
	}
	if snap.Counters["rpn_coll_total"] != 1 ||
		snap.Counters[`rpn_coll_total{layer=""}`] != 10 ||
		snap.Counters[`rpn_coll_total{layer="w"}`] != 100 {
		t.Errorf("collision series mixed values: %v", snap.Counters)
	}

	var b strings.Builder
	writePrometheus(&b, snap)
	text := b.String()
	if got := strings.Count(text, "# TYPE rpn_coll_total counter"); got != 1 {
		t.Errorf("family TYPE header appears %d times, want 1\n%s", got, text)
	}
	for _, want := range []string{
		"rpn_coll_total 1\n",
		`rpn_coll_total{layer=""} 10` + "\n",
		`rpn_coll_total{layer="w"} 100` + "\n",
		"# TYPE rpn_coll_totalz counter\nrpn_coll_totalz 5\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q\n%s", want, text)
		}
	}
}

// TestLabeledHistogramRendering checks the summary rendering of a labeled
// histogram: the quantile label appends after the series labels, and
// _sum/_count carry the series labels.
func TestLabeledHistogramRendering(t *testing.T) {
	r := NewRegistry()
	for i := 1; i <= 4; i++ {
		r.Observe(LayerSeries("conv1.w"), float64(10*i))
	}
	var b strings.Builder
	writePrometheus(&b, r.Snapshot())
	text := b.String()
	for _, want := range []string{
		"# TYPE rpn_layer_transition_latency_us summary\n",
		`rpn_layer_transition_latency_us{layer="conv1.w",quantile="0.5"} 25` + "\n",
		`rpn_layer_transition_latency_us_sum{layer="conv1.w"} 100` + "\n",
		`rpn_layer_transition_latency_us_count{layer="conv1.w"} 4` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("rendering missing %q\n%s", want, text)
		}
	}
}

// TestHooksObserveParamTransition checks the per-layer fan-out: each
// parameter lands in its own labeled histogram series.
func TestHooksObserveParamTransition(t *testing.T) {
	r := NewRegistry()
	h := NewHooks(r)
	h.ObserveParamTransition(2, 0, "conv1.w", 64, 10*time.Microsecond)
	h.ObserveParamTransition(2, 0, "fc.w", 32, 20*time.Microsecond)
	h.ObserveParamTransition(1, 0, "conv1.w", 16, 30*time.Microsecond)

	snap := r.Snapshot()
	c1 := snap.Histograms[LayerSeries("conv1.w")]
	if c1.Count != 2 || c1.Sum != 40 {
		t.Errorf("conv1.w series = %+v, want count 2 sum 40µs", c1)
	}
	fc := snap.Histograms[LayerSeries("fc.w")]
	if fc.Count != 1 || fc.Sum != 20 {
		t.Errorf("fc.w series = %+v, want count 1 sum 20µs", fc)
	}
}

// FuzzSeriesRoundTrip is the labeled-registry grammar property: for any
// clean base name and label keys (no series metacharacters) and ARBITRARY
// label values, ParseSeries(Series(...)) recovers the inputs exactly, and
// for arbitrary inputs neither function panics.
func FuzzSeriesRoundTrip(f *testing.F) {
	f.Add("rpn_x", "layer", "conv1.w")
	f.Add("rpn_x", "layer", "")
	f.Add("rpn_x", "l", `a"b\c`+"\n")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, name, key, value string) {
		s := Series(name, Label{Key: key, Value: value})
		gotName, labels, ok := ParseSeries(s)
		if strings.ContainsAny(name, `{}"`) || strings.Contains(name, "\n") ||
			strings.ContainsAny(key, `{}",=`) || strings.ContainsAny(key, "\\\n") {
			return // outside the grammar: only the no-panic property holds
		}
		if key == "" {
			if !ok || gotName != name || len(labels) != 0 {
				t.Fatalf("flat round trip of %q = (%q, %v, %v)", s, gotName, labels, ok)
			}
			return
		}
		if !ok || gotName != name || len(labels) != 1 ||
			labels[0].Key != key || labels[0].Value != value {
			t.Fatalf("round trip of %q = (%q, %v, %v), want (%q, [{%q %q}])",
				s, gotName, labels, ok, name, key, value)
		}
	})
}
