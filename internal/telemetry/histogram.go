package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry/window"
)

// histogram is the two-tier rolling histogram. The hot path (observe)
// appends into one of several shards — each a fixed-capacity sample buffer
// behind its own mutex, chosen round-robin by an atomic sequence — so
// concurrent writers spread across locks instead of queueing on one. The
// flush path (drainLocked, guarded by flushMu) periodically moves shard
// contents into the flushed tier: the rolling ring the quantile snapshot
// reads, the lifetime count/sum/min/max, and the lifetime quantile
// sketch. Collect and flush never share a mutex, which is the
// move-and-flush split this package is named for.
//
// Exactness: count, sum, min and max are exact even when a shard buffer
// wraps between flushes (the buffer ring-overwrites, but n/sum/extremes
// keep counting), so lifetime aggregates never undercount under overload;
// only the *window* quantiles degrade to the most recent samples.
type histogram struct {
	shards []histShard
	seq    atomic.Uint32

	// flushMu guards everything below (the flushed tier).
	flushMu sync.Mutex
	ring    []float64 // rolling window, len == configured window
	next    int       // next ring write position
	filled  int       // valid samples in ring
	count   int64     // lifetime samples
	sum     float64   // lifetime sum
	min     float64   // lifetime min (valid when count > 0)
	max     float64   // lifetime max (valid when count > 0)
	sketch  window.Sketch
}

// histShard is one collect buffer. Padded so adjacent shards do not share
// a cache line under contention.
type histShard struct {
	mu  sync.Mutex
	buf []float64 // fixed capacity; ring-overwrites past cap
	n   int       // samples since last drain (may exceed len(buf))
	sum float64
	min float64
	max float64
	_   [48]byte
}

func newHistogram(windowSamples, shards int) *histogram {
	if windowSamples < 1 {
		windowSamples = DefaultWindow
	}
	if shards < 1 {
		shards = 1
	}
	// Shard buffers together hold at least one full window (round-robin
	// spreads samples evenly, so ceil(window/shards) per shard suffices),
	// with a floor so bursts between flushes rarely wrap.
	per := (windowSamples + shards - 1) / shards
	if per < 64 {
		per = 64
	}
	h := &histogram{
		shards: make([]histShard, shards),
		ring:   make([]float64, windowSamples),
	}
	for i := range h.shards {
		h.shards[i].buf = make([]float64, per)
	}
	return h
}

// observe is the hot path: one atomic add to pick a shard, one shard mutex,
// one buffer store. No allocation.
func (h *histogram) observe(v float64) {
	s := &h.shards[int(h.seq.Add(1))&(len(h.shards)-1)]
	s.mu.Lock()
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if s.n == 0 || v > s.max {
		s.max = v
	}
	s.buf[s.n%len(s.buf)] = v
	s.n++
	s.sum += v
	s.mu.Unlock()
}

// drainLocked moves every shard's pending samples into the flushed tier and
// returns the flush delta (with a fresh sketch) for time-window merging.
// The caller holds flushMu.
//
// Because shard assignment is strict round-robin on the atomic sequence,
// arrival order is reconstructible: the k-th pending sample lives in shard
// (firstSeq+k) mod S, so consuming shards in that rotation feeds the
// rolling ring in arrival order and the ring's eviction really does drop
// the oldest samples. Two degradations are deliberate: a shard buffer that
// wrapped between flushes (overload) falls back to shard-order append, and
// a writer caught between its sequence increment and its buffer store
// (racing this drain) only skews the rotation offset — the leftover pass
// still consumes every sample, so count/sum/min/max stay exact.
func (h *histogram) drainLocked() window.Agg {
	var agg window.Agg
	for i := range h.shards {
		h.shards[i].mu.Lock()
	}
	pending, wrapped := 0, false
	for i := range h.shards {
		s := &h.shards[i]
		if s.n > len(s.buf) {
			wrapped = true
		}
		pending += keptOf(s)
		if s.n > 0 {
			agg.Merge(window.Agg{Count: int64(s.n), Sum: s.sum, Min: s.min, Max: s.max})
		}
	}
	if pending > 0 {
		agg.Sketch = &window.Sketch{}
		consumed := make([]int, len(h.shards))
		feed := func(i int) {
			s := &h.shards[i]
			j := consumed[i]
			consumed[i]++
			v := s.buf[j]
			if s.n > len(s.buf) { // wrapped: oldest kept sample sits at n%cap
				v = s.buf[(s.n+j)%len(s.buf)]
			}
			h.ring[h.next] = v
			h.next++
			if h.next == len(h.ring) {
				h.next = 0
			}
			if h.filled < len(h.ring) {
				h.filled++
			}
			agg.Sketch.Add(v)
		}
		if !wrapped && len(h.shards) > 1 {
			mask := len(h.shards) - 1
			first := int(int32(h.seq.Load())) - pending + 1
			for k := 0; k < pending; k++ {
				if i := (first + k) & mask; consumed[i] < keptOf(&h.shards[i]) {
					feed(i)
				}
			}
		}
		for i := range h.shards {
			for consumed[i] < keptOf(&h.shards[i]) {
				feed(i)
			}
		}
	}
	for i := range h.shards {
		h.shards[i].n, h.shards[i].sum = 0, 0
		h.shards[i].mu.Unlock()
	}
	if agg.Count == 0 {
		return agg
	}
	if h.count == 0 || agg.Min < h.min {
		h.min = agg.Min
	}
	if h.count == 0 || agg.Max > h.max {
		h.max = agg.Max
	}
	h.count += agg.Count
	h.sum += agg.Sum
	if agg.Sketch != nil {
		h.sketch.Merge(agg.Sketch)
	}
	return agg
}

// keptOf is the number of shard samples still in the buffer (its pending
// count clamped to capacity).
func keptOf(s *histShard) int {
	if s.n > len(s.buf) {
		return len(s.buf)
	}
	return s.n
}

// snapshot summarizes the flushed tier (the Registry flushes before
// snapshotting, so pending shard samples are already drained). Sorting a
// ring copy is O(w log w) with w ≤ the configured window; snapshots run
// off the hot path (an HTTP scrape or a test assertion).
func (h *histogram) snapshot() HistogramSnapshot {
	h.flushMu.Lock()
	defer h.flushMu.Unlock()
	s := HistogramSnapshot{
		Count:       h.count,
		Sum:         h.sum,
		Window:      h.filled,
		LifetimeMin: h.min,
		LifetimeMax: h.max,
	}
	if h.filled == 0 {
		return s
	}
	s.Buckets = make([]uint64, len(h.sketch.Counts))
	copy(s.Buckets, h.sketch.Counts[:])
	sorted := make([]float64, h.filled)
	copy(sorted, h.ring[:h.filled])
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-th quantile (0..1) of an ascending-sorted slice
// using linear interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
