package telemetry

import "sort"

// histogram is a fixed-window rolling histogram: the last `cap(window)`
// samples in a ring buffer, plus monotonic lifetime count/sum. Quantiles
// are computed over the window at snapshot time, so the write path is one
// store and two adds — cheap enough for per-tick recording.
//
// histogram is not internally synchronized; the owning Registry's mutex
// guards every access.
type histogram struct {
	window []float64 // ring buffer, len == configured window
	next   int       // next write position
	filled int       // number of valid samples in window
	count  int64     // lifetime samples
	sum    float64   // lifetime sum
}

func newHistogram(window int) *histogram {
	if window < 1 {
		window = DefaultWindow
	}
	return &histogram{window: make([]float64, window)}
}

func (h *histogram) observe(v float64) {
	h.window[h.next] = v
	h.next++
	if h.next == len(h.window) {
		h.next = 0
	}
	if h.filled < len(h.window) {
		h.filled++
	}
	h.count++
	h.sum += v
}

// snapshot summarizes the rolling window. Sorting a copy is O(w log w) with
// w ≤ the configured window; snapshots run off the hot path (an HTTP
// scrape or a test assertion).
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count, Sum: h.sum, Window: h.filled}
	if h.filled == 0 {
		return s
	}
	sorted := make([]float64, h.filled)
	copy(sorted, h.window[:h.filled])
	sort.Float64s(sorted)
	s.Min = sorted[0]
	s.Max = sorted[len(sorted)-1]
	s.P50 = quantile(sorted, 0.50)
	s.P90 = quantile(sorted, 0.90)
	s.P99 = quantile(sorted, 0.99)
	return s
}

// quantile returns the q-th quantile (0..1) of an ascending-sorted slice
// using linear interpolation between closest ranks.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(len(sorted)-1)
	lo := int(rank)
	if lo == len(sorted)-1 {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
