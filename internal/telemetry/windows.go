package telemetry

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/telemetry/window"
)

// Time-window tier defaults: 10-second windows retained for two hours per
// series. See docs/OPERATIONS.md for the memory math behind these numbers.
const (
	DefaultWindowWidth = 10 * time.Second
	DefaultRetention   = 720
)

// WithWindowWidth sets the time-window width samples are aggregated into
// (clamped to ≥ 1s: window keys have second resolution).
func WithWindowWidth(d time.Duration) Option {
	return func(r *Registry) {
		if d >= time.Second {
			r.win.width = d
		}
	}
}

// WithRetention sets how many windows each series retains in memory (the
// append-only store keeps everything). Values below 1 are ignored.
func WithRetention(n int) Option {
	return func(r *Registry) {
		if n >= 1 {
			r.win.retention = n
		}
	}
}

// windowState is the registry's time-window tier: per-series window
// aggregates with bounded retention, the optional append-only store, and
// the optional background aggregator. mu guards every field (counter
// flush cursors included — see counter.flushed).
type windowState struct {
	mu         sync.Mutex
	width      time.Duration
	retention  int
	series     map[string]*seriesWindows
	store      *window.Store
	pending    []window.Record // flush deltas not yet appended to store
	lastFlush  time.Time
	persistErr error

	aggDone chan struct{}
	aggWG   sync.WaitGroup
	closed  bool
}

type seriesWindows struct {
	kind window.Kind
	wins map[string]*window.Agg
}

// Flush drains the hot path into the current time window: histogram shards
// roll into their series' window (keyed by the flush instant), counter
// deltas since the previous flush likewise. With persistence enabled the
// deltas are also appended to the window store. Reads (Snapshot, the HTTP
// handlers, WindowQuery) flush implicitly; the background aggregator
// (StartAggregator) flushes periodically so windows form and persist even
// when nobody is scraping.
func (r *Registry) Flush() { r.flushAt(r.clock()) }

func (r *Registry) flushAt(t time.Time) {
	set := r.live.Load()
	w := &r.win
	w.mu.Lock()
	defer w.mu.Unlock()
	key := window.Key(t, w.width)
	for name, h := range set.hists {
		h.flushMu.Lock()
		agg := h.drainLocked()
		h.flushMu.Unlock()
		if agg.Count > 0 {
			w.mergeLocked(window.Record{Kind: window.KindHistogram, Window: key, Series: name, Agg: agg}, true)
		}
	}
	for name, c := range set.counters {
		v := c.v.Load()
		if delta := v - c.flushed; delta > 0 {
			c.flushed = v
			d := float64(delta)
			w.mergeLocked(window.Record{Kind: window.KindCounter, Window: key, Series: name,
				Agg: window.Agg{Count: delta, Sum: d, Min: d, Max: d}}, true)
		}
	}
	w.lastFlush = t
	w.persistLocked()
}

// mergeLocked folds one flush delta into the in-memory window state and,
// when persist is set and a store is attached, queues it for append.
// Caller holds w.mu.
func (w *windowState) mergeLocked(rec window.Record, persist bool) {
	sw := w.series[rec.Series]
	if sw == nil {
		sw = &seriesWindows{kind: rec.Kind, wins: map[string]*window.Agg{}}
		w.series[rec.Series] = sw
	}
	agg := sw.wins[rec.Window]
	if agg == nil {
		agg = &window.Agg{}
		sw.wins[rec.Window] = agg
		if len(sw.wins) > w.retention {
			w.pruneLocked(sw)
		}
	}
	agg.Merge(rec.Agg)
	if persist && w.store != nil {
		w.pending = append(w.pending, rec)
	}
}

// pruneLocked drops the oldest windows of one series down to the retention
// bound. Keys are zero-padded timestamps, so lexicographic order is
// chronological.
func (w *windowState) pruneLocked(sw *seriesWindows) {
	keys := sortedKeys(sw.wins)
	for _, k := range keys[:len(keys)-w.retention] {
		delete(sw.wins, k)
	}
}

// persistLocked appends queued flush deltas to the store. An append
// failure is remembered (surfaced via PersistStatus and /healthz) and the
// queue is dropped either way so a dead disk cannot grow it without bound.
func (w *windowState) persistLocked() {
	if w.store == nil || len(w.pending) == 0 {
		return
	}
	if err := w.store.Append(w.pending); err != nil {
		w.persistErr = err
	}
	w.pending = w.pending[:0]
}

// Persist attaches an append-only window store at path: existing records
// are replayed into the in-memory window state (so history survives the
// restart), and every subsequent flush appends its deltas. Call at most
// once, before Close.
func (r *Registry) Persist(path string) error {
	st, recs, err := window.Open(path)
	if err != nil {
		return err
	}
	w := &r.win
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.store != nil {
		err := errors.New("telemetry: persistence already enabled or registry closed")
		if cerr := st.Close(); cerr != nil {
			return errors.Join(err, cerr)
		}
		return err
	}
	w.store = st
	for _, rec := range recs {
		w.mergeLocked(rec, false)
	}
	return nil
}

// PersistenceStatus reports the window store's health for /healthz.
type PersistenceStatus struct {
	Path string `json:"path"`
	// Bytes is the store's current size (header plus records).
	Bytes int64 `json:"bytes"`
	// LastFlush is the last flush instant (RFC 3339, UTC; empty before the
	// first flush).
	LastFlush string `json:"last_flush,omitempty"`
	// Error carries the most recent append failure, if any.
	Error string `json:"error,omitempty"`
}

// PersistStatus returns the persistence state; ok is false when Persist
// was never called.
func (r *Registry) PersistStatus() (PersistenceStatus, bool) {
	w := &r.win
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.store == nil {
		return PersistenceStatus{}, false
	}
	st := PersistenceStatus{Path: w.store.Path(), Bytes: w.store.Size()}
	if !w.lastFlush.IsZero() {
		st.LastFlush = w.lastFlush.UTC().Format(time.RFC3339)
	}
	if w.persistErr != nil {
		st.Error = w.persistErr.Error()
	}
	return st, true
}

// WindowConfig describes the time-window tier for /healthz.
type WindowConfig struct {
	// Width is the window width (Go duration string).
	Width string `json:"width"`
	// Retention is the per-series in-memory window bound.
	Retention int `json:"retention"`
	// Series and Windows count the series and total windows currently
	// retained.
	Series  int `json:"series"`
	Windows int `json:"windows"`
}

// WindowInfo returns the current window configuration and occupancy.
func (r *Registry) WindowInfo() WindowConfig {
	w := &r.win
	w.mu.Lock()
	defer w.mu.Unlock()
	cfg := WindowConfig{Width: w.width.String(), Retention: w.retention, Series: len(w.series)}
	for _, sw := range w.series {
		cfg.Windows += len(sw.wins)
	}
	return cfg
}

// StartAggregator launches the background flush loop: every interval
// (clamped to ≥ 100ms, default 1s for non-positive values) the hot path is
// drained into time windows and, with persistence on, appended to the
// store. Idempotent; stopped by Close.
func (r *Registry) StartAggregator(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	w := &r.win
	w.mu.Lock()
	if w.aggDone != nil || w.closed {
		w.mu.Unlock()
		return
	}
	done := make(chan struct{})
	w.aggDone = done
	w.mu.Unlock()
	w.aggWG.Add(1)
	go func() {
		defer w.aggWG.Done()
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				r.Flush()
			}
		}
	}()
}

// Close stops the background aggregator (if running), performs a final
// flush, and closes the window store (if attached). The registry's hot
// path stays usable after Close, but windows no longer persist. Returns
// the first persistence error encountered, if any.
func (r *Registry) Close() error {
	w := &r.win
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	done := w.aggDone
	w.mu.Unlock()
	if done != nil {
		close(done)
		w.aggWG.Wait()
	}
	r.Flush()
	w.mu.Lock()
	st := w.store
	w.store = nil
	err := w.persistErr
	w.mu.Unlock()
	if st != nil {
		if cerr := st.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// WindowQueryOptions selects and re-buckets windowed series, sar-style.
type WindowQueryOptions struct {
	// Bucket is the reporting bucket width; windows are merged up into
	// buckets. Zero or below the native width means the native width.
	Bucket time.Duration
	// Lookback bounds how far back windows are reported (default 1h).
	Lookback time.Duration
	// Metric restricts the result to one base family (label-stripped
	// name); empty means all.
	Metric string
	// Series restricts the result to one exact series key; empty means
	// all.
	Series string
}

// WindowPoint is one reporting bucket of one series.
type WindowPoint struct {
	// Window is the bucket's YYYYMMDDHHMMSS key (UTC).
	Window string `json:"window"`
	Count  int64  `json:"count"`
	// Sum is the sample sum (histograms) or the counter delta.
	Sum  float64 `json:"sum"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
	// P50/P90/P99 are sketch estimates (histogram series only).
	P50 float64 `json:"p50,omitempty"`
	P90 float64 `json:"p90,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Rate is the counter delta per second of bucket width (counter series
	// only).
	Rate float64 `json:"rate,omitempty"`
}

// WindowSeries is one series' windowed history.
type WindowSeries struct {
	// Kind is "histogram" or "counter".
	Kind string `json:"kind"`
	// Points are the non-empty buckets, oldest first.
	Points []WindowPoint `json:"points"`
}

// WindowQuery flushes the hot path and returns the windowed history of
// matching series, merged up into opt.Bucket-wide buckets, restricted to
// opt.Lookback. The result maps series key → windowed series.
func (r *Registry) WindowQuery(opt WindowQueryOptions) map[string]WindowSeries {
	t := r.clock()
	r.flushAt(t)
	w := &r.win
	w.mu.Lock()
	defer w.mu.Unlock()
	bucket := opt.Bucket
	if bucket < w.width {
		bucket = w.width
	}
	lookback := opt.Lookback
	if lookback <= 0 {
		lookback = time.Hour
	}
	horizon := t.Add(-lookback)
	out := make(map[string]WindowSeries)
	for series, sw := range w.series {
		if opt.Series != "" && series != opt.Series {
			continue
		}
		if opt.Metric != "" {
			base, _, ok := ParseSeries(series)
			if !ok || base != opt.Metric {
				continue
			}
		}
		buckets := map[string]*window.Agg{}
		for key, agg := range sw.wins {
			wt, err := window.ParseKey(key)
			if err != nil || !wt.Add(w.width).After(horizon) {
				continue
			}
			bk := window.Key(wt, bucket)
			b := buckets[bk]
			if b == nil {
				b = &window.Agg{}
				buckets[bk] = b
			}
			b.Merge(*agg)
		}
		if len(buckets) == 0 {
			continue
		}
		pts := make([]WindowPoint, 0, len(buckets))
		for bk, agg := range buckets {
			pts = append(pts, windowPoint(bk, agg, sw.kind, bucket))
		}
		sort.Slice(pts, func(i, j int) bool { return pts[i].Window < pts[j].Window })
		out[series] = WindowSeries{Kind: sw.kind.String(), Points: pts}
	}
	return out
}

func windowPoint(key string, agg *window.Agg, kind window.Kind, bucket time.Duration) WindowPoint {
	p := WindowPoint{
		Window: key,
		Count:  agg.Count,
		Sum:    agg.Sum,
		Min:    agg.Min,
		Max:    agg.Max,
		Mean:   agg.Mean(),
	}
	switch kind {
	case window.KindHistogram:
		if agg.Sketch != nil {
			p.P50 = agg.Sketch.Quantile(0.50)
			p.P90 = agg.Sketch.Quantile(0.90)
			p.P99 = agg.Sketch.Quantile(0.99)
		}
	case window.KindCounter:
		if secs := bucket.Seconds(); secs > 0 {
			p.Rate = agg.Sum / secs
		}
	}
	return p
}
