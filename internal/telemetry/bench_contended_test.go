package telemetry

import (
	"sync"
	"testing"
)

// seedRegistry replicates the pre-refactor registry verbatim — one mutex
// in front of plain maps, with the old ring-buffer histogram — so the
// contended benchmarks below measure the refactor's actual win, not a
// strawman. scripts/bench_telemetry.sh runs these at -cpu 8 and gates the
// sharded/seed ratio in verify.sh.
type seedRegistry struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*seedHistogram
}

func newSeedRegistry() *seedRegistry {
	return &seedRegistry{
		counters: make(map[string]int64),
		hists:    make(map[string]*seedHistogram),
	}
}

func (r *seedRegistry) Inc(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name]++
}

func (r *seedRegistry) Observe(name string, v float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &seedHistogram{window: make([]float64, 256)}
		r.hists[name] = h
	}
	h.observe(v)
}

// seedHistogram is the old fixed-window ring buffer: one store, two adds,
// all under the owning registry's mutex.
type seedHistogram struct {
	window []float64
	next   int
	filled int
	count  int64
	sum    float64
}

func (h *seedHistogram) observe(v float64) {
	h.window[h.next] = v
	h.next++
	if h.next == len(h.window) {
		h.next = 0
	}
	if h.filled < len(h.window) {
		h.filled++
	}
	h.count++
	h.sum += v
}

// BenchmarkContendedObserveSharded measures the refactored hot path:
// per-shard histogram mutexes picked round-robin, copy-on-write metric
// lookup, no global lock.
func BenchmarkContendedObserveSharded(b *testing.B) {
	r := NewRegistry()
	r.Observe(MetricFrameLatency, 1) // register outside the timed region
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 100.0
		for pb.Next() {
			r.Observe(MetricFrameLatency, v)
			v += 1
		}
	})
}

// BenchmarkContendedObserveSeedMutex measures the pre-refactor baseline:
// every Observe serializes on the registry-wide mutex.
func BenchmarkContendedObserveSeedMutex(b *testing.B) {
	r := newSeedRegistry()
	r.Observe(MetricFrameLatency, 1)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 100.0
		for pb.Next() {
			r.Observe(MetricFrameLatency, v)
			v += 1
		}
	})
}

// BenchmarkContendedIncrSharded: counter increments are a single atomic
// add after a lock-free copy-on-write map read.
func BenchmarkContendedIncrSharded(b *testing.B) {
	r := NewRegistry()
	r.Inc(MetricGovernorTicks)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc(MetricGovernorTicks)
		}
	})
}

// BenchmarkContendedIncrSeedMutex: the same increment through the seed's
// registry-wide mutex.
func BenchmarkContendedIncrSeedMutex(b *testing.B) {
	r := newSeedRegistry()
	r.Inc(MetricGovernorTicks)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r.Inc(MetricGovernorTicks)
		}
	})
}

// BenchmarkContendedObserveShardedWithFlush interleaves a background
// flusher with contended writers — the worst realistic case: the window
// tier drains shards while the hot path keeps observing.
func BenchmarkContendedObserveShardedWithFlush(b *testing.B) {
	r := NewRegistry()
	r.Observe(MetricFrameLatency, 1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Flush()
			}
		}
	}()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := 100.0
		for pb.Next() {
			r.Observe(MetricFrameLatency, v)
			v += 1
		}
	})
	b.StopTimer()
	close(stop)
	wg.Wait()
}
