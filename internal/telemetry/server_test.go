package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return body
}

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	h := NewHooks(reg)
	h.SetLevels([]float64{0, 0.9})
	h.ObserveTransition(0, 1, 500, 3*time.Microsecond)
	h.ObserveTransition(1, 0, 500, 4*time.Microsecond)
	h.ObserveTick(0, 1, true, false, false, 2*time.Microsecond)

	srv, err := Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	var doc struct {
		Status     string  `json:"status"`
		Level      int     `json:"level"`
		Sparsity   float64 `json:"sparsity"`
		Switches   int64   `json:"switches"`
		Violations int64   `json:"violations"`
		Snapshot
	}
	if err := json.Unmarshal(get(t, base+"/healthz"), &doc); err != nil {
		t.Fatalf("healthz JSON: %v", err)
	}
	if doc.Status != "ok" {
		t.Errorf("status = %q", doc.Status)
	}
	if doc.Level != 0 || doc.Sparsity != 0 {
		t.Errorf("level/sparsity = %d/%v, want 0/0 after the restore", doc.Level, doc.Sparsity)
	}
	if doc.Switches != 1 {
		t.Errorf("switches = %d, want 1", doc.Switches)
	}
	if doc.Counters[MetricRestores] != 1 {
		t.Errorf("restores = %d, want 1", doc.Counters[MetricRestores])
	}
	if hist := doc.Histograms[MetricRestoreLatency]; hist.Count != 1 || hist.Max <= 0 {
		t.Errorf("restore latency histogram = %+v, want 1 sample > 0", hist)
	}
	if doc.UptimeSeconds < 0 {
		t.Errorf("uptime = %v", doc.UptimeSeconds)
	}

	metrics := string(get(t, base+"/metrics"))
	for _, want := range []string{
		"rpn_transitions_total 2",
		"rpn_restores_total 1",
		"rpn_level 0",
		"rpn_restore_latency_us_count 1",
		"# TYPE rpn_restore_latency_us summary",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, metrics)
		}
	}
}

func TestServeRejectsNilRegistryAndBadAddr(t *testing.T) {
	if _, err := Serve(nil, "127.0.0.1:0"); err == nil {
		t.Error("nil registry accepted")
	}
	if _, err := Serve(NewRegistry(), "256.256.256.256:99999"); err == nil {
		t.Error("bad address accepted")
	}
}

func TestServerCloseJoinsGoroutine(t *testing.T) {
	srv, err := Serve(NewRegistry(), "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The port is released: the endpoint no longer answers.
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	// Closing is idempotent enough not to hang (second Close errors fast).
	_ = srv.srv.Close()
}

// TestHealthzHealthStates exercises the /healthz health map and the status
// flip: a quarantined instance's rpn_health_state gauge must turn the
// document "degraded" with HTTP 503, and recovery must flip it back.
func TestHealthzHealthStates(t *testing.T) {
	reg := NewRegistry()
	car0 := NewHooks(reg, Label{Key: LabelModel, Value: "car0"})
	car1 := NewHooks(reg, Label{Key: LabelModel, Value: "car1"})
	car0.ObserveHealthState(HealthHealthy, HealthHealthy)
	car1.ObserveHealthState(HealthHealthy, HealthDegraded)

	srv, err := Serve(reg, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := "http://" + srv.Addr() + "/healthz"

	decode := func(resp *http.Response) (status string, health map[string]string) {
		t.Helper()
		defer resp.Body.Close()
		var doc struct {
			Status string            `json:"status"`
			Health map[string]string `json:"health"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
			t.Fatal(err)
		}
		return doc.Status, doc.Health
	}

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("degraded-but-not-quarantined fleet: status %d, want 200", resp.StatusCode)
	}
	status, health := decode(resp)
	if status != "ok" {
		t.Errorf("status = %q, want ok", status)
	}
	if health["car0"] != "healthy" || health["car1"] != "degraded" {
		t.Errorf("health map = %v", health)
	}

	car1.ObserveHealthState(HealthDegraded, HealthQuarantined)
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("quarantined fleet: status %d, want 503", resp.StatusCode)
	}
	status, health = decode(resp)
	if status != "degraded" {
		t.Errorf("status = %q, want degraded", status)
	}
	if health["car1"] != "quarantined" {
		t.Errorf("health map = %v", health)
	}

	car1.ObserveHealthState(HealthQuarantined, HealthProbation)
	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("probation fleet: status %d, want 200", resp.StatusCode)
	}
	if status, health = decode(resp); status != "ok" || health["car1"] != "probation" {
		t.Errorf("status %q health %v after probation", status, health)
	}
}

func TestHealthStateName(t *testing.T) {
	for state, want := range map[int]string{
		HealthHealthy:     "healthy",
		HealthDegraded:    "degraded",
		HealthProbation:   "probation",
		HealthQuarantined: "quarantined",
		42:                "unknown(42)",
	} {
		if got := HealthStateName(state); got != want {
			t.Errorf("HealthStateName(%d) = %q, want %q", state, got, want)
		}
	}
}
