package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Server exposes a Registry over HTTP:
//
//	GET /healthz  — JSON Snapshot plus a summary of the well-known
//	                deployment metrics (level, sparsity, switches,
//	                violations, uptime), the window/persistence
//	                configuration, and — with sar-style query parameters
//	                (?window=5m&lookback=2h[&metric=][&series=]) — the
//	                windowed series history
//	GET /metrics  — Prometheus text exposition (counters, gauges, and
//	                histograms as summaries with rolling-window quantiles)
//
// The listener goroutine is joined through a WaitGroup and stopped through
// the server's Close, so a Server never leaks a goroutine past Close.
type Server struct {
	reg  *Registry
	srv  *http.Server
	ln   net.Listener
	done chan struct{}
}

// Serve starts listening on addr (e.g. ":8080" or "127.0.0.1:0") and
// serves the registry until Close. It returns once the listener is bound,
// so Addr is immediately valid.
func Serve(reg *Registry, addr string) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("telemetry: Serve with nil registry")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeHealthz(w, reg, req.URL.Query())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writePrometheus(w, reg.Snapshot())
	})
	s := &Server{
		reg:  reg,
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		ln:   ln,
		done: make(chan struct{}),
	}
	go func(done chan struct{}) {
		// Serve returns http.ErrServerClosed (or an accept error) once the
		// server is closed; closing done lets Close join this goroutine.
		_ = s.srv.Serve(s.ln) //lint:allow(errdrop) Serve always returns non-nil on shutdown; Close is the real error path
		close(done)
	}(s.done)
	return s, nil
}

// Addr returns the bound listen address ("127.0.0.1:43121"), useful with
// ":0" listeners.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// Close stops the listener, terminates in-flight connections, and waits
// for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

// healthzSchema versions the /healthz document. Schema 2 added the
// telemetry section (window/retention configuration, persistence status)
// and the windowed-query response; the schema-1 fields are unchanged, so
// schema-1 consumers keep working.
const healthzSchema = 2

// healthzTelemetry is the /healthz "telemetry" section: the window tier's
// configuration plus, when Persist is enabled, the store's status.
type healthzTelemetry struct {
	WindowConfig
	Persistence *PersistenceStatus `json:"persistence,omitempty"`
}

// healthzQuery echoes the windowed-query parameters back in the response.
type healthzQuery struct {
	Window   string `json:"window"`
	Lookback string `json:"lookback"`
	Metric   string `json:"metric,omitempty"`
	Series   string `json:"series,omitempty"`
}

// writeHealthz renders the /healthz JSON document. When any instance's
// health-state gauge reads quarantined, the document's status flips to
// "degraded" and the response carries HTTP 503 — so load balancers and
// uptime probes see a fenced-off instance without parsing the body; the
// windowed-query parameters never change that contract. With
// ?window=5m&lookback=2h (either parameter opts in; metric= and series=
// filter) the document additionally carries the matching windowed series.
func writeHealthz(w http.ResponseWriter, reg *Registry, q url.Values) {
	var (
		query   *healthzQuery
		windows map[string]WindowSeries
	)
	if q.Get("window") != "" || q.Get("lookback") != "" {
		opt := WindowQueryOptions{Metric: q.Get("metric"), Series: q.Get("series")}
		var err error
		if v := q.Get("window"); v != "" {
			if opt.Bucket, err = time.ParseDuration(v); err != nil {
				http.Error(w, fmt.Sprintf("bad window: %v", err), http.StatusBadRequest)
				return
			}
		}
		if v := q.Get("lookback"); v != "" {
			if opt.Lookback, err = time.ParseDuration(v); err != nil {
				http.Error(w, fmt.Sprintf("bad lookback: %v", err), http.StatusBadRequest)
				return
			}
		}
		windows = reg.WindowQuery(opt)
		query = &healthzQuery{
			Window:   opt.Bucket.String(),
			Lookback: opt.Lookback.String(),
			Metric:   opt.Metric,
			Series:   opt.Series,
		}
	}
	snap := reg.Snapshot()
	health, quarantined := healthStates(snap)
	status, code := "ok", http.StatusOK
	if quarantined {
		status, code = "degraded", http.StatusServiceUnavailable
	}
	tel := healthzTelemetry{WindowConfig: reg.WindowInfo()}
	if ps, ok := reg.PersistStatus(); ok {
		tel.Persistence = &ps
	}
	doc := struct {
		Status string `json:"status"`
		Schema int    `json:"schema"`
		// Summary lifts the well-known deployment metrics (written by
		// Hooks) to the top level for cheap probes.
		Level      int     `json:"level"`
		Sparsity   float64 `json:"sparsity"`
		Switches   int64   `json:"switches"`
		Violations int64   `json:"violations"`
		// Health maps each instance (the model label; "" for a solo
		// deployment) to its health-state name, from the
		// rpn_health_state gauges. Absent when no health monitor writes.
		Health map[string]string `json:"health,omitempty"`
		// Telemetry reports the window tier's configuration and, when
		// enabled, persistence status.
		Telemetry healthzTelemetry `json:"telemetry"`
		// Query and Windows carry the windowed-series response when the
		// request asked for one.
		Query   *healthzQuery           `json:"query,omitempty"`
		Windows map[string]WindowSeries `json:"windows,omitempty"`
		Snapshot
	}{
		Status:     status,
		Schema:     healthzSchema,
		Level:      int(snap.Gauges[MetricLevel]),
		Sparsity:   snap.Gauges[MetricSparsity],
		Switches:   snap.Counters[MetricLevelSwitches],
		Violations: snap.Counters[MetricContractViolations],
		Health:     health,
		Telemetry:  tel,
		Query:      query,
		Windows:    windows,
		Snapshot:   snap,
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc) //lint:allow(errdrop) healthz-response write failure means the client disconnected; nothing to recover
}

// healthStates collects every rpn_health_state gauge in the snapshot into
// an instance → state-name map and reports whether any instance is
// quarantined.
func healthStates(snap Snapshot) (states map[string]string, quarantined bool) {
	for key, v := range snap.Gauges {
		name, labels, ok := ParseSeries(key)
		if !ok {
			name = key
		}
		if name != MetricHealthState {
			continue
		}
		model := ""
		for _, l := range labels {
			if l.Key == LabelModel {
				model = l.Value
			}
		}
		if states == nil {
			states = make(map[string]string)
		}
		state := int(v)
		states[model] = HealthStateName(state)
		if state == HealthQuarantined {
			quarantined = true
		}
	}
	return states, quarantined
}

// series is one registry key decomposed for rendering: the sanitized base
// name plus its (sanitized-key, raw-value) labels.
type series struct {
	key    string // raw registry key
	name   string // sanitized base metric name
	labels []Label
}

// parseSanitized decomposes a registry key into a renderable series. A key
// that does not parse as name{labels} is treated as one flat metric whose
// whole identifier is sanitized into the metric name.
func parseSanitized(key string) series {
	name, labels, ok := ParseSeries(key)
	if !ok {
		return series{key: key, name: sanitizeMetricName(key)}
	}
	s := series{key: key, name: sanitizeMetricName(name)}
	for _, l := range labels {
		s.labels = append(s.labels, Label{Key: sanitizeMetricName(l.Key), Value: l.Value})
	}
	return s
}

// render writes the sample name: base name plus the series labels and any
// extra labels (the summary quantile), re-escaped.
func (s series) render(extra ...Label) string {
	if len(s.labels) == 0 && len(extra) == 0 {
		return s.name
	}
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('{')
	wrote := false
	for _, l := range append(append([]Label(nil), s.labels...), extra...) {
		if wrote {
			b.WriteByte(',')
		}
		wrote = true
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// sortedSeries decomposes every key of a metric map and orders the result
// by (base name, raw key), so all series of one labeled family are
// contiguous — a family's # TYPE header is emitted exactly once even when
// a flat metric name sorts between the base name and its labeled keys.
func sortedSeries[V any](m map[string]V) []series {
	out := make([]series, 0, len(m))
	for key := range m {
		out = append(out, parseSanitized(key))
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].key < out[j].key
	})
	return out
}

// writePrometheus renders a snapshot in the Prometheus text exposition
// format (0.0.4), deterministically ordered. Histograms are emitted as
// summaries: rolling-window quantiles plus lifetime _sum/_count. Labeled
// series render with their label set, one # TYPE header per family; the
// summary quantile label is appended after any series labels.
//
// The exposition is staged through an in-memory buffer and flushed with a
// single write; a failure there means the scraper hung up, which the
// server cannot act on.
func writePrometheus(dst io.Writer, snap Snapshot) {
	var buf bytes.Buffer
	w := &buf
	fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n",
		"rpn_uptime_seconds", "rpn_uptime_seconds", formatFloat(snap.UptimeSeconds))
	prevType := ""
	for _, s := range sortedSeries(snap.Counters) {
		if s.name != prevType {
			fmt.Fprintf(w, "# TYPE %s counter\n", s.name)
			prevType = s.name
		}
		fmt.Fprintf(w, "%s %d\n", s.render(), snap.Counters[s.key])
	}
	prevType = ""
	for _, s := range sortedSeries(snap.Gauges) {
		if s.name != prevType {
			fmt.Fprintf(w, "# TYPE %s gauge\n", s.name)
			prevType = s.name
		}
		fmt.Fprintf(w, "%s %s\n", s.render(), formatFloat(snap.Gauges[s.key]))
	}
	prevType = ""
	for _, s := range sortedSeries(snap.Histograms) {
		if s.name != prevType {
			fmt.Fprintf(w, "# TYPE %s summary\n", s.name)
			prevType = s.name
		}
		h := snap.Histograms[s.key]
		for _, q := range [...]struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			fmt.Fprintf(w, "%s %s\n", s.render(Label{Key: "quantile", Value: q.q}), formatFloat(q.v))
		}
		sumSeries := series{name: s.name + "_sum", labels: s.labels}
		countSeries := series{name: s.name + "_count", labels: s.labels}
		fmt.Fprintf(w, "%s %s\n", sumSeries.render(), formatFloat(h.Sum))
		fmt.Fprintf(w, "%s %d\n", countSeries.render(), h.Count)
	}
	_, _ = dst.Write(buf.Bytes()) //lint:allow(errdrop) scrape-response write failure means the client disconnected; nothing to recover
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sanitizeMetricName maps a registry name onto the Prometheus name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*, replacing every other rune with '_'.
func sanitizeMetricName(name string) string {
	ok := func(i int, r rune) bool {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			return true
		case r >= '0' && r <= '9':
			return i > 0
		}
		return false
	}
	clean := true
	for i, r := range name {
		if !ok(i, r) {
			clean = false
			break
		}
	}
	if clean && name != "" {
		return name
	}
	var b strings.Builder
	for i, r := range name {
		if ok(i, r) {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}
