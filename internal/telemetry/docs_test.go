package telemetry

import (
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// docMetricRow matches a METRICS.md table row whose first cell is a
// backticked metric name.
var docMetricRow = regexp.MustCompile("^\\|\\s*`(rpn_[a-zA-Z0-9_<>]+)`")

// residencyLevel matches the per-level residency counters so they can be
// folded onto the documented family name.
var residencyLevel = regexp.MustCompile(`^rpn_level_residency_ticks_L\d+$`)

// TestMetricsDocCrossCheck keeps docs/METRICS.md honest: it drives every
// Hooks seam against a live registry, scrapes the Prometheus rendering,
// and fails if the rendering emits a metric family the doc does not list
// (undocumented) or the doc lists a family the rendering does not emit
// (stale). scripts/verify.sh runs this as the docs-consistency step.
func TestMetricsDocCrossCheck(t *testing.T) {
	raw, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("metrics reference missing: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		if m := docMetricRow.FindStringSubmatch(line); m != nil {
			documented[m[1]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("docs/METRICS.md contains no metric table rows")
	}

	// Drive every seam Hooks implements so the registry holds every metric
	// the subsystem can emit: transitions (including a restore to L0 and
	// the per-parameter decomposition), governor ticks with every outcome
	// flag, and perception frames.
	r := NewRegistry()
	h := NewHooks(r)
	h.SetLevels([]float64{0, 0.5, 0.9})
	h.ObserveTransition(0, 2, 128, 40*time.Microsecond)
	h.ObserveTransition(2, 0, 128, 55*time.Microsecond)
	h.ObserveParamTransition(2, 0, "conv1.w", 64, 20*time.Microsecond)
	h.ObserveParamTransition(2, 0, "fc.w", 64, 35*time.Microsecond)
	h.ObserveTick(0, 2, true, true, true, 10*time.Microsecond)
	h.ObserveTick(1, 0, false, false, false, 10*time.Microsecond)
	h.ObserveFrame(3 * time.Millisecond)
	h.ObserveRebalance(2, 1.5, 4.2, true, 8*time.Microsecond)
	h.ObserveBatch(6, 90*time.Microsecond)
	h.ObserveBatchFallback(2)
	h.ObserveStoreCheck(true)
	h.ObserveStoreCheck(false)
	h.ObserveStoreResidency(4096, 0.97)
	h.ObserveFaultInjection("nan-weights")
	h.ObserveHealthFault("nan", true)
	h.ObserveHealthState(HealthHealthy, HealthHealthy)
	h.ObserveHealthState(HealthHealthy, HealthDegraded)
	h.ObserveIngestAccepted("emergency")
	h.ObserveIngestRejected("rate-limited")
	h.ObserveIngestShed("nominal")
	h.ObserveIngestBackpressure()
	h.SetIngestConnections(3)
	h.SetIngestQueueDepth("critical", 2)
	h.ObserveIngestEnqueue(12 * time.Microsecond)
	h.ObserveIngestFrameLatency(900 * time.Microsecond)

	// Scrape the live rendering: every family announces itself with one
	// # TYPE line, labels already folded onto the base name.
	var b strings.Builder
	writePrometheus(&b, r.Snapshot())
	live := map[string]bool{}
	for _, line := range strings.Split(b.String(), "\n") {
		if !strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		name := strings.Fields(strings.TrimPrefix(line, "# TYPE "))[0]
		if residencyLevel.MatchString(name) {
			name = "rpn_level_residency_ticks_L<N>"
		}
		live[name] = true
	}

	for name := range live {
		if !documented[name] {
			t.Errorf("metric %s is emitted but not documented in docs/METRICS.md", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("docs/METRICS.md documents %s but the live registry never emitted it (stale row?)", name)
		}
	}
}
