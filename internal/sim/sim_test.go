package sim

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func plainScenario(ticks int) Scenario {
	return Scenario{Name: "plain", Ticks: ticks, Dt: 0.1, CruiseSpeed: 20, BaseNoise: 0.05, SensorRange: 60}
}

func TestScenarioValidate(t *testing.T) {
	if err := plainScenario(10).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Scenario{
		{Name: "a", Ticks: 0, Dt: 0.1, CruiseSpeed: 10, SensorRange: 50},
		{Name: "b", Ticks: 10, Dt: 0, CruiseSpeed: 10, SensorRange: 50},
		{Name: "c", Ticks: 10, Dt: 0.1, CruiseSpeed: 0, SensorRange: 50},
		{Name: "d", Ticks: 10, Dt: 0.1, CruiseSpeed: 10, SensorRange: 0},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("scenario %q accepted", bad.Name)
		}
	}
}

func TestWorldAdvancesAndFinishes(t *testing.T) {
	w, err := NewWorld(plainScenario(50), 1)
	if err != nil {
		t.Fatal(err)
	}
	start := w.Ego().Pos
	for !w.Done() {
		w.Step()
	}
	if w.Tick() != 50 {
		t.Errorf("tick = %d", w.Tick())
	}
	// 50 ticks × 0.1 s × 20 m/s = 100 m.
	if got := w.Ego().Pos - start; math.Abs(got-100) > 1e-6 {
		t.Errorf("ego traveled %v m, want 100", got)
	}
	w.Step() // past the end: must be a no-op
	if w.Tick() != 50 {
		t.Error("Step after Done advanced the world")
	}
}

func TestBrakingStopsEgo(t *testing.T) {
	w, _ := NewWorld(plainScenario(100), 2)
	w.SetBraking(true)
	for !w.Done() {
		w.Step()
	}
	if w.Ego().Speed != 0 {
		t.Errorf("ego speed %v after sustained braking", w.Ego().Speed)
	}
}

func TestEgoRecoversCruiseAfterBraking(t *testing.T) {
	w, _ := NewWorld(plainScenario(400), 3)
	for i := 0; i < 50; i++ {
		w.SetBraking(true)
		w.Step()
	}
	w.SetBraking(false)
	for !w.Done() {
		w.Step()
	}
	if math.Abs(w.Ego().Speed-20) > 1e-6 {
		t.Errorf("ego speed %v, want cruise 20", w.Ego().Speed)
	}
}

func TestTTCAndLeadActor(t *testing.T) {
	w, _ := NewWorld(plainScenario(100), 4)
	if !math.IsInf(w.TTC(), 1) {
		t.Error("empty road should have infinite TTC")
	}
	w.SpawnActor(Vehicle, 0, 40, 10) // closing at 10 m/s → TTC 4 s
	if got := w.TTC(); math.Abs(got-4) > 1e-9 {
		t.Errorf("TTC = %v, want 4", got)
	}
	// A faster lead means no collision course.
	w2, _ := NewWorld(plainScenario(100), 5)
	w2.SpawnActor(Vehicle, 0, 40, 30)
	if !math.IsInf(w2.TTC(), 1) {
		t.Error("opening gap should give infinite TTC")
	}
	// Actors in other lanes are ignored.
	w3, _ := NewWorld(plainScenario(100), 6)
	w3.SpawnActor(Vehicle, 1, 10, 0)
	if !math.IsInf(w3.TTC(), 1) {
		t.Error("other-lane actor affected TTC")
	}
}

func TestCollisionDetection(t *testing.T) {
	w, _ := NewWorld(plainScenario(300), 7)
	w.SpawnActor(Vehicle, 0, 30, 0) // parked car 30 m ahead, never brake
	for !w.Done() && !w.Collided() {
		w.Step()
	}
	if !w.Collided() {
		t.Fatal("ego drove through a parked car")
	}
	if w.Ego().Speed != 0 {
		t.Error("ego kept moving after collision")
	}
}

func TestBrakingAvoidsCollision(t *testing.T) {
	w, _ := NewWorld(plainScenario(300), 8)
	w.SpawnActor(Vehicle, 0, 40, 0)
	for !w.Done() {
		// Perfect perception: brake as soon as the obstacle is in range.
		w.SetBraking(w.ObstacleInRange())
		w.Step()
	}
	// 20 m/s, brake at 6.5 m/s²: stopping distance ≈ 31 m < 40 m.
	if w.Collided() {
		t.Error("braking from 40 m failed to avoid a parked car")
	}
}

func TestComplexitySaturates(t *testing.T) {
	w, _ := NewWorld(plainScenario(10), 9)
	if w.Complexity() != 0 {
		t.Error("empty road complexity should be 0")
	}
	for i := 0; i < 12; i++ {
		w.SpawnActor(Vehicle, i%3, float64(5+i*5), 10)
	}
	if w.Complexity() != 1 {
		t.Errorf("dense scene complexity = %v, want 1", w.Complexity())
	}
}

func TestFrameTruthMatchesRange(t *testing.T) {
	w, _ := NewWorld(plainScenario(10), 10)
	_, truth := w.Frame(16)
	if truth {
		t.Error("empty road frame claims obstacle")
	}
	w.SpawnActor(Vehicle, 0, 30, 10)
	frame, truth := w.Frame(16)
	if !truth {
		t.Error("in-range obstacle not in truth")
	}
	if frame.Dims() != 3 || frame.Dim(1) != 16 {
		t.Errorf("frame shape %v", frame.Shape())
	}
	// Out of range.
	w2, _ := NewWorld(plainScenario(10), 11)
	w2.SpawnActor(Vehicle, 0, 100, 10)
	if _, truth := w2.Frame(16); truth {
		t.Error("out-of-range obstacle in truth")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []float32 {
		w, _ := NewWorld(CutIn(), seed)
		var pixels []float32
		for !w.Done() {
			if w.Tick()%100 == 0 {
				f, _ := w.Frame(16)
				pixels = append(pixels, f.Data()...)
			}
			w.SetBraking(w.TTC() < 2)
			w.Step()
		}
		pixels = append(pixels, float32(w.Ego().Pos))
		return pixels
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatal("runs differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical runs")
		}
	}
}

func TestActorRetirement(t *testing.T) {
	w, _ := NewWorld(plainScenario(200), 12)
	w.SpawnActor(Vehicle, 0, -70, 0) // far behind, should retire immediately
	w.Step()
	if len(w.Actors()) != 0 {
		t.Error("behind-actor not retired")
	}
}

func TestStandardScenariosRun(t *testing.T) {
	for _, sc := range AllScenarios() {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
			continue
		}
		w, err := NewWorld(sc, 99)
		if err != nil {
			t.Errorf("%s: %v", sc.Name, err)
			continue
		}
		sawObstacle := false
		for !w.Done() {
			if w.ObstacleInRange() {
				sawObstacle = true
			}
			// Drive with perfect perception and a stopping-distance headway
			// rule so scripted scenarios complete without contact.
			_, gap := w.LeadActor()
			v := w.Ego().Speed
			w.SetBraking(gap < v*v/(2*6.5)+6)
			w.Step()
		}
		if sc.Name != "highway-cruise" && !sawObstacle {
			t.Errorf("%s: no obstacle ever entered sensor range", sc.Name)
		}
		if w.Collided() {
			t.Errorf("%s: collided even with perfect perception", sc.Name)
		}
	}
}

func TestCutInSpikesTTC(t *testing.T) {
	w, _ := NewWorld(CutIn(), 13)
	minTTCBefore, minTTCAfter := math.Inf(1), math.Inf(1)
	for !w.Done() {
		ttc := w.TTC()
		if w.Tick() < 1000 {
			if ttc < minTTCBefore {
				minTTCBefore = ttc
			}
		} else if ttc < minTTCAfter {
			minTTCAfter = ttc
		}
		w.SetBraking(ttc < 2.5)
		w.Step()
	}
	if minTTCAfter >= minTTCBefore {
		t.Errorf("cut-in did not reduce TTC: before %v, after %v", minTTCBefore, minTTCAfter)
	}
	if minTTCAfter > 2.5 {
		t.Errorf("cut-in min TTC %v not critical", minTTCAfter)
	}
}

func TestSensorDegradationChangesNoise(t *testing.T) {
	w, _ := NewWorld(SensorDegradation(), 14)
	var atStart, atPeak float64
	for !w.Done() {
		if w.Tick() == 100 {
			atStart = w.Noise()
		}
		if w.Tick() == 1200 {
			atPeak = w.Noise()
		}
		w.Step()
	}
	if atPeak <= atStart {
		t.Errorf("degradation did not raise noise: %v -> %v", atStart, atPeak)
	}
	if w.Noise() != 0.06 {
		t.Errorf("noise did not clear: %v", w.Noise())
	}
}

func TestFrameUsesCurrentNoise(t *testing.T) {
	sc := plainScenario(10)
	w, _ := NewWorld(sc, 15)
	w.SetNoise(0)
	f0, _ := w.Frame(16)
	w2, _ := NewWorld(sc, 15)
	w2.SetNoise(0.5)
	f1, _ := w2.Frame(16)
	if tensor.Equal(f0, f1) {
		t.Error("noise level had no effect on frames")
	}
}

func TestRandomTrafficDeterministicAndRunnable(t *testing.T) {
	a := RandomTraffic(800, 0.005, 7)
	b := RandomTraffic(800, 0.005, 7)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed gave different event counts")
	}
	run := func(sc Scenario) (float64, bool, float64) {
		w, err := NewWorld(sc, 3)
		if err != nil {
			t.Fatal(err)
		}
		maxNoise := 0.0
		for !w.Done() {
			if w.Noise() > maxNoise {
				maxNoise = w.Noise()
			}
			_, gap := w.LeadActor()
			v := w.Ego().Speed
			w.SetBraking(gap < v*v/(2*6.5)+6)
			w.Step()
		}
		return w.Ego().Pos, w.Collided(), maxNoise
	}
	posA, collA, noiseA := run(a)
	posB, collB, _ := run(b)
	if posA != posB || collA != collB {
		t.Error("same scenario+seed diverged")
	}
	if collA {
		t.Error("perfect-perception headway controller collided in random traffic")
	}
	if noiseA <= 0.06 {
		t.Error("fog window never applied")
	}
	c := RandomTraffic(800, 0.005, 8)
	posC, _, _ := run(c)
	if posC == posA {
		t.Error("different seeds produced identical runs")
	}
}
