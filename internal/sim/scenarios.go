package sim

import (
	"fmt"
	"math/rand"
)

// Standard scenarios of the evaluation. Durations use a 10 Hz control tick
// (dt = 0.1 s), matching embedded perception loops. All randomness flows
// through the world seed, so scenarios themselves are pure descriptions.

// baseScenario fills the common fields.
func baseScenario(name string, ticks int) Scenario {
	return Scenario{
		Name:        name,
		Ticks:       ticks,
		Dt:          0.1,
		CruiseSpeed: 20, // 72 km/h
		BaseNoise:   0.06,
		SensorRange: 60,
	}
}

// HighwayCruise is the benign baseline: light traffic that stays out of the
// ego lane, plus one slow lead far ahead. The governor should spend nearly
// the whole run at a deep pruning level.
func HighwayCruise() Scenario {
	sc := baseScenario("highway-cruise", 2000)
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 30, 19)
			w.SpawnActor(Vehicle, 2, 55, 21)
			w.SpawnActor(Vehicle, 0, 500, 19.5) // lead far ahead, barely closing
		}},
		{Tick: 1000, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 40, 22)
		}},
	}
	return sc
}

// UrbanTraffic keeps moderate density with a slower lead that forces
// intermittent elevated criticality.
func UrbanTraffic() Scenario {
	sc := baseScenario("urban-traffic", 2000)
	sc.CruiseSpeed = 14 // ~50 km/h
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 0, 80, 13)
			w.SpawnActor(Vehicle, 1, 20, 14)
			w.SpawnActor(Vehicle, 1, 60, 13)
			w.SpawnActor(Vehicle, 2, 35, 15)
		}},
		{Tick: 600, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 25, 13.5)
			w.SpawnActor(Vehicle, 2, 45, 14.5)
		}},
		{Tick: 1200, Do: func(w *World) {
			// Lead slows, compressing the gap.
			if lead, _ := w.LeadActor(); lead != nil {
				lead.Speed = 11
			}
		}},
	}
	return sc
}

// CutIn is the headline criticality spike: after a long cruise, a vehicle
// cuts into the ego lane 10 m ahead, 9 m/s slower than the ego is moving at
// that instant. Anchoring the intruder to the live ego state guarantees the
// spike (TTC ≈ 1.1 s) regardless of how earlier perception quality shaped
// the ego's trajectory.
func CutIn() Scenario {
	sc := baseScenario("cut-in", 2000)
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 20, 20) // ambient adjacent-lane traffic
			w.SpawnActor(Vehicle, 2, 70, 21)
		}},
		{Tick: 1000, Do: func(w *World) {
			speed := w.Ego().Speed - 9
			if speed < 0 {
				speed = 0
			}
			w.SpawnActor(Vehicle, 0, 10, speed)
		}},
	}
	return sc
}

// PedestrianCrossing drops a stationary pedestrian into the ego lane at
// medium range — the worst-case small-and-static obstacle.
func PedestrianCrossing() Scenario {
	sc := baseScenario("pedestrian", 1600)
	sc.CruiseSpeed = 14
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 40, 14)
		}},
		{Tick: 800, Do: func(w *World) {
			w.SpawnActor(Pedestrian, 0, 50, 0)
		}},
	}
	return sc
}

// SensorDegradation ramps sensor noise up mid-run (fog/glare), driving the
// uncertainty signal without any geometric threat, then clears. A lead
// vehicle appears during the degraded window, so perception quality matters
// exactly when the sensor is worst.
func SensorDegradation() Scenario {
	sc := baseScenario("sensor-degradation", 2000)
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 35, 20)
		}},
		{Tick: 700, Do: func(w *World) { w.SetNoise(0.18); w.SetContrast(0.8) }},
		{Tick: 900, Do: func(w *World) { w.SetNoise(0.30); w.SetContrast(0.6) }},
		{Tick: 1000, Do: func(w *World) {
			w.SpawnActor(Vehicle, 0, 55, 16)
		}},
		{Tick: 1500, Do: func(w *World) { w.SetNoise(0.06); w.SetContrast(1) }},
	}
	return sc
}

// PedestrianInFog is the differentiating worst case: heavy sensor
// degradation (σ = 0.35) while a pedestrian stands in the lane at medium
// range. A heavily pruned model misses the small low-contrast blob long
// enough to matter; a dense model (or a governor that escalates on the
// uncertainty spike) detects in time.
func PedestrianInFog() Scenario {
	sc := baseScenario("pedestrian-fog", 1600)
	sc.CruiseSpeed = 16
	sc.Events = []Event{
		{Tick: 0, Do: func(w *World) {
			w.SpawnActor(Vehicle, 1, 40, 16)
		}},
		{Tick: 600, Do: func(w *World) { w.SetNoise(0.2); w.SetContrast(0.55) }},
		{Tick: 800, Do: func(w *World) {
			w.SpawnActor(Pedestrian, 0, 55, 0)
		}},
		{Tick: 1400, Do: func(w *World) { w.SetNoise(0.06); w.SetContrast(1) }},
	}
	return sc
}

// RandomTraffic generates a Monte-Carlo scenario: vehicles spawn at random
// ticks, lanes, gaps, and speeds (density controls the spawn rate per
// tick), with one random fog window. The seed fixes the script at
// construction time, so a RandomTraffic scenario is as deterministic as
// the hand-written ones once built.
func RandomTraffic(ticks int, density float64, seed int64) Scenario {
	sc := baseScenario(fmt.Sprintf("random-traffic(%d)", seed), ticks)
	rng := rand.New(rand.NewSource(seed))

	var events []Event
	for tick := 0; tick < ticks; tick++ {
		if rng.Float64() >= density {
			continue
		}
		lane := rng.Intn(3)
		gap := 30 + rng.Float64()*60
		speed := sc.CruiseSpeed * (0.6 + 0.5*rng.Float64())
		if lane == 0 && rng.Float64() < 0.15 {
			// Occasional stationary obstacle in the ego lane.
			speed = 0
			gap = 45 + rng.Float64()*15
		}
		events = append(events, Event{Tick: tick, Do: func(w *World) {
			w.SpawnActor(Vehicle, lane, gap, speed)
		}})
	}
	// One fog window somewhere in the middle half of the run.
	fogStart := ticks/4 + rng.Intn(ticks/4)
	fogLen := ticks / 8
	fogNoise := 0.15 + rng.Float64()*0.15
	fogContrast := 0.5 + rng.Float64()*0.3
	events = append(events,
		Event{Tick: fogStart, Do: func(w *World) { w.SetNoise(fogNoise); w.SetContrast(fogContrast) }},
		Event{Tick: fogStart + fogLen, Do: func(w *World) { w.SetNoise(sc.BaseNoise); w.SetContrast(1) }},
	)
	sc.Events = events
	return sc
}

// AllScenarios returns the six standard evaluation scenarios.
func AllScenarios() []Scenario {
	return []Scenario{
		HighwayCruise(),
		UrbanTraffic(),
		CutIn(),
		PedestrianCrossing(),
		SensorDegradation(),
		PedestrianInFog(),
	}
}

// FindScenario resolves a scenario by its Name field. The error of an
// unknown name lists every valid name, so command-line surfaces can
// forward it verbatim.
func FindScenario(name string) (Scenario, error) {
	for _, sc := range AllScenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0, len(AllScenarios()))
	for _, sc := range AllScenarios() {
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("sim: unknown scenario %q (have %v)", name, names)
}
