// Package sim implements the driving-scenario substrate: a deterministic
// longitudinal traffic simulator with scripted scenarios, a sensor model
// that renders camera-like patches for the perception pipeline, and the
// ground truth (time-to-collision, obstacle presence, collisions) that the
// safety experiments score against.
//
// The paper's system would be evaluated in a full driving stack; this
// simulator substitutes it with the minimal dynamics that exercise the same
// runtime signals: long benign stretches, sudden criticality spikes
// (cut-ins, pedestrians), and gradual sensor degradation.
package sim

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/tensor"
)

// ActorType distinguishes traffic participants.
type ActorType int

// Actor types.
const (
	Vehicle ActorType = iota
	Pedestrian
)

// String names the actor type.
func (t ActorType) String() string {
	if t == Pedestrian {
		return "pedestrian"
	}
	return "vehicle"
}

// Actor is one traffic participant in the 1-D multi-lane world.
type Actor struct {
	// ID is unique within a world.
	ID int
	// Type is vehicle or pedestrian.
	Type ActorType
	// Lane is the lane index; the ego vehicle drives in lane 0.
	Lane int
	// Pos is the longitudinal position in meters (same axis as the ego).
	Pos float64
	// Speed is the longitudinal speed in m/s.
	Speed float64
}

// Ego is the controlled vehicle.
type Ego struct {
	// Pos is the longitudinal position in meters.
	Pos float64
	// Speed is the current speed in m/s.
	Speed float64
	// Cruise is the target speed the ego accelerates back to when not
	// braking.
	Cruise float64
}

// Event is a scripted scenario occurrence applied when the world reaches
// Tick.
type Event struct {
	// Tick is the 0-based tick at which Do runs (before dynamics).
	Tick int
	// Do mutates the world.
	Do func(w *World)
}

// Scenario scripts one evaluation run.
type Scenario struct {
	// Name identifies the scenario in tables.
	Name string
	// Ticks is the run length.
	Ticks int
	// Dt is the simulated seconds per tick.
	Dt float64
	// CruiseSpeed is the ego's target speed in m/s.
	CruiseSpeed float64
	// BaseNoise is the sensor's nominal Gaussian noise sigma.
	BaseNoise float64
	// SensorRange is the detection range in meters.
	SensorRange float64
	// Events are applied in tick order.
	Events []Event
}

// Validate checks scenario parameters.
func (s Scenario) Validate() error {
	switch {
	case s.Ticks <= 0:
		return fmt.Errorf("sim: scenario %q has %d ticks", s.Name, s.Ticks)
	case s.Dt <= 0:
		return fmt.Errorf("sim: scenario %q has dt %v", s.Name, s.Dt)
	case s.CruiseSpeed <= 0:
		return fmt.Errorf("sim: scenario %q has cruise speed %v", s.Name, s.CruiseSpeed)
	case s.SensorRange <= 0:
		return fmt.Errorf("sim: scenario %q has sensor range %v", s.Name, s.SensorRange)
	}
	return nil
}

// Vehicle dynamics constants: comfortable acceleration and emergency
// braking, embedded-AV-typical.
const (
	accelMS2 = 2.0
	brakeMS2 = 6.5
	// collisionGap is the bumper-to-bumper distance treated as contact.
	collisionGap = 1.0
)

// World is the live state of one scenario run. It is not safe for
// concurrent use.
type World struct {
	scenario Scenario
	rng      *tensor.RNG
	tick     int
	ego      Ego
	actors   []*Actor
	braking  bool
	collided bool
	noise    float64
	contrast float64
	nextID   int
	frameRNG *tensor.RNG
}

// NewWorld starts a scenario with the given seed. The seed drives both
// traffic randomness and sensor noise, so identical (scenario, seed) pairs
// produce identical runs.
func NewWorld(sc Scenario, seed int64) (*World, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	rng := tensor.NewRNG(seed)
	return &World{
		scenario: sc,
		rng:      rng,
		frameRNG: rng.Fork(),
		ego:      Ego{Pos: 0, Speed: sc.CruiseSpeed, Cruise: sc.CruiseSpeed},
		noise:    sc.BaseNoise,
		contrast: 1,
	}, nil
}

// Tick returns the current tick index.
func (w *World) Tick() int { return w.tick }

// Done reports whether the scenario has run out of ticks.
func (w *World) Done() bool { return w.tick >= w.scenario.Ticks }

// Ego returns the ego state.
func (w *World) Ego() Ego { return w.ego }

// Actors returns the live actors (shared slice; do not mutate).
func (w *World) Actors() []*Actor { return w.actors }

// Collided reports whether a collision has occurred.
func (w *World) Collided() bool { return w.collided }

// Noise returns the current sensor noise sigma.
func (w *World) Noise() float64 { return w.noise }

// SetNoise overrides the sensor noise (used by degradation events).
func (w *World) SetNoise(sigma float64) { w.noise = sigma }

// Contrast returns the current obstacle contrast factor (1 = clear).
func (w *World) Contrast() float64 { return w.contrast }

// SetContrast overrides the obstacle contrast; fog and low light reduce it
// below 1, making obstacles blend into the road.
func (w *World) SetContrast(c float64) { w.contrast = c }

// SetBraking engages or releases emergency braking; the perception-driven
// controller calls this every tick.
func (w *World) SetBraking(b bool) { w.braking = b }

// Braking reports whether the ego is braking.
func (w *World) Braking() bool { return w.braking }

// SpawnActor adds an actor at the given gap ahead of the ego.
func (w *World) SpawnActor(t ActorType, lane int, gapAhead, speed float64) *Actor {
	a := &Actor{ID: w.nextID, Type: t, Lane: lane, Pos: w.ego.Pos + gapAhead, Speed: speed}
	w.nextID++
	w.actors = append(w.actors, a)
	return a
}

// FindActor returns the actor with the given ID, or nil.
func (w *World) FindActor(id int) *Actor {
	for _, a := range w.actors {
		if a.ID == id {
			return a
		}
	}
	return nil
}

// Step advances the world one tick: scripted events fire, then dynamics
// integrate, then collisions are detected and out-of-scope actors are
// retired.
func (w *World) Step() {
	if w.Done() {
		return
	}
	for _, e := range w.scenario.Events {
		if e.Tick == w.tick && e.Do != nil {
			e.Do(w)
		}
	}
	dt := w.scenario.Dt

	// Ego dynamics.
	if w.collided {
		w.ego.Speed = 0
	} else if w.braking {
		w.ego.Speed -= brakeMS2 * dt
		if w.ego.Speed < 0 {
			w.ego.Speed = 0
		}
	} else if w.ego.Speed < w.ego.Cruise {
		w.ego.Speed += accelMS2 * dt
		if w.ego.Speed > w.ego.Cruise {
			w.ego.Speed = w.ego.Cruise
		}
	}
	w.ego.Pos += w.ego.Speed * dt

	// Actor dynamics and retirement.
	alive := w.actors[:0]
	for _, a := range w.actors {
		a.Pos += a.Speed * dt
		if a.Pos > w.ego.Pos-60 { // keep actors up to 60 m behind
			alive = append(alive, a)
		}
	}
	w.actors = alive

	// Collision detection in the ego lane.
	if !w.collided {
		for _, a := range w.actors {
			if a.Lane != 0 {
				continue
			}
			gap := a.Pos - w.ego.Pos
			if gap >= 0 && gap <= collisionGap && w.ego.Speed > a.Speed {
				w.collided = true
				w.ego.Speed = 0
				break
			}
		}
	}
	w.tick++
}

// LeadActor returns the nearest actor ahead of the ego in lane 0 and its
// gap, or (nil, +Inf).
func (w *World) LeadActor() (*Actor, float64) {
	var lead *Actor
	gap := math.Inf(1)
	for _, a := range w.actors {
		if a.Lane != 0 {
			continue
		}
		g := a.Pos - w.ego.Pos
		if g >= 0 && g < gap {
			gap = g
			lead = a
		}
	}
	return lead, gap
}

// TTC returns the time-to-collision with the lead actor, +Inf when no actor
// is ahead or the gap is opening.
func (w *World) TTC() float64 {
	lead, gap := w.LeadActor()
	if lead == nil {
		return math.Inf(1)
	}
	closing := w.ego.Speed - lead.Speed
	if closing <= 0 {
		return math.Inf(1)
	}
	return gap / closing
}

// Complexity returns the scene-complexity signal in [0,1]: actor density
// within 100 m of the ego, saturating at 8 actors.
func (w *World) Complexity() float64 {
	n := 0
	for _, a := range w.actors {
		if math.Abs(a.Pos-w.ego.Pos) <= 100 {
			n++
		}
	}
	c := float64(n) / 8
	if c > 1 {
		c = 1
	}
	return c
}

// ObstacleInRange reports whether the lead actor is within sensor range —
// the perception ground truth for the current tick.
func (w *World) ObstacleInRange() bool {
	lead, gap := w.LeadActor()
	return lead != nil && gap <= w.scenario.SensorRange
}

// Frame renders the sensor patch for the current tick as a [1, size, size]
// tensor, together with the ground-truth obstacle label. Closer obstacles
// render larger (the difficulty model: a distant pedestrian is a small
// blob); current sensor noise is applied.
func (w *World) Frame(size int) (*tensor.Tensor, bool) {
	truth := w.ObstacleInRange()
	radius := 0.0
	if truth {
		_, gap := w.LeadActor()
		// Map gap ∈ [0, range] to radius ∈ [4.5, 2]: near → large. The
		// range matches the obstacle training distribution.
		frac := gap / w.scenario.SensorRange
		radius = 4.5 - 2.5*frac
		if radius < 2 {
			radius = 2
		}
	}
	pix := dataset.RenderObstaclePatchContrast(truth, size, radius, w.noise, w.contrast, w.frameRNG)
	return tensor.FromSlice(pix, 1, size, size), truth
}
