package faults

import (
	"testing"
	"testing/quick"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func faultModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("m",
		nn.NewDense("fc1", 10, 20, rng),
		nn.NewReLU("relu"),
		nn.NewDense("fc2", 20, 4, rng),
	)
}

func snapshot(m *nn.Sequential) map[string][]float32 {
	out := map[string][]float32{}
	for _, p := range m.PrunableParams() {
		cp := make([]float32, p.Value.Len())
		copy(cp, p.Value.Data())
		out[p.Name] = cp
	}
	return out
}

func TestInjectFlipsExactlyNBits(t *testing.T) {
	m := faultModel(1)
	before := snapshot(m)
	inj := NewInjector(2)
	flips, err := inj.Inject(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 7 {
		t.Fatalf("recorded %d flips, want 7", len(flips))
	}
	changed := 0
	for name, want := range before {
		got := m.Param(name).Value.Data()
		for i := range want {
			if got[i] != want[i] {
				changed++
			}
		}
	}
	// Flips can collide on the same weight (rare), so changed ≤ 7; but at
	// least one weight must differ.
	if changed == 0 || changed > 7 {
		t.Errorf("%d weights changed by 7 flips", changed)
	}
	for _, f := range flips {
		if f.Before == f.After {
			t.Error("recorded flip with no effect")
		}
	}
}

func TestRepairRestoresExactly(t *testing.T) {
	m := faultModel(3)
	before := snapshot(m)
	inj := NewInjector(4)
	flips, err := inj.Inject(m, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := Repair(m, flips); err != nil {
		t.Fatal(err)
	}
	for name, want := range before {
		got := m.Param(name).Value.Data()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s[%d] not repaired", name, i)
			}
		}
	}
}

func TestInjectorDeterministic(t *testing.T) {
	m1, m2 := faultModel(5), faultModel(5)
	f1, _ := NewInjector(6).Inject(m1, 5)
	f2, _ := NewInjector(6).Inject(m2, 5)
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatal("same seed produced different injections")
		}
	}
}

func TestMaxBitBoundsPosition(t *testing.T) {
	m := faultModel(7)
	inj := NewInjector(8)
	inj.MaxBit = 8
	flips, _ := inj.Inject(m, 50)
	for _, f := range flips {
		if f.Bit >= 8 {
			t.Fatalf("bit %d beyond MaxBit", f.Bit)
		}
	}
}

func TestInjectRejectsWeightlessModel(t *testing.T) {
	m := nn.NewSequential("empty", nn.NewReLU("r"))
	if _, err := NewInjector(1).Inject(m, 1); err == nil {
		t.Error("weightless model accepted")
	}
}

// Property: inject → repair is the identity for arbitrary counts and seeds.
func TestInjectRepairIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		m := faultModel(seed)
		before := snapshot(m)
		rng := tensor.NewRNG(seed)
		flips, err := NewInjector(seed+1).Inject(m, 1+rng.Intn(40))
		if err != nil {
			return false
		}
		if err := Repair(m, flips); err != nil {
			return false
		}
		for name, want := range before {
			got := m.Param(name).Value.Data()
			for i := range want {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
