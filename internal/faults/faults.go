// Package faults implements a memory-fault injection substrate: single-
// event upsets (random bit flips) in live weight memory, the standard
// model for radiation- and aging-induced corruption in safety-critical
// electronics (ISO 26262's random-hardware-fault class).
//
// The reversible-pruning core interacts with faults in two ways probed by
// experiment A9: the recovery store's build-time hash (VerifyDense)
// detects any corruption of prunable weights, and a RestoreFull after
// re-priming from the store repairs every weight the store covers.
package faults

import (
	"fmt"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Injection records one injected bit flip.
type Injection struct {
	// Param is the corrupted parameter's name.
	Param string
	// Index is the flat weight index.
	Index int
	// Bit is the flipped bit position (0 = LSB of the float32 pattern).
	Bit int
	// Before and After are the weight values around the flip.
	Before, After float32
}

// Injector flips random bits in a model's prunable weights.
type Injector struct {
	rng *tensor.RNG
	// MaxBit bounds the flipped bit position (default 32, i.e. any bit;
	// lower it to 23 to exclude sign/exponent bits and model only
	// mantissa-level noise).
	MaxBit int
}

// NewInjector constructs a deterministic injector.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: tensor.NewRNG(seed), MaxBit: 32}
}

// Inject flips n random bits across the model's prunable weights and
// returns a record of every flip (in injection order).
func (in *Injector) Inject(model *nn.Sequential, n int) ([]Injection, error) {
	params := model.PrunableParams()
	if len(params) == 0 {
		return nil, fmt.Errorf("faults: model %q has no prunable parameters", model.Name())
	}
	maxBit := in.MaxBit
	if maxBit <= 0 || maxBit > 32 {
		maxBit = 32
	}
	total := 0
	for _, p := range params {
		total += p.Value.Len()
	}
	out := make([]Injection, 0, n)
	for i := 0; i < n; i++ {
		k := in.rng.Intn(total)
		for _, p := range params {
			if k >= p.Value.Len() {
				k -= p.Value.Len()
				continue
			}
			d := p.Value.Data()
			bit := in.rng.Intn(maxBit)
			before := d[k]
			d[k] = math.Float32frombits(math.Float32bits(before) ^ (1 << bit))
			out = append(out, Injection{
				Param: p.Name, Index: k, Bit: bit,
				Before: before, After: d[k],
			})
			break
		}
	}
	return out, nil
}

// Repair undoes the given injections (most-recent first, so double flips
// at one location unwind correctly).
func Repair(model *nn.Sequential, injections []Injection) error {
	for i := len(injections) - 1; i >= 0; i-- {
		inj := injections[i]
		p := model.Param(inj.Param)
		if p == nil {
			return fmt.Errorf("faults: unknown parameter %q", inj.Param)
		}
		p.Value.Data()[inj.Index] = inj.Before
	}
	return nil
}
