package train

import (
	"math"

	"repro/internal/metrics"
	"repro/internal/nn"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves gradients
	// untouched (the trainer zeroes them).
	Step(params []*nn.Param)
	// SetLR changes the learning rate (used by schedules).
	SetLR(lr float32)
	// LR returns the current learning rate.
	LR() float32
	// Name identifies the optimizer in logs.
	Name() string
}

// SGD is stochastic gradient descent with optional classical momentum and
// decoupled weight decay.
type SGD struct {
	lr          float32
	momentum    float32
	weightDecay float32
	velocity    map[*nn.Param][]float32
}

// NewSGD constructs an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float32) *SGD {
	if lr <= 0 {
		failf("train: SGD lr %v must be positive", lr)
	}
	if momentum < 0 || momentum >= 1 {
		failf("train: SGD momentum %v out of [0,1)", momentum)
	}
	return &SGD{lr: lr, momentum: momentum, weightDecay: weightDecay, velocity: make(map[*nn.Param][]float32)}
}

// Name returns "sgd".
func (s *SGD) Name() string { return "sgd" }

// LR returns the current learning rate.
func (s *SGD) LR() float32 { return s.lr }

// SetLR updates the learning rate.
func (s *SGD) SetLR(lr float32) { s.lr = lr }

// Step applies v = μv + g + λw; w -= lr·v.
func (s *SGD) Step(params []*nn.Param) {
	for _, p := range params {
		w, g := p.Value.Data(), p.Grad.Data()
		if metrics.ApproxEqual(s.momentum, 0, 1e-9) {
			for i := range w {
				w[i] -= s.lr * (g[i] + s.weightDecay*w[i])
			}
			continue
		}
		v, ok := s.velocity[p]
		if !ok {
			v = make([]float32, len(w))
			s.velocity[p] = v
		}
		for i := range w {
			v[i] = s.momentum*v[i] + g[i] + s.weightDecay*w[i]
			w[i] -= s.lr * v[i]
		}
	}
}

// Adam is the Adam optimizer with bias correction and decoupled weight
// decay (AdamW-style).
type Adam struct {
	lr, beta1, beta2, eps, weightDecay float32
	t                                  int
	m, v                               map[*nn.Param][]float32
}

// NewAdam constructs an Adam optimizer with standard defaults for the
// second-order hyperparameters.
func NewAdam(lr, weightDecay float32) *Adam {
	if lr <= 0 {
		failf("train: Adam lr %v must be positive", lr)
	}
	return &Adam{
		lr: lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weightDecay: weightDecay,
		m: make(map[*nn.Param][]float32), v: make(map[*nn.Param][]float32),
	}
}

// Name returns "adam".
func (a *Adam) Name() string { return "adam" }

// LR returns the current learning rate.
func (a *Adam) LR() float32 { return a.lr }

// SetLR updates the learning rate.
func (a *Adam) SetLR(lr float32) { a.lr = lr }

// Step applies one Adam update.
func (a *Adam) Step(params []*nn.Param) {
	a.t++
	bc1 := 1 - float32(math.Pow(float64(a.beta1), float64(a.t)))
	bc2 := 1 - float32(math.Pow(float64(a.beta2), float64(a.t)))
	for _, p := range params {
		w, g := p.Value.Data(), p.Grad.Data()
		m, ok := a.m[p]
		if !ok {
			m = make([]float32, len(w))
			a.m[p] = m
		}
		v, ok := a.v[p]
		if !ok {
			v = make([]float32, len(w))
			a.v[p] = v
		}
		for i := range w {
			m[i] = a.beta1*m[i] + (1-a.beta1)*g[i]
			v[i] = a.beta2*v[i] + (1-a.beta2)*g[i]*g[i]
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			w[i] -= a.lr * (mhat/(float32(math.Sqrt(float64(vhat)))+a.eps) + a.weightDecay*w[i])
		}
	}
}

// Schedule maps an epoch index to a learning rate.
type Schedule interface {
	// LRAt returns the learning rate to use for the given 0-based epoch.
	LRAt(epoch int) float32
}

// ConstantLR keeps the learning rate fixed.
type ConstantLR float32

// LRAt returns the constant rate.
func (c ConstantLR) LRAt(int) float32 { return float32(c) }

// StepLR multiplies the base rate by gamma every stepSize epochs.
type StepLR struct {
	Base     float32
	Gamma    float32
	StepSize int
}

// LRAt returns base · gamma^(epoch/stepSize).
func (s StepLR) LRAt(epoch int) float32 {
	if s.StepSize <= 0 {
		return s.Base
	}
	return s.Base * float32(math.Pow(float64(s.Gamma), float64(epoch/s.StepSize)))
}

// CosineLR anneals from Base to Min over Span epochs following a half
// cosine.
type CosineLR struct {
	Base float32
	Min  float32
	Span int
}

// LRAt returns the annealed rate.
func (c CosineLR) LRAt(epoch int) float32 {
	if c.Span <= 1 {
		return c.Min
	}
	if epoch >= c.Span {
		return c.Min
	}
	frac := float64(epoch) / float64(c.Span-1)
	return c.Min + (c.Base-c.Min)*float32(0.5*(1+math.Cos(math.Pi*frac)))
}
