package train

import (
	"math"
	"testing"

	"repro/internal/nn"
	"repro/internal/tensor"
)

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	ce := SoftmaxCrossEntropy{}
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(1, 4)
	loss, grad := ce.Loss(logits, []int{2})
	if math.Abs(float64(loss)-math.Log(4)) > 1e-5 {
		t.Errorf("uniform loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient: p - onehot = 0.25 everywhere except 0.25-1 at the label.
	for j := 0; j < 4; j++ {
		want := float32(0.25)
		if j == 2 {
			want = -0.75
		}
		if math.Abs(float64(grad.At2(0, j)-want)) > 1e-5 {
			t.Errorf("grad[%d] = %v, want %v", j, grad.At2(0, j), want)
		}
	}
}

func TestSoftmaxCrossEntropyBatchMean(t *testing.T) {
	ce := SoftmaxCrossEntropy{}
	logits := tensor.New(4, 3)
	loss1, grad := ce.Loss(logits, []int{0, 1, 2, 0})
	if math.Abs(float64(loss1)-math.Log(3)) > 1e-5 {
		t.Errorf("batch mean loss = %v, want ln3", loss1)
	}
	// Gradient row magnitudes scale with 1/B.
	if math.Abs(float64(grad.At2(0, 0))-(1.0/3-1)/4) > 1e-5 {
		t.Errorf("batch grad = %v", grad.At2(0, 0))
	}
}

func TestSoftmaxCrossEntropyRejectsBadLabel(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	SoftmaxCrossEntropy{}.Loss(tensor.New(1, 3), []int{3})
}

func TestSoftmaxCrossEntropyGradientNumerically(t *testing.T) {
	ce := SoftmaxCrossEntropy{}
	rng := tensor.NewRNG(1)
	logits := tensor.RandNormal(rng, 0, 2, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := ce.Loss(logits, labels)
	const eps = 1e-2
	ld := logits.Data()
	for i := range ld {
		orig := ld[i]
		ld[i] = orig + eps
		up, _ := ce.Loss(logits, labels)
		ld[i] = orig - eps
		down, _ := ce.Loss(logits, labels)
		ld[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(float64(numeric-grad.Data()[i])) > 2e-3 {
			t.Fatalf("grad[%d]: numeric %v vs analytic %v", i, numeric, grad.Data()[i])
		}
	}
}

func TestMSE(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 2}, 2)
	target := tensor.FromSlice([]float32{0, 4}, 2)
	loss, grad := MSE{}.Loss(pred, target)
	if math.Abs(float64(loss)-2.5) > 1e-6 { // (1+4)/2
		t.Errorf("MSE loss = %v, want 2.5", loss)
	}
	if grad.Data()[0] != 1 || grad.Data()[1] != -2 { // 2/n * diff
		t.Errorf("MSE grad = %v", grad.Data())
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 0,
		0, 1,
		3, 2,
	}, 3, 2)
	if got := Accuracy(logits, []int{0, 1, 1}); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
}

func TestSchedules(t *testing.T) {
	if ConstantLR(0.1).LRAt(100) != 0.1 {
		t.Error("ConstantLR changed")
	}
	s := StepLR{Base: 1, Gamma: 0.1, StepSize: 10}
	if s.LRAt(0) != 1 || s.LRAt(9) != 1 {
		t.Error("StepLR decayed early")
	}
	if math.Abs(float64(s.LRAt(10))-0.1) > 1e-7 || math.Abs(float64(s.LRAt(25))-0.01) > 1e-8 {
		t.Errorf("StepLR wrong: %v %v", s.LRAt(10), s.LRAt(25))
	}
	c := CosineLR{Base: 1, Min: 0.1, Span: 11}
	if c.LRAt(0) != 1 {
		t.Errorf("CosineLR start = %v", c.LRAt(0))
	}
	if math.Abs(float64(c.LRAt(10))-0.1) > 1e-6 {
		t.Errorf("CosineLR end = %v", c.LRAt(10))
	}
	if c.LRAt(100) != 0.1 {
		t.Errorf("CosineLR past span = %v", c.LRAt(100))
	}
	mid := c.LRAt(5)
	if mid <= 0.1 || mid >= 1 {
		t.Errorf("CosineLR mid = %v", mid)
	}
}

// xorData builds the classic XOR classification problem with jitter.
func xorData(n int, seed int64) (*tensor.Tensor, []int) {
	rng := tensor.NewRNG(seed)
	xs := tensor.New(n, 2)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		a, b := rng.Intn(2), rng.Intn(2)
		xs.Set2(float32(a)+float32(rng.Normal(0, 0.1)), i, 0)
		xs.Set2(float32(b)+float32(rng.Normal(0, 0.1)), i, 1)
		labels[i] = a ^ b
	}
	return xs, labels
}

func xorModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	return nn.NewSequential("xor",
		nn.NewDense("fc1", 2, 16, rng),
		nn.NewReLU("relu1"),
		nn.NewDense("fc2", 16, 2, rng),
	)
}

func TestFitLearnsXORWithSGD(t *testing.T) {
	xs, labels := xorData(256, 1)
	model := xorModel(2)
	res := Fit(model, xs, labels, Config{
		Epochs:    60,
		BatchSize: 32,
		Optimizer: NewSGD(0.1, 0.9, 0),
		Seed:      3,
	})
	if res.FinalAccuracy() < 0.95 {
		t.Errorf("SGD failed to learn XOR: acc %v", res.FinalAccuracy())
	}
	if res.EpochLoss[0] <= res.FinalLoss() {
		t.Errorf("loss did not decrease: %v -> %v", res.EpochLoss[0], res.FinalLoss())
	}
	_, evalAcc := Evaluate(model, xs, labels, 64)
	if evalAcc < 0.95 {
		t.Errorf("Evaluate disagrees: %v", evalAcc)
	}
}

func TestFitLearnsXORWithAdam(t *testing.T) {
	xs, labels := xorData(256, 4)
	model := xorModel(5)
	res := Fit(model, xs, labels, Config{
		Epochs:    30,
		BatchSize: 32,
		Optimizer: NewAdam(0.01, 0),
		Seed:      6,
	})
	if res.FinalAccuracy() < 0.95 {
		t.Errorf("Adam failed to learn XOR: acc %v", res.FinalAccuracy())
	}
}

func TestFitDeterminism(t *testing.T) {
	xs, labels := xorData(128, 7)
	m1, m2 := xorModel(8), xorModel(8)
	cfg := Config{Epochs: 5, BatchSize: 16, Seed: 9}
	cfg.Optimizer = NewSGD(0.05, 0.9, 0)
	r1 := Fit(m1, xs, labels, cfg)
	cfg.Optimizer = NewSGD(0.05, 0.9, 0)
	r2 := Fit(m2, xs, labels, cfg)
	for i := range r1.EpochLoss {
		if r1.EpochLoss[i] != r2.EpochLoss[i] {
			t.Fatalf("epoch %d losses differ: %v vs %v", i, r1.EpochLoss[i], r2.EpochLoss[i])
		}
	}
	if !tensor.Equal(m1.Param("fc1/weight").Value, m2.Param("fc1/weight").Value) {
		t.Error("identical runs produced different weights")
	}
}

func TestPostStepHookRuns(t *testing.T) {
	xs, labels := xorData(64, 10)
	model := xorModel(11)
	calls := 0
	Fit(model, xs, labels, Config{
		Epochs:    2,
		BatchSize: 16,
		Optimizer: NewSGD(0.1, 0, 0),
		PostStep:  func(*nn.Sequential) { calls++ },
		Seed:      12,
	})
	if calls != 2*4 { // 64/16 steps per epoch × 2 epochs
		t.Errorf("PostStep ran %d times, want 8", calls)
	}
}

func TestWeightDecayShrinksWeights(t *testing.T) {
	rng := tensor.NewRNG(13)
	p := &nn.Param{Name: "w", Value: tensor.RandNormal(rng, 0, 1, 10), Grad: tensor.New(10)}
	opt := NewSGD(0.1, 0, 0.5)
	before := p.Value.L2Norm()
	for i := 0; i < 10; i++ {
		opt.Step([]*nn.Param{p})
	}
	if p.Value.L2Norm() >= before {
		t.Errorf("weight decay did not shrink weights: %v -> %v", before, p.Value.L2Norm())
	}
}

func TestGatherBatch(t *testing.T) {
	xs := tensor.New(4, 2, 2)
	for i := range xs.Data() {
		xs.Data()[i] = float32(i)
	}
	labels := []int{10, 11, 12, 13}
	bx, by := GatherBatch(xs, labels, []int{3, 1}, []int{2, 2})
	if bx.Dim(0) != 2 || bx.At(0, 0, 0) != 12 || bx.At(1, 0, 0) != 4 {
		t.Errorf("GatherBatch wrong: %v", bx.Data())
	}
	if by[0] != 13 || by[1] != 11 {
		t.Errorf("labels wrong: %v", by)
	}
}

func TestFitRejectsMismatchedLabels(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Fit(xorModel(14), tensor.New(4, 2), []int{0}, Config{Optimizer: NewSGD(0.1, 0, 0)})
}
