// Package train implements losses, optimizers, learning-rate schedules, and
// the training loop used to fit and fine-tune the perception networks. It is
// also the substrate for the "recover accuracy by retraining" baseline that
// reversible runtime pruning is evaluated against.
package train

import (
	"math"

	"repro/internal/tensor"
)

// ClassLoss scores 2-D logits [B, K] against integer class labels and
// produces the gradient of the mean loss w.r.t. the logits.
type ClassLoss interface {
	// Loss returns the mean loss over the batch and dLoss/dLogits.
	Loss(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor)
	// Name identifies the loss in logs.
	Name() string
}

// SoftmaxCrossEntropy is the fused softmax + negative-log-likelihood loss
// for classification. The fused form has the famously simple gradient
// (p − onehot)/B and avoids differentiating through an explicit softmax
// layer.
type SoftmaxCrossEntropy struct{}

// Name returns "softmax-cross-entropy".
func (SoftmaxCrossEntropy) Name() string { return "softmax-cross-entropy" }

// Loss computes the mean cross entropy and its gradient.
func (SoftmaxCrossEntropy) Loss(logits *tensor.Tensor, labels []int) (float32, *tensor.Tensor) {
	if logits.Dims() != 2 {
		failf("train: cross entropy needs 2-D logits, got %v", logits.Shape())
	}
	b, k := logits.Dim(0), logits.Dim(1)
	if len(labels) != b {
		failf("train: %d labels for batch of %d", len(labels), b)
	}
	probs := tensor.SoftmaxRows(logits)
	grad := probs.Clone()
	gd := grad.Data()
	var loss float64
	invB := 1 / float32(b)
	for i, y := range labels {
		if y < 0 || y >= k {
			failf("train: label %d out of range [0,%d)", y, k)
		}
		p := probs.At2(i, y)
		// Clamp to avoid -Inf on a confidently wrong, fully saturated output.
		if p < 1e-12 {
			p = 1e-12
		}
		loss += -math.Log(float64(p))
		gd[i*k+y] -= 1
	}
	grad.Scale(invB)
	return float32(loss) * invB, grad
}

// MSE is the mean-squared-error regression loss over equally shaped
// prediction and target tensors.
type MSE struct{}

// Name returns "mse".
func (MSE) Name() string { return "mse" }

// Loss returns mean((pred-target)²) and its gradient w.r.t. pred.
func (MSE) Loss(pred, target *tensor.Tensor) (float32, *tensor.Tensor) {
	if !tensor.SameShape(pred, target) {
		failf("train: MSE shape mismatch %v vs %v", pred.Shape(), target.Shape())
	}
	n := pred.Len()
	grad := tensor.New(pred.Shape()...)
	pd, td, gd := pred.Data(), target.Data(), grad.Data()
	var loss float64
	scale := 2 / float32(n)
	for i := range pd {
		d := pd[i] - td[i]
		loss += float64(d) * float64(d)
		gd[i] = scale * d
	}
	return float32(loss / float64(n)), grad
}

// Accuracy returns the fraction of rows of logits whose argmax equals the
// label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	preds := tensor.ArgmaxRows(logits)
	if len(preds) != len(labels) {
		failf("train: %d predictions vs %d labels", len(preds), len(labels))
	}
	if len(labels) == 0 {
		return 0
	}
	correct := 0
	for i, p := range preds {
		if p == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
