package train

import (
	"fmt"
	"io"
	"math"

	"repro/internal/nn"
	"repro/internal/tensor"
)

// Config parameterizes a training run.
type Config struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size; the trailing partial batch is used.
	BatchSize int
	// Optimizer updates the parameters. Required.
	Optimizer Optimizer
	// Schedule optionally adjusts the learning rate per epoch.
	Schedule Schedule
	// Loss scores logits against labels. Defaults to SoftmaxCrossEntropy.
	Loss ClassLoss
	// Seed drives batch shuffling.
	Seed int64
	// PostStep, when non-nil, runs after every optimizer step. The pruning
	// layer uses it to re-apply sparsity masks so pruned weights stay
	// exactly zero during fine-tuning.
	PostStep func(model *nn.Sequential)
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// Result summarizes a training run.
type Result struct {
	// EpochLoss is the mean training loss per epoch.
	EpochLoss []float64
	// EpochAccuracy is the training accuracy per epoch.
	EpochAccuracy []float64
	// Steps is the total number of optimizer steps performed.
	Steps int
}

// FinalLoss returns the last epoch's mean loss, or +Inf for an empty run.
func (r Result) FinalLoss() float64 {
	if len(r.EpochLoss) == 0 {
		return math.Inf(1)
	}
	return r.EpochLoss[len(r.EpochLoss)-1]
}

// FinalAccuracy returns the last epoch's accuracy, or 0 for an empty run.
func (r Result) FinalAccuracy() float64 {
	if len(r.EpochAccuracy) == 0 {
		return 0
	}
	return r.EpochAccuracy[len(r.EpochAccuracy)-1]
}

// Fit trains model on the classification set (xs, labels), where xs is a
// sample-major tensor (first dimension indexes samples) and labels holds one
// class per sample. It returns per-epoch statistics.
func Fit(model *nn.Sequential, xs *tensor.Tensor, labels []int, cfg Config) Result {
	n := xs.Dim(0)
	if n != len(labels) {
		failf("train: %d samples but %d labels", n, len(labels))
	}
	if cfg.Optimizer == nil {
		failf("train: Config.Optimizer is required")
	}
	if cfg.Loss == nil {
		cfg.Loss = SoftmaxCrossEntropy{}
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 32
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 1
	}
	rng := tensor.NewRNG(cfg.Seed)
	sampleShape := xs.Shape()[1:]
	var res Result

	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Schedule != nil {
			cfg.Optimizer.SetLR(cfg.Schedule.LRAt(epoch))
		}
		perm := rng.Perm(n)
		var epochLoss float64
		correct, seen := 0, 0
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batchIdx := perm[start:end]
			bx, by := GatherBatch(xs, labels, batchIdx, sampleShape)

			model.ZeroGrad()
			logits := model.Forward(bx, true)
			loss, grad := cfg.Loss.Loss(logits, by)
			model.Backward(grad)
			cfg.Optimizer.Step(model.Params())
			if cfg.PostStep != nil {
				cfg.PostStep(model)
			}
			res.Steps++

			epochLoss += float64(loss) * float64(len(batchIdx))
			preds := tensor.ArgmaxRows(logits)
			for i, p := range preds {
				if p == by[i] {
					correct++
				}
			}
			seen += len(batchIdx)
		}
		res.EpochLoss = append(res.EpochLoss, epochLoss/float64(seen))
		res.EpochAccuracy = append(res.EpochAccuracy, float64(correct)/float64(seen))
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  acc %.4f  lr %.5f\n",
				epoch, res.EpochLoss[epoch], res.EpochAccuracy[epoch], cfg.Optimizer.LR())
		}
	}
	return res
}

// GatherBatch copies the samples at idx out of the sample-major tensor xs
// into a fresh batch tensor, along with their labels.
func GatherBatch(xs *tensor.Tensor, labels []int, idx []int, sampleShape []int) (*tensor.Tensor, []int) {
	sampleLen := 1
	for _, d := range sampleShape {
		sampleLen *= d
	}
	shape := append([]int{len(idx)}, sampleShape...)
	bx := tensor.New(shape...)
	by := make([]int, len(idx))
	xd, bd := xs.Data(), bx.Data()
	for i, s := range idx {
		copy(bd[i*sampleLen:(i+1)*sampleLen], xd[s*sampleLen:(s+1)*sampleLen])
		by[i] = labels[s]
	}
	return bx, by
}

// Evaluate runs the model over (xs, labels) in inference mode in batches and
// returns the mean loss and accuracy.
func Evaluate(model *nn.Sequential, xs *tensor.Tensor, labels []int, batchSize int) (loss float64, acc float64) {
	n := xs.Dim(0)
	if n == 0 {
		return 0, 0
	}
	if batchSize <= 0 {
		batchSize = 64
	}
	sampleShape := xs.Shape()[1:]
	ce := SoftmaxCrossEntropy{}
	idx := make([]int, 0, batchSize)
	var totalLoss float64
	correct := 0
	for start := 0; start < n; start += batchSize {
		end := start + batchSize
		if end > n {
			end = n
		}
		idx = idx[:0]
		for s := start; s < end; s++ {
			idx = append(idx, s)
		}
		bx, by := GatherBatch(xs, labels, idx, sampleShape)
		logits := model.Forward(bx, false)
		l, _ := ce.Loss(logits, by)
		totalLoss += float64(l) * float64(len(by))
		for i, p := range tensor.ArgmaxRows(logits) {
			if p == by[i] {
				correct++
			}
		}
	}
	return totalLoss / float64(n), float64(correct) / float64(n)
}
