package fleet

import (
	"errors"
	"fmt"
	"time"
)

// Budget is the aggregate per-inference resource envelope the fleet must
// hold. A zero field leaves that dimension unconstrained.
type Budget struct {
	// EnergyMJ caps the summed calibrated per-inference energy (mJ) across
	// all instances.
	EnergyMJ float64
	// LatencyMS caps the summed calibrated per-inference latency (ms)
	// across all instances — the sequential-execution budget of a shared
	// accelerator.
	LatencyMS float64
}

// RebalanceObserver receives a notification after every rebalance pass:
// how many instances were retargeted, the resulting aggregate energy and
// latency, whether the fleet still exceeds the budget at its deepest
// admissible assignment, and the pass's wall-clock latency.
// telemetry.Hooks satisfies this interface (ObserveRebalance).
type RebalanceObserver interface {
	ObserveRebalance(retargets int, energyMJ, latencyMS float64, overBudget bool, elapsed time.Duration)
}

// BudgetGovernor holds a fleet inside an aggregate budget. Each Rebalance
// pass starts from every instance's own demand (the level its vehicle
// governor last requested) and greedily deepens the instance with the best
// resource saving per unit of accuracy given up until the budget is met —
// so a budget squeeze costs the fleet the least total quality, and relaxes
// automatically on the next pass when the pressure (or the demand) drops.
//
// The pass never deepens an instance below the configured accuracy floor;
// if the budget still cannot be met the pass stops, applies the deepest
// admissible assignment, and reports overBudget through the observer — the
// operator's signal that the platform is genuinely oversubscribed.
type BudgetGovernor struct {
	fleet  *Fleet
	budget Budget
	floor  float64
	obs    RebalanceObserver
	gate   HealthGate
	latSrc LatencySource
}

// HealthGate tells the budget governor which instances may be touched.
// health.Monitor satisfies it (Admissible: everything but Quarantined).
type HealthGate interface {
	Admissible(model string) bool
}

// LatencySource supplies a measured per-instance inference latency in
// milliseconds, keyed by instance name. ok=false means no measurement is
// available yet (cold start, no recent windows) and the caller must fall
// back to the calibrated figure. telemetry.LatencyProbe satisfies this
// interface from flushed time windows.
type LatencySource interface {
	MeasuredLatencyMS(model string) (float64, bool)
}

// BudgetOption configures a BudgetGovernor.
type BudgetOption func(*BudgetGovernor)

// WithRebalanceObserver installs the rebalance observer (fleet telemetry).
func WithRebalanceObserver(o RebalanceObserver) BudgetOption {
	return func(b *BudgetGovernor) { b.obs = o }
}

// WithHealthGate makes every rebalance pass skip inadmissible
// (quarantined) instances entirely: their calibrated cost is excluded from
// the aggregate and they are never retargeted — a fenced instance holds
// its emergency-restored level, and the budget the fleet must meet is the
// budget of the instances actually serving.
func WithHealthGate(g HealthGate) BudgetOption {
	return func(b *BudgetGovernor) { b.gate = g }
}

// WithMeasuredLatency closes the governor loop on observed reality: every
// rebalance pass asks src for the instance's measured latency and, when a
// measurement exists, rescales the instance's whole calibrated latency
// ladder by measured/calibrated-at-current-level. An instance running
// slower than its calibration (thermal throttling, contention) therefore
// presents proportionally costlier levels and attracts budget pressure
// first; an instance with no measurement yet keeps its calibrated costs
// untouched. Energy figures are never rescaled — only the latency
// dimension is observable at runtime.
func WithMeasuredLatency(src LatencySource) BudgetOption {
	return func(b *BudgetGovernor) { b.latSrc = src }
}

// WithAccuracyFloor forbids rebalancing any instance to a level whose
// calibrated accuracy is below floor, regardless of budget pressure.
func WithAccuracyFloor(floor float64) BudgetOption {
	return func(b *BudgetGovernor) { b.floor = floor }
}

// NewBudgetGovernor constructs a budget governor over the fleet.
func NewBudgetGovernor(f *Fleet, budget Budget, opts ...BudgetOption) (*BudgetGovernor, error) {
	if f == nil {
		return nil, fmt.Errorf("fleet: nil fleet")
	}
	if budget.EnergyMJ < 0 || budget.LatencyMS < 0 {
		return nil, fmt.Errorf("fleet: negative budget %+v", budget)
	}
	b := &BudgetGovernor{fleet: f, budget: budget}
	for _, o := range opts {
		o(b)
	}
	return b, nil
}

// Budget returns the configured envelope.
func (b *BudgetGovernor) Budget() Budget { return b.budget }

// Rebalance runs one pass and returns the number of instances retargeted.
// It is safe to call concurrently with detection and governor ticks on
// every instance (all instance access locks per call), but passes
// themselves should be serialized — run one rebalance loop per fleet.
func (b *BudgetGovernor) Rebalance() (int, error) {
	var t0 time.Time
	if b.obs != nil {
		t0 = now()
	}
	insts := b.fleet.Instances()
	if b.gate != nil {
		admitted := insts[:0:0]
		for _, inst := range insts {
			if b.gate.Admissible(inst.Name()) {
				admitted = append(admitted, inst)
			}
		}
		insts = admitted
	}
	n := len(insts)
	assigned := make([]int, n)
	libraries := make([][]costedLevel, n)
	for k, inst := range insts {
		lvls := inst.Levels()
		lib := make([]costedLevel, len(lvls))
		for j, l := range lvls {
			lib[j] = costedLevel{energy: l.EnergyMJ, latency: l.LatencyMS, accuracy: l.Accuracy}
		}
		if b.latSrc != nil {
			scaleMeasured(lib, inst, b.latSrc)
		}
		libraries[k] = lib
		d := inst.Demand()
		if d < 0 {
			d = 0
		}
		if d >= len(lib) {
			d = len(lib) - 1
		}
		assigned[k] = d
	}

	overBudget := false
	for b.exceeded(total(libraries, assigned)) {
		best, bestScore := -1, 0.0
		for k := range insts {
			next := assigned[k] + 1
			if next >= len(libraries[k]) {
				continue
			}
			cand := libraries[k][next]
			if cand.accuracy < b.floor {
				continue
			}
			cur := libraries[k][assigned[k]]
			saving := 0.0
			if b.budget.EnergyMJ > 0 {
				saving += cur.energy - cand.energy
			}
			if b.budget.LatencyMS > 0 {
				saving += cur.latency - cand.latency
			}
			if saving <= 0 {
				continue
			}
			drop := cur.accuracy - cand.accuracy
			if drop < 1e-9 {
				drop = 1e-9
			}
			// Strict > keeps the tie-break deterministic: first (lowest
			// name, instances are sorted) candidate wins.
			if score := saving / drop; score > bestScore {
				best, bestScore = k, score
			}
		}
		if best < 0 {
			// No admissible deepening saves anything: the budget is not
			// reachable from here.
			overBudget = true
			break
		}
		assigned[best]++
	}

	retargets := 0
	var errs []error
	for k, inst := range insts {
		if assigned[k] == inst.Current() {
			continue
		}
		// A failed retarget must not strand the rest of the fleet over
		// budget: keep applying the remaining assignments and report every
		// failure joined.
		if err := inst.retarget(assigned[k]); err != nil {
			errs = append(errs, fmt.Errorf("fleet: rebalance %q: %w", inst.Name(), err))
			continue
		}
		retargets++
	}
	energy, latency := total(libraries, assigned)
	if b.obs != nil {
		b.obs.ObserveRebalance(retargets, energy, latency, overBudget, now().Sub(t0))
	}
	return retargets, errors.Join(errs...)
}

// costedLevel is the per-level cost snapshot a rebalance pass works from.
type costedLevel struct {
	energy, latency, accuracy float64
}

// scaleMeasured rescales lib's latency ladder in place by the ratio of the
// instance's measured latency to its calibrated latency at the level it is
// currently running. Skipped (calibrated figures kept) when no measurement
// exists, the measurement is nonpositive, or the calibrated base is zero.
func scaleMeasured(lib []costedLevel, inst *Instance, src LatencySource) {
	measured, ok := src.MeasuredLatencyMS(inst.Name())
	if !ok || measured <= 0 {
		return
	}
	cur := inst.Current()
	if cur < 0 || cur >= len(lib) || lib[cur].latency <= 0 {
		return
	}
	ratio := measured / lib[cur].latency
	for j := range lib {
		lib[j].latency *= ratio
	}
}

// total sums the assigned levels' calibrated costs.
func total(libraries [][]costedLevel, assigned []int) (energy, latency float64) {
	for k, lib := range libraries {
		energy += lib[assigned[k]].energy
		latency += lib[assigned[k]].latency
	}
	return energy, latency
}

// exceeded reports whether the aggregate violates any constrained
// dimension.
func (b *BudgetGovernor) exceeded(energy, latency float64) bool {
	if b.budget.EnergyMJ > 0 && energy > b.budget.EnergyMJ {
		return true
	}
	if b.budget.LatencyMS > 0 && latency > b.budget.LatencyMS {
		return true
	}
	return false
}
