package fleet

import (
	"sync"
	"testing"

	"repro/internal/governor"
	"repro/internal/safety"
	"repro/internal/telemetry"
)

// TestFleetHammer runs, under -race via scripts/verify.sh: per instance, a
// detect goroutine, a governor-tick goroutine, and a scrub goroutine; plus
// a fleet-wide budget-rebalance loop, a mid-flight observer flipper, a
// dispatcher feeding extra frames, and a registry scraper. Every
// per-instance telemetry series lands in one shared registry under a
// model label; the exact per-model frame counts prove no observation was
// lost or cross-attributed.
func TestFleetHammer(t *testing.T) {
	const (
		iters      = 1000
		scrubs     = 200
		rebalances = 200
		dispatched = 300
		snapshots  = 100
	)
	names := []string{"car0", "car1", "car2"}
	reg := telemetry.NewRegistry()
	f := New()
	flat := telemetry.NewHooks(reg)
	for _, name := range names {
		inst := newTestInstance(t, name, 1)
		h := telemetry.NewHooks(reg, telemetry.Label{Key: telemetry.LabelModel, Value: name})
		h.SetLevels([]float64{0, 0.5, 0.8})
		inst.SetObserver(h)
		inst.SetModelObserver(h)
		if err := inst.AttachGovernor(governor.Threshold{}, safety.DefaultContract(), governor.WithObserver(h)); err != nil {
			t.Fatal(err)
		}
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
	}
	bg, err := NewBudgetGovernor(f, Budget{EnergyMJ: 14}, WithRebalanceObserver(flat))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 3, 16)
	if err != nil {
		t.Fatal(err)
	}

	assessments := []safety.Assessment{
		{Score: 0.05, Class: safety.Nominal},
		{Score: 0.4, Class: safety.Elevated},
		{Score: 0.7, Class: safety.Critical},
		{Score: 0.95, Class: safety.Emergency},
	}

	var wg sync.WaitGroup
	for _, name := range names {
		inst, _ := f.Get(name)
		wg.Add(3)
		go func(inst *Instance) {
			defer wg.Done()
			frame := testFrame()
			for i := 0; i < iters; i++ {
				inst.Detect(frame)
			}
		}(inst)
		go func(inst *Instance) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if _, err := inst.Tick(i, assessments[i%len(assessments)]); err != nil {
					t.Errorf("tick: %v", err)
					return
				}
			}
		}(inst)
		go func(inst *Instance) {
			defer wg.Done()
			for i := 0; i < scrubs; i++ {
				inst.Scrub()
			}
		}(inst)
	}
	// Budget retargeting races against every instance's own governor.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rebalances; i++ {
			if _, err := bg.Rebalance(); err != nil {
				t.Errorf("rebalance: %v", err)
				return
			}
		}
	}()
	// Mid-flight observer churn on one instance (atomic-pointer pattern).
	wg.Add(1)
	go func() {
		defer wg.Done()
		inst, _ := f.Get("car2")
		extra := telemetry.NewHooks(telemetry.NewRegistry(),
			telemetry.Label{Key: telemetry.LabelModel, Value: "car2"})
		for i := 0; i < iters/2; i++ {
			inst.SetObserver(extra)
			inst.SetObserver(nil)
		}
	}()
	// Dispatcher traffic on top of the per-instance loops.
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer d.Close()
		for i := 0; i < dispatched; i++ {
			if _, err := d.Submit(names[i%len(names)], testFrame()); err != nil {
				t.Errorf("submit: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for range d.Results() {
		}
	}()
	// A scraper keeps reading consistent snapshots while everything moves.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < snapshots; i++ {
			reg.Snapshot()
		}
	}()
	wg.Wait()

	snap := reg.Snapshot()
	for _, name := range []string{"car0", "car1"} {
		series := telemetry.Series(telemetry.MetricFrames,
			telemetry.Label{Key: telemetry.LabelModel, Value: name})
		// iters from the detect loop + the dispatcher's share.
		want := int64(iters + dispatched/len(names))
		if got := snap.Counters[series]; got != want {
			t.Errorf("%s = %d, want %d", series, got, want)
		}
		ticks := telemetry.Series(telemetry.MetricGovernorTicks,
			telemetry.Label{Key: telemetry.LabelModel, Value: name})
		if got := snap.Counters[ticks]; got != iters {
			t.Errorf("%s = %d, want %d", ticks, got, iters)
		}
	}
	if got := snap.Counters[telemetry.MetricFleetRebalances]; got != rebalances {
		t.Errorf("rebalances = %d, want %d", got, rebalances)
	}
	// car2's observer was being flipped; it may have seen anything from 0
	// to every frame, but never more than were run.
	car2 := telemetry.Series(telemetry.MetricFrames,
		telemetry.Label{Key: telemetry.LabelModel, Value: "car2"})
	if got := snap.Counters[car2]; got > int64(iters+dispatched/len(names)) {
		t.Errorf("car2 frames = %d, exceeds submitted work", got)
	}
}
