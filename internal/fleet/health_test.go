package fleet

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/health"
)

// Compile-time seam check: the health monitor gates budget rebalances.
var _ HealthGate = (*health.Monitor)(nil)

func TestDispatcherSubmitAfterClose(t *testing.T) {
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit("car0", testFrame()); err != nil {
		t.Fatal(err)
	}
	go func() {
		for range d.Results() {
		}
	}()
	d.Close()
	if _, err := d.Submit("car0", testFrame()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close: %v, want ErrClosed", err)
	}
}

// panickyObserver blows up inside the instance's detect path, standing in
// for any bug downstream of the dispatcher worker.
type panickyObserver struct{ armed bool }

func (p *panickyObserver) ObserveFrame(time.Duration) {
	if p.armed {
		panic("observer bug")
	}
}

func TestDispatcherRecoversPanic(t *testing.T) {
	f := New()
	inst := newTestInstance(t, "car0", 1)
	if err := f.Add(inst); err != nil {
		t.Fatal(err)
	}
	obs := &panickyObserver{armed: true}
	inst.SetObserver(obs)
	monitor := health.NewMonitor(health.Config{})
	if err := monitor.Register("car0", nil, nil); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 1, 4, WithHealthMonitor(monitor))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Submit("car0", testFrame()); err != nil {
		t.Fatal(err)
	}
	r := <-d.Results()
	if r.Err == nil || !strings.Contains(r.Err.Error(), "recovered panic") {
		t.Fatalf("panicked frame Err = %v", r.Err)
	}
	if r.Health != health.Degraded {
		t.Fatalf("health after panic = %v", r.Health)
	}
	// The worker survived: a clean frame still flows.
	obs.armed = false
	if _, err := d.Submit("car0", testFrame()); err != nil {
		t.Fatal(err)
	}
	if r := <-d.Results(); r.Err != nil {
		t.Fatalf("frame after recovery: %v", r.Err)
	}
	d.Close()
}

// TestDispatcherHealthWatchdog drives one instance through the full
// quarantine trajectory over the dispatcher path: injected frame drops
// fault it to quarantine, gated submissions serve the dwell, probation
// re-admits, and clean frames heal — while the untouched instance keeps
// serving throughout.
func TestDispatcherHealthWatchdog(t *testing.T) {
	f := New()
	car0 := newTestInstance(t, "car0", 1)
	car1 := newTestInstance(t, "car1", 2)
	for _, inst := range []*Instance{car0, car1} {
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
	}
	specs, err := fault.ParseSpecs("drop-frames:car1:for=3")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(1, specs...)
	car1.SetFaultInjector(inj)

	monitor := health.NewMonitor(health.Config{QuarantineDwell: 2, ProbationAfter: 1})
	for _, inst := range []*Instance{car0, car1} {
		if err := monitor.Register(inst.Name(), inst, nil); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewDispatcher(f, 1, 1, WithHealthMonitor(monitor))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// submit pushes one car1 frame through and returns its result (single
	// worker: completion order is submission order).
	submit := func(model string) Result {
		t.Helper()
		if _, err := d.Submit(model, testFrame()); err != nil {
			t.Fatal(err)
		}
		return <-d.Results()
	}

	// Three dropped frames: Degraded after the first (DegradeAfter=1),
	// Quarantined after the third (QuarantineAfter=2 more).
	wantStates := []health.State{health.Degraded, health.Degraded, health.Quarantined}
	for i, want := range wantStates {
		r := submit("car1")
		if r.Err == nil || errors.Is(r.Err, ErrQuarantined) {
			t.Fatalf("drop %d: err %v", i, r.Err)
		}
		if r.Health != want {
			t.Fatalf("drop %d: health %v, want %v", i, r.Health, want)
		}
	}
	// Two gated frames serve the dwell, then probation re-admits.
	for i := 0; i < 2; i++ {
		r := submit("car1")
		if !errors.Is(r.Err, ErrQuarantined) {
			t.Fatalf("dwell %d: err %v, want ErrQuarantined", i, r.Err)
		}
	}
	if st := monitor.State("car1"); st != health.Probation {
		t.Fatalf("after dwell: %v", st)
	}
	// The drop window (for=3) has passed: one clean frame heals
	// (ProbationAfter=1).
	r := submit("car1")
	if r.Err != nil {
		t.Fatalf("probation frame: %v", r.Err)
	}
	if r.Health != health.Healthy {
		t.Fatalf("after probation frame: %v", r.Health)
	}
	// The healthy neighbor never noticed.
	if r := submit("car0"); r.Err != nil || r.Health != health.Healthy {
		t.Fatalf("car0: %v %v", r.Err, r.Health)
	}
}

// stubGate fences a fixed set of instances.
type stubGate struct{ blocked map[string]bool }

func (g stubGate) Admissible(name string) bool { return !g.blocked[name] }

// TestBudgetRebalanceHealthGate covers an instance failing mid-operation:
// while car1 is fenced the pass squeezes only the admitted instances (and
// only their cost counts against the budget), the accuracy floor still
// holds, the fenced instance is never retargeted — and once car1 recovers
// the next pass includes it again, squeezing the whole fleet.
func TestBudgetRebalanceHealthGate(t *testing.T) {
	f := New()
	for _, name := range []string{"car0", "car1", "car2"} {
		if err := f.Add(newTestInstance(t, name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	gate := stubGate{blocked: map[string]bool{"car1": true}}
	rec := &rebalanceRecorder{}
	// All demand L0 (10 mJ each). With car1 fenced the admitted aggregate
	// is 20 mJ; budget 16 forces exactly one of the two admitted instances
	// to L1 (6 mJ): 16 ≤ 16. The floor keeps L2 (acc .70) out of reach.
	bg, err := NewBudgetGovernor(f, Budget{EnergyMJ: 16},
		WithHealthGate(gate), WithAccuracyFloor(0.80), WithRebalanceObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	car1, _ := f.Get("car1")
	car2, _ := f.Get("car2")
	if car1.Current() != 0 {
		t.Fatalf("fenced instance retargeted to %d", car1.Current())
	}
	if got := car0.Current() + car2.Current(); got != 1 {
		t.Fatalf("admitted levels %d/%d, want exactly one squeezed to L1", car0.Current(), car2.Current())
	}
	if c := rec.calls[0]; c.energyMJ != 16 || c.overBudget {
		t.Fatalf("observed %+v, want energy=16 (fenced cost excluded) overBudget=false", c)
	}
	for _, inst := range []*Instance{car0, car1, car2} {
		if inst.Current() == 2 {
			t.Fatalf("%s squeezed below the accuracy floor", inst.Name())
		}
	}

	// car1 recovers: the next pass governs all three again. 30 mJ demand
	// against 16 deepens everyone to L1 (18 mJ) and stops — the floor
	// blocks L2, so the pass reports over budget rather than breaking it.
	gate.blocked["car1"] = false
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if car0.Current() != 1 || car1.Current() != 1 || car2.Current() != 1 {
		t.Fatalf("levels after recovery %d/%d/%d, want 1/1/1",
			car0.Current(), car1.Current(), car2.Current())
	}
	if c := rec.calls[len(rec.calls)-1]; c.energyMJ != 18 || !c.overBudget {
		t.Fatalf("observed %+v, want energy=18 overBudget=true", c)
	}
}

// TestInstanceFaultPoints exercises the injector seams end to end on a
// real instance: a garbled (truncated) frame is rejected by the pipeline,
// a slow-infer stall goes through the sleep seam, and transition-point NaN
// poison lands on a pruned level and heals on the restore to dense.
func TestInstanceFaultPoints(t *testing.T) {
	var stalls []time.Duration
	origSleep := sleep
	sleep = func(d time.Duration) { stalls = append(stalls, d) }
	defer func() { sleep = origSleep }()

	specs, err := fault.ParseSpecs(
		"garble-frames:car0:for=1,slow-infer:car0:after=1:for=1:latency=70ms,nan-weights:car0:after=1,stuck-transition:car0:after=1:for=1:latency=90ms")
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.NewInjector(7, specs...)
	inst := newTestInstance(t, "car0", 1)
	inst.SetFaultInjector(inj)

	// Frame 0: garbled — the truncated read is rejected by the pipeline.
	if _, err := inst.Detect(testFrame()); err == nil {
		t.Fatal("garbled (short) frame accepted")
	}
	// Frame 1: slow-infer window — the stall goes through the seam.
	if _, err := inst.Detect(testFrame()); err != nil {
		t.Fatal(err)
	}
	if len(stalls) != 1 || stalls[0] != 70*time.Millisecond {
		t.Fatalf("stalls %v, want [70ms]", stalls)
	}

	// Transition 0 (L0→L1): before the nan-weights window — clean.
	if err := inst.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	if det, _ := inst.Detect(testFrame()); math.IsNaN(det.Confidence) {
		t.Fatal("poison fired before its window")
	}
	// Transition 1 (L1→L2): nan-weights poisons pruned positions and the
	// stuck-transition window stalls under the lock.
	stalls = nil
	if err := inst.ApplyLevel(2); err != nil {
		t.Fatal(err)
	}
	if len(stalls) != 1 || stalls[0] != 90*time.Millisecond {
		t.Fatalf("transition stalls %v, want [90ms]", stalls)
	}
	det, err := inst.Detect(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(det.Confidence) && !math.IsNaN(det.Uncertainty) {
		t.Fatalf("poisoned model produced finite detection %+v", det)
	}
	// The emergency restore heals: L0 rewrites every pruned position.
	if err := inst.ApplyLevel(0); err != nil {
		t.Fatal(err)
	}
	det, err = inst.Detect(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(det.Confidence) || math.IsNaN(det.Uncertainty) {
		t.Fatalf("restore to dense did not heal the poison: %+v", det)
	}
}
