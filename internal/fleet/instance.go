package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/governor"
	"repro/internal/perception"
	"repro/internal/safety"
	"repro/internal/tensor"
)

// Instance is one named model in the fleet: a perception pipeline and its
// reversible model behind a per-instance mutex, with an optional governor
// attached. It satisfies both perception.Stack (so perception.RunStack can
// drive a closed loop over it) and governor.Target (so its governor — and
// the fleet BudgetGovernor — execute transitions through the same lock the
// detection path takes; a frame never observes a half-applied level).
//
// Locking: mu guards the pipeline and the model weights, and is held only
// for the duration of one forward pass or one transition — never across a
// governor tick, so the policy decision of one instance cannot stall
// another instance's frames. tickMu serializes governor ticks (the
// governor's own counters are not internally synchronized).
type Instance struct {
	name string
	mu   sync.Mutex
	pipe *perception.Pipeline
	rm   *core.ReversibleModel
	// demand is the level most recently requested through ApplyLevel (the
	// instance's own governor or operator). The BudgetGovernor rebalances
	// starting from demands, so a budget squeeze relaxes automatically when
	// demand rises. Guarded by mu.
	demand int
	// obs is the per-frame observer behind an atomic pointer, so installing
	// it mid-flight is safe (same pattern as perception.Concurrent).
	obs atomic.Pointer[perception.FrameObserver]
	// inj, when non-nil, is the chaos harness: its frame point runs before
	// every forward pass and its transition point after every completed
	// level change. Guarded by mu.
	inj *fault.Injector

	tickMu sync.Mutex
	gov    *governor.Governor
}

// NewInstance wraps a pipeline and its reversible model under a name. The
// pipeline must have been built over rm.Model().
func NewInstance(name string, pipe *perception.Pipeline, rm *core.ReversibleModel) (*Instance, error) {
	if name == "" {
		return nil, fmt.Errorf("fleet: empty instance name")
	}
	if pipe == nil {
		return nil, fmt.Errorf("fleet: instance %q: nil pipeline", name)
	}
	if rm == nil {
		return nil, fmt.Errorf("fleet: instance %q: nil reversible model", name)
	}
	return &Instance{name: name, pipe: pipe, rm: rm}, nil
}

// Name returns the instance name (the model label on its telemetry series).
func (i *Instance) Name() string { return i.name }

// AttachGovernor builds a governor over this instance (the instance itself
// is the governor.Target, so transitions the governor executes serialize
// against detection). Call at wiring time, before the instance is shared
// across goroutines; Tick is a no-op until a governor is attached.
func (i *Instance) AttachGovernor(policy governor.Policy, contract safety.Contract, opts ...governor.Option) error {
	gov, err := governor.New(i, policy, contract, opts...)
	if err != nil {
		return fmt.Errorf("fleet: instance %q: %w", i.name, err)
	}
	i.tickMu.Lock()
	defer i.tickMu.Unlock()
	i.gov = gov
	return nil
}

// Governor returns the attached governor (nil before AttachGovernor).
func (i *Instance) Governor() *governor.Governor {
	i.tickMu.Lock()
	defer i.tickMu.Unlock()
	return i.gov
}

// SetObserver installs (or, with nil, removes) a per-frame observer —
// typically a telemetry.Hooks carrying this instance's model label. Safe
// to call while detections are in flight.
func (i *Instance) SetObserver(o perception.FrameObserver) {
	if o == nil {
		i.obs.Store(nil)
		return
	}
	i.obs.Store(&o)
}

// SetModelObserver installs a transition observer on the underlying
// reversible model, under the instance lock so it cannot interleave with a
// transition in flight.
func (i *Instance) SetModelObserver(o core.TransitionObserver) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rm.SetObserver(o)
}

// SetFaultInjector arms (or, with nil, removes) the chaos harness on this
// instance. Call at wiring time, before frames flow. Arming privatizes the
// model's copy-on-write weight buffers: injected damage (NaN poison, bit
// flips) must land in this instance alone, never in a checkpoint-store
// snapshot siblings alias.
func (i *Instance) SetFaultInjector(inj *fault.Injector) {
	i.mu.Lock()
	defer i.mu.Unlock()
	if inj != nil {
		i.rm.Privatize()
	}
	i.inj = inj
}

// Release detaches the instance's model view from its checkpoint store.
// Call at teardown, after the dispatcher has stopped routing frames here;
// a released instance refuses transitions.
func (i *Instance) Release() error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.Release()
}

// Detect classifies one frame under the instance lock. The observed
// latency includes lock wait — a transition in flight delays frames, and
// that stall is exactly what the per-model frame histogram should show.
// An armed fault injector's frame point runs first: a dropped frame
// returns an error without touching the pipeline, a garbled frame
// replaces the input, and a slow-infer stall delays the pass.
func (i *Instance) Detect(frame *tensor.Tensor) (perception.Detection, error) {
	var obs perception.FrameObserver
	if p := i.obs.Load(); p != nil {
		obs = *p
	}
	var t0 time.Time
	if obs != nil {
		t0 = now()
	}
	defer func() {
		if obs != nil {
			obs.ObserveFrame(now().Sub(t0))
		}
	}()
	i.mu.Lock()
	inj := i.inj
	i.mu.Unlock()
	if inj != nil {
		replacement, drop, stall := inj.OnFrame(i.name, frame)
		if stall > 0 {
			sleep(stall)
		}
		if drop {
			return perception.Detection{}, fmt.Errorf("fleet: instance %q: frame lost (injected drop)", i.name)
		}
		if replacement != nil {
			frame = replacement
		}
	}
	i.mu.Lock()
	d, err := i.pipe.Detect(frame)
	i.mu.Unlock()
	return d, err
}

// Tick runs one governor iteration (perception.Stack seam). Without an
// attached governor it returns a zero Decision.
func (i *Instance) Tick(tick int, a safety.Assessment) (governor.Decision, error) {
	i.tickMu.Lock()
	defer i.tickMu.Unlock()
	if i.gov == nil {
		return governor.Decision{}, nil
	}
	return i.gov.Tick(tick, a)
}

// Switches returns the number of level changes the attached governor has
// executed (perception.Stack seam; 0 without a governor).
func (i *Instance) Switches() int {
	i.tickMu.Lock()
	defer i.tickMu.Unlock()
	if i.gov == nil {
		return 0
	}
	return i.gov.Switches()
}

// ApplyLevel transitions the model under the lock and records the level as
// this instance's demand — what the instance itself wants to run at, which
// the fleet BudgetGovernor uses as the starting point of every rebalance.
// The instance's governor executes through this method (governor.Target),
// so a governor tick after a budget retarget restores the instance's own
// preference.
func (i *Instance) ApplyLevel(target int) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	if err := i.applyLocked(target); err != nil {
		return err
	}
	i.demand = target
	return nil
}

// retarget transitions the model without touching demand — the
// BudgetGovernor's apply path, distinguishing "the budget squeezed you
// deeper" from "you asked for this level".
func (i *Instance) retarget(target int) error {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.applyLocked(target)
}

// applyLocked transitions the model and, on an actual level change, runs
// the injector's transition fault point — under the lock, so a stuck-
// transition stall wedges exactly where a real one would (frames queue on
// mu) and NaN poison lands before any frame sees the new level. Caller
// holds i.mu.
func (i *Instance) applyLocked(target int) error {
	prev := i.rm.Current()
	if err := i.rm.ApplyLevel(target); err != nil {
		return err
	}
	if cur := i.rm.Current(); i.inj != nil && cur != prev {
		if stall := i.inj.OnTransition(i.name, cur, i.rm.Model()); stall > 0 {
			sleep(stall)
		}
		// The store fault point runs after the transition settles: armed
		// store-corrupt specs flip bits in the recovery store, silently —
		// the next checksum-verified restore is what must refuse to run.
		i.inj.OnStore(i.name, i.rm)
	}
	return nil
}

// Demand returns the level most recently requested through ApplyLevel.
func (i *Instance) Demand() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.demand
}

// RestoreFull reverts to dense under the lock (and records the demand).
func (i *Instance) RestoreFull() error { return i.ApplyLevel(0) }

// Current returns the active level under the lock.
func (i *Instance) Current() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.Current()
}

// NumLevels returns the size of the level library.
func (i *Instance) NumLevels() int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.NumLevels()
}

// Level returns level idx's calibrated metadata.
func (i *Instance) Level(idx int) *core.Level {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.Level(idx)
}

// Levels returns the calibrated level library. The slice and its metadata
// are immutable after calibration; callers must not mutate them.
func (i *Instance) Levels() []*core.Level {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.Levels()
}

// Scrub repairs pruned-position corruption under the lock.
func (i *Instance) Scrub() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.rm.Scrub()
}
