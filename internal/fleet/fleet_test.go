package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/governor"
	"repro/internal/nn"
	"repro/internal/perception"
	"repro/internal/prune"
	"repro/internal/safety"
	"repro/internal/sim"
	"repro/internal/tensor"
)

// Compile-time seam checks: an Instance is both a perception closed-loop
// stack and a governor adaptation target.
var (
	_ perception.Stack = (*Instance)(nil)
	_ governor.Target  = (*Instance)(nil)
)

const testFrameSize = 8

// testModel builds a tiny untrained classifier — fleet plumbing only needs
// forward passes, not a useful detector.
func testModel(seed int64) *nn.Sequential {
	rng := tensor.NewRNG(seed)
	g := tensor.ConvGeom{InC: 1, InH: testFrameSize, InW: testFrameSize, KH: 3, KW: 3, StrideH: 1, StrideW: 1, PadH: 1, PadW: 1}
	return nn.NewSequential("fleetnet",
		nn.NewConv2D("conv1", g, 4, rng),
		nn.NewReLU("relu1"),
		nn.NewFlatten("flat"),
		nn.NewDense("fc", 4*testFrameSize*testFrameSize, 2, rng),
	)
}

// newTestInstance builds an instance with a hand-calibrated 3-level
// library: L0 (acc .95, 10 mJ, 4 ms), L1 (acc .85, 6 mJ, 2.5 ms),
// L2 (acc .70, 3 mJ, 1.5 ms).
func newTestInstance(t testing.TB, name string, seed int64) *Instance {
	t.Helper()
	m := testModel(seed)
	plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, []float64{0.5, 0.8})
	if err != nil {
		t.Fatal(err)
	}
	rm, err := core.Build(m, plans)
	if err != nil {
		t.Fatal(err)
	}
	accs := []float64{0.95, 0.85, 0.70}
	for i, l := range rm.Levels() {
		l.Accuracy = accs[i]
	}
	rm.SetCost(0, 4, 10)
	rm.SetCost(1, 2.5, 6)
	rm.SetCost(2, 1.5, 3)
	pipe, err := perception.NewPipeline(m, testFrameSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(name, pipe, rm)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testFrame() *tensor.Tensor { return tensor.New(testFrameSize * testFrameSize) }

func TestFleetRegistry(t *testing.T) {
	f := New()
	if f.Size() != 0 {
		t.Fatalf("empty fleet size %d", f.Size())
	}
	b := newTestInstance(t, "bus1", 2)
	a := newTestInstance(t, "car0", 1)
	for _, inst := range []*Instance{b, a} {
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Add(newTestInstance(t, "car0", 3)); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := f.Add(nil); err == nil {
		t.Fatal("nil Add accepted")
	}
	if got, ok := f.Get("bus1"); !ok || got != b {
		t.Fatal("Get(bus1) wrong instance")
	}
	if _, ok := f.Get("nope"); ok {
		t.Fatal("Get(nope) found something")
	}
	names := f.Names()
	if len(names) != 2 || names[0] != "bus1" || names[1] != "car0" {
		t.Fatalf("Names = %v, want sorted [bus1 car0]", names)
	}
	insts := f.Instances()
	if len(insts) != 2 || insts[0] != b || insts[1] != a {
		t.Fatal("Instances not sorted by name")
	}
}

func TestInstanceValidation(t *testing.T) {
	inst := newTestInstance(t, "car0", 1)
	if _, err := NewInstance("", nil, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if inst.Name() != "car0" {
		t.Fatalf("Name = %q", inst.Name())
	}
	if inst.NumLevels() != 3 {
		t.Fatalf("NumLevels = %d, want 3", inst.NumLevels())
	}
}

func TestInstanceDemandVsRetarget(t *testing.T) {
	inst := newTestInstance(t, "car0", 1)
	if err := inst.ApplyLevel(1); err != nil {
		t.Fatal(err)
	}
	if inst.Demand() != 1 || inst.Current() != 1 {
		t.Fatalf("after ApplyLevel(1): demand=%d current=%d", inst.Demand(), inst.Current())
	}
	// A budget retarget moves the model but not the demand.
	if err := inst.retarget(2); err != nil {
		t.Fatal(err)
	}
	if inst.Demand() != 1 || inst.Current() != 2 {
		t.Fatalf("after retarget(2): demand=%d current=%d, want 1/2", inst.Demand(), inst.Current())
	}
	if err := inst.RestoreFull(); err != nil {
		t.Fatal(err)
	}
	if inst.Demand() != 0 || inst.Current() != 0 {
		t.Fatalf("after RestoreFull: demand=%d current=%d", inst.Demand(), inst.Current())
	}
}

func TestInstanceGovernorSerializesAgainstDetect(t *testing.T) {
	inst := newTestInstance(t, "car0", 1)
	if err := inst.AttachGovernor(governor.Threshold{}, safety.DefaultContract()); err != nil {
		t.Fatal(err)
	}
	if inst.Governor() == nil {
		t.Fatal("Governor() nil after attach")
	}
	// Nominal class → policy picks a deep level; the decision executes
	// through the instance (governor.Target), so demand tracks it.
	d, err := inst.Tick(0, safety.Assessment{Score: 0.05, Class: safety.Nominal})
	if err != nil {
		t.Fatal(err)
	}
	if d.Applied != inst.Current() {
		t.Fatalf("decision applied %d but instance at %d", d.Applied, inst.Current())
	}
	if inst.Demand() != d.Applied {
		t.Fatalf("demand %d does not track governed level %d", inst.Demand(), d.Applied)
	}
	if inst.Switches() != inst.Governor().Switches() {
		t.Fatal("Switches mismatch")
	}
	det, err := inst.Detect(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	if det.Confidence < 0 || det.Confidence > 1 {
		t.Fatalf("confidence %v out of range", det.Confidence)
	}
}

func TestInstanceTickWithoutGovernor(t *testing.T) {
	inst := newTestInstance(t, "car0", 1)
	d, err := inst.Tick(0, safety.Assessment{Class: safety.Critical})
	if err != nil {
		t.Fatal(err)
	}
	if d != (governor.Decision{}) {
		t.Fatalf("ungoverned Tick returned %+v, want zero Decision", d)
	}
	if inst.Switches() != 0 {
		t.Fatal("ungoverned Switches != 0")
	}
}

// recordedRebalance captures one ObserveRebalance call.
type recordedRebalance struct {
	retargets         int
	energyMJ, latency float64
	overBudget        bool
	elapsed           time.Duration
}

type rebalanceRecorder struct{ calls []recordedRebalance }

func (r *rebalanceRecorder) ObserveRebalance(retargets int, energyMJ, latencyMS float64, overBudget bool, elapsed time.Duration) {
	r.calls = append(r.calls, recordedRebalance{retargets, energyMJ, latencyMS, overBudget, elapsed})
}

func TestBudgetRebalanceDeepensAndRelaxes(t *testing.T) {
	f := New()
	for _, name := range []string{"car0", "car1"} {
		if err := f.Add(newTestInstance(t, name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	rec := &rebalanceRecorder{}
	// Both demand L0: aggregate 20 mJ. Budget 13 mJ forces one instance to
	// L1 (16 mJ > 13, still over → second to L1: 12 mJ ≤ 13).
	bg, err := NewBudgetGovernor(f, Budget{EnergyMJ: 13}, WithRebalanceObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	n, err := bg.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("retargets = %d, want 2", n)
	}
	car0, _ := f.Get("car0")
	car1, _ := f.Get("car1")
	if car0.Current() != 1 || car1.Current() != 1 {
		t.Fatalf("levels after squeeze: %d/%d, want 1/1", car0.Current(), car1.Current())
	}
	if car0.Demand() != 0 || car1.Demand() != 0 {
		t.Fatal("rebalance mutated demand")
	}
	if len(rec.calls) != 1 {
		t.Fatalf("observer calls = %d", len(rec.calls))
	}
	if c := rec.calls[0]; c.retargets != 2 || c.energyMJ != 12 || c.overBudget {
		t.Fatalf("observed %+v, want retargets=2 energy=12 overBudget=false", c)
	}

	// The instance's own demand reasserts itself once pressure lifts: a
	// governor applying the demand wins the next pass when the budget is
	// loose enough.
	loose, err := NewBudgetGovernor(f, Budget{EnergyMJ: 100}, WithRebalanceObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loose.Rebalance(); err != nil {
		t.Fatal(err)
	}
	if car0.Current() != 0 || car1.Current() != 0 {
		t.Fatalf("levels after relax: %d/%d, want 0/0 (demands)", car0.Current(), car1.Current())
	}
}

func TestBudgetAccuracyFloorAndOverBudget(t *testing.T) {
	f := New()
	for _, name := range []string{"car0", "car1"} {
		if err := f.Add(newTestInstance(t, name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	rec := &rebalanceRecorder{}
	// 8 mJ needs both at L2 (6 mJ), but the 0.8 floor forbids anything
	// below L1 (acc .85): deepest admissible is 12 mJ → over budget.
	bg, err := NewBudgetGovernor(f, Budget{EnergyMJ: 8}, WithAccuracyFloor(0.8), WithRebalanceObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	car1, _ := f.Get("car1")
	if car0.Current() != 1 || car1.Current() != 1 {
		t.Fatalf("levels = %d/%d, want 1/1 (floor-clamped)", car0.Current(), car1.Current())
	}
	if len(rec.calls) != 1 || !rec.calls[0].overBudget {
		t.Fatalf("overBudget not reported: %+v", rec.calls)
	}
}

func TestBudgetLatencyDimension(t *testing.T) {
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	// 4 ms at L0; a 3 ms latency budget forces L1 (2.5 ms) even though
	// energy is unconstrained.
	bg, err := NewBudgetGovernor(f, Budget{LatencyMS: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := bg.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	if n != 1 || car0.Current() != 1 {
		t.Fatalf("retargets=%d level=%d, want 1/1", n, car0.Current())
	}
}

func TestBudgetGovernorValidation(t *testing.T) {
	if _, err := NewBudgetGovernor(nil, Budget{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := NewBudgetGovernor(New(), Budget{EnergyMJ: -1}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

// TestRunStackOverInstance drives the shared closed loop end-to-end over a
// fleet instance, proving the Stack seam carries the full scenario loop.
func TestRunStackOverInstance(t *testing.T) {
	inst := newTestInstance(t, "car0", 1)
	if err := inst.AttachGovernor(governor.Threshold{}, safety.DefaultContract()); err != nil {
		t.Fatal(err)
	}
	sc := sim.AllScenarios()[0]
	res, err := perception.RunStack(sc, inst, perception.LoopConfig{FrameSize: testFrameSize, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ticks != sc.Ticks {
		t.Fatalf("ran %d ticks, want %d", res.Ticks, sc.Ticks)
	}
}

// newViewInstance wraps a copy-on-write view over base's checkpoint store
// in a fleet instance named name.
func newViewInstance(t testing.TB, base *core.ReversibleModel, name string, seed int64) *Instance {
	t.Helper()
	arch := testModel(seed)
	view, err := base.Store().NewView(arch)
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := perception.NewPipeline(arch, testFrameSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(name, pipe, view)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestFleetReleaseRefcounts is the teardown leak detector: a fleet of
// copy-on-write views must hand every store reference back on Release,
// leaving only the base model's own reference, and a second Release must
// surface the double-release as an error rather than underflowing the
// count.
func TestFleetReleaseRefcounts(t *testing.T) {
	base := newTestInstance(t, "base", 1)
	store := base.rm.Store()
	f := New()
	const n = 5
	for i := 0; i < n; i++ {
		if err := f.Add(newViewInstance(t, base.rm, fmt.Sprintf("car%d", i), 1)); err != nil {
			t.Fatal(err)
		}
	}
	if got := store.Refs(); got != n+1 {
		t.Fatalf("Refs = %d after cloning, want %d", got, n+1)
	}
	// Exercise the store before teardown so the release path covers views
	// that actually transitioned (materialized private buffers).
	for _, inst := range f.Instances() {
		if err := inst.ApplyLevel(1); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Release(); err != nil {
		t.Fatal(err)
	}
	if got := store.Refs(); got != 1 {
		t.Fatalf("Refs = %d after fleet Release, want 1 (base only) — leaked view reference", got)
	}
	for _, inst := range f.Instances() {
		if !inst.rm.Released() {
			t.Fatalf("%s not marked released", inst.Name())
		}
		if err := inst.ApplyLevel(1); err == nil {
			t.Fatalf("%s accepted a transition after release", inst.Name())
		}
	}
	err := f.Release()
	if err == nil {
		t.Fatal("second fleet Release succeeded — double release undetected")
	}
	for i := 0; i < n; i++ {
		if want := fmt.Sprintf("car%d", i); !strings.Contains(err.Error(), want) {
			t.Fatalf("joined release error misses %s: %v", want, err)
		}
	}
	if got := store.Refs(); got != 1 {
		t.Fatalf("Refs = %d after double Release, want 1 still", got)
	}
}
