package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/perception"
	"repro/internal/tensor"
)

// Result is one dispatched frame's perception output.
type Result struct {
	// Model is the instance that classified the frame.
	Model string
	// Seq is the dispatcher-wide submission sequence number, for
	// correlating results (which arrive in completion order) back to
	// submissions.
	Seq int64
	// Detection is the classification.
	Detection perception.Detection
}

// job is one queued frame.
type job struct {
	inst  *Instance
	name  string
	seq   int64
	frame *tensor.Tensor
}

// Dispatcher fans frames out across fleet instances on a fixed pool of
// worker goroutines. Frames for different instances run concurrently;
// frames for the same instance serialize on that instance's lock. Results
// arrive on Results in completion order.
//
// Lifecycle: Submit must not be called after Close. Close drains the
// queue, waits for in-flight work, then closes Results — so ranging over
// Results after Close terminates.
type Dispatcher struct {
	fleet   *Fleet
	jobs    chan job
	results chan Result
	wg      sync.WaitGroup
	once    sync.Once
	seq     atomic.Int64
}

// NewDispatcher starts workers goroutines over the fleet. queue bounds the
// number of submitted-but-unstarted frames (Submit blocks when full);
// Results has the same capacity, so a caller that stops draining results
// eventually backpressures Submit.
func NewDispatcher(f *Fleet, workers, queue int) (*Dispatcher, error) {
	if f == nil {
		return nil, fmt.Errorf("fleet: nil fleet")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("fleet: %d workers", workers)
	}
	if queue < 0 {
		return nil, fmt.Errorf("fleet: negative queue %d", queue)
	}
	d := &Dispatcher{
		fleet:   f,
		jobs:    make(chan job, queue),
		results: make(chan Result, queue),
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// worker drains the job queue until Close closes it.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	for j := range d.jobs {
		d.results <- Result{Model: j.name, Seq: j.seq, Detection: j.inst.Detect(j.frame)}
	}
}

// Submit queues one frame for the named instance and returns its sequence
// number. The frame must stay untouched until its Result arrives (workers
// read it asynchronously). Blocks while the queue is full.
func (d *Dispatcher) Submit(model string, frame *tensor.Tensor) (int64, error) {
	inst, ok := d.fleet.Get(model)
	if !ok {
		return 0, fmt.Errorf("fleet: unknown instance %q", model)
	}
	seq := d.seq.Add(1) - 1
	d.jobs <- job{inst: inst, name: model, seq: seq, frame: frame}
	return seq, nil
}

// Results returns the completion stream. It is closed by Close after all
// in-flight frames finish.
func (d *Dispatcher) Results() <-chan Result { return d.results }

// Close stops accepting work, waits for queued and in-flight frames to
// finish, and closes Results. Idempotent. A caller must keep draining
// Results (or have capacity left) for Close to return.
func (d *Dispatcher) Close() {
	d.once.Do(func() {
		close(d.jobs)
		d.wg.Wait()
		close(d.results)
	})
}
