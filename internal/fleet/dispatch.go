package fleet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/health"
	"repro/internal/perception"
	"repro/internal/tensor"
)

// ErrClosed is returned by Submit after Close has been called.
var ErrClosed = errors.New("fleet: dispatcher closed")

// ErrQuarantined is the Result.Err of a frame rejected because its
// instance is quarantined by the health monitor.
var ErrQuarantined = errors.New("fleet: instance quarantined")

// Result is one dispatched frame's perception output.
type Result struct {
	// Model is the instance that classified the frame.
	Model string
	// Seq is the dispatcher-wide submission sequence number, for
	// correlating results (which arrive in completion order) back to
	// submissions.
	Seq int64
	// Detection is the classification (zero when Err is set).
	Detection perception.Detection
	// Err reports a failed frame: ErrQuarantined for a fenced instance, a
	// detection error (dropped frame, geometry mismatch), or a recovered
	// panic from the instance's detection path — the worker survives all
	// of them.
	Err error
	// Health is the instance's state after this frame was observed
	// (Healthy when no monitor is installed).
	Health health.State
	// Batched reports that the frame was served by a fused batched pass
	// (always false without WithBatching); BatchSize is that pass's group
	// size. The Detection is identical either way — the batch planner's
	// kernels are bit-identical to the per-instance path's.
	Batched   bool
	BatchSize int
	// Tag is the opaque routing handle the submitter attached through
	// SubmitTagged (nil for plain Submit). The dispatcher carries it
	// untouched through every execution path — per-instance, fused batch,
	// quarantine reject, recovered panic — so a caller multiplexing many
	// upstream sources (the ingest front end routing results back to
	// network connections) never needs a seq→source map.
	Tag any
}

// job is one queued frame.
type job struct {
	inst  *Instance
	name  string
	seq   int64
	frame *tensor.Tensor
	tag   any
}

// Dispatcher fans frames out across fleet instances on a fixed pool of
// worker goroutines. Frames for different instances run concurrently;
// frames for the same instance serialize on that instance's lock. Results
// arrive on Results in completion order.
//
// Lifecycle: Submit after Close returns ErrClosed. Close drains the
// queue, waits for in-flight work, then closes Results — so ranging over
// Results after Close terminates.
type Dispatcher struct {
	fleet   *Fleet
	monitor *health.Monitor
	jobs    chan job
	results chan Result
	wg      sync.WaitGroup
	once    sync.Once
	seq     atomic.Int64

	// Batch planner state (nil/zero without WithBatching): the batcher
	// goroutine turns the job stream into execution units — fused groups
	// or singletons — on exec, and the workers consume exec instead of
	// jobs. See batch.go.
	maxBatch int
	exec     chan []job
	batchObs BatchObserver

	// closeMu orders Submit's closed-check-then-send against Close's
	// close(jobs): senders hold the read side across the send, so the
	// channel can only close once no Submit is mid-flight.
	closeMu sync.RWMutex
	closed  bool
}

// DispatchOption configures a Dispatcher.
type DispatchOption func(*Dispatcher)

// WithHealthMonitor puts every dispatched frame under the watchdog: frames
// for quarantined instances are rejected with ErrQuarantined (counting
// toward the quarantine dwell), every served frame is observed (NaN,
// deadline, error), and a panic from the detection path is recovered and
// reported as a ReasonPanic fault. Instances must be registered with the
// monitor separately.
func WithHealthMonitor(m *health.Monitor) DispatchOption {
	return func(d *Dispatcher) { d.monitor = m }
}

// WithBatching enables the fused batch planner: frames already queued for
// instances sharing a (checkpoint, level, geometry) batch key run as one
// batched forward pass — one matmul per layer — of at most maxBatch
// frames. Frames that cannot fuse (singletons, armed fault injectors,
// mid-transition stragglers) take the unchanged per-instance path, so
// enabling batching never changes a Detection, only the wall-clock it
// takes to produce it. maxBatch must be ≥ 2.
func WithBatching(maxBatch int) DispatchOption {
	return func(d *Dispatcher) { d.maxBatch = maxBatch }
}

// WithBatchObserver installs the batch planner's telemetry seam
// (typically a flat telemetry.Hooks). Only meaningful with WithBatching.
func WithBatchObserver(o BatchObserver) DispatchOption {
	return func(d *Dispatcher) { d.batchObs = o }
}

// NewDispatcher starts workers goroutines over the fleet. queue bounds the
// number of submitted-but-unstarted frames (Submit blocks when full);
// Results has the same capacity, so a caller that stops draining results
// eventually backpressures Submit.
func NewDispatcher(f *Fleet, workers, queue int, opts ...DispatchOption) (*Dispatcher, error) {
	if f == nil {
		return nil, fmt.Errorf("fleet: nil fleet")
	}
	if workers <= 0 {
		return nil, fmt.Errorf("fleet: %d workers", workers)
	}
	if queue < 0 {
		return nil, fmt.Errorf("fleet: negative queue %d", queue)
	}
	d := &Dispatcher{
		fleet:   f,
		jobs:    make(chan job, queue),
		results: make(chan Result, queue),
	}
	for _, o := range opts {
		o(d)
	}
	if d.maxBatch == 1 || d.maxBatch < 0 {
		return nil, fmt.Errorf("fleet: batch size %d (need ≥ 2)", d.maxBatch)
	}
	if d.maxBatch > 1 {
		d.exec = make(chan []job, queue+1)
		d.wg.Add(1)
		go d.batcher()
	}
	for w := 0; w < workers; w++ {
		d.wg.Add(1)
		go d.worker()
	}
	return d, nil
}

// worker drains its input stream until Close shuts it down: execution
// units from the batcher when the batch planner is on, raw jobs
// otherwise.
func (d *Dispatcher) worker() {
	defer d.wg.Done()
	if d.exec != nil {
		for g := range d.exec {
			if len(g) == 1 {
				d.results <- d.process(g[0])
				continue
			}
			d.processBatch(g)
		}
		return
	}
	for j := range d.jobs {
		d.results <- d.process(j)
	}
}

// process serves one frame: health gate, detection, observation. A panic
// anywhere in the detection path is recovered into the Result — one bad
// frame must not take a worker (and with it the whole pool) down.
func (d *Dispatcher) process(j job) (res Result) {
	res = Result{Model: j.name, Seq: j.seq, Tag: j.tag}
	if d.monitor != nil && !d.monitor.Gate(j.name) {
		res.Err = ErrQuarantined
		res.Health = d.monitor.State(j.name)
		return res
	}
	defer func() {
		if r := recover(); r != nil {
			res.Err = fmt.Errorf("fleet: instance %q: recovered panic: %v", j.name, r)
			if d.monitor != nil {
				res.Health = d.monitor.ObserveFault(j.name, health.ReasonPanic)
			}
		}
	}()
	start := now()
	det, err := j.inst.Detect(j.frame)
	res.Detection, res.Err = det, err
	if d.monitor != nil {
		res.Health, _ = d.monitor.Observe(j.name, det.Confidence, det.Uncertainty, now().Sub(start), err)
	}
	return res
}

// Submit queues one frame for the named instance and returns its sequence
// number. The frame must stay untouched until its Result arrives (workers
// read it asynchronously). Blocks while the queue is full; returns
// ErrClosed after Close.
func (d *Dispatcher) Submit(model string, frame *tensor.Tensor) (int64, error) {
	return d.SubmitTagged(model, frame, nil)
}

// SubmitTagged is Submit with an opaque routing tag: the frame's Result —
// whichever execution path produces it — carries tag back verbatim in
// Result.Tag. Submitters that need to correlate results to their origin
// (per-connection routing in the ingest front end) attach the origin here
// instead of maintaining a seq-indexed map, which would race the result
// arriving before the map entry is written.
func (d *Dispatcher) SubmitTagged(model string, frame *tensor.Tensor, tag any) (int64, error) {
	inst, ok := d.fleet.Get(model)
	if !ok {
		return 0, fmt.Errorf("fleet: unknown instance %q", model)
	}
	d.closeMu.RLock()
	defer d.closeMu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	seq := d.seq.Add(1) - 1
	d.jobs <- job{inst: inst, name: model, seq: seq, frame: frame, tag: tag}
	return seq, nil
}

// Results returns the completion stream. It is closed by Close after all
// in-flight frames finish.
func (d *Dispatcher) Results() <-chan Result { return d.results }

// Close stops accepting work, waits for queued and in-flight frames to
// finish, and closes Results. Idempotent. A caller must keep draining
// Results (or have capacity left) for Close to return.
func (d *Dispatcher) Close() {
	d.once.Do(func() {
		d.closeMu.Lock()
		d.closed = true
		d.closeMu.Unlock()
		close(d.jobs)
		d.wg.Wait()
		close(d.results)
	})
}
