package fleet

import "time"

// now is the package clock seam; tests pin it for deterministic latency
// observations.
var now = time.Now

// sleep is the stall seam the fault points go through; tests swap it to
// record injected stalls without real waiting.
var sleep = time.Sleep
