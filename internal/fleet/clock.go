package fleet

import "time"

// now is the package clock seam; tests pin it for deterministic latency
// observations.
var now = time.Now
