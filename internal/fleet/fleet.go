// Package fleet scales the single-model perception stack to many named
// model instances sharing one platform. Each Instance owns its
// perception.Pipeline + core.ReversibleModel + governor.Governor behind a
// per-instance lock, so N vehicles run their control loops concurrently
// with no cross-instance contention — unlike the one-global-mutex
// perception.Concurrent, which remains as the single-instance special
// case. A Dispatcher fans incoming frames across instances on worker
// goroutines, and a BudgetGovernor retargets prune levels fleet-wide to
// hold an aggregate energy/latency budget.
//
// Telemetry: each instance's observers are wired externally (typically a
// telemetry.Hooks with a model="<name>" base label via SetObserver /
// SetModelObserver / governor.WithObserver), so every per-instance series
// on /metrics carries the instance name; the BudgetGovernor reports
// fleet-aggregate series through the RebalanceObserver seam.
package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Fleet is a registry of named model instances. All methods are safe for
// concurrent use; the registry lock is never held while calling into an
// instance, so a slow detection cannot stall registry reads.
type Fleet struct {
	mu        sync.Mutex
	instances map[string]*Instance
}

// New constructs an empty fleet.
func New() *Fleet {
	return &Fleet{instances: make(map[string]*Instance)}
}

// Add registers an instance under its name. Duplicate names are an error —
// the name keys every per-model telemetry series.
func (f *Fleet) Add(inst *Instance) error {
	if inst == nil {
		return fmt.Errorf("fleet: nil instance")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.instances[inst.name]; ok {
		return fmt.Errorf("fleet: duplicate instance %q", inst.name)
	}
	f.instances[inst.name] = inst
	return nil
}

// Get returns the instance registered under name.
func (f *Fleet) Get(name string) (*Instance, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	inst, ok := f.instances[name]
	return inst, ok
}

// Names returns the registered instance names, sorted.
func (f *Fleet) Names() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	names := make([]string, 0, len(f.instances))
	for n := range f.instances {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Instances returns the registered instances sorted by name — the
// deterministic iteration order the budget governor's tie-breaking and
// every report table rely on.
func (f *Fleet) Instances() []*Instance {
	f.mu.Lock()
	defer f.mu.Unlock()
	insts := make([]*Instance, 0, len(f.instances))
	for _, inst := range f.instances {
		insts = append(insts, inst)
	}
	sort.Slice(insts, func(i, j int) bool { return insts[i].name < insts[j].name })
	return insts
}

// Size returns the number of registered instances.
func (f *Fleet) Size() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.instances)
}

// Release detaches every instance's model view from its checkpoint store,
// in name order. Call once at fleet teardown, after dispatchers and
// budget governors have stopped; released instances refuse transitions.
// All release errors are joined so one double-release cannot mask a leak
// elsewhere in the fleet.
func (f *Fleet) Release() error {
	var errs []error
	for _, inst := range f.Instances() {
		if err := inst.Release(); err != nil {
			errs = append(errs, fmt.Errorf("fleet: release %s: %w", inst.name, err))
		}
	}
	return errors.Join(errs...)
}
