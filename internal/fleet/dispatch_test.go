package fleet

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestDispatcherFansOutAndDrains(t *testing.T) {
	f := New()
	for _, name := range []string{"car0", "car1", "car2"} {
		if err := f.Add(newTestInstance(t, name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewDispatcher(f, 4, 8)
	if err != nil {
		t.Fatal(err)
	}

	const perModel = 10
	go func() {
		defer d.Close()
		for s := 0; s < perModel; s++ {
			for _, name := range f.Names() {
				// Each in-flight frame needs its own tensor (workers read
				// asynchronously).
				if _, err := d.Submit(name, testFrame()); err != nil {
					t.Errorf("Submit(%s): %v", name, err)
					return
				}
			}
		}
	}()

	counts := map[string]int{}
	seen := map[int64]bool{}
	for r := range d.Results() {
		counts[r.Model]++
		if seen[r.Seq] {
			t.Fatalf("duplicate sequence %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for _, name := range f.Names() {
		if counts[name] != perModel {
			t.Fatalf("model %s got %d results, want %d", name, counts[name], perModel)
		}
	}
	if len(seen) != 3*perModel {
		t.Fatalf("total results %d, want %d", len(seen), 3*perModel)
	}
	d.Close() // idempotent
}

// TestDispatcherTagRoundTrip pins SubmitTagged's contract: the opaque tag
// submitted with a frame rides the pipeline untouched and comes back on
// exactly that frame's Result — the correlation handle the ingest router
// builds its connection bookkeeping on.
func TestDispatcherTagRoundTrip(t *testing.T) {
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 2, 4)
	if err != nil {
		t.Fatal(err)
	}

	type marker struct{ n int }
	tags := map[int64]*marker{}
	const frames = 8
	for i := 0; i < frames; i++ {
		m := &marker{n: i}
		seq, err := d.SubmitTagged("car0", testFrame(), m)
		if err != nil {
			t.Fatal(err)
		}
		tags[seq] = m
	}
	go d.Close()
	got := 0
	for r := range d.Results() {
		m, ok := r.Tag.(*marker)
		if !ok {
			t.Fatalf("result %d tag %T, want *marker", r.Seq, r.Tag)
		}
		if want := tags[r.Seq]; m != want {
			t.Fatalf("result %d carried tag %+v, want %+v", r.Seq, m, want)
		}
		got++
	}
	if got != frames {
		t.Fatalf("got %d results, want %d", got, frames)
	}
}

// TestDispatcherCloseWhileSubmitting hammers SubmitTagged from several
// goroutines while Close runs concurrently: no send-on-closed-channel
// panic, every accepted frame gets a result, every refused submit returns
// ErrClosed, and all worker goroutines join. Run under -race this is the
// dispatcher's shutdown-safety proof.
func TestDispatcherCloseWhileSubmitting(t *testing.T) {
	baseline := runtime.NumGoroutine()
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 3, 4)
	if err != nil {
		t.Fatal(err)
	}

	const submitters = 4
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := map[int64]bool{}
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				seq, err := d.SubmitTagged("car0", testFrame(), i)
				if err != nil {
					if err != ErrClosed {
						t.Errorf("Submit failed with %v, want ErrClosed", err)
					}
					return
				}
				mu.Lock()
				accepted[seq] = true
				mu.Unlock()
			}
		}()
	}

	// Let the submitters get going, then slam the door under them while a
	// drainer keeps Results flowing so Close can complete.
	time.Sleep(5 * time.Millisecond)
	results := map[int64]bool{}
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for r := range d.Results() {
			results[r.Seq] = true
		}
	}()
	d.Close()
	wg.Wait()
	<-drained

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("no submissions landed before Close — the race window never opened")
	}
	for seq := range accepted {
		if !results[seq] {
			t.Fatalf("accepted frame %d never produced a result", seq)
		}
	}
	if len(results) != len(accepted) {
		t.Fatalf("%d results for %d accepted frames", len(results), len(accepted))
	}

	// All dispatcher goroutines (workers) must have joined.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after Close: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

func TestDispatcherUnknownModel(t *testing.T) {
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Submit("ghost", testFrame()); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(nil, 1, 1); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := NewDispatcher(New(), 0, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewDispatcher(New(), 1, -1); err == nil {
		t.Fatal("negative queue accepted")
	}
}
