package fleet

import (
	"testing"
)

func TestDispatcherFansOutAndDrains(t *testing.T) {
	f := New()
	for _, name := range []string{"car0", "car1", "car2"} {
		if err := f.Add(newTestInstance(t, name, 1)); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewDispatcher(f, 4, 8)
	if err != nil {
		t.Fatal(err)
	}

	const perModel = 10
	go func() {
		defer d.Close()
		for s := 0; s < perModel; s++ {
			for _, name := range f.Names() {
				// Each in-flight frame needs its own tensor (workers read
				// asynchronously).
				if _, err := d.Submit(name, testFrame()); err != nil {
					t.Errorf("Submit(%s): %v", name, err)
					return
				}
			}
		}
	}()

	counts := map[string]int{}
	seen := map[int64]bool{}
	for r := range d.Results() {
		counts[r.Model]++
		if seen[r.Seq] {
			t.Fatalf("duplicate sequence %d", r.Seq)
		}
		seen[r.Seq] = true
	}
	for _, name := range f.Names() {
		if counts[name] != perModel {
			t.Fatalf("model %s got %d results, want %d", name, counts[name], perModel)
		}
	}
	if len(seen) != 3*perModel {
		t.Fatalf("total results %d, want %d", len(seen), 3*perModel)
	}
	d.Close() // idempotent
}

func TestDispatcherUnknownModel(t *testing.T) {
	f := New()
	if err := f.Add(newTestInstance(t, "car0", 1)); err != nil {
		t.Fatal(err)
	}
	d, err := NewDispatcher(f, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Submit("ghost", testFrame()); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestDispatcherValidation(t *testing.T) {
	if _, err := NewDispatcher(nil, 1, 1); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := NewDispatcher(New(), 0, 1); err == nil {
		t.Fatal("zero workers accepted")
	}
	if _, err := NewDispatcher(New(), 1, -1); err == nil {
		t.Fatal("negative queue accepted")
	}
}
