package fleet

import (
	"testing"
	"time"

	"repro/internal/telemetry"
)

// The telemetry windowed-latency probe must satisfy the governor's
// measurement seam without the fleet package importing telemetry.
var _ LatencySource = (*telemetry.LatencyProbe)(nil)

// echoSource reports each instance's calibrated latency at its current
// level — a perfectly calibrated platform, where measurement and
// calibration agree exactly.
type echoSource struct{ f *Fleet }

func (s echoSource) MeasuredLatencyMS(model string) (float64, bool) {
	inst, ok := s.f.Get(model)
	if !ok {
		return 0, false
	}
	return inst.Levels()[inst.Current()].LatencyMS, true
}

// mapSource reports fixed measured latencies per instance; absent names
// have no measurement.
type mapSource map[string]float64

func (s mapSource) MeasuredLatencyMS(model string) (float64, bool) {
	v, ok := s[model]
	return v, ok
}

// coldSource never has a measurement — the probe before the first flush.
type coldSource struct{}

func (coldSource) MeasuredLatencyMS(string) (float64, bool) { return 0, false }

func buildTestFleet(t *testing.T, names ...string) *Fleet {
	t.Helper()
	f := New()
	for i, name := range names {
		if err := f.Add(newTestInstance(t, name, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

func levelsOf(t *testing.T, f *Fleet) map[string]int {
	t.Helper()
	out := map[string]int{}
	for _, inst := range f.Instances() {
		out[inst.Name()] = inst.Current()
	}
	return out
}

// TestMeasuredLatencyDifferential is the ISSUE 9 differential suite: when
// measurement agrees with calibration (echo source) — or when no
// measurement exists at all — WithMeasuredLatency must produce exactly the
// assignments of the calibrated path, across a matrix of budget scenarios.
func TestMeasuredLatencyDifferential(t *testing.T) {
	scenarios := []struct {
		name   string
		budget Budget
		floor  float64
	}{
		{"loose", Budget{LatencyMS: 100}, 0},
		{"latency_squeeze", Budget{LatencyMS: 3}, 0},
		{"latency_hard", Budget{LatencyMS: 4}, 0}, // 2-instance fleet: forces deepening
		{"energy_only", Budget{EnergyMJ: 13}, 0},
		{"both_dims", Budget{EnergyMJ: 13, LatencyMS: 5}, 0},
		{"floored", Budget{LatencyMS: 2}, 0.8},
		{"unconstrained", Budget{}, 0},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			for _, src := range []struct {
				name string
				mk   func(f *Fleet) LatencySource
			}{
				{"echo", func(f *Fleet) LatencySource { return echoSource{f} }},
				{"cold", func(f *Fleet) LatencySource { return coldSource{} }},
			} {
				calibrated := buildTestFleet(t, "bus1", "car0")
				measured := buildTestFleet(t, "bus1", "car0")

				opts := []BudgetOption{}
				if sc.floor > 0 {
					opts = append(opts, WithAccuracyFloor(sc.floor))
				}
				bgCal, err := NewBudgetGovernor(calibrated, sc.budget, opts...)
				if err != nil {
					t.Fatal(err)
				}
				bgMeas, err := NewBudgetGovernor(measured, sc.budget,
					append(opts, WithMeasuredLatency(src.mk(measured)))...)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := bgCal.Rebalance(); err != nil {
					t.Fatal(err)
				}
				if _, err := bgMeas.Rebalance(); err != nil {
					t.Fatal(err)
				}
				want, got := levelsOf(t, calibrated), levelsOf(t, measured)
				for name, lvl := range want {
					if got[name] != lvl {
						t.Errorf("%s source: %s at L%d, calibrated path at L%d (must agree)",
							src.name, name, got[name], lvl)
					}
				}
			}
		})
	}
}

// TestMeasuredLatencySpikeDeepens: an instance observed running 3× slower
// than calibration presents a proportionally costlier ladder, so a latency
// budget the calibrated path meets at L1 now forces the deepest level.
func TestMeasuredLatencySpikeDeepens(t *testing.T) {
	f := buildTestFleet(t, "car0")
	// Calibrated L0 is 4 ms; measured says 12 ms → ratio 3 → ladder
	// 12/7.5/4.5 ms. Budget 5 ms: the calibrated path would not deepen at
	// all (4 ≤ 5); the measured path must go all the way to L2, where
	// 4.5 ms finally fits.
	rec := &rebalanceRecorder{}
	bg, err := NewBudgetGovernor(f, Budget{LatencyMS: 5},
		WithMeasuredLatency(mapSource{"car0": 12}), WithRebalanceObserver(rec))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	if car0.Current() != 2 {
		t.Fatalf("level = %d, want 2 (3× slowdown must deepen past calibrated answer)", car0.Current())
	}
	// The observer reports the measured aggregate (4.5 ms), inside budget.
	if len(rec.calls) != 1 || rec.calls[0].overBudget || rec.calls[0].latency != 4.5 {
		t.Fatalf("observer = %+v, want in-budget pass at 4.5 ms measured", rec.calls)
	}
}

// TestMeasuredLatencyFastInstanceRelaxes: an instance measured faster than
// calibration presents a cheaper ladder, so a budget that would squeeze
// the calibrated fleet leaves the measured fleet at its demand.
func TestMeasuredLatencyFastInstanceRelaxes(t *testing.T) {
	f := buildTestFleet(t, "car0")
	// Calibrated L0 is 4 ms > 3 ms budget → calibrated path deepens to L1.
	// Measured 2 ms at L0 (ratio 0.5): ladder 2/1.25/0.75 fits at L0.
	bg, err := NewBudgetGovernor(f, Budget{LatencyMS: 3},
		WithMeasuredLatency(mapSource{"car0": 2}))
	if err != nil {
		t.Fatal(err)
	}
	n, err := bg.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	if n != 0 || car0.Current() != 0 {
		t.Fatalf("retargets=%d level=%d, want 0 retargets at L0 (fast instance needs no squeeze)",
			n, car0.Current())
	}
}

// TestMeasuredLatencyIgnoresBadMeasurements: nonpositive measurements fall
// back to calibration rather than zeroing or inverting the ladder.
func TestMeasuredLatencyIgnoresBadMeasurements(t *testing.T) {
	f := buildTestFleet(t, "car0")
	bg, err := NewBudgetGovernor(f, Budget{LatencyMS: 3},
		WithMeasuredLatency(mapSource{"car0": -7}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	if car0.Current() != 1 {
		t.Fatalf("level = %d, want 1 (calibrated answer under a bad measurement)", car0.Current())
	}
}

// TestMeasuredLatencyFromProbe closes the loop end-to-end inside the
// process: frame latencies observed into a telemetry registry, rolled into
// windows, read back by the probe, and acted on by the governor.
func TestMeasuredLatencyFromProbe(t *testing.T) {
	base := time.Date(2025, 8, 10, 12, 0, 0, 0, time.UTC)
	clock := func() time.Time { return base }
	reg := telemetry.NewRegistry(telemetry.WithClock(clock), telemetry.WithWindowWidth(time.Second))
	series := telemetry.Series(telemetry.MetricFrameLatency,
		telemetry.Label{Key: telemetry.LabelModel, Value: "car0"})
	// 12 ms mean in microseconds: 3× the calibrated 4 ms at L0.
	reg.Observe(series, 11_000)
	reg.Observe(series, 13_000)
	reg.Flush()

	probe := telemetry.NewLatencyProbe(reg, time.Minute)
	if got, ok := probe.MeasuredLatencyMS("car0"); !ok || got != 12 {
		t.Fatalf("probe = %v/%v, want 12 ms", got, ok)
	}

	f := buildTestFleet(t, "car0")
	bg, err := NewBudgetGovernor(f, Budget{LatencyMS: 5}, WithMeasuredLatency(probe))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bg.Rebalance(); err != nil {
		t.Fatal(err)
	}
	car0, _ := f.Get("car0")
	if car0.Current() != 2 {
		t.Fatalf("level = %d, want 2 (measured 12 ms must force deepest level)", car0.Current())
	}
}
