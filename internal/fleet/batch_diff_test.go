package fleet

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/metrics"
	"repro/internal/perception"
	"repro/internal/prune"
	"repro/internal/tensor"
)

// Differential harness for the batch planner: every scenario runs the
// exact same frame schedule through a batched dispatcher and a plain
// per-instance dispatcher over two identically constructed fleets, then
// compares the two result streams frame by frame. Both dispatchers run a
// single worker so each instance's frames execute in submission order —
// the determinism needed to compare debounce trajectories and injector
// RNG draws; the batched path's *internal* concurrency (goroutine-tiled
// kernels) stays fully exercised.

// diffEps is the comparison tolerance. The blocked/fused kernels are
// bit-identical to the serial ones by construction, so this is slack for
// the float64 conversions at the Detection boundary, not for the math.
const diffEps = 1e-9

// diffInstanceCfg describes one instance of a differential fleet. Two
// instances with the same modelSeed are clones of the same checkpoint
// (identical weights and prune ladder) and are what the planner fuses.
type diffInstanceCfg struct {
	name                 string
	modelSeed            int64
	ladder               []float64 // nested prune ladder sparsities
	debounceK, debounceN int       // 0: no debouncing
	faultSpec            string    // "" : no injector armed
	faultSeed            int64
}

// diffSubmission is one scheduled frame.
type diffSubmission struct {
	name  string
	frame *tensor.Tensor
}

// diffTransition retargets one instance between waves.
type diffTransition struct {
	name  string
	level int
}

// diffScenario is a full schedule: fleet layout, frame waves, and the
// level transitions applied after each wave (while no frames are in
// flight, so both execution paths see the same level at every frame).
type diffScenario struct {
	cfgs  []diffInstanceCfg
	waves [][]diffSubmission
	trans [][]diffTransition
}

// genDiffScenario derives a scenario from a seed: fleet size 1–64 drawn
// from a pool of 1–4 distinct checkpoints with random prune ladders,
// random debouncing, fault injectors armed on a random subset, 2–4 frame
// waves with random per-instance frame counts, and random level
// transitions between waves.
func genDiffScenario(seed int64) diffScenario {
	rng := tensor.NewRNG(seed)
	nInst := 1 + rng.Intn(64)
	nCkpts := 1 + rng.Intn(4)

	// One prune ladder per checkpoint: 1–3 nested levels, ascending
	// sparsity. Clones share the ladder — part of the checkpoint identity.
	ladders := make([][]float64, nCkpts)
	for c := range ladders {
		depth := 1 + rng.Intn(3)
		lo := 0.2 + 0.2*rng.Float64()
		for l := 0; l < depth; l++ {
			ladders[c] = append(ladders[c], lo+(0.95-lo)*float64(l+1)/float64(depth+1))
		}
	}

	var sc diffScenario
	for i := 0; i < nInst; i++ {
		ck := rng.Intn(nCkpts)
		cfg := diffInstanceCfg{
			name:      fmt.Sprintf("v%02d", i),
			modelSeed: 1000 + int64(ck),
			ladder:    ladders[ck],
		}
		if rng.Intn(3) == 0 {
			cfg.debounceN = 2 + rng.Intn(3)
			cfg.debounceK = 1 + rng.Intn(cfg.debounceN)
		}
		if rng.Intn(5) == 0 {
			// Armed instances must fall back to the per-instance path in
			// the batched dispatcher; drop and garble are the
			// deterministic, behavior-changing kinds.
			kinds := []string{"drop-frames", "garble-frames"}
			cfg.faultSpec = fmt.Sprintf("%s:%s:after=%d:for=%d",
				kinds[rng.Intn(len(kinds))], cfg.name, rng.Intn(3), 1+rng.Intn(4))
			cfg.faultSeed = seed + int64(i)
		}
		sc.cfgs = append(sc.cfgs, cfg)
	}

	px := testFrameSize * testFrameSize
	nWaves := 2 + rng.Intn(3)
	for w := 0; w < nWaves; w++ {
		var wave []diffSubmission
		for _, cfg := range sc.cfgs {
			for n := rng.Intn(4); n > 0; n-- {
				frame := tensor.New(px)
				d := frame.Data()
				for p := range d {
					d[p] = float32(rng.Uniform(-1, 1))
				}
				wave = append(wave, diffSubmission{name: cfg.name, frame: frame})
			}
		}
		sc.waves = append(sc.waves, wave)

		var ts []diffTransition
		for _, cfg := range sc.cfgs {
			if rng.Intn(3) == 0 {
				ts = append(ts, diffTransition{name: cfg.name, level: rng.Intn(len(cfg.ladder) + 1)})
			}
		}
		sc.trans = append(sc.trans, ts)
	}
	return sc
}

// buildDiffFleet constructs one fleet instance of the scenario. Called
// twice per scenario — same cfgs, same seeds — so the two fleets hold
// bit-identical weights, plans, debounce state, and injector RNGs.
func buildDiffFleet(t *testing.T, cfgs []diffInstanceCfg) *Fleet {
	t.Helper()
	f := New()
	for _, c := range cfgs {
		m := testModel(c.modelSeed)
		plans, err := (prune.MagnitudeGlobal{}).PlanNested(m, c.ladder)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := core.Build(m, plans)
		if err != nil {
			t.Fatal(err)
		}
		pipe, err := perception.NewPipeline(m, testFrameSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c.debounceN > 0 {
			if err := pipe.SetDebounce(c.debounceK, c.debounceN); err != nil {
				t.Fatal(err)
			}
		}
		inst, err := NewInstance(c.name, pipe, rm)
		if err != nil {
			t.Fatal(err)
		}
		if c.faultSpec != "" {
			specs, err := fault.ParseSpecs(c.faultSpec)
			if err != nil {
				t.Fatal(err)
			}
			inst.SetFaultInjector(fault.NewInjector(c.faultSeed, specs...))
		}
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
	}
	return f
}

// runDiffSchedule drives one fleet through the scenario's schedule and
// returns every Result keyed by submission sequence number, plus how many
// frames were served by fused batched passes.
func runDiffSchedule(t *testing.T, sc diffScenario, f *Fleet, batched bool) (map[int64]Result, int) {
	t.Helper()
	opts := []DispatchOption{}
	if batched {
		opts = append(opts, WithBatching(64))
	}
	d, err := NewDispatcher(f, 1, 512, opts...)
	if err != nil {
		t.Fatal(err)
	}
	results := make(map[int64]Result)
	fusedFrames := 0
	for w, wave := range sc.waves {
		for _, sub := range wave {
			if _, err := d.Submit(sub.name, sub.frame); err != nil {
				t.Fatalf("wave %d: submit %s: %v", w, sub.name, err)
			}
		}
		for range wave {
			r := <-d.Results()
			results[r.Seq] = r
			if r.Batched {
				fusedFrames++
			}
		}
		for _, tr := range sc.trans[w] {
			inst, ok := f.Get(tr.name)
			if !ok {
				t.Fatalf("wave %d: unknown instance %s", w, tr.name)
			}
			if err := inst.ApplyLevel(tr.level); err != nil {
				t.Fatalf("wave %d: retarget %s -> L%d: %v", w, tr.name, tr.level, err)
			}
		}
	}
	d.Close()
	for r := range d.Results() {
		results[r.Seq] = r
	}
	return results, fusedFrames
}

// diffOneScenario runs one seed through both execution paths and asserts
// per-frame agreement. Returns the batched run's fused-frame count so the
// caller can assert the planner actually fused something across a corpus.
func diffOneScenario(t *testing.T, seed int64) int {
	t.Helper()
	sc := genDiffScenario(seed)
	seqFleet := buildDiffFleet(t, sc.cfgs)
	batFleet := buildDiffFleet(t, sc.cfgs)

	seqRes, _ := runDiffSchedule(t, sc, seqFleet, false)
	batRes, fused := runDiffSchedule(t, sc, batFleet, true)

	if len(seqRes) != len(batRes) {
		t.Fatalf("seed %d: %d sequential results vs %d batched", seed, len(seqRes), len(batRes))
	}
	for seq, a := range seqRes {
		b, ok := batRes[seq]
		if !ok {
			t.Fatalf("seed %d: seq %d missing from batched results", seed, seq)
		}
		if a.Model != b.Model {
			t.Fatalf("seed %d seq %d: model %q vs %q", seed, seq, a.Model, b.Model)
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Fatalf("seed %d seq %d (%s): err %v vs %v", seed, seq, a.Model, a.Err, b.Err)
		}
		if a.Err != nil {
			continue
		}
		if a.Detection.Obstacle != b.Detection.Obstacle {
			t.Fatalf("seed %d seq %d (%s): obstacle %v vs %v (conf %v vs %v)",
				seed, seq, a.Model, a.Detection.Obstacle, b.Detection.Obstacle,
				a.Detection.Confidence, b.Detection.Confidence)
		}
		if !metrics.ApproxEqual(a.Detection.Confidence, b.Detection.Confidence, diffEps) {
			t.Fatalf("seed %d seq %d (%s): confidence %v vs %v",
				seed, seq, a.Model, a.Detection.Confidence, b.Detection.Confidence)
		}
		if !metrics.ApproxEqual(a.Detection.Uncertainty, b.Detection.Uncertainty, diffEps) {
			t.Fatalf("seed %d seq %d (%s): uncertainty %v vs %v",
				seed, seq, a.Model, a.Detection.Uncertainty, b.Detection.Uncertainty)
		}
	}
	return fused
}

// diffRegressionSeeds is the checked-in regression corpus: seeds that
// exercise the planner's corners (fleet of 1; all-clone fleets; heavy
// fault arming; transition-dense schedules). A seed that ever exposes a
// divergence gets appended here so the failure stays covered forever.
var diffRegressionSeeds = []int64{1, 2, 3, 7, 11, 23, 42, 1977, 20260808}

// TestBatchDiffRegressionCorpus pins the checked-in corpus.
func TestBatchDiffRegressionCorpus(t *testing.T) {
	totalFused := 0
	for _, seed := range diffRegressionSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			totalFused += diffOneScenario(t, seed)
		})
	}
	if totalFused == 0 {
		t.Fatal("regression corpus never exercised a fused batched pass")
	}
}

// TestBatchDiffProperty sweeps fresh seeds beyond the corpus. The sweep is
// deterministic (seeded), so a failure here names the exact seed to add to
// diffRegressionSeeds.
func TestBatchDiffProperty(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	for i := 0; i < n; i++ {
		seed := int64(5000 + i*101)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			diffOneScenario(t, seed)
		})
	}
}

// TestBatchedDispatcherFuses asserts the planner actually forms fused
// groups under sustained clone traffic and stamps their Results, and that
// the flat frame counts match either way.
func TestBatchedDispatcherFuses(t *testing.T) {
	f := New()
	for i := 0; i < 4; i++ {
		inst := newTestInstance(t, fmt.Sprintf("car%d", i), 7) // same seed: clones
		if err := f.Add(inst); err != nil {
			t.Fatal(err)
		}
	}
	d, err := NewDispatcher(f, 1, 256, WithBatching(16))
	if err != nil {
		t.Fatal(err)
	}
	const frames = 200
	done := make(chan int)
	go func() {
		fused := 0
		for r := range d.Results() {
			if r.Err != nil {
				t.Errorf("frame %d: %v", r.Seq, r.Err)
			}
			if r.Batched {
				if r.BatchSize < 2 || r.BatchSize > 16 {
					t.Errorf("frame %d: batch size %d out of [2,16]", r.Seq, r.BatchSize)
				}
				fused++
			}
		}
		done <- fused
	}()
	frame := testFrame()
	for i := 0; i < frames; i++ {
		if _, err := d.Submit(fmt.Sprintf("car%d", i%4), frame); err != nil {
			t.Fatal(err)
		}
	}
	d.Close()
	if fused := <-done; fused == 0 {
		t.Fatal("no frame was served by a fused batched pass")
	}
}
